// Table IX (RQ4, Knowledge-2): adversary knows a fraction of the real
// training data, optimizes a shadow t' on it against the target model, and
// attacks the remaining (unknown) members.
//
// Paper: accuracy ~0.52-0.58 and roughly flat in the known fraction —
// knowing part of the training data does not reveal the other members.
#include <iostream>

#include "attacks/adaptive.h"
#include "bench_util.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table IX — adaptive Knowledge-2: shadow t' from partial training data",
      "attack acc flat (~0.52-0.58) across 20%..80% known training data",
      "no meaningful gain from knowing more of the training set");
  bench::BenchTimer timer;

  const std::vector<eval::DatasetId> datasets = {eval::DatasetId::kCifar100,
                                                 eval::DatasetId::kPurchase50};
  TextTable table({"Dataset", "% known training samples", "attack acc"});
  for (const eval::DatasetId id : datasets) {
    eval::BundleOptions opts;
    opts.train_size = Scaled(240);
    opts.test_size = Scaled(240);
    opts.shadow_size = 50;
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 89;
    const eval::DataBundle bundle = eval::MakeBundle(id, opts);
    Rng rng(90);
    eval::CipExternalResult r =
        eval::RunCipExternal(bundle, nullptr, /*alpha=*/0.7f, Scaled(25), rng);

    for (const double frac : {0.2, 0.4, 0.8}) {
      const std::size_t known =
          static_cast<std::size_t>(frac * bundle.train.size());
      const data::Dataset known_part = bundle.train.Slice(0, known);
      const data::Dataset unknown_part =
          bundle.train.Slice(known, bundle.train.size());
      const Tensor t_guess = attacks::OptimizeGuessedT(
          r.client->model(), r.client->config().blend, known_part,
          /*steps=*/30, /*lr=*/0.05f, rng);
      core::CipQuery guessed(r.client->model(), r.client->config().blend,
                             t_guess);
      const std::vector<float> lm = guessed.Losses(unknown_part);
      const std::vector<float> ln =
          guessed.Losses(bundle.test.Slice(0, unknown_part.size()));
      std::vector<float> ms(lm.size()), ns(ln.size());
      for (std::size_t i = 0; i < lm.size(); ++i) ms[i] = -lm[i];
      for (std::size_t i = 0; i < ln.size(); ++i) ns[i] = -ln[i];
      table.AddRow({eval::DatasetName(id), TextTable::Num(frac * 100, 0) + "%",
                    TextTable::Num(attacks::BestThresholdAccuracy(ms, ns))});
    }
  }
  table.Print(std::cout);
  return 0;
}
