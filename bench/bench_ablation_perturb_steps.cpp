// Ablation: Step I's perturbation optimization budget (DESIGN.md §5).
//
// With 0 steps the perturbation stays a random image — privacy still holds
// (the distribution is shifted) but the personalization benefit disappears:
// t no longer adapts the client's distribution to the global model, so the
// non-i.i.d. accuracy gain of Table III / Fig. 7 vanishes.
#include <iostream>

#include "bench_util.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/server.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Ablation — Step-I perturbation-optimization steps per round",
      "the optimized t aligns heterogeneous clients (the paper's utility "
      "argument); a frozen random t does not",
      "non-i.i.d. test accuracy grows with Step-I budget, then saturates");
  bench::BenchTimer timer;

  constexpr std::size_t kNumClasses = 20;
  constexpr std::size_t kClients = 4;
  data::SyntheticVision gen(data::Cifar100Like(kNumClasses));
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = kNumClasses;
  spec.width = 8;
  spec.seed = 115;

  TextTable table({"Step-I steps/round", "mean client test acc",
                   "mean blended train loss"});
  for (const std::size_t steps : {0ul, 6ul, 18ul}) {
    Rng rng(116);
    data::Dataset full = gen.Sample(kClients * Scaled(100), rng);
    const auto shards =
        data::PartitionByClasses(full, kClients, 4, kNumClasses, rng);
    const data::Dataset test = gen.Sample(Scaled(250), rng);

    core::CipConfig cfg;
    cfg.blend.alpha = 0.5f;
    cfg.train.lr = 0.02f;
    cfg.train.momentum = 0.9f;
    cfg.perturb_steps = steps;
    std::vector<std::unique_ptr<core::CipClient>> clients;
    std::vector<fl::ClientBase*> ptrs;
    for (std::size_t k = 0; k < kClients; ++k) {
      clients.push_back(
          std::make_unique<core::CipClient>(spec, shards[k], cfg, 120 + k));
      ptrs.push_back(clients.back().get());
    }
    fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
    fl::FlOptions opts;
    opts.rounds = Scaled(30);
    fl::FederatedAveraging server(core::InitialDualState(spec), opts);
    server.Run(store, rng.NextU64());

    double acc = 0.0, loss = 0.0;
    for (auto& c : clients) {
      acc += c->EvalAccuracy(test);
      loss += c->BlendedDataLoss();
    }
    table.AddRow({std::to_string(steps),
                  TextTable::Num(acc / kClients),
                  TextTable::Num(loss / kClients)});
  }
  table.Print(std::cout);
  return 0;
}
