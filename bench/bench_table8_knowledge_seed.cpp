// Table VIII (RQ4, Knowledge-1): adversary knows alpha and an init seed with
// controlled SSIM to the client's true perturbation seed; optimizes a shadow
// t' from it and mounts a loss-threshold attack.
//
// Paper (alpha=0.7): attack accuracy grows with seed SSIM but stays well
// below the non-defended attack (CIFAR-100: 0.575@SSIM .1 -> 0.624@SSIM 1).
#include <iostream>

#include "attacks/adaptive.h"
#include "bench_util.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table VIII — adaptive Knowledge-1: public seed + alpha + shadow t'",
      "attack acc rises with SSIM(seed, seed') but stays ~0.52-0.62",
      "monotone in SSIM; far below non-defended attack accuracy");
  bench::BenchTimer timer;

  const std::vector<eval::DatasetId> datasets = {eval::DatasetId::kCifar100,
                                                 eval::DatasetId::kChMnist};
  TextTable table({"Dataset", "SSIM(seed, adversary seed)", "attack acc"});
  for (const eval::DatasetId id : datasets) {
    eval::BundleOptions opts;
    opts.train_size = Scaled(200);
    opts.test_size = Scaled(200);
    opts.shadow_size = Scaled(200);
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 87;
    const eval::DataBundle bundle = eval::MakeBundle(id, opts);
    Rng rng(88);

    // The client initializes its t from a (possibly leaked) seed image.
    Tensor true_seed(bundle.train.SampleShape());
    for (float& v : true_seed.flat()) v = rng.Uniform();
    core::CipConfig cfg = eval::DefaultCipConfig(bundle, /*alpha=*/0.7f);
    cfg.init_seed = true_seed;
    cfg.init_noise_weight = 0.0f;
    eval::CipSingleResult trained =
        eval::TrainCipSingle(bundle, 0.7f, Scaled(25), rng, {}, &cfg);

    for (const double ssim : {0.3, 0.7, 1.0}) {
      const Tensor adv_seed =
          ssim >= 0.999 ? true_seed
                        : attacks::SeedWithSimilarity(true_seed, ssim, rng);
      // Optimize t' from the adversary's seed on shadow data.
      Tensor t_guess = attacks::OptimizeGuessedT(
          trained.client->model(), cfg.blend, bundle.shadow_train,
          /*steps=*/30, /*lr=*/0.05f, rng, adv_seed);
      core::CipQuery guessed(trained.client->model(), cfg.blend, t_guess);
      const std::vector<float> lm = guessed.Losses(bundle.train);
      const std::vector<float> ln = guessed.Losses(bundle.test);
      std::vector<float> ms(lm.size()), ns(ln.size());
      for (std::size_t i = 0; i < lm.size(); ++i) ms[i] = -lm[i];
      for (std::size_t i = 0; i < ln.size(); ++i) ns[i] = -ln[i];
      table.AddRow({eval::DatasetName(id), TextTable::Num(ssim, 1),
                    TextTable::Num(attacks::BestThresholdAccuracy(ms, ns))});
    }
  }
  table.Print(std::cout);
  return 0;
}
