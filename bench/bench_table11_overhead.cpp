// Table XI (RQ5): parameter-count and convergence overhead of CIP vs the
// conventional (no-defense) model, plus measured per-round cost.
//
// Paper: CIP adds +0.87% parameters on average (only the concatenated head
// widens; the backbone is shared) and halves the epochs to converge. The
// round-telemetry section makes the time overhead a first-class artifact:
// a small CIP federation is run through the round engine and every round's
// broadcast/train/aggregate wall-clock — including the per-client
// Step I / Step II split — is dumped as JSON Lines.
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/client_factory.h"
#include "fl/server.h"

using namespace cip;

namespace {

/// Rounds until the client-side training accuracy crosses `target`.
std::size_t RoundsToConverge(fl::ClientBase& client,
                             const fl::ModelState& init, double target,
                             std::size_t max_rounds, std::uint64_t run_seed) {
  client.SetGlobal(init);
  for (std::size_t r = 1; r <= max_rounds; ++r) {
    client.TrainLocal(fl::MakeRoundContext(run_seed, r, 0));
    if (client.EvalAccuracy(client.LocalData()) >= target) return r;
  }
  return max_rounds;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table XI — overhead: parameters, rounds to converge, round timings",
      "params +0.87% on average (shared backbone, wider head); epochs -50%",
      "param overhead ~1%; convergence within the same order as no-defense");
  bench::BenchTimer timer;

  // ---- parameter counts ------------------------------------------------------
  TextTable params({"Model type", "No defense", "CIP (dual)", "overhead"});
  double overhead_sum = 0.0;
  const std::vector<nn::Arch> archs = {nn::Arch::kResNet, nn::Arch::kDenseNet,
                                       nn::Arch::kVGG};
  for (const nn::Arch arch : archs) {
    nn::ModelSpec spec;
    spec.arch = arch;
    spec.input_shape = {3, 12, 12};
    spec.num_classes = 20;
    spec.width = 8;
    spec.seed = 99;
    auto single = nn::MakeClassifier(spec);
    auto dual = nn::MakeDualChannelClassifier(spec);
    const double overhead =
        100.0 *
        (static_cast<double>(dual->ParameterCount()) - single->ParameterCount()) /
        static_cast<double>(single->ParameterCount());
    overhead_sum += overhead;
    params.AddRow({nn::ArchName(arch), std::to_string(single->ParameterCount()),
                   std::to_string(dual->ParameterCount()),
                   "+" + TextTable::Num(overhead, 2) + "%"});
  }
  params.Print(std::cout);
  std::cout << "average overhead +"
            << TextTable::Num(overhead_sum / archs.size(), 2)
            << "% (paper: +0.87%)\n\n";

  // ---- rounds to converge ----------------------------------------------------
  data::SyntheticVision gen(data::ChMnistLike());
  Rng rng(101);
  const data::Dataset train = gen.Sample(Scaled(200), rng);
  fl::ClientSpec cs;
  cs.model.arch = nn::Arch::kResNet;
  cs.model.input_shape = gen.SampleShape();
  cs.model.num_classes = 8;
  cs.model.width = 8;
  cs.model.seed = 102;
  cs.data = train;
  cs.train.lr = 0.02f;
  cs.train.momentum = 0.9f;
  const double target = 0.70;
  const std::size_t max_rounds = Scaled(60);

  cs.kind = fl::ClientKind::kLegacy;
  cs.seed = 103;
  const auto legacy = fl::MakeClient(cs);
  const std::size_t legacy_rounds = RoundsToConverge(
      *legacy, fl::InitialStateFor(cs), target, max_rounds, 104);

  cs.kind = fl::ClientKind::kCip;
  cs.cip.blend.alpha = 0.5f;
  cs.cip.perturb_steps = 6;
  cs.seed = 105;
  const auto cip = fl::MakeClient(cs);
  const std::size_t cip_rounds =
      RoundsToConverge(*cip, fl::InitialStateFor(cs), target, max_rounds, 106);

  TextTable conv({"Model", "rounds to reach train acc >= 0.70"});
  conv.AddRow({"No defense", std::to_string(legacy_rounds)});
  conv.AddRow({"CIP", std::to_string(cip_rounds)});
  conv.Print(std::cout);
  std::cout << "\nNote: the paper reports CIP converging in half the epochs\n"
               "at full scale; at laptop scale the two-step optimization's\n"
               "per-round cost dominates, so we report rounds honestly and\n"
               "discuss the deviation in EXPERIMENTS.md.\n\n";

  // ---- round telemetry -------------------------------------------------------
  // A small CIP federation through the round engine; every round's timings
  // (per-client train time with the Step I / Step II split, plus the
  // coordinator's broadcast and aggregate time) land in FlLog::telemetry.
  const std::size_t num_clients = 4;
  Rng shard_rng(107);
  const data::Dataset fed_data =
      gen.Sample(Scaled(50) * num_clients, shard_rng);
  const std::vector<data::Dataset> shards =
      data::PartitionIid(fed_data, num_clients, shard_rng);
  fl::ClientStore store;  // live store owns the telemetry federation
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec fs = cs;  // CIP kind + knobs from above
    fs.data = shards[k];
    fs.seed = 108 + k;
    store.Add(fl::MakeClient(fs));
  }
  fl::FlOptions options;
  options.rounds = 3;
  fl::FederatedAveraging server(fl::InitialStateFor(cs), options);
  const fl::FlLog log = server.Run(store, /*run_seed=*/109);

  TextTable rounds_table(
      {"Round", "broadcast s", "train wall s", "aggregate s", "mean step1 s",
       "mean step2 s"});
  for (const fl::RoundStats& r : log.telemetry.rounds) {
    double s1 = 0.0, s2 = 0.0;
    for (const fl::ClientRoundStats& c : r.clients) {
      s1 += c.step1_seconds;
      s2 += c.step2_seconds;
    }
    const double n =
        r.clients.empty() ? 1.0 : static_cast<double>(r.clients.size());
    rounds_table.AddRow({std::to_string(r.round),
                         TextTable::Num(r.broadcast_seconds, 4),
                         TextTable::Num(r.train_wall_seconds, 4),
                         TextTable::Num(r.aggregate_seconds, 4),
                         TextTable::Num(s1 / n, 4),
                         TextTable::Num(s2 / n, 4)});
  }
  rounds_table.Print(std::cout);

  const char* jsonl_path = "table11_round_telemetry.jsonl";
  std::ofstream jsonl(jsonl_path);
  log.telemetry.WriteJsonl(jsonl);
  std::cout << "\nper-round telemetry written to " << jsonl_path << " ("
            << log.telemetry.rounds.size() << " JSONL records)\n";
  return 0;
}
