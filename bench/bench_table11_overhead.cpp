// Table XI (RQ5): parameter-count and convergence overhead of CIP vs the
// conventional (no-defense) model.
//
// Paper: CIP adds +0.87% parameters on average (only the concatenated head
// widens; the backbone is shared) and halves the epochs to converge.
#include <iostream>

#include "bench_util.h"
#include "core/cip_client.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/server.h"

using namespace cip;

namespace {

/// Rounds until the client-side training accuracy crosses `target`.
std::size_t RoundsToConverge(fl::ClientBase& client,
                             const fl::ModelState& init, double target,
                             std::size_t max_rounds, Rng& rng) {
  client.SetGlobal(init);
  for (std::size_t r = 1; r <= max_rounds; ++r) {
    client.TrainLocal(r, rng);
    if (client.EvalAccuracy(client.LocalData()) >= target) return r;
  }
  return max_rounds;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table XI — overhead: parameters and rounds to converge",
      "params +0.87% on average (shared backbone, wider head); epochs -50%",
      "param overhead ~1%; convergence within the same order as no-defense");
  bench::BenchTimer timer;

  // ---- parameter counts ------------------------------------------------------
  TextTable params({"Model type", "No defense", "CIP (dual)", "overhead"});
  double overhead_sum = 0.0;
  const std::vector<nn::Arch> archs = {nn::Arch::kResNet, nn::Arch::kDenseNet,
                                       nn::Arch::kVGG};
  for (const nn::Arch arch : archs) {
    nn::ModelSpec spec;
    spec.arch = arch;
    spec.input_shape = {3, 12, 12};
    spec.num_classes = 20;
    spec.width = 8;
    spec.seed = 99;
    auto single = nn::MakeClassifier(spec);
    auto dual = nn::MakeDualChannelClassifier(spec);
    const double overhead =
        100.0 *
        (static_cast<double>(dual->ParameterCount()) - single->ParameterCount()) /
        static_cast<double>(single->ParameterCount());
    overhead_sum += overhead;
    params.AddRow({nn::ArchName(arch), std::to_string(single->ParameterCount()),
                   std::to_string(dual->ParameterCount()),
                   "+" + TextTable::Num(overhead, 2) + "%"});
  }
  params.Print(std::cout);
  std::cout << "average overhead +"
            << TextTable::Num(overhead_sum / archs.size(), 2)
            << "% (paper: +0.87%)\n\n";

  // ---- rounds to converge ----------------------------------------------------
  data::SyntheticVision gen(data::ChMnistLike());
  Rng rng(101);
  const data::Dataset train = gen.Sample(Scaled(200), rng);
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = 8;
  spec.width = 8;
  spec.seed = 102;
  fl::TrainConfig tcfg;
  tcfg.lr = 0.02f;
  tcfg.momentum = 0.9f;
  const double target = 0.70;
  const std::size_t max_rounds = Scaled(60);

  fl::LegacyClient legacy(spec, train, tcfg, 103);
  Rng r1(104);
  const std::size_t legacy_rounds =
      RoundsToConverge(legacy, fl::InitialState(spec), target, max_rounds, r1);

  core::CipConfig ccfg;
  ccfg.blend.alpha = 0.5f;
  ccfg.train = tcfg;
  ccfg.perturb_steps = 6;
  core::CipClient cip(spec, train, ccfg, 105);
  Rng r2(106);
  const std::size_t cip_rounds = RoundsToConverge(
      cip, core::InitialDualState(spec), target, max_rounds, r2);

  TextTable conv({"Model", "rounds to reach train acc >= 0.70"});
  conv.AddRow({"No defense", std::to_string(legacy_rounds)});
  conv.AddRow({"CIP", std::to_string(cip_rounds)});
  conv.Print(std::cout);
  std::cout << "\nNote: the paper reports CIP converging in half the epochs\n"
               "at full scale; at laptop scale the two-step optimization's\n"
               "per-round cost dominates, so we report rounds honestly and\n"
               "discuss the deviation in EXPERIMENTS.md.\n";
  return 0;
}
