// Figure 7: Earth-Mover distance between clients' training-loss
// distributions under different data heterogeneity, CIP vs no defense.
//
// Paper (CIFAR-100, 10 clients, alpha=0.3): under non-i.i.d. splits CIP
// shifts client distributions toward each other, reducing the average
// pairwise EMD of training-loss trajectories relative to no defense.
#include <iostream>

#include "bench_util.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/server.h"
#include "metrics/metrics.h"

using namespace cip;

namespace {

/// Average pairwise EMD between per-client loss trajectories.
double MeanPairwiseEmd(const std::vector<std::vector<float>>& per_round) {
  // per_round[round][client] -> per-client trajectory.
  const std::size_t clients = per_round.front().size();
  std::vector<std::vector<float>> traj(clients);
  for (const auto& round : per_round) {
    for (std::size_t k = 0; k < clients; ++k) traj[k].push_back(round[k]);
  }
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < clients; ++a) {
    for (std::size_t b = a + 1; b < clients; ++b) {
      total += metrics::EarthMoverDistance(traj[a], traj[b]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 7 — EMD of client training-loss distributions (alpha=0.3)",
      "CIP reduces inter-client loss-distribution EMD for non-i.i.d. data",
      "EMD(CIP) < EMD(NoDef) at low classes/client; gap closes toward iid");
  bench::BenchTimer timer;

  constexpr std::size_t kNumClasses = 20;
  const std::size_t clients = 6;  // paper: 10; scaled down
  const std::size_t rounds = Scaled(25);
  const std::size_t per_client = Scaled(80);
  data::SyntheticVision gen(data::Cifar100Like(kNumClasses));
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = kNumClasses;
  spec.width = 8;
  spec.seed = 63;
  fl::TrainConfig train;
  train.lr = 0.02f;
  train.momentum = 0.9f;

  TextTable table({"classes/client", "EMD NoDefense", "EMD CIP"});
  for (const std::size_t cpc : {4ul, 10ul, 20ul}) {
    Rng rng(64);
    data::Dataset full = gen.Sample(clients * per_client, rng);
    const auto shards =
        data::PartitionByClasses(full, clients, cpc, kNumClasses, rng);

    double emd_nodef = 0.0;
    {
      std::vector<std::unique_ptr<fl::LegacyClient>> cs;
      std::vector<fl::ClientBase*> ptrs;
      for (std::size_t k = 0; k < clients; ++k) {
        cs.push_back(
            std::make_unique<fl::LegacyClient>(spec, shards[k], train, 100 + k));
        ptrs.push_back(cs.back().get());
      }
      fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
      fl::FlOptions opts;
      opts.rounds = rounds;
      fl::FederatedAveraging server(fl::InitialState(spec), opts);
      const fl::FlLog log = server.Run(store, rng.NextU64());
      emd_nodef = MeanPairwiseEmd(log.client_losses);
    }
    double emd_cip = 0.0;
    {
      core::CipConfig cfg;
      cfg.blend.alpha = 0.3f;
      cfg.train = train;
      cfg.perturb_steps = 6;
      std::vector<std::unique_ptr<core::CipClient>> cs;
      std::vector<fl::ClientBase*> ptrs;
      for (std::size_t k = 0; k < clients; ++k) {
        cs.push_back(
            std::make_unique<core::CipClient>(spec, shards[k], cfg, 110 + k));
        ptrs.push_back(cs.back().get());
      }
      fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
      fl::FlOptions opts;
      opts.rounds = rounds;
      fl::FederatedAveraging server(core::InitialDualState(spec), opts);
      const fl::FlLog log = server.Run(store, rng.NextU64());
      emd_cip = MeanPairwiseEmd(log.client_losses);
    }
    table.AddRow({std::to_string(cpc), TextTable::Num(emd_nodef),
                  TextTable::Num(emd_cip)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: CIP's EMD is below NoDefense for heterogeneous\n"
               "(non-i.i.d.) splits — the mechanism behind Table III's "
               "accuracy gain.\n";
  return 0;
}
