// Table I: legacy-model (no defense) federated training across client counts
// and architectures — train/test accuracies of the internal-adversary setup.
//
// Paper (Table I, CIFAR-100): high train accuracy (0.92–0.99) with test
// accuracy falling as the client count grows (0.545 @ 2 clients down to
// ~0.33 @ 50 for ResNet). We reproduce the grid at reduced scale; the
// reproduction target is train >> test and test decreasing with #clients.
#include <iostream>

#include "bench_util.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/server.h"

using namespace cip;

namespace {

struct Row {
  nn::Arch arch;
  std::size_t clients;
  std::size_t rounds;
  double paper_train, paper_test;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Table I — internal setup: legacy FL accuracy vs #clients and arch",
      "ResNet: 0.970/0.545 @2cl ... 0.924/0.328 @50cl; similar for "
      "DenseNet/VGG",
      "train acc near 1, test acc decreasing as #clients grows");
  bench::BenchTimer timer;

  const std::vector<Row> grid = {
      {nn::Arch::kResNet, 2, Scaled(40), 0.970, 0.545},
      {nn::Arch::kResNet, 5, Scaled(40), 0.985, 0.543},
      {nn::Arch::kResNet, 10, Scaled(45), 0.975, 0.529},
      {nn::Arch::kDenseNet, 2, Scaled(40), 0.943, 0.565},
      {nn::Arch::kDenseNet, 5, Scaled(40), 0.921, 0.587},
      {nn::Arch::kVGG, 2, Scaled(40), 0.907, 0.613},
      {nn::Arch::kVGG, 5, Scaled(40), 0.882, 0.614},
  };

  data::SyntheticVision gen(data::Cifar100Like(20));
  TextTable table({"Model", "#clients", "#rounds", "train acc (paper)",
                   "test acc (paper)"});
  for (const Row& row : grid) {
    Rng rng(17);
    const std::size_t per_client = Scaled(120);
    data::Dataset full = gen.Sample(row.clients * per_client, rng);
    const auto shards =
        data::PartitionByClasses(full, row.clients, 4, 20, rng);
    const data::Dataset test = gen.Sample(Scaled(300), rng);

    nn::ModelSpec spec;
    spec.arch = row.arch;
    spec.input_shape = gen.SampleShape();
    spec.num_classes = 20;
    spec.width = 8;
    spec.seed = 19;
    fl::TrainConfig cfg;
    cfg.lr = 0.02f;
    cfg.momentum = 0.9f;

    std::vector<std::unique_ptr<fl::LegacyClient>> clients;
    std::vector<fl::ClientBase*> ptrs;
    for (std::size_t k = 0; k < row.clients; ++k) {
      clients.push_back(
          std::make_unique<fl::LegacyClient>(spec, shards[k], cfg, 100 + k));
      ptrs.push_back(clients.back().get());
    }
    fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
    fl::FlOptions opts;
    opts.rounds = row.rounds;
    fl::FederatedAveraging server(fl::InitialState(spec), opts);
    server.Run(store, rng.NextU64());

    double train_acc = 0.0, test_acc = 0.0;
    for (std::size_t k = 0; k < ptrs.size(); ++k) {
      train_acc += ptrs[k]->EvalAccuracy(ptrs[k]->LocalData());
      test_acc += ptrs[k]->EvalAccuracy(test);
    }
    train_acc /= static_cast<double>(ptrs.size());
    test_acc /= static_cast<double>(ptrs.size());
    table.AddRow({nn::ArchName(row.arch), std::to_string(row.clients),
                  std::to_string(row.rounds),
                  TextTable::Num(train_acc) + " (" +
                      TextTable::Num(row.paper_train) + ")",
                  TextTable::Num(test_acc) + " (" +
                      TextTable::Num(row.paper_test) + ")"});
  }
  table.Print(std::cout);
  std::cout << "\nNote: paper grid extends to 20/50 clients with 1500-3000\n"
               "rounds; run with CIP_SCALE>=4 to approach that regime.\n";
  return 0;
}
