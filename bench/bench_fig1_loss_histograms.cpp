// Figure 1: member vs non-member loss distributions, without and with CIP.
//
// Paper: on the original model θ*, member and non-member loss distributions
// are "drastically different" (Fig. 1a); on the CIP-shifted model θ*_B they
// overlap heavily (Fig. 1b). We reproduce the two distributions and report
// their Earth-Mover distance plus a coarse density table.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "core/cip_model.h"
#include "eval/experiment.h"
#include "metrics/metrics.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Figure 1 — loss distributions before/after CIP (ResNet, CIFAR-100)",
      "members/non-members separable on θ*; overlapping on the shifted θ*_B",
      "EMD(member, non-member) large without CIP, small with CIP");
  bench::BenchTimer timer;

  eval::BundleOptions opts;
  opts.train_size = Scaled(300);
  opts.test_size = Scaled(300);
  opts.shadow_size = 50;  // unused here
  opts.width = 8;
  opts.num_classes = 10;
  opts.seed = 11;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kCifar100, opts);
  Rng rng(12);

  // (a) no defense: overfit single model.
  auto plain = eval::TrainPlain(bundle, Scaled(50), rng);
  const std::vector<float> plain_m = fl::PerSampleLosses(*plain, bundle.train);
  const std::vector<float> plain_n = fl::PerSampleLosses(*plain, bundle.test);

  // (b) CIP: losses an adversary sees via raw queries B(x, 0).
  eval::CipSingleResult cip =
      eval::TrainCipSingle(bundle, /*alpha=*/0.5f, Scaled(35), rng);
  core::CipQuery raw(cip.client->model(), cip.client->config().blend);
  const std::vector<float> cip_m = raw.Losses(bundle.train);
  const std::vector<float> cip_n = raw.Losses(bundle.test);

  auto report = [&](const std::string& label, const std::vector<float>& m,
                    const std::vector<float>& n) {
    std::cout << "\n" << label << "\n";
    TextTable t({"loss bucket", "member density", "non-member density"});
    const std::vector<double> hm = Histogram(m, 0.0, 6.0, 6);
    const std::vector<double> hn = Histogram(n, 0.0, 6.0, 6);
    for (std::size_t b = 0; b < hm.size(); ++b) {
      t.AddRow({"[" + TextTable::Num(b * 1.0, 0) + ", " +
                    TextTable::Num(b + 1.0, 0) + ")",
                TextTable::Num(hm[b]), TextTable::Num(hn[b])});
    }
    t.Print(std::cout);
    std::cout << "mean member loss " << TextTable::Num(Mean(std::span<const float>(m)))
              << ", mean non-member loss "
              << TextTable::Num(Mean(std::span<const float>(n))) << ", EMD "
              << TextTable::Num(metrics::EarthMoverDistance(m, n)) << "\n";
  };
  report("(a) No defense — original model theta*", plain_m, plain_n);
  report("(b) CIP (alpha=0.5) — shifted model theta*_B, raw queries", cip_m,
         cip_n);

  std::cout << "\nExpected: EMD in (b) is a small fraction of EMD in (a).\n";
  return 0;
}
