// Table IV (RQ3): precision, recall, F1 and accuracy of the five attacks
// against CIP at alpha = 0.7 on the four datasets.
//
// Paper: recall generally below 0.5 and precision around 0.5 — CIP makes the
// attacker misclassify members as non-members (high false negatives);
// Pb-Bayes retains the highest accuracy (0.62 on CIFAR-100).
#include <iostream>

#include "bench_util.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table IV — precision/recall/F1/accuracy of attacks vs CIP (a=0.7)",
      "recall < 0.5, precision ~0.5; Pb-Bayes strongest (acc 0.54-0.62)",
      "CIP suppresses recall more than precision; accuracies near 0.5");
  bench::BenchTimer timer;

  const std::vector<eval::DatasetId> datasets = {
      eval::DatasetId::kCifar100, eval::DatasetId::kCifarAug,
      eval::DatasetId::kChMnist, eval::DatasetId::kPurchase50};

  TextTable table(
      {"Dataset", "Attack", "Precision", "Recall", "F1", "Accuracy"});
  for (const eval::DatasetId id : datasets) {
    eval::BundleOptions opts;
    opts.train_size = Scaled(250);
    opts.test_size = Scaled(250);
    opts.shadow_size = Scaled(250);
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 73;
    const eval::DataBundle bundle = eval::MakeBundle(id, opts);
    Rng rng(74);
    const eval::ShadowPack shadow =
        eval::BuildShadowPack(bundle, Scaled(45), rng);
    const eval::CipExternalResult r =
        eval::RunCipExternal(bundle, &shadow, /*alpha=*/0.7f, Scaled(28), rng);
    for (const auto& [name, m] : r.attacks) {
      table.AddRow({eval::DatasetName(id), name, TextTable::Num(m.precision),
                    TextTable::Num(m.recall), TextTable::Num(m.f1),
                    TextTable::Num(m.accuracy)});
    }
  }
  table.Print(std::cout);
  return 0;
}
