// Table V (RQ3): CIP's testing accuracy across alpha on the four datasets.
//
// Paper: accuracy within noise of no-defense for alpha <= 0.5, sometimes
// better (e.g. CH-MNIST 0.921 @0.1 vs 0.899 no-defense); mild drop (~1.6%
// avg) at alpha >= 0.7.
#include <iostream>

#include "bench_util.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table V — CIP testing accuracy vs alpha",
      "CIFAR-100 .323->.335@.1->.316@.9; CH-MNIST .899->.921@.1->.892@.9",
      "accuracy flat-to-slightly-better at small alpha, mild drop at 0.9");
  bench::BenchTimer timer;

  struct Row {
    eval::DatasetId id;
    double paper_nodef;
    std::map<float, double> paper;
  };
  const std::vector<Row> grid = {
      {eval::DatasetId::kCifar100, 0.323, {{0.1f, 0.335}, {0.5f, 0.327}, {0.9f, 0.316}}},
      {eval::DatasetId::kCifarAug, 0.434, {{0.1f, 0.474}, {0.5f, 0.436}, {0.9f, 0.398}}},
      {eval::DatasetId::kChMnist, 0.899, {{0.1f, 0.921}, {0.5f, 0.905}, {0.9f, 0.892}}},
      {eval::DatasetId::kPurchase50, 0.755, {{0.1f, 0.768}, {0.5f, 0.754}, {0.9f, 0.741}}},
  };

  TextTable table({"Dataset", "NoDef (paper)", "a=0.1 (paper)",
                   "a=0.5 (paper)", "a=0.9 (paper)"});
  for (const Row& row : grid) {
    eval::BundleOptions opts;
    opts.train_size = Scaled(250);
    opts.test_size = Scaled(250);
    opts.shadow_size = 50;
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 75;
    const eval::DataBundle bundle = eval::MakeBundle(row.id, opts);
    Rng rng(76);
    auto plain = eval::TrainPlain(bundle, Scaled(40), rng);
    std::vector<std::string> cells = {
        eval::DatasetName(row.id),
        TextTable::Num(fl::Evaluate(*plain, bundle.test)) + " (" +
            TextTable::Num(row.paper_nodef) + ")"};
    for (const float alpha : {0.1f, 0.5f, 0.9f}) {
      const eval::CipExternalResult r =
          eval::RunCipExternal(bundle, nullptr, alpha, Scaled(28), rng);
      cells.push_back(TextTable::Num(r.test_acc) + " (" +
                      TextTable::Num(row.paper.at(alpha)) + ")");
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  return 0;
}
