// Figure 5: internal adversary — CIP vs DP across model architectures and
// across DP's privacy budget ε (2 clients).
//
// Paper: all three architectures show the same ordering (CIP keeps accuracy,
// DP trades accuracy against ε); attack accuracy rises with ε for DP while
// CIP stays near random guessing.
#include <iostream>

#include "bench_util.h"
#include "eval/internal_experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Figure 5 — internal adversary: architectures and epsilon sweep",
      "test acc: DP << CIP for every arch; DP attack acc grows with eps",
      "same ordering for VGG/DenseNet/ResNet; eps sweep shows the trade-off");
  bench::BenchTimer timer;

  TextTable arch_table({"Arch", "Defense", "test acc", "passive attack"});
  for (const nn::Arch arch :
       {nn::Arch::kVGG, nn::Arch::kDenseNet, nn::Arch::kResNet}) {
    for (const auto defense :
         {eval::InternalDefense::kCip, eval::InternalDefense::kDp}) {
      eval::InternalExpConfig cfg;
      cfg.arch = arch;
      cfg.defense = defense;
      cfg.num_clients = 2;
      cfg.rounds = Scaled(30);
      cfg.samples_per_client = Scaled(100);
      cfg.alpha = 0.5f;
      cfg.epsilon = 16.0f;
      cfg.seed = 31;
      Rng rng(32);
      const eval::InternalExpResult r = eval::RunInternalExperiment(cfg, rng);
      arch_table.AddRow({nn::ArchName(arch),
                         eval::InternalDefenseName(defense),
                         TextTable::Num(r.test_acc),
                         TextTable::Num(r.passive_attack_acc)});
    }
  }
  std::cout << "(a/b) Architecture comparison (CIP alpha=0.5 vs DP eps=16):\n";
  arch_table.Print(std::cout);

  TextTable eps_table({"epsilon", "DP test acc", "DP passive attack"});
  for (const float eps : {1.0f, 8.0f, 64.0f}) {
    eval::InternalExpConfig cfg;
    cfg.defense = eval::InternalDefense::kDp;
    cfg.num_clients = 2;
    cfg.rounds = Scaled(30);
    cfg.samples_per_client = Scaled(100);
    cfg.epsilon = eps;
    cfg.seed = 33;
    Rng rng(34);
    const eval::InternalExpResult r = eval::RunInternalExperiment(cfg, rng);
    eps_table.AddRow({TextTable::Num(eps, 0), TextTable::Num(r.test_acc),
                      TextTable::Num(r.passive_attack_acc)});
  }
  std::cout << "\nDP epsilon sweep (ResNet):\n";
  eps_table.Print(std::cout);
  std::cout << "\nPaper: test acc below 0.1 at eps=1, ~0.3 at eps=256; attack\n"
               "accuracy near 0.5 for eps<64 and rising with eps.\n";
  return 0;
}
