// Federated round-engine benchmark and baseline (BENCH_fl_rounds.json).
//
// Measures the parallel client phase of FederatedAveraging::Run along the two
// axes that matter for it:
//   1. determinism — the same 4-client/3-round federation must produce
//      bit-identical final_global and client_losses at a worker budget of 1
//      and of 4 (the round engine's hard invariant);
//   2. overlap — with clients whose round cost is dominated by waiting
//      (sleeping stand-ins for I/O- or accelerator-bound clients), a budget
//      of 4 must cover 4 clients in roughly one client's time; this holds
//      on any host, single-core containers included. The compute-bound
//      federation is timed too and its speedup is reported honestly — it can
//      only exceed 1 when the host actually has spare cores, so the gate on
//      it applies where hardware_concurrency >= 4.
//
// Run via scripts/bench_baseline.sh, which commits the JSON output.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "fl/client_factory.h"
#include "fl/server.h"

using namespace cip;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A client whose round is pure latency: sleep, then echo the broadcast.
/// Stands in for clients bottlenecked on I/O or a remote accelerator, and
/// makes the engine's client-phase overlap measurable even on one core.
class SleepClient : public fl::ClientBase {
 public:
  SleepClient(std::chrono::milliseconds delay, data::Dataset data)
      : delay_(delay), data_(std::move(data)) {}

  void SetGlobal(const fl::ModelState& global) override { state_ = global; }
  fl::ModelState TrainLocal(fl::RoundContext /*ctx*/) override {
    std::this_thread::sleep_for(delay_);
    return state_;
  }
  double EvalAccuracy(const data::Dataset&) override { return 0.0; }
  float LastTrainLoss() const override { return 0.0f; }
  const data::Dataset& LocalData() const override { return data_; }

 private:
  std::chrono::milliseconds delay_;
  data::Dataset data_;
  fl::ModelState state_;
};

struct Federation {
  fl::ClientStore store;
  fl::ModelState init;
};

/// Fresh 4-client legacy federation as a cold store (clients are stateful;
/// every Run needs its own store).
Federation MakeComputeFederation(std::size_t num_clients,
                                 std::size_t samples_per_client) {
  data::SyntheticPurchase gen(data::Purchase50Like());
  Rng data_rng(7);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kLegacy;
  proto.model.arch = nn::Arch::kMLP;
  proto.model.input_shape = gen.SampleShape();
  proto.model.num_classes = gen.config().num_classes;
  proto.model.width = 16;
  proto.model.seed = 11;
  proto.train.lr = 0.05f;
  proto.train.momentum = 0.9f;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = gen.Sample(samples_per_client, data_rng);
    spec.seed = 13 + k;
    specs.push_back(std::move(spec));
  }
  return Federation{fl::MakeClientStore(std::move(specs)),
                    fl::InitialStateFor(proto)};
}

fl::FlLog RunFederation(Federation& fed, std::size_t rounds,
                        std::size_t budget, std::uint64_t run_seed) {
  fl::FlOptions options;
  options.rounds = rounds;
  options.max_parallel_clients = budget;
  fl::FederatedAveraging server(fed.init, options);
  return server.Run(fed.store, run_seed);
}

bool BitIdentical(const fl::FlLog& a, const fl::FlLog& b) {
  const std::span<const float> av = a.final_global.values();
  const std::span<const float> bv = b.final_global.values();
  if (av.size() != bv.size()) return false;
  // memcmp, not ==: bit-identity is the claim (distinguishes -0.0f, NaNs).
  if (std::memcmp(av.data(), bv.data(), av.size() * sizeof(float)) != 0) {
    return false;
  }
  if (a.client_losses.size() != b.client_losses.size()) return false;
  for (std::size_t r = 0; r < a.client_losses.size(); ++r) {
    const auto& ar = a.client_losses[r];
    const auto& br = b.client_losses[r];
    if (ar.size() != br.size()) return false;
    if (std::memcmp(ar.data(), br.data(), ar.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

void PutNum(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* output_path = "BENCH_fl_rounds.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "FL round engine — parallel client phase",
      "n/a (infrastructure bench; enables the paper's 5-20 client settings)",
      "bit-identical results across worker budgets; latency-bound speedup ~4x");
  bench::BenchTimer timer;

  const std::size_t kClients = 4;
  const std::size_t kRounds = 3;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // ---- determinism gate ------------------------------------------------------
  Federation fed1 = MakeComputeFederation(kClients, Scaled(100));
  Federation fed4 = MakeComputeFederation(kClients, Scaled(100));
  const fl::FlLog log1 = RunFederation(fed1, kRounds, /*budget=*/1, 21);
  const fl::FlLog log4 = RunFederation(fed4, kRounds, /*budget=*/4, 21);
  const bool identical = BitIdentical(log1, log4);
  std::cout << "determinism (budget 1 vs 4): "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";

  // ---- compute-bound timing --------------------------------------------------
  // Real local training; on a single-core host the workers time-share and the
  // speedup honestly sits near (or below) 1.
  const int kReps = 3;
  double compute_s1 = 1e300, compute_s4 = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Federation f1 = MakeComputeFederation(kClients, Scaled(100));
    auto t0 = Clock::now();
    RunFederation(f1, kRounds, 1, 33 + rep);
    compute_s1 = std::min(compute_s1, SecondsSince(t0));
    Federation f4 = MakeComputeFederation(kClients, Scaled(100));
    t0 = Clock::now();
    RunFederation(f4, kRounds, 4, 33 + rep);
    compute_s4 = std::min(compute_s4, SecondsSince(t0));
  }
  const double compute_speedup = compute_s1 / compute_s4;

  // ---- latency-bound timing --------------------------------------------------
  const auto kDelay = std::chrono::milliseconds(50);
  data::SyntheticPurchase gen(data::Purchase50Like());
  Rng sleep_rng(3);
  const data::Dataset tiny = gen.Sample(4, sleep_rng);
  double sleep_s1 = 1e300, sleep_s4 = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const std::size_t budget : {std::size_t{1}, std::size_t{4}}) {
      Federation fed;  // default store is live; sleep clients persist in it
      for (std::size_t k = 0; k < kClients; ++k) {
        fed.store.Add(std::make_unique<SleepClient>(kDelay, tiny));
      }
      fed.init = fl::ModelState(std::vector<float>(64, 0.5f));
      const auto t0 = Clock::now();
      RunFederation(fed, kRounds, budget, 55 + rep);
      const double s = SecondsSince(t0);
      (budget == 1 ? sleep_s1 : sleep_s4) =
          std::min(budget == 1 ? sleep_s1 : sleep_s4, s);
    }
  }
  const double sleep_speedup = sleep_s1 / sleep_s4;

  TextTable table({"Workload", "budget=1 s", "budget=4 s", "speedup"});
  table.AddRow({"compute-bound (4 MLP clients)", TextTable::Num(compute_s1, 3),
                TextTable::Num(compute_s4, 3),
                TextTable::Num(compute_speedup, 2) + "x"});
  table.AddRow({"latency-bound (4 x 50ms sleep)", TextTable::Num(sleep_s1, 3),
                TextTable::Num(sleep_s4, 3),
                TextTable::Num(sleep_speedup, 2) + "x"});
  table.Print(std::cout);
  std::cout << "host hardware_concurrency=" << hw << "\n";

  // ---- JSON baseline ---------------------------------------------------------
  std::ofstream js(output_path);
  js << "{\n  \"schema\": \"cip-bench-fl-rounds/v1\",\n"
     << "  \"host\": {\"num_cpus\": " << hw << ", \"cip_build_type\": \""
#ifdef NDEBUG
     << "release"
#else
     << "debug"
#endif
     << "\"},\n"
     << "  \"setup\": {\"clients\": " << kClients
     << ", \"rounds\": " << kRounds << ", \"budgets\": [1, 4]},\n"
     << "  \"determinism\": {\"bit_identical\": "
     << (identical ? "true" : "false") << "},\n"
     << "  \"compute_bound\": {\"budget1_seconds\": ";
  PutNum(js, compute_s1);
  js << ", \"budget4_seconds\": ";
  PutNum(js, compute_s4);
  js << ", \"speedup\": ";
  PutNum(js, compute_speedup);
  js << "},\n  \"latency_bound\": {\"sleep_ms_per_client\": 50, "
     << "\"budget1_seconds\": ";
  PutNum(js, sleep_s1);
  js << ", \"budget4_seconds\": ";
  PutNum(js, sleep_s4);
  js << ", \"speedup\": ";
  PutNum(js, sleep_speedup);
  js << "}\n}\n";
  js.close();
  std::cout << "baseline written to " << output_path << "\n";

  // ---- gates -----------------------------------------------------------------
  bool ok = identical;
  if (!identical) {
    std::cerr << "FAIL: results differ across worker budgets\n";
  }
  if (sleep_speedup < 2.0) {
    std::cerr << "FAIL: latency-bound speedup " << sleep_speedup
              << "x < 2x — client phase is not overlapping\n";
    ok = false;
  }
  if (hw >= 4 && compute_speedup < 2.0) {
    std::cerr << "FAIL: compute-bound speedup " << compute_speedup
              << "x < 2x on a " << hw << "-core host\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
