// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints (i) what the paper reports, (ii) what this reproduction
// measures at the current CIP_SCALE, and (iii) the qualitative expectation
// that should hold ("shape"). Absolute numbers differ from the paper —
// models and datasets are laptop-scale stand-ins (DESIGN.md §2) — but the
// orderings and trends are the reproduction target.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "common/env.h"
#include "common/table.h"

namespace cip::bench {

inline void PrintHeader(const std::string& experiment_id,
                        const std::string& paper_claim,
                        const std::string& expected_shape) {
  std::cout << "==========================================================\n"
            << experiment_id << "\n"
            << "----------------------------------------------------------\n"
            << "Paper:  " << paper_claim << "\n"
            << "Shape:  " << expected_shape << "\n"
            << "Scale:  CIP_SCALE=" << BenchScale()
            << " (raise for closer-to-paper sizes)\n"
            << "==========================================================\n";
}

/// Prints elapsed wall time at scope exit.
class BenchTimer {
 public:
  explicit BenchTimer(std::string label = "total")
      : label_(std::move(label)), start_(std::chrono::steady_clock::now()) {}
  ~BenchTimer() {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::cout << "[" << label_ << ": " << TextTable::Num(secs, 1) << "s]\n";
  }

 private:
  std::string label_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cip::bench
