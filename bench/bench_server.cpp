// Standalone-server load benchmark and baseline (BENCH_server.json).
//
// Drives the socket server (net/server.h) with ~1k concurrent TCP clients
// from a single thread: one CipServer::Step(0) interleaved with a poll(2)
// loop over non-blocking client state machines, all on loopback. This is the
// acceptance gate for the wire stack:
//   1. load — 1000 concurrent connections, first-900-of-1000 asynchronous
//      rounds (stragglers fold into the next round), 20 rounds; reports
//      rounds/sec and steady-state p50/p99 round-close latency.
//   2. admission — 10 extra dials beyond max_connections must each receive
//      kBusy with a retry hint and an orderly close (busy_rejections > 0).
//   3. determinism — a small synchronous run (quorum == fleet) over real
//      sockets must be bit-identical to feeding AsyncRoundEngine directly,
//      and every client's kFinal payload must equal the server's aggregate.
// tools/bench_to_json.py --check-server regates the committed JSON in CI.
//
// No training happens here: clients answer each kRound with a cheap
// deterministic function of (global, round, id), so the numbers measure
// framing, multiplexing and the aggregation fold — not SGD.
//
// Run via scripts/bench_baseline.sh, which commits the JSON output.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "net/frame.h"
#include "net/round_engine.h"
#include "net/server.h"
#include "net/socket.h"

using namespace cip;
using namespace cip::net;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set size of this process so far, in bytes (Linux
/// ru_maxrss is reported in kilobytes).
std::size_t PeakRssBytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

void PutNum(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

bool SameBits(const fl::ModelState& a, const fl::ModelState& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.values().data(), b.values().data(),
                                   a.size() * sizeof(float)) == 0);
}

/// Deterministic non-trivial initial global: the run must aggregate real
/// numbers, not zeros, for the bit-identity check to mean anything.
fl::ModelState InitialState(std::size_t floats) {
  std::vector<float> v(floats);
  for (std::size_t j = 0; j < floats; ++j) {
    v[j] = 0.001f * static_cast<float>(j % 97) - 0.048f;
  }
  return fl::ModelState(std::move(v));
}

/// The stand-in for local training: a pure function of (global, round, id),
/// identical on the wire path and the direct-engine path so the two runs
/// fold byte-identical updates.
fl::ModelState MakeUpdate(const fl::ModelState& global, std::uint64_t round,
                          std::uint64_t id) {
  const std::span<const float> g = global.values();
  std::vector<float> v(g.begin(), g.end());
  for (std::size_t j = 0; j < v.size(); ++j) {
    const std::uint64_t h = id * 31 + round * 7 + j;
    v[j] = 0.9f * v[j] + 0.001f * static_cast<float>(h % 13) - 0.006f;
  }
  return fl::ModelState(std::move(v));
}

/// One non-blocking client state machine for the load loop. An `extra`
/// client never sends kHello — it only exists to be refused with kBusy by
/// admission control.
struct FsmClient {
  enum class State {
    kConnecting,  ///< non-blocking connect in flight (poll for writable)
    kRunning,     ///< connected; exchanging frames
    kDone,        ///< got kFinal (fleet) or kBusy (extra); socket closed
    kFailed,      ///< unexpected EOF/error/frame — the run must not see any
  };

  Socket sock;
  FrameReader reader;
  std::string outbox;  ///< queued bytes; [out_off, size) still unsent
  std::size_t out_off = 0;
  std::uint64_t id = 0;
  State state = State::kConnecting;
  bool extra = false;          ///< dialed past the admission cap, expects kBusy
  bool welcomed = false;       ///< kWelcome received
  bool busy_refused = false;   ///< kBusy received (extras only)
  fl::ModelState final_global; ///< kFinal payload, checked against the server
};

/// Run shape for one socket fleet run.
struct RunConfig {
  std::size_t clients = 1000;      ///< fleet size == admission cap
  std::size_t quorum = 900;        ///< first K of N closes a round
  std::size_t rounds = 20;
  std::size_t model_floats = 2048; ///< ~8 KiB kRound/kUpdate payloads
  std::size_t extra_dials = 10;    ///< over-cap dials that must get kBusy
};

/// Everything a run reports back for the table/JSON.
struct RunResult {
  fl::ModelState final_global;
  double seconds = 0.0;
  std::vector<double> close_ts;  ///< seconds from start, one per round close
  EngineStats estats;
  ServerStats sstats;
  std::size_t busy_seen = 0;     ///< kBusy frames the extra clients received
  bool finals_match = true;      ///< every kFinal payload == server aggregate
  bool any_failed = false;
};

void FlushClient(FsmClient& c) {
  while (c.state == FsmClient::State::kRunning &&
         c.out_off < c.outbox.size()) {
    const IoResult r = SendSome(
        c.sock, std::span<const char>(c.outbox.data() + c.out_off,
                                      c.outbox.size() - c.out_off));
    if (r.would_block) return;
    if (r.error || r.closed) {
      c.state = FsmClient::State::kFailed;
      c.sock.Close();
      return;
    }
    c.out_off += r.bytes;
  }
  if (c.out_off >= c.outbox.size()) {
    c.outbox.clear();
    c.out_off = 0;
  }
}

void OnClientFrame(FsmClient& c, const Frame& f, RunResult& res) {
  switch (f.type) {
    case MsgType::kWelcome:
      DecodeWelcome(f.payload);
      c.welcomed = true;
      return;
    case MsgType::kRound: {
      const RoundMsg r = DecodeRound(f.payload);
      UpdateMsg u;
      u.round = r.round;
      u.client_id = c.id;
      u.loss = 0.5f;
      u.update = MakeUpdate(r.global, r.round, c.id);
      c.outbox.append(EncodeUpdate(u));
      return;
    }
    case MsgType::kFinal: {
      FinalMsg fin = DecodeFinal(f.payload);
      c.final_global = std::move(fin.global);
      c.state = FsmClient::State::kDone;
      c.sock.Close();
      return;
    }
    case MsgType::kBusy:
      DecodeBusy(f.payload);
      c.busy_refused = true;
      ++res.busy_seen;
      c.state = FsmClient::State::kDone;
      c.sock.Close();
      return;
    default:
      c.state = FsmClient::State::kFailed;
      c.sock.Close();
      return;
  }
}

void ReadClient(FsmClient& c, RunResult& res) {
  char buf[16384];
  while (c.state == FsmClient::State::kRunning) {
    const IoResult r = RecvSome(c.sock, std::span<char>(buf, sizeof(buf)));
    if (r.would_block) return;
    if (r.closed || r.error) {
      // The client closes its own socket on kFinal/kBusy, so EOF while
      // still running means the server hung up unexpectedly.
      c.state = FsmClient::State::kFailed;
      c.sock.Close();
      return;
    }
    c.reader.Feed(std::string_view(buf, r.bytes));
    while (c.state == FsmClient::State::kRunning) {
      const std::optional<Frame> f = c.reader.Next();
      if (!f) break;
      OnClientFrame(c, *f, res);
    }
    FlushClient(c);  // a kRound usually queues an update; push it now
  }
}

/// One poll cycle over every live client FSM. timeout_ms bounds the idle
/// wait, exactly like CipServer::Step.
void PumpClients(std::vector<FsmClient>& fsm, int timeout_ms, RunResult& res) {
  std::vector<PollItem> items(fsm.size());
  for (std::size_t i = 0; i < fsm.size(); ++i) {
    const FsmClient& c = fsm[i];
    PollItem& item = items[i];
    const bool live = c.state == FsmClient::State::kConnecting ||
                      c.state == FsmClient::State::kRunning;
    item.fd = live ? c.sock.fd() : -1;
    item.want_read = c.state == FsmClient::State::kRunning;
    item.want_write = c.state == FsmClient::State::kConnecting ||
                      (live && c.out_off < c.outbox.size());
  }
  Poll(items, timeout_ms);
  for (std::size_t i = 0; i < fsm.size(); ++i) {
    FsmClient& c = fsm[i];
    const PollItem& item = items[i];
    if (item.fd < 0) continue;
    if (item.broken) {
      c.state = FsmClient::State::kFailed;
      c.sock.Close();
      continue;
    }
    if (item.writable) {
      // Writability on a connecting socket means the handshake finished.
      if (c.state == FsmClient::State::kConnecting) {
        c.state = FsmClient::State::kRunning;
      }
      FlushClient(c);
    }
    if (item.readable) ReadClient(c, res);
  }
}

/// Drive one full fleet run over real sockets, single-threaded: the server's
/// Step(0) interleaved with the client poll loop until the run finishes and
/// every client reached a terminal state.
RunResult RunFleet(const RunConfig& cfg) {
  AsyncRoundEngine::Options eopts;
  eopts.total_rounds = cfg.rounds;
  eopts.fleet_size = cfg.clients;
  eopts.quorum = cfg.quorum;
  eopts.min_quorum = 1;
  eopts.run_seed = 2026;
  ServerOptions sopts;
  sopts.backlog = 256;
  sopts.max_connections = cfg.clients;
  CipServer server(InitialState(cfg.model_floats), eopts, sopts);
  server.Listen();
  const std::uint16_t port = server.port();

  RunResult res;
  std::vector<FsmClient> fsm;
  fsm.reserve(cfg.clients + cfg.extra_dials);
  std::size_t dialed = 0;
  bool extras_dialed = cfg.extra_dials == 0;
  std::size_t rounds_seen = 0;
  const Clock::time_point t0 = Clock::now();

  const auto pump_server = [&] {
    server.Step(0);
    const std::size_t closed = server.engine().telemetry().rounds.size();
    while (rounds_seen < closed) {
      ++rounds_seen;
      res.close_ts.push_back(SecondsSince(t0));
    }
  };

  while (true) {
    if (dialed < cfg.clients) {
      // Dial in batches well under the listen backlog, pumping the accept
      // loop in between, so the kernel queue never overflows.
      const std::size_t batch = std::min<std::size_t>(64, cfg.clients - dialed);
      for (std::size_t i = 0; i < batch; ++i, ++dialed) {
        FsmClient c;
        c.id = dialed;
        c.sock = ConnectTcpNonBlocking("127.0.0.1", port);
        HelloMsg hello;
        hello.client_id = c.id;
        c.outbox = EncodeHello(hello);
        fsm.push_back(std::move(c));
      }
    } else if (!extras_dialed &&
               std::all_of(fsm.begin(), fsm.end(), [](const FsmClient& c) {
                 return c.welcomed || c.state == FsmClient::State::kDone;
               })) {
      // Every admitted slot is occupied: dials past max_connections must be
      // refused with kBusy. Extras never send kHello — admission control
      // answers before identity is ever claimed.
      for (std::size_t i = 0; i < cfg.extra_dials; ++i) {
        FsmClient c;
        c.id = cfg.clients + i;
        c.sock = ConnectTcpNonBlocking("127.0.0.1", port);
        c.extra = true;
        fsm.push_back(std::move(c));
      }
      extras_dialed = true;
    }

    pump_server();
    // 1 ms idle bound: returns immediately whenever bytes are in flight, and
    // keeps the single-core loop from spinning hot when nothing is.
    PumpClients(fsm, /*timeout_ms=*/1, res);
    pump_server();

    const bool clients_terminal =
        std::all_of(fsm.begin(), fsm.end(), [](const FsmClient& c) {
          return c.state == FsmClient::State::kDone ||
                 c.state == FsmClient::State::kFailed;
        });
    if (server.finished() && dialed == cfg.clients && extras_dialed &&
        clients_terminal) {
      break;
    }
  }

  res.seconds = SecondsSince(t0);
  res.final_global = server.engine().global();
  res.estats = server.engine().stats();
  res.sstats = server.stats();
  for (const FsmClient& c : fsm) {
    if (c.state == FsmClient::State::kFailed) res.any_failed = true;
    if (!c.extra && !SameBits(c.final_global, res.final_global)) {
      res.finals_match = false;
    }
  }
  return res;
}

/// The same run shape fed to AsyncRoundEngine directly — no sockets, no
/// frames. With quorum == fleet the wire run must match this bit-for-bit.
fl::ModelState DirectRun(const RunConfig& cfg) {
  AsyncRoundEngine::Options eopts;
  eopts.total_rounds = cfg.rounds;
  eopts.fleet_size = cfg.clients;
  eopts.quorum = cfg.quorum;
  eopts.min_quorum = 1;
  eopts.run_seed = 2026;
  AsyncRoundEngine eng(InitialState(cfg.model_floats), eopts);
  for (std::uint64_t id = 0; id < cfg.clients; ++id) eng.OnJoin(id);
  for (std::uint64_t r = 1; r <= cfg.rounds; ++r) {
    const fl::ModelState g = eng.global();  // snapshot: the last id closes r
    for (std::uint64_t id = 0; id < cfg.clients; ++id) {
      UpdateMsg u;
      u.round = r;
      u.client_id = id;
      u.loss = 0.5f;
      u.update = MakeUpdate(g, r, id);
      eng.OnUpdate(id, u);
    }
  }
  return eng.global();
}

/// Percentile over `v` (copied and sorted), p in [0, 1].
double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(std::ceil(p * static_cast<double>(v.size()))) -
          (p > 0.0 ? 1 : 0));
  return v[idx] * 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* output_path = "BENCH_server.json";
  RunConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      cfg.clients = std::stoul(argv[++i]);  // exploratory runs only
      cfg.quorum = (cfg.clients * 9 + 9) / 10;
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      cfg.rounds = std::stoul(argv[++i]);  // exploratory runs only
    }
  }

  bench::PrintHeader(
      "Standalone server load — 1k concurrent connections, async rounds",
      "n/a (infrastructure bench; cross-device FL servers multiplex "
      "thousands of clients)",
      "single poll(2) thread sustains the fleet; quorum closes rounds "
      "before stragglers, admission overflow answers kBusy");
  bench::BenchTimer timer;

  EnsureFdLimit(2 * (cfg.clients + cfg.extra_dials) + 64);

  // ---- bit-identity: sockets vs direct engine feed ---------------------------
  // quorum == fleet makes the run synchronous, so the only degrees of freedom
  // left are framing and the event loop — which must contribute nothing.
  RunConfig small;
  small.clients = 8;
  small.quorum = 8;
  small.rounds = 5;
  small.model_floats = 64;
  small.extra_dials = 0;
  const RunResult small_run = RunFleet(small);
  const bool wire_identical =
      !small_run.any_failed && small_run.finals_match &&
      SameBits(small_run.final_global, DirectRun(small));
  std::cout << "determinism (8-client synchronous run, wire vs direct): "
            << (wire_identical ? "bit-identical" : "MISMATCH") << "\n";

  // ---- the 1k-connection load run --------------------------------------------
  const RunResult load = RunFleet(cfg);
  const double rounds_per_second =
      load.close_ts.empty() ? 0.0
                            : static_cast<double>(load.close_ts.size()) /
                                  load.close_ts.back();
  // Steady-state close-to-close latency: the delta series skips the first
  // close, whose timing is dominated by the 1k-connection ramp-up.
  std::vector<double> deltas;
  for (std::size_t i = 1; i < load.close_ts.size(); ++i) {
    deltas.push_back(load.close_ts[i] - load.close_ts[i - 1]);
  }
  const double p50_ms = PercentileMs(deltas, 0.50);
  const double p99_ms = PercentileMs(deltas, 0.99);
  const std::size_t peak_rss = PeakRssBytes();

  TextTable table({"Metric", "Value"});
  table.AddRow({"clients (quorum)", std::to_string(cfg.clients) + " (" +
                                        std::to_string(cfg.quorum) + ")"});
  table.AddRow({"rounds completed",
                std::to_string(load.estats.rounds_completed)});
  table.AddRow({"wall seconds", TextTable::Num(load.seconds, 2)});
  table.AddRow({"rounds/sec", TextTable::Num(rounds_per_second, 2)});
  table.AddRow({"round latency p50 ms", TextTable::Num(p50_ms, 2)});
  table.AddRow({"round latency p99 ms", TextTable::Num(p99_ms, 2)});
  table.AddRow({"updates accepted",
                std::to_string(load.estats.updates_accepted)});
  table.AddRow({"folded stragglers",
                std::to_string(load.estats.folded_stragglers)});
  table.AddRow({"busy rejections",
                std::to_string(load.sstats.busy_rejections)});
  table.AddRow({"protocol errors",
                std::to_string(load.estats.protocol_errors +
                               load.sstats.protocol_errors)});
  table.AddRow({"MiB sent / received",
                TextTable::Num(static_cast<double>(load.sstats.bytes_sent) /
                                   (1 << 20), 1) + " / " +
                    TextTable::Num(
                        static_cast<double>(load.sstats.bytes_received) /
                            (1 << 20), 1)});
  table.AddRow({"peak RSS MiB",
                TextTable::Num(static_cast<double>(peak_rss) / (1 << 20), 1)});
  table.Print(std::cout);

  // ---- JSON baseline ---------------------------------------------------------
  std::ofstream js(output_path);
  js << "{\n  \"schema\": \"cip-bench-server/v1\",\n"
     << "  \"host\": {\"num_cpus\": " << ParallelThreads()
     << ", \"cip_build_type\": \""
#ifdef NDEBUG
     << "release"
#else
     << "debug"
#endif
     << "\"},\n"
     << "  \"setup\": {\"clients\": " << cfg.clients
     << ", \"quorum\": " << cfg.quorum << ", \"rounds\": " << cfg.rounds
     << ", \"model_floats\": " << cfg.model_floats
     << ", \"extra_dials\": " << cfg.extra_dials << "},\n"
     << "  \"determinism\": {\"bit_identical\": "
     << (wire_identical ? "true" : "false") << "},\n"
     << "  \"server\": {\"seconds\": ";
  PutNum(js, load.seconds);
  js << ", \"rounds_per_second\": ";
  PutNum(js, rounds_per_second);
  js << ",\n    \"round_latency_p50_ms\": ";
  PutNum(js, p50_ms);
  js << ", \"round_latency_p99_ms\": ";
  PutNum(js, p99_ms);
  js << ", \"peak_rss_bytes\": " << peak_rss
     << ",\n    \"stats\": {\"accepted_connections\": "
     << load.sstats.accepted_connections
     << ", \"busy_rejections\": " << load.sstats.busy_rejections
     << ", \"dropped_connections\": " << load.sstats.dropped_connections
     << ",\n      \"protocol_errors\": "
     << (load.estats.protocol_errors + load.sstats.protocol_errors)
     << ", \"rounds_completed\": " << load.estats.rounds_completed
     << ", \"updates_accepted\": " << load.estats.updates_accepted
     << ", \"folded_stragglers\": " << load.estats.folded_stragglers
     << ",\n      \"bytes_sent\": " << load.sstats.bytes_sent
     << ", \"bytes_received\": " << load.sstats.bytes_received << "}}\n}\n";
  js.close();
  std::cout << "baseline written to " << output_path << "\n";

  // ---- gates -----------------------------------------------------------------
  bool ok = true;
  if (!wire_identical) {
    std::cerr << "FAIL: wire run is not bit-identical to the direct engine "
                 "feed\n";
    ok = false;
  }
  if (load.any_failed || !load.finals_match) {
    std::cerr << "FAIL: a load client failed or received a mismatched "
                 "final aggregate\n";
    ok = false;
  }
  if (load.estats.rounds_completed != cfg.rounds) {
    std::cerr << "FAIL: completed " << load.estats.rounds_completed << " of "
              << cfg.rounds << " rounds\n";
    ok = false;
  }
  if (load.busy_seen != cfg.extra_dials ||
      load.sstats.busy_rejections < cfg.extra_dials) {
    std::cerr << "FAIL: " << load.busy_seen << " of " << cfg.extra_dials
              << " over-cap dials saw kBusy\n";
    ok = false;
  }
  if (load.estats.protocol_errors + load.sstats.protocol_errors != 0) {
    std::cerr << "FAIL: protocol errors on a clean run\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
