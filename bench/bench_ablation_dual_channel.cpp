// Ablation: the dual-channel architecture (DESIGN.md §5).
//
// The paper argues the second channel (1+α)x − αt preserves the original
// sample's features (indeed c1 + c2 = 2x before clipping), which is what
// keeps utility at high α. We compare full CIP against a single-channel
// variant that trains a plain classifier on only (1-α)x + αt.
#include <iostream>

#include "bench_util.h"
#include "core/blend.h"
#include "eval/experiment.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

using namespace cip;

namespace {

/// Train a plain classifier on the FIRST blended channel only.
double SingleChannelAccuracy(const eval::DataBundle& bundle, float alpha,
                             std::size_t epochs, Rng& rng) {
  core::BlendConfig blend;
  blend.alpha = alpha;
  const Tensor t =
      core::Perturbation::Random(bundle.train.SampleShape(), rng).tensor();
  const core::Blended btr = core::Blend(bundle.train.inputs, t, blend);
  data::Dataset blended_train{btr.c1, bundle.train.labels};

  auto model = nn::MakeClassifier(bundle.spec);
  fl::TrainConfig cfg = eval::DefaultTrainConfig(bundle);
  optim::Sgd opt(cfg.lr, cfg.momentum);
  for (std::size_t e = 0; e < epochs; ++e) {
    fl::TrainEpoch(*model, blended_train, opt, cfg, rng);
  }
  const core::Blended bte = core::Blend(bundle.test.inputs, t, blend);
  const data::Dataset blended_test{bte.c1, bundle.test.labels};
  return fl::Evaluate(*model, blended_test);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — dual-channel vs single-channel blending",
      "dual channel keeps features of x (c1 + c2 = 2x); single channel "
      "discards them as alpha grows",
      "dual-channel accuracy degrades slowly with alpha; single-channel "
      "collapses at high alpha");
  bench::BenchTimer timer;

  eval::BundleOptions opts;
  opts.train_size = Scaled(250);
  opts.test_size = Scaled(250);
  opts.shadow_size = 50;
  opts.width = 8;
  opts.seed = 111;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kChMnist, opts);
  Rng rng(112);

  TextTable table({"alpha", "dual-channel (CIP) test acc",
                   "single-channel test acc"});
  for (const float alpha : {0.1f, 0.5f, 0.9f}) {
    const eval::CipExternalResult dual =
        eval::RunCipExternal(bundle, nullptr, alpha, Scaled(28), rng);
    const double single =
        SingleChannelAccuracy(bundle, alpha, Scaled(40), rng);
    table.AddRow({TextTable::Num(alpha, 1), TextTable::Num(dual.test_acc),
                  TextTable::Num(single)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: the gap between the columns widens as alpha "
               "grows — the second channel is what preserves utility.\n";
  return 0;
}
