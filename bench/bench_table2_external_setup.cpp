// Table II: legacy-model (no defense) accuracy for the external-adversary
// setup — one client per dataset.
//
// Paper: CIFAR-100 0.998/0.323 (overfit), CIFAR-AUG 0.986/0.434,
// CH-MNIST 0.993/0.899 (well-trained), Purchase-50 0.991/0.755.
// Reproduction target: same ordering of regimes — CIFAR overfit with the
// lowest test accuracy, CH-MNIST well-trained with the highest, CIFAR-AUG
// between, Purchase-50 high.
#include <iostream>

#include "bench_util.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table II — external setup: legacy accuracy per dataset (1 client)",
      "CIFAR-100 .998/.323 | CIFAR-AUG .986/.434 | CH-MNIST .993/.899 | "
      "Purchase-50 .991/.755",
      "train >> test for CIFAR-100; CH-MNIST test acc highest");
  bench::BenchTimer timer;

  struct Row {
    eval::DatasetId id;
    double paper_train, paper_test;
    std::size_t epochs;
  };
  const std::vector<Row> grid = {
      {eval::DatasetId::kCifar100, 0.998, 0.323, Scaled(55)},
      {eval::DatasetId::kCifarAug, 0.986, 0.434, Scaled(55)},
      {eval::DatasetId::kChMnist, 0.993, 0.899, Scaled(45)},
      {eval::DatasetId::kPurchase50, 0.991, 0.755, Scaled(35)},
  };

  TextTable table({"Dataset", "Model", "train acc (paper)",
                   "test acc (paper)"});
  for (const Row& row : grid) {
    eval::BundleOptions opts;
    opts.train_size = Scaled(300);
    opts.test_size = Scaled(300);
    opts.shadow_size = 50;
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 23;
    const eval::DataBundle bundle = eval::MakeBundle(row.id, opts);
    Rng rng(24);
    auto model = eval::TrainPlain(bundle, row.epochs, rng);
    table.AddRow(
        {eval::DatasetName(row.id), nn::ArchName(bundle.spec.arch),
         TextTable::Num(fl::Evaluate(*model, bundle.train)) + " (" +
             TextTable::Num(row.paper_train) + ")",
         TextTable::Num(fl::Evaluate(*model, bundle.test)) + " (" +
             TextTable::Num(row.paper_test) + ")"});
  }
  table.Print(std::cout);
  return 0;
}
