// Fault-tolerant round engine benchmark and baseline
// (BENCH_fault_rounds.json).
//
// Exercises the round engine's degraded modes at bench scale and gates on
// the invariants docs/ROBUSTNESS.md promises:
//   1. determinism — a faulted federation (dropouts + mid-round failures +
//      retries) must produce bit-identical results at worker budgets 1 and 4;
//   2. graceful degradation — under a 20% dropout plan no round above quorum
//      is skipped, and every round's aggregate equals the renormalized mean
//      over that round's surviving updates (checked by recomputation);
//   3. resume — crash-at-round-k + resume from the checkpoint file must
//      reproduce the uninterrupted run's final global bit-identically.
// It also times healthy vs. faulted runs and the checkpoint save/load path,
// and writes the JSON baseline committed at the repo root.
//
// Run via scripts/bench_baseline.sh, which commits the JSON output.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "fl/checkpoint.h"
#include "fl/client_factory.h"
#include "fl/server.h"

using namespace cip;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Federation {
  fl::ClientStore store;
  fl::ModelState init;
};

/// Fresh legacy federation as a cold store (clients are stateful; every run
/// needs its own store).
Federation MakeFederation(std::size_t num_clients,
                          std::size_t samples_per_client) {
  data::SyntheticPurchase gen(data::Purchase50Like());
  Rng data_rng(7);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kLegacy;
  proto.model.arch = nn::Arch::kMLP;
  proto.model.input_shape = gen.SampleShape();
  proto.model.num_classes = gen.config().num_classes;
  proto.model.width = 16;
  proto.model.seed = 11;
  proto.train.lr = 0.05f;
  proto.train.momentum = 0.9f;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = gen.Sample(samples_per_client, data_rng);
    spec.seed = 13 + k;
    specs.push_back(std::move(spec));
  }
  return Federation{fl::MakeClientStore(std::move(specs)),
                    fl::InitialStateFor(proto)};
}

fl::FaultPlan DropoutPlan() {
  fl::FaultPlan plan;
  plan.dropout_rate = 0.2f;
  plan.failure_rate = 0.05f;
  return plan;
}

bool SameFloats(std::span<const float> a, std::span<const float> b) {
  // memcmp, not ==: bit-identity is the claim (distinguishes -0.0f, NaNs).
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool BitIdentical(const fl::FlLog& a, const fl::FlLog& b) {
  if (!SameFloats(a.final_global.values(), b.final_global.values())) {
    return false;
  }
  if (a.client_losses.size() != b.client_losses.size()) return false;
  for (std::size_t r = 0; r < a.client_losses.size(); ++r) {
    if (!SameFloats(a.client_losses[r], b.client_losses[r])) return false;
  }
  return true;
}

void PutNum(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* output_path = "BENCH_fault_rounds.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "FL round engine — fault tolerance and checkpoint/resume",
      "n/a (infrastructure bench; production FL fleets drop ~5-30% of "
      "clients per round)",
      "bit-identical under faults and across crash/resume; 20% dropout "
      "degrades gracefully");
  bench::BenchTimer timer;

  const std::size_t kClients = 5;
  const std::size_t kRounds = 4;
  const std::size_t samples = Scaled(100);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // ---- determinism gate (faults on) -----------------------------------------
  fl::FlOptions faulty;
  faulty.rounds = kRounds;
  faulty.faults = DropoutPlan();
  faulty.max_retries = 2;
  Federation fed1 = MakeFederation(kClients, samples);
  Federation fed4 = MakeFederation(kClients, samples);
  fl::FlOptions o1 = faulty;
  o1.max_parallel_clients = 1;
  fl::FlOptions o4 = faulty;
  o4.max_parallel_clients = 4;
  const fl::FlLog log1 =
      fl::FederatedAveraging(fed1.init, o1).Run(fed1.store, 21);
  const fl::FlLog log4 =
      fl::FederatedAveraging(fed4.init, o4).Run(fed4.store, 21);
  const bool identical = BitIdentical(log1, log4);
  std::cout << "determinism under faults (budget 1 vs 4): "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";

  // ---- graceful degradation at 20% dropout ----------------------------------
  // Record survivor updates and per-round snapshots, then recompute each
  // round's renormalized survivor mean and demand bitwise equality.
  fl::FlOptions degrade = faulty;
  degrade.record_client_updates = true;
  for (std::size_t r = 1; r <= kRounds; ++r) {
    degrade.snapshot_rounds.push_back(r);
  }
  Federation fedd = MakeFederation(kClients, samples);
  const auto degrade_t0 = Clock::now();
  const fl::FlLog dlog =
      fl::FederatedAveraging(fedd.init, degrade).Run(fedd.store, 22);
  const double faulty_seconds = SecondsSince(degrade_t0);

  std::size_t total_faults = 0, skipped_rounds = 0, survivor_sum = 0;
  bool renormalized_ok = true;
  for (std::size_t r = 0; r < kRounds; ++r) {
    const fl::RoundStats& stats = dlog.telemetry.rounds[r];
    survivor_sum += stats.survivors;
    if (stats.skipped) ++skipped_rounds;
    for (const fl::ClientRoundStats& c : stats.clients) {
      if (c.fault != fl::FaultKind::kNone) ++total_faults;
    }
    if (!stats.skipped) {
      const fl::ModelState mean =
          fl::ModelState::Average(dlog.client_updates[r]);
      renormalized_ok = renormalized_ok &&
                        SameFloats(mean.values(),
                                   dlog.global_snapshots[r].values());
    }
  }
  const double mean_survivors =
      static_cast<double>(survivor_sum) / static_cast<double>(kRounds);
  std::cout << "20% dropout: " << total_faults << " faults over " << kRounds
            << " rounds, mean survivors " << mean_survivors << "/" << kClients
            << ", skipped " << skipped_rounds << ", renormalized mean "
            << (renormalized_ok ? "exact" : "MISMATCH") << "\n";

  // Healthy reference timing for the overhead column.
  Federation fedh = MakeFederation(kClients, samples);
  fl::FlOptions healthy;
  healthy.rounds = kRounds;
  const auto healthy_t0 = Clock::now();
  fl::FederatedAveraging(fedh.init, healthy).Run(fedh.store, 22);
  const double healthy_seconds = SecondsSince(healthy_t0);

  // ---- crash-at-k + resume gate ---------------------------------------------
  const std::string ckpt_path = std::string(output_path) + ".ckpt.tmp";
  const std::size_t kCrashRound = 2;
  Federation straight = MakeFederation(kClients, samples);
  const fl::FlLog full =
      fl::FederatedAveraging(straight.init, faulty).Run(straight.store, 23);

  Federation crashed = MakeFederation(kClients, samples);
  fl::FlOptions crash_opts = faulty;
  crash_opts.checkpoint_every = 1;
  crash_opts.checkpoint_path = ckpt_path;
  crash_opts.stop_after_round = kCrashRound;
  const auto save_t0 = Clock::now();
  fl::FederatedAveraging(crashed.init, crash_opts).Run(crashed.store, 23);
  const double crash_run_seconds = SecondsSince(save_t0);

  std::ifstream size_probe(ckpt_path, std::ios::binary | std::ios::ate);
  const auto ckpt_bytes = static_cast<std::size_t>(size_probe.tellg());
  size_probe.close();

  const auto load_t0 = Clock::now();
  const fl::Checkpoint ckpt = fl::LoadCheckpointFile(ckpt_path);
  const double load_seconds = SecondsSince(load_t0);
  Federation resumed = MakeFederation(kClients, samples);
  const fl::FlLog tail =
      fl::FederatedAveraging(resumed.init, faulty).Resume(resumed.store, ckpt);
  const bool resume_identical =
      SameFloats(full.final_global.values(), tail.final_global.values());
  std::remove(ckpt_path.c_str());
  std::cout << "crash at round " << kCrashRound << " + resume: "
            << (resume_identical ? "bit-identical" : "MISMATCH") << " ("
            << ckpt_bytes << "-byte checkpoint, load "
            << TextTable::Num(load_seconds * 1e3, 2) << "ms)\n";

  TextTable table({"Run", "seconds"});
  table.AddRow({"healthy (5 clients x 4 rounds)",
                TextTable::Num(healthy_seconds, 3)});
  table.AddRow({"20% dropout + retries", TextTable::Num(faulty_seconds, 3)});
  table.AddRow({"crashed half-run (checkpointing every round)",
                TextTable::Num(crash_run_seconds, 3)});
  table.Print(std::cout);
  std::cout << "host hardware_concurrency=" << hw << "\n";

  // ---- JSON baseline ---------------------------------------------------------
  std::ofstream js(output_path);
  js << "{\n  \"schema\": \"cip-bench-fault-rounds/v1\",\n"
     << "  \"host\": {\"num_cpus\": " << hw << ", \"cip_build_type\": \""
#ifdef NDEBUG
     << "release"
#else
     << "debug"
#endif
     << "\"},\n"
     << "  \"setup\": {\"clients\": " << kClients
     << ", \"rounds\": " << kRounds
     << ", \"dropout_rate\": 0.2, \"failure_rate\": 0.05, "
     << "\"max_retries\": 2, \"budgets\": [1, 4]},\n"
     << "  \"determinism\": {\"bit_identical\": "
     << (identical ? "true" : "false") << "},\n"
     << "  \"degradation\": {\"total_faults\": " << total_faults
     << ", \"mean_survivors\": ";
  PutNum(js, mean_survivors);
  js << ", \"skipped_rounds\": " << skipped_rounds
     << ", \"renormalized_mean_exact\": "
     << (renormalized_ok ? "true" : "false") << "},\n"
     << "  \"resume\": {\"crash_round\": " << kCrashRound
     << ", \"bit_identical\": " << (resume_identical ? "true" : "false")
     << ", \"checkpoint_bytes\": " << ckpt_bytes << ", \"load_seconds\": ";
  PutNum(js, load_seconds);
  js << "},\n  \"timing\": {\"healthy_seconds\": ";
  PutNum(js, healthy_seconds);
  js << ", \"faulty_seconds\": ";
  PutNum(js, faulty_seconds);
  js << "}\n}\n";
  js.close();
  std::cout << "baseline written to " << output_path << "\n";

  // ---- gates -----------------------------------------------------------------
  bool ok = true;
  if (!identical) {
    std::cerr << "FAIL: faulted results differ across worker budgets\n";
    ok = false;
  }
  if (total_faults == 0) {
    std::cerr << "FAIL: fault plan injected nothing — gate is vacuous\n";
    ok = false;
  }
  if (skipped_rounds != 0) {
    std::cerr << "FAIL: " << skipped_rounds
              << " rounds skipped above quorum\n";
    ok = false;
  }
  if (!renormalized_ok) {
    std::cerr << "FAIL: aggregate is not the renormalized survivor mean\n";
    ok = false;
  }
  if (!resume_identical) {
    std::cerr << "FAIL: crash+resume diverged from the uninterrupted run\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
