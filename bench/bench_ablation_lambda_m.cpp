// Ablation: the raw-loss maximization term λ_m of Eq. 4 (DESIGN.md §5).
//
// λ_m = 0 trains only on blended data; the distribution shift alone already
// hides members. Raising λ_m actively pushes the raw-query loss of original
// members toward the non-member ceiling, further shrinking the loss gap the
// attacks exploit — at (for large λ_m) some utility cost.
#include <iostream>

#include "attacks/output_attacks.h"
#include "bench_util.h"
#include "common/stats.h"
#include "core/cip_model.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Ablation — the raw-loss term lambda_m (Eq. 4)",
      "a small lambda_m makes originals 'assemble other non-members' "
      "(Sec. III-B) without abnormally high loss (RQ4-Knowledge-4)",
      "raw member/non-member loss gap shrinks as lambda_m grows; attack "
      "accuracy falls; test accuracy stays flat for small lambda_m");
  bench::BenchTimer timer;

  eval::BundleOptions opts;
  opts.train_size = Scaled(250);
  opts.test_size = Scaled(250);
  opts.shadow_size = Scaled(250);
  opts.width = 8;
  opts.num_classes = 10;
  opts.seed = 113;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kCifar100, opts);
  Rng rng(114);
  const eval::ShadowPack shadow =
      eval::BuildShadowPack(bundle, Scaled(45), rng);
  attacks::ObMalt attack(shadow.member_losses, shadow.nonmember_losses);

  TextTable table({"lambda_m", "test acc", "raw loss gap (nonmem-mem)",
                   "Ob-MALT attack acc"});
  for (const float lambda_m : {0.0f, 0.05f, 0.2f}) {
    core::CipConfig cfg = eval::DefaultCipConfig(bundle, /*alpha=*/0.5f);
    cfg.lambda_m = lambda_m;
    eval::CipSingleResult r =
        eval::TrainCipSingle(bundle, 0.5f, Scaled(30), rng, {}, &cfg);
    core::CipQuery raw(r.client->model(), cfg.blend);
    const std::vector<float> lm = raw.Losses(bundle.train);
    const std::vector<float> ln = raw.Losses(bundle.test);
    const double gap = Mean(std::span<const float>(ln)) -
                       Mean(std::span<const float>(lm));
    const double acc =
        attacks::EvaluateAttack(attack, raw, bundle.train, bundle.test)
            .accuracy;
    table.AddRow({TextTable::Num(lambda_m, 2),
                  TextTable::Num(r.client->EvalAccuracy(bundle.test)),
                  TextTable::Num(gap), TextTable::Num(acc)});
  }
  table.Print(std::cout);
  return 0;
}
