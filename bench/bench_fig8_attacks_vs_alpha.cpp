// Figure 8 (RQ3): accuracy of the five state-of-the-art MI attacks against
// CIP on all four datasets, as the blending parameter α increases.
//
// Paper: attack accuracy decreases with α on every dataset; CIFAR-100 (most
// overfit) shows the highest attack accuracy; Pb-Bayes is the strongest
// attack throughout.
#include <iostream>

#include "bench_util.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Figure 8 — five attacks vs CIP as alpha grows, four datasets",
      "attack acc falls with alpha; CIFAR-100 most attackable; Pb-Bayes "
      "strongest",
      "monotone-ish decrease in alpha; Pb-Bayes >= output-based attacks");
  bench::BenchTimer timer;

  const std::vector<float> alphas = {0.1f, 0.5f, 0.9f};
  const std::vector<eval::DatasetId> datasets = {
      eval::DatasetId::kCifar100, eval::DatasetId::kCifarAug,
      eval::DatasetId::kChMnist, eval::DatasetId::kPurchase50};
  const std::vector<std::string> attack_names = {
      "Ob-Label", "Ob-MALT", "Ob-NN", "Ob-BlindMI", "Pb-Bayes"};

  for (const eval::DatasetId id : datasets) {
    eval::BundleOptions opts;
    opts.train_size = Scaled(250);
    opts.test_size = Scaled(250);
    opts.shadow_size = Scaled(250);
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 71;
    const eval::DataBundle bundle = eval::MakeBundle(id, opts);
    Rng rng(72);
    const eval::ShadowPack shadow =
        eval::BuildShadowPack(bundle, Scaled(45), rng);

    TextTable table({"alpha", "test acc", "Ob-Label", "Ob-MALT", "Ob-NN",
                     "Ob-BlindMI", "Pb-Bayes"});
    for (const float alpha : alphas) {
      const eval::CipExternalResult r =
          eval::RunCipExternal(bundle, &shadow, alpha, Scaled(28), rng);
      std::vector<std::string> row = {TextTable::Num(alpha, 1),
                                      TextTable::Num(r.test_acc)};
      for (const std::string& name : attack_names) {
        row.push_back(TextTable::Num(r.attacks.at(name).accuracy));
      }
      table.AddRow(std::move(row));
    }
    std::cout << "\n" << eval::DatasetName(id) << ":\n";
    table.Print(std::cout);
  }
  std::cout << "\nPaper reference at alpha=0.9 (Fig. 8): all attacks within\n"
               "~0.05 of random guessing except Pb-Bayes on CIFAR-100.\n";
  return 0;
}
