// Figure 4: internal adversary — test accuracy (a) and attack accuracy (b)
// vs the number of clients for CIP, DP, HDP, and no defense.
//
// Paper: CIP keeps test accuracy at or above no-defense while passive and
// active attacks drop to ~random guessing; DP only reaches random-guessing
// attacks by destroying accuracy; HDP sits between.
#include <iostream>

#include "bench_util.h"
#include "eval/internal_experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Figure 4 — internal adversary: accuracy & attack accuracy vs #clients",
      "CIP ≈ NoDefense accuracy with attacks ~0.5; DP accuracy collapses",
      "attack(NoDef) > attack(CIP) ≈ 0.5-0.6; acc(CIP) >> acc(DP)");
  bench::BenchTimer timer;

  const std::vector<std::size_t> client_counts = {2, 5};
  const std::vector<eval::InternalDefense> defenses = {
      eval::InternalDefense::kNone, eval::InternalDefense::kCip,
      eval::InternalDefense::kDp, eval::InternalDefense::kHdp};

  TextTable table({"Defense", "#clients", "train acc", "test acc",
                   "passive attack", "active attack"});
  for (const auto defense : defenses) {
    for (const std::size_t clients : client_counts) {
      eval::InternalExpConfig cfg;
      cfg.defense = defense;
      cfg.num_clients = clients;
      cfg.rounds = Scaled(35);
      cfg.samples_per_client = Scaled(100);
      cfg.alpha = 0.5f;
      cfg.epsilon = 8.0f;
      // Active attacks double the training cost; run them on the paper's
      // most vulnerable setting (fewest clients).
      cfg.run_active_attack = (clients == 2);
      cfg.seed = 29;
      Rng rng(30 + clients);
      const eval::InternalExpResult r =
          eval::RunInternalExperiment(cfg, rng);
      table.AddRow({eval::InternalDefenseName(defense),
                    std::to_string(clients), TextTable::Num(r.train_acc),
                    TextTable::Num(r.test_acc),
                    TextTable::Num(r.passive_attack_acc),
                    r.active_attack_acc < 0 ? "-"
                                            : TextTable::Num(r.active_attack_acc)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference (Fig. 4, 2 clients): NoDef attacks ~0.8+,\n"
               "CIP ~0.5, DP(large eps) attack elevated; CIP test acc >= "
               "NoDef, DP test acc ~0.05-0.3.\n";
  return 0;
}
