// Micro-benchmarks (google-benchmark) for the numeric kernels every
// experiment is built on: matmul, convolution, softmax/cross-entropy, the
// CIP blending function, and a full dual-channel forward/backward step.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/blend.h"
#include "nn/backbones.h"
#include "tensor/ops.h"

namespace cip {
namespace {

Tensor RandomTensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.Normal();
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor logits = RandomTensor({n, 50}, 3);
  std::vector<int> labels(n, 7);
  Tensor grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::SoftmaxCrossEntropy(logits, labels, &grad));
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy)->Arg(32)->Arg(256);

void BM_Blend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Tensor x = RandomTensor({n, 3, 12, 12}, 4);
  ops::ClipInPlace(x, 0.0f, 1.0f);
  Tensor t = RandomTensor({3, 12, 12}, 5);
  ops::ClipInPlace(t, 0.0f, 1.0f);
  core::BlendConfig cfg;
  cfg.alpha = 0.5f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Blend(x, t, cfg));
  }
}
BENCHMARK(BM_Blend)->Arg(32)->Arg(256);

void BM_DualChannelTrainStep(benchmark::State& state) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = {3, 12, 12};
  spec.num_classes = 20;
  spec.width = static_cast<std::size_t>(state.range(0));
  spec.seed = 6;
  auto model = nn::MakeDualChannelClassifier(spec);
  const Tensor x1 = RandomTensor({32, 3, 12, 12}, 7);
  const Tensor x2 = RandomTensor({32, 3, 12, 12}, 8);
  std::vector<int> labels(32, 3);
  for (auto _ : state) {
    const Tensor logits = model->Forward(x1, x2, true);
    Tensor dlogits;
    ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
    benchmark::DoNotOptimize(model->Backward(dlogits));
    model->ZeroGrad();
  }
}
BENCHMARK(BM_DualChannelTrainStep)->Arg(8)->Arg(12);

void BM_SingleChannelTrainStep(benchmark::State& state) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = {3, 12, 12};
  spec.num_classes = 20;
  spec.width = static_cast<std::size_t>(state.range(0));
  spec.seed = 9;
  auto model = nn::MakeClassifier(spec);
  const Tensor x = RandomTensor({32, 3, 12, 12}, 10);
  std::vector<int> labels(32, 3);
  for (auto _ : state) {
    const Tensor logits = model->Forward(x, true);
    Tensor dlogits;
    ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
    benchmark::DoNotOptimize(model->Backward(dlogits));
    model->ZeroGrad();
  }
}
BENCHMARK(BM_SingleChannelTrainStep)->Arg(8)->Arg(12);

}  // namespace
}  // namespace cip

BENCHMARK_MAIN();
