// Micro-benchmarks (google-benchmark) for the numeric kernels every
// experiment is built on: matmul (blocked GEMM, persistent-pool vs
// spawn-per-call dispatch), im2col/GEMM vs naive convolution,
// softmax/cross-entropy, the CIP blending function, and a full dual-channel
// forward/backward step. docs/BENCHMARKS.md explains how
// scripts/bench_baseline.sh turns this suite into the committed
// BENCH_kernels.json baseline.
//
// The JSON context carries a "cip_build_type" key ("release"/"debug") so
// tools/bench_to_json.py can refuse to bless a baseline produced by a
// non-Release build, plus "cip_isa" (the GEMM kernel the run actually bound)
// and "cip_isa_request" (what CIP_ISA asked for) so every committed number
// names the microkernel that produced it.
#include <benchmark/benchmark.h>

#include <atomic>

#include "common/env.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/blend.h"
#include "nn/backbones.h"
#include "nn/conv2d.h"
#include "tensor/ops.h"

namespace cip {
namespace {

Tensor RandomTensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.Normal();
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Same GEMM, legacy spawn-a-thread-per-chunk dispatch (CIP_SPAWN_THREADS=1
// path). The BM_Matmul/64-vs-BM_MatmulSpawn/64 ratio at CIP_THREADS=4 is the
// committed dispatch-overhead gate: the persistent pool must win by >= 1.3x.
void BM_MatmulSpawn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  internal::SetSpawnPerCallForTesting(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  internal::SetSpawnPerCallForTesting(false);
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_MatmulSpawn)->Arg(32)->Arg(64);

// GEMM against a pre-packed weight (the PackedB cache layers keep for frozen
// weights) — isolates the per-call packing pass BM_Matmul still pays.
void BM_MatmulPacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  ops::PackedB packed;
  ops::PackBForMatmulInto(b, packed);
  Tensor c({n, n});
  for (auto _ : state) {
    ops::MatmulPackedInto(a, packed, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_MatmulPacked)->Arg(64)->Arg(256);

// Pure dispatch overhead: a ParallelForCoarse over 4 near-empty chunks with
// an explicit budget of 4. Measures wake/rendezvous latency of the pool
// (BM_ParallelForDispatch) against thread clone/join per call
// (BM_ParallelForDispatchSpawn).
void RunDispatchBench(benchmark::State& state, bool spawn_per_call) {
  internal::SetSpawnPerCallForTesting(spawn_per_call);
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    ParallelForCoarse(
        0, 4,
        [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); },
        /*max_threads=*/4);
  }
  internal::SetSpawnPerCallForTesting(false);
  benchmark::DoNotOptimize(sink.load());
}

void BM_ParallelForDispatch(benchmark::State& state) {
  RunDispatchBench(state, /*spawn_per_call=*/false);
}
BENCHMARK(BM_ParallelForDispatch);

void BM_ParallelForDispatchSpawn(benchmark::State& state) {
  RunDispatchBench(state, /*spawn_per_call=*/true);
}
BENCHMARK(BM_ParallelForDispatchSpawn);

void BM_MatmulTransB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatmulTransB(a, b));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_MatmulTransB)->Arg(64)->Arg(256);

// --- convolution: im2col/GEMM fast path vs the CIP_NAIVE_CONV reference ----
//
// Backbone-sized shape (batch 32, 3->32 channels, 32x32, k3 s1 p1). The
// committed BENCH_kernels.json records the GEMM/naive ratio at CIP_THREADS=1
// and 4; scripts/bench_baseline.sh regenerates it.

constexpr std::size_t kConvN = 32, kConvIC = 3, kConvOC = 32, kConvHW = 32;

nn::Conv2d MakeBenchConv() {
  Rng rng(13);
  return nn::Conv2d(kConvIC, kConvOC, /*kernel=*/3, /*stride=*/1,
                    /*padding=*/1, rng, "bench_conv");
}

void RunConvForward(benchmark::State& state, bool naive) {
  internal::SetNaiveConvForTesting(naive);
  nn::Conv2d conv = MakeBenchConv();
  const Tensor x = RandomTensor({kConvN, kConvIC, kConvHW, kConvHW}, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, /*train=*/false));
  }
  internal::SetNaiveConvForTesting(false);
  // One MAC = 2 flops; items = MACs of the convolution.
  state.SetItemsProcessed(
      static_cast<long>(state.iterations()) *
      static_cast<long>(kConvN * kConvOC * kConvHW * kConvHW * kConvIC * 9));
}

void BM_Conv2dForward(benchmark::State& state) {
  RunConvForward(state, /*naive=*/false);
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dForwardNaive(benchmark::State& state) {
  RunConvForward(state, /*naive=*/true);
}
BENCHMARK(BM_Conv2dForwardNaive);

void RunConvBackward(benchmark::State& state, bool naive) {
  internal::SetNaiveConvForTesting(naive);
  nn::Conv2d conv = MakeBenchConv();
  const Tensor x = RandomTensor({kConvN, kConvIC, kConvHW, kConvHW}, 15);
  const Tensor grad = RandomTensor({kConvN, kConvOC, kConvHW, kConvHW}, 16);
  for (auto _ : state) {
    conv.Forward(x, /*train=*/true);
    benchmark::DoNotOptimize(conv.Backward(grad));
    conv.ZeroGrad();
  }
  internal::SetNaiveConvForTesting(false);
}

void BM_Conv2dBackward(benchmark::State& state) {
  RunConvBackward(state, /*naive=*/false);
}
BENCHMARK(BM_Conv2dBackward);

void BM_Conv2dBackwardNaive(benchmark::State& state) {
  RunConvBackward(state, /*naive=*/true);
}
BENCHMARK(BM_Conv2dBackwardNaive);

void BM_Im2Col(benchmark::State& state) {
  const ops::Conv2dGeom g{kConvIC, kConvHW, kConvHW, 3, 1, 1};
  const Tensor x = RandomTensor({kConvN, kConvIC, kConvHW, kConvHW}, 17);
  Tensor col({kConvN * g.OutH() * g.OutW(), g.PatchSize()});
  for (auto _ : state) {
    for (std::size_t i = 0; i < kConvN; ++i) {
      ops::Im2ColInto(x, i, g, col, i * g.OutH() * g.OutW());
    }
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(col.size()));
}
BENCHMARK(BM_Im2Col);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor logits = RandomTensor({n, 50}, 3);
  std::vector<int> labels(n, 7);
  Tensor grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::SoftmaxCrossEntropy(logits, labels, &grad));
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy)->Arg(32)->Arg(256);

void BM_Blend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Tensor x = RandomTensor({n, 3, 12, 12}, 4);
  ops::ClipInPlace(x, 0.0f, 1.0f);
  Tensor t = RandomTensor({3, 12, 12}, 5);
  ops::ClipInPlace(t, 0.0f, 1.0f);
  core::BlendConfig cfg;
  cfg.alpha = 0.5f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Blend(x, t, cfg));
  }
}
BENCHMARK(BM_Blend)->Arg(32)->Arg(256);

void BM_DualChannelTrainStep(benchmark::State& state) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = {3, 12, 12};
  spec.num_classes = 20;
  spec.width = static_cast<std::size_t>(state.range(0));
  spec.seed = 6;
  auto model = nn::MakeDualChannelClassifier(spec);
  const Tensor x1 = RandomTensor({32, 3, 12, 12}, 7);
  const Tensor x2 = RandomTensor({32, 3, 12, 12}, 8);
  std::vector<int> labels(32, 3);
  for (auto _ : state) {
    const Tensor logits = model->Forward(x1, x2, true);
    Tensor dlogits;
    ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
    benchmark::DoNotOptimize(model->Backward(dlogits));
    model->ZeroGrad();
  }
}
BENCHMARK(BM_DualChannelTrainStep)->Arg(8)->Arg(12);

void BM_SingleChannelTrainStep(benchmark::State& state) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = {3, 12, 12};
  spec.num_classes = 20;
  spec.width = static_cast<std::size_t>(state.range(0));
  spec.seed = 9;
  auto model = nn::MakeClassifier(spec);
  const Tensor x = RandomTensor({32, 3, 12, 12}, 10);
  std::vector<int> labels(32, 3);
  for (auto _ : state) {
    const Tensor logits = model->Forward(x, true);
    Tensor dlogits;
    ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
    benchmark::DoNotOptimize(model->Backward(dlogits));
    model->ZeroGrad();
  }
}
BENCHMARK(BM_SingleChannelTrainStep)->Arg(8)->Arg(12);

}  // namespace
}  // namespace cip

// Hand-rolled BENCHMARK_MAIN so the JSON context records whether this binary
// was compiled with optimizations: the committed baseline must come from a
// Release build (tools/bench_to_json.py enforces it via this key).
namespace {

const char* IsaRequestName(cip::IsaRequest request) {
  switch (request) {
    case cip::IsaRequest::kPortable:
      return "portable";
    case cip::IsaRequest::kAvx2:
      return "avx2";
    case cip::IsaRequest::kAvx512:
      return "avx512";
    case cip::IsaRequest::kAuto:
      break;
  }
  return "auto";
}

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("cip_build_type", "release");
#else
  benchmark::AddCustomContext("cip_build_type", "debug");
#endif
  benchmark::AddCustomContext("cip_isa",
                              cip::IsaName(cip::ops::ActiveGemmIsa()));
  benchmark::AddCustomContext("cip_isa_request",
                              IsaRequestName(cip::IsaRequested()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
