// Million-client scale benchmark and baseline (BENCH_scale.json).
//
// The ClientStore lifecycle API exists so fleet size and server memory are
// decoupled: registered clients are cold records behind a pure factory, only
// each round's sampled cohort is ever live, and between participations a
// stateful client is a serialized blob in a byte-budgeted LRU hot set that
// spills to shard files. This bench is the acceptance gate for that design:
//   1. scale — one million registered clients, participation 0.001 (a
//      1000-client cohort per round), five rounds, under a pinned peak-RSS
//      ceiling. Memory must stay O(hot budget + cohort), never O(fleet).
//   2. determinism — at a small config, worker budget (1 vs 4) and record
//      residency (all-resident vs 1-byte hot budget spilling every record)
//      must be invisible: bit-identical final global and per-round losses.
// tools/bench_to_json.py --check-scale regates the committed JSON in CI.
//
// Run via scripts/bench_baseline.sh, which commits the JSON output.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "fl/client_factory.h"
#include "fl/server.h"

using namespace cip;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set size of this process so far, in bytes (Linux
/// ru_maxrss is reported in kilobytes).
std::size_t PeakRssBytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

/// Pure per-id client spec: a tiny two-blob MLP client whose shard is
/// derived entirely from the client id, so a million-client fleet never
/// holds a million datasets — each cohort member's data is regenerated on
/// materialization.
fl::ClientSpec SpecFor(std::size_t id) {
  fl::ClientSpec spec;
  spec.kind = fl::ClientKind::kLegacy;
  spec.model.arch = nn::Arch::kMLP;
  spec.model.input_shape = {4};
  spec.model.num_classes = 2;
  spec.model.width = 4;
  spec.model.seed = 11;
  spec.train.lr = 0.05f;
  spec.train.momentum = 0.9f;
  spec.train.batch_size = 8;
  spec.seed = 1000 + id;

  const std::size_t n = 8, d = 4;
  Rng rng(0x5CA1Eull + id);
  Tensor inputs({n, d});
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % 2);
    labels[i] = y;
    for (std::size_t j = 0; j < d; ++j) {
      inputs[i * d + j] = (y == 0 ? -1.0f : 1.0f) + rng.Normal(0.0f, 0.5f);
    }
  }
  spec.data = {std::move(inputs), std::move(labels)};
  return spec;
}

bool SameFloats(std::span<const float> a, std::span<const float> b) {
  // memcmp, not ==: bit-identity is the claim (distinguishes -0.0f, NaNs).
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool BitIdentical(const fl::FlLog& a, const fl::FlLog& b) {
  if (!SameFloats(a.final_global.values(), b.final_global.values())) {
    return false;
  }
  if (a.client_losses.size() != b.client_losses.size()) return false;
  for (std::size_t r = 0; r < a.client_losses.size(); ++r) {
    if (!SameFloats(a.client_losses[r], b.client_losses[r])) return false;
  }
  return true;
}

/// One small sampled run: 8 cold clients, half sampled per round.
fl::FlLog SweepRun(std::size_t budget, bool spill, const std::string& tag) {
  const std::size_t kSweepClients = 8;
  fl::StoreOptions sopts;
  if (spill) {
    sopts.hot_bytes = 1;  // every eviction goes straight to a shard file
    sopts.shard_clients = 4;
    sopts.spill_dir = "bench_scale_sweep_" + tag + ".tmp";
  }
  fl::ClientStore store =
      fl::MakeClientStore(kSweepClients, SpecFor, std::move(sopts));
  fl::FlOptions opts;
  opts.rounds = 3;
  opts.participation = 0.5f;
  opts.max_parallel_clients = budget;
  fl::FederatedAveraging server(fl::InitialStateFor(SpecFor(0)), opts);
  const fl::FlLog log = server.Run(store, 91);
  if (spill) std::filesystem::remove_all("bench_scale_sweep_" + tag + ".tmp");
  return log;
}

void PutNum(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* output_path = "BENCH_scale.json";
  std::size_t registered = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else if (std::strcmp(argv[i], "--registered") == 0 && i + 1 < argc) {
      registered = std::stoul(argv[++i]);  // exploratory runs only
    }
  }

  bench::PrintHeader(
      "ClientStore scale — 1M registered clients, 1k-client cohorts",
      "n/a (infrastructure bench; cross-device FL samples ~0.1% of fleets)",
      "server memory O(hot budget + cohort); results invariant to budget, "
      "hot-set size and spill");
  bench::BenchTimer timer;

  const std::size_t hw = ParallelThreads();

  // ---- bit-identity sweep ----------------------------------------------------
  // Budget x residency grid at a small config; every cell must match.
  const fl::FlLog reference = SweepRun(/*budget=*/1, /*spill=*/false, "b1r");
  const bool sweep_identical =
      BitIdentical(reference, SweepRun(4, false, "b4r")) &&
      BitIdentical(reference, SweepRun(1, true, "b1s")) &&
      BitIdentical(reference, SweepRun(4, true, "b4s"));
  std::cout << "determinism (budget {1,4} x {resident,spill}): "
            << (sweep_identical ? "bit-identical" : "MISMATCH") << "\n";

  // ---- the million-client run ------------------------------------------------
  const std::size_t kRounds = 5;
  const float kParticipation = 0.001f;
  const std::string spill_dir = std::string(output_path) + ".spill.tmp";
  fl::StoreOptions sopts;
  sopts.hot_bytes = std::size_t{256} << 10;  // force steady-state spilling
  sopts.spill_dir = spill_dir;
  fl::ClientStore store =
      fl::MakeClientStore(registered, SpecFor, std::move(sopts));

  fl::FlOptions opts;
  opts.rounds = kRounds;
  opts.participation = kParticipation;
  fl::FederatedAveraging server(fl::InitialStateFor(SpecFor(0)), opts);
  const auto t0 = Clock::now();
  const fl::FlLog log = server.Run(store, 77);
  const double seconds = SecondsSince(t0);
  const double rounds_per_second = static_cast<double>(kRounds) / seconds;

  const std::size_t cohort = log.client_losses.empty()
                                 ? 0
                                 : log.client_losses.front().size();
  const std::size_t peak_rss = PeakRssBytes();
  const fl::StoreStats stats = store.stats();
  std::filesystem::remove_all(spill_dir);

  TextTable table({"Metric", "Value"});
  table.AddRow({"registered clients", std::to_string(registered)});
  table.AddRow({"cohort per round", std::to_string(cohort)});
  table.AddRow({"rounds", std::to_string(kRounds)});
  table.AddRow({"wall seconds", TextTable::Num(seconds, 2)});
  table.AddRow({"rounds/sec", TextTable::Num(rounds_per_second, 3)});
  table.AddRow({"peak RSS MiB",
                TextTable::Num(static_cast<double>(peak_rss) / (1 << 20), 1)});
  table.AddRow({"evictions", std::to_string(stats.evictions)});
  table.AddRow({"spills", std::to_string(stats.spills)});
  table.AddRow({"cold loads", std::to_string(stats.cold_loads)});
  table.AddRow({"hot hits", std::to_string(stats.hot_hits)});
  table.AddRow({"records on disk", std::to_string(stats.spilled_records)});
  table.Print(std::cout);
  std::cout << "host hardware_concurrency=" << hw << "\n";

  // ---- JSON baseline ---------------------------------------------------------
  std::ofstream js(output_path);
  js << "{\n  \"schema\": \"cip-bench-scale/v1\",\n"
     << "  \"host\": {\"num_cpus\": " << hw << ", \"cip_build_type\": \""
#ifdef NDEBUG
     << "release"
#else
     << "debug"
#endif
     << "\"},\n"
     << "  \"setup\": {\"registered_clients\": " << registered
     << ", \"participation\": ";
  PutNum(js, kParticipation);
  js << ", \"cohort\": " << cohort << ", \"rounds\": " << kRounds
     << ", \"hot_bytes\": " << (std::size_t{256} << 10) << "},\n"
     << "  \"determinism\": {\"bit_identical\": "
     << (sweep_identical ? "true" : "false") << "},\n"
     << "  \"scale\": {\"seconds\": ";
  PutNum(js, seconds);
  js << ", \"rounds_per_second\": ";
  PutNum(js, rounds_per_second);
  js << ", \"peak_rss_bytes\": " << peak_rss
     << ",\n    \"store\": {\"evictions\": " << stats.evictions
     << ", \"spills\": " << stats.spills
     << ", \"cold_loads\": " << stats.cold_loads
     << ", \"hot_hits\": " << stats.hot_hits
     << ", \"spilled_records\": " << stats.spilled_records << "}}\n}\n";
  js.close();
  std::cout << "baseline written to " << output_path << "\n";

  // ---- gates -----------------------------------------------------------------
  bool ok = true;
  if (!sweep_identical) {
    std::cerr << "FAIL: results differ across budget/residency grid\n";
    ok = false;
  }
  const std::size_t expected_cohort = static_cast<std::size_t>(
      static_cast<double>(kParticipation) * static_cast<double>(registered));
  if (cohort != std::max<std::size_t>(expected_cohort, 1)) {
    std::cerr << "FAIL: cohort " << cohort << " != expected "
              << expected_cohort << "\n";
    ok = false;
  }
  if (stats.spills == 0) {
    std::cerr << "FAIL: hot budget never spilled — the byte budget gate is "
                 "vacuous\n";
    ok = false;
  }
  if (peak_rss > (std::size_t{512} << 20)) {
    std::cerr << "FAIL: peak RSS " << (peak_rss >> 20)
              << " MiB exceeds the 512 MiB ceiling\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
