// Table VII (RQ4, Optimization-2): internal active adversary that alters the
// broadcast model toward LOWER loss on target samples; after the victim
// trains, samples whose loss bounced back UP are classified as members
// (CIP's Step II raises the raw loss of original training data).
//
// Paper: close to random guessing for alpha >= 0.5 (0.61 -> 0.55 on
// CIFAR-100; ~0.51-0.52 on Purchase-50).
#include <iostream>

#include "attacks/adaptive.h"
#include "bench_util.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/server.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table VII — adaptive Optimization-2: active alteration (descend, then "
      "watch who bounces)",
      "CIFAR-100: 0.758@a=.1 -> 0.547@a=.9; near 0.5 from a=0.5 on",
      "attack accuracy decreases with alpha toward random guessing");
  bench::BenchTimer timer;

  constexpr std::size_t kNumClasses = 10;
  data::SyntheticVision gen(data::Cifar100Like(kNumClasses));
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = kNumClasses;
  spec.width = 8;
  spec.seed = 83;

  TextTable table({"alpha", "internal active attack acc"});
  for (const float alpha : {0.1f, 0.5f, 0.9f}) {
    Rng rng(84);
    data::Dataset full = gen.Sample(Scaled(240), rng);
    const auto shards = data::PartitionIid(full, 2, rng);
    const data::Dataset& members = shards[0];
    const data::Dataset nonmembers = gen.Sample(members.size(), rng);
    const std::size_t n_targets = std::min<std::size_t>(100, members.size());
    const data::Dataset targets = data::Dataset::Concat(
        members.Slice(0, n_targets), nonmembers.Slice(0, n_targets));

    core::CipConfig cfg;
    cfg.blend.alpha = alpha;
    cfg.train.lr = 0.02f;
    cfg.train.momentum = 0.9f;
    cfg.perturb_steps = 6;
    core::CipClient c0(spec, shards[0], cfg, 85);
    core::CipClient c1(spec, shards[1], cfg, 86);
    std::vector<fl::ClientBase*> ptrs = {&c0, &c1};

    const std::size_t rounds = Scaled(30);
    fl::FlOptions opts;
    opts.rounds = rounds;
    fl::FederatedAveraging server(core::InitialDualState(spec), opts);
    // Negative lr: the adversary REDUCES the target loss before broadcast.
    attacks::InstallActiveAttack(
        server,
        attacks::MakeDualAscent(spec, cfg.blend, /*lr=*/-0.02f, /*steps=*/3),
        targets, /*start_round=*/rounds > 5 ? rounds - 4 : 1);
    fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
    const fl::FlLog log = server.Run(store, rng.NextU64());

    // Classify larger final raw loss as member.
    auto model = nn::MakeDualChannelClassifier(spec);
    const std::vector<nn::Parameter*> p = model->Parameters();
    log.final_global.ApplyTo(p);
    core::CipQuery raw(*model, cfg.blend);
    const std::vector<float> lm = raw.Losses(members.Slice(0, n_targets));
    const std::vector<float> ln = raw.Losses(nonmembers.Slice(0, n_targets));
    table.AddRow({TextTable::Num(alpha, 1),
                  TextTable::Num(attacks::BestThresholdAccuracy(lm, ln))});
  }
  table.Print(std::cout);
  return 0;
}
