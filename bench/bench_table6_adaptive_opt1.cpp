// Table VI (RQ4, Optimization-1): adaptive adversary that probes the target
// model and optimizes a guessed perturbation t' to attack with.
//
// Paper: the adaptive attack improves over non-adaptive by 0.01-0.08, falls
// with alpha, and at alpha=0.9 is close to random guessing (0.53-0.64).
#include <iostream>

#include "attacks/adaptive.h"
#include "bench_util.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table VI — adaptive Optimization-1: probe + optimize t'",
      "CIFAR-100 0.95@a=.1 -> 0.61@a=.9; CH-MNIST 0.65 -> 0.57; "
      "Purchase 0.62 -> 0.53 (external)",
      "attack accuracy decreases with alpha; stays above plain attacks at "
      "small alpha");
  bench::BenchTimer timer;

  const std::vector<eval::DatasetId> datasets = {eval::DatasetId::kCifar100,
                                                 eval::DatasetId::kChMnist,
                                                 eval::DatasetId::kPurchase50};
  TextTable table({"Dataset", "alpha", "adaptive attack acc (external)"});
  for (const eval::DatasetId id : datasets) {
    eval::BundleOptions opts;
    opts.train_size = Scaled(200);
    opts.test_size = Scaled(200);
    opts.shadow_size = Scaled(200);
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 81;
    const eval::DataBundle bundle = eval::MakeBundle(id, opts);
    Rng rng(82);
    for (const float alpha : {0.1f, 0.5f, 0.9f}) {
      eval::CipExternalResult r =
          eval::RunCipExternal(bundle, nullptr, alpha, Scaled(25), rng);
      // The adversary probes the final model with fresh distribution data
      // (labels taken from the model's own predictions — it has no ground
      // truth), then optimizes t' to maximize agreement.
      data::Dataset probe = bundle.sample(Scaled(200), rng);
      core::CipQuery raw(r.client->model(), r.client->config().blend);
      probe.labels = raw.Predict(probe.inputs);
      const Tensor t_guess = attacks::OptimizeGuessedT(
          r.client->model(), r.client->config().blend, probe,
          /*steps=*/30, /*lr=*/0.05f, rng);
      core::CipQuery guessed(r.client->model(), r.client->config().blend,
                             t_guess);
      const std::vector<float> lm = guessed.Losses(bundle.train);
      const std::vector<float> ln = guessed.Losses(bundle.test);
      std::vector<float> ms(lm.size()), ns(ln.size());
      for (std::size_t i = 0; i < lm.size(); ++i) ms[i] = -lm[i];
      for (std::size_t i = 0; i < ln.size(); ++i) ns[i] = -ln[i];
      table.AddRow({eval::DatasetName(id), TextTable::Num(alpha, 1),
                    TextTable::Num(attacks::BestThresholdAccuracy(ms, ns))});
    }
  }
  table.Print(std::cout);
  return 0;
}
