// Table X (RQ4, Knowledge-4): inverse membership inference — the adversary
// knows CIP raises the loss of original training data and classifies
// abnormally HIGH loss as member. Also reproduces the prose Knowledge-3
// result (substitute t' from a malicious client under i.i.d. FL).
//
// Paper: inverse attack stays at or below random guessing (0.159@a=.1 up to
// 0.489@a=.9 on CIFAR-100 — below 0.5 because the small lambda_m keeps
// member losses looking like non-members, not above them). Knowledge-3:
// substitute t' gives good test accuracy (0.695) but attack only 0.535.
#include <iostream>

#include "attacks/adaptive.h"
#include "bench_util.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/server.h"
#include "metrics/metrics.h"

using namespace cip;

int main() {
  bench::PrintHeader(
      "Table X — adaptive Knowledge-4 (inverse MI) + Knowledge-3 "
      "(substitute t')",
      "inverse attack <= random guessing for all alpha; substitute-t' attack "
      "~0.53 despite good utility",
      "inverse attack at/below 0.5, rising with alpha; Knowledge-3 near 0.5");
  bench::BenchTimer timer;

  // ---- Knowledge-4: inverse MALT against CIP ---------------------------------
  {
    eval::BundleOptions opts;
    opts.train_size = Scaled(200);
    opts.test_size = Scaled(200);
    opts.shadow_size = Scaled(200);
    opts.width = 8;
    opts.num_classes = 10;
    opts.seed = 93;
    const eval::DataBundle bundle =
        eval::MakeBundle(eval::DatasetId::kCifar100, opts);
    Rng rng(94);
    const eval::ShadowPack shadow =
        eval::BuildShadowPack(bundle, Scaled(40), rng);

    TextTable table({"alpha", "inverse attack acc"});
    for (const float alpha : {0.1f, 0.5f, 0.9f}) {
      eval::CipExternalResult r =
          eval::RunCipExternal(bundle, nullptr, alpha, Scaled(25), rng);
      core::CipQuery raw(r.client->model(), r.client->config().blend);
      attacks::InverseMalt inverse(shadow.member_losses,
                                   shadow.nonmember_losses);
      const metrics::BinaryMetrics m =
          attacks::EvaluateAttack(inverse, raw, bundle.train, bundle.test);
      table.AddRow({TextTable::Num(alpha, 1), TextTable::Num(m.accuracy)});
    }
    std::cout << "Knowledge-4 (CIFAR-100 stand-in):\n";
    table.Print(std::cout);
  }

  // ---- Knowledge-3: substitute t' from a malicious client (i.i.d.) ----------
  {
    constexpr std::size_t kNumClasses = 10;
    data::SyntheticVision gen(data::Cifar100Like(kNumClasses));
    nn::ModelSpec spec;
    spec.arch = nn::Arch::kResNet;
    spec.input_shape = gen.SampleShape();
    spec.num_classes = kNumClasses;
    spec.width = 8;
    spec.seed = 95;
    Rng rng(96);
    data::Dataset full = gen.Sample(Scaled(240), rng);
    const auto shards = data::PartitionIid(full, 2, rng);
    const data::Dataset test = gen.Sample(Scaled(200), rng);

    core::CipConfig cfg;
    cfg.blend.alpha = 0.5f;
    cfg.train.lr = 0.02f;
    cfg.train.momentum = 0.9f;
    cfg.perturb_steps = 6;
    core::CipClient victim(spec, shards[0], cfg, 97);
    core::CipClient malicious(spec, shards[1], cfg, 98);
    std::vector<fl::ClientBase*> ptrs = {&victim, &malicious};
    fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
    fl::FlOptions opts2;
    opts2.rounds = Scaled(30);
    fl::FederatedAveraging server(core::InitialDualState(spec), opts2);
    server.Run(store, rng.NextU64());

    // The malicious client queries the victim's data with ITS OWN t'.
    core::CipQuery with_substitute(victim.model(), cfg.blend,
                                   malicious.perturbation());
    const std::vector<float> lm = with_substitute.Losses(victim.LocalData());
    const std::vector<float> ln =
        with_substitute.Losses(test.Slice(0, victim.LocalData().size()));
    std::vector<float> ms(lm.size()), ns(ln.size());
    for (std::size_t i = 0; i < lm.size(); ++i) ms[i] = -lm[i];
    for (std::size_t i = 0; i < ln.size(); ++i) ns[i] = -ln[i];

    TextTable table({"metric", "value (paper)"});
    table.AddRow({"test acc with substitute t'",
                  TextTable::Num(with_substitute.Accuracy(test)) + " (0.695)"});
    table.AddRow({"victim test acc with real t",
                  TextTable::Num(victim.EvalAccuracy(test)) + " (0.666)"});
    table.AddRow({"attack acc with substitute t'",
                  TextTable::Num(attacks::BestThresholdAccuracy(ms, ns)) +
                      " (0.535)"});
    table.AddRow(
        {"SSIM(t, t')",
         TextTable::Num(metrics::Ssim(victim.perturbation(),
                                      malicious.perturbation())) +
             " (0.665)"});
    std::cout << "\nKnowledge-3 (i.i.d., 2 clients):\n";
    table.Print(std::cout);
  }
  return 0;
}
