// Batched CIP serving benchmark and baseline (BENCH_serve.json).
//
// Measures the ServeEngine (src/serve) end to end — the acceptance gate for
// the fused blend+forward serving path:
//   1. t-cache — queries/sec with a cold cache (every lookup materializes a
//      client through the store factory) vs a warm cache (pure map hits);
//      the warm pass must be all hits.
//   2. fused throughput — B single-row queries from B distinct clients fused
//      into one Flush, for B in {1, 16, 128}: queries/sec, rows/sec and
//      p50/p99 per-flush latency. The gate: batch-128 fused throughput must
//      be >= 4x the batch-1 per-query throughput — the whole point of
//      packing many clients' blended channels into one [sum N, ...] forward.
//   3. allocation discipline — the measured loops run with ZERO tensor
//      element-buffer allocations (the grow-once arena contract that
//      tests/test_alloc_free.cpp pins at unit scale).
//   4. wire front door — a kQuery round-trip through a real loopback
//      CipServer must answer bit-identically to an in-process Serve of the
//      same (client_id, inputs).
// tools/bench_to_json.py --check-serve regates the committed JSON in CI.
//
// Run via scripts/bench_baseline.sh (which pins CIP_THREADS=4, the thread
// budget the gate numbers are defined at).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "fl/client_factory.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/serve_engine.h"
#include "tensor/tensor.h"

using namespace cip;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void PutNum(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

/// Serving workload shape. The fleet is far larger than any fused batch so
/// every flush mixes distinct clients' secrets. The model is deliberately
/// light per row (the serving regime: single-row queries against a modest
/// MLP): per-query cost is then dominated by the per-flush work — t lookup,
/// staging, kernel dispatch — which is exactly what fusing many clients
/// into one [sum N, ...] forward amortizes. A compute-bound model would
/// cap the fused speedup at the thread count instead of showing the
/// dispatch amortization the engine exists for.
struct BenchConfig {
  std::size_t clients = 256;
  std::size_t input_dim = 32;
  std::size_t width = 16;
  std::size_t classes = 10;
  std::size_t max_batch_rows = 128;
  std::vector<std::size_t> batch_sizes = {1, 16, 128};
  std::vector<std::size_t> batch_iters = {20000, 2000, 500};
};

std::vector<fl::ClientSpec> MakeSpecs(const BenchConfig& cfg) {
  Rng rng(41);
  data::Dataset full =
      [&] {
        Tensor inputs({8 * cfg.clients, cfg.input_dim});
        std::vector<int> labels(8 * cfg.clients);
        for (std::size_t i = 0; i < labels.size(); ++i) {
          labels[i] = static_cast<int>(i % cfg.classes);
          for (std::size_t j = 0; j < cfg.input_dim; ++j) {
            inputs[i * cfg.input_dim + j] = rng.Normal();
          }
        }
        return data::Dataset{std::move(inputs), std::move(labels)};
      }();
  const auto shards = data::PartitionIid(full, cfg.clients, rng);
  std::vector<fl::ClientSpec> specs;
  specs.reserve(cfg.clients);
  for (std::size_t k = 0; k < cfg.clients; ++k) {
    fl::ClientSpec spec;
    spec.kind = fl::ClientKind::kCip;
    spec.model.arch = nn::Arch::kMLP;
    spec.model.input_shape = {cfg.input_dim};
    spec.model.num_classes = cfg.classes;
    spec.model.width = cfg.width;
    spec.model.seed = 2026;
    spec.data = shards[k];
    spec.seed = 1000 + k;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Percentile over `v` (copied and sorted), p in [0, 1], in milliseconds.
double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(std::ceil(p * static_cast<double>(v.size()))) -
          (p > 0.0 ? 1 : 0));
  return v[idx] * 1000.0;
}

/// One measured serving run: `iters` flushes of `batch` single-row queries
/// from `batch` distinct clients (round-robin over the fleet).
struct BatchResult {
  std::size_t batch = 0;
  double seconds = 0.0;
  double queries_per_second = 0.0;
  double rows_per_second = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

BatchResult RunBatch(serve::ServeEngine& engine, const Tensor& row,
                     std::size_t fleet, std::size_t batch,
                     std::size_t iters) {
  BatchResult res;
  res.batch = batch;
  std::vector<double> lat;
  lat.reserve(iters);
  std::size_t next_client = 0;
  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const Clock::time_point it0 = Clock::now();
    for (std::size_t j = 0; j < batch; ++j) {
      engine.Enqueue(next_client, row);
      next_client = (next_client + 1) % fleet;
    }
    (void)engine.Flush();
    lat.push_back(SecondsSince(it0));
  }
  res.seconds = SecondsSince(t0);
  res.queries_per_second =
      static_cast<double>(iters * batch) / res.seconds;
  res.rows_per_second = res.queries_per_second;  // one row per query here
  res.p50_ms = PercentileMs(lat, 0.50);
  res.p99_ms = PercentileMs(lat, 0.99);
  return res;
}

/// Loopback kQuery round-trip against a serving CipServer, single-threaded:
/// block-send the query, pump Step(0), block-read the kLogits reply.
std::optional<Tensor> WireQuery(net::CipServer& server, std::uint64_t cid,
                                const Tensor& inputs) {
  net::Socket sock = net::ConnectTcp("127.0.0.1", server.port());
  net::QueryMsg q;
  q.client_id = cid;
  q.inputs = inputs;
  const std::string frame = net::EncodeQuery(q);
  if (!net::SendAll(sock,
                    std::span<const char>(frame.data(), frame.size()))) {
    return std::nullopt;
  }
  for (int i = 0; i < 4; ++i) server.Step(0);
  std::string header(net::kFrameHeaderBytes, '\0');
  if (!net::RecvAll(sock, std::span<char>(header.data(), header.size()))) {
    return std::nullopt;
  }
  std::uint64_t len = 0;  // payload_len: the header's trailing LE u64
  for (std::size_t b = 0; b < 8; ++b) {
    len |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(header[12 + b]))
           << (8 * b);
  }
  std::string payload(len, '\0');
  if (len > 0 &&
      !net::RecvAll(sock, std::span<char>(payload.data(), payload.size()))) {
    return std::nullopt;
  }
  net::FrameReader reader;
  reader.Feed(header);
  reader.Feed(payload);
  const std::optional<net::Frame> f = reader.Next();
  if (!f || f->type != net::MsgType::kLogits) return std::nullopt;
  return net::DecodeLogits(f->payload).logits;
}

bool SameBits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* output_path = "BENCH_serve.json";
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      cfg.clients = std::stoul(argv[++i]);  // exploratory runs only
    }
  }

  bench::PrintHeader(
      "Batched CIP serving — per-client t-cache + fused blend+forward",
      "n/a (infrastructure bench; deployed CIP must serve every client's "
      "blended queries through one shared model)",
      "fused batch-128 >= 4x batch-1 per-query throughput; warm t-cache all "
      "hits; steady state allocation-free; wire == in-process bits");
  bench::BenchTimer timer;

  const auto specs = MakeSpecs(cfg);
  std::unique_ptr<core::CipClient> global = fl::MakeCipClient(specs[0]);
  fl::ClientStore store = fl::MakeClientStore(specs);
  serve::ServeOptions opts;
  opts.blend = global->config().blend;
  opts.max_batch_rows = cfg.max_batch_rows;
  serve::ServeEngine engine(global->model(), store, opts);

  Rng rng(7);
  Tensor row({std::size_t{1}, cfg.input_dim});
  for (float& v : row.flat()) v = rng.Normal();

  // ---- cold vs warm t-cache --------------------------------------------------
  // Cold: every query materializes its client through the store factory to
  // read t. Warm: the same sweep is pure map hits.
  const Clock::time_point cold0 = Clock::now();
  for (std::size_t k = 0; k < cfg.clients; ++k) (void)engine.Serve(k, row);
  const double cold_seconds = SecondsSince(cold0);
  const std::size_t cold_misses = engine.stats().t_misses;

  const Clock::time_point warm0 = Clock::now();
  for (std::size_t k = 0; k < cfg.clients; ++k) (void)engine.Serve(k, row);
  const double warm_seconds = SecondsSince(warm0);
  const std::size_t warm_hits = engine.stats().t_hits;
  const double warm_hit_rate =
      static_cast<double>(warm_hits) / static_cast<double>(cfg.clients);
  const double cold_qps = static_cast<double>(cfg.clients) / cold_seconds;
  const double warm_qps = static_cast<double>(cfg.clients) / warm_seconds;

  // ---- fused throughput at batch 1 / 16 / 128 --------------------------------
  // Warm up every staging arena at the largest batch, then require the
  // measured loops to be allocation-free.
  for (std::size_t j = 0; j < cfg.max_batch_rows; ++j) {
    engine.Enqueue(j % cfg.clients, row);
  }
  (void)engine.Flush();
  const std::uint64_t allocs_before = internal::TensorAllocCount();
  std::vector<BatchResult> batches;
  for (std::size_t b = 0; b < cfg.batch_sizes.size(); ++b) {
    batches.push_back(RunBatch(engine, row, cfg.clients, cfg.batch_sizes[b],
                               cfg.batch_iters[b]));
  }
  const bool alloc_free = internal::TensorAllocCount() == allocs_before;
  const double fused_speedup =
      batches.front().queries_per_second > 0.0
          ? batches.back().queries_per_second /
                batches.front().queries_per_second
          : 0.0;

  // ---- wire front door bit-identity ------------------------------------------
  // A kQuery through a real loopback server must answer with exactly the
  // bits an in-process Serve produces for the same (client_id, inputs).
  net::AsyncRoundEngine::Options eng_opts;
  eng_opts.fleet_size = cfg.clients;
  eng_opts.quorum = cfg.clients;
  net::ServerOptions server_opts;
  server_opts.drain_fleet = false;
  net::CipServer server(fl::ModelState(std::vector<float>{0.0f}), eng_opts,
                        server_opts);
  serve::ServeEngine wire_engine(global->model(), store, opts);
  server.EnableServing(&wire_engine);
  server.Listen();
  Tensor probe({std::size_t{4}, cfg.input_dim});
  for (float& v : probe.flat()) v = rng.Normal();
  bool wire_identical = true;
  for (std::uint64_t cid : {std::uint64_t{0}, std::uint64_t{17},
                            std::uint64_t{cfg.clients - 1}}) {
    const Tensor expected = engine.Serve(cid, probe);  // copy
    const std::optional<Tensor> got = WireQuery(server, cid, probe);
    if (!got.has_value() || !SameBits(*got, expected)) {
      wire_identical = false;
    }
  }

  // ---- report ----------------------------------------------------------------
  TextTable table({"Metric", "Value"});
  table.AddRow({"fleet (model dim/width/classes)",
                std::to_string(cfg.clients) + " (" +
                    std::to_string(cfg.input_dim) + "/" +
                    std::to_string(cfg.width) + "/" +
                    std::to_string(cfg.classes) + ")"});
  table.AddRow({"threads", std::to_string(ParallelThreads())});
  table.AddRow({"cold t-cache queries/sec", TextTable::Num(cold_qps, 0)});
  table.AddRow({"warm t-cache queries/sec", TextTable::Num(warm_qps, 0)});
  table.AddRow({"warm hit rate", TextTable::Num(warm_hit_rate, 3)});
  for (const BatchResult& b : batches) {
    const std::string tag = "batch " + std::to_string(b.batch);
    table.AddRow({tag + " queries/sec", TextTable::Num(b.queries_per_second, 0)});
    table.AddRow({tag + " p50 / p99 ms",
                  TextTable::Num(b.p50_ms, 3) + " / " +
                      TextTable::Num(b.p99_ms, 3)});
  }
  table.AddRow({"fused speedup (128 vs 1)", TextTable::Num(fused_speedup, 2)});
  table.AddRow({"alloc-free steady state", alloc_free ? "yes" : "NO"});
  table.AddRow({"wire bit-identical", wire_identical ? "yes" : "NO"});
  table.Print(std::cout);

  // ---- JSON baseline ---------------------------------------------------------
  std::ofstream js(output_path);
  js << "{\n  \"schema\": \"cip-bench-serve/v1\",\n"
     << "  \"host\": {\"num_threads\": " << ParallelThreads()
     << ", \"cip_build_type\": \""
#ifdef NDEBUG
     << "release"
#else
     << "debug"
#endif
     << "\"},\n"
     << "  \"setup\": {\"clients\": " << cfg.clients
     << ", \"input_dim\": " << cfg.input_dim << ", \"width\": " << cfg.width
     << ", \"classes\": " << cfg.classes
     << ", \"max_batch_rows\": " << cfg.max_batch_rows << "},\n"
     << "  \"tcache\": {\"cold_queries_per_second\": ";
  PutNum(js, cold_qps);
  js << ", \"warm_queries_per_second\": ";
  PutNum(js, warm_qps);
  js << ", \"warm_hit_rate\": ";
  PutNum(js, warm_hit_rate);
  js << ",\n    \"stats\": {\"hits\": " << engine.stats().t_hits
     << ", \"misses\": " << engine.stats().t_misses
     << ", \"stale\": " << engine.stats().t_stale
     << ", \"evictions\": " << engine.stats().t_evictions << "}},\n"
     << "  \"serve\": {\"alloc_free_steady_state\": "
     << (alloc_free ? "true" : "false")
     << ", \"wire_bit_identical\": " << (wire_identical ? "true" : "false")
     << ",\n    \"fused_speedup_128_vs_1\": ";
  PutNum(js, fused_speedup);
  js << ",\n    \"batches\": [";
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const BatchResult& b = batches[i];
    js << (i == 0 ? "" : ",") << "\n      {\"batch\": " << b.batch
       << ", \"queries_per_second\": ";
    PutNum(js, b.queries_per_second);
    js << ", \"rows_per_second\": ";
    PutNum(js, b.rows_per_second);
    js << ", \"p50_ms\": ";
    PutNum(js, b.p50_ms);
    js << ", \"p99_ms\": ";
    PutNum(js, b.p99_ms);
    js << "}";
  }
  js << "\n    ]}\n}\n";
  js.close();
  std::cout << "baseline written to " << output_path << "\n";

  // ---- gates -----------------------------------------------------------------
  bool ok = true;
  if (cold_misses != cfg.clients || warm_hits != cfg.clients) {
    std::cerr << "FAIL: t-cache passes were not cleanly cold-then-warm ("
              << cold_misses << " misses, " << warm_hits << " hits)\n";
    ok = false;
  }
  if (fused_speedup < 4.0) {
    std::cerr << "FAIL: fused batch-128 throughput is only " << fused_speedup
              << "x batch-1 (need >= 4x)\n";
    ok = false;
  }
  if (!alloc_free) {
    std::cerr << "FAIL: measured serving loops performed tensor "
                 "allocations\n";
    ok = false;
  }
  if (!wire_identical) {
    std::cerr << "FAIL: wire kQuery answer differs from the in-process "
                 "ServeEngine bits\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
