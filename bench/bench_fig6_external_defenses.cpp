// Figure 6: external adversary — testing accuracy (a) and Pb-Bayes attack
// accuracy (b) on CH-MNIST for CIP vs DP, HDP, AR, MM and RelaxLoss across
// privacy budgets.
//
// Paper: no-defense attack ~0.69; every defense brings the attack to ~0.5,
// but only CIP (alpha=0.9) does so with accuracy matching no-defense; DP/AR
// drop accuracy 40-70%, HDP/MM/RL 10-25%.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "attacks/pb_bayes.h"
#include "core/cip_model.h"
#include "eval/experiment.h"

using namespace cip;

namespace {

struct Entry {
  std::string name;
  double test_acc;
  double attack_acc;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 6 — external adversary: defenses on CH-MNIST (Pb-Bayes)",
      "all defenses reach attack ~0.5; only CIP keeps no-defense accuracy",
      "acc(CIP) ≈ acc(NoDef) >> acc(DP small eps); attack(NoDef) highest");
  bench::BenchTimer timer;

  eval::BundleOptions opts;
  opts.train_size = Scaled(300);
  opts.test_size = Scaled(300);
  opts.shadow_size = Scaled(300);
  opts.width = 8;
  opts.seed = 41;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kChMnist, opts);
  Rng rng(42);
  const fl::TrainConfig train = eval::DefaultTrainConfig(bundle);
  const std::size_t epochs = Scaled(40);

  // The attacker's shadow model is shared across targets.
  const eval::ShadowPack shadow = eval::BuildShadowPack(bundle, epochs, rng);
  fl::ClassifierQuery shadow_q(*shadow.model);

  std::vector<Entry> entries;
  auto attack_classifier = [&](nn::Classifier& model) {
    fl::ClassifierQuery q(model);
    attacks::PbBayes pb(shadow_q, bundle.shadow_train, bundle.shadow_test);
    return attacks::EvaluateAttack(pb, q, bundle.train, bundle.test).accuracy;
  };

  {  // no defense
    auto model = eval::TrainPlain(bundle, epochs, rng);
    entries.push_back({"NoDefense", fl::Evaluate(*model, bundle.test),
                       attack_classifier(*model)});
  }
  {  // CIP at the paper's strong-defense alpha
    eval::CipSingleResult cip =
        eval::TrainCipSingle(bundle, /*alpha=*/0.9f, Scaled(35), rng);
    core::CipWhiteBox q(cip.client->model(), cip.client->config().blend);
    attacks::PbBayes pb(shadow_q, bundle.shadow_train, bundle.shadow_test);
    entries.push_back(
        {"CIP(a=0.9)", cip.client->EvalAccuracy(bundle.test),
         attacks::EvaluateAttack(pb, q, bundle.train, bundle.test).accuracy});
  }
  for (const float eps : {2.0f, 16.0f}) {  // LDP
    defenses::DpConfig dp;
    dp.epsilon = eps;
    dp.clip_norm = 4.0f;
    dp.total_steps = epochs * (bundle.train.size() / train.batch_size + 1);
    dp.sampling_rate =
        std::min(1.0f, static_cast<float>(train.batch_size) /
                           static_cast<float>(bundle.train.size()));
    fl::TrainConfig dp_train = train;
    dp_train.epochs = epochs;
    defenses::DpSgdClient client(bundle.spec, bundle.train, dp_train, dp, 43);
    client.SetGlobal(fl::InitialState(bundle.spec));
    Rng r(44);
    client.TrainLocal(0, r);
    entries.push_back({"DP(eps=" + TextTable::Num(eps, 0) + ")",
                       client.EvalAccuracy(bundle.test),
                       attack_classifier(client.model())});
  }
  for (const float eps : {2.0f, 16.0f}) {  // HDP
    defenses::DpConfig dp;
    dp.epsilon = eps;
    dp.clip_norm = 4.0f;
    dp.total_steps = epochs * (bundle.train.size() / train.batch_size + 1);
    dp.sampling_rate =
        std::min(1.0f, static_cast<float>(train.batch_size) /
                           static_cast<float>(bundle.train.size()));
    fl::TrainConfig dp_train = train;
    dp_train.epochs = epochs;
    defenses::HdpClient client(bundle.spec, bundle.train, dp_train, dp, 45);
    client.SetGlobal(defenses::HdpClient::InitialState(bundle.spec));
    Rng r(46);
    client.TrainLocal(0, r);
    entries.push_back({"HDP(eps=" + TextTable::Num(eps, 0) + ")",
                       client.EvalAccuracy(bundle.test),
                       attack_classifier(client.model())});
  }
  for (const float lambda : {1.0f, 2.0f}) {  // adversarial regularization
    defenses::ArConfig ar;
    ar.lambda = lambda;
    ar.attack_steps = 5;
    fl::TrainConfig ar_train = train;
    ar_train.epochs = epochs;
    Rng sample_rng(47);
    defenses::ArClient client(bundle.spec, bundle.train,
                              bundle.sample(bundle.train.size(), sample_rng),
                              ar_train, ar, 48);
    client.SetGlobal(fl::InitialState(bundle.spec));
    Rng r(49);
    client.TrainLocal(0, r);
    entries.push_back({"AR(l=" + TextTable::Num(lambda, 1) + ")",
                       client.EvalAccuracy(bundle.test),
                       attack_classifier(client.model())});
  }
  for (const float mu : {2.5f, 10.0f}) {  // Mixup + MMD
    defenses::MmConfig mm;
    mm.mu = mu;
    fl::TrainConfig mm_train = train;
    mm_train.epochs = epochs;
    Rng sample_rng(50);
    defenses::MixupMmdClient client(
        bundle.spec, bundle.train,
        bundle.sample(bundle.train.size(), sample_rng), mm_train, mm, 51);
    client.SetGlobal(fl::InitialState(bundle.spec));
    Rng r(52);
    client.TrainLocal(0, r);
    entries.push_back({"MM(mu=" + TextTable::Num(mu, 1) + ")",
                       client.EvalAccuracy(bundle.test),
                       attack_classifier(client.model())});
  }
  for (const float omega : {1.0f, 5.0f}) {  // RelaxLoss
    defenses::RlConfig rl;
    rl.omega = omega;
    fl::TrainConfig rl_train = train;
    rl_train.epochs = epochs;
    defenses::RelaxLossClient client(bundle.spec, bundle.train, rl_train, rl,
                                     53);
    client.SetGlobal(fl::InitialState(bundle.spec));
    Rng r(54);
    client.TrainLocal(0, r);
    entries.push_back({"RL(w=" + TextTable::Num(omega, 1) + ")",
                       client.EvalAccuracy(bundle.test),
                       attack_classifier(client.model())});
  }

  TextTable table({"Defense", "test acc", "Pb-Bayes attack acc"});
  for (const Entry& e : entries) {
    table.AddRow({e.name, TextTable::Num(e.test_acc),
                  TextTable::Num(e.attack_acc)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: NoDef attack ~0.69; all defenses ~0.5-0.55; CIP test\n"
               "acc within ~1% of NoDef; DP/AR lose 40-70%.\n";
  return 0;
}
