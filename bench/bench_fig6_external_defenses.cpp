// Figure 6: external adversary — testing accuracy (a) and Pb-Bayes attack
// accuracy (b) on CH-MNIST for CIP vs DP, HDP, AR, MM and RelaxLoss across
// privacy budgets.
//
// Paper: no-defense attack ~0.69; every defense brings the attack to ~0.5,
// but only CIP (alpha=0.9) does so with accuracy matching no-defense; DP/AR
// drop accuracy 40-70%, HDP/MM/RL 10-25%.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "attacks/pb_bayes.h"
#include "core/cip_model.h"
#include "eval/experiment.h"
#include "fl/client_factory.h"

using namespace cip;

namespace {

struct Entry {
  std::string name;
  double test_acc;
  double attack_acc;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 6 — external adversary: defenses on CH-MNIST (Pb-Bayes)",
      "all defenses reach attack ~0.5; only CIP keeps no-defense accuracy",
      "acc(CIP) ≈ acc(NoDef) >> acc(DP small eps); attack(NoDef) highest");
  bench::BenchTimer timer;

  eval::BundleOptions opts;
  opts.train_size = Scaled(300);
  opts.test_size = Scaled(300);
  opts.shadow_size = Scaled(300);
  opts.width = 8;
  opts.seed = 41;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kChMnist, opts);
  Rng rng(42);
  const fl::TrainConfig train = eval::DefaultTrainConfig(bundle);
  const std::size_t epochs = Scaled(40);

  // The attacker's shadow model is shared across targets.
  const eval::ShadowPack shadow = eval::BuildShadowPack(bundle, epochs, rng);
  fl::ClassifierQuery shadow_q(*shadow.model);

  std::vector<Entry> entries;
  auto attack_classifier = [&](nn::Classifier& model) {
    fl::ClassifierQuery q(model);
    attacks::PbBayes pb(shadow_q, bundle.shadow_train, bundle.shadow_test);
    return attacks::EvaluateAttack(pb, q, bundle.train, bundle.test).accuracy;
  };

  {  // no defense
    auto model = eval::TrainPlain(bundle, epochs, rng);
    entries.push_back({"NoDefense", fl::Evaluate(*model, bundle.test),
                       attack_classifier(*model)});
  }
  {  // CIP at the paper's strong-defense alpha
    eval::CipSingleResult cip =
        eval::TrainCipSingle(bundle, /*alpha=*/0.9f, Scaled(35), rng);
    core::CipWhiteBox q(cip.client->model(), cip.client->config().blend);
    attacks::PbBayes pb(shadow_q, bundle.shadow_train, bundle.shadow_test);
    entries.push_back(
        {"CIP(a=0.9)", cip.client->EvalAccuracy(bundle.test),
         attacks::EvaluateAttack(pb, q, bundle.train, bundle.test).accuracy});
  }
  // Every defense target goes through the client factory: fill a ClientSpec,
  // train one local round (epochs folded into TrainConfig::epochs), attack
  // the concrete model.
  fl::ClientSpec base;
  base.model = bundle.spec;
  base.data = bundle.train;
  base.train = train;
  base.train.epochs = epochs;
  auto train_client = [&](const fl::ClientSpec& spec,
                          std::uint64_t round_seed) {
    std::unique_ptr<fl::ClientBase> client = fl::MakeClient(spec);
    client->SetGlobal(fl::InitialStateFor(spec));
    client->TrainLocal(fl::MakeRoundContext(round_seed, 1, 0));
    return client;
  };
  auto dp_for = [&](float eps) {
    defenses::DpConfig dp;
    dp.epsilon = eps;
    dp.clip_norm = 4.0f;
    dp.total_steps = epochs * (bundle.train.size() / train.batch_size + 1);
    dp.sampling_rate =
        std::min(1.0f, static_cast<float>(train.batch_size) /
                           static_cast<float>(bundle.train.size()));
    return dp;
  };
  for (const float eps : {2.0f, 16.0f}) {  // LDP
    fl::ClientSpec spec = base;
    spec.kind = fl::ClientKind::kDpSgd;
    spec.dp = dp_for(eps);
    spec.seed = 43;
    const auto client = train_client(spec, 44);
    entries.push_back(
        {"DP(eps=" + TextTable::Num(eps, 0) + ")",
         client->EvalAccuracy(bundle.test),
         attack_classifier(
             static_cast<defenses::DpSgdClient&>(*client).model())});
  }
  for (const float eps : {2.0f, 16.0f}) {  // HDP
    fl::ClientSpec spec = base;
    spec.kind = fl::ClientKind::kHdp;
    spec.dp = dp_for(eps);
    spec.seed = 45;
    const auto client = train_client(spec, 46);
    entries.push_back(
        {"HDP(eps=" + TextTable::Num(eps, 0) + ")",
         client->EvalAccuracy(bundle.test),
         attack_classifier(
             static_cast<defenses::HdpClient&>(*client).model())});
  }
  for (const float lambda : {1.0f, 2.0f}) {  // adversarial regularization
    fl::ClientSpec spec = base;
    spec.kind = fl::ClientKind::kAdvReg;
    spec.ar.lambda = lambda;
    spec.ar.attack_steps = 5;
    Rng sample_rng(47);
    spec.reference = bundle.sample(bundle.train.size(), sample_rng);
    spec.seed = 48;
    const auto client = train_client(spec, 49);
    entries.push_back(
        {"AR(l=" + TextTable::Num(lambda, 1) + ")",
         client->EvalAccuracy(bundle.test),
         attack_classifier(static_cast<defenses::ArClient&>(*client).model())});
  }
  for (const float mu : {2.5f, 10.0f}) {  // Mixup + MMD
    fl::ClientSpec spec = base;
    spec.kind = fl::ClientKind::kMixupMmd;
    spec.mm.mu = mu;
    Rng sample_rng(50);
    spec.reference = bundle.sample(bundle.train.size(), sample_rng);
    spec.seed = 51;
    const auto client = train_client(spec, 52);
    entries.push_back(
        {"MM(mu=" + TextTable::Num(mu, 1) + ")",
         client->EvalAccuracy(bundle.test),
         attack_classifier(
             static_cast<defenses::MixupMmdClient&>(*client).model())});
  }
  for (const float omega : {1.0f, 5.0f}) {  // RelaxLoss
    fl::ClientSpec spec = base;
    spec.kind = fl::ClientKind::kRelaxLoss;
    spec.rl.omega = omega;
    spec.seed = 53;
    const auto client = train_client(spec, 54);
    entries.push_back(
        {"RL(w=" + TextTable::Num(omega, 1) + ")",
         client->EvalAccuracy(bundle.test),
         attack_classifier(
             static_cast<defenses::RelaxLossClient&>(*client).model())});
  }

  TextTable table({"Defense", "test acc", "Pb-Bayes attack acc"});
  for (const Entry& e : entries) {
    table.AddRow({e.name, TextTable::Num(e.test_acc),
                  TextTable::Num(e.attack_acc)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: NoDef attack ~0.69; all defenses ~0.5-0.55; CIP test\n"
               "acc within ~1% of NoDef; DP/AR lose 40-70%.\n";
  return 0;
}
