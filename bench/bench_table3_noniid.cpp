// Table III (RQ2): accuracy of CIP, no defense, and local-only training
// under data distributions from non-i.i.d. to i.i.d. (5 clients).
//
// Paper (CIFAR-100, 5 clients): CIP beats no-defense under non-i.i.d.
// (0.683 vs 0.611 at 20 classes/client), converging as the split becomes
// i.i.d. (0.665 vs 0.672 at 100); local-only training is best at the most
// non-i.i.d. point (fewer classes = easier local problem) and collapses as
// classes grow.
#include <iostream>

#include "bench_util.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/server.h"

using namespace cip;

namespace {

constexpr std::size_t kNumClasses = 20;
constexpr std::size_t kClients = 5;

struct Setting {
  std::size_t classes_per_client;
  double paper_cip, paper_nodef, paper_local;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Table III — CIP vs NoDefense vs Local across non-i.i.d. -> i.i.d.",
      "CIP 0.683/0.676/0.672/0.670/0.665 vs NoDef 0.611..0.672 vs Local "
      "0.674..0.439 (20..100 classes/client)",
      "CIP > NoDef under non-i.i.d., ≈ NoDef at i.i.d.; Local collapses as "
      "classes/client grows");
  bench::BenchTimer timer;

  // The paper's 20..100-of-100 classes map to 4..20 of our 20 stand-in
  // classes.
  const std::vector<Setting> grid = {
      {4, 0.683, 0.611, 0.674},   // paper's "20 (non-i.i.d.)"
      {12, 0.672, 0.653, 0.525},  // paper's "60"
      {20, 0.665, 0.672, 0.439},  // paper's "100 (i.i.d.)"
  };

  data::SyntheticVision gen(data::Cifar100Like(kNumClasses));
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = kNumClasses;
  spec.width = 8;
  spec.seed = 61;
  fl::TrainConfig train;
  train.lr = 0.02f;
  train.momentum = 0.9f;
  const std::size_t rounds = Scaled(35);
  const std::size_t per_client = Scaled(100);

  TextTable table({"classes/client (paper)", "CIP (paper)", "NoDef (paper)",
                   "Local (paper)"});
  for (const Setting& s : grid) {
    Rng rng(62);
    data::Dataset full = gen.Sample(kClients * per_client, rng);
    const auto shards = data::PartitionByClasses(
        full, kClients, s.classes_per_client, kNumClasses, rng);
    const data::Dataset test = gen.Sample(Scaled(300), rng);

    // CIP federated.
    double cip_acc = 0.0;
    {
      core::CipConfig cfg;
      cfg.blend.alpha = 0.3f;  // the paper's RQ2 uses moderate alpha
      cfg.train = train;
      cfg.perturb_steps = 6;
      std::vector<std::unique_ptr<core::CipClient>> clients;
      std::vector<fl::ClientBase*> ptrs;
      for (std::size_t k = 0; k < kClients; ++k) {
        clients.push_back(
            std::make_unique<core::CipClient>(spec, shards[k], cfg, 70 + k));
        ptrs.push_back(clients.back().get());
      }
      fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
      fl::FlOptions opts;
      opts.rounds = rounds;
      fl::FederatedAveraging server(core::InitialDualState(spec), opts);
      server.Run(store, rng.NextU64());
      for (fl::ClientBase* c : ptrs) cip_acc += c->EvalAccuracy(test);
      cip_acc /= kClients;
    }

    // No-defense federated.
    double nodef_acc = 0.0;
    {
      std::vector<std::unique_ptr<fl::LegacyClient>> clients;
      std::vector<fl::ClientBase*> ptrs;
      for (std::size_t k = 0; k < kClients; ++k) {
        clients.push_back(
            std::make_unique<fl::LegacyClient>(spec, shards[k], train, 80 + k));
        ptrs.push_back(clients.back().get());
      }
      fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
      fl::FlOptions opts;
      opts.rounds = rounds;
      fl::FederatedAveraging server(fl::InitialState(spec), opts);
      server.Run(store, rng.NextU64());
      for (fl::ClientBase* c : ptrs) nodef_acc += c->EvalAccuracy(test);
      nodef_acc /= kClients;
    }

    // Local-only training: each client trains alone and is evaluated only on
    // test samples of ITS classes (a K-class problem, as the paper notes).
    double local_acc = 0.0;
    {
      for (std::size_t k = 0; k < kClients; ++k) {
        fl::LegacyClient client(spec, shards[k], train, 90 + k);
        client.SetGlobal(fl::InitialState(spec));
        for (std::size_t e = 0; e < rounds; ++e) {
          client.TrainLocal(fl::MakeRoundContext(91 + k, e + 1, k));
        }
        const std::vector<int> classes =
            data::ClassesPresent(client.LocalData());
        Rng tr(92 + k);
        const data::Dataset local_test =
            gen.SampleClasses(Scaled(150), classes, tr);
        local_acc += client.EvalAccuracy(local_test);
      }
      local_acc /= kClients;
    }

    const double paper_frac =
        static_cast<double>(s.classes_per_client) / kNumClasses * 100.0;
    table.AddRow({TextTable::Num(paper_frac, 0) + " of 100",
                  TextTable::Num(cip_acc) + " (" + TextTable::Num(s.paper_cip) + ")",
                  TextTable::Num(nodef_acc) + " (" + TextTable::Num(s.paper_nodef) + ")",
                  TextTable::Num(local_acc) + " (" + TextTable::Num(s.paper_local) + ")"});
  }
  table.Print(std::cout);
  return 0;
}
