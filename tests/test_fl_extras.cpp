// Tests for the FL extras: secure aggregation, serialization, partial
// participation, and learning-rate schedules across rounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "fl/client.h"
#include "fl/secure_agg.h"
#include "fl/serialize.h"
#include "fl/server.h"
#include "testing_util.h"

namespace cip {
namespace {

// ---- secure aggregation ------------------------------------------------------

TEST(SecureAgg, MasksCancelInAggregate) {
  Rng rng(1);
  const std::size_t clients = 4, dim = 64;
  std::vector<fl::ModelState> updates;
  for (std::size_t k = 0; k < clients; ++k) {
    std::vector<float> v(dim);
    for (float& x : v) x = rng.Normal();
    updates.emplace_back(std::move(v));
  }
  const fl::ModelState plain_avg = fl::ModelState::Average(updates);

  fl::SecureAggregation agg(0xABCDEF);
  std::vector<fl::ModelState> masked;
  for (std::size_t k = 0; k < clients; ++k) {
    masked.push_back(agg.MaskUpdate(updates[k], k, clients));
  }
  const fl::ModelState secure_avg = fl::SecureAggregation::Aggregate(masked);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(secure_avg.values()[i], plain_avg.values()[i], 1e-4f);
  }
}

TEST(SecureAgg, IndividualMaskedUpdatesAreHidden) {
  Rng rng(2);
  const std::size_t dim = 128;
  std::vector<float> v(dim, 0.0f);  // an all-zero "update" — easy to spot
  const fl::ModelState update{std::vector<float>(v)};
  fl::SecureAggregation agg(0x1234);
  const fl::ModelState masked = agg.MaskUpdate(update, 0, 3);
  // The server's view of the individual update is dominated by the masks.
  EXPECT_GT(masked.L2Norm(), 5.0f);
}

TEST(SecureAgg, DifferentSessionsGiveDifferentMasks) {
  const fl::ModelState update{std::vector<float>(32, 0.0f)};
  fl::SecureAggregation a(1), b(2);
  const fl::ModelState ma = a.MaskUpdate(update, 0, 2);
  const fl::ModelState mb = b.MaskUpdate(update, 0, 2);
  float diff = 0.0f;
  for (std::size_t i = 0; i < 32; ++i) {
    diff += std::abs(ma.values()[i] - mb.values()[i]);
  }
  EXPECT_GT(diff, 1.0f);
}

TEST(SecureAgg, SingleClientIsUnmasked) {
  const fl::ModelState update{std::vector<float>{1.0f, 2.0f}};
  fl::SecureAggregation agg(7);
  const fl::ModelState masked = agg.MaskUpdate(update, 0, 1);
  EXPECT_FLOAT_EQ(masked.values()[0], 1.0f);
  EXPECT_FLOAT_EQ(masked.values()[1], 2.0f);
}

// ---- serialization -----------------------------------------------------------

TEST(Serialize, ModelStateRoundTrip) {
  Rng rng(3);
  std::vector<float> v(97);
  for (float& x : v) x = rng.Normal();
  const fl::ModelState state{std::vector<float>(v)};
  std::stringstream ss;
  fl::SaveModelState(state, ss);
  const fl::ModelState loaded = fl::LoadModelState(ss);
  ASSERT_EQ(loaded.size(), state.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(loaded.values()[i], v[i]);
  }
}

TEST(Serialize, TensorRoundTripPreservesShape) {
  Rng rng(4);
  Tensor t({2, 3, 5});
  for (float& x : t.flat()) x = rng.Normal();
  std::stringstream ss;
  fl::SaveTensor(t, ss);
  const Tensor loaded = fl::LoadTensor(ss);
  EXPECT_EQ(loaded.shape(), t.shape());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(loaded[i], t[i]);
}

TEST(Serialize, RejectsWrongMagic) {
  std::stringstream ss;
  ss << "not a cip stream at all";
  EXPECT_THROW(fl::LoadModelState(ss), CheckError);
  std::stringstream ss2;
  ss2 << "also not a tensor";
  EXPECT_THROW(fl::LoadTensor(ss2), CheckError);
}

TEST(Serialize, RejectsTruncatedStream) {
  Tensor t({4, 4}, 1.0f);
  std::stringstream ss;
  fl::SaveTensor(t, ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(fl::LoadTensor(truncated), CheckError);
}

TEST(Serialize, RejectsHostileLengthPrefix) {
  // Hand-craft a header whose length prefix claims ~2^63 floats; the loader
  // must reject it before sizing a buffer.
  const auto put_u32 = [](std::stringstream& ss, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) ss.put(static_cast<char>((v >> (8 * b)) & 0xff));
  };
  const auto put_u64 = [](std::stringstream& ss, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) ss.put(static_cast<char>((v >> (8 * b)) & 0xff));
  };
  std::stringstream ss;
  put_u32(ss, 0x43495053);  // state magic "CIPS"
  put_u32(ss, 1);           // version
  put_u64(ss, std::uint64_t{1} << 62);
  EXPECT_THROW(fl::LoadModelState(ss), CheckError);

  // Tensor path: plausible rank, dims whose product overflows size_t.
  std::stringstream ts;
  put_u32(ts, 0x43495054);  // tensor magic "CIPT"
  put_u32(ts, 1);           // version
  put_u64(ts, 4);           // rank
  for (int i = 0; i < 4; ++i) put_u64(ts, std::uint64_t{1} << 30);
  EXPECT_THROW(fl::LoadTensor(ts), CheckError);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = "/tmp/cip_test_state.bin";
  const fl::ModelState state{std::vector<float>{1.5f, -2.5f, 3.5f}};
  fl::SaveModelStateFile(state, path);
  const fl::ModelState loaded = fl::LoadModelStateFile(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.values()[1], -2.5f);
  EXPECT_THROW(fl::LoadModelStateFile("/nonexistent/nope.bin"), CheckError);
}

// ---- partial participation ---------------------------------------------------

TEST(Participation, SubsetOfClientsTrainsEachRound) {
  Rng rng(5);
  data::Dataset full = testing::TwoBlobs(120, 4, rng);
  for (float& v : full.inputs.flat()) {
    v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  }
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {4};
  spec.num_classes = 2;
  spec.width = 4;
  spec.seed = 6;
  fl::TrainConfig cfg;
  std::vector<std::unique_ptr<fl::LegacyClient>> clients;
  std::vector<fl::ClientBase*> ptrs;
  for (std::size_t k = 0; k < 4; ++k) {
    clients.push_back(std::make_unique<fl::LegacyClient>(
        spec, full.Slice(k * 30, (k + 1) * 30), cfg, 10 + k));
    ptrs.push_back(clients.back().get());
  }
  fl::FlOptions opts;
  opts.rounds = 6;
  opts.participation = 0.5f;
  opts.record_client_updates = true;
  fl::FederatedAveraging server(fl::InitialState(spec), opts);
  fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
  const fl::FlLog log = server.Run(store, rng.NextU64());
  for (const auto& round : log.client_updates) {
    EXPECT_EQ(round.size(), 2u);  // floor(0.5 * 4) clients per round
  }
  // Cohort losses are O(cohort), aligned with the sampled participants.
  for (const auto& round : log.client_losses) {
    EXPECT_EQ(round.size(), 2u);
  }
}

TEST(Participation, RejectsInvalidFraction) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {4};
  spec.num_classes = 2;
  spec.width = 2;
  fl::FlOptions opts;
  opts.participation = 0.0f;
  EXPECT_THROW(fl::FederatedAveraging(fl::InitialState(spec), opts),
               CheckError);
}

// ---- learning-rate schedule ---------------------------------------------------

TEST(LrSchedule, DecaysAcrossRounds) {
  fl::TrainConfig cfg;
  cfg.lr = 0.1f;
  cfg.lr_decay = 0.5f;
  cfg.lr_decay_every = 5;
  EXPECT_FLOAT_EQ(fl::LrAtRound(cfg, 1), 0.1f);
  EXPECT_FLOAT_EQ(fl::LrAtRound(cfg, 5), 0.1f);
  EXPECT_FLOAT_EQ(fl::LrAtRound(cfg, 6), 0.05f);
  EXPECT_FLOAT_EQ(fl::LrAtRound(cfg, 11), 0.025f);
}

TEST(LrSchedule, DisabledByDefault) {
  fl::TrainConfig cfg;
  cfg.lr = 0.1f;
  EXPECT_FLOAT_EQ(fl::LrAtRound(cfg, 100), 0.1f);
}

}  // namespace
}  // namespace cip
