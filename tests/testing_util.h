// Shared helpers for the test suite: numerical gradient checking and tiny
// dataset builders.
#pragma once

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace cip::testing {

/// Central-difference derivative of `loss()` w.r.t. element `idx` of `x`.
/// `loss` must read the current contents of x each call.
inline double NumericGrad(const std::function<double()>& loss, Tensor& x,
                          std::size_t idx, double eps = 1e-2) {
  const float saved = x[idx];
  x[idx] = saved + static_cast<float>(eps);
  const double up = loss();
  x[idx] = saved - static_cast<float>(eps);
  const double down = loss();
  x[idx] = saved;
  return (up - down) / (2.0 * eps);
}

/// Relative error with an absolute floor: float32 forward passes limit the
/// precision of central differences, so gradients much smaller than the
/// floor are held to an absolute rather than relative tolerance.
inline double RelErr(double a, double b) {
  return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 2e-2});
}

/// Best-of-two-epsilons numeric gradient error vs an analytic value.
/// A large epsilon controls float32 round-off noise; a small epsilon avoids
/// crossing ReLU kinks — the smaller of the two errors is the fair verdict.
inline double NumericGradError(const std::function<double()>& loss, Tensor& x,
                               std::size_t idx, double analytic) {
  const double e1 = RelErr(NumericGrad(loss, x, idx, 1e-2), analytic);
  const double e2 = RelErr(NumericGrad(loss, x, idx, 2e-3), analytic);
  return std::min(e1, e2);
}

/// A tiny linearly-separable dataset: two Gaussian blobs in d dimensions.
inline data::Dataset TwoBlobs(std::size_t n, std::size_t d, Rng& rng,
                              float separation = 2.0f) {
  Tensor inputs({n, d});
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % 2);
    labels[i] = y;
    for (std::size_t j = 0; j < d; ++j) {
      const float center = (y == 0 ? -0.5f : 0.5f) * separation;
      inputs[i * d + j] = center + rng.Normal(0.0f, 0.5f);
    }
  }
  return {std::move(inputs), std::move(labels)};
}

}  // namespace cip::testing
