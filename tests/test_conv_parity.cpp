// Parity oracle for the convolution rewrite: the im2col/GEMM fast path and
// the CIP_NAIVE_CONV reference path must agree (forward, dX, dW, db) within
// 1e-5 across stride/padding/kernel edge cases, and every Matmul variant must
// match a double-precision triple-loop reference. Runs under the asan/ubsan/
// tsan presets like every other test, so the blocked kernels are also checked
// for memory and threading bugs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/cpu_features.h"
#include "common/env.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "tensor/gemm_kernels.h"
#include "tensor/ops.h"

namespace cip {
namespace {

Tensor RandomTensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.Normal();
  return t;
}

/// Flips the conv implementation and always restores the GEMM default, even
/// if an assertion fails mid-test.
class NaiveConvGuard {
 public:
  explicit NaiveConvGuard(bool naive) {
    internal::SetNaiveConvForTesting(naive);
  }
  ~NaiveConvGuard() { internal::SetNaiveConvForTesting(false); }
};

void ExpectTensorsNear(const Tensor& a, const Tensor& b, double tol,
                       const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what << ": shape " << ShapeToString(a.shape())
                              << " vs " << ShapeToString(b.shape());
  double worst = 0.0;
  std::size_t worst_i = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scaled =
        std::abs(a[i] - b[i]) / (1.0 + std::abs(static_cast<double>(b[i])));
    if (scaled > worst) {
      worst = scaled;
      worst_i = i;
    }
  }
  EXPECT_LE(worst, tol) << what << ": worst mismatch at flat index " << worst_i
                        << ": " << a[worst_i] << " vs " << b[worst_i];
}

struct ConvCase {
  std::size_t n, ic, oc, k, stride, pad, h, w;
};

// Odd shapes on purpose: 1×1 kernels, single-pixel inputs, strides that do
// not divide the extent, padding larger than stride, non-square images, an
// even kernel, and one backbone-sized case.
const ConvCase kConvCases[] = {
    {2, 3, 4, 3, 1, 1, 8, 8},     // vanilla 3x3 same-conv
    {1, 1, 1, 1, 1, 0, 1, 1},     // single pixel through a 1x1
    {3, 2, 5, 1, 1, 0, 7, 5},     // 1x1 kernel, non-square image
    {2, 3, 2, 3, 2, 0, 9, 7},     // stride 2, no padding, odd extents
    {2, 2, 3, 3, 2, 1, 6, 6},     // stride 2 with padding
    {1, 4, 6, 5, 1, 2, 11, 9},    // 5x5 kernel, pad 2
    {2, 1, 2, 3, 3, 1, 10, 10},   // stride 3
    {1, 2, 2, 4, 2, 2, 4, 4},     // even kernel, pad == 2
    {1, 3, 2, 3, 1, 2, 3, 3},     // padding bigger than the image core
    {4, 3, 32, 3, 1, 1, 12, 12},  // backbone-sized
};

TEST(ConvParity, ForwardBackwardAgreeAcrossShapes) {
  for (const ConvCase& c : kConvCases) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << c.n << " ic=" << c.ic << " oc=" << c.oc
                 << " k=" << c.k << " s=" << c.stride << " p=" << c.pad
                 << " h=" << c.h << " w=" << c.w);
    // Same seed -> bit-identical weights in both layers.
    Rng rng_a(42), rng_b(42);
    nn::Conv2d fast(c.ic, c.oc, c.k, c.stride, c.pad, rng_a, "fast");
    nn::Conv2d naive(c.ic, c.oc, c.k, c.stride, c.pad, rng_b, "naive");
    const Tensor x = RandomTensor({c.n, c.ic, c.h, c.w}, 7);
    const std::size_t oh = fast.OutExtent(c.h), ow = fast.OutExtent(c.w);
    const Tensor grad_out = RandomTensor({c.n, c.oc, oh, ow}, 8);

    Tensor y_fast, dx_fast, y_naive, dx_naive;
    {
      NaiveConvGuard guard(false);
      y_fast = fast.Forward(x, /*train=*/true);
      dx_fast = fast.Backward(grad_out);
    }
    {
      NaiveConvGuard guard(true);
      y_naive = naive.Forward(x, /*train=*/true);
      dx_naive = naive.Backward(grad_out);
    }

    ExpectTensorsNear(y_fast, y_naive, 1e-5, "forward");
    ExpectTensorsNear(dx_fast, dx_naive, 1e-5, "dX");
    ExpectTensorsNear(fast.Parameters()[0]->grad, naive.Parameters()[0]->grad,
                      1e-5, "dW");
    ExpectTensorsNear(fast.Parameters()[1]->grad, naive.Parameters()[1]->grad,
                      1e-5, "db");
  }
}

// The dual-channel model runs forward(ch1), forward(ch2), backward(ch2),
// backward(ch1) on one shared backbone. The GEMM path recomputes its
// lowering scratch in Backward, so the second (stale-scratch) backward must
// still match the reference.
TEST(ConvParity, DoubleForwardLifoBackwardMatchesNaive) {
  Rng rng_a(11), rng_b(11);
  nn::Conv2d fast(3, 4, 3, 1, 1, rng_a, "fast");
  nn::Conv2d naive(3, 4, 3, 1, 1, rng_b, "naive");
  const Tensor x1 = RandomTensor({2, 3, 6, 6}, 1);
  const Tensor x2 = RandomTensor({2, 3, 6, 6}, 2);
  const Tensor g1 = RandomTensor({2, 4, 6, 6}, 3);
  const Tensor g2 = RandomTensor({2, 4, 6, 6}, 4);

  Tensor dx2_fast, dx1_fast, dx2_naive, dx1_naive;
  {
    NaiveConvGuard guard(false);
    fast.Forward(x1, true);
    fast.Forward(x2, true);
    dx2_fast = fast.Backward(g2);
    dx1_fast = fast.Backward(g1);
  }
  {
    NaiveConvGuard guard(true);
    naive.Forward(x1, true);
    naive.Forward(x2, true);
    dx2_naive = naive.Backward(g2);
    dx1_naive = naive.Backward(g1);
  }
  ExpectTensorsNear(dx2_fast, dx2_naive, 1e-5, "dX ch2");
  ExpectTensorsNear(dx1_fast, dx1_naive, 1e-5, "dX ch1");
  ExpectTensorsNear(fast.Parameters()[0]->grad, naive.Parameters()[0]->grad,
                    1e-5, "dW both channels");
}

// <Im2Col(x), c> == <x, Col2Im(c)>: the lowering and its scatter-add are
// exact adjoints, which is what makes the GEMM backward correct.
TEST(ConvParity, Im2ColCol2ImAreAdjoint) {
  const ops::Conv2dGeom g{3, 7, 5, 3, 2, 1};
  const Tensor x = RandomTensor({2, 3, 7, 5}, 21);
  const Tensor c = RandomTensor({g.OutH() * g.OutW(), g.PatchSize()}, 22);
  for (std::size_t i = 0; i < 2; ++i) {
    const Tensor col = ops::Im2Col(x, i, g);
    Tensor back({2, 3, 7, 5});
    ops::Col2ImInto(c, 0, g, back, i);
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t j = 0; j < col.size(); ++j) lhs += col[j] * c[j];
    for (std::size_t j = 0; j < x.size(); ++j) rhs += x[j] * back[j];
    EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::abs(rhs)));
  }
}

// ---- Matmul vs double-precision reference oracle ---------------------------

Tensor RefMatmul(const Tensor& a, const Tensor& b, bool trans_a,
                 bool trans_b) {
  const std::size_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::size_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::size_t n = trans_b ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        s += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

struct MatmulCase {
  std::size_t m, k, n;
};

// Sizes straddle the blocked-kernel threshold and every tile tail:
// m % 4, n % 8, k % 256 all nonzero somewhere.
const MatmulCase kMatmulCases[] = {
    {1, 1, 1}, {3, 5, 2},   {4, 8, 8},    {17, 33, 9},
    {33, 17, 40}, {64, 64, 64}, {65, 31, 70}, {128, 300, 12},
};

TEST(MatmulOracle, AllVariantsMatchDoubleReference) {
  for (const MatmulCase& mc : kMatmulCases) {
    SCOPED_TRACE(::testing::Message()
                 << "m=" << mc.m << " k=" << mc.k << " n=" << mc.n);
    const Tensor a = RandomTensor({mc.m, mc.k}, 100 + mc.m);
    const Tensor b = RandomTensor({mc.k, mc.n}, 200 + mc.n);
    const Tensor bt = RandomTensor({mc.n, mc.k}, 300 + mc.n);
    const Tensor at = RandomTensor({mc.k, mc.m}, 400 + mc.m);

    ExpectTensorsNear(ops::Matmul(a, b), RefMatmul(a, b, false, false), 1e-5,
                      "Matmul");
    ExpectTensorsNear(ops::MatmulTransB(a, bt), RefMatmul(a, bt, false, true),
                      1e-5, "MatmulTransB");
    ExpectTensorsNear(ops::MatmulTransA(at, b), RefMatmul(at, b, true, false),
                      1e-5, "MatmulTransA");

    // Into variants write the same values into caller-owned scratch.
    Tensor c({mc.m, mc.n}, /*fill=*/123.0f);
    ops::MatmulInto(a, b, c);
    ExpectTensorsNear(c, RefMatmul(a, b, false, false), 1e-5, "MatmulInto");
    c.Fill(-7.0f);
    ops::MatmulTransBInto(a, bt, c);
    ExpectTensorsNear(c, RefMatmul(a, bt, false, true), 1e-5,
                      "MatmulTransBInto");
    c.Fill(0.25f);
    ops::MatmulTransAInto(at, b, c);
    ExpectTensorsNear(c, RefMatmul(at, b, true, false), 1e-5,
                      "MatmulTransAInto");
  }
}

TEST(MatmulOracle, ShapeMismatchThrows) {
  const Tensor a = RandomTensor({4, 5}, 1);
  const Tensor b = RandomTensor({6, 7}, 2);
  EXPECT_THROW(ops::Matmul(a, b), CheckError);
  Tensor c({4, 7});
  EXPECT_THROW(ops::MatmulInto(a, b, c), CheckError);
  Tensor wrong({3, 3});
  const Tensor b_ok = RandomTensor({5, 7}, 3);
  EXPECT_THROW(ops::MatmulInto(a, b_ok, wrong), CheckError);
}

// ---- per-ISA parity --------------------------------------------------------

/// Forces one CIP_ISA request and rebinds the registry; restores auto on
/// scope exit (see tests/test_cpu_features.cpp for the dispatcher's own
/// tests — this file only pins naive-vs-kernel parity per ISA).
class IsaGuard {
 public:
  explicit IsaGuard(IsaRequest request) {
    internal::SetIsaRequestForTesting(request);
    ops::internal::ResetGemmBindingForTesting();
  }
  ~IsaGuard() {
    internal::SetIsaRequestForTesting(IsaRequest::kAuto);
    ops::internal::ResetGemmBindingForTesting();
  }
};

std::vector<IsaRequest> UsableRequests() {
  std::vector<IsaRequest> reqs{IsaRequest::kPortable};
  const CpuFeatures& f = GetCpuFeatures();
  if (IsaSupported(IsaLevel::kAvx2, f) &&
      ops::internal::Avx2GemmKernel() != nullptr) {
    reqs.push_back(IsaRequest::kAvx2);
  }
  if (IsaSupported(IsaLevel::kAvx512, f) &&
      ops::internal::Avx512GemmKernel() != nullptr) {
    reqs.push_back(IsaRequest::kAvx512);
  }
  return reqs;
}

/// Pinned naive-vs-kernel tolerance per ISA. One bound for all current
/// kernels (FMA contraction only tightens rounding), pinned per ISA so a
/// future kernel cannot silently widen the shared bound.
double PinnedConvTolerance(IsaLevel isa) {
  switch (isa) {
    case IsaLevel::kAvx512:
      return 1e-5;
    case IsaLevel::kAvx2:
      return 1e-5;
    case IsaLevel::kPortable:
      break;
  }
  return 1e-5;
}

TEST(ConvParity, ForwardBackwardAgreeAcrossIsas) {
  // Backbone-sized case (the GEMM is big enough to take the blocked kernel)
  // plus a tail-heavy case, naive-vs-kernel per usable ISA.
  const ConvCase kIsaCases[] = {
      {4, 3, 32, 3, 1, 1, 12, 12},
      {2, 3, 2, 3, 2, 0, 9, 7},
  };
  for (const IsaRequest req : UsableRequests()) {
    IsaGuard isa_guard(req);
    const double tol = PinnedConvTolerance(ops::ActiveGemmIsa());
    SCOPED_TRACE(::testing::Message()
                 << "isa=" << IsaName(ops::ActiveGemmIsa()));
    for (const ConvCase& c : kIsaCases) {
      SCOPED_TRACE(::testing::Message()
                   << "n=" << c.n << " ic=" << c.ic << " oc=" << c.oc
                   << " k=" << c.k << " s=" << c.stride << " p=" << c.pad
                   << " h=" << c.h << " w=" << c.w);
      Rng rng_a(42), rng_b(42);
      nn::Conv2d fast(c.ic, c.oc, c.k, c.stride, c.pad, rng_a, "fast");
      nn::Conv2d naive(c.ic, c.oc, c.k, c.stride, c.pad, rng_b, "naive");
      const Tensor x = RandomTensor({c.n, c.ic, c.h, c.w}, 7);
      const std::size_t oh = fast.OutExtent(c.h), ow = fast.OutExtent(c.w);
      const Tensor grad_out = RandomTensor({c.n, c.oc, oh, ow}, 8);

      Tensor y_fast, dx_fast, y_naive, dx_naive;
      {
        NaiveConvGuard guard(false);
        y_fast = fast.Forward(x, /*train=*/true);
        dx_fast = fast.Backward(grad_out);
      }
      {
        NaiveConvGuard guard(true);
        y_naive = naive.Forward(x, /*train=*/true);
        dx_naive = naive.Backward(grad_out);
      }
      ExpectTensorsNear(y_fast, y_naive, tol, "forward");
      ExpectTensorsNear(dx_fast, dx_naive, tol, "dX");
      ExpectTensorsNear(fast.Parameters()[0]->grad,
                        naive.Parameters()[0]->grad, tol, "dW");
      ExpectTensorsNear(fast.Parameters()[1]->grad,
                        naive.Parameters()[1]->grad, tol, "db");
    }
  }
}

TEST(NaiveConvEnv, StrictBoolParsing) {
  EXPECT_EQ(internal::ParseBoolFlag(nullptr), std::nullopt);
  EXPECT_EQ(internal::ParseBoolFlag(""), std::nullopt);
  EXPECT_EQ(internal::ParseBoolFlag("1"), true);
  EXPECT_EQ(internal::ParseBoolFlag("0"), false);
  EXPECT_EQ(internal::ParseBoolFlag("true"), std::nullopt);
  EXPECT_EQ(internal::ParseBoolFlag("01"), std::nullopt);
  EXPECT_EQ(internal::ParseBoolFlag(" 1"), std::nullopt);
  EXPECT_EQ(internal::ParseBoolFlag("2"), std::nullopt);
}

}  // namespace
}  // namespace cip
