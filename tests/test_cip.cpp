// CIP core tests: the blending function (Eq. 2), the analytic d(loss)/dt
// used by Step I, perturbation optimization, the CIP client round, and the
// Theorem-1 formulas.
#include <gtest/gtest.h>

#include "core/blend.h"
#include "core/cip_client.h"
#include "core/cip_model.h"
#include "core/theory.h"
#include "data/synthetic.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace cip {
namespace {

TEST(Blend, MatchesEquation2) {
  // x = [0.4, 0.6], t = [0.2, 0.8], α = 0.5, no clipping active.
  Tensor x({1, 2}, std::vector<float>{0.4f, 0.6f});
  Tensor t = Tensor::FromList({0.2f, 0.8f});
  core::BlendConfig cfg;
  cfg.alpha = 0.5f;
  const core::Blended b = core::Blend(x, t, cfg);
  EXPECT_NEAR(b.c1[0], 0.5f * 0.4f + 0.5f * 0.2f, 1e-6f);
  EXPECT_NEAR(b.c1[1], 0.5f * 0.6f + 0.5f * 0.8f, 1e-6f);
  EXPECT_NEAR(b.c2[0], 1.5f * 0.4f - 0.5f * 0.2f, 1e-6f);
  EXPECT_NEAR(b.c2[1], 1.5f * 0.6f - 0.5f * 0.8f, 1e-6f);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(b.mask1[i], 1.0f);
    EXPECT_EQ(b.mask2[i], 1.0f);
  }
}

TEST(Blend, AlphaZeroDuplicatesInput) {
  Tensor x({1, 3}, std::vector<float>{0.1f, 0.5f, 0.9f});
  Tensor t = Tensor::FromList({0.7f, 0.7f, 0.7f});
  core::BlendConfig cfg;
  cfg.alpha = 0.0f;
  const core::Blended b = core::Blend(x, t, cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(b.c1[i], x[i]);
    EXPECT_FLOAT_EQ(b.c2[i], x[i]);
  }
}

TEST(Blend, ClipsAndMasksSaturation) {
  // (1+α)x − αt can exceed 1: x=0.9, t=0, α=0.5 → 1.35 → clipped to 1.
  Tensor x({1, 1}, std::vector<float>{0.9f});
  Tensor t = Tensor::FromList({0.0f});
  core::BlendConfig cfg;
  cfg.alpha = 0.5f;
  const core::Blended b = core::Blend(x, t, cfg);
  EXPECT_FLOAT_EQ(b.c2[0], 1.0f);
  EXPECT_EQ(b.mask2[0], 0.0f);
  EXPECT_EQ(b.mask1[0], 1.0f);
}

TEST(Blend, EmptyTMeansZero) {
  Tensor x({2, 2}, std::vector<float>{0.2f, 0.4f, 0.6f, 0.8f});
  core::BlendConfig cfg;
  cfg.alpha = 0.3f;
  const core::Blended b = core::Blend(x, Tensor(), cfg);
  EXPECT_NEAR(b.c1[0], 0.7f * 0.2f, 1e-6f);
  // (1+α)·0.8 = 1.04 exceeds the input range and is clipped.
  EXPECT_FLOAT_EQ(b.c2[3], 1.0f);
  EXPECT_EQ(b.mask2[3], 0.0f);
}

TEST(Blend, BroadcastsAcrossBatch) {
  Tensor x({3, 2}, std::vector<float>{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f});
  Tensor t = Tensor::FromList({0.5f, 0.5f});
  core::BlendConfig cfg;
  cfg.alpha = 0.4f;
  const core::Blended b = core::Blend(x, t, cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(b.c1[i * 2], 0.6f * x[i * 2] + 0.4f * 0.5f, 1e-6f);
  }
}

TEST(Blend, RejectsWrongTSize) {
  Tensor x({1, 4});
  Tensor t = Tensor::FromList({0.5f});
  core::BlendConfig cfg;
  EXPECT_THROW(core::Blend(x, t, cfg), CheckError);
}

nn::ModelSpec TinySpec(std::size_t classes = 4) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {6};
  spec.num_classes = classes;
  spec.width = 4;
  spec.seed = 31;
  return spec;
}

TEST(BlendGradT, MatchesNumericGradient) {
  Rng rng(1);
  auto model = nn::MakeDualChannelClassifier(TinySpec());
  Tensor x({3, 6});
  for (float& v : x.flat()) v = rng.Uniform(0.2f, 0.8f);
  Tensor t({6});
  for (float& v : t.flat()) v = rng.Uniform(0.3f, 0.7f);
  const std::vector<int> labels = {0, 2, 1};
  core::BlendConfig cfg;
  cfg.alpha = 0.5f;

  auto eval = [&] {
    const core::Blended b = core::Blend(x, t, cfg);
    const Tensor logits = model->Forward(b.c1, b.c2, false);
    return ops::SoftmaxCrossEntropy(logits, labels, nullptr);
  };
  const core::Blended b = core::Blend(x, t, cfg);
  const Tensor logits = model->Forward(b.c1, b.c2, true);
  Tensor dlogits;
  ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
  auto [g1, g2] = model->Backward(dlogits);
  model->ZeroGrad();
  const Tensor gt = core::BlendGradT(b, g1, g2, cfg.alpha);
  ASSERT_EQ(gt.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LT(testing::NumericGradError(eval, t, i, gt[i]), 3e-2)
        << "t[" << i << "] analytic " << gt[i];
  }
}

TEST(BlendGradX, MatchesNumericGradient) {
  Rng rng(2);
  auto model = nn::MakeDualChannelClassifier(TinySpec());
  Tensor x({2, 6});
  for (float& v : x.flat()) v = rng.Uniform(0.2f, 0.8f);
  Tensor t({6});
  for (float& v : t.flat()) v = rng.Uniform(0.3f, 0.7f);
  const std::vector<int> labels = {1, 3};
  core::BlendConfig cfg;
  cfg.alpha = 0.3f;

  auto eval = [&] {
    const core::Blended b = core::Blend(x, t, cfg);
    const Tensor logits = model->Forward(b.c1, b.c2, false);
    return ops::SoftmaxCrossEntropy(logits, labels, nullptr);
  };
  const core::Blended b = core::Blend(x, t, cfg);
  const Tensor logits = model->Forward(b.c1, b.c2, true);
  Tensor dlogits;
  ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
  auto [g1, g2] = model->Backward(dlogits);
  model->ZeroGrad();
  const Tensor gx = core::BlendGradX(b, g1, g2, cfg.alpha);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LT(testing::NumericGradError(eval, x, i, gx[i]), 3e-2)
        << "x[" << i << "] analytic " << gx[i];
  }
}

TEST(Perturbation, RandomInitStaysInRange) {
  Rng rng(3);
  const core::Perturbation p = core::Perturbation::Random({3, 4, 4}, rng);
  for (float v : p.tensor().flat()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Perturbation, SeedZeroNoiseReproducesSeed) {
  Rng rng(4);
  Tensor seed({8});
  for (float& v : seed.flat()) v = rng.Uniform();
  const core::Perturbation p = core::Perturbation::FromSeed(seed, 0.0f, rng);
  for (std::size_t i = 0; i < seed.size(); ++i) {
    EXPECT_FLOAT_EQ(p.tensor()[i], seed[i]);
  }
}

TEST(OptimizePerturbation, ReducesBlendedLoss) {
  Rng rng(5);
  data::SyntheticPurchase gen(data::Purchase50Like());
  data::Dataset train = gen.Sample(120, rng);
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {200};
  spec.num_classes = 50;
  spec.width = 6;
  spec.seed = 41;
  auto model = nn::MakeDualChannelClassifier(spec);
  core::BlendConfig blend;
  blend.alpha = 0.5f;
  Tensor t = core::Perturbation::Random({200}, rng).tensor();

  auto mean_loss = [&] {
    const std::vector<float> l = core::DualLosses(*model, train, t, blend);
    double s = 0.0;
    for (float v : l) s += v;
    return s / static_cast<double>(l.size());
  };
  const double before = mean_loss();
  core::OptimizePerturbation(*model, train, t, blend, 1e-5f, 0.05f,
                             /*steps=*/40, /*batch_size=*/64, rng);
  EXPECT_LT(mean_loss(), before);
}

TEST(OptimizePerturbation, L1TermShrinksT) {
  Rng rng(6);
  data::SyntheticPurchase gen(data::Purchase50Like());
  data::Dataset train = gen.Sample(60, rng);
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {200};
  spec.num_classes = 50;
  spec.width = 4;
  spec.seed = 42;
  auto model = nn::MakeDualChannelClassifier(spec);
  core::BlendConfig blend;
  Tensor t_small = core::Perturbation::Random({200}, rng).tensor();
  Tensor t_big = t_small;
  Rng r1(7), r2(7);
  core::OptimizePerturbation(*model, train, t_small, blend, /*λt=*/1e-2f,
                             0.05f, 30, 32, r1);
  core::OptimizePerturbation(*model, train, t_big, blend, /*λt=*/0.0f, 0.05f,
                             30, 32, r2);
  EXPECT_LT(ops::L1Norm(t_small), ops::L1Norm(t_big));
}

TEST(CipClient, RoundImprovesBlendedAccuracy) {
  Rng rng(8);
  data::SyntheticVision gen(data::ChMnistLike());
  data::Dataset train = gen.Sample(160, rng);
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = 8;
  spec.width = 6;
  spec.seed = 51;
  core::CipConfig cfg;
  cfg.blend.alpha = 0.5f;
  cfg.train.lr = 0.02f;
  cfg.train.momentum = 0.9f;
  cfg.train.epochs = 4;
  cfg.perturb_steps = 4;
  core::CipClient client(spec, train, cfg, 52);

  client.SetGlobal(core::InitialDualState(spec));
  const double before = client.EvalAccuracy(train);
  for (int r = 0; r < 8; ++r) {
    client.TrainLocal(fl::MakeRoundContext(9, static_cast<std::size_t>(r) + 1, 0));
  }
  EXPECT_GT(client.EvalAccuracy(train), before + 0.2);
}

TEST(CipClient, PerturbationStaysSecretAndInRange) {
  Rng rng(10);
  data::SyntheticPurchase gen(data::Purchase50Like());
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {200};
  spec.num_classes = 50;
  spec.width = 4;
  spec.seed = 53;
  core::CipConfig cfg;
  core::CipClient a(spec, gen.Sample(50, rng), cfg, 1);
  core::CipClient b(spec, gen.Sample(50, rng), cfg, 2);
  // Personalized: different clients draw different perturbations.
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.perturbation().size(); ++i) {
    diff += std::abs(a.perturbation()[i] - b.perturbation()[i]);
  }
  EXPECT_GT(diff, 1.0f);
  for (float v : a.perturbation().flat()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(CipClient, StateSizeMatchesDualModel) {
  Rng rng(11);
  data::SyntheticPurchase gen(data::Purchase50Like());
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {200};
  spec.num_classes = 50;
  spec.width = 4;
  spec.seed = 54;
  core::CipConfig cfg;
  cfg.perturb_steps = 1;
  core::CipClient client(spec, gen.Sample(40, rng), cfg, 3);
  client.SetGlobal(core::InitialDualState(spec));
  const fl::ModelState state = client.TrainLocal(fl::MakeRoundContext(12, 1, 0));
  auto model = nn::MakeDualChannelClassifier(spec);
  EXPECT_EQ(state.size(), model->ParameterCount());
}

// ---- theory -----------------------------------------------------------------

TEST(Theory, AdvantageMonotoneInPosterior) {
  EXPECT_LT(core::AdversarialAdvantage(0.3), core::AdversarialAdvantage(0.7));
  EXPECT_NEAR(core::AdversarialAdvantage(0.5), 1.0, 1e-9);
}

TEST(Theory, Theorem1EpsilonAtMostOneWhenGuessIsWorse) {
  // l(θ, z_t) ≤ l(θ, z_t') ⇒ ε ≤ 1: guessing a perturbation cannot help.
  EXPECT_LE(core::Theorem1Epsilon(0.5, 2.0, 1.0), 1.0);
  EXPECT_NEAR(core::Theorem1Epsilon(1.0, 1.0, 1.0), 1.0, 1e-12);
  EXPECT_GT(core::Theorem1Epsilon(0.5, 2.0, 10.0),
            core::Theorem1Epsilon(0.5, 2.0, 1.0));  // higher T, weaker bound
}

TEST(Theory, BoundedAdvantageScalesTrueAdvantage) {
  const double adv = core::AdversarialAdvantage(0.8);
  const double bounded = core::BoundedAdvantage(adv, 0.5, 1.5, 1.0);
  EXPECT_LT(bounded, adv);
  EXPECT_GT(bounded, 0.0);
}

TEST(Theory, EmpiricalMemberProbSeparatesCleanLossGap)
{
  // Members cluster near 0 loss, non-members near 3: a low-loss sample must
  // get a high member probability.
  std::vector<float> member = {0.01f, 0.05f, 0.1f, 0.02f};
  std::vector<float> nonmember = {2.5f, 3.0f, 3.5f, 2.8f};
  EXPECT_GT(core::EmpiricalMemberProb(0.05, member, nonmember), 0.95);
  EXPECT_LT(core::EmpiricalMemberProb(3.0, member, nonmember), 0.05);
}

}  // namespace
}  // namespace cip
