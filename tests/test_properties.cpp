// Property-based tests: invariants checked across parameter sweeps with
// TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include "core/blend.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace cip {
namespace {

// ---- blending identities over alpha ----------------------------------------

class BlendProperty : public ::testing::TestWithParam<float> {};

TEST_P(BlendProperty, ChannelsSumToTwiceInputWithoutClipping) {
  const float alpha = GetParam();
  Rng rng(1);
  Tensor x({4, 9});
  Tensor t({9});
  // Keep values central enough that no channel clips for any alpha < 1.
  for (float& v : x.flat()) v = rng.Uniform(0.35f, 0.65f);
  for (float& v : t.flat()) v = rng.Uniform(0.35f, 0.65f);
  core::BlendConfig cfg;
  cfg.alpha = alpha;
  const core::Blended b = core::Blend(x, t, cfg);
  // ((1-a)x + at) + ((1+a)x - at) = 2x — the dual channel retains the
  // original sample exactly (the paper's feature-preservation argument).
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(b.c1[i] + b.c2[i], 2.0f * x[i], 1e-5f);
  }
}

TEST_P(BlendProperty, GradTIsZeroWhenAlphaZero) {
  const float alpha = GetParam();
  Rng rng(2);
  Tensor x({3, 5});
  Tensor t({5});
  for (float& v : x.flat()) v = rng.Uniform(0.3f, 0.7f);
  for (float& v : t.flat()) v = rng.Uniform(0.3f, 0.7f);
  core::BlendConfig cfg;
  cfg.alpha = alpha;
  const core::Blended b = core::Blend(x, t, cfg);
  Tensor g1(x.shape(), 1.0f);
  Tensor g2(x.shape(), 1.0f);
  const Tensor gt = core::BlendGradT(b, g1, g2, cfg.alpha);
  // Symmetric upstream gradients cancel: dL/dt = α(g1 − g2) = 0.
  for (std::size_t i = 0; i < gt.size(); ++i) {
    EXPECT_NEAR(gt[i], 0.0f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, BlendProperty,
                         ::testing::Values(0.0f, 0.1f, 0.3f, 0.5f, 0.7f,
                                           0.9f));

// ---- softmax invariances over class counts ---------------------------------

class SoftmaxProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SoftmaxProperty, InvariantToConstantShift) {
  const std::size_t classes = GetParam();
  Rng rng(3);
  Tensor logits({3, classes});
  for (float& v : logits.flat()) v = rng.Normal(0.0f, 2.0f);
  Tensor shifted = logits;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < classes; ++j) shifted[i * classes + j] += 7.5f;
  }
  const Tensor p1 = ops::SoftmaxRows(logits);
  const Tensor p2 = ops::SoftmaxRows(shifted);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p1[i], p2[i], 1e-5f);
  }
}

TEST_P(SoftmaxProperty, UniformLogitsGiveChanceLoss) {
  const std::size_t classes = GetParam();
  Tensor logits({2, classes}, 0.0f);
  const std::vector<int> labels = {0, static_cast<int>(classes) - 1};
  const float loss = ops::SoftmaxCrossEntropy(logits, labels, nullptr);
  EXPECT_NEAR(loss, std::log(static_cast<float>(classes)), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(ClassSweep, SoftmaxProperty,
                         ::testing::Values(2u, 8u, 20u, 50u, 100u));

// ---- EMD metric properties over shifts --------------------------------------

class EmdProperty : public ::testing::TestWithParam<double> {};

TEST_P(EmdProperty, TranslationEqualsShift) {
  const double shift = GetParam();
  Rng rng(4);
  std::vector<float> a(64);
  for (float& v : a) v = rng.Normal();
  std::vector<float> b(a);
  for (float& v : b) v += static_cast<float>(shift);
  EXPECT_NEAR(metrics::EarthMoverDistance(a, b), std::abs(shift), 1e-4);
}

TEST_P(EmdProperty, TriangleInequalityWithZeroShift) {
  const double shift = GetParam();
  Rng rng(5);
  std::vector<float> a(48), c(48);
  for (float& v : a) v = rng.Normal();
  for (float& v : c) v = rng.Normal(static_cast<float>(shift), 1.0f);
  std::vector<float> b(a);
  for (float& v : b) v += static_cast<float>(shift) / 2.0f;
  const double ac = metrics::EarthMoverDistance(a, c);
  const double ab = metrics::EarthMoverDistance(a, b);
  const double bc = metrics::EarthMoverDistance(b, c);
  EXPECT_LE(ac, ab + bc + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(ShiftSweep, EmdProperty,
                         ::testing::Values(-3.0, -0.5, 0.0, 0.5, 3.0));

// ---- partitioner invariants over client counts ------------------------------

class PartitionProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionProperty, EqualShardSizesAndValidLabels) {
  const std::size_t clients = GetParam();
  data::SyntheticVision gen(data::Cifar100Like(12));
  Rng rng(6);
  const data::Dataset full = gen.Sample(clients * 30, rng);
  for (const std::size_t cpc : {2ul, 6ul, 12ul}) {
    const auto shards =
        data::PartitionByClasses(full, clients, cpc, 12, rng);
    ASSERT_EQ(shards.size(), clients);
    for (const auto& s : shards) {
      EXPECT_EQ(s.size(), 30u);
      s.Validate(12);
      EXPECT_LE(data::ClassesPresent(s).size(), cpc);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ClientSweep, PartitionProperty,
                         ::testing::Values(1u, 2u, 5u, 10u));

// ---- SSIM properties over mixing levels --------------------------------------

class SsimProperty : public ::testing::TestWithParam<float> {};

TEST_P(SsimProperty, SymmetricAndBounded) {
  const float w = GetParam();
  Rng rng(7);
  Tensor a({100});
  Tensor b({100});
  for (std::size_t i = 0; i < 100; ++i) {
    a[i] = rng.Uniform();
    b[i] = w * a[i] + (1.0f - w) * rng.Uniform();
  }
  const double ab = metrics::Ssim(a, b);
  const double ba = metrics::Ssim(b, a);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_LE(ab, 1.0 + 1e-9);
  EXPECT_GE(ab, -1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(MixSweep, SsimProperty,
                         ::testing::Values(0.0f, 0.25f, 0.5f, 0.75f, 1.0f));

// ---- generator regime properties over class counts --------------------------

class GeneratorProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorProperty, BalancedSamplingCoversClasses) {
  const std::size_t classes = GetParam();
  data::SyntheticVision gen(data::Cifar100Like(classes));
  Rng rng(8);
  const data::Dataset ds = gen.Sample(classes * 40, rng);
  std::vector<std::size_t> counts(classes, 0);
  for (int y : ds.labels) counts[static_cast<std::size_t>(y)]++;
  for (std::size_t c = 0; c < classes; ++c) {
    EXPECT_GT(counts[c], 0u) << "class " << c << " never sampled";
  }
}

INSTANTIATE_TEST_SUITE_P(ClassCountSweep, GeneratorProperty,
                         ::testing::Values(2u, 5u, 10u, 20u));

}  // namespace
}  // namespace cip
