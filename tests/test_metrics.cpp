// Tests for metrics (accuracy, binary attack metrics, EMD, SSIM) and the
// statistics helpers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "metrics/metrics.h"

namespace cip {
namespace {

TEST(Accuracy, Basic) {
  const std::vector<int> pred = {1, 2, 3, 4};
  const std::vector<int> truth = {1, 2, 0, 4};
  EXPECT_DOUBLE_EQ(metrics::Accuracy(pred, truth), 0.75);
}

TEST(BinaryMetrics, ConfusionCounts) {
  const std::vector<bool> pred = {true, true, false, false, true};
  const std::vector<bool> truth = {true, false, false, true, true};
  const metrics::BinaryMetrics m = metrics::EvaluateBinary(pred, truth);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.6);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 2.0 / 3.0);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-12);
}

TEST(BinaryMetrics, DegenerateCasesDoNotDivideByZero) {
  const std::vector<bool> none_pred = {false, false};
  const std::vector<bool> truth = {true, false};
  const metrics::BinaryMetrics m = metrics::EvaluateBinary(none_pred, truth);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(Emd, IdenticalDistributionsAreZero) {
  std::vector<float> a = {1, 2, 3, 4};
  EXPECT_NEAR(metrics::EarthMoverDistance(a, a), 0.0, 1e-9);
}

TEST(Emd, ShiftEqualsOffset) {
  std::vector<float> a = {1, 2, 3, 4};
  std::vector<float> b = {3, 4, 5, 6};
  EXPECT_NEAR(metrics::EarthMoverDistance(a, b), 2.0, 1e-6);
}

TEST(Emd, SymmetricAndOrderInvariant) {
  std::vector<float> a = {0.5f, 3.0f, 1.0f};
  std::vector<float> b = {2.0f, 0.0f, 4.0f};
  const double ab = metrics::EarthMoverDistance(a, b);
  const double ba = metrics::EarthMoverDistance(b, a);
  EXPECT_NEAR(ab, ba, 1e-9);
  std::vector<float> a2 = {3.0f, 0.5f, 1.0f};
  EXPECT_NEAR(metrics::EarthMoverDistance(a2, b), ab, 1e-9);
}

TEST(Emd, HandlesUnequalSampleCounts) {
  std::vector<float> a = {0, 0, 0, 0};
  std::vector<float> b = {1, 1};
  EXPECT_NEAR(metrics::EarthMoverDistance(a, b), 1.0, 1e-6);
}

TEST(Ssim, IdenticalIsOne) {
  Tensor a = Tensor::FromList({0.1f, 0.5f, 0.9f, 0.3f});
  EXPECT_NEAR(metrics::Ssim(a, a), 1.0, 1e-9);
}

TEST(Ssim, UncorrelatedIsLow) {
  Rng rng(1);
  Tensor a({64});
  Tensor b({64});
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = rng.Uniform();
    b[i] = rng.Uniform();
  }
  EXPECT_LT(metrics::Ssim(a, b), 0.6);
  EXPECT_GT(metrics::Ssim(a, b), -0.6);
}

TEST(Ssim, DecreasesWithNoiseMixing) {
  Rng rng(2);
  Tensor a({128});
  for (float& v : a.flat()) v = rng.Uniform();
  auto mixed = [&](float w) {
    Rng r2(3);
    Tensor out(a.shape());
    for (std::size_t i = 0; i < a.size(); ++i) {
      out[i] = w * a[i] + (1.0f - w) * r2.Uniform();
    }
    return metrics::Ssim(a, out);
  };
  EXPECT_GT(mixed(0.9f), mixed(0.5f));
  EXPECT_GT(mixed(0.5f), mixed(0.1f));
}

TEST(Stats, MeanVarianceQuantile) {
  const std::vector<float> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(std::span<const float>(v)), 3.0);
  EXPECT_DOUBLE_EQ(Variance(std::span<const float>(v)), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<float> a = {1, 2, 3, 4};
  const std::vector<float> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-9);
  const std::vector<float> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-9);
  const std::vector<float> flat = {5, 5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(a, flat), 0.0);
}

TEST(Stats, HistogramNormalized) {
  const std::vector<float> v = {0.1f, 0.2f, 0.9f, 2.0f, -1.0f};
  const std::vector<double> h = Histogram(v, 0.0, 1.0, 4);
  double sum = 0.0;
  for (double x : h) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(h[0], 0.0);   // clamped -1.0 plus 0.1, 0.2
  EXPECT_GT(h[3], 0.0);   // 0.9 plus clamped 2.0
}

}  // namespace
}  // namespace cip
