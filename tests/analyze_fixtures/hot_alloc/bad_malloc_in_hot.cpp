// ANALYZE-EXPECT: hot-alloc-malloc
// C heap allocation on a hot path.
// CIP_HOT
void PackRow(float* dst, const float* src, std::size_t n) {
  float* staging = static_cast<float*>(malloc(n * sizeof(float)));
  for (std::size_t i = 0; i < n; ++i) staging[i] = src[i];
  for (std::size_t i = 0; i < n; ++i) dst[i] = staging[i];
  free(staging);
}
