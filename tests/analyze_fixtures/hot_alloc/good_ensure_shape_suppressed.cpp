// ANALYZE-EXPECT: clean
// EnsureShape-style scratch reuse with the justification written down.
// CIP_HOT
void Stage(Tensor& scratch, const Tensor& x) {
  // CIP_ANALYZE_OK(hot-alloc-tensor): grow-once: reallocates only on shape change
  if (!scratch.SameShape(x)) scratch = Tensor(x.shape());
  ops::AddInPlace(scratch, x);
}
