// ANALYZE-EXPECT: hot-alloc-container
// A sized std::vector construction allocates on every call.
// CIP_HOT
void TransposeInto(float* dst, const float* src, std::size_t m, std::size_t n) {
  std::vector<float> staging(m * n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) staging[j * m + i] = src[i * n + j];
  for (std::size_t k = 0; k < m * n; ++k) dst[k] = staging[k];
}
