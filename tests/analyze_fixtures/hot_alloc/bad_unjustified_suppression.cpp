// ANALYZE-EXPECT: hot-alloc-tensor, bad-suppression
// A CIP_ANALYZE_OK without a written justification does not suppress — it is
// itself a finding.
// CIP_HOT
void ForwardStep(Tensor& out, const Tensor& x) {
  // CIP_ANALYZE_OK(hot-alloc-tensor)
  Tensor scratch(x.shape());
  ops::AddInPlace(scratch, x);
  out = scratch;
}
