// ANALYZE-EXPECT: hot-alloc-new
// Raw operator new on a hot path: steady state must reuse grow-once scratch.
// CIP_HOT
void AxpyScratch(float* y, const float* x, std::size_t n, float a) {
  float* tmp = new float[n];
  for (std::size_t i = 0; i < n; ++i) tmp[i] = a * x[i];
  for (std::size_t i = 0; i < n; ++i) y[i] += tmp[i];
  delete[] tmp;
}
