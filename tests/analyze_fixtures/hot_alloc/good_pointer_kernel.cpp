// ANALYZE-EXPECT: clean
// Pure pointer arithmetic over caller-owned buffers: nothing to allocate.
// CIP_HOT
void Saxpy(float* y, const float* x, std::size_t n, float a) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}
