// ANALYZE-EXPECT: clean
// Grow-once arena staging: the resize is guarded and justified, so after
// warm-up the path stops allocating (the PackCount/TensorAllocCount tests
// assert the same property dynamically).
// CIP_HOT
void PackInto(std::vector<float>& arena, const float* src, std::size_t need) {
  // CIP_ANALYZE_OK(hot-alloc-container): grow-once arena, guarded resize
  if (arena.size() < need) arena.resize(need);
  for (std::size_t i = 0; i < need; ++i) arena[i] = src[i];
}
