// ANALYZE-EXPECT: clean
// Hot root calling an allocation-free helper: the transitive walk finds
// nothing to flag.
void ScaleRow(float* row, std::size_t n, float s) {
  for (std::size_t i = 0; i < n; ++i) row[i] *= s;
}

// CIP_HOT
void ScaleAll(float* p, std::size_t rows, std::size_t n, float s) {
  for (std::size_t r = 0; r < rows; ++r) ScaleRow(p + r * n, n, s);
}
