// ANALYZE-EXPECT: hot-alloc-container
// The hot root is clean but a helper it calls grows a vector: the audit is
// transitive over calls that resolve unambiguously inside the repo.
void StageRow(std::vector<float>& buf, const float* src, std::size_t n) {
  buf.resize(n);
  for (std::size_t i = 0; i < n; ++i) buf[i] = src[i];
}

// CIP_HOT
void SumRows(float* out, const float* src, std::size_t rows, std::size_t n) {
  std::vector<float>& buf = Scratch();
  for (std::size_t r = 0; r < rows; ++r) {
    StageRow(buf, src + r * n, n);
    for (std::size_t i = 0; i < n; ++i) out[i] += buf[i];
  }
}
