// ANALYZE-EXPECT: clean
// The one sanctioned allocation of an eval forward is its returned output;
// the suppression records that contract next to the site.
// CIP_HOT
Tensor Forward(const Tensor& x, std::size_t n, std::size_t out_dim) {
  // CIP_ANALYZE_OK(hot-alloc-tensor): the returned output is the one
  Tensor y({n, out_dim});
  ops::MatmulInto(x, x, y);
  return y;
}
