// ANALYZE-EXPECT: hot-alloc-container
// push_back on a hot path reallocates once capacity runs out.
// CIP_HOT
float CollectPositives(const float* p, std::size_t n) {
  std::vector<float> hits;
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] > 0.0f) hits.push_back(p[i]);
  }
  return hits.empty() ? 0.0f : hits.front();
}
