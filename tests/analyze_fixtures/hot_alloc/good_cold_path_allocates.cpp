// ANALYZE-EXPECT: clean
// Unannotated functions may allocate freely: the audit covers only CIP_HOT
// roots and their resolvable callees.
Tensor MakeZeros(std::size_t m, std::size_t n) {
  Tensor z({m, n});
  std::vector<float> staging(m * n);
  z = Tensor({m, n}, std::move(staging));
  return z;
}
