// ANALYZE-EXPECT: hot-alloc-tensor
// Constructing a Tensor allocates its element buffer; hot paths stage into
// an EnsureShape'd member or a thread-local arena instead.
// CIP_HOT
void ForwardStep(Tensor& out, const Tensor& x, std::size_t m, std::size_t n) {
  Tensor scratch({m, n});
  ops::MatmulInto(x, x, scratch);
  out = scratch;
}
