// ANALYZE-EXPECT: purity-tensor-mut
// Non-const Tensor::data() on a captured tensor inside a parallel region:
// the version-counter bump is an unsynchronized concurrent write.
void ScaleRows(Tensor& t, std::size_t n, std::size_t stride, float s) {
  ParallelFor(0, n, [&](std::size_t i) {
    float* row = t.data() + i * stride;  // bumps t.version_ on every worker
    for (std::size_t j = 0; j < stride; ++j) row[j] *= s;
  });
}
