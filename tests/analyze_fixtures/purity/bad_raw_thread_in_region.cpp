// ANALYZE-EXPECT: purity-thread-prim
// Spawning raw threads from inside a region oversubscribes the machine and
// bypasses the pool's nesting rules (nested regions run serially inline).
void NestedSpawn(float* out, std::size_t n) {
  ParallelFor(0, n, [&](std::size_t i) {
    std::thread worker([&] { out[i] = 1.0f; });
    worker.join();
  });
}
