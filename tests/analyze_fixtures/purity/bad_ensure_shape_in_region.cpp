// ANALYZE-EXPECT: purity-tensor-mut
// EnsureShape may reallocate the shared scratch tensor while other workers
// hold pointers into it; it must run before the region starts.
void FillScratch(Tensor& scratch, std::size_t n, std::size_t cols) {
  ParallelFor(0, n, [&](std::size_t i) {
    EnsureShape(scratch, {n, cols});
    scratch[i * cols] = static_cast<float>(i);
  });
}
