// ANALYZE-EXPECT: clean
// A named local lambda handed to ParallelForCoarse (the GemmPacked idiom):
// all writes go through block-local pointers derived from a hoisted raw.
void BlockedScale(float* c, std::size_t row_blocks, std::size_t block,
                  std::size_t n, float s) {
  const auto run_block = [&](std::size_t ib) {
    const std::size_t i_lo = ib * block;
    float* crow = c + i_lo * n;
    for (std::size_t j = 0; j < block * n; ++j) crow[j] *= s;
  };
  ParallelForCoarse(0, row_blocks, run_block);
}
