// ANALYZE-EXPECT: purity-tensor-mut
//
// FROZEN FIXTURE — the exact PR 5 data race, as shipped in commit 30fef45
// (pre-fix Conv2d::ForwardGemm). `ops::Im2ColInto` took `Tensor& col` and
// called non-const data() inside, so every ParallelFor worker bumped the
// shared scratch tensor's unsynchronized version counter concurrently.
// The fix (commit 6f96f62) hoisted raw pointers out of the region via
// raw-pointer Im2ColInto/Col2ImInto overloads. This file must always be
// flagged; if the purity rule ever stops firing here, the analyzer has
// regressed on the very bug it was built to catch.
//
// Fixture corpus: analyzed by `cip_analyze.py --self-test`, never compiled.

Tensor Conv2d::ForwardGemm(const Tensor& x, std::size_t n, std::size_t oh,
                           std::size_t ow) {
  const std::size_t h = x.dim(2), w = x.dim(3);
  const ops::Conv2dGeom geom = Geom(h, w);
  const std::size_t rows = n * oh * ow;
  const std::size_t patch = geom.PatchSize();
  EnsureShape(col_, {rows, patch});
  ParallelFor(0, n, [&](std::size_t i) {
    ops::Im2ColInto(x, i, geom, col_, i * oh * ow);  // races on col_.version_
  });
  EnsureShape(gemm_y_, {rows, oc_});
  if (ops::internal::UsesBlockedGemm(rows, patch, oc_)) {
    if (packed_w_.empty() || packed_w_version_ != w_.value.version()) {
      ops::PackBForMatmulTransBInto(w_.value, packed_w_);
      packed_w_version_ = w_.value.version();
    }
    ops::MatmulPackedInto(col_, packed_w_, gemm_y_);  // [rows, oc]
  } else {
    ops::MatmulTransBInto(col_, w_.value, gemm_y_);  // [rows, oc]
  }
  // Scatter [N*OH*OW, OC] back to NCHW and add the bias.
  Tensor y({n, oc_, oh, ow});
  const float* pg = std::as_const(gemm_y_).data();
  const float* pb = std::as_const(b_.value).data();
  float* py_all = y.data();
  ParallelFor(0, n, [&](std::size_t i) {
    const float* grow = pg + i * oh * ow * oc_;
    float* py = py_all + i * oc_ * oh * ow;
    for (std::size_t pos = 0; pos < oh * ow; ++pos) {
      const float* orow = grow + pos * oc_;
      for (std::size_t c = 0; c < oc_; ++c) {
        py[c * oh * ow + pos] = orow[c] + pb[c];
      }
    }
  });
  return y;
}
