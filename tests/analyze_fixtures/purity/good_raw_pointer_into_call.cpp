// ANALYZE-EXPECT: clean
// The post-fix im2col shape: member tensors appear only inside pointer
// arithmetic on pre-hoisted raws, never passed by name into the callee.
void Conv2d::Im2ColAll(const Tensor& x, std::size_t n, std::size_t h,
                       std::size_t w, std::size_t patch_rows) {
  const ops::Conv2dGeom geom = Geom(h, w);
  const float* px_all = std::as_const(x).data();
  float* pcol = col_.data();
  ParallelFor(0, n, [&](std::size_t i) {
    ops::Im2ColInto(px_all + i * ic_ * h * w, geom, pcol + i * patch_rows);
  });
}
