// ANALYZE-EXPECT: clean
// Reading through std::as_const inside the region selects the const data()
// overload, which does not bump the version counter.
float ReadSum(const Tensor& t, std::size_t n, float* partials) {
  ParallelFor(0, n, [&](std::size_t i) {
    partials[i] = std::as_const(t).data()[i];
  });
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) sum += partials[i];
  return sum;
}
