// ANALYZE-EXPECT: purity-thread-prim
// A mutex inside a region serializes the very work the region parallelizes
// and invites cross-region deadlock; restructure so chunks are independent.
void LockedAccum(float* acc, const float* p, std::size_t n) {
  ParallelFor(0, n, [&](std::size_t i) {
    static std::mutex m;
    const std::lock_guard<std::mutex> lk(m);
    *acc += p[i];
  });
}
