// ANALYZE-EXPECT: clean
// Writing through a by-reference capture is fine when every write is
// partitioned by the chunk index: no two workers touch the same slot.
void PerClientLoss(std::vector<float>& losses, std::size_t m) {
  ParallelForCoarse(0, m, [&](std::size_t i) {
    losses[i] = static_cast<float>(i) * 0.5f;
  });
}
