// ANALYZE-EXPECT: purity-tensor-mut
// Move-assigning into a by-reference capture from inside a region: both the
// buffer swap and the version bump race across workers.
void CollectLast(Tensor& result, std::size_t n) {
  ParallelFor(0, n, [&](std::size_t i) {
    Tensor tmp({1});
    tmp[0] = static_cast<float>(i);
    result = std::move(tmp);  // racing writers to `result`
  });
}
