// ANALYZE-EXPECT: purity-capture-write
// Accumulating into a plain by-reference-captured scalar: a classic lost
// update. Use a per-chunk partial (indexed by i) and reduce after the join.
float SumAll(const float* p, std::size_t n) {
  float sum = 0.0f;
  ParallelFor(0, n, [&](std::size_t i) {
    sum += p[i];  // unsynchronized read-modify-write
  });
  return sum;
}
