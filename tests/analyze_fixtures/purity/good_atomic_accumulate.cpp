// ANALYZE-EXPECT: clean
// Shared counters inside a region must be atomics; fetch_add is not a plain
// captured write.
std::size_t CountPositive(const float* p, std::size_t n) {
  std::atomic<std::size_t> hits{0};
  ParallelFor(0, n, [&](std::size_t i) {
    if (p[i] > 0.0f) hits.fetch_add(1, std::memory_order_relaxed);
  });
  return hits.load();
}
