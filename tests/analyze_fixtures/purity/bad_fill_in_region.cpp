// ANALYZE-EXPECT: purity-tensor-mut
// Tensor::Fill bumps the version counter; calling it on a captured tensor
// from every worker is the same race as non-const data().
void ResetAll(Tensor& t, std::size_t n) {
  ParallelFor(0, n, [&](std::size_t) {
    t.Fill(0.0f);
  });
}
