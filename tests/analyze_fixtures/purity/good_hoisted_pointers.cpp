// ANALYZE-EXPECT: clean
// The sanctioned idiom (post-fix Conv2d): one non-const data() call before
// the region, raw pointers shared with the workers, writes partitioned by i.
Tensor Transpose(const Tensor& x, std::size_t n, std::size_t stride) {
  Tensor y(x.shape());
  const float* px_all = std::as_const(x).data();
  float* py_all = y.data();
  ParallelFor(0, n, [&](std::size_t i) {
    const float* px = px_all + i * stride;
    float* py = py_all + i * stride;
    for (std::size_t j = 0; j < stride; ++j) py[j] = px[j];
  });
  return y;
}
