// ANALYZE-EXPECT: purity-capture-write
// Incrementing a shared counter without an atomic.
std::size_t CountPositive(const float* p, std::size_t n) {
  std::size_t hits = 0;
  ParallelFor(0, n, [&](std::size_t i) {
    if (p[i] > 0.0f) ++hits;  // lost updates under contention
  });
  return hits;
}
