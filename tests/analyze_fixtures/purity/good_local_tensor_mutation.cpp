// ANALYZE-EXPECT: clean
// Mutating a tensor that is local to the region body is private to the
// worker: no sharing, no race.
void PerWorkerScratch(float* out, std::size_t n, std::size_t cols) {
  ParallelFor(0, n, [&](std::size_t i) {
    Tensor scratch({cols});
    scratch.Fill(0.0f);
    float* p = scratch.data();
    for (std::size_t j = 0; j < cols; ++j) p[j] += 1.0f;
    out[i] = p[0];
  });
}
