// ANALYZE-EXPECT: det-seed
// std::random_device is environment entropy; bit-identical federated rounds
// require seeds derived from the run seed (DeriveStream).
std::uint64_t FreshSeed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}
