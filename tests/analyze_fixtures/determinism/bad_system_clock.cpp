// ANALYZE-EXPECT: det-wallclock
// system_clock is a wall-clock read like any other.
std::int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
