// ANALYZE-EXPECT: det-rand, det-seed
// Seeding global state from the wall clock: every run differs.
void SeedFromClock() {
  srand(time(nullptr));
}
