// ANALYZE-EXPECT: det-wallclock
// A wall-clock read feeding logic (not telemetry) makes behavior depend on
// machine speed.
bool ShouldStop(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() >= deadline;
}
