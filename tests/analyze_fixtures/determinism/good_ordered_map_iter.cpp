// ANALYZE-EXPECT: clean
// std::map iterates in key order: deterministic aggregation.
float TotalLoss(const std::map<int, float>& losses_by_client) {
  float total = 0.0f;
  for (const auto& entry : losses_by_client) {
    total += entry.second;
  }
  return total;
}
