// ANALYZE-EXPECT: det-rand
// Global C PRNG state: not per-(round,client) streamable, not reproducible
// across thread budgets.
float Jitter(float x) {
  return x + static_cast<float>(std::rand()) / static_cast<float>(RAND_MAX);
}
