// ANALYZE-EXPECT: clean
// Telemetry timing is the sanctioned wall-clock use; the suppression records
// that the value lands in stats only, never in round results.
using Clock = std::chrono::steady_clock;

double TrainSeconds(Clock::time_point t0) {
  // CIP_ANALYZE_OK(det-wallclock): telemetry only - lands in RoundStats
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
