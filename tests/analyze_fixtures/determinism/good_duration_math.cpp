// ANALYZE-EXPECT: clean
// chrono duration arithmetic involves no clock read at all.
std::chrono::milliseconds Backoff(std::size_t attempt) {
  const std::chrono::milliseconds base(50);
  return base * static_cast<long>(1u << attempt);
}
