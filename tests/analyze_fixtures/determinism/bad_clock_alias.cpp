// ANALYZE-EXPECT: det-wallclock
// Hiding the clock behind a type alias must not dodge the rule.
using Clock = std::chrono::steady_clock;

double Elapsed(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
