// ANALYZE-EXPECT: clean
// An unordered map used as a lookup table is fine as long as aggregation
// walks an explicitly ordered key sequence.
float TotalLoss(const std::unordered_map<int, float>& losses_by_client,
                const std::vector<int>& ordered_clients) {
  float total = 0.0f;
  for (const int client : ordered_clients) {
    total += losses_by_client.at(client);
  }
  return total;
}
