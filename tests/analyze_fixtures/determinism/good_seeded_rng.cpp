// ANALYZE-EXPECT: clean
// The sanctioned pattern: every stream derives from the explicit run seed,
// salted by round and client (cip::Rng::DeriveStream).
float ClientNoise(Rng& root, std::uint64_t round, std::uint64_t client) {
  Rng stream = root.DeriveStream(round, client);
  return stream.Uniform() - 0.5f;
}
