// ANALYZE-EXPECT: det-unordered-iter
// Unordered-container iteration order is unspecified; feeding it into an
// accumulated float total makes the sum order — and the rounding — vary run
// to run.
float TotalLoss(const std::unordered_map<int, float>& losses_by_client) {
  float total = 0.0f;
  for (const auto& entry : losses_by_client) {
    total += entry.second;
  }
  return total;
}
