// ANALYZE-EXPECT: clean
// A std engine seeded from an explicit constant is reproducible.
std::mt19937_64 MakeEngine(std::uint64_t seed) {
  return std::mt19937_64(seed);
}
