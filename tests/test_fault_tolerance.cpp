// Fault-tolerance tests: FaultPlan validation and determinism, graceful
// degradation (survivor renormalization), quorum skip/abort, bounded
// retry-with-backoff, fleet-dependent FlOptions validation, fault telemetry,
// and bit-identity across worker budgets with faults enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "data/partition.h"
#include "fl/client.h"
#include "fl/client_factory.h"
#include "fl/fault.h"
#include "fl/server.h"
#include "testing_util.h"

namespace cip {
namespace {

// ---- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, DisabledByDefault) {
  fl::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_NO_THROW(plan.Validate());
  EXPECT_EQ(plan.Decide(1, 1, 0), fl::FaultKind::kNone);
}

TEST(FaultPlan, ValidateRejectsBadRates) {
  fl::FaultPlan plan;
  plan.dropout_rate = -0.1f;
  EXPECT_THROW(plan.Validate(), CheckError);
  plan.dropout_rate = 1.5f;
  EXPECT_THROW(plan.Validate(), CheckError);
  plan.dropout_rate = 0.6f;
  plan.failure_rate = 0.6f;  // sum > 1
  EXPECT_THROW(plan.Validate(), CheckError);
  plan.failure_rate = 0.2f;
  EXPECT_NO_THROW(plan.Validate());
  plan.straggler_delay_seconds = -1.0;
  EXPECT_THROW(plan.Validate(), CheckError);
}

TEST(FaultPlan, ValidateRejectsZeroBasedForcedRound) {
  fl::FaultPlan plan;
  plan.forced.push_back({0, 0, fl::FaultKind::kDropout});
  EXPECT_THROW(plan.Validate(), CheckError);
  plan.forced[0].round = 1;
  EXPECT_NO_THROW(plan.Validate());
}

TEST(FaultPlan, DecideIsAPureFunction) {
  fl::FaultPlan plan;
  plan.dropout_rate = 0.3f;
  plan.failure_rate = 0.3f;
  plan.straggler_rate = 0.3f;
  // Same triple, same answer — in any call order, any number of times.
  const fl::FaultKind first = plan.Decide(9, 4, 2);
  for (std::size_t round = 1; round <= 5; ++round) {
    for (std::size_t client = 0; client < 5; ++client) {
      EXPECT_EQ(plan.Decide(9, round, client), plan.Decide(9, round, client));
    }
  }
  EXPECT_EQ(plan.Decide(9, 4, 2), first);
}

TEST(FaultPlan, ForcedFaultOverridesRandomDraw) {
  fl::FaultPlan plan;  // no random faults at all
  plan.forced.push_back({3, 1, fl::FaultKind::kStraggler});
  EXPECT_EQ(plan.Decide(7, 3, 1), fl::FaultKind::kStraggler);
  EXPECT_EQ(plan.Decide(7, 3, 2), fl::FaultKind::kNone);  // other client
  EXPECT_EQ(plan.Decide(7, 2, 1), fl::FaultKind::kNone);  // other round
}

TEST(FaultPlan, RatesRoughlyMatchEmpiricalFrequency) {
  fl::FaultPlan plan;
  plan.dropout_rate = 0.5f;
  std::size_t dropouts = 0;
  const std::size_t trials = 2000;
  for (std::size_t i = 0; i < trials; ++i) {
    if (plan.Decide(123, 1 + i / 50, i % 50) == fl::FaultKind::kDropout) {
      ++dropouts;
    }
  }
  const double rate = static_cast<double>(dropouts) / trials;
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.6);
}

TEST(FaultPlan, DecisionsVaryAcrossSeedsRoundsAndClients) {
  fl::FaultPlan plan;
  plan.dropout_rate = 0.5f;
  // With p = 0.5 over 64 coordinates, all-equal outcomes are astronomically
  // unlikely; a constant Decide would be a salted-stream wiring bug.
  bool any_dropout = false, any_none = false;
  for (std::size_t client = 0; client < 64; ++client) {
    if (plan.Decide(5, 1, client) == fl::FaultKind::kDropout) {
      any_dropout = true;
    } else {
      any_none = true;
    }
  }
  EXPECT_TRUE(any_dropout);
  EXPECT_TRUE(any_none);
}

// ---- probe-client federation ------------------------------------------------

// Returns a constant one-element state so aggregation arithmetic is exact,
// and counts TrainLocal calls so tests can tell "never started" (dropout)
// from "trained but the update was lost" (mid-round failure / straggler).
class ProbeClient : public fl::ClientBase {
 public:
  explicit ProbeClient(float value) : value_(value) {}

  void SetGlobal(const fl::ModelState& global) override {
    broadcasts_.push_back(global.values()[0]);
  }
  fl::ModelState TrainLocal(fl::RoundContext /*ctx*/) override {
    ++train_calls_;
    return fl::ModelState(std::vector<float>{value_});
  }
  double EvalAccuracy(const data::Dataset& /*data*/) override { return 0.0; }
  float LastTrainLoss() const override { return value_; }
  const data::Dataset& LocalData() const override { return data_; }

  int train_calls() const { return train_calls_; }
  /// First element of every ModelState this client received, in order —
  /// per-round broadcasts for rounds it started, then the final aggregate.
  const std::vector<float>& broadcasts() const { return broadcasts_; }

 private:
  float value_;
  std::vector<float> broadcasts_;
  int train_calls_ = 0;
  data::Dataset data_;
};

// A live store owns the probes; the test keeps raw pointers so it can
// inspect train counts and broadcast histories after the run.
struct ProbeFleet {
  fl::ClientStore store;
  std::vector<ProbeClient*> probes;
};

ProbeFleet MakeProbes(std::size_t n) {
  ProbeFleet fleet;
  for (std::size_t k = 0; k < n; ++k) {
    auto probe = std::make_unique<ProbeClient>(static_cast<float>(k + 1));
    fleet.probes.push_back(probe.get());
    fleet.store.Add(std::move(probe));
  }
  return fleet;
}

fl::ModelState OneWeight() {
  return fl::ModelState(std::vector<float>{0.0f});
}

TEST(FaultRounds, DropoutClientIsExcludedAndMeanRenormalized) {
  ProbeFleet fleet = MakeProbes(4);
  fl::FlOptions opts;
  opts.rounds = 1;
  opts.faults.forced.push_back({1, 2, fl::FaultKind::kDropout});
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, 11);
  // Survivors deliver 1, 2, 4; the plain mean over survivors is the
  // renormalized aggregate: each weight grows from 1/4 to 1/3.
  EXPECT_FLOAT_EQ(log.final_global.values()[0], (1.0f + 2.0f + 4.0f) / 3.0f);
  EXPECT_EQ(fleet.probes[2]->train_calls(), 0);  // never started
  const fl::RoundStats& r = log.telemetry.rounds.at(0);
  EXPECT_EQ(r.survivors, 3u);
  EXPECT_FALSE(r.skipped);
  EXPECT_EQ(r.clients.at(2).fault, fl::FaultKind::kDropout);
  EXPECT_TRUE(r.clients.at(2).dropped);
  EXPECT_FALSE(r.clients.at(1).dropped);
  // A dropped client reports no loss.
  EXPECT_EQ(log.client_losses.at(0).at(2), 0.0f);
  EXPECT_EQ(log.client_losses.at(0).at(3), 4.0f);
}

TEST(FaultRounds, MidRoundFailureTrainsButLosesTheUpdate) {
  ProbeFleet fleet = MakeProbes(3);
  fl::FlOptions opts;
  opts.rounds = 1;
  opts.faults.forced.push_back({1, 0, fl::FaultKind::kMidRoundFailure});
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, 12);
  EXPECT_EQ(fleet.probes[0]->train_calls(), 1);  // it did train...
  EXPECT_FLOAT_EQ(log.final_global.values()[0], (2.0f + 3.0f) / 2.0f);
  EXPECT_TRUE(log.telemetry.rounds.at(0).clients.at(0).dropped);
}

TEST(FaultRounds, StragglerDroppedOnlyPastTheSimulatedDeadline) {
  fl::FlOptions opts;
  opts.rounds = 1;
  opts.faults.forced.push_back({1, 1, fl::FaultKind::kStraggler});
  opts.faults.straggler_delay_seconds = 3.0;

  {  // no deadline: the late update is still accepted
    ProbeFleet fleet = MakeProbes(3);
    opts.round_timeout_seconds = 0.0;
    fl::FederatedAveraging server(OneWeight(), opts);
    const fl::FlLog log = server.Run(fleet.store, 13);
    EXPECT_FLOAT_EQ(log.final_global.values()[0], 2.0f);  // mean(1,2,3)
    EXPECT_FALSE(log.telemetry.rounds.at(0).clients.at(1).dropped);
  }
  {  // generous deadline: still accepted
    ProbeFleet fleet = MakeProbes(3);
    opts.round_timeout_seconds = 10.0;
    fl::FederatedAveraging server(OneWeight(), opts);
    const fl::FlLog log = server.Run(fleet.store, 13);
    EXPECT_FLOAT_EQ(log.final_global.values()[0], 2.0f);
  }
  {  // delay exceeds the deadline: trained, but dropped
    ProbeFleet fleet = MakeProbes(3);
    opts.round_timeout_seconds = 2.0;
    fl::FederatedAveraging server(OneWeight(), opts);
    const fl::FlLog log = server.Run(fleet.store, 13);
    EXPECT_EQ(fleet.probes[1]->train_calls(), 1);
    EXPECT_FLOAT_EQ(log.final_global.values()[0], (1.0f + 3.0f) / 2.0f);
    EXPECT_TRUE(log.telemetry.rounds.at(0).clients.at(1).dropped);
  }
}

TEST(FaultRounds, QuorumLossSkipsRoundAndCarriesGlobalOver) {
  ProbeFleet fleet = MakeProbes(2);
  fl::FlOptions opts;
  opts.rounds = 2;
  opts.min_quorum = 2;
  // Round 1 loses one client -> 1 survivor < quorum 2 -> skipped; round 2 is
  // healthy and aggregates normally.
  opts.faults.forced.push_back({1, 0, fl::FaultKind::kDropout});
  fl::FederatedAveraging server(
      fl::ModelState(std::vector<float>{42.0f}), opts);
  const fl::FlLog log = server.Run(fleet.store, 14);
  const fl::RoundStats& r1 = log.telemetry.rounds.at(0);
  EXPECT_TRUE(r1.skipped);
  EXPECT_EQ(r1.survivors, 1u);
  // Client 1 started both rounds; the round-2 broadcast is the *original*
  // global — the skipped round changed nothing.
  ASSERT_GE(fleet.probes[1]->broadcasts().size(), 2u);
  EXPECT_FLOAT_EQ(fleet.probes[1]->broadcasts()[0], 42.0f);
  EXPECT_FLOAT_EQ(fleet.probes[1]->broadcasts()[1], 42.0f);
  const fl::RoundStats& r2 = log.telemetry.rounds.at(1);
  EXPECT_FALSE(r2.skipped);
  EXPECT_FLOAT_EQ(log.final_global.values()[0], 1.5f);
}

TEST(FaultRounds, SkippedFirstRoundBroadcastsUnchangedGlobal) {
  ProbeFleet fleet = MakeProbes(1);
  fl::FlOptions opts;
  opts.rounds = 2;
  opts.faults.forced.push_back({1, 0, fl::FaultKind::kDropout});
  fl::FederatedAveraging server(
      fl::ModelState(std::vector<float>{42.0f}), opts);
  const fl::FlLog log = server.Run(fleet.store, 15);
  EXPECT_TRUE(log.telemetry.rounds.at(0).skipped);
  EXPECT_EQ(log.telemetry.rounds.at(0).survivors, 0u);
  // The dropout skipped round 1's broadcast entirely, so the client's first
  // received state is round 2's — the untouched initial model — followed by
  // the final aggregate.
  ASSERT_EQ(fleet.probes[0]->broadcasts().size(), 2u);
  EXPECT_FLOAT_EQ(fleet.probes[0]->broadcasts()[0], 42.0f);
  EXPECT_FLOAT_EQ(log.final_global.values()[0], 1.0f);
}

TEST(FaultRounds, QuorumAbortPolicyThrows) {
  ProbeFleet fleet = MakeProbes(2);
  fl::FlOptions opts;
  opts.rounds = 1;
  opts.min_quorum = 2;
  opts.quorum_policy = fl::QuorumPolicy::kAbort;
  opts.faults.forced.push_back({1, 0, fl::FaultKind::kDropout});
  fl::FederatedAveraging server(OneWeight(), opts);
  EXPECT_THROW(server.Run(fleet.store, 16), CheckError);
}

TEST(FaultRounds, RetryReinvitesFaultedClientWithBackoff) {
  ProbeFleet fleet = MakeProbes(3);
  fl::FlOptions opts;
  opts.rounds = 4;
  opts.max_retries = 2;
  opts.retry_backoff_rounds = 1;
  opts.faults.forced.push_back({1, 0, fl::FaultKind::kDropout});
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, 17);
  // Full participation: client 0 is sampled in round 2 anyway, but the
  // engine must label that participation as the scheduled retry...
  EXPECT_TRUE(log.telemetry.rounds.at(1).clients.at(0).retried);
  // ...and clear the pending entry once the retry succeeds.
  EXPECT_FALSE(log.telemetry.rounds.at(2).clients.at(0).retried);
}

TEST(FaultRounds, RetryMergesUnsampledClientIntoParticipants) {
  // 0.3 participation over 4 clients -> 1 sampled client per round. Learn
  // the schedule from a fault-free run, then force a dropout on round 1's
  // participant: the retry must merge it back in round 2 even when sampling
  // does not pick it.
  fl::FlOptions opts;
  opts.rounds = 2;
  opts.participation = 0.3f;
  const std::uint64_t run_seed = 18;

  ProbeFleet dry = MakeProbes(4);
  fl::FederatedAveraging dry_server(OneWeight(), opts);
  const fl::FlLog dry_log = dry_server.Run(dry.store, run_seed);
  ASSERT_EQ(dry_log.telemetry.rounds.at(0).clients.size(), 1u);
  const std::size_t victim =
      dry_log.telemetry.rounds.at(0).clients.at(0).client;

  opts.max_retries = 1;
  opts.faults.forced.push_back({1, victim, fl::FaultKind::kDropout});
  ProbeFleet fleet = MakeProbes(4);
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, run_seed);
  const fl::RoundStats& r2 = log.telemetry.rounds.at(1);
  bool found = false;
  for (const fl::ClientRoundStats& c : r2.clients) {
    if (c.client == victim) {
      found = true;
      EXPECT_TRUE(c.retried);
    }
  }
  EXPECT_TRUE(found) << "faulted client " << victim
                     << " was not re-invited in round 2";
}

TEST(FaultRounds, RetryGivesUpAfterAttemptBudget) {
  ProbeFleet fleet = MakeProbes(2);
  fl::FlOptions opts;
  opts.rounds = 4;
  opts.max_retries = 1;
  // Client 0 faults every round; after the single allowed retry (round 2)
  // the engine must stop labeling its participations as retries.
  for (std::size_t r = 1; r <= 4; ++r) {
    opts.faults.forced.push_back({r, 0, fl::FaultKind::kDropout});
  }
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, 19);
  EXPECT_TRUE(log.telemetry.rounds.at(1).clients.at(0).retried);
  EXPECT_FALSE(log.telemetry.rounds.at(2).clients.at(0).retried);
  EXPECT_FALSE(log.telemetry.rounds.at(3).clients.at(0).retried);
}

TEST(FaultRounds, TwentyPercentDropoutDegradesGracefully) {
  // The ISSUE acceptance bar: a 20% dropout plan over a 10-client fleet must
  // keep aggregating renormalized survivor means without ever losing quorum.
  ProbeFleet fleet = MakeProbes(10);
  fl::FlOptions opts;
  opts.rounds = 6;
  opts.faults.dropout_rate = 0.2f;
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, 20);
  std::size_t total_faults = 0;
  for (const fl::RoundStats& r : log.telemetry.rounds) {
    EXPECT_FALSE(r.skipped);
    EXPECT_GE(r.survivors, 1u);
    EXPECT_LE(r.survivors, 10u);
    float expected = 0.0f;
    std::size_t survivors = 0;
    for (const fl::ClientRoundStats& c : r.clients) {
      if (c.fault != fl::FaultKind::kNone) ++total_faults;
      if (!c.dropped) {
        expected += static_cast<float>(c.client + 1);
        ++survivors;
      }
    }
    ASSERT_EQ(survivors, r.survivors);
  }
  // Seed 20 must actually exercise the fault path for this test to mean
  // anything; ~0.2 * 60 participations ≈ 12 faults expected.
  EXPECT_GT(total_faults, 0u);
  // Final round's aggregate equals the renormalized survivor mean.
  const fl::RoundStats& last = log.telemetry.rounds.back();
  float sum = 0.0f;
  for (const fl::ClientRoundStats& c : last.clients) {
    if (!c.dropped) sum += static_cast<float>(c.client + 1);
  }
  EXPECT_FLOAT_EQ(log.final_global.values()[0],
                  sum / static_cast<float>(last.survivors));
}

// ---- fleet-dependent validation ---------------------------------------------

TEST(FlOptionsValidateFleet, LowParticipationClampsToOneClientNotRejected) {
  // floor(0.1 * 5) == 0, but the cohort rule clamps to at least one sampled
  // client (see fl/sampler.h), so any participation in (0, 1] validates.
  fl::FlOptions opts;
  opts.participation = 0.1f;
  EXPECT_NO_THROW(opts.Validate(5));   // floor gives 0 -> clamped to 1
  EXPECT_NO_THROW(opts.Validate(20));  // 2 sampled
  opts.participation = 1.0f;
  EXPECT_NO_THROW(opts.Validate(1));
}

TEST(FlOptionsValidateFleet, RejectsUnmeetableQuorum) {
  fl::FlOptions opts;
  opts.min_quorum = 5;
  EXPECT_THROW(opts.Validate(4), CheckError);
  EXPECT_NO_THROW(opts.Validate(5));
}

TEST(FlOptionsValidateFleet, RunSamplesAtLeastOneClientPerRound) {
  ProbeFleet fleet = MakeProbes(5);
  fl::FlOptions opts;
  opts.rounds = 3;
  opts.participation = 0.1f;  // floor(0.5) == 0 -> clamped to a cohort of 1
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, 21);
  for (const fl::RoundStats& r : log.telemetry.rounds) {
    EXPECT_EQ(r.clients.size(), 1u);
    EXPECT_EQ(r.survivors, 1u);
  }
}

TEST(FlOptionsValidate, RejectsBadFaultToleranceKnobs) {
  fl::FlOptions opts;
  opts.min_quorum = 0;
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.min_quorum = 1;
  opts.round_timeout_seconds = -1.0;
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.round_timeout_seconds = 0.0;
  opts.max_retries = 1;
  opts.retry_backoff_rounds = 0;
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.retry_backoff_rounds = 1;
  opts.checkpoint_every = 2;  // no path
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.checkpoint_every = 0;
  opts.stop_after_round = opts.rounds + 1;
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.stop_after_round = 0;
  opts.faults.dropout_rate = 2.0f;  // FaultPlan::Validate is folded in
  EXPECT_THROW(opts.Validate(), CheckError);
}

// ---- telemetry JSONL --------------------------------------------------------

TEST(FaultTelemetry, JsonlCarriesFaultFields) {
  ProbeFleet fleet = MakeProbes(2);
  fl::FlOptions opts;
  opts.rounds = 1;
  opts.faults.forced.push_back({1, 1, fl::FaultKind::kDropout});
  fl::FederatedAveraging server(OneWeight(), opts);
  const fl::FlLog log = server.Run(fleet.store, 22);
  std::ostringstream os;
  log.telemetry.WriteJsonl(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"survivors\":1"), std::string::npos);
  EXPECT_NE(line.find("\"skipped\":false"), std::string::npos);
  EXPECT_NE(line.find("\"fault\":\"dropout\""), std::string::npos);
  EXPECT_NE(line.find("\"fault\":\"none\""), std::string::npos);
  EXPECT_NE(line.find("\"dropped\":true"), std::string::npos);
  EXPECT_NE(line.find("\"retried\":false"), std::string::npos);
}

TEST(FaultTelemetry, FaultKindNamesAreStable) {
  EXPECT_STREQ(fl::FaultKindName(fl::FaultKind::kNone), "none");
  EXPECT_STREQ(fl::FaultKindName(fl::FaultKind::kDropout), "dropout");
  EXPECT_STREQ(fl::FaultKindName(fl::FaultKind::kMidRoundFailure),
               "mid_round_failure");
  EXPECT_STREQ(fl::FaultKindName(fl::FaultKind::kStraggler), "straggler");
}

// ---- bit-identity with faults enabled --------------------------------------

nn::ModelSpec MlpSpec() {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {4};
  spec.num_classes = 2;
  spec.width = 6;
  spec.seed = 19;
  return spec;
}

// Cold store-backed fleet: the fault paths (dropout never materialized,
// mid-round failure trained-then-evicted) run against serialized records
// exactly as they would at scale.
struct Federation {
  fl::ClientStore store;
  fl::ModelState init;
};

Federation MakeFederation(std::size_t num_clients) {
  Rng data_rng(31);
  data::Dataset full = testing::TwoBlobs(40 * num_clients, 4, data_rng);
  for (float& v : full.inputs.flat()) {
    v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  }
  Rng part_rng(32);
  const auto shards = data::PartitionIid(full, num_clients, part_rng);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kLegacy;
  proto.model = MlpSpec();
  proto.train.lr = 0.1f;
  proto.train.momentum = 0.9f;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = shards[k];
    spec.seed = 50 + k;
    specs.push_back(std::move(spec));
  }
  return Federation{fl::MakeClientStore(std::move(specs)),
                    fl::InitialStateFor(proto)};
}

fl::FlOptions FaultyOptions() {
  fl::FlOptions opts;
  opts.rounds = 4;
  opts.faults.dropout_rate = 0.2f;
  opts.faults.failure_rate = 0.1f;
  opts.faults.straggler_rate = 0.1f;
  opts.faults.straggler_delay_seconds = 4.0;
  opts.round_timeout_seconds = 2.0;
  opts.max_retries = 2;
  return opts;
}

TEST(FaultRounds, BitIdenticalAcrossWorkerBudgetsWithFaults) {
  fl::FlLog logs[2];
  const std::size_t budgets[2] = {1, 4};
  for (int b = 0; b < 2; ++b) {
    Federation fed = MakeFederation(4);
    fl::FlOptions opts = FaultyOptions();
    opts.max_parallel_clients = budgets[b];
    fl::FederatedAveraging server(fed.init, opts);
    logs[b] = server.Run(fed.store, 91);
  }
  ASSERT_EQ(logs[0].final_global.size(), logs[1].final_global.size());
  for (std::size_t i = 0; i < logs[0].final_global.size(); ++i) {
    EXPECT_EQ(logs[0].final_global.values()[i],
              logs[1].final_global.values()[i]);
  }
  ASSERT_EQ(logs[0].telemetry.rounds.size(), logs[1].telemetry.rounds.size());
  for (std::size_t r = 0; r < logs[0].telemetry.rounds.size(); ++r) {
    const fl::RoundStats& ra = logs[0].telemetry.rounds[r];
    const fl::RoundStats& rb = logs[1].telemetry.rounds[r];
    EXPECT_EQ(ra.survivors, rb.survivors);
    EXPECT_EQ(ra.skipped, rb.skipped);
    ASSERT_EQ(ra.clients.size(), rb.clients.size());
    for (std::size_t i = 0; i < ra.clients.size(); ++i) {
      EXPECT_EQ(ra.clients[i].fault, rb.clients[i].fault);
      EXPECT_EQ(ra.clients[i].dropped, rb.clients[i].dropped);
      EXPECT_EQ(ra.clients[i].loss, rb.clients[i].loss);
    }
  }
}

TEST(FaultRounds, FaultStreamIsDisjointFromTrainingStreams) {
  // A plan whose faults never drop anyone (straggler with no deadline) must
  // not disturb training results: fault decisions draw from a salted stream,
  // never from the client's training stream.
  Federation clean = MakeFederation(3);
  fl::FlOptions opts;
  opts.rounds = 2;
  {
    fl::FederatedAveraging server(clean.init, opts);
    const fl::FlLog base = server.Run(clean.store, 92);
    Federation faulty = MakeFederation(3);
    opts.faults.straggler_rate = 1.0f;  // everyone is late...
    opts.round_timeout_seconds = 0.0;   // ...but no deadline drops them
    fl::FederatedAveraging server2(faulty.init, opts);
    const fl::FlLog with_faults = server2.Run(faulty.store, 92);
    ASSERT_EQ(base.final_global.size(), with_faults.final_global.size());
    for (std::size_t i = 0; i < base.final_global.size(); ++i) {
      EXPECT_EQ(base.final_global.values()[i],
                with_faults.final_global.values()[i]);
    }
  }
}

}  // namespace
}  // namespace cip
