// End-to-end integration tests reproducing the paper's headline claims at
// test scale: an undefended overfit model is attackable, the same pipeline
// under CIP is not, and CIP preserves client-side accuracy.
#include <gtest/gtest.h>

#include "attacks/adaptive.h"
#include "attacks/output_attacks.h"
#include "core/cip_model.h"
#include "core/theory.h"
#include "common/stats.h"
#include "eval/experiment.h"
#include "eval/internal_experiment.h"

namespace cip {
namespace {

TEST(Integration, CipDefeatsLossThresholdAttackWhilePreservingAccuracy) {
  eval::BundleOptions opts;
  opts.train_size = 200;
  opts.test_size = 200;
  opts.shadow_size = 200;
  opts.width = 8;
  opts.num_classes = 10;
  opts.seed = 7;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kCifar100, opts);
  Rng rng(8);
  const eval::ShadowPack shadow = eval::BuildShadowPack(bundle, 45, rng);
  attacks::ObMalt attack(shadow.member_losses, shadow.nonmember_losses);

  // Undefended target: attackable.
  auto plain = eval::TrainPlain(bundle, 50, rng);
  fl::ClassifierQuery plain_q(*plain);
  const double plain_attack =
      attacks::EvaluateAttack(attack, plain_q, bundle.train, bundle.test)
          .accuracy;
  const double plain_acc = fl::Evaluate(*plain, bundle.test);

  // CIP target: attack collapses.
  eval::CipSingleResult cip =
      eval::TrainCipSingle(bundle, /*alpha=*/0.7f, 40, rng);
  core::CipQuery raw(cip.client->model(), cip.client->config().blend);
  const double cip_attack =
      attacks::EvaluateAttack(attack, raw, bundle.train, bundle.test).accuracy;
  const double cip_acc = cip.client->EvalAccuracy(bundle.test);

  EXPECT_GT(plain_attack, 0.60);               // undefended: clear leak
  EXPECT_LT(cip_attack, plain_attack - 0.08);  // CIP: attack collapses
  EXPECT_LT(cip_attack, 0.58);                 // ...to near random guessing
  EXPECT_GT(cip_acc, plain_acc - 0.10);        // accuracy roughly preserved
}

TEST(Integration, InternalPassiveAttackDropsUnderCip) {
  auto run = [](eval::InternalDefense defense) {
    eval::InternalExpConfig cfg;
    cfg.defense = defense;
    cfg.num_clients = 2;
    cfg.rounds = 35;
    cfg.samples_per_client = 120;
    cfg.alpha = 0.7f;
    cfg.seed = 29;
    Rng rng(32);
    return eval::RunInternalExperiment(cfg, rng);
  };
  const eval::InternalExpResult nodef = run(eval::InternalDefense::kNone);
  const eval::InternalExpResult cip = run(eval::InternalDefense::kCip);
  EXPECT_GT(nodef.passive_attack_acc, 0.60);
  EXPECT_LT(cip.passive_attack_acc, nodef.passive_attack_acc - 0.05);
}

TEST(Integration, Theorem1HoldsEmpirically) {
  // For a trained CIP model, a guessed perturbation yields a higher member
  // loss than the true one, so Theorem 1's epsilon is <= 1 and the guessed
  // attack gains nothing.
  eval::BundleOptions opts;
  opts.train_size = 150;
  opts.test_size = 150;
  opts.shadow_size = 50;
  opts.width = 8;
  opts.num_classes = 10;
  opts.seed = 11;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kCifar100, opts);
  Rng rng(12);
  eval::CipExternalResult cip =
      eval::RunCipExternal(bundle, nullptr, /*alpha=*/0.5f, 25, rng);
  const core::BlendConfig blend = cip.client->config().blend;

  core::CipQuery true_q(cip.client->model(), blend,
                        cip.client->perturbation());
  const double l_true = Mean(std::span<const float>(
      std::vector<float>(true_q.Losses(bundle.train))));
  for (int g = 0; g < 3; ++g) {
    const Tensor t_guess =
        core::Perturbation::Random(bundle.train.SampleShape(), rng).tensor();
    core::CipQuery guess_q(cip.client->model(), blend, t_guess);
    const double l_guess = Mean(std::span<const float>(
        std::vector<float>(guess_q.Losses(bundle.train))));
    EXPECT_GT(l_guess, l_true);  // the premise of Theorem 1
    EXPECT_LE(core::Theorem1Epsilon(l_true, l_guess, 1.0), 1.0);
  }
}

TEST(Integration, CipClientsKeepDistinctPerturbationsAfterTraining) {
  // Personalization survives federation: after joint training, clients'
  // perturbations remain distinct secrets.
  eval::BundleOptions opts;
  opts.train_size = 160;
  opts.test_size = 80;
  opts.shadow_size = 40;
  opts.width = 6;
  opts.num_classes = 8;
  opts.seed = 13;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kChMnist, opts);
  Rng rng(14);
  core::CipConfig cfg = eval::DefaultCipConfig(bundle, 0.5f);
  core::CipClient a(bundle.spec, bundle.train.Slice(0, 80), cfg, 15);
  core::CipClient b(bundle.spec, bundle.train.Slice(80, 160), cfg, 16);
  std::vector<fl::ClientBase*> ptrs = {&a, &b};
  fl::FlOptions fl_opts;
  fl_opts.rounds = 8;
  fl::FederatedAveraging server(core::InitialDualState(bundle.spec), fl_opts);
  fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
  server.Run(store, rng.NextU64());

  float diff = 0.0f;
  for (std::size_t i = 0; i < a.perturbation().size(); ++i) {
    diff += std::abs(a.perturbation()[i] - b.perturbation()[i]);
  }
  EXPECT_GT(diff / static_cast<float>(a.perturbation().size()), 0.05f);
  // And their models are in sync (the server aggregated them).
  const fl::ModelState sa = fl::ModelState::From(a.model().Parameters());
  const fl::ModelState sb = fl::ModelState::From(b.model().Parameters());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa.values()[i], sb.values()[i]);
  }
}

}  // namespace
}  // namespace cip
