// Steady-state allocation discipline of the hot paths.
//
// The acceptance contract of the persistent-pool / scratch-arena work: after
// a warm-up call has grown every per-layer scratch tensor, per-thread GEMM
// arena, and cached PackedB weight, repeated forward (and train-step) calls
// must perform no heap allocation beyond the tensors they hand back to the
// caller. Verified through two hooks:
//   * cip::internal::TensorAllocCount() — process-wide counter bumped by
//     every Tensor element-buffer allocation (constructions and
//     capacity-growing assignments);
//   * cip::ops::internal::GemmArenaBytes()/PackCount() — the calling
//     thread's GEMM scratch capacity and packing-pass count.
//
// These tests run the layers serially (no explicit thread budget) so all
// arena traffic lands on this thread; the pool's workers amortize their own
// thread-local arenas the same way because they are persistent.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "nn/backbones.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace cip {
namespace {

Tensor RandomTensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.Normal();
  return t;
}

std::uint64_t AllocCount() { return internal::TensorAllocCount(); }

TEST(AllocFree, TensorCountersTrackAllocations) {
  const std::uint64_t before = AllocCount();
  Tensor t({4, 4});
  EXPECT_EQ(AllocCount(), before + 1);
  Tensor copy = t;  // copy ctor allocates
  EXPECT_EQ(AllocCount(), before + 2);
  Tensor moved = std::move(copy);  // move does not
  EXPECT_EQ(AllocCount(), before + 2);
  Tensor small({2, 2});
  EXPECT_EQ(AllocCount(), before + 3);
  small = t;  // grows capacity -> counts
  EXPECT_EQ(AllocCount(), before + 4);
  small = moved;  // fits in capacity -> free
  EXPECT_EQ(AllocCount(), before + 4);
}

TEST(AllocFree, TensorVersionBumpsOnMutatingAccessOnly) {
  Tensor t({2, 2});
  const std::uint64_t v0 = t.version();
  (void)std::as_const(t).data();
  (void)std::as_const(t)[0];
  (void)std::as_const(t).At(0, 0);
  EXPECT_EQ(t.version(), v0);
  (void)t.data();
  EXPECT_GT(t.version(), v0);
  const std::uint64_t v1 = t.version();
  t.Fill(1.0f);
  EXPECT_GT(t.version(), v1);
}

TEST(AllocFree, MatmulSteadyStateDoesNotAllocate) {
  // 64x64 is in the blocked (packing) regime; the per-call pack must land in
  // the thread-local arena, so after one warm-up call the arena stops
  // growing and MatmulInto performs zero tensor allocations.
  const Tensor a = RandomTensor({64, 64}, 1);
  const Tensor b = RandomTensor({64, 64}, 2);
  Tensor c({64, 64});
  ops::MatmulInto(a, b, c);  // warm-up: grows the arena
  const std::size_t arena = ops::internal::GemmArenaBytes();
  const std::uint64_t allocs = AllocCount();
  for (int i = 0; i < 10; ++i) ops::MatmulInto(a, b, c);
  EXPECT_EQ(AllocCount(), allocs);
  EXPECT_EQ(ops::internal::GemmArenaBytes(), arena);
}

TEST(AllocFree, MatmulTransAUsesArenaForTranspose) {
  const Tensor a = RandomTensor({64, 64}, 3);
  const Tensor b = RandomTensor({64, 64}, 4);
  Tensor c({64, 64});
  ops::MatmulTransAInto(a, b, c);  // warm-up
  const std::uint64_t allocs = AllocCount();
  for (int i = 0; i < 10; ++i) ops::MatmulTransAInto(a, b, c);
  EXPECT_EQ(AllocCount(), allocs);
}

TEST(AllocFree, PackedBSkipsRepacking) {
  const Tensor a = RandomTensor({64, 64}, 5);
  const Tensor b = RandomTensor({64, 64}, 6);
  ops::PackedB packed;
  ops::PackBForMatmulInto(b, packed);
  Tensor c({64, 64});
  const std::uint64_t packs = ops::internal::PackCount();
  for (int i = 0; i < 10; ++i) ops::MatmulPackedInto(a, packed, c);
  EXPECT_EQ(ops::internal::PackCount(), packs);  // no packing pass at all
  // Same numbers as the pack-per-call path (both run the blocked kernel).
  Tensor ref({64, 64});
  ops::MatmulInto(a, b, ref);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(std::as_const(ref)[i], std::as_const(c)[i]);
  }
}

TEST(AllocFree, Conv2dEvalForwardAllocatesOnlyTheOutput) {
  // The acceptance gate: steady-state Conv2d forward performs zero heap
  // allocations beyond the returned output tensor — im2col scratch, GEMM
  // product scratch, the packed weight, and the GEMM arena are all reused.
  Rng rng(7);
  nn::Conv2d conv(3, 32, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  const Tensor x = RandomTensor({8, 3, 16, 16}, 8);
  (void)conv.Forward(x, /*train=*/false);  // warm-up: scratch + pack
  const std::size_t arena = ops::internal::GemmArenaBytes();
  const std::uint64_t packs = ops::internal::PackCount();
  const std::uint64_t allocs = AllocCount();
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    const Tensor y = conv.Forward(x, /*train=*/false);
    ASSERT_EQ(y.dim(1), 32u);
  }
  // Exactly one allocation per call: the returned output.
  EXPECT_EQ(AllocCount(), allocs + kIters);
  EXPECT_EQ(ops::internal::PackCount(), packs);  // weight unchanged: no repack
  EXPECT_EQ(ops::internal::GemmArenaBytes(), arena);
}

TEST(AllocFree, Conv2dRepacksAfterWeightUpdate) {
  Rng rng(9);
  nn::Conv2d conv(3, 32, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  const Tensor x = RandomTensor({8, 3, 16, 16}, 10);
  (void)conv.Forward(x, /*train=*/false);
  const std::uint64_t packs = ops::internal::PackCount();
  // Touch the weight the way an optimizer step does.
  std::vector<nn::Parameter*> params;
  conv.CollectParameters(params);
  params[0]->value.data()[0] += 0.5f;
  (void)conv.Forward(x, /*train=*/false);
  EXPECT_GT(ops::internal::PackCount(), packs);  // version moved: repacked
}

TEST(AllocFree, LinearSteadyStateAllocatesOnlyTheOutput) {
  Rng rng(11);
  nn::Linear linear(256, 64, rng);
  const Tensor x = RandomTensor({32, 256}, 12);
  (void)linear.Forward(x, /*train=*/false);  // warm-up
  const std::uint64_t allocs = AllocCount();
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    (void)linear.Forward(x, /*train=*/false);
  }
  EXPECT_EQ(AllocCount(), allocs + kIters);
}

TEST(AllocFree, TrainStepSteadyStateAllocationIsBounded) {
  // Full forward/backward keeps per-call allocations to the tensors handed
  // across the Module API (outputs, dx, the cached-input copy) — a small
  // constant, not proportional to depth times scratch count. Measure one
  // steady-state step and pin the budget.
  Rng rng(13);
  nn::Conv2d conv(3, 8, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  const Tensor x = RandomTensor({4, 3, 12, 12}, 14);
  const Tensor grad = RandomTensor({4, 8, 12, 12}, 15);
  auto step = [&] {
    (void)conv.Forward(x, /*train=*/true);
    (void)conv.Backward(grad);
  };
  step();  // warm-up
  step();  // settle capacity-reusing assignments
  const std::uint64_t allocs = AllocCount();
  step();
  const std::uint64_t per_step = AllocCount() - allocs;
  // forward output + cached-input copy + dx, and nothing else.
  EXPECT_LE(per_step, 3u);
  // And it stays flat: 5 more steps cost exactly 5x as much.
  const std::uint64_t before = AllocCount();
  for (int i = 0; i < 5; ++i) step();
  EXPECT_EQ(AllocCount() - before, 5 * per_step);
}

}  // namespace
}  // namespace cip
