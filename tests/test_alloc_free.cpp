// Steady-state allocation discipline of the hot paths.
//
// The acceptance contract of the persistent-pool / scratch-arena work: after
// a warm-up call has grown every per-layer scratch tensor, per-thread GEMM
// arena, and cached PackedB weight, repeated forward (and train-step) calls
// must perform no heap allocation beyond the tensors they hand back to the
// caller. Verified through two hooks:
//   * cip::internal::TensorAllocCount() — process-wide counter bumped by
//     every Tensor element-buffer allocation (constructions and
//     capacity-growing assignments);
//   * cip::ops::internal::GemmArenaBytes()/PackCount() — the calling
//     thread's GEMM scratch capacity and packing-pass count.
//
// These tests run the layers serially (no explicit thread budget) so all
// arena traffic lands on this thread; the pool's workers amortize their own
// thread-local arenas the same way because they are persistent.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "fl/client_factory.h"
#include "nn/backbones.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "serve/serve_engine.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace cip {
namespace {

Tensor RandomTensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.Normal();
  return t;
}

std::uint64_t AllocCount() { return internal::TensorAllocCount(); }

TEST(AllocFree, TensorCountersTrackAllocations) {
  const std::uint64_t before = AllocCount();
  Tensor t({4, 4});
  EXPECT_EQ(AllocCount(), before + 1);
  Tensor copy = t;  // copy ctor allocates
  EXPECT_EQ(AllocCount(), before + 2);
  Tensor moved = std::move(copy);  // move does not
  EXPECT_EQ(AllocCount(), before + 2);
  Tensor small({2, 2});
  EXPECT_EQ(AllocCount(), before + 3);
  small = t;  // grows capacity -> counts
  EXPECT_EQ(AllocCount(), before + 4);
  small = moved;  // fits in capacity -> free
  EXPECT_EQ(AllocCount(), before + 4);
}

TEST(AllocFree, TensorVersionBumpsOnMutatingAccessOnly) {
  Tensor t({2, 2});
  const std::uint64_t v0 = t.version();
  (void)std::as_const(t).data();
  (void)std::as_const(t)[0];
  (void)std::as_const(t).At(0, 0);
  EXPECT_EQ(t.version(), v0);
  (void)t.data();
  EXPECT_GT(t.version(), v0);
  const std::uint64_t v1 = t.version();
  t.Fill(1.0f);
  EXPECT_GT(t.version(), v1);
}

TEST(AllocFree, MatmulSteadyStateDoesNotAllocate) {
  // 64x64 is in the blocked (packing) regime; the per-call pack must land in
  // the thread-local arena, so after one warm-up call the arena stops
  // growing and MatmulInto performs zero tensor allocations.
  const Tensor a = RandomTensor({64, 64}, 1);
  const Tensor b = RandomTensor({64, 64}, 2);
  Tensor c({64, 64});
  ops::MatmulInto(a, b, c);  // warm-up: grows the arena
  const std::size_t arena = ops::internal::GemmArenaBytes();
  const std::uint64_t allocs = AllocCount();
  for (int i = 0; i < 10; ++i) ops::MatmulInto(a, b, c);
  EXPECT_EQ(AllocCount(), allocs);
  EXPECT_EQ(ops::internal::GemmArenaBytes(), arena);
}

TEST(AllocFree, MatmulTransAUsesArenaForTranspose) {
  const Tensor a = RandomTensor({64, 64}, 3);
  const Tensor b = RandomTensor({64, 64}, 4);
  Tensor c({64, 64});
  ops::MatmulTransAInto(a, b, c);  // warm-up
  const std::uint64_t allocs = AllocCount();
  for (int i = 0; i < 10; ++i) ops::MatmulTransAInto(a, b, c);
  EXPECT_EQ(AllocCount(), allocs);
}

TEST(AllocFree, PackedBSkipsRepacking) {
  const Tensor a = RandomTensor({64, 64}, 5);
  const Tensor b = RandomTensor({64, 64}, 6);
  ops::PackedB packed;
  ops::PackBForMatmulInto(b, packed);
  Tensor c({64, 64});
  const std::uint64_t packs = ops::internal::PackCount();
  for (int i = 0; i < 10; ++i) ops::MatmulPackedInto(a, packed, c);
  EXPECT_EQ(ops::internal::PackCount(), packs);  // no packing pass at all
  // Same numbers as the pack-per-call path (both run the blocked kernel).
  Tensor ref({64, 64});
  ops::MatmulInto(a, b, ref);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(std::as_const(ref)[i], std::as_const(c)[i]);
  }
}

TEST(AllocFree, Conv2dEvalForwardAllocatesOnlyTheOutput) {
  // The acceptance gate: steady-state Conv2d forward performs zero heap
  // allocations beyond the returned output tensor — im2col scratch, GEMM
  // product scratch, the packed weight, and the GEMM arena are all reused.
  Rng rng(7);
  nn::Conv2d conv(3, 32, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  const Tensor x = RandomTensor({8, 3, 16, 16}, 8);
  (void)conv.Forward(x, /*train=*/false);  // warm-up: scratch + pack
  const std::size_t arena = ops::internal::GemmArenaBytes();
  const std::uint64_t packs = ops::internal::PackCount();
  const std::uint64_t allocs = AllocCount();
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    const Tensor y = conv.Forward(x, /*train=*/false);
    ASSERT_EQ(y.dim(1), 32u);
  }
  // Exactly one allocation per call: the returned output.
  EXPECT_EQ(AllocCount(), allocs + kIters);
  EXPECT_EQ(ops::internal::PackCount(), packs);  // weight unchanged: no repack
  EXPECT_EQ(ops::internal::GemmArenaBytes(), arena);
}

TEST(AllocFree, Conv2dRepacksAfterWeightUpdate) {
  Rng rng(9);
  nn::Conv2d conv(3, 32, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  const Tensor x = RandomTensor({8, 3, 16, 16}, 10);
  (void)conv.Forward(x, /*train=*/false);
  const std::uint64_t packs = ops::internal::PackCount();
  // Touch the weight the way an optimizer step does.
  std::vector<nn::Parameter*> params;
  conv.CollectParameters(params);
  params[0]->value.data()[0] += 0.5f;
  (void)conv.Forward(x, /*train=*/false);
  EXPECT_GT(ops::internal::PackCount(), packs);  // version moved: repacked
}

TEST(AllocFree, LinearSteadyStateAllocatesOnlyTheOutput) {
  Rng rng(11);
  nn::Linear linear(256, 64, rng);
  const Tensor x = RandomTensor({32, 256}, 12);
  (void)linear.Forward(x, /*train=*/false);  // warm-up
  const std::uint64_t allocs = AllocCount();
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    (void)linear.Forward(x, /*train=*/false);
  }
  EXPECT_EQ(AllocCount(), allocs + kIters);
}

TEST(AllocFree, TrainStepSteadyStateAllocationIsBounded) {
  // Full forward/backward keeps per-call allocations to the tensors handed
  // across the Module API (outputs, dx, the cached-input copy) — a small
  // constant, not proportional to depth times scratch count. Measure one
  // steady-state step and pin the budget.
  Rng rng(13);
  nn::Conv2d conv(3, 8, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  const Tensor x = RandomTensor({4, 3, 12, 12}, 14);
  const Tensor grad = RandomTensor({4, 8, 12, 12}, 15);
  auto step = [&] {
    (void)conv.Forward(x, /*train=*/true);
    (void)conv.Backward(grad);
  };
  step();  // warm-up
  step();  // settle capacity-reusing assignments
  const std::uint64_t allocs = AllocCount();
  step();
  const std::uint64_t per_step = AllocCount() - allocs;
  // forward output + cached-input copy + dx, and nothing else.
  EXPECT_LE(per_step, 3u);
  // And it stays flat: 5 more steps cost exactly 5x as much.
  const std::uint64_t before = AllocCount();
  for (int i = 0; i < 5; ++i) step();
  EXPECT_EQ(AllocCount() - before, 5 * per_step);
}

TEST(AllocFree, ServeEngineSteadyStateIsAllocationFree) {
  // The serving acceptance gate: after one warmup flush at the largest
  // batch, a warm-t-cache ServeEngine performs ZERO element-buffer
  // allocations at batch 1, 16, and 128 — the request arena, the blended
  // channel chunks, the logits, and every model-side eval scratch all
  // reuse capacity. The warmup below also cycles a client through LRU
  // eviction and re-admission, so the counted region includes hits on a
  // previously evicted client (the miss may allocate; its hits must not).
  const std::size_t kDim = 4;
  Rng data_rng(17);
  data::Dataset full = testing::TwoBlobs(32, kDim, data_rng);
  const auto shards = data::PartitionIid(full, 4, data_rng);
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < 4; ++k) {
    fl::ClientSpec spec;
    spec.kind = fl::ClientKind::kCip;
    spec.model.arch = nn::Arch::kMLP;
    spec.model.input_shape = {kDim};
    spec.model.num_classes = 2;
    spec.model.width = 6;
    spec.model.seed = 77;
    spec.data = shards[k];
    spec.seed = 50 + k;
    specs.push_back(std::move(spec));
  }
  std::unique_ptr<core::CipClient> global = fl::MakeCipClient(specs[0]);
  fl::ClientStore store = fl::MakeClientStore(specs);
  serve::ServeOptions opts;
  opts.blend = global->config().blend;
  opts.max_batch_rows = 128;
  opts.t_cache_entries = 2;  // small on purpose: forces eviction churn
  serve::ServeEngine engine(global->model(), store, opts);

  const Tensor x1 = RandomTensor({std::size_t{1}, kDim}, 20);
  const Tensor x16 = RandomTensor({std::size_t{16}, kDim}, 21);
  const Tensor x128 = RandomTensor({std::size_t{128}, kDim}, 22);

  // Warmup. Serving 0..3 through a 2-entry cache evicts client 0 (and 1);
  // the largest flush grows the arenas; the two-request flush grows the
  // request list; the final pair re-admits 0 and 1 as the cached residents.
  for (std::size_t k = 0; k < 4; ++k) (void)engine.Serve(k, x1);
  (void)engine.Serve(0, x128);
  engine.Enqueue(0, x16);
  engine.Enqueue(1, x16);
  (void)engine.Flush();
  ASSERT_GE(engine.stats().t_evictions, 1u);  // client 0 was evicted above
  const std::size_t warm_hits = engine.stats().t_hits;
  const std::size_t warm_misses = engine.stats().t_misses;

  // Steady state: batch 1/16/128 on the warm residents, single and fused —
  // every query a t-cache hit, zero tensor allocations anywhere.
  const std::uint64_t allocs = AllocCount();
  for (int i = 0; i < 5; ++i) {
    (void)engine.Serve(0, x1);
    (void)engine.Serve(1, x16);
    (void)engine.Serve(0, x128);
    engine.Enqueue(0, x16);
    engine.Enqueue(1, x16);
    (void)engine.Flush();
  }
  EXPECT_EQ(AllocCount(), allocs);
  EXPECT_EQ(engine.stats().t_misses, warm_misses);  // hits only
  EXPECT_EQ(engine.stats().t_hits, warm_hits + 25u);
}

}  // namespace
}  // namespace cip
