// Attack framework tests: scoring/threshold mechanics, calibration, and each
// attack's behaviour on controlled targets (overfit model => separable;
// random scores => chance).
#include <gtest/gtest.h>

#include "attacks/adaptive.h"

#include "common/stats.h"
#include "attacks/internal.h"
#include "attacks/output_attacks.h"
#include "attacks/pb_bayes.h"
#include "attacks/shadow.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/client.h"
#include "testing_util.h"

namespace cip {
namespace {

TEST(ScoreToMetrics, BalancedAccuracyFromScores) {
  const std::vector<float> member = {0.9f, 0.8f, 0.6f};
  const std::vector<float> nonmember = {0.1f, 0.2f, 0.7f};
  const metrics::BinaryMetrics m =
      attacks::ScoreToMetrics(member, nonmember, 0.5f);
  EXPECT_NEAR(m.accuracy, 5.0 / 6.0, 1e-9);
  EXPECT_EQ(m.tp, 3u);
  EXPECT_EQ(m.fp, 1u);
}

TEST(BestThreshold, SeparatesDisjointScores) {
  const std::vector<float> member = {2.0f, 3.0f, 4.0f};
  const std::vector<float> nonmember = {-1.0f, 0.0f, 1.0f};
  const float thr = attacks::BestThreshold(member, nonmember);
  const metrics::BinaryMetrics m =
      attacks::ScoreToMetrics(member, nonmember, thr);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
}

TEST(BestThreshold, ChanceForIdenticalDistributions) {
  Rng rng(1);
  std::vector<float> a(200), b(200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  const double acc = attacks::BestThresholdAccuracy(a, b);
  EXPECT_LT(acc, 0.62);  // small-sample noise above 0.5, but close to chance
}

// Expensive setup shared by the end-to-end attack assertions: an overfit
// target on the CIFAR-100 stand-in plus the attacker's shadow pack. Each
// ctest test runs in its own process, so the heavy checks are consolidated
// into a small number of tests instead of a per-test fixture.
struct OverfitSetup {
  eval::DataBundle bundle;
  std::unique_ptr<nn::Classifier> target;
  eval::ShadowPack shadow;
};

OverfitSetup BuildOverfitSetup() {
  eval::BundleOptions opts;
  opts.train_size = 200;
  opts.test_size = 200;
  opts.shadow_size = 200;
  opts.width = 8;
  opts.num_classes = 10;
  opts.seed = 3;
  OverfitSetup s{eval::MakeBundle(eval::DatasetId::kCifar100, opts), {}, {}};
  Rng rng(4);
  s.target = eval::TrainPlain(s.bundle, /*epochs=*/60, rng);
  s.shadow = eval::BuildShadowPack(s.bundle, /*epochs=*/60, rng);
  return s;
}

TEST(ExternalAttacks, AllFiveAttacksBeatChanceOnOverfitTarget) {
  OverfitSetup s = BuildOverfitSetup();
  fl::ClassifierQuery q(*s.target);
  // Precondition: the paper's overfit regime (train acc ~1, low test acc).
  ASSERT_GT(q.Accuracy(s.bundle.train), 0.85);
  ASSERT_LT(q.Accuracy(s.bundle.test), 0.60);

  Rng rng(7);
  const auto results =
      eval::RunExternalAttackSuite(s.bundle, s.shadow, q, rng);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_GT(results.at("Ob-Label").accuracy, 0.60);
  EXPECT_GT(results.at("Ob-MALT").accuracy, 0.70);
  EXPECT_GT(results.at("Ob-NN").accuracy, 0.60);
  EXPECT_GT(results.at("Ob-BlindMI").accuracy, 0.55);
  EXPECT_GT(results.at("Pb-Bayes").accuracy, 0.65);
}

TEST(ExternalAttacks, InternalPassiveSeparatesWithSnapshots) {
  OverfitSetup s = BuildOverfitSetup();
  const std::vector<nn::Parameter*> params = s.target->Parameters();
  std::vector<fl::ModelState> snaps;
  snaps.push_back(fl::ModelState::From(params));
  const nn::ModelSpec spec = s.bundle.spec;
  attacks::InternalPassive passive(
      std::move(snaps), [spec](const fl::ModelState& st) {
        auto model = nn::MakeClassifier(spec);
        const std::vector<nn::Parameter*> p = model->Parameters();
        st.ApplyTo(p);
        struct Owning : fl::QueryModel {
          std::unique_ptr<nn::Classifier> m;
          explicit Owning(std::unique_ptr<nn::Classifier> mm)
              : m(std::move(mm)) {}
          Tensor Logits(const Tensor& x) override {
            return fl::LogitsFor(*m, x);
          }
          std::size_t NumClasses() const override { return m->num_classes(); }
        };
        return std::make_unique<Owning>(std::move(model));
      });
  // Attacker calibrates on one half, attacks the other half.
  passive.Calibrate(s.bundle.train.Slice(0, 100), s.bundle.test.Slice(0, 100));
  const std::vector<float> sm = passive.Score(s.bundle.train.Slice(100, 200));
  const std::vector<float> sn = passive.Score(s.bundle.test.Slice(100, 200));
  const metrics::BinaryMetrics m = attacks::ScoreToMetrics(sm, sn, 0.5f);
  EXPECT_GT(m.accuracy, 0.70);
}

TEST(ExternalAttacks, PassiveScoreRequiresCalibration) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {10};
  spec.num_classes = 2;
  spec.width = 2;
  auto model = nn::MakeClassifier(spec);
  const std::vector<nn::Parameter*> p = model->Parameters();
  std::vector<fl::ModelState> snaps{fl::ModelState::From(p)};
  attacks::InternalPassive passive(
      std::move(snaps), [spec](const fl::ModelState& st) {
        auto m = nn::MakeClassifier(spec);
        const std::vector<nn::Parameter*> pp = m->Parameters();
        st.ApplyTo(pp);
        struct Owning : fl::QueryModel {
          std::unique_ptr<nn::Classifier> m;
          explicit Owning(std::unique_ptr<nn::Classifier> mm)
              : m(std::move(mm)) {}
          Tensor Logits(const Tensor& x) override {
            return fl::LogitsFor(*m, x);
          }
          std::size_t NumClasses() const override { return m->num_classes(); }
        };
        return std::make_unique<Owning>(std::move(m));
      });
  Rng rng(1);
  data::Dataset ds = testing::TwoBlobs(10, 10, rng);
  EXPECT_THROW(passive.Score(ds), CheckError);
}

TEST(ExternalAttacks, PbBayesRequiresWhiteBoxAccess) {
  // A cheap untrained setup suffices: the contract check fires before any
  // statistics are used.
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {200};
  spec.num_classes = 50;
  spec.width = 4;
  auto shadow = nn::MakeClassifier(spec);
  auto target = nn::MakeClassifier(spec);
  data::SyntheticPurchase gen(data::Purchase50Like());
  Rng rng(2);
  const data::Dataset m = gen.Sample(20, rng);
  const data::Dataset n = gen.Sample(20, rng);
  fl::ClassifierQuery shadow_q(*shadow);
  attacks::PbBayes attack(shadow_q, m, n);
  class BlackBox : public fl::QueryModel {
   public:
    explicit BlackBox(nn::Classifier& mm) : inner_(mm) {}
    Tensor Logits(const Tensor& x) override { return inner_.Logits(x); }
    std::size_t NumClasses() const override { return inner_.NumClasses(); }

   private:
    fl::ClassifierQuery inner_;
  };
  BlackBox bb(*target);
  EXPECT_THROW(attack.Score(bb, n), CheckError);
  fl::ClassifierQuery wb(*target);
  EXPECT_EQ(attack.Score(wb, n).size(), n.size());
}

TEST(AdaptiveHelpers, SeedWithSimilarityHitsTarget) {
  Rng rng(8);
  Tensor ref({64});
  for (float& v : ref.flat()) v = rng.Uniform();
  for (double target : {0.3, 0.6, 0.9}) {
    const Tensor s = attacks::SeedWithSimilarity(ref, target, rng);
    EXPECT_NEAR(metrics::Ssim(ref, s), target, 0.08) << "target " << target;
  }
}

TEST(AdaptiveHelpers, InverseMaltScoresAreLosses) {
  const std::vector<float> ml = {0.1f, 0.2f};
  const std::vector<float> nl = {2.0f, 3.0f};
  attacks::InverseMalt attack(ml, nl);
  // Threshold calibrated so that "high loss" side is member per the inverse
  // hypothesis; on a normal (non-CIP) model that hypothesis inverts truth.
  EXPECT_GT(attack.Threshold(), 0.0f);
}

TEST(InternalActive, AscentRaisesTargetLoss) {
  Rng rng(9);
  data::SyntheticPurchase gen(data::Purchase50Like());
  data::Dataset targets = gen.Sample(40, rng);
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {200};
  spec.num_classes = 50;
  spec.width = 4;
  spec.seed = 61;
  auto model = nn::MakeClassifier(spec);
  const std::vector<nn::Parameter*> params = model->Parameters();
  const fl::ModelState before = fl::ModelState::From(params);

  const attacks::AscentFn ascent =
      attacks::MakeClassifierAscent(spec, /*lr=*/0.05f, /*steps=*/5);
  const fl::ModelState after = ascent(before, targets);

  auto probe = nn::MakeClassifier(spec);
  const std::vector<nn::Parameter*> pp = probe->Parameters();
  before.ApplyTo(pp);
  const double loss_before =
      Mean(std::span<const float>(fl::PerSampleLosses(*probe, targets)));
  after.ApplyTo(pp);
  const double loss_after =
      Mean(std::span<const float>(fl::PerSampleLosses(*probe, targets)));
  EXPECT_GT(loss_after, loss_before);
}

}  // namespace
}  // namespace cip
