// Batched serving engine tests: fused-batch bit-identity against the
// per-request and eval-helper paths, the t-cache's hit/miss/stale/eviction
// semantics over a cold ClientStore, hostile-request rejection before any
// batch-arena mutation, and the kQuery/kLogits wire front door answering
// bit-identically to an in-process ServeEngine (the acceptance claim of the
// serving PR).
//
// Model scale note: the fleet here is a tiny MLP, so every GEMM on the path
// stays in the streaming (non-blocked) regime regardless of how many
// requests fuse into a chunk — which upgrades the fused-vs-single checks
// from tolerance comparisons to memcmp bit-identity (docs/SERVING.md
// "Determinism" works out why batch composition is otherwise only
// tolerance-stable across GEMM regimes).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/cip_client.h"
#include "core/cip_model.h"
#include "data/partition.h"
#include "fl/client_factory.h"
#include "fl/client_store.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/serve_engine.h"
#include "testing_util.h"

namespace cip {
namespace {

constexpr std::size_t kDim = 4;
constexpr std::size_t kClasses = 2;

/// CIP client specs over a tiny MLP: client k's secret t is its
/// construction-time random init (no training rounds needed to serve).
std::vector<fl::ClientSpec> CipSpecs(std::size_t num_clients) {
  Rng rng(5);
  data::Dataset full = testing::TwoBlobs(8 * num_clients, kDim, rng);
  const auto shards = data::PartitionIid(full, num_clients, rng);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kCip;
  proto.model.arch = nn::Arch::kMLP;
  proto.model.input_shape = {kDim};
  proto.model.num_classes = kClasses;
  proto.model.width = 6;
  proto.model.seed = 77;
  proto.train.lr = 0.1f;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = shards[k];
    spec.seed = 50 + k;
    specs.push_back(std::move(spec));
  }
  return specs;
}

Tensor RandomInputs(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({rows, kDim});
  for (float& v : x.flat()) v = rng.Normal();
  return x;
}

bool SameBits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// The serving deployment under test: a shared dual-channel model (the
/// global), a cold store of CIP clients holding the per-client secrets, and
/// an engine over both.
struct Deployment {
  std::unique_ptr<core::CipClient> global;  // owns the served model
  fl::ClientStore store;
  serve::ServeOptions opts;

  explicit Deployment(std::size_t num_clients,
                      std::size_t max_batch_rows = 128,
                      std::size_t t_cache_entries = 64)
      : global(fl::MakeCipClient(CipSpecs(1)[0])),
        store(fl::MakeClientStore(CipSpecs(num_clients))) {
    opts.blend = global->config().blend;
    opts.max_batch_rows = max_batch_rows;
    opts.t_cache_entries = t_cache_entries;
  }

  serve::ServeEngine Engine() {
    return serve::ServeEngine(global->model(), store, opts);
  }

  /// Client k's current t, read non-destructively (factory construction for
  /// never-participated clients — the same path the engine's cache takes).
  Tensor TOf(std::size_t k) {
    fl::ClientState st;
    if (store.PeekState(k, st)) return std::move(st.tensors.front());
    const fl::ClientStore::Handle h = store.Materialize(k);
    st = h->ExportState();
    return std::move(st.tensors.front());
  }
};

TEST(ServeEngine, OptionsValidationRejectsOutOfDomain) {
  Deployment dep(2);
  {
    serve::ServeOptions bad = dep.opts;
    bad.max_batch_rows = 0;
    EXPECT_THROW(serve::ServeEngine(dep.global->model(), dep.store, bad),
                 CheckError);
  }
  {
    serve::ServeOptions bad = dep.opts;
    bad.t_cache_entries = 0;
    EXPECT_THROW(serve::ServeEngine(dep.global->model(), dep.store, bad),
                 CheckError);
  }
  {
    serve::ServeOptions bad = dep.opts;
    bad.blend.alpha = 1.0f;
    EXPECT_THROW(serve::ServeEngine(dep.global->model(), dep.store, bad),
                 CheckError);
  }
  {
    serve::ServeOptions bad = dep.opts;
    bad.blend.clip_lo = bad.blend.clip_hi;
    EXPECT_THROW(serve::ServeEngine(dep.global->model(), dep.store, bad),
                 CheckError);
  }
}

TEST(ServeEngine, ServeMatchesDualLogitsWithTheClientsT) {
  // The engine's answer for (k, x) must be exactly the eval helper's
  // DualLogits(model, x, t_k) — same blend arithmetic, same forward.
  Deployment dep(3);
  serve::ServeEngine engine = dep.Engine();
  for (std::size_t k = 0; k < 3; ++k) {
    const Tensor x = RandomInputs(4, 100 + k);
    const Tensor expected =
        core::DualLogits(dep.global->model(), x, dep.TOf(k), dep.opts.blend);
    const Tensor& got = engine.Serve(k, x);
    EXPECT_TRUE(SameBits(got, expected)) << "client " << k;
  }
  EXPECT_EQ(engine.stats().queries, 3u);
  EXPECT_EQ(engine.stats().rows, 12u);
  EXPECT_EQ(engine.stats().t_misses, 3u);
}

TEST(ServeEngine, FusedBatchBitIdenticalToSingleRequests) {
  // Many clients' rows fused into one forward must answer every request
  // with the same bits as serving each request alone (streaming-GEMM model,
  // see the file comment).
  Deployment dep(3);
  serve::ServeEngine fused = dep.Engine();
  serve::ServeEngine single = dep.Engine();
  const std::vector<std::size_t> rows = {1, 5, 2};
  std::vector<Tensor> inputs;
  std::vector<std::size_t> offsets;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    inputs.push_back(RandomInputs(rows[k], 200 + k));
    offsets.push_back(fused.Enqueue(k, inputs.back()));
  }
  const Tensor& logits = fused.Flush();
  ASSERT_EQ(logits.dim(0), 8u);
  EXPECT_EQ(fused.stats().batches, 1u);  // 8 rows fit one 128-row chunk
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Tensor got = logits.Slice(offsets[k], offsets[k] + rows[k]);
    const Tensor& expected = single.Serve(k, inputs[k]);
    EXPECT_TRUE(SameBits(got, expected)) << "request " << k;
  }
}

TEST(ServeEngine, FlushRepeatsBitIdentically) {
  // Same request sequence, same answer bits — serving is deterministic.
  Deployment dep(2);
  serve::ServeEngine engine = dep.Engine();
  const Tensor x0 = RandomInputs(3, 7);
  const Tensor x1 = RandomInputs(2, 8);
  engine.Enqueue(0, x0);
  engine.Enqueue(1, x1);
  const Tensor first = engine.Flush();  // copy: the arena is reused
  engine.Enqueue(0, x0);
  engine.Enqueue(1, x1);
  const Tensor& second = engine.Flush();
  EXPECT_TRUE(SameBits(first, second));
}

TEST(ServeEngine, GreedyChunkingPacksWholeRequests) {
  Deployment dep(4, /*max_batch_rows=*/4);
  serve::ServeEngine engine = dep.Engine();
  EXPECT_EQ(engine.Enqueue(0, RandomInputs(3, 1)), 0u);
  EXPECT_EQ(engine.Enqueue(1, RandomInputs(3, 2)), 3u);
  EXPECT_EQ(engine.Enqueue(2, RandomInputs(1, 3)), 6u);
  EXPECT_EQ(engine.Enqueue(3, RandomInputs(6, 4)), 7u);  // oversized alone
  EXPECT_EQ(engine.pending_rows(), 13u);
  const Tensor& logits = engine.Flush();
  EXPECT_EQ(logits.dim(0), 13u);
  EXPECT_EQ(logits.dim(1), kClasses);
  // Chunks: [req0] (3+3 > 4), [req1, req2] (3+1), [req3] (6 > 4, never
  // split) — requests never straddle a forward.
  EXPECT_EQ(engine.stats().batches, 3u);
  EXPECT_EQ(engine.pending_rows(), 0u);
}

TEST(ServeEngine, TCacheCountsHitsMissesAndLruEvictions) {
  Deployment dep(3, /*max_batch_rows=*/128, /*t_cache_entries=*/2);
  serve::ServeEngine engine = dep.Engine();
  const Tensor x = RandomInputs(1, 9);
  engine.Serve(0, x);
  engine.Serve(0, x);
  EXPECT_EQ(engine.stats().t_misses, 1u);
  EXPECT_EQ(engine.stats().t_hits, 1u);
  engine.Serve(1, x);
  engine.Serve(2, x);  // capacity 2: client 0 (LRU) falls out
  EXPECT_EQ(engine.stats().t_evictions, 1u);
  engine.Serve(0, x);  // evicted -> must re-read the store
  EXPECT_EQ(engine.stats().t_misses, 4u);
}

TEST(ServeEngine, StoreStateChangeIsPickedUpAsStale) {
  Deployment dep(2);
  serve::ServeEngine engine = dep.Engine();
  const Tensor x = RandomInputs(2, 11);
  const Tensor before = engine.Serve(0, x);  // copy

  // The client trains (simulated: its exported t changes) and its record
  // re-enters the store -> state_version moves -> the cached t is stale.
  fl::ClientState st;
  {
    const fl::ClientStore::Handle h = dep.store.Materialize(0);
    st = h->ExportState();
  }
  for (std::size_t i = 0; i < st.tensors.front().size(); ++i) {
    st.tensors.front()[i] += 1.0f;
  }
  dep.store.RestoreStates({{0, st}});

  const Tensor& after = engine.Serve(0, x);
  EXPECT_EQ(engine.stats().t_stale, 1u);
  EXPECT_FALSE(SameBits(before, after));
  const Tensor expected = core::DualLogits(
      dep.global->model(), x, st.tensors.front(), dep.opts.blend);
  EXPECT_TRUE(SameBits(after, expected));
  // And the refreshed entry is a plain hit on the next query.
  engine.Serve(0, x);
  EXPECT_EQ(engine.stats().t_stale, 1u);
  EXPECT_EQ(engine.stats().t_hits, 1u);
}

TEST(ServeEngine, InvalidateClientForcesAStoreReRead) {
  Deployment dep(2);
  serve::ServeEngine engine = dep.Engine();
  const Tensor x = RandomInputs(1, 13);
  engine.Serve(0, x);
  engine.InvalidateClient(0);
  engine.Serve(0, x);
  EXPECT_EQ(engine.stats().t_misses, 2u);
  EXPECT_EQ(engine.stats().t_hits, 0u);
}

TEST(ServeEngine, HostileRequestsRejectedBeforeTouchingTheBatch) {
  Deployment dep(2);
  serve::ServeEngine engine = dep.Engine();
  // Unknown client id.
  EXPECT_THROW(engine.Enqueue(2, RandomInputs(1, 1)), CheckError);
  // Rank-1 input (no batch dimension).
  EXPECT_THROW(engine.Enqueue(0, Tensor({kDim})), CheckError);
  // Pin the geometry, then present a different sample shape.
  engine.Serve(0, RandomInputs(1, 1));
  EXPECT_THROW(engine.Enqueue(0, Tensor({1, kDim + 1})), CheckError);
  EXPECT_THROW(engine.Enqueue(0, Tensor({1, kDim, 1})), CheckError);
  // Nothing above left rows pending.
  EXPECT_EQ(engine.pending_rows(), 0u);
}

// ---- the wire front door ---------------------------------------------------

/// Step `server` enough poll cycles to accept a fresh connection, read the
/// query the client already SendAll'd, flush the coalesced answer, and reap
/// drops — then block-read one reply frame off the client socket. Returns
/// nullopt when the server closed the connection instead of answering.
std::optional<net::Frame> ReadReply(net::CipServer& server, net::Socket& sock,
                                    std::size_t steps = 4) {
  // Cycle 1 accepts; cycle 2 reads + flushes; the extras absorb straddled
  // reads. A dropped connection is closed by Reap within the same cycles,
  // so the RecvAll below never blocks: it sees either a frame or EOF.
  for (std::size_t i = 0; i < steps; ++i) server.Step(0);
  std::string header(net::kFrameHeaderBytes, '\0');
  if (!net::RecvAll(sock, std::span<char>(header.data(), header.size()))) {
    return std::nullopt;
  }
  std::uint64_t len = 0;  // payload_len: the header's trailing LE u64
  for (std::size_t b = 0; b < 8; ++b) {
    len |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(header[12 + b]))
           << (8 * b);
  }
  std::string payload(len, '\0');
  if (len > 0 &&
      !net::RecvAll(sock, std::span<char>(payload.data(), payload.size()))) {
    return std::nullopt;
  }
  net::FrameReader reader;
  reader.Feed(header);
  reader.Feed(payload);
  return reader.Next();
}

net::CipServer MakeServingServer(std::size_t fleet_size,
                                 std::size_t max_connections = 16) {
  net::AsyncRoundEngine::Options eng;
  eng.total_rounds = 1;
  eng.fleet_size = fleet_size;
  eng.quorum = fleet_size;
  net::ServerOptions sopts;
  sopts.max_connections = max_connections;
  sopts.drain_fleet = false;
  return net::CipServer(fl::ModelState(std::vector<float>{0.0f}), eng, sopts);
}

TEST(ServeWire, QueryRoundTripBitIdenticalToInProcessServe) {
  Deployment dep(3);
  serve::ServeEngine wire_engine = dep.Engine();
  serve::ServeEngine local_engine = dep.Engine();

  net::CipServer server = MakeServingServer(3);
  server.EnableServing(&wire_engine);
  server.Listen();

  const Tensor x = RandomInputs(4, 21);
  const Tensor expected = local_engine.Serve(1, x);  // copy

  net::Socket sock = net::ConnectTcp("127.0.0.1", server.port());
  net::QueryMsg q;
  q.client_id = 1;
  q.inputs = x;
  const std::string frame = net::EncodeQuery(q);
  ASSERT_TRUE(net::SendAll(sock,
                           std::span<const char>(frame.data(), frame.size())));
  const auto reply = ReadReply(server, sock);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, net::MsgType::kLogits);
  const net::LogitsMsg logits = net::DecodeLogits(reply->payload);
  EXPECT_TRUE(SameBits(logits.logits, expected));
  EXPECT_EQ(server.stats().queries_answered, 1u);
  EXPECT_EQ(wire_engine.stats().queries, 1u);
}

TEST(ServeWire, QueriesFromManyConnectionsFuseIntoOneFlush) {
  Deployment dep(3);
  serve::ServeEngine wire_engine = dep.Engine();
  serve::ServeEngine local_engine = dep.Engine();

  net::CipServer server = MakeServingServer(3);
  server.EnableServing(&wire_engine);
  server.Listen();

  std::vector<net::Socket> socks;
  std::vector<Tensor> inputs;
  for (std::size_t k = 0; k < 3; ++k) {
    socks.push_back(net::ConnectTcp("127.0.0.1", server.port()));
    inputs.push_back(RandomInputs(2 + k, 30 + k));
    net::QueryMsg q;
    q.client_id = k;
    q.inputs = inputs.back();
    const std::string frame = net::EncodeQuery(q);
    ASSERT_TRUE(net::SendAll(
        socks.back(), std::span<const char>(frame.data(), frame.size())));
  }
  for (std::size_t k = 0; k < 3; ++k) {
    const auto reply = ReadReply(server, socks[k]);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, net::MsgType::kLogits);
    const net::LogitsMsg logits = net::DecodeLogits(reply->payload);
    const Tensor& expected = local_engine.Serve(k, inputs[k]);
    EXPECT_TRUE(SameBits(logits.logits, expected)) << "connection " << k;
  }
  EXPECT_EQ(server.stats().queries_answered, 3u);
  // All three queries arrived before the first Step, so they fused into at
  // most two Flushes (connection reads can straddle one poll cycle) — and
  // the bits above prove fusion does not change any client's answer.
  EXPECT_LE(wire_engine.stats().batches, 2u);
}

TEST(ServeWire, HostileQueryDropsTheConnectionNotTheServer) {
  Deployment dep(2);
  serve::ServeEngine engine = dep.Engine();
  net::CipServer server = MakeServingServer(2);
  server.EnableServing(&engine);
  server.Listen();

  // Out-of-fleet client id: structurally valid frame, rejected by Enqueue.
  net::Socket bad = net::ConnectTcp("127.0.0.1", server.port());
  net::QueryMsg q;
  q.client_id = 99;
  q.inputs = RandomInputs(1, 40);
  const std::string frame = net::EncodeQuery(q);
  ASSERT_TRUE(net::SendAll(bad,
                           std::span<const char>(frame.data(), frame.size())));
  EXPECT_FALSE(ReadReply(server, bad).has_value());  // dropped, no reply
  EXPECT_EQ(server.stats().protocol_errors, 1u);

  // The server still answers honest peers afterwards.
  net::Socket good = net::ConnectTcp("127.0.0.1", server.port());
  net::QueryMsg ok;
  ok.client_id = 0;
  ok.inputs = RandomInputs(1, 41);
  const std::string frame2 = net::EncodeQuery(ok);
  ASSERT_TRUE(net::SendAll(
      good, std::span<const char>(frame2.data(), frame2.size())));
  const auto reply = ReadReply(server, good);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MsgType::kLogits);
}

TEST(ServeWire, QueryWithoutAServingEngineIsAProtocolError) {
  net::CipServer server = MakeServingServer(2);  // EnableServing never called
  server.Listen();
  net::Socket sock = net::ConnectTcp("127.0.0.1", server.port());
  net::QueryMsg q;
  q.client_id = 0;
  q.inputs = RandomInputs(1, 50);
  const std::string frame = net::EncodeQuery(q);
  ASSERT_TRUE(net::SendAll(sock,
                           std::span<const char>(frame.data(), frame.size())));
  EXPECT_FALSE(ReadReply(server, sock).has_value());
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

}  // namespace
}  // namespace cip
