// Checkpoint/resume tests: format round-trips, adversarial input (bad
// magic/version, truncation at every byte, hostile counts), optimizer and
// client state export/restore, and the headline invariant — crash at round k
// + resume is bit-identical to an uninterrupted run, across worker budgets,
// with faults enabled, for Legacy and CIP fleets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/client_factory.h"
#include "fl/serialize.h"
#include "fl/server.h"
#include "nn/module.h"
#include "optim/optimizer.h"
#include "testing_util.h"

namespace cip {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

fl::Checkpoint SampleCheckpoint() {
  fl::Checkpoint ckpt;
  ckpt.run_seed = 0xDEADBEEFCAFEBABEull;
  ckpt.total_rounds = 12;
  ckpt.next_round = 5;
  ckpt.telemetry_rounds = 4;
  ckpt.global = fl::ModelState(std::vector<float>{1.0f, -2.5f, 3.25f});
  fl::ClientState c0;
  Tensor t({2, 2});
  t[0] = 0.5f;
  t[3] = -7.0f;
  c0.tensors.push_back(t);
  c0.tensors.push_back(Tensor({3}));
  ckpt.client_states.emplace_back(0, std::move(c0));
  fl::ClientState c3;  // sparse: ids need not be contiguous
  c3.tensors.push_back(Tensor({2}, 1.5f));
  ckpt.client_states.emplace_back(3, std::move(c3));
  ckpt.retries.push_back(fl::RetryState{1, 2, 7});
  return ckpt;
}

std::string Serialize(const fl::Checkpoint& ckpt) {
  std::stringstream ss;
  fl::SaveCheckpoint(ckpt, ss);
  return ss.str();
}

void ExpectSameCheckpoint(const fl::Checkpoint& a, const fl::Checkpoint& b) {
  EXPECT_EQ(a.run_seed, b.run_seed);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.next_round, b.next_round);
  EXPECT_EQ(a.telemetry_rounds, b.telemetry_rounds);
  ASSERT_EQ(a.global.size(), b.global.size());
  for (std::size_t i = 0; i < a.global.size(); ++i) {
    EXPECT_EQ(a.global.values()[i], b.global.values()[i]);
  }
  ASSERT_EQ(a.client_states.size(), b.client_states.size());
  for (std::size_t k = 0; k < a.client_states.size(); ++k) {
    EXPECT_EQ(a.client_states[k].first, b.client_states[k].first);
    const fl::ClientState& ca = a.client_states[k].second;
    const fl::ClientState& cb = b.client_states[k].second;
    ASSERT_EQ(ca.tensors.size(), cb.tensors.size());
    for (std::size_t j = 0; j < ca.tensors.size(); ++j) {
      const Tensor& ta = ca.tensors[j];
      const Tensor& tb = cb.tensors[j];
      ASSERT_TRUE(ta.SameShape(tb));
      for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
    }
  }
  ASSERT_EQ(a.retries.size(), b.retries.size());
  for (std::size_t i = 0; i < a.retries.size(); ++i) {
    EXPECT_EQ(a.retries[i].client, b.retries[i].client);
    EXPECT_EQ(a.retries[i].attempts, b.retries[i].attempts);
    EXPECT_EQ(a.retries[i].next_round, b.retries[i].next_round);
  }
}

// ---- format round-trips -----------------------------------------------------

TEST(Checkpoint, StreamRoundTripPreservesEveryField) {
  const fl::Checkpoint ckpt = SampleCheckpoint();
  std::stringstream ss(Serialize(ckpt));
  ExpectSameCheckpoint(ckpt, fl::LoadCheckpoint(ss));
}

TEST(Checkpoint, FileRoundTrip) {
  const std::string path = TempPath("ckpt_roundtrip.bin");
  const fl::Checkpoint ckpt = SampleCheckpoint();
  fl::SaveCheckpointFile(ckpt, path);
  ExpectSameCheckpoint(ckpt, fl::LoadCheckpointFile(path));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(fl::LoadCheckpointFile(TempPath("no_such_checkpoint.bin")),
               CheckError);
}

// ---- adversarial input ------------------------------------------------------

TEST(Checkpoint, RejectsWrongMagic) {
  std::string bytes = Serialize(SampleCheckpoint());
  bytes[0] ^= 0x5A;
  std::stringstream ss(bytes);
  EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError);
}

TEST(Checkpoint, RejectsUnknownVersion) {
  std::string bytes = Serialize(SampleCheckpoint());
  bytes[4] ^= 0x7F;  // version field follows the 4-byte magic
  std::stringstream ss(bytes);
  EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError);
}

TEST(Checkpoint, RejectsTruncationAtEveryByte) {
  const std::string bytes = Serialize(SampleCheckpoint());
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream ss(bytes.substr(0, len));
    EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError)
        << "prefix of " << len << " bytes parsed without error";
  }
  // The full stream, untouched, still parses.
  std::stringstream ss(bytes);
  EXPECT_NO_THROW(fl::LoadCheckpoint(ss));
}

TEST(Checkpoint, RejectsHostileClientCount) {
  // Hand-craft a header whose client count would allocate absurd memory;
  // the loader must throw on the count itself, before sizing anything.
  std::stringstream ss;
  fl::wire::WriteU32(ss, 0x4349504B);  // checkpoint magic "CIPK"
  fl::wire::WriteU32(ss, 1);           // version
  fl::wire::WriteU64(ss, 9);           // run_seed
  fl::wire::WriteU64(ss, 10);          // total_rounds
  fl::wire::WriteU64(ss, 1);           // next_round
  fl::wire::WriteU64(ss, 0);           // telemetry_rounds
  fl::SaveModelState(fl::ModelState(std::vector<float>{1.0f}), ss);
  fl::wire::WriteU64(ss, std::uint64_t{1} << 60);  // hostile client count
  EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError);
}

TEST(Checkpoint, LoadsV1DenseFormatAsSparse) {
  // A v1 stream is dense: entry i belongs to client i, and stateless clients
  // carry empty entries. The loader accepts it and drops the empties.
  std::stringstream ss;
  fl::wire::WriteU32(ss, 0x4349504B);
  fl::wire::WriteU32(ss, 1);   // v1
  fl::wire::WriteU64(ss, 9);   // run_seed
  fl::wire::WriteU64(ss, 10);  // total_rounds
  fl::wire::WriteU64(ss, 3);   // next_round
  fl::wire::WriteU64(ss, 2);   // telemetry_rounds
  fl::SaveModelState(fl::ModelState(std::vector<float>{4.0f}), ss);
  fl::wire::WriteU64(ss, 3);  // dense fleet of three
  fl::wire::WriteU64(ss, 0);  // client 0: stateless
  fl::wire::WriteU64(ss, 1);  // client 1: one tensor
  fl::SaveTensor(Tensor({2}, 2.5f), ss);
  fl::wire::WriteU64(ss, 0);  // client 2: stateless
  fl::wire::WriteU64(ss, 0);  // no retries
  const fl::Checkpoint ckpt = fl::LoadCheckpoint(ss);
  ASSERT_EQ(ckpt.client_states.size(), 1u);
  EXPECT_EQ(ckpt.client_states[0].first, 1u);
  ASSERT_EQ(ckpt.client_states[0].second.tensors.size(), 1u);
  EXPECT_EQ(ckpt.client_states[0].second.tensors[0][1], 2.5f);
}

TEST(Checkpoint, RejectsUnsortedV2ClientIds) {
  fl::Checkpoint ckpt = SampleCheckpoint();
  std::swap(ckpt.client_states[0], ckpt.client_states[1]);  // id 3 before 0
  std::stringstream ss(Serialize(ckpt));
  EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError);
}

TEST(Checkpoint, RejectsHostileV2ClientId) {
  fl::Checkpoint ckpt = SampleCheckpoint();
  ckpt.client_states[1].first = std::uint64_t{1} << 40;  // >= the id ceiling
  std::stringstream ss(Serialize(ckpt));
  EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError);
}

TEST(Checkpoint, RejectsHostileRoundCursor) {
  std::stringstream ss;
  fl::wire::WriteU32(ss, 0x4349504B);
  fl::wire::WriteU32(ss, 1);
  fl::wire::WriteU64(ss, 9);
  fl::wire::WriteU64(ss, 10);  // total_rounds
  fl::wire::WriteU64(ss, 12);  // next_round past total_rounds + 1
  fl::wire::WriteU64(ss, 0);
  fl::SaveModelState(fl::ModelState(std::vector<float>{1.0f}), ss);
  fl::wire::WriteU64(ss, 0);
  fl::wire::WriteU64(ss, 0);
  EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError);
}

TEST(Checkpoint, RejectsCorruptEmbeddedLengthPrefix) {
  // Corrupt the ModelState length prefix inside an otherwise valid stream:
  // it sits right after the fixed 40-byte checkpoint header and the 8-byte
  // ModelState magic+version.
  std::string bytes = Serialize(SampleCheckpoint());
  const std::size_t length_offset = 40 + 8;
  ASSERT_GT(bytes.size(), length_offset + 8);
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[length_offset + i] = static_cast<char>(0xFF);
  }
  std::stringstream ss(bytes);
  EXPECT_THROW(fl::LoadCheckpoint(ss), CheckError);
}

// ---- optimizer state export/restore ----------------------------------------

std::vector<float> StepTwice(optim::Optimizer& opt, nn::Parameter& param) {
  std::vector<float> out;
  for (int step = 0; step < 2; ++step) {
    for (std::size_t i = 0; i < param.grad.size(); ++i) {
      param.grad[i] = 0.25f * static_cast<float>(i + step + 1);
    }
    nn::Parameter* p = &param;
    opt.Step(std::span<nn::Parameter* const>(&p, 1));
  }
  out.assign(param.value.flat().begin(), param.value.flat().end());
  return out;
}

TEST(OptimizerState, SgdRestoreReproducesStepsBitIdentically) {
  nn::Parameter warm("w", Tensor({4}));
  optim::Sgd a(0.1f, 0.9f);
  StepTwice(a, warm);  // build up momentum

  optim::Sgd b(0.1f, 0.9f);
  b.RestoreState(a.ExportState());
  nn::Parameter wa("w", warm.value);
  nn::Parameter wb("w", warm.value);
  EXPECT_EQ(StepTwice(a, wa), StepTwice(b, wb));
}

TEST(OptimizerState, AdamRestoreReproducesStepsBitIdentically) {
  nn::Parameter warm("w", Tensor({4}));
  optim::Adam a(0.01f);
  StepTwice(a, warm);  // advance moments and the step counter

  optim::Adam b(0.01f);
  b.RestoreState(a.ExportState());
  nn::Parameter wa("w", warm.value);
  nn::Parameter wb("w", warm.value);
  // Bias correction depends on the step counter, so a counter lost in the
  // snapshot would diverge here immediately.
  EXPECT_EQ(StepTwice(a, wa), StepTwice(b, wb));
}

TEST(OptimizerState, RestoreRejectsMismatchedSnapshots) {
  optim::Adam adam(0.01f);
  EXPECT_THROW(adam.RestoreState({Tensor({2}), Tensor({2})}), CheckError);
  nn::Parameter warm("w", Tensor({4}));
  optim::Sgd sgd(0.1f, 0.9f);
  StepTwice(sgd, warm);
  // An Sgd snapshot (no step counter) must not restore into Adam.
  EXPECT_THROW(adam.RestoreState(sgd.ExportState()), CheckError);
}

// ---- client state export/restore -------------------------------------------

// Minimal stateless client relying on the ClientBase defaults.
class StatelessClient : public fl::ClientBase {
 public:
  void SetGlobal(const fl::ModelState& /*global*/) override {}
  fl::ModelState TrainLocal(fl::RoundContext /*ctx*/) override {
    return fl::ModelState(std::vector<float>{1.0f});
  }
  double EvalAccuracy(const data::Dataset& /*data*/) override { return 0.0; }
  float LastTrainLoss() const override { return 0.0f; }
  const data::Dataset& LocalData() const override { return data_; }

 private:
  data::Dataset data_;
};

TEST(ClientState, DefaultRejectsNonEmptySnapshot) {
  StatelessClient client;
  EXPECT_EQ(client.ExportState().tensors.size(), 0u);
  EXPECT_NO_THROW(client.RestoreState(fl::ClientState{}));
  fl::ClientState wrong;
  wrong.tensors.push_back(Tensor({1}));
  EXPECT_THROW(client.RestoreState(wrong), CheckError);
}

data::Dataset ClampedBlobs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  data::Dataset full = testing::TwoBlobs(n, 4, rng);
  for (float& v : full.inputs.flat()) {
    v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  }
  return full;
}

nn::ModelSpec MlpSpec() {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {4};
  spec.num_classes = 2;
  spec.width = 6;
  spec.seed = 19;
  return spec;
}

TEST(ClientState, LegacyClientRestoreReproducesTrainingBitIdentically) {
  const data::Dataset data = ClampedBlobs(40, 77);
  fl::TrainConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.9f;

  fl::LegacyClient a(MlpSpec(), data, cfg, 5);
  const fl::ModelState init = fl::InitialState(MlpSpec());
  a.SetGlobal(init);
  a.TrainLocal(fl::MakeRoundContext(1, 1, 0, 1.0f));  // builds momentum

  fl::LegacyClient b(MlpSpec(), data, cfg, 5);
  b.RestoreState(a.ExportState());
  // Same broadcast + same round stream -> the restored client must produce
  // the exact update of the original.
  const fl::ModelState broadcast = fl::InitialState(MlpSpec());
  a.SetGlobal(broadcast);
  b.SetGlobal(broadcast);
  const fl::ModelState ua = a.TrainLocal(fl::MakeRoundContext(1, 2, 0, 1.0f));
  const fl::ModelState ub = b.TrainLocal(fl::MakeRoundContext(1, 2, 0, 1.0f));
  ASSERT_EQ(ua.size(), ub.size());
  for (std::size_t i = 0; i < ua.size(); ++i) {
    EXPECT_EQ(ua.values()[i], ub.values()[i]);
  }
}

TEST(ClientState, CipClientSnapshotCarriesPerturbationFirst) {
  data::SyntheticVision gen(data::ChMnistLike());
  Rng rng(3);
  fl::ClientSpec spec;
  spec.kind = fl::ClientKind::kCip;
  spec.data = gen.Sample(24, rng);
  spec.model.arch = nn::Arch::kResNet;
  spec.model.input_shape = gen.SampleShape();
  spec.model.num_classes = 8;
  spec.model.width = 4;
  spec.model.seed = 9;
  spec.train.lr = 0.02f;
  spec.train.momentum = 0.9f;
  spec.cip.blend.alpha = 0.7f;
  spec.cip.perturb_steps = 2;
  spec.seed = 21;

  const std::unique_ptr<core::CipClient> a = fl::MakeCipClient(spec);
  a->SetGlobal(fl::InitialStateFor(spec));
  a->TrainLocal(fl::MakeRoundContext(2, 1, 0, 1.0f));
  const fl::ClientState snap = a->ExportState();
  ASSERT_FALSE(snap.tensors.empty());
  // Layout contract: the secret perturbation t leads the snapshot.
  EXPECT_EQ(snap.tensors.front().shape(), spec.data.SampleShape());

  const std::unique_ptr<core::CipClient> b = fl::MakeCipClient(spec);
  b->RestoreState(snap);
  const fl::ModelState broadcast = fl::InitialStateFor(spec);
  a->SetGlobal(broadcast);
  b->SetGlobal(broadcast);
  const fl::ModelState ua =
      a->TrainLocal(fl::MakeRoundContext(2, 2, 0, 1.0f));
  const fl::ModelState ub =
      b->TrainLocal(fl::MakeRoundContext(2, 2, 0, 1.0f));
  ASSERT_EQ(ua.size(), ub.size());
  for (std::size_t i = 0; i < ua.size(); ++i) {
    EXPECT_EQ(ua.values()[i], ub.values()[i]);
  }
  // Same kind but different data shape must be rejected, not misapplied.
  fl::ClientState wrong = snap;
  wrong.tensors.front() = Tensor({1, 2, 3});
  EXPECT_THROW(b->RestoreState(wrong), CheckError);
}

// ---- crash-at-k + resume bit-identity --------------------------------------

// Cold store-backed federations: every round round-trips the sampled
// clients through serialized records, and the spill variants force those
// records out to shard files before the crash.
struct Federation {
  fl::ClientStore store;
  fl::ModelState init;
};

Federation MakeLegacyFederation(std::size_t num_clients,
                                fl::StoreOptions sopts = {}) {
  data::Dataset full = ClampedBlobs(40 * num_clients, 31);
  Rng part_rng(32);
  const auto shards = data::PartitionIid(full, num_clients, part_rng);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kLegacy;
  proto.model = MlpSpec();
  proto.train.lr = 0.1f;
  proto.train.momentum = 0.9f;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = shards[k];
    spec.seed = 50 + k;
    specs.push_back(std::move(spec));
  }
  return Federation{fl::MakeClientStore(std::move(specs), std::move(sopts)),
                    fl::InitialStateFor(proto)};
}

Federation MakeCipFederation(std::size_t num_clients,
                             fl::StoreOptions sopts = {}) {
  data::SyntheticVision gen(data::ChMnistLike());
  Rng rng(41);
  const data::Dataset full = gen.Sample(24 * num_clients, rng);
  Rng part_rng(42);
  const auto shards = data::PartitionIid(full, num_clients, part_rng);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kCip;
  proto.model.arch = nn::Arch::kResNet;
  proto.model.input_shape = gen.SampleShape();
  proto.model.num_classes = 8;
  proto.model.width = 4;
  proto.model.seed = 43;
  proto.train.lr = 0.02f;
  proto.train.momentum = 0.9f;
  proto.cip.blend.alpha = 0.7f;
  proto.cip.perturb_steps = 2;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = shards[k];
    spec.seed = 60 + k;
    specs.push_back(std::move(spec));
  }
  return Federation{fl::MakeClientStore(std::move(specs), std::move(sopts)),
                    fl::InitialStateFor(proto)};
}

fl::FlOptions FaultyOptions(std::size_t rounds) {
  fl::FlOptions opts;
  opts.rounds = rounds;
  opts.faults.dropout_rate = 0.2f;
  opts.faults.failure_rate = 0.1f;
  opts.max_retries = 2;
  return opts;
}

void ExpectSameModelState(const fl::ModelState& a, const fl::ModelState& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.values()[i], b.values()[i]);
  }
}

// Runs the full federation straight through, then re-runs it crashing after
// round k (checkpointing as it goes) and resumes from the file; the resumed
// tail must be bit-identical to the straight run. With spill=true every
// store runs under a one-byte hot budget, so all client records sit in
// shard files at crash time and the checkpoint/resume path reads them back
// through the shard loader.
void CheckCrashResumeBitIdentity(bool cip, std::size_t k, std::size_t budget,
                                 bool spill = false) {
  const std::size_t kRounds = cip ? 4 : 6;
  const std::uint64_t run_seed = 91;
  const std::string tag = std::to_string(cip) + "_" + std::to_string(k) +
                          "_" + std::to_string(budget);
  const std::string path = TempPath("resume_" + tag + ".ckpt");
  int fed_count = 0;
  auto make = [&] {
    fl::StoreOptions sopts;
    if (spill) {
      sopts.hot_bytes = 1;  // evict every record straight to disk
      sopts.shard_clients = 2;
      sopts.spill_dir =
          TempPath("spill_" + tag + "_" + std::to_string(fed_count++));
    }
    return cip ? MakeCipFederation(3, std::move(sopts))
               : MakeLegacyFederation(4, std::move(sopts));
  };

  fl::FlOptions opts = FaultyOptions(kRounds);
  opts.max_parallel_clients = budget;

  Federation straight = make();
  fl::FederatedAveraging straight_server(straight.init, opts);
  const fl::FlLog full = straight_server.Run(straight.store, run_seed);

  // Crash: same configuration, but stop (and checkpoint) at round k.
  Federation crashed = make();
  fl::FlOptions crash_opts = opts;
  crash_opts.checkpoint_every = 2;
  crash_opts.checkpoint_path = path;
  crash_opts.stop_after_round = k;
  fl::FederatedAveraging crash_server(crashed.init, crash_opts);
  crash_server.Run(crashed.store, run_seed);

  const fl::Checkpoint ckpt = fl::LoadCheckpointFile(path);
  EXPECT_EQ(ckpt.run_seed, run_seed);
  EXPECT_EQ(ckpt.total_rounds, kRounds);
  EXPECT_EQ(ckpt.next_round, k + 1);
  EXPECT_EQ(ckpt.telemetry_rounds, k);

  // Resume on a *fresh* federation, as a restarted process would.
  Federation resumed = make();
  fl::FederatedAveraging resume_server(resumed.init, opts);
  const fl::FlLog tail = resume_server.Resume(resumed.store, ckpt);

  ExpectSameModelState(full.final_global, tail.final_global);
  ASSERT_EQ(tail.client_losses.size(), kRounds - k);
  for (std::size_t r = 0; r < tail.client_losses.size(); ++r) {
    ASSERT_EQ(tail.client_losses[r].size(), full.client_losses[k + r].size());
    for (std::size_t i = 0; i < tail.client_losses[r].size(); ++i) {
      EXPECT_EQ(tail.client_losses[r][i], full.client_losses[k + r][i]);
    }
  }
  ASSERT_FALSE(tail.telemetry.rounds.empty());
  EXPECT_EQ(tail.telemetry.rounds.front().round, k + 1);
  std::remove(path.c_str());
}

TEST(Resume, BitIdenticalAfterCrashAtRound2SingleWorker) {
  CheckCrashResumeBitIdentity(/*cip=*/false, /*k=*/2, /*budget=*/1);
}

TEST(Resume, BitIdenticalAfterCrashAtRound2FourWorkers) {
  CheckCrashResumeBitIdentity(/*cip=*/false, /*k=*/2, /*budget=*/4);
}

TEST(Resume, BitIdenticalAfterCrashAtRound4SingleWorker) {
  CheckCrashResumeBitIdentity(/*cip=*/false, /*k=*/4, /*budget=*/1);
}

TEST(Resume, BitIdenticalAfterCrashAtRound4FourWorkers) {
  CheckCrashResumeBitIdentity(/*cip=*/false, /*k=*/4, /*budget=*/4);
}

TEST(Resume, BitIdenticalForCipFleet) {
  CheckCrashResumeBitIdentity(/*cip=*/true, /*k=*/2, /*budget=*/4);
}

TEST(Resume, BitIdenticalWhenCrashFindsClientsSpilledToShards) {
  CheckCrashResumeBitIdentity(/*cip=*/false, /*k=*/2, /*budget=*/4,
                              /*spill=*/true);
}

TEST(Resume, BitIdenticalForCipFleetSpilledToShards) {
  CheckCrashResumeBitIdentity(/*cip=*/true, /*k=*/2, /*budget=*/1,
                              /*spill=*/true);
}

TEST(Resume, HarnessResumeFederatedMatchesServerResume) {
  const std::string path = TempPath("harness_resume.ckpt");
  const std::uint64_t run_seed = 93;
  fl::FlOptions opts = FaultyOptions(4);

  Federation straight = MakeLegacyFederation(4);
  fl::FederatedAveraging straight_server(straight.init, opts);
  const fl::FlLog full = straight_server.Run(straight.store, run_seed);

  Federation crashed = MakeLegacyFederation(4);
  fl::FlOptions crash_opts = opts;
  crash_opts.checkpoint_every = 2;
  crash_opts.checkpoint_path = path;
  crash_opts.stop_after_round = 2;
  fl::FederatedAveraging crash_server(crashed.init, crash_opts);
  crash_server.Run(crashed.store, run_seed);

  Federation resumed = MakeLegacyFederation(4);
  const fl::FlLog tail =
      eval::ResumeFederated(resumed.store, resumed.init, path, opts);
  ExpectSameModelState(full.final_global, tail.final_global);
  std::remove(path.c_str());
}

TEST(Resume, RejectsMismatchedRunShape) {
  Federation fed = MakeLegacyFederation(4);
  fl::FlOptions opts = FaultyOptions(4);
  fl::FederatedAveraging server(fed.init, opts);

  fl::Checkpoint ckpt;
  ckpt.run_seed = 1;
  ckpt.total_rounds = 5;  // run was configured for 4
  ckpt.next_round = 2;
  ckpt.global = fed.init;
  EXPECT_THROW(server.Resume(fed.store, ckpt), CheckError);

  ckpt.total_rounds = 4;
  fl::ClientState state;
  state.tensors.push_back(Tensor({1}, 1.0f));
  ckpt.client_states.emplace_back(7, std::move(state));  // fleet is only 4
  EXPECT_THROW(server.Resume(fed.store, ckpt), CheckError);
}

TEST(Resume, CompletedCheckpointRunsNoFurtherRounds) {
  Federation fed = MakeLegacyFederation(4);
  fl::FlOptions opts;
  opts.rounds = 3;
  fl::FederatedAveraging server(fed.init, opts);

  fl::Checkpoint ckpt;
  ckpt.run_seed = 1;
  ckpt.total_rounds = 3;
  ckpt.next_round = 4;  // the run already finished
  ckpt.global = fed.init;
  const fl::FlLog log = server.Resume(fed.store, ckpt);
  EXPECT_TRUE(log.telemetry.rounds.empty());
  ExpectSameModelState(log.final_global, fed.init);
}

}  // namespace
}  // namespace cip
