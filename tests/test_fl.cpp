// Federated-learning substrate tests: model state round-trips, FedAvg
// aggregation, snapshots, the malicious-server tamper hook, and end-to-end
// convergence on a small problem.
#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/query.h"
#include "fl/server.h"
#include "testing_util.h"

namespace cip {
namespace {

nn::ModelSpec MlpSpec(std::size_t dim, std::size_t classes) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {dim};
  spec.num_classes = classes;
  spec.width = 6;
  spec.seed = 77;
  return spec;
}

TEST(ModelState, RoundTrip) {
  const nn::ModelSpec spec = MlpSpec(8, 3);
  auto a = nn::MakeClassifier(spec);
  const auto pa = a->Parameters();
  fl::ModelState state = fl::ModelState::From(pa);
  EXPECT_EQ(state.size(), a->ParameterCount());

  nn::ModelSpec other = spec;
  other.seed = 123;  // different init
  auto b = nn::MakeClassifier(other);
  const auto pb = b->Parameters();
  state.ApplyTo(pb);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

TEST(ModelState, AverageIsElementwiseMean) {
  fl::ModelState a(std::vector<float>{1, 2, 3});
  fl::ModelState b(std::vector<float>{3, 4, 5});
  const std::vector<fl::ModelState> states = {a, b};
  const fl::ModelState avg = fl::ModelState::Average(states);
  EXPECT_FLOAT_EQ(avg.values()[0], 2.0f);
  EXPECT_FLOAT_EQ(avg.values()[2], 4.0f);
}

TEST(ModelState, AxpyAndNorm) {
  fl::ModelState a(std::vector<float>{3, 4});
  EXPECT_FLOAT_EQ(a.L2Norm(), 5.0f);
  fl::ModelState b(std::vector<float>{1, 1});
  a.Axpy(2.0f, b);
  EXPECT_FLOAT_EQ(a.values()[0], 5.0f);
  fl::ModelState c(std::vector<float>{1});
  EXPECT_THROW(a.Axpy(1.0f, c), CheckError);
}

TEST(FedAvg, ConvergesOnBlobs) {
  Rng rng(1);
  data::Dataset full = testing::TwoBlobs(240, 6, rng);
  // Blob features are outside [0,1]; rescale into the canonical input range.
  for (float& v : full.inputs.flat()) v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  const auto shards = data::PartitionIid(full, 3, rng);
  const nn::ModelSpec spec = MlpSpec(6, 2);
  fl::TrainConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.9f;

  std::vector<std::unique_ptr<fl::LegacyClient>> clients;
  std::vector<fl::ClientBase*> ptrs;
  for (std::size_t k = 0; k < shards.size(); ++k) {
    clients.push_back(
        std::make_unique<fl::LegacyClient>(spec, shards[k], cfg, 100 + k));
    ptrs.push_back(clients.back().get());
  }
  fl::FlOptions opts;
  opts.rounds = 15;
  fl::FederatedAveraging server(fl::InitialState(spec), opts);
  fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
  server.Run(store, rng.NextU64());

  data::Dataset test = testing::TwoBlobs(100, 6, rng);
  for (float& v : test.inputs.flat()) v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  EXPECT_GT(clients[0]->EvalAccuracy(test), 0.85);
}

TEST(FedAvg, SnapshotsRecordedAtRequestedRounds) {
  Rng rng(2);
  data::Dataset full = testing::TwoBlobs(60, 4, rng);
  for (float& v : full.inputs.flat()) v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  const nn::ModelSpec spec = MlpSpec(4, 2);
  fl::TrainConfig cfg;
  fl::LegacyClient client(spec, full, cfg, 5);
  fl::ClientBase* ptr = &client;

  fl::FlOptions opts;
  opts.rounds = 5;
  opts.snapshot_rounds = {2, 4, 5};
  opts.record_client_updates = true;
  fl::FederatedAveraging server(fl::InitialState(spec), opts);
  fl::ClientStore store{std::span<fl::ClientBase* const>(&ptr, 1)};
  const fl::FlLog log = server.Run(store, rng.NextU64());

  EXPECT_EQ(log.global_snapshots.size(), 3u);
  EXPECT_EQ(log.client_updates.size(), 5u);
  EXPECT_EQ(log.client_updates[0].size(), 1u);
  EXPECT_EQ(log.client_losses.size(), 5u);
  EXPECT_FALSE(log.final_global.empty());
}

TEST(FedAvg, TamperHookSeesEveryRound) {
  Rng rng(3);
  data::Dataset full = testing::TwoBlobs(40, 4, rng);
  for (float& v : full.inputs.flat()) v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  const nn::ModelSpec spec = MlpSpec(4, 2);
  fl::TrainConfig cfg;
  fl::LegacyClient client(spec, full, cfg, 6);
  fl::ClientBase* ptr = &client;

  fl::FlOptions opts;
  opts.rounds = 4;
  fl::FederatedAveraging server(fl::InitialState(spec), opts);
  std::vector<std::size_t> seen;
  server.set_tamper([&](std::size_t round, const fl::ModelState& honest) {
    seen.push_back(round);
    return honest;
  });
  fl::ClientStore store{std::span<fl::ClientBase* const>(&ptr, 1)};
  server.Run(store, rng.NextU64());
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(FedAvg, AggregateEqualsClientAverageOneRound) {
  Rng rng(4);
  data::Dataset full = testing::TwoBlobs(80, 4, rng);
  for (float& v : full.inputs.flat()) v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  const auto shards = data::PartitionIid(full, 2, rng);
  const nn::ModelSpec spec = MlpSpec(4, 2);
  fl::TrainConfig cfg;
  fl::LegacyClient c0(spec, shards[0], cfg, 7);
  fl::LegacyClient c1(spec, shards[1], cfg, 8);
  std::vector<fl::ClientBase*> ptrs = {&c0, &c1};

  fl::FlOptions opts;
  opts.rounds = 1;
  opts.record_client_updates = true;
  fl::FederatedAveraging server(fl::InitialState(spec), opts);
  fl::ClientStore store{std::span<fl::ClientBase* const>(ptrs)};
  const fl::FlLog log = server.Run(store, rng.NextU64());

  const fl::ModelState manual =
      fl::ModelState::Average(log.client_updates[0]);
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_FLOAT_EQ(manual.values()[i], log.final_global.values()[i]);
  }
}

TEST(Query, LossesMatchAccuracySignals) {
  Rng rng(5);
  data::Dataset full = testing::TwoBlobs(120, 4, rng);
  for (float& v : full.inputs.flat()) v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  const nn::ModelSpec spec = MlpSpec(4, 2);
  fl::TrainConfig cfg;
  cfg.lr = 0.1f;
  fl::LegacyClient client(spec, full, cfg, 9);
  fl::ClientBase* ptr = &client;
  fl::FlOptions opts;
  opts.rounds = 10;
  fl::FederatedAveraging server(fl::InitialState(spec), opts);
  Rng rng2(6);
  fl::ClientStore store{std::span<fl::ClientBase* const>(&ptr, 1)};
  server.Run(store, rng2.NextU64());

  fl::ClassifierQuery q(client.model());
  EXPECT_NEAR(q.Accuracy(full), client.EvalAccuracy(full), 1e-9);
  const std::vector<float> losses = q.Losses(full);
  EXPECT_EQ(losses.size(), full.size());
  const std::vector<float> gnorms = q.GradNorms(full);
  EXPECT_EQ(gnorms.size(), full.size());
  for (float g : gnorms) EXPECT_GE(g, 0.0f);
}

}  // namespace
}  // namespace cip
