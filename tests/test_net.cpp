// Wire-protocol and round-engine tests. Mostly socket-free (the loopback
// end-to-end runs live in test_net_e2e.cpp); the one exception is the
// busy-server query-path test at the bottom, which needs a real listener to
// prove kBusy admission applies to kQuery traffic.
//
// Hostile-input coverage mirrors the fl/serialize suites: every message type
// is fuzzed by truncation at every byte (frame level and payload level), bad
// magic/version/type frames and oversized length prefixes must be rejected
// before any payload buffer is sized, and trailing bytes anywhere must
// throw. The AsyncRoundEngine tests pin the buffered-asynchronous-
// aggregation semantics: arrival-order invariance, straggler folding,
// duplicate/future-round rejection, below-quorum skips, and dropout-driven
// round completion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "fl/aggregate.h"
#include "fl/client_factory.h"
#include "fl/model_state.h"
#include "net/frame.h"
#include "net/round_engine.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/serve_engine.h"
#include "testing_util.h"

using namespace cip;

namespace {

fl::ModelState SmallState(float base) {
  return fl::ModelState(std::vector<float>{base, base + 0.5f, -base, 2.0f});
}

bool SameBits(const fl::ModelState& a, const fl::ModelState& b) {
  return a.size() == b.size() &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Every frame the v1 protocol can emit, with distinctive field values.
std::vector<std::pair<net::MsgType, std::string>> AllFrames() {
  net::HelloMsg hello;
  hello.client_id = 7;
  net::WelcomeMsg welcome;
  welcome.client_id = 7;
  welcome.run_seed = 0x123456789ABCDEFull;
  welcome.total_rounds = 5;
  welcome.fleet_size = 9;
  net::RoundMsg round;
  round.round = 3;
  round.lr_scale = 0.25f;
  round.global = SmallState(1.0f);
  net::UpdateMsg update;
  update.round = 3;
  update.client_id = 7;
  update.loss = 0.75f;
  update.update = SmallState(-2.0f);
  net::FinalMsg fin;
  fin.global = SmallState(4.0f);
  net::BusyMsg busy;
  busy.retry_after_ms = 250;
  net::QueryMsg query;
  query.client_id = 7;
  query.inputs = Tensor({2, 3});
  for (std::size_t i = 0; i < query.inputs.size(); ++i) {
    query.inputs[i] = 0.25f * static_cast<float>(i) - 0.5f;
  }
  net::LogitsMsg logits;
  logits.logits = Tensor({2, 2});
  for (std::size_t i = 0; i < logits.logits.size(); ++i) {
    logits.logits[i] = static_cast<float>(i) - 1.5f;
  }
  return {
      {net::MsgType::kHello, net::EncodeHello(hello)},
      {net::MsgType::kWelcome, net::EncodeWelcome(welcome)},
      {net::MsgType::kRound, net::EncodeRound(round)},
      {net::MsgType::kUpdate, net::EncodeUpdate(update)},
      {net::MsgType::kFinal, net::EncodeFinal(fin)},
      {net::MsgType::kBusy, net::EncodeBusy(busy)},
      {net::MsgType::kBye, net::EncodeBye()},
      {net::MsgType::kQuery, net::EncodeQuery(query)},
      {net::MsgType::kLogits, net::EncodeLogits(logits)},
  };
}

/// Decode a payload as its type (throws on anything malformed).
void DecodeAs(net::MsgType type, const std::string& payload) {
  switch (type) {
    case net::MsgType::kHello:
      net::DecodeHello(payload);
      return;
    case net::MsgType::kWelcome:
      net::DecodeWelcome(payload);
      return;
    case net::MsgType::kRound:
      net::DecodeRound(payload);
      return;
    case net::MsgType::kUpdate:
      net::DecodeUpdate(payload);
      return;
    case net::MsgType::kFinal:
      net::DecodeFinal(payload);
      return;
    case net::MsgType::kBusy:
      net::DecodeBusy(payload);
      return;
    case net::MsgType::kBye:
      return;
    case net::MsgType::kQuery:
      net::DecodeQuery(payload);
      return;
    case net::MsgType::kLogits:
      net::DecodeLogits(payload);
      return;
  }
}

}  // namespace

// ---- framing ---------------------------------------------------------------

TEST(NetFrame, RoundTripEveryMessageType) {
  for (const auto& [type, bytes] : AllFrames()) {
    net::FrameReader reader;
    reader.Feed(bytes);
    const auto f = reader.Next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, type);
    EXPECT_EQ(reader.buffered(), 0u);
    EXPECT_NO_THROW(DecodeAs(type, f->payload));
  }
}

TEST(NetFrame, TypedFieldsSurviveTheWire) {
  net::UpdateMsg update;
  update.round = 11;
  update.client_id = 42;
  update.loss = 1.5f;
  update.update = SmallState(3.0f);
  net::FrameReader reader;
  reader.Feed(net::EncodeUpdate(update));
  const auto f = reader.Next();
  ASSERT_TRUE(f.has_value());
  const net::UpdateMsg back = net::DecodeUpdate(f->payload);
  EXPECT_EQ(back.round, 11u);
  EXPECT_EQ(back.client_id, 42u);
  EXPECT_EQ(back.loss, 1.5f);
  EXPECT_TRUE(SameBits(back.update, update.update));
}

TEST(NetFrame, TruncationAtEveryByteNeverYieldsAFrame) {
  // A prefix of a valid frame must parse to "incomplete", never to a frame
  // and never to a crash. (Feed itself cannot throw on these prefixes: the
  // header they start with is valid.)
  for (const auto& [type, bytes] : AllFrames()) {
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      net::FrameReader reader;
      reader.Feed(std::string_view(bytes).substr(0, cut));
      EXPECT_FALSE(reader.Next().has_value())
          << "type " << static_cast<unsigned>(type) << " cut at " << cut;
    }
  }
}

TEST(NetFrame, PayloadTruncationAtEveryByteThrows) {
  // Below the frame layer: every proper prefix of every message payload
  // must throw out of the typed decoder (kBye has an empty payload — no
  // prefixes to test).
  for (const auto& [type, bytes] : AllFrames()) {
    net::FrameReader reader;
    reader.Feed(bytes);
    const auto f = reader.Next();
    ASSERT_TRUE(f.has_value());
    for (std::size_t cut = 0; cut < f->payload.size(); ++cut) {
      EXPECT_THROW(DecodeAs(type, f->payload.substr(0, cut)), CheckError)
          << "type " << static_cast<unsigned>(type) << " cut at " << cut;
    }
  }
}

TEST(NetFrame, TrailingBytesThrow) {
  for (const auto& [type, bytes] : AllFrames()) {
    if (type == net::MsgType::kBye) continue;  // payload-less
    net::FrameReader reader;
    reader.Feed(bytes);
    const auto f = reader.Next();
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(DecodeAs(type, f->payload + std::string(1, '\0')),
                 CheckError)
        << "type " << static_cast<unsigned>(type);
  }
}

TEST(NetFrame, BadMagicVersionTypeRejected) {
  const auto header = [](std::uint32_t magic, std::uint32_t version,
                         std::uint32_t type, std::uint64_t len) {
    std::string h;
    net::PutU32(h, magic);
    net::PutU32(h, version);
    net::PutU32(h, type);
    net::PutU64(h, len);
    return h;
  };
  {
    net::FrameReader reader;
    EXPECT_THROW(reader.Feed(header(0xDEADBEEF, net::kProtocolVersion,
                                    1, 0)),
                 CheckError);
  }
  {
    net::FrameReader reader;
    EXPECT_THROW(reader.Feed(header(net::kFrameMagic,
                                    net::kProtocolVersion + 1, 1, 0)),
                 CheckError);
  }
  {
    net::FrameReader reader;  // type 0 and type 10 are both undefined in v1
    EXPECT_THROW(reader.Feed(header(net::kFrameMagic, net::kProtocolVersion,
                                    0, 0)),
                 CheckError);
  }
  {
    net::FrameReader reader;
    EXPECT_THROW(reader.Feed(header(net::kFrameMagic, net::kProtocolVersion,
                                    10, 0)),
                 CheckError);
  }
}

TEST(NetFrame, OversizedLengthRejectedBeforeBuffering) {
  // A hostile header claiming a huge payload must throw at header time —
  // the reader never sizes a buffer from the claim. Bound the reader small
  // so the test proves rejection is the *bound*, not an allocation failure.
  net::FrameReader reader(/*max_payload=*/1024);
  std::string h;
  net::PutU32(h, net::kFrameMagic);
  net::PutU32(h, net::kProtocolVersion);
  net::PutU32(h, static_cast<std::uint32_t>(net::MsgType::kHello));
  net::PutU64(h, 1025);
  EXPECT_THROW(reader.Feed(h), CheckError);
  // And the u64 extreme: ~16 EiB cannot slip past as a size_t truncation.
  net::FrameReader reader2(/*max_payload=*/1024);
  std::string h2;
  net::PutU32(h2, net::kFrameMagic);
  net::PutU32(h2, net::kProtocolVersion);
  net::PutU32(h2, static_cast<std::uint32_t>(net::MsgType::kHello));
  net::PutU64(h2, ~std::uint64_t{0});
  EXPECT_THROW(reader2.Feed(h2), CheckError);
}

TEST(NetFrame, OneByteFeedsReassembleAStream) {
  // Arbitrary fragmentation must be invisible: feed a multi-frame stream a
  // byte at a time and collect every frame.
  std::string stream;
  const auto frames = AllFrames();
  for (const auto& [type, bytes] : frames) stream += bytes;
  net::FrameReader reader;
  std::vector<net::Frame> got;
  for (const char byte : stream) {
    reader.Feed(std::string_view(&byte, 1));
    while (auto f = reader.Next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].type, frames[i].first);
    EXPECT_NO_THROW(DecodeAs(got[i].type, got[i].payload));
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetFrame, HostileEmbeddedModelStateRejected) {
  // A structurally valid kRound frame whose embedded CIPS stream lies about
  // its element count must be rejected by the inherited serialize loader.
  net::RoundMsg m;
  m.round = 1;
  m.lr_scale = 1.0f;
  m.global = SmallState(1.0f);
  net::FrameReader reader;
  reader.Feed(net::EncodeRound(m));
  const auto f = reader.Next();
  ASSERT_TRUE(f.has_value());
  std::string payload = f->payload;
  // Corrupt one byte of the embedded stream's magic ("CIPS" starts right
  // after the u64 round + f32 lr_scale = 12 bytes).
  ASSERT_GT(payload.size(), 12u);
  payload[12] = static_cast<char>(payload[12] ^ 0x5A);
  EXPECT_THROW(net::DecodeRound(payload), CheckError);
}

TEST(NetFrame, HostileQueryBatchCountRejectedBeforeSizing) {
  // A kQuery payload whose rank/dims claim an absurd batch must throw
  // before any tensor is sized from the claim: the element-buffer
  // allocation counter must not move across the rejection.
  const auto query_payload = [](std::uint64_t rank,
                                const std::vector<std::uint64_t>& dims) {
    std::string p;
    net::PutU64(p, /*client_id=*/7);
    net::PutU64(p, rank);
    for (const std::uint64_t d : dims) net::PutU64(p, d);
    return p;
  };
  const std::vector<std::string> hostile = {
      // One dim past the per-dim wire bound (2^31).
      query_payload(2, {std::uint64_t{1} << 40, 4}),
      // Each dim in bounds, product overflows the element cap.
      query_payload(2, {std::uint64_t{1} << 30, std::uint64_t{1} << 30}),
      // Zero dim (empty batches are not a thing on the wire).
      query_payload(2, {0, 4}),
      // Rank outside [2, 8].
      query_payload(0, {}),
      query_payload(1, {4}),
      query_payload(9, {1, 1, 1, 1, 1, 1, 1, 1, 1}),
      // Plausible dims, no data behind them: length checked before sizing.
      query_payload(2, {1000, 1000}),
  };
  const std::size_t allocs_before = internal::TensorAllocCount();
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_THROW(net::DecodeQuery(hostile[i]), CheckError) << "case " << i;
  }
  EXPECT_EQ(internal::TensorAllocCount(), allocs_before);
}

// ---- the round engine ------------------------------------------------------

namespace {

net::AsyncRoundEngine::Options EngineOpts(std::size_t rounds,
                                          std::size_t fleet,
                                          std::size_t quorum,
                                          std::size_t min_quorum = 1) {
  net::AsyncRoundEngine::Options o;
  o.total_rounds = rounds;
  o.fleet_size = fleet;
  o.quorum = quorum;
  o.min_quorum = min_quorum;
  o.run_seed = 99;
  return o;
}

net::UpdateMsg Update(std::uint64_t id, std::uint64_t round, float base) {
  net::UpdateMsg u;
  u.round = round;
  u.client_id = id;
  u.loss = 0.1f;
  u.update = SmallState(base);
  return u;
}

/// True when any send in `sends` addressed `id` with a frame of `type`.
bool Sent(const std::vector<net::EngineSend>& sends, std::uint64_t id,
          net::MsgType type) {
  for (const net::EngineSend& s : sends) {
    if (s.client_id != id || s.frame.empty()) continue;
    net::FrameReader r;
    r.Feed(s.frame);
    // A send may carry several concatenated frames; scan them all.
    while (auto f = r.Next()) {
      if (f->type == type) return true;
    }
  }
  return false;
}

}  // namespace

TEST(AsyncRoundEngine, JoinHandsWelcomeAndCurrentRound) {
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(2, 2, 2));
  const auto sends = eng.OnJoin(0);
  EXPECT_TRUE(Sent(sends, 0, net::MsgType::kWelcome));
  EXPECT_TRUE(Sent(sends, 0, net::MsgType::kRound));
  EXPECT_EQ(eng.live_clients(), 1u);
}

TEST(AsyncRoundEngine, RejectsOutOfFleetAndDuplicateIds) {
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(2, 2, 2));
  auto bad = eng.OnJoin(2);  // ids are [0, fleet_size)
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_TRUE(bad[0].then_close);
  EXPECT_TRUE(bad[0].frame.empty());
  eng.OnJoin(0);
  auto dup = eng.OnJoin(0);
  ASSERT_EQ(dup.size(), 1u);
  EXPECT_TRUE(dup[0].then_close);
  EXPECT_EQ(eng.stats().protocol_errors, 2u);
}

TEST(AsyncRoundEngine, SynchronousRoundsFoldInAscendingIdOrder) {
  // quorum == fleet: the round closes only when every live client has
  // delivered, and the fold must equal a hand-built ascending-id tree mean
  // regardless of arrival order.
  const std::vector<std::vector<std::uint64_t>> arrival_orders = {
      {0, 1, 2}, {2, 1, 0}, {1, 0, 2}};
  fl::ModelState expected;
  for (std::size_t variant = 0; variant < arrival_orders.size(); ++variant) {
    net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(1, 3, 3));
    for (std::uint64_t id : {0, 1, 2}) eng.OnJoin(id);
    std::vector<net::EngineSend> last;
    for (std::uint64_t id : arrival_orders[variant]) {
      last = eng.OnUpdate(id, Update(id, 1, 1.0f + static_cast<float>(id)));
    }
    EXPECT_TRUE(eng.done());
    for (std::uint64_t id : {0, 1, 2}) {
      EXPECT_TRUE(Sent(last, id, net::MsgType::kFinal));
    }
    if (variant == 0) {
      fl::TreeAccumulator acc;
      for (float base : {1.0f, 2.0f, 3.0f}) acc.Add(SmallState(base));
      expected = acc.FinishMean();
    }
    EXPECT_TRUE(SameBits(eng.global(), expected)) << "variant " << variant;
  }
}

TEST(AsyncRoundEngine, QuorumClosesEarlyAndFoldsStragglerNextRound) {
  // K=1 of N=2: the fast client closes round 1 alone; the slow client's
  // round-1 update arrives during round 2 and must fold there as a
  // straggler (telemetry counts it), closing round 2 in turn.
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(3, 2, 1));
  eng.OnJoin(0);
  eng.OnJoin(1);
  auto sends = eng.OnUpdate(0, Update(0, 1, 2.0f));
  EXPECT_EQ(eng.current_round(), 2u);
  EXPECT_TRUE(Sent(sends, 0, net::MsgType::kRound));
  EXPECT_FALSE(Sent(sends, 1, net::MsgType::kRound));  // still in flight

  sends = eng.OnUpdate(1, Update(1, 1, 5.0f));  // late round-1 update
  EXPECT_EQ(eng.current_round(), 3u);           // folded, closed round 2
  EXPECT_TRUE(Sent(sends, 1, net::MsgType::kRound));
  EXPECT_EQ(eng.stats().folded_stragglers, 1u);
  ASSERT_EQ(eng.telemetry().rounds.size(), 2u);
  EXPECT_EQ(eng.telemetry().rounds[1].folded_stragglers, 1u);
  EXPECT_EQ(eng.telemetry().rounds[1].survivors, 1u);
}

TEST(AsyncRoundEngine, UnjoinedFleetMemberHoldsItsSeat) {
  // quorum == fleet == 2 but only client 0 has connected: its update must
  // NOT close the round — the unjoined client 1 still counts as a pending
  // delivery, or startup order would decide what round 1 aggregates.
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(1, 2, 2));
  eng.OnJoin(0);
  eng.OnUpdate(0, Update(0, 1, 2.0f));
  EXPECT_FALSE(eng.done());
  EXPECT_EQ(eng.telemetry().rounds.size(), 0u);
  // The slow starter arrives, trains, delivers: now the round closes with
  // both updates.
  eng.OnJoin(1);
  eng.OnUpdate(1, Update(1, 1, 4.0f));
  EXPECT_TRUE(eng.done());
  fl::TreeAccumulator acc;
  acc.Add(SmallState(2.0f));
  acc.Add(SmallState(4.0f));
  EXPECT_TRUE(SameBits(eng.global(), acc.FinishMean()));
}

TEST(AsyncRoundEngine, NeverJoinedSeatReleasedOnlyByNothingButQuorum) {
  // With quorum 1 of 2, an absent client never blocks progress: the seat
  // reservation caps the close target at quorum, not at fleet size.
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(1, 2, 1));
  eng.OnJoin(0);
  eng.OnUpdate(0, Update(0, 1, 2.0f));
  EXPECT_TRUE(eng.done());
}

TEST(AsyncRoundEngine, DuplicateUpdateIsAProtocolError) {
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(2, 2, 2));
  eng.OnJoin(0);
  eng.OnJoin(1);
  eng.OnUpdate(0, Update(0, 1, 2.0f));
  const auto sends = eng.OnUpdate(0, Update(0, 1, 2.0f));
  ASSERT_FALSE(sends.empty());
  EXPECT_TRUE(sends[0].then_close);
  EXPECT_EQ(eng.stats().protocol_errors, 1u);
  EXPECT_EQ(eng.live_clients(), 1u);
}

TEST(AsyncRoundEngine, FutureRoundAndWrongIdAreProtocolErrors) {
  {
    net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(2, 2, 2));
    eng.OnJoin(0);
    const auto sends = eng.OnUpdate(0, Update(0, 2, 2.0f));  // round 2 early
    ASSERT_FALSE(sends.empty());
    EXPECT_TRUE(sends[0].then_close);
  }
  {
    net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(2, 2, 2));
    eng.OnJoin(0);
    const auto sends = eng.OnUpdate(0, Update(1, 1, 2.0f));  // claims id 1
    ASSERT_FALSE(sends.empty());
    EXPECT_TRUE(sends[0].then_close);
  }
}

TEST(AsyncRoundEngine, MismatchedUpdateSizeIsAProtocolError) {
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(2, 2, 2));
  eng.OnJoin(0);
  net::UpdateMsg u = Update(0, 1, 2.0f);
  u.update = fl::ModelState(std::vector<float>{1.0f});  // wrong size
  const auto sends = eng.OnUpdate(0, u);
  ASSERT_FALSE(sends.empty());
  EXPECT_TRUE(sends[0].then_close);
  EXPECT_EQ(eng.stats().protocol_errors, 1u);
}

TEST(AsyncRoundEngine, DropoutCompletesARoundWaitingOnlyOnTheDead) {
  // N=3 synchronous; clients 0 and 1 delivered, client 2's connection dies.
  // The round must complete from the survivors — the wire version of the
  // in-process forced-kDropout degradation.
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(1, 3, 3));
  for (std::uint64_t id : {0, 1, 2}) eng.OnJoin(id);
  eng.OnUpdate(0, Update(0, 1, 2.0f));
  eng.OnUpdate(1, Update(1, 1, 4.0f));
  EXPECT_FALSE(eng.done());
  const auto sends = eng.OnDisconnect(2);
  EXPECT_TRUE(eng.done());
  EXPECT_TRUE(eng.fleet_settled());  // 0,1 got kFinal; 2 joined then left
  EXPECT_TRUE(Sent(sends, 0, net::MsgType::kFinal));
  EXPECT_TRUE(Sent(sends, 1, net::MsgType::kFinal));
  fl::TreeAccumulator acc;
  acc.Add(SmallState(2.0f));
  acc.Add(SmallState(4.0f));
  EXPECT_TRUE(SameBits(eng.global(), acc.FinishMean()));
  ASSERT_EQ(eng.telemetry().rounds.size(), 1u);
  EXPECT_EQ(eng.telemetry().rounds[0].survivors, 2u);
}

TEST(AsyncRoundEngine, BelowMinQuorumSkipsTheRound) {
  // min_quorum 2 but only one survivor: the round closes *skipped* and the
  // global is bit-unchanged — QuorumPolicy::kSkipRound on the wire.
  const fl::ModelState initial = SmallState(1.0f);
  net::AsyncRoundEngine eng(initial, EngineOpts(2, 2, 2, /*min_quorum=*/2));
  eng.OnJoin(0);
  eng.OnJoin(1);
  eng.OnUpdate(0, Update(0, 1, 9.0f));
  eng.OnDisconnect(1);  // live drops to 1; round closes with 1 < min_quorum
  ASSERT_EQ(eng.telemetry().rounds.size(), 1u);
  EXPECT_TRUE(eng.telemetry().rounds[0].skipped);
  EXPECT_EQ(eng.stats().rounds_skipped, 1u);
  EXPECT_TRUE(SameBits(eng.global(), initial));
  EXPECT_EQ(eng.current_round(), 2u);  // a skipped round still advances
}

TEST(AsyncRoundEngine, LateJoinerAfterFinalGetsTheAggregate) {
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(1, 2, 1));
  eng.OnJoin(0);
  eng.OnUpdate(0, Update(0, 1, 2.0f));
  ASSERT_TRUE(eng.done());
  // Client 1 never joined, so the run is done but the fleet is not settled:
  // a draining server must keep listening for exactly this joiner.
  EXPECT_FALSE(eng.fleet_settled());
  const auto sends = eng.OnJoin(1);
  EXPECT_TRUE(Sent(sends, 1, net::MsgType::kWelcome));
  EXPECT_TRUE(Sent(sends, 1, net::MsgType::kFinal));
  ASSERT_FALSE(sends.empty());
  EXPECT_TRUE(sends.back().then_close);
  EXPECT_TRUE(eng.fleet_settled());
}

TEST(AsyncRoundEngine, InFlightStragglerAtRunEndGetsFinalNotAnError) {
  // K=1 of N=2, one round: client 0 closes the run while client 1 is still
  // training. Client 1's late update must be answered with kFinal.
  net::AsyncRoundEngine eng(SmallState(1.0f), EngineOpts(1, 2, 1));
  eng.OnJoin(0);
  eng.OnJoin(1);
  eng.OnUpdate(0, Update(0, 1, 2.0f));
  ASSERT_TRUE(eng.done());
  EXPECT_FALSE(eng.fleet_settled());  // client 1 is still in flight
  const auto sends = eng.OnUpdate(1, Update(1, 1, 5.0f));
  EXPECT_TRUE(Sent(sends, 1, net::MsgType::kFinal));
  EXPECT_TRUE(eng.fleet_settled());
  EXPECT_EQ(eng.stats().protocol_errors, 0u);
  // The post-final update is not aggregated: the run's global is client 0's
  // round alone.
  EXPECT_TRUE(SameBits(eng.global(), SmallState(2.0f)));
}

// ---- admission control on the query path -----------------------------------

namespace {

/// Minimal serving fixture for the admission test: a 2-client CIP fleet over
/// a tiny MLP (geometry matches tests/test_serve.cpp's deployment).
std::vector<fl::ClientSpec> ServingSpecs(std::size_t num_clients) {
  Rng rng(5);
  data::Dataset full = cip::testing::TwoBlobs(8 * num_clients, 4, rng);
  const auto shards = data::PartitionIid(full, num_clients, rng);
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec;
    spec.kind = fl::ClientKind::kCip;
    spec.model.arch = nn::Arch::kMLP;
    spec.model.input_shape = {4};
    spec.model.num_classes = 2;
    spec.model.width = 6;
    spec.model.seed = 77;
    spec.data = shards[k];
    spec.seed = 50 + k;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Block-read one frame after stepping the server (same single-thread pump
/// as tests/test_serve.cpp); nullopt when the server closed the connection.
std::optional<net::Frame> ReadOneFrame(net::CipServer& server,
                                       net::Socket& sock) {
  for (int i = 0; i < 4; ++i) server.Step(0);
  std::string header(net::kFrameHeaderBytes, '\0');
  if (!net::RecvAll(sock, std::span<char>(header.data(), header.size()))) {
    return std::nullopt;
  }
  std::uint64_t len = 0;  // payload_len: the header's trailing LE u64
  for (std::size_t b = 0; b < 8; ++b) {
    len |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(header[12 + b]))
           << (8 * b);
  }
  std::string payload(len, '\0');
  if (len > 0 &&
      !net::RecvAll(sock, std::span<char>(payload.data(), payload.size()))) {
    return std::nullopt;
  }
  net::FrameReader reader;
  reader.Feed(header);
  reader.Feed(payload);
  return reader.Next();
}

}  // namespace

TEST(NetServer, BusyServerRejectsQueryPeerWhoRetriesAfterward) {
  // Queries obey the same admission rule as round traffic: a peer past
  // max_connections gets kBusy + close even though it only wanted inference,
  // and succeeds on retry once a seat frees up.
  const auto specs = ServingSpecs(2);
  std::unique_ptr<core::CipClient> global = fl::MakeCipClient(specs[0]);
  fl::ClientStore store = fl::MakeClientStore(specs);
  serve::ServeOptions sopts;
  sopts.blend = global->config().blend;
  serve::ServeEngine engine(global->model(), store, sopts);

  net::AsyncRoundEngine::Options eng;
  eng.fleet_size = 2;
  eng.quorum = 2;
  net::ServerOptions server_opts;
  server_opts.max_connections = 1;
  server_opts.drain_fleet = false;
  net::CipServer server(fl::ModelState(std::vector<float>{0.0f}), eng,
                        server_opts);
  server.EnableServing(&engine);
  server.Listen();

  net::QueryMsg q;
  q.client_id = 0;
  Rng rng(3);
  q.inputs = Tensor({2, 4});
  for (float& v : q.inputs.flat()) v = rng.Normal();
  const std::string query_frame = net::EncodeQuery(q);

  // Seat-holder connects first and does nothing.
  net::Socket holder = net::ConnectTcp("127.0.0.1", server.port());
  server.Step(0);  // accept the holder

  // The query peer is over capacity: its query is never read — it gets
  // kBusy with the retry hint, then an orderly close.
  net::Socket peer = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(net::SendAll(
      peer, std::span<const char>(query_frame.data(), query_frame.size())));
  const auto busy = ReadOneFrame(server, peer);
  ASSERT_TRUE(busy.has_value());
  ASSERT_EQ(busy->type, net::MsgType::kBusy);
  const net::BusyMsg hint = net::DecodeBusy(busy->payload);
  EXPECT_EQ(hint.retry_after_ms, server_opts.busy_retry_ms);
  EXPECT_FALSE(ReadOneFrame(server, peer).has_value());  // closed after kBusy
  EXPECT_EQ(server.stats().busy_rejections, 1u);
  EXPECT_EQ(engine.stats().queries, 0u);

  // The seat frees; the retry is admitted and answered with logits.
  holder.Close();
  for (int i = 0; i < 4; ++i) server.Step(0);  // observe EOF, reap the seat
  net::Socket retry = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(net::SendAll(
      retry, std::span<const char>(query_frame.data(), query_frame.size())));
  const auto reply = ReadOneFrame(server, retry);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, net::MsgType::kLogits);
  const net::LogitsMsg logits = net::DecodeLogits(reply->payload);
  EXPECT_EQ(logits.logits.dim(0), 2u);
  EXPECT_EQ(logits.logits.dim(1), 2u);
  EXPECT_EQ(engine.stats().queries, 1u);
}
