// Unit tests for the CIP_CHECK / CIP_DCHECK contract macros: thrown types,
// message contents, and the single-evaluation guarantee of the comparison
// macros.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "common/check.h"

namespace cip {
namespace {

std::string FailureMessage(const std::function<void()>& body) {
  try {
    body();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CheckError";
  return {};
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(CIP_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(CIP_CHECK_MSG(true, "never built"));
}

TEST(Check, CheckErrorIsALogicError) {
  EXPECT_THROW(CIP_CHECK(false), std::logic_error);
}

TEST(Check, MessageContainsExpressionFileAndLine) {
  const std::string msg = FailureMessage([] { CIP_CHECK(2 < 1); });
  EXPECT_NE(msg.find("2 < 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test_check.cpp"), std::string::npos) << msg;
  EXPECT_NE(msg.find(':'), std::string::npos) << msg;
}

TEST(Check, CheckMsgStreamsValuesIntoMessage) {
  const int layer = 7;
  const std::string msg = FailureMessage(
      [&] { CIP_CHECK_MSG(layer == 0, "bad layer " << layer << " of " << 9); });
  EXPECT_NE(msg.find("bad layer 7 of 9"), std::string::npos) << msg;
}

TEST(Check, ComparisonMacrosReportBothOperands) {
  const std::string msg = FailureMessage([] { CIP_CHECK_EQ(3, 4); });
  EXPECT_NE(msg.find("expected 3 == 4"), std::string::npos) << msg;

  const std::string lt = FailureMessage([] { CIP_CHECK_LT(10, 5); });
  EXPECT_NE(lt.find("expected 10 < 5"), std::string::npos) << lt;

  const std::string ge = FailureMessage([] { CIP_CHECK_GE(1, 2); });
  EXPECT_NE(ge.find("expected 1 >= 2"), std::string::npos) << ge;
}

TEST(Check, ComparisonMacrosCoverAllSixOps) {
  EXPECT_NO_THROW(CIP_CHECK_EQ(2, 2));
  EXPECT_NO_THROW(CIP_CHECK_NE(2, 3));
  EXPECT_NO_THROW(CIP_CHECK_LT(2, 3));
  EXPECT_NO_THROW(CIP_CHECK_LE(2, 2));
  EXPECT_NO_THROW(CIP_CHECK_GT(3, 2));
  EXPECT_NO_THROW(CIP_CHECK_GE(3, 3));
  EXPECT_THROW(CIP_CHECK_NE(2, 2), CheckError);
  EXPECT_THROW(CIP_CHECK_LE(3, 2), CheckError);
  EXPECT_THROW(CIP_CHECK_GT(2, 2), CheckError);
}

TEST(Check, ComparisonArgumentsEvaluatedOnceOnSuccess) {
  int a = 0, b = 10;
  CIP_CHECK_LT(++a, ++b);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 11);
}

TEST(Check, ComparisonArgumentsEvaluatedOnceOnFailure) {
  // The failure path formats the *captured* values: no second evaluation.
  int calls = 0;
  const std::string msg =
      FailureMessage([&] { CIP_CHECK_EQ(++calls, 99); });
  EXPECT_EQ(calls, 1);
  EXPECT_NE(msg.find("expected 1 == 99"), std::string::npos) << msg;
}

TEST(Check, CheckMsgConditionEvaluatedOnce) {
  int calls = 0;
  EXPECT_THROW(CIP_CHECK_MSG(++calls == 99, "calls"), CheckError);
  EXPECT_EQ(calls, 1);
}

#if CIP_DCHECK_IS_ON

TEST(DCheck, EnabledTierBehavesLikeCheck) {
  EXPECT_NO_THROW(CIP_DCHECK(true));
  EXPECT_THROW(CIP_DCHECK(false), CheckError);
  EXPECT_THROW(CIP_DCHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(CIP_DCHECK_MSG(false, "boom"), CheckError);
  const std::string msg = FailureMessage([] { CIP_DCHECK_LT(5, 4); });
  EXPECT_NE(msg.find("expected 5 < 4"), std::string::npos) << msg;
}

TEST(DCheck, EnabledTierEvaluatesOnce) {
  int n = 0;
  CIP_DCHECK_EQ(++n, 1);
  EXPECT_EQ(n, 1);
}

#else

TEST(DCheck, CompiledOutTierNeverThrows) {
  EXPECT_NO_THROW(CIP_DCHECK(false));
  EXPECT_NO_THROW(CIP_DCHECK_EQ(1, 2));
  EXPECT_NO_THROW(CIP_DCHECK_MSG(false, "never built"));
}

TEST(DCheck, CompiledOutTierDoesNotEvaluateArguments) {
  int n = 0;
  CIP_DCHECK(++n == 1);
  CIP_DCHECK_EQ(++n, 1);
  CIP_DCHECK_LT(++n, 0);
  EXPECT_EQ(n, 0);
}

#endif  // CIP_DCHECK_IS_ON

}  // namespace
}  // namespace cip
