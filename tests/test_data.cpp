// Tests for datasets, synthetic generators, augmentation and partitioning.
#include <gtest/gtest.h>

#include <set>

#include "data/augment.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace cip {
namespace {

TEST(Dataset, SubsetAndSlice) {
  data::Dataset ds{Tensor({4, 2}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8}),
                   {0, 1, 2, 3}};
  const std::vector<std::size_t> idx = {3, 1};
  data::Dataset sub = ds.Subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.labels[0], 3);
  EXPECT_EQ(sub.inputs.At(0, 0), 7.0f);
  data::Dataset sl = ds.Slice(1, 3);
  EXPECT_EQ(sl.labels[0], 1);
  EXPECT_EQ(sl.inputs.At(1, 1), 6.0f);
}

TEST(Dataset, ConcatAndValidate) {
  data::Dataset a{Tensor({1, 2}, std::vector<float>{1, 2}), {0}};
  data::Dataset b{Tensor({2, 2}, std::vector<float>{3, 4, 5, 6}), {1, 2}};
  data::Dataset c = data::Dataset::Concat(a, b);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.labels[2], 2);
  c.Validate(3);
  EXPECT_THROW(c.Validate(2), CheckError);
}

TEST(Dataset, ShuffleIsPermutation) {
  Rng rng(1);
  data::SyntheticPurchase gen(data::Purchase50Like());
  data::Dataset ds = gen.Sample(50, rng);
  std::multiset<int> before(ds.labels.begin(), ds.labels.end());
  ds.Shuffle(rng);
  std::multiset<int> after(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(before, after);
}

TEST(SyntheticVision, ShapesAndRange) {
  data::VisionConfig cfg = data::Cifar100Like(10);
  data::SyntheticVision gen(cfg);
  Rng rng(2);
  data::Dataset ds = gen.Sample(30, rng);
  EXPECT_EQ(ds.inputs.shape(), (Shape{30, 3, 12, 12}));
  for (float v : ds.inputs.flat()) {
    EXPECT_GE(v, data::kInputMin);
    EXPECT_LE(v, data::kInputMax);
  }
  ds.Validate(10);
}

TEST(SyntheticVision, DeterministicPrototypes) {
  data::VisionConfig cfg = data::ChMnistLike();
  data::SyntheticVision a(cfg), b(cfg);
  Rng r1(3), r2(3);
  const Tensor xa = a.SampleInput(2, r1);
  const Tensor xb = b.SampleInput(2, r2);
  for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]);
}

TEST(SyntheticVision, FreshDrawsDiffer) {
  data::SyntheticVision gen(data::ChMnistLike());
  Rng rng(4);
  const Tensor a = gen.SampleInput(0, rng);
  const Tensor b = gen.SampleInput(0, rng);
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.1f);  // non-member draws are distinct samples
}

TEST(SyntheticVision, SampleClassesRestrictsLabels) {
  data::SyntheticVision gen(data::Cifar100Like(20));
  Rng rng(5);
  const std::vector<int> classes = {3, 7, 11};
  data::Dataset ds = gen.SampleClasses(60, classes, rng);
  for (int y : ds.labels) {
    EXPECT_TRUE(y == 3 || y == 7 || y == 11);
  }
}

TEST(SyntheticVision, ClassesAreStatisticallySeparated) {
  // Same-class samples must be closer on average than cross-class samples;
  // otherwise no model could beat chance.
  data::SyntheticVision gen(data::ChMnistLike());
  Rng rng(6);
  auto dist = [&](int ca, int cb) {
    double total = 0.0;
    for (int k = 0; k < 8; ++k) {
      const Tensor a = gen.SampleInput(ca, rng);
      const Tensor b = gen.SampleInput(cb, rng);
      double d = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        d += (a[i] - b[i]) * (a[i] - b[i]);
      }
      total += std::sqrt(d);
    }
    return total / 8.0;
  };
  EXPECT_LT(dist(0, 0), dist(0, 1));
  EXPECT_LT(dist(3, 3), dist(3, 5));
}

TEST(SyntheticPurchase, BinaryFeatures) {
  data::SyntheticPurchase gen(data::Purchase50Like());
  Rng rng(7);
  data::Dataset ds = gen.Sample(20, rng);
  EXPECT_EQ(ds.inputs.shape(), (Shape{20, 200}));
  for (float v : ds.inputs.flat()) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

TEST(Augment, PreservesShapeAndRange) {
  data::SyntheticVision gen(data::Cifar100Like(5));
  Rng rng(8);
  data::Dataset ds = gen.Sample(10, rng);
  data::AugmentConfig cfg;
  const Tensor out = data::Augment(ds.inputs, cfg, rng);
  EXPECT_TRUE(out.SameShape(ds.inputs));
  for (float v : out.flat()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Augment, VectorDataIsNoOp) {
  data::SyntheticPurchase gen(data::Purchase50Like());
  Rng rng(9);
  data::Dataset ds = gen.Sample(5, rng);
  data::AugmentConfig cfg;
  const Tensor out = data::Augment(ds.inputs, cfg, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], ds.inputs[i]);
  }
}

TEST(Augment, ActuallyPerturbsImages) {
  data::SyntheticVision gen(data::Cifar100Like(5));
  Rng rng(10);
  data::Dataset ds = gen.Sample(8, rng);
  data::AugmentConfig cfg;
  cfg.pad = 2;
  const Tensor out = data::Augment(ds.inputs, cfg, rng);
  float diff = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    diff += std::abs(out[i] - ds.inputs[i]);
  }
  EXPECT_GT(diff, 0.01f);
}

TEST(Partition, IidSizesAndCoverage) {
  data::SyntheticVision gen(data::Cifar100Like(10));
  Rng rng(11);
  data::Dataset full = gen.Sample(100, rng);
  const auto shards = data::PartitionIid(full, 4, rng);
  ASSERT_EQ(shards.size(), 4u);
  for (const auto& s : shards) EXPECT_EQ(s.size(), 25u);
}

TEST(Partition, NonIidClassesPerClient) {
  data::SyntheticVision gen(data::Cifar100Like(20));
  Rng rng(12);
  data::Dataset full = gen.Sample(400, rng);
  const auto shards = data::PartitionByClasses(full, 4, 5, 20, rng);
  ASSERT_EQ(shards.size(), 4u);
  for (const auto& s : shards) {
    EXPECT_EQ(s.size(), 100u);
    const std::vector<int> classes = data::ClassesPresent(s);
    EXPECT_LE(classes.size(), 5u);
    EXPECT_GE(classes.size(), 1u);
  }
}

TEST(Partition, FullClassesGivesIidLike) {
  data::SyntheticVision gen(data::Cifar100Like(10));
  Rng rng(13);
  data::Dataset full = gen.Sample(300, rng);
  const auto shards = data::PartitionByClasses(full, 3, 10, 10, rng);
  for (const auto& s : shards) {
    EXPECT_GE(data::ClassesPresent(s).size(), 8u);  // nearly all classes
  }
}

TEST(Partition, RejectsBadArguments) {
  data::SyntheticVision gen(data::Cifar100Like(10));
  Rng rng(14);
  data::Dataset full = gen.Sample(50, rng);
  EXPECT_THROW(data::PartitionByClasses(full, 2, 11, 10, rng), CheckError);
  EXPECT_THROW(data::PartitionIid(full, 0, rng), CheckError);
}

}  // namespace
}  // namespace cip
