// Dispatcher-layer tests: the CPUID probe, strict CIP_ISA parsing, the
// bind-once GEMM kernel registry, per-ISA parity against a double-precision
// oracle, within-ISA bit-identity across dispatch backends, and the PackedB
// per-ISA layout invalidation consumed by Linear/Conv2d weight caches.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/cpu_features.h"
#include "common/env.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/gemm_kernels.h"
#include "tensor/ops.h"

namespace cip {
namespace {

Tensor RandomTensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.Normal();
  return t;
}

/// Forces one CIP_ISA request and rebinds the registry; always restores
/// auto + rebind on scope exit, even if an assertion fails mid-test.
class IsaGuard {
 public:
  explicit IsaGuard(IsaRequest request) {
    internal::SetIsaRequestForTesting(request);
    ops::internal::ResetGemmBindingForTesting();
  }
  ~IsaGuard() {
    internal::SetIsaRequestForTesting(IsaRequest::kAuto);
    ops::internal::ResetGemmBindingForTesting();
  }
};

/// Every ISA request this host can actually honor with a distinct kernel
/// (portable always; avx2/avx512 when both the binary and the CPU have them).
std::vector<IsaRequest> UsableRequests() {
  std::vector<IsaRequest> reqs{IsaRequest::kPortable};
  const CpuFeatures& f = GetCpuFeatures();
  if (IsaSupported(IsaLevel::kAvx2, f) &&
      ops::internal::Avx2GemmKernel() != nullptr) {
    reqs.push_back(IsaRequest::kAvx2);
  }
  if (IsaSupported(IsaLevel::kAvx512, f) &&
      ops::internal::Avx512GemmKernel() != nullptr) {
    reqs.push_back(IsaRequest::kAvx512);
  }
  return reqs;
}

// Per-ISA pinned tolerance against the sequential double-precision reference.
// All kernels accumulate per element in ascending-k float order; FMA
// contraction (avx2/avx512) only shrinks the rounding error, so one bound
// holds everywhere — pinned per ISA anyway so a future kernel cannot silently
// widen it for everyone.
double PinnedTolerance(IsaLevel isa) {
  switch (isa) {
    case IsaLevel::kAvx512:
      return 1e-5;
    case IsaLevel::kAvx2:
      return 1e-5;
    case IsaLevel::kPortable:
      break;
  }
  return 1e-5;
}

void ExpectTensorsNear(const Tensor& a, const Tensor& b, double tol,
                       const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  double worst = 0.0;
  std::size_t worst_i = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scaled =
        std::abs(a[i] - b[i]) / (1.0 + std::abs(static_cast<double>(b[i])));
    if (scaled > worst) {
      worst = scaled;
      worst_i = i;
    }
  }
  EXPECT_LE(worst, tol) << what << ": worst mismatch at flat index " << worst_i
                        << ": " << a[worst_i] << " vs " << b[worst_i];
}

Tensor RefMatmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        s += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

TEST(CpuFeatures, ProbeIsCachedAndConsistent) {
  const CpuFeatures& first = GetCpuFeatures();
  const CpuFeatures& second = GetCpuFeatures();
  EXPECT_EQ(&first, &second);  // one probe per process
  // The support lattice must be monotone in the enum order.
  EXPECT_TRUE(IsaSupported(IsaLevel::kPortable, first));
  if (IsaSupported(IsaLevel::kAvx512, first)) {
    EXPECT_TRUE(first.avx512f);
  }
  const IsaLevel best = BestSupportedIsa();
  EXPECT_TRUE(IsaSupported(best, first));
}

TEST(CpuFeatures, IsaNamesAreStable) {
  EXPECT_STREQ(IsaName(IsaLevel::kPortable), "portable");
  EXPECT_STREQ(IsaName(IsaLevel::kAvx2), "avx2");
  EXPECT_STREQ(IsaName(IsaLevel::kAvx512), "avx512");
}

TEST(CpuFeatures, StrictIsaParsing) {
  // Exact strings parse; everything else is rejected (and IsaRequested then
  // falls back to auto), mirroring the CIP_THREADS / CIP_NAIVE_CONV parsers.
  EXPECT_EQ(internal::ParseIsaRequest("auto"), IsaRequest::kAuto);
  EXPECT_EQ(internal::ParseIsaRequest("portable"), IsaRequest::kPortable);
  EXPECT_EQ(internal::ParseIsaRequest("avx2"), IsaRequest::kAvx2);
  EXPECT_EQ(internal::ParseIsaRequest("avx512"), IsaRequest::kAvx512);
  EXPECT_EQ(internal::ParseIsaRequest(nullptr), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest(""), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest("AVX2"), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest(" avx2"), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest("avx2 "), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest("avx-512"), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest("sse"), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest("auto2"), std::nullopt);
  EXPECT_EQ(internal::ParseIsaRequest("1"), std::nullopt);
}

TEST(GemmIsa, ForcedRequestsBindExpectedKernels) {
  {
    IsaGuard guard(IsaRequest::kPortable);
    EXPECT_EQ(ops::ActiveGemmIsa(), IsaLevel::kPortable);
    const ops::GemmKernel& k = ops::ActiveGemmKernel();
    EXPECT_STREQ(k.name, "portable");
    EXPECT_EQ(k.mc % k.mr, 0u);  // block partition must respect micro-tiles
  }
  {
    // Requests above what the host/binary supports clamp down, never crash.
    IsaGuard guard(IsaRequest::kAvx512);
    const ops::GemmKernel& k = ops::ActiveGemmKernel();
    EXPECT_TRUE(IsaSupported(k.isa, GetCpuFeatures()));
    EXPECT_EQ(k.mc % k.mr, 0u);
  }
  {
    IsaGuard guard(IsaRequest::kAuto);
    // Auto binds the best supported compiled-in kernel.
    const ops::GemmKernel& k = ops::ActiveGemmKernel();
    EXPECT_TRUE(IsaSupported(k.isa, GetCpuFeatures()));
  }
}

TEST(GemmIsa, RegistryBindsExactlyOnceUnderParallelStress) {
  IsaGuard guard(IsaRequest::kAuto);  // resets the binding on entry
  const std::uint64_t binds_before = ops::internal::GemmBindCount();
  std::atomic<const ops::GemmKernel*> seen{nullptr};
  std::atomic<int> disagreements{0};
  ParallelFor(
      0, 512,
      [&](std::size_t) {
        const ops::GemmKernel& k = ops::ActiveGemmKernel();
        const ops::GemmKernel* expected = nullptr;
        if (!seen.compare_exchange_strong(expected, &k) && expected != &k) {
          disagreements.fetch_add(1);
        }
      },
      /*threads=*/8);
  EXPECT_EQ(disagreements.load(), 0);
  EXPECT_EQ(ops::internal::GemmBindCount() - binds_before, 1u);
  // Further calls reuse the binding: no new binds.
  (void)ops::ActiveGemmKernel();
  EXPECT_EQ(ops::internal::GemmBindCount() - binds_before, 1u);
}

TEST(GemmIsa, EveryIsaMatchesDoubleOracleWithinPinnedTolerance) {
  // Sizes straddle the blocked threshold and every tile tail of every
  // kernel: m % 6, m % 8, n % 16, k % 256 all nonzero somewhere.
  const struct {
    std::size_t m, k, n;
  } kCases[] = {{4, 8, 8},    {17, 33, 9},    {33, 17, 40},
                {64, 64, 64}, {65, 31, 70},   {128, 300, 12},
                {96, 256, 48}, {100, 257, 35}};
  for (const IsaRequest req : UsableRequests()) {
    IsaGuard guard(req);
    const IsaLevel isa = ops::ActiveGemmIsa();
    SCOPED_TRACE(::testing::Message() << "isa=" << IsaName(isa));
    const double tol = PinnedTolerance(isa);
    for (const auto& mc : kCases) {
      SCOPED_TRACE(::testing::Message()
                   << "m=" << mc.m << " k=" << mc.k << " n=" << mc.n);
      const Tensor a = RandomTensor({mc.m, mc.k}, 100 + mc.m);
      const Tensor b = RandomTensor({mc.k, mc.n}, 200 + mc.n);
      ExpectTensorsNear(ops::Matmul(a, b), RefMatmul(a, b), tol, "Matmul");
    }
  }
}

TEST(GemmIsa, ForcedPortableMatchesAutoWithinPinnedTolerance) {
  const Tensor a = RandomTensor({96, 128}, 17);
  const Tensor b = RandomTensor({128, 80}, 18);
  Tensor auto_c, portable_c;
  {
    IsaGuard guard(IsaRequest::kAuto);
    auto_c = ops::Matmul(a, b);
  }
  {
    IsaGuard guard(IsaRequest::kPortable);
    portable_c = ops::Matmul(a, b);
  }
  // Same values up to FMA-contraction rounding; bit-identical when auto
  // resolves to portable.
  ExpectTensorsNear(auto_c, portable_c, 1e-5, "auto vs portable");
}

TEST(GemmIsa, BitIdenticalAcrossDispatchBackendsWithinIsa) {
  // Within one bound ISA the row-block partition is fixed, so pool and
  // legacy spawn dispatch must produce byte-equal output (the per-ISA
  // extension of ParallelStress.GemmBitIdenticalAcrossDispatchModes).
  const Tensor a = RandomTensor({128, 128}, 5);
  const Tensor b = RandomTensor({128, 128}, 6);
  for (const IsaRequest req : UsableRequests()) {
    IsaGuard guard(req);
    SCOPED_TRACE(::testing::Message()
                 << "isa=" << IsaName(ops::ActiveGemmIsa()));
    const Tensor pool_c = ops::Matmul(a, b);
    internal::SetSpawnPerCallForTesting(true);
    const Tensor spawn_c = ops::Matmul(a, b);
    internal::SetSpawnPerCallForTesting(false);
    ASSERT_EQ(pool_c.size(), spawn_c.size());
    EXPECT_EQ(std::memcmp(pool_c.data(), spawn_c.data(),
                          pool_c.size() * sizeof(float)),
              0);
  }
}

TEST(GemmIsa, PackedBRecordsIsaAndRejectsStaleLayout) {
  const Tensor w = RandomTensor({64, 64}, 33);
  const Tensor x = RandomTensor({64, 64}, 34);
  Tensor y({64, 64});
  const std::vector<IsaRequest> reqs = UsableRequests();
  {
    IsaGuard guard(IsaRequest::kPortable);
    ops::PackedB packed;
    ops::PackBForMatmulInto(w, packed);
    EXPECT_EQ(packed.isa(), IsaLevel::kPortable);
    ops::MatmulPackedInto(x, packed, y);  // matching layout: fine
  }
  if (reqs.size() < 2) {
    GTEST_SKIP() << "host has only the portable kernel; no stale-layout pair";
  }
  ops::PackedB packed;
  {
    IsaGuard guard(IsaRequest::kPortable);
    ops::PackBForMatmulInto(w, packed);
  }
  {
    // Portable packs 8-wide panels, the SIMD kernels 16-wide: feeding the
    // stale packing to the rebound kernel must CHECK-fail, not misread.
    IsaGuard guard(reqs.back());
    ASSERT_NE(ops::ActiveGemmIsa(), IsaLevel::kPortable);
    EXPECT_THROW(ops::MatmulPackedInto(x, packed, y), CheckError);
  }
}

TEST(GemmIsa, LinearAndConvCachesRepackAfterIsaChange) {
  // Layer weight caches key on isa() as well as Tensor::version(); flipping
  // the bound kernel mid-process must transparently repack, and the outputs
  // must agree within the pinned tolerance.
  Rng rng_a(77), rng_b(77), rng_c(77), rng_d(77);
  nn::Linear lin_auto(64, 48, rng_a);
  nn::Linear lin_flip(64, 48, rng_b);
  nn::Conv2d conv_auto(3, 8, 3, 1, 1, rng_c, "conv");
  nn::Conv2d conv_flip(3, 8, 3, 1, 1, rng_d, "conv");
  const Tensor x = RandomTensor({32, 64}, 70);
  const Tensor img = RandomTensor({4, 3, 12, 12}, 71);

  Tensor y_auto, z_auto;
  {
    IsaGuard guard(IsaRequest::kAuto);
    y_auto = lin_auto.Forward(x, /*train=*/false);
    z_auto = conv_auto.Forward(img, /*train=*/false);
  }
  Tensor y_flip, z_flip;
  {
    IsaGuard guard(IsaRequest::kAuto);
    (void)lin_flip.Forward(x, false);  // warm the cache under auto
    (void)conv_flip.Forward(img, false);
  }
  {
    IsaGuard guard(IsaRequest::kPortable);
    y_flip = lin_flip.Forward(x, false);  // must repack, not feed stale panels
    z_flip = conv_flip.Forward(img, false);
  }
  ExpectTensorsNear(y_flip, y_auto, 1e-5, "linear across ISAs");
  ExpectTensorsNear(z_flip, z_auto, 1e-5, "conv across ISAs");
}

}  // namespace
}  // namespace cip
