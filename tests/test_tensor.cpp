// Unit tests for the tensor core and free-function ops.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "testing_util.h"

namespace cip {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(ShapeToString(t.shape()), "[2, 3, 4]");
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillAndIndex) {
  Tensor t({2, 2}, 1.5f);
  EXPECT_EQ(t.At(1, 1), 1.5f);
  t.At(0, 1) = 3.0f;
  EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, ConstructFromDataChecksSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::FromList({1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({2, 3});
  EXPECT_EQ(r.At(1, 0), 4.0f);
  EXPECT_THROW(t.Reshaped({4, 2}), CheckError);
}

TEST(Tensor, SelfAssignmentPreservesContents) {
  // Both assignment operators must tolerate t = t / t = std::move(t); an
  // unguarded move-assign would leave data_ in a moved-from state.
  Tensor t = Tensor::FromList({1, 2, 3});
  Tensor& alias = t;
  t = alias;
  EXPECT_EQ(t[1], 2.0f);
  t = std::move(alias);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[2], 3.0f);
}

TEST(Tensor, VersionBumpsOnMutationOnly) {
  Tensor t({2, 2});
  const std::uint64_t v0 = t.version();
  (void)std::as_const(t).data();  // const access: no bump
  EXPECT_EQ(t.version(), v0);
  t.Fill(1.0f);
  EXPECT_GT(t.version(), v0);
}

TEST(Tensor, RowAndSlice) {
  Tensor t({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor row = t.Row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 3.0f);
  Tensor s = t.Slice(1, 3);
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_EQ(s.At(1, 1), 6.0f);
}

TEST(Ops, ElementwiseAndAxpy) {
  Tensor a = Tensor::FromList({1, 2, 3});
  Tensor b = Tensor::FromList({4, 5, 6});
  EXPECT_EQ(ops::Add(a, b)[2], 9.0f);
  EXPECT_EQ(ops::Sub(b, a)[0], 3.0f);
  EXPECT_EQ(ops::Mul(a, b)[1], 10.0f);
  ops::Axpy(a, 2.0f, b);
  EXPECT_EQ(a[0], 9.0f);
  Tensor c = Tensor::FromList({1, 2});
  EXPECT_THROW(ops::Add(a, c), CheckError);
}

TEST(Ops, ClipAndMask) {
  Tensor a = Tensor::FromList({-0.5f, 0.25f, 1.5f});
  Tensor mask = ops::ClipMask(a, 0.0f, 1.0f);
  EXPECT_EQ(mask[0], 0.0f);
  EXPECT_EQ(mask[1], 1.0f);
  EXPECT_EQ(mask[2], 0.0f);
  ops::ClipInPlace(a, 0.0f, 1.0f);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(a[2], 1.0f);
}

TEST(Ops, Reductions) {
  Tensor a = Tensor::FromList({-3, 4});
  EXPECT_FLOAT_EQ(ops::SumAll(a), 1.0f);
  EXPECT_FLOAT_EQ(ops::MeanAll(a), 0.5f);
  EXPECT_FLOAT_EQ(ops::L1Norm(a), 7.0f);
  EXPECT_FLOAT_EQ(ops::L2Norm(a), 5.0f);
  EXPECT_FLOAT_EQ(ops::MaxAll(a), 4.0f);
}

TEST(Ops, SumRows) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor s = ops::SumRows(a);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_FLOAT_EQ(s[0], 5.0f);
  EXPECT_FLOAT_EQ(s[2], 9.0f);
}

TEST(Ops, MatmulAgainstManual) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = ops::Matmul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(Ops, MatmulVariantsAgree) {
  Rng rng(3);
  Tensor a({4, 5});
  Tensor b({5, 6});
  for (float& v : a.flat()) v = rng.Normal();
  for (float& v : b.flat()) v = rng.Normal();
  const Tensor c = ops::Matmul(a, b);
  // MatmulTransB(a, bT) == a · b
  Tensor bt({6, 5});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 6; ++j) bt.At(j, i) = b.At(i, j);
  }
  const Tensor c2 = ops::MatmulTransB(a, bt);
  // MatmulTransA(aT, b) == a · b
  Tensor at({5, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) at.At(j, i) = a.At(i, j);
  }
  const Tensor c3 = ops::MatmulTransA(at, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c2[i], 1e-4f);
    EXPECT_NEAR(c[i], c3[i], 1e-4f);
  }
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor logits({3, 7});
  for (float& v : logits.flat()) v = rng.Normal(0.0f, 3.0f);
  const Tensor p = ops::SoftmaxRows(logits);
  for (std::size_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GT(p[i * 7 + j], 0.0f);
      s += p[i * 7 + j];
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits({1, 3}, std::vector<float>{1000.0f, 1001.0f, 999.0f});
  const Tensor p = ops::SoftmaxRows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[0], p[2]);
}

TEST(Ops, LogSoftmaxMatchesSoftmax) {
  Rng rng(6);
  Tensor logits({2, 5});
  for (float& v : logits.flat()) v = rng.Normal();
  const Tensor p = ops::SoftmaxRows(logits);
  const Tensor lp = ops::LogSoftmaxRows(logits);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(std::log(p[i]), lp[i], 1e-5f);
  }
}

TEST(Ops, CrossEntropyGradientMatchesNumeric) {
  Rng rng(7);
  Tensor logits({4, 3});
  for (float& v : logits.flat()) v = rng.Normal();
  const std::vector<int> labels = {0, 2, 1, 2};
  Tensor grad;
  ops::SoftmaxCrossEntropy(logits, labels, &grad);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double num = testing::NumericGrad(
        [&] { return ops::SoftmaxCrossEntropy(logits, labels, nullptr); },
        logits, i);
    EXPECT_LT(testing::RelErr(num, grad[i]), 1e-2)
        << "element " << i << " numeric " << num << " analytic " << grad[i];
  }
}

TEST(Ops, PerSampleCrossEntropyAveragesToBatchLoss) {
  Rng rng(8);
  Tensor logits({5, 4});
  for (float& v : logits.flat()) v = rng.Normal();
  const std::vector<int> labels = {3, 1, 0, 2, 1};
  const float batch = ops::SoftmaxCrossEntropy(logits, labels, nullptr);
  const std::vector<float> per = ops::PerSampleCrossEntropy(logits, labels);
  double mean = 0.0;
  for (float l : per) mean += l;
  mean /= static_cast<double>(per.size());
  EXPECT_NEAR(mean, batch, 1e-5);
}

TEST(Ops, ArgmaxRows) {
  Tensor scores({2, 3}, std::vector<float>{0.1f, 0.7f, 0.2f, 0.9f, 0.05f, 0.05f});
  const std::vector<int> am = ops::ArgmaxRows(scores);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(Ops, CrossEntropyRejectsBadLabels) {
  Tensor logits({1, 2});
  const std::vector<int> labels = {5};
  EXPECT_THROW(ops::SoftmaxCrossEntropy(logits, labels, nullptr), CheckError);
}

}  // namespace
}  // namespace cip
