// Loopback end-to-end: CipServer in-process, real cip_client processes.
//
// These are the acceptance tests for the wire layer's headline claim: a
// multi-process run over TCP produces a final global bit-identical to the
// in-process FederatedAveraging simulator given an equivalent fleet, seed,
// and fault plan. The clients are separate processes (posix_spawn of the
// cip_client binary at CIP_CLIENT_BIN) rather than threads, both to honor
// the repo's thread-confinement rule and because fork-style concurrency in
// a process that owns a worker pool is a deadlock. The test names carry the
// NetLoopback prefix on purpose: scripts/check.sh re-runs exactly this
// suite under asan and tsan as the socket smoke.
#include <gtest/gtest.h>

#include <spawn.h>
#include <sys/wait.h>

#include <cstring>
#include <string>
#include <vector>

#include "fl/client_store.h"
#include "fl/fault.h"
#include "fl/model_state.h"
#include "fl/server.h"
#include "net/demo_fleet.h"
#include "net/round_engine.h"
#include "net/server.h"

extern char** environ;

using namespace cip;

namespace {

bool SameBits(const fl::ModelState& a, const fl::ModelState& b) {
  return a.size() == b.size() &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Spawn one cip_client against 127.0.0.1:port claiming `id`; crash_in_round
/// 0 means an honest client. Returns the pid (gtest-fails and returns -1 if
/// the spawn itself failed).
pid_t SpawnClient(std::uint16_t port, std::size_t id,
                  std::size_t crash_in_round = 0) {
  std::vector<std::string> args = {
      CIP_CLIENT_BIN,     "--host", "127.0.0.1",
      "--port",           std::to_string(port),
      "--id",             std::to_string(id)};
  if (crash_in_round != 0) {
    args.push_back("--crash-in-round");
    args.push_back(std::to_string(crash_in_round));
  }
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc =
      posix_spawn(&pid, CIP_CLIENT_BIN, nullptr, nullptr, argv.data(), environ);
  EXPECT_EQ(rc, 0) << "posix_spawn(" << CIP_CLIENT_BIN
                   << "): " << std::strerror(rc);
  return rc == 0 ? pid : -1;
}

/// Wait for `pid` and return its exit code (-1 on abnormal termination).
int WaitExit(pid_t pid) {
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

net::AsyncRoundEngine::Options EngineOpts(std::size_t rounds,
                                          std::size_t fleet,
                                          std::size_t quorum,
                                          std::uint64_t seed) {
  net::AsyncRoundEngine::Options o;
  o.total_rounds = rounds;
  o.fleet_size = fleet;
  o.quorum = quorum;
  o.min_quorum = 1;
  o.run_seed = seed;
  return o;
}

/// The in-process twin: same demo fleet, same seed, optional fault plan.
fl::FlLog InProcessRun(std::size_t rounds, std::size_t fleet,
                       std::uint64_t seed, fl::FaultPlan faults = {}) {
  fl::ClientStore store;  // live store: tiny fleet, plain ownership
  for (std::size_t id = 0; id < fleet; ++id) {
    store.Add(net::MakeDemoClient(id));
  }
  fl::FlOptions opts;
  opts.rounds = rounds;
  opts.faults = std::move(faults);
  fl::FederatedAveraging engine(net::DemoInitialState(), opts);
  return engine.Run(store, seed);
}

}  // namespace

TEST(NetLoopback, ThreeClientsThreeAsyncRounds) {
  // Fully synchronous configuration (quorum == fleet): three real client
  // processes, three buffered rounds, and the final aggregate must be
  // bit-identical to the in-process simulator on the same fleet and seed.
  constexpr std::size_t kRounds = 3, kFleet = 3;
  constexpr std::uint64_t kSeed = 41;
  net::CipServer server(net::DemoInitialState(),
                        EngineOpts(kRounds, kFleet, /*quorum=*/kFleet, kSeed),
                        net::ServerOptions{});
  server.Listen();

  std::vector<pid_t> pids;
  for (std::size_t id = 0; id < kFleet; ++id) {
    pids.push_back(SpawnClient(server.port(), id));
  }
  server.Serve();
  for (std::size_t id = 0; id < kFleet; ++id) {
    EXPECT_EQ(WaitExit(pids[id]), 0) << "client " << id;
  }

  const auto& eng = server.engine();
  EXPECT_TRUE(eng.done());
  EXPECT_EQ(eng.stats().rounds_completed, kRounds);
  EXPECT_EQ(eng.stats().rounds_skipped, 0u);
  EXPECT_EQ(eng.stats().folded_stragglers, 0u);
  EXPECT_EQ(eng.stats().protocol_errors, 0u);
  EXPECT_EQ(server.stats().accepted_connections, kFleet);

  const fl::FlLog reference = InProcessRun(kRounds, kFleet, kSeed);
  EXPECT_TRUE(SameBits(eng.global(), reference.final_global))
      << "wire aggregate diverged from the in-process run";
}

TEST(NetLoopback, MidRoundKillBitIdenticalToFaultPlan) {
  // Client 2 is killed mid-run: it receives kRound(2) and exits without
  // replying, so the server observes a connection drop while round 2 waits
  // on it. The surviving fleet must finish all four rounds, and the result
  // must equal the in-process run under the equivalent FaultPlan — forced
  // kDropout for client 2 in every round from the kill on.
  constexpr std::size_t kRounds = 4, kFleet = 3, kKillRound = 2;
  constexpr std::uint64_t kSeed = 41;
  net::CipServer server(net::DemoInitialState(),
                        EngineOpts(kRounds, kFleet, /*quorum=*/kFleet, kSeed),
                        net::ServerOptions{});
  server.Listen();

  std::vector<pid_t> pids;
  for (std::size_t id = 0; id + 1 < kFleet; ++id) {
    pids.push_back(SpawnClient(server.port(), id));
  }
  pids.push_back(SpawnClient(server.port(), kFleet - 1, kKillRound));
  server.Serve();
  EXPECT_EQ(WaitExit(pids[0]), 0);
  EXPECT_EQ(WaitExit(pids[1]), 0);
  EXPECT_EQ(WaitExit(pids[2]), 3);  // cip_client's "crashed on purpose" code

  const auto& eng = server.engine();
  EXPECT_TRUE(eng.done());
  EXPECT_EQ(eng.stats().rounds_completed, kRounds);
  EXPECT_EQ(server.stats().dropped_connections, 1u);

  fl::FaultPlan faults;
  for (std::size_t r = kKillRound; r <= kRounds; ++r) {
    faults.forced.push_back({r, kFleet - 1, fl::FaultKind::kDropout});
  }
  const fl::FlLog reference = InProcessRun(kRounds, kFleet, kSeed, faults);
  EXPECT_TRUE(SameBits(eng.global(), reference.final_global))
      << "degradation on the wire diverged from the FaultPlan run";
}

TEST(NetLoopback, QuorumTwoOfThreeFoldsStragglersAndFinishesEveryone) {
  // Genuinely asynchronous configuration: rounds close at the first 2 of 3
  // updates and the third client's update folds into the next round as a
  // straggler. Everything about *which* client is slow is scheduler noise,
  // so this test asserts protocol outcomes, not aggregate bits: all three
  // clients must still receive kFinal and exit cleanly (the in-flight
  // straggler at run end gets kFinal in reply to its late update), and
  // every round must have aggregated.
  constexpr std::size_t kRounds = 3, kFleet = 3;
  net::CipServer server(net::DemoInitialState(),
                        EngineOpts(kRounds, kFleet, /*quorum=*/2, 77),
                        net::ServerOptions{});
  server.Listen();

  std::vector<pid_t> pids;
  for (std::size_t id = 0; id < kFleet; ++id) {
    pids.push_back(SpawnClient(server.port(), id));
  }
  server.Serve();
  for (std::size_t id = 0; id < kFleet; ++id) {
    EXPECT_EQ(WaitExit(pids[id]), 0) << "client " << id;
  }

  const auto& eng = server.engine();
  EXPECT_TRUE(eng.done());
  EXPECT_EQ(eng.stats().rounds_completed, kRounds);
  EXPECT_EQ(eng.stats().protocol_errors, 0u);
  // Every update the clients sent was either folded or answered with
  // kFinal; none may have tripped the duplicate/future checks.
  EXPECT_GE(eng.stats().updates_accepted, kRounds * 2u);
}
