// Gradient-check tests for every layer and for the composed classifiers.
// Each analytic backward pass is compared against central differences on a
// scalar loss, for both parameters and inputs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/backbones.h"
#include "nn/classifier.h"
#include "nn/conv2d.h"
#include "nn/dual_channel.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace cip {
namespace {

using nn::Module;
using nn::Parameter;

/// Scalar "loss" = dot(output, fixed random direction). Its gradient w.r.t.
/// the output is the direction, making analytic backprop easy to drive.
struct ProbeLoss {
  Tensor direction;

  explicit ProbeLoss(const Shape& out_shape, Rng& rng)
      : direction(out_shape) {
    for (float& v : direction.flat()) v = rng.Normal();
  }
  double operator()(const Tensor& out) const {
    return ops::Dot(out, direction);
  }
};

/// Checks d(dot(module(x), dir))/d· against numeric for input and params.
void GradCheckModule(Module& module, Tensor x, Rng& rng,
                     double tol = 2e-2) {
  Tensor probe_out = module.Forward(x, /*train=*/false);
  module.ClearCache();
  ProbeLoss loss(probe_out.shape(), rng);

  auto eval = [&] {
    const Tensor out = module.Forward(x, /*train=*/false);
    return loss(out);
  };

  Tensor out = module.Forward(x, /*train=*/true);
  Tensor dx = module.Backward(loss.direction);
  ASSERT_TRUE(dx.SameShape(x));

  // Input gradient: check a sample of elements.
  Rng pick(42);
  const std::size_t n_input_checks = std::min<std::size_t>(x.size(), 20);
  for (std::size_t k = 0; k < n_input_checks; ++k) {
    const std::size_t i = pick.Index(x.size());
    EXPECT_LT(testing::NumericGradError(eval, x, i, dx[i]), tol)
        << "input grad " << i << " analytic " << dx[i];
  }
  // Parameter gradients.
  for (Parameter* p : module.Parameters()) {
    const std::size_t n_checks = std::min<std::size_t>(p->value.size(), 12);
    for (std::size_t k = 0; k < n_checks; ++k) {
      const std::size_t i = pick.Index(p->value.size());
      EXPECT_LT(testing::NumericGradError(eval, p->value, i, p->grad[i]), tol)
          << p->name << "[" << i << "] analytic " << p->grad[i];
    }
  }
  module.ZeroGrad();
}

Tensor RandomTensor(const Shape& shape, Rng& rng, float scale = 1.0f) {
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.Normal(0.0f, scale);
  return t;
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  nn::Linear layer(5, 3, rng);
  GradCheckModule(layer, RandomTensor({4, 5}, rng), rng);
}

TEST(GradCheck, Conv2dStride1Pad1) {
  Rng rng(2);
  nn::Conv2d layer(2, 3, 3, 1, 1, rng);
  GradCheckModule(layer, RandomTensor({2, 2, 5, 5}, rng), rng);
}

TEST(GradCheck, Conv2dStride2NoPad) {
  Rng rng(3);
  nn::Conv2d layer(1, 2, 3, 2, 0, rng);
  GradCheckModule(layer, RandomTensor({2, 1, 7, 7}, rng), rng);
}

TEST(GradCheck, Conv2d1x1) {
  Rng rng(4);
  nn::Conv2d layer(3, 2, 1, 1, 0, rng);
  GradCheckModule(layer, RandomTensor({2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, ReLU) {
  Rng rng(5);
  nn::ReLU layer;
  // Offset inputs away from the kink so central differences are valid.
  Tensor x = RandomTensor({3, 6}, rng);
  for (float& v : x.flat()) {
    if (std::abs(v) < 0.05f) v = 0.2f;
  }
  GradCheckModule(layer, x, rng);
}

TEST(GradCheck, AvgPool) {
  Rng rng(6);
  nn::AvgPool2d layer(2);
  GradCheckModule(layer, RandomTensor({2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, MaxPool) {
  Rng rng(7);
  nn::MaxPool2d layer(2);
  // Spread values so the argmax does not flip under the probe epsilon.
  Tensor x = RandomTensor({2, 2, 4, 4}, rng, 3.0f);
  GradCheckModule(layer, x, rng);
}

TEST(GradCheck, GlobalAvgPoolImage) {
  Rng rng(8);
  nn::GlobalAvgPool layer;
  GradCheckModule(layer, RandomTensor({2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, GlobalAvgPoolVectorPassthrough) {
  Rng rng(9);
  nn::GlobalAvgPool layer;
  Tensor x = RandomTensor({3, 5}, rng);
  const Tensor y = layer.Forward(x, false);
  EXPECT_TRUE(y.SameShape(x));
  GradCheckModule(layer, x, rng);
}

TEST(GradCheck, ResidualBlock) {
  Rng rng(10);
  auto inner = std::make_unique<nn::Sequential>();
  inner->Add(std::make_unique<nn::Conv2d>(2, 2, 3, 1, 1, rng, "c"));
  nn::Residual layer(std::move(inner));
  GradCheckModule(layer, RandomTensor({2, 2, 4, 4}, rng), rng);
}

TEST(GradCheck, DenseConcatBlock) {
  Rng rng(11);
  auto inner = std::make_unique<nn::Sequential>();
  inner->Add(std::make_unique<nn::Conv2d>(2, 3, 3, 1, 1, rng, "c"));
  nn::DenseConcat layer(std::move(inner));
  Tensor x = RandomTensor({2, 2, 4, 4}, rng);
  const Tensor y = layer.Forward(x, false);
  EXPECT_EQ(y.dim(1), 5u);  // 2 input + 3 grown channels
  GradCheckModule(layer, x, rng);
}

TEST(GradCheck, SequentialStack) {
  Rng rng(12);
  auto seq = std::make_unique<nn::Sequential>();
  seq->Add(std::make_unique<nn::Conv2d>(1, 2, 3, 1, 1, rng, "c1"))
      .Add(std::make_unique<nn::ReLU>())
      .Add(std::make_unique<nn::MaxPool2d>(2));
  GradCheckModule(*seq, RandomTensor({2, 1, 4, 4}, rng, 2.0f), rng);
}

// ---- full classifiers -------------------------------------------------------

/// Gradcheck a classifier's cross-entropy loss w.r.t. inputs and a parameter
/// sample.
void GradCheckClassifier(nn::Classifier& model, Tensor x,
                         const std::vector<int>& labels, double tol = 3e-2) {
  auto eval = [&] {
    const Tensor logits = model.Forward(x, false);
    return ops::SoftmaxCrossEntropy(logits, labels, nullptr);
  };
  const Tensor logits = model.Forward(x, true);
  Tensor dlogits;
  ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
  const Tensor dx = model.Backward(dlogits);

  Rng pick(99);
  for (std::size_t k = 0; k < 10; ++k) {
    const std::size_t i = pick.Index(x.size());
    EXPECT_LT(testing::NumericGradError(eval, x, i, dx[i]), tol)
        << "input " << i;
  }
  const std::vector<nn::Parameter*> params = model.Parameters();
  for (std::size_t pi = 0; pi < params.size(); pi += 3) {
    nn::Parameter* p = params[pi];
    const std::size_t i = pick.Index(p->value.size());
    EXPECT_LT(testing::NumericGradError(eval, p->value, i, p->grad[i]), tol)
        << p->name;
  }
  model.ZeroGrad();
}

nn::ModelSpec TinyImageSpec(nn::Arch arch) {
  nn::ModelSpec spec;
  spec.arch = arch;
  spec.input_shape = {2, 8, 8};
  spec.num_classes = 4;
  spec.width = 4;
  spec.seed = 21;
  return spec;
}

TEST(GradCheck, ResNetClassifier) {
  Rng rng(13);
  auto model = nn::MakeClassifier(TinyImageSpec(nn::Arch::kResNet));
  GradCheckClassifier(*model, RandomTensor({2, 2, 8, 8}, rng), {1, 3});
}

TEST(GradCheck, DenseNetClassifier) {
  Rng rng(14);
  auto model = nn::MakeClassifier(TinyImageSpec(nn::Arch::kDenseNet));
  GradCheckClassifier(*model, RandomTensor({2, 2, 8, 8}, rng), {0, 2});
}

TEST(GradCheck, VggClassifier) {
  Rng rng(15);
  auto model = nn::MakeClassifier(TinyImageSpec(nn::Arch::kVGG));
  GradCheckClassifier(*model, RandomTensor({2, 2, 8, 8}, rng), {2, 1});
}

TEST(GradCheck, MlpClassifier) {
  Rng rng(16);
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {10};
  spec.num_classes = 3;
  spec.width = 4;
  auto model = nn::MakeClassifier(spec);
  GradCheckClassifier(*model, RandomTensor({3, 10}, rng), {0, 1, 2});
}

// ---- dual-channel specifics --------------------------------------------------

TEST(DualChannel, SharedBackboneGradientsMatchNumeric) {
  Rng rng(17);
  auto model = nn::MakeDualChannelClassifier(TinyImageSpec(nn::Arch::kResNet));
  Tensor x1 = RandomTensor({2, 2, 8, 8}, rng);
  Tensor x2 = RandomTensor({2, 2, 8, 8}, rng);
  const std::vector<int> labels = {1, 2};

  auto eval = [&] {
    const Tensor logits = model->Forward(x1, x2, false);
    return ops::SoftmaxCrossEntropy(logits, labels, nullptr);
  };
  const Tensor logits = model->Forward(x1, x2, true);
  Tensor dlogits;
  ops::SoftmaxCrossEntropy(logits, labels, &dlogits);
  auto [dx1, dx2] = model->Backward(dlogits);

  Rng pick(7);
  for (std::size_t k = 0; k < 8; ++k) {
    const std::size_t i = pick.Index(x1.size());
    EXPECT_LT(testing::NumericGradError(eval, x1, i, dx1[i]), 3e-2)
        << "dx1[" << i << "]";
    const std::size_t j = pick.Index(x2.size());
    EXPECT_LT(testing::NumericGradError(eval, x2, j, dx2[j]), 3e-2)
        << "dx2[" << j << "]";
  }
  // Shared-backbone parameter gradients accumulate over both channels.
  const std::vector<nn::Parameter*> params = model->Parameters();
  for (std::size_t pi = 0; pi < params.size(); pi += 4) {
    nn::Parameter* p = params[pi];
    const std::size_t i = pick.Index(p->value.size());
    EXPECT_LT(testing::NumericGradError(eval, p->value, i, p->grad[i]), 3e-2)
        << p->name;
  }
}

TEST(DualChannel, HeadWidthIsDoubleFeatureDim) {
  auto dual = nn::MakeDualChannelClassifier(TinyImageSpec(nn::Arch::kVGG));
  auto single = nn::MakeClassifier(TinyImageSpec(nn::Arch::kVGG));
  // Same backbone: dual adds only (feature_dim * classes) extra head weights.
  const std::size_t extra =
      dual->ParameterCount() - single->ParameterCount();
  EXPECT_EQ(extra, dual->feature_dim() * dual->num_classes());
}

TEST(DualChannel, DeterministicInitFromSpec) {
  const nn::ModelSpec spec = TinyImageSpec(nn::Arch::kDenseNet);
  auto a = nn::MakeDualChannelClassifier(spec);
  auto b = nn::MakeDualChannelClassifier(spec);
  const auto pa = a->Parameters();
  const auto pb = b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

TEST(Module, BackwardWithoutForwardThrows) {
  Rng rng(18);
  nn::Linear layer(3, 2, rng);
  Tensor g({1, 2});
  EXPECT_THROW(layer.Backward(g), CheckError);
}

TEST(Module, ParameterCountMatchesManualCount) {
  Rng rng(19);
  nn::Linear layer(5, 3, rng);
  EXPECT_EQ(layer.ParameterCount(), 5u * 3u + 3u);
  nn::Conv2d conv(2, 4, 3, 1, 1, rng);
  EXPECT_EQ(conv.ParameterCount(), 4u * 2u * 9u + 4u);
}

}  // namespace
}  // namespace cip
