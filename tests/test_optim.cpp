// Optimizer and schedule tests.
#include <gtest/gtest.h>

#include "nn/linear.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace cip {
namespace {

/// Minimize ||W||² through repeated steps; every optimizer must shrink it.
template <typename Opt>
void CheckShrinksQuadratic(Opt& opt) {
  Rng rng(1);
  nn::Linear layer(4, 4, rng);
  const std::vector<nn::Parameter*> params = layer.Parameters();
  const float initial = ops::L2Norm(params[0]->value);
  for (int step = 0; step < 50; ++step) {
    for (nn::Parameter* p : params) {
      // d(0.5‖v‖²)/dv = v
      p->grad = p->value;
    }
    opt.Step(params);
  }
  EXPECT_LT(ops::L2Norm(params[0]->value), 0.5f * initial);
}

TEST(Sgd, ShrinksQuadratic) {
  optim::Sgd opt(0.05f);
  CheckShrinksQuadratic(opt);
}

TEST(Sgd, MomentumShrinksQuadratic) {
  optim::Sgd opt(0.02f, 0.9f);
  CheckShrinksQuadratic(opt);
}

TEST(Adam, ShrinksQuadratic) {
  optim::Adam opt(0.05f);
  CheckShrinksQuadratic(opt);
}

TEST(Sgd, StepZeroesGradients) {
  Rng rng(2);
  nn::Linear layer(3, 2, rng);
  const std::vector<nn::Parameter*> params = layer.Parameters();
  params[0]->grad.Fill(1.0f);
  optim::Sgd opt(0.1f);
  opt.Step(params);
  for (float g : params[0]->grad.flat()) EXPECT_EQ(g, 0.0f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Rng rng(3);
  nn::Linear layer(3, 3, rng);
  const std::vector<nn::Parameter*> params = layer.Parameters();
  const float initial = ops::L2Norm(params[0]->value);
  optim::Sgd opt(0.1f, 0.0f, 0.1f);
  for (int i = 0; i < 20; ++i) opt.Step(params);  // zero grads, only decay
  EXPECT_LT(ops::L2Norm(params[0]->value), initial);
}

TEST(Sgd, ExactUpdateRule) {
  Rng rng(4);
  nn::Linear layer(1, 1, rng);
  const std::vector<nn::Parameter*> params = layer.Parameters();
  const float w0 = params[0]->value[0];
  params[0]->grad[0] = 2.0f;
  optim::Sgd opt(0.25f);
  opt.Step(params);
  EXPECT_FLOAT_EQ(params[0]->value[0], w0 - 0.25f * 2.0f);
}

TEST(Adam, FirstStepIsLrSizedRegardlessOfGradScale) {
  // Bias correction makes the first update ≈ lr·sign(g).
  Rng rng(5);
  nn::Linear layer(1, 1, rng);
  const std::vector<nn::Parameter*> params = layer.Parameters();
  const float w0 = params[0]->value[0];
  params[0]->grad[0] = 123.0f;
  optim::Adam opt(0.01f);
  opt.Step(params);
  EXPECT_NEAR(params[0]->value[0], w0 - 0.01f, 1e-4f);
}

TEST(Schedule, StepDecay) {
  optim::StepDecaySchedule sched(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(sched.LrAt(0), 1.0f);
  EXPECT_FLOAT_EQ(sched.LrAt(9), 1.0f);
  EXPECT_FLOAT_EQ(sched.LrAt(10), 0.5f);
  EXPECT_FLOAT_EQ(sched.LrAt(25), 0.25f);
}

TEST(Optimizer, RejectsBadHyperparameters) {
  EXPECT_THROW(optim::Sgd(-0.1f), CheckError);
  EXPECT_THROW(optim::Sgd(0.0f), CheckError);
  EXPECT_THROW(optim::StepDecaySchedule(1.0f, 0.5f, 0), CheckError);
}

}  // namespace
}  // namespace cip
