// Stress tests for ParallelFor / ParallelForCoarse — now backed by the
// persistent worker pool — and the federated round engine built on them:
// TSan-visible write patterns, spawn storms across changing budgets, nested
// dispatch from inside a worker, exception propagation from workers, the
// legacy CIP_SPAWN_THREADS=1 spawn-per-call path, and strict CIP_THREADS
// parsing. Designed to run under the `tsan` preset — the overlapping-write
// scenarios only touch shared state through atomics, so a clean run
// certifies the harness itself is race-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/parallel.h"
#include "data/partition.h"
#include "fl/client_factory.h"
#include "fl/server.h"
#include "nn/conv2d.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace cip {
namespace {

constexpr std::size_t kN = 1 << 15;
constexpr std::size_t kThreads = 4;  // force real workers even on 1-core CI

TEST(ParallelStress, DisjointWritesCoverRange) {
  std::vector<int> hits(kN, 0);
  ParallelFor(0, kN, [&](std::size_t i) { hits[i] += 1; }, kThreads);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
}

TEST(ParallelStress, OverlappingAtomicCounter) {
  // Every index increments the same counter: maximal contention, race-free
  // only because the counter is atomic. TSan certifies exactly that.
  std::atomic<std::size_t> counter{0};
  ParallelFor(0, kN, [&](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }, kThreads);
  EXPECT_EQ(counter.load(), kN);
}

TEST(ParallelStress, OverlappingSharedCells) {
  // All workers hammer a small set of shared cells (indices collide mod 8).
  std::vector<std::atomic<int>> cells(8);
  ParallelFor(0, kN, [&](std::size_t i) {
    cells[i % cells.size()].fetch_add(1, std::memory_order_relaxed);
  }, kThreads);
  int total = 0;
  for (auto& c : cells) total += c.load();
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ParallelStress, NestedParallelFor) {
  // Outer level parallel, inner level re-enters ParallelFor; must neither
  // deadlock nor race.
  std::atomic<std::size_t> counter{0};
  ParallelFor(0, 64, [&](std::size_t) {
    ParallelFor(0, 64, [&](std::size_t) {
      counter.fetch_add(1, std::memory_order_relaxed);
    }, 2);
  }, kThreads);
  EXPECT_EQ(counter.load(), 64u * 64u);
}

TEST(ParallelStress, WorkerExceptionPropagatesToCaller) {
  // A throw inside a worker must surface on the calling thread (historically
  // this killed the process via std::terminate in the jthread).
  EXPECT_THROW(
      ParallelFor(0, kN, [](std::size_t i) {
        if (i == kN / 2) throw std::runtime_error("worker failed");
      }, kThreads),
      std::runtime_error);
}

TEST(ParallelStress, WorkerCheckErrorPropagatesToCaller) {
  // The library's own contract system communicates misuse by throwing; a
  // CIP_CHECK tripping inside a parallel region must reach the caller.
  EXPECT_THROW(
      ParallelFor(0, kN, [](std::size_t i) { CIP_CHECK_LT(i, kN / 2); },
                  kThreads),
      CheckError);
}

TEST(ParallelStress, FirstExceptionWinsAndOthersAreSwallowed) {
  // Many workers throw; exactly one exception must arrive, and it must be one
  // of the thrown types. Later workers bail out early.
  try {
    ParallelFor(0, kN, [](std::size_t) { throw std::runtime_error("any"); },
                kThreads);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "any");
  }
}

TEST(ParallelStress, ExceptionOnSerialPathAlsoPropagates) {
  // Small ranges take the serial fast path; semantics must match.
  EXPECT_THROW(
      ParallelFor(0, 4, [](std::size_t) { throw std::logic_error("serial"); },
                  kThreads),
      std::logic_error);
}

TEST(ParallelStress, StateIsConsistentAfterWorkerException) {
  // Indices before the failing one in the same chunk are executed; the call
  // must not leak threads or corrupt the done-flags (TSan would flag both).
  std::vector<std::atomic<int>> done(kN);
  EXPECT_THROW(
      ParallelFor(0, kN, [&](std::size_t i) {
        if (i == 17) throw std::runtime_error("mid-chunk");
        done[i].store(1, std::memory_order_relaxed);
      }, kThreads),
      std::runtime_error);
  EXPECT_EQ(done[17].load(), 0);
  // Re-running on the same state works fine.
  ParallelFor(0, kN, [&](std::size_t i) {
    done[i].store(1, std::memory_order_relaxed);
  }, kThreads);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(done[i].load(), 1);
}

TEST(ParallelStress, EmptyAndReversedRangesAreNoOps) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); }, kThreads);
  ParallelFor(9, 3, [&](std::size_t) { calls.fetch_add(1); }, kThreads);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelCoarseStress, SmallRangesStillRunOnWorkers) {
  // ParallelFor serializes n < 16; ParallelForCoarse must not — a 4-client
  // federated round is exactly a 4-element range. Prove genuine concurrency:
  // 4 workers all block until everyone has arrived; only real parallelism
  // (not time-slicing of a serial loop) lets the rendezvous complete.
  std::atomic<int> arrived{0};
  ParallelForCoarse(0, 4, [&](std::size_t) {
    arrived.fetch_add(1, std::memory_order_relaxed);
    while (arrived.load(std::memory_order_relaxed) < 4) {
      std::this_thread::yield();
    }
  }, kThreads);
  EXPECT_EQ(arrived.load(), 4);
}

TEST(ParallelCoarseStress, OverlappingAtomicCounter) {
  std::atomic<std::size_t> counter{0};
  ParallelForCoarse(0, kN, [&](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }, kThreads);
  EXPECT_EQ(counter.load(), kN);
}

TEST(ParallelCoarseStress, WorkerExceptionPropagatesToCaller) {
  EXPECT_THROW(
      ParallelForCoarse(0, 4, [](std::size_t i) {
        if (i == 2) throw std::runtime_error("coarse worker failed");
      }, kThreads),
      std::runtime_error);
}

TEST(ParallelCoarseStress, SingleElementRangeRunsSerially) {
  std::atomic<int> calls{0};
  ParallelForCoarse(3, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 3u);
    calls.fetch_add(1);
  }, kThreads);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelStress, SpawnStormAcrossChangingBudgets) {
  // Hundreds of back-to-back parallel regions with a different explicit
  // budget each time: exercises lazy pool growth, generation handoff, and
  // worker parking under maximal churn. Budgets above the current worker
  // count force mid-storm growth.
  std::atomic<std::size_t> counter{0};
  std::size_t expected = 0;
  for (std::size_t rep = 0; rep < 300; ++rep) {
    const std::size_t budget = (rep % 8) + 1;
    const std::size_t n = 16 + (rep % 61);
    ParallelForCoarse(0, n, [&](std::size_t) {
      counter.fetch_add(1, std::memory_order_relaxed);
    }, budget);
    expected += n;
  }
  EXPECT_EQ(counter.load(), expected);
  // Workers are persistent and bounded by the largest budget ever requested.
  EXPECT_LE(internal::PoolWorkerCount(), kMaxParallelThreads - 1);
}

TEST(ParallelStress, PoolGrowsLazilyAndPersists) {
  const std::size_t before = internal::PoolWorkerCount();
  ParallelForCoarse(0, 8, [](std::size_t) {}, kThreads);
  const std::size_t after = internal::PoolWorkerCount();
  // A budget of kThreads needs kThreads-1 workers (the caller participates).
  EXPECT_GE(after, kThreads - 1);
  EXPECT_GE(after, before);  // never shrinks
}

TEST(ParallelStress, NestedCallFromWorkerRunsInline) {
  // The pool runs one job at a time, so a nested ParallelFor issued from a
  // worker must run serially inline on that worker (not re-enter the pool,
  // which would deadlock). Assert every inner index runs on the thread that
  // issued the nested call.
  std::atomic<std::size_t> wrong_thread{0};
  std::atomic<std::size_t> inner_total{0};
  ParallelForCoarse(0, 4, [&](std::size_t) {
    EXPECT_TRUE(internal::InParallelRegion());
    const auto outer_id = std::this_thread::get_id();
    ParallelForCoarse(0, 8, [&](std::size_t) {
      if (std::this_thread::get_id() != outer_id) {
        wrong_thread.fetch_add(1, std::memory_order_relaxed);
      }
      inner_total.fetch_add(1, std::memory_order_relaxed);
    }, kThreads);
  }, kThreads);
  EXPECT_FALSE(internal::InParallelRegion());
  EXPECT_EQ(wrong_thread.load(), 0u);
  EXPECT_EQ(inner_total.load(), 4u * 8u);
}

TEST(ParallelStress, ExplicitBudgetOverload) {
  // Budget far beyond the range (and the machine): chunking clamps to one
  // index per chunk and every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  ParallelForCoarse(0, 3, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }, /*max_threads=*/32);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // And a large range under a large budget, repeatedly.
  std::atomic<std::size_t> counter{0};
  for (int rep = 0; rep < 4; ++rep) {
    ParallelFor(0, kN, [&](std::size_t) {
      counter.fetch_add(1, std::memory_order_relaxed);
    }, /*max_threads=*/32);
  }
  EXPECT_EQ(counter.load(), 4 * kN);
}

TEST(ParallelStress, DistinctWorkersActuallyParticipate) {
  // With a blocking rendezvous the runners must be distinct OS threads:
  // collect their ids and require kThreads unique ones.
  std::mutex m;
  std::set<std::thread::id> ids;
  std::atomic<int> arrived{0};
  ParallelForCoarse(0, kThreads, [&](std::size_t) {
    {
      std::lock_guard<std::mutex> lock(m);
      ids.insert(std::this_thread::get_id());
    }
    arrived.fetch_add(1, std::memory_order_relaxed);
    while (arrived.load(std::memory_order_relaxed) <
           static_cast<int>(kThreads)) {
      std::this_thread::yield();
    }
  }, kThreads);
  EXPECT_EQ(ids.size(), kThreads);
}

TEST(ParallelStress, SpawnPerCallPathStillWorks) {
  // The legacy CIP_SPAWN_THREADS=1 dispatch (a thread per chunk, per call)
  // stays behaviorally identical: disjoint writes, exception propagation,
  // and determinism of the chunk partition.
  internal::SetSpawnPerCallForTesting(true);
  std::vector<int> hits(kN, 0);
  ParallelFor(0, kN, [&](std::size_t i) { hits[i] += 1; }, kThreads);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_THROW(
      ParallelFor(0, kN, [](std::size_t i) {
        if (i == 99) throw std::runtime_error("spawned worker failed");
      }, kThreads),
      std::runtime_error);
  internal::SetSpawnPerCallForTesting(false);
}

TEST(ParallelStress, PoolIsReusableAfterException) {
  // A throw must not wedge the pool: the very next region runs fine.
  EXPECT_THROW(
      ParallelForCoarse(0, 8, [](std::size_t) {
        throw std::runtime_error("boom");
      }, kThreads),
      std::runtime_error);
  std::atomic<std::size_t> counter{0};
  ParallelForCoarse(0, 8, [&](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }, kThreads);
  EXPECT_EQ(counter.load(), 8u);
}

TEST(ParallelStress, GemmBitIdenticalAcrossDispatchModes) {
  // The chunk partition depends only on (range, budget), never on which
  // thread runs a chunk — so a parallel GEMM must be bit-identical between
  // the pool and the legacy spawn path. This is the kernel-level half of the
  // FL round bit-identity invariant (tests/test_round_engine.cpp holds the
  // round-level half).
  Rng rng(123);
  Tensor a({128, 128}), b({128, 128});
  for (float& v : a.flat()) v = rng.Normal();
  for (float& v : b.flat()) v = rng.Normal();
  const Tensor pool_c = ops::Matmul(a, b);
  internal::SetSpawnPerCallForTesting(true);
  const Tensor spawn_c = ops::Matmul(a, b);
  internal::SetSpawnPerCallForTesting(false);
  ASSERT_EQ(pool_c.size(), spawn_c.size());
  EXPECT_EQ(std::memcmp(pool_c.data(), spawn_c.data(),
                        pool_c.size() * sizeof(float)),
            0);
}

TEST(ParallelStress, ConcurrentTopLevelRegionsMakeProgress) {
  // Two independent top-level regions whose bodies rendezvous with each
  // other. The pool runs one region at a time, so the second caller must
  // fall back to spawn dispatch instead of parking on the pool mutex — if
  // top-level callers serialized, the first region would spin forever
  // waiting for arrivals from a region that can never start. Regression
  // test for exactly that deadlock.
  std::atomic<int> arrived{0};
  const auto region = [&arrived] {
    ParallelForCoarse(0, 2, [&](std::size_t) {
      arrived.fetch_add(1, std::memory_order_relaxed);
      while (arrived.load(std::memory_order_relaxed) < 4) {
        std::this_thread::yield();
      }
    }, 2);
  };
  {
    // An external top-level caller thread; allowlisted raw-thread use — the
    // library API alone cannot produce two concurrent top-level regions
    // (anything launched through it is nested and runs inline).
    const std::jthread other(region);
    region();
  }
  EXPECT_EQ(arrived.load(), 4);
}

TEST(ParallelStress, ConvGemmTopLevelParallelIsRaceFree) {
  // Regression: Conv2d's im2col/col2im dispatches used to invoke non-const
  // Tensor::data() on the shared scratch tensor from inside the parallel
  // region, racing every worker on the (unsynchronized) version counter.
  // Batch >= 16 so the per-sample ParallelFor really goes parallel at top
  // level — FL-round suites run conv nested-serial under ParallelForCoarse
  // and cannot catch this. Per-sample work is sized so the caller cannot
  // drain every chunk before a pool worker wakes (a worker that never claims
  // a chunk never touches the counter and the race goes unobserved), and the
  // loop repeats to give the scheduler many windows. TSan certifies the fix.
  Rng rng(7);
  nn::Conv2d conv(3, 8, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng, "c");
  Tensor x({32, 3, 24, 24});
  for (float& v : x.flat()) v = rng.Normal();
  for (int rep = 0; rep < 8; ++rep) {
    const Tensor y = conv.Forward(x, /*train=*/true);
    const Tensor g(y.shape(), 0.5f);
    const Tensor dx = conv.Backward(g);
    ASSERT_EQ(dx.shape(), x.shape());
  }
}

TEST(RoundEngineStress, ParallelFederationIsRaceFree) {
  // The real round engine under TSan: 8 tiny MLP clients training
  // concurrently on 8 workers for 2 rounds. Any shared mutable state in the
  // client phase (models, optimizers, RNGs, telemetry slots) shows up here.
  constexpr std::size_t kClients = 8;
  Rng rng(6);
  data::Dataset full = testing::TwoBlobs(16 * kClients, 4, rng);
  for (float& v : full.inputs.flat()) {
    v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  }
  const auto shards = data::PartitionIid(full, kClients, rng);

  fl::ClientSpec spec;
  spec.kind = fl::ClientKind::kLegacy;
  spec.model.arch = nn::Arch::kMLP;
  spec.model.input_shape = {4};
  spec.model.num_classes = 2;
  spec.model.width = 4;
  spec.model.seed = 3;
  spec.train.lr = 0.1f;
  fl::ClientStore store;
  for (std::size_t k = 0; k < kClients; ++k) {
    spec.data = shards[k];
    spec.seed = 60 + k;
    store.Add(fl::MakeClient(spec));
  }

  fl::FlOptions opts;
  opts.rounds = 2;
  opts.max_parallel_clients = kClients;
  fl::FederatedAveraging server(fl::InitialStateFor(spec), opts);
  const fl::FlLog log = server.Run(store, 61);
  EXPECT_EQ(log.telemetry.rounds.size(), 2u);
  EXPECT_EQ(log.client_losses.at(0).size(), kClients);
}

TEST(ParallelThreadsEnv, DefaultIsAtLeastOne) {
  EXPECT_GE(ParallelThreads(), 1u);
  EXPECT_LE(ParallelThreads(), kMaxParallelThreads);
}

TEST(ParallelThreadsEnv, ParseAcceptsWholeDecimalIntegers) {
  EXPECT_EQ(internal::ParseThreadCount("1"), 1u);
  EXPECT_EQ(internal::ParseThreadCount("8"), 8u);
  EXPECT_EQ(internal::ParseThreadCount("256"), 256u);
  EXPECT_EQ(internal::ParseThreadCount("  16"), 16u);  // strtol skips leading ws
}

TEST(ParallelThreadsEnv, ParseRejectsGarbage) {
  EXPECT_EQ(internal::ParseThreadCount(nullptr), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount(""), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("abc"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("4cores"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("4 "), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("4.5"), std::nullopt);
}

TEST(ParallelThreadsEnv, ParseRejectsNonPositiveAndOverflow) {
  // The old strtol path silently mapped these to "no threads configured".
  EXPECT_EQ(internal::ParseThreadCount("0"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("-3"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("257"), std::nullopt);  // > cap
  EXPECT_EQ(internal::ParseThreadCount("99999999999999999999"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("9223372036854775807"), std::nullopt);
}

}  // namespace
}  // namespace cip
