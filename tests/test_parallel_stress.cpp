// Stress tests for ParallelFor: TSan-visible write patterns, exception
// propagation from workers, and strict CIP_THREADS parsing. Designed to run
// under the `tsan` preset — the overlapping-write scenarios only touch shared
// state through atomics, so a clean run certifies the harness itself is
// race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace cip {
namespace {

constexpr std::size_t kN = 1 << 15;
constexpr std::size_t kThreads = 4;  // force real workers even on 1-core CI

TEST(ParallelStress, DisjointWritesCoverRange) {
  std::vector<int> hits(kN, 0);
  ParallelFor(0, kN, [&](std::size_t i) { hits[i] += 1; }, kThreads);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
}

TEST(ParallelStress, OverlappingAtomicCounter) {
  // Every index increments the same counter: maximal contention, race-free
  // only because the counter is atomic. TSan certifies exactly that.
  std::atomic<std::size_t> counter{0};
  ParallelFor(0, kN, [&](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }, kThreads);
  EXPECT_EQ(counter.load(), kN);
}

TEST(ParallelStress, OverlappingSharedCells) {
  // All workers hammer a small set of shared cells (indices collide mod 8).
  std::vector<std::atomic<int>> cells(8);
  ParallelFor(0, kN, [&](std::size_t i) {
    cells[i % cells.size()].fetch_add(1, std::memory_order_relaxed);
  }, kThreads);
  int total = 0;
  for (auto& c : cells) total += c.load();
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ParallelStress, NestedParallelFor) {
  // Outer level parallel, inner level re-enters ParallelFor; must neither
  // deadlock nor race.
  std::atomic<std::size_t> counter{0};
  ParallelFor(0, 64, [&](std::size_t) {
    ParallelFor(0, 64, [&](std::size_t) {
      counter.fetch_add(1, std::memory_order_relaxed);
    }, 2);
  }, kThreads);
  EXPECT_EQ(counter.load(), 64u * 64u);
}

TEST(ParallelStress, WorkerExceptionPropagatesToCaller) {
  // A throw inside a worker must surface on the calling thread (historically
  // this killed the process via std::terminate in the jthread).
  EXPECT_THROW(
      ParallelFor(0, kN, [](std::size_t i) {
        if (i == kN / 2) throw std::runtime_error("worker failed");
      }, kThreads),
      std::runtime_error);
}

TEST(ParallelStress, WorkerCheckErrorPropagatesToCaller) {
  // The library's own contract system communicates misuse by throwing; a
  // CIP_CHECK tripping inside a parallel region must reach the caller.
  EXPECT_THROW(
      ParallelFor(0, kN, [](std::size_t i) { CIP_CHECK_LT(i, kN / 2); },
                  kThreads),
      CheckError);
}

TEST(ParallelStress, FirstExceptionWinsAndOthersAreSwallowed) {
  // Many workers throw; exactly one exception must arrive, and it must be one
  // of the thrown types. Later workers bail out early.
  try {
    ParallelFor(0, kN, [](std::size_t) { throw std::runtime_error("any"); },
                kThreads);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "any");
  }
}

TEST(ParallelStress, ExceptionOnSerialPathAlsoPropagates) {
  // Small ranges take the serial fast path; semantics must match.
  EXPECT_THROW(
      ParallelFor(0, 4, [](std::size_t) { throw std::logic_error("serial"); },
                  kThreads),
      std::logic_error);
}

TEST(ParallelStress, StateIsConsistentAfterWorkerException) {
  // Indices before the failing one in the same chunk are executed; the call
  // must not leak threads or corrupt the done-flags (TSan would flag both).
  std::vector<std::atomic<int>> done(kN);
  EXPECT_THROW(
      ParallelFor(0, kN, [&](std::size_t i) {
        if (i == 17) throw std::runtime_error("mid-chunk");
        done[i].store(1, std::memory_order_relaxed);
      }, kThreads),
      std::runtime_error);
  EXPECT_EQ(done[17].load(), 0);
  // Re-running on the same state works fine.
  ParallelFor(0, kN, [&](std::size_t i) {
    done[i].store(1, std::memory_order_relaxed);
  }, kThreads);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(done[i].load(), 1);
}

TEST(ParallelStress, EmptyAndReversedRangesAreNoOps) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); }, kThreads);
  ParallelFor(9, 3, [&](std::size_t) { calls.fetch_add(1); }, kThreads);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelThreadsEnv, DefaultIsAtLeastOne) {
  EXPECT_GE(ParallelThreads(), 1u);
  EXPECT_LE(ParallelThreads(), kMaxParallelThreads);
}

TEST(ParallelThreadsEnv, ParseAcceptsWholeDecimalIntegers) {
  EXPECT_EQ(internal::ParseThreadCount("1"), 1u);
  EXPECT_EQ(internal::ParseThreadCount("8"), 8u);
  EXPECT_EQ(internal::ParseThreadCount("256"), 256u);
  EXPECT_EQ(internal::ParseThreadCount("  16"), 16u);  // strtol skips leading ws
}

TEST(ParallelThreadsEnv, ParseRejectsGarbage) {
  EXPECT_EQ(internal::ParseThreadCount(nullptr), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount(""), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("abc"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("4cores"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("4 "), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("4.5"), std::nullopt);
}

TEST(ParallelThreadsEnv, ParseRejectsNonPositiveAndOverflow) {
  // The old strtol path silently mapped these to "no threads configured".
  EXPECT_EQ(internal::ParseThreadCount("0"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("-3"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("257"), std::nullopt);  // > cap
  EXPECT_EQ(internal::ParseThreadCount("99999999999999999999"), std::nullopt);
  EXPECT_EQ(internal::ParseThreadCount("9223372036854775807"), std::nullopt);
}

}  // namespace
}  // namespace cip
