// Baseline-defense tests: DP noise calibration, DP-SGD/HDP training
// behaviour, AR, Mixup+MMD and RelaxLoss mechanics.
#include <gtest/gtest.h>

#include "attacks/adaptive.h"
#include "common/stats.h"
#include "data/synthetic.h"
#include "defenses/adv_reg.h"
#include "defenses/dp_sgd.h"
#include "defenses/hdp.h"
#include "defenses/mixup_mmd.h"
#include "defenses/relaxloss.h"
#include "eval/experiment.h"
#include "fl/query.h"

namespace cip {
namespace {

nn::ModelSpec PurchaseSpec() {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {200};
  spec.num_classes = 50;
  spec.width = 8;
  spec.seed = 71;
  return spec;
}

data::Dataset PurchaseSample(std::size_t n, std::uint64_t seed) {
  data::SyntheticPurchase gen(data::Purchase50Like());
  Rng rng(seed);
  return gen.Sample(n, rng);
}

TEST(DpNoise, MonotoneInEpsilonAndSteps) {
  defenses::DpConfig a;
  a.epsilon = 1.0f;
  defenses::DpConfig b = a;
  b.epsilon = 32.0f;
  EXPECT_GT(defenses::NoiseMultiplier(a), defenses::NoiseMultiplier(b));
  defenses::DpConfig c = a;
  c.total_steps = a.total_steps * 4;
  EXPECT_GT(defenses::NoiseMultiplier(c), defenses::NoiseMultiplier(a));
}

TEST(DpNoise, RejectsInvalidBudget) {
  defenses::DpConfig cfg;
  cfg.epsilon = 0.0f;
  EXPECT_THROW(defenses::NoiseMultiplier(cfg), CheckError);
  cfg.epsilon = 1.0f;
  cfg.delta = 0.0f;
  EXPECT_THROW(defenses::NoiseMultiplier(cfg), CheckError);
}

TEST(DpSgd, LargeEpsilonLearnsSmallEpsilonDoesNot) {
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.lr = 0.05f;
  train.epochs = 20;
  data::Dataset data = PurchaseSample(300, 1);

  auto run = [&](float epsilon) {
    defenses::DpConfig dp;
    dp.epsilon = epsilon;
    dp.clip_norm = 4.0f;
    dp.total_steps = 20 * (300 / 32 + 1);
    dp.sampling_rate = 32.0f / 300.0f;
    defenses::DpSgdClient client(spec, data, train, dp, 81);
    client.SetGlobal(fl::InitialState(spec));
    client.TrainLocal(fl::MakeRoundContext(2, 1, 0));
    return client.EvalAccuracy(data);
  };
  const double loose = run(4096.0f);  // σ ≈ 0: behaves like clipped SGD
  const double tight = run(1.0f);
  EXPECT_GT(loose, 0.30);         // nearly noise-free learning succeeds
  EXPECT_LT(tight, loose - 0.1);  // strong privacy destroys utility
}

TEST(Hdp, BeatsDpAtSameEpsilon) {
  // Private training of the head only touches far fewer parameters, so at
  // the same budget HDP retains more utility — the paper's Fig. 6 ordering.
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.lr = 0.05f;
  train.epochs = 20;
  data::Dataset data = PurchaseSample(300, 3);
  defenses::DpConfig dp;
  // HDP's advantage is largest at small ε (the paper's Fig. 6): the private
  // head has far fewer noisy dimensions than the full model.
  dp.epsilon = 4.0f;
  dp.clip_norm = 4.0f;
  dp.total_steps = 12 * (300 / 32 + 1);
  dp.sampling_rate = 32.0f / 300.0f;

  defenses::DpSgdClient dp_client(spec, data, train, dp, 82);
  dp_client.SetGlobal(fl::InitialState(spec));
  defenses::HdpClient hdp_client(spec, data, train, dp, 83);
  hdp_client.SetGlobal(fl::ModelState::From(hdp_client.model().Parameters()));
  dp_client.TrainLocal(fl::MakeRoundContext(4, 1, 0));
  hdp_client.TrainLocal(fl::MakeRoundContext(4, 1, 1));
  EXPECT_GT(hdp_client.EvalAccuracy(data), dp_client.EvalAccuracy(data));
}

TEST(Hdp, OnlyHeadParametersChange) {
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.epochs = 1;
  defenses::DpConfig dp;
  dp.epsilon = 8.0f;
  defenses::HdpClient client(spec, PurchaseSample(64, 5), train, dp, 84);
  const fl::ModelState init =
      fl::ModelState::From(client.model().Parameters());
  client.SetGlobal(init);
  const fl::ModelState after = client.TrainLocal(fl::MakeRoundContext(6, 1, 0));
  // Backbone prefix must be bit-identical; head suffix must differ.
  const std::size_t head_size = client.model().num_classes() *
                                    client.model().feature_dim() +
                                client.model().num_classes();
  const std::size_t backbone_size = after.size() - head_size;
  for (std::size_t i = 0; i < backbone_size; ++i) {
    ASSERT_EQ(after.values()[i], init.values()[i]) << "backbone moved at " << i;
  }
  float head_diff = 0.0f;
  for (std::size_t i = backbone_size; i < after.size(); ++i) {
    head_diff += std::abs(after.values()[i] - init.values()[i]);
  }
  EXPECT_GT(head_diff, 0.0f);
}

TEST(AdvReg, TrainsAndRegularizes) {
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.lr = 0.05f;
  train.epochs = 15;
  defenses::ArConfig ar;
  ar.lambda = 2.0f;
  ar.attack_steps = 5;
  defenses::ArClient client(spec, PurchaseSample(300, 7),
                            PurchaseSample(300, 8), train, ar, 85);
  client.SetGlobal(fl::InitialState(spec));
  client.TrainLocal(fl::MakeRoundContext(9, 1, 0));
  const double train_acc = client.EvalAccuracy(client.LocalData());
  EXPECT_GT(train_acc, 0.2);  // still learns under regularization
}

TEST(AdvReg, RegularizerGradientFlowsIntoModel) {
  // Mechanical check that the min-max wiring is live: with identical data,
  // seeds and schedule, training one round with lambda > 0 must produce
  // different parameters than lambda = 0 (the attacker-gain gradient reaches
  // the model), while lambda = 0 must exactly match a second lambda = 0 run
  // (determinism). The end-to-end privacy effect is measured at bench scale
  // in bench_fig6_external_defenses.
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.lr = 0.05f;
  train.epochs = 2;
  data::Dataset members = PurchaseSample(200, 10);
  data::Dataset reference = PurchaseSample(200, 11);

  auto run = [&](float lambda) {
    defenses::ArConfig ar;
    ar.lambda = lambda;
    defenses::ArClient client(spec, members, reference, train, ar, 86);
    client.SetGlobal(fl::InitialState(spec));
    return client.TrainLocal(fl::MakeRoundContext(13, 1, 0));
  };
  const fl::ModelState base = run(0.0f);
  const fl::ModelState again = run(0.0f);
  const fl::ModelState reg = run(4.0f);
  double drift = 0.0, repeat = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    drift += std::abs(base.values()[i] - reg.values()[i]);
    repeat += std::abs(base.values()[i] - again.values()[i]);
  }
  EXPECT_EQ(repeat, 0.0);  // deterministic given equal seeds
  EXPECT_GT(drift, 1e-3);  // the regularizer actually moved the model
}

TEST(MixupMmd, TrainsAndShrinksGap) {
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.lr = 0.05f;
  train.epochs = 25;
  data::Dataset members = PurchaseSample(300, 14);
  data::Dataset validation = PurchaseSample(300, 15);
  data::Dataset nonmembers = PurchaseSample(300, 16);

  auto gap = [&](float mu) {
    defenses::MmConfig mm;
    mm.mu = mu;
    defenses::MixupMmdClient client(spec, members, validation, train, mm, 87);
    client.SetGlobal(fl::InitialState(spec));
    client.TrainLocal(fl::MakeRoundContext(29, 1, 0));
    const auto ml = fl::PerSampleLosses(client.model(), members);
    const auto nl = fl::PerSampleLosses(client.model(), nonmembers);
    return Mean(std::span<const float>(nl)) -
           Mean(std::span<const float>(ml));
  };
  const double regularized = gap(10.0f);
  const double plain = gap(0.0f);
  EXPECT_LT(regularized, plain);
}

TEST(RelaxLoss, KeepsLossNearOmega) {
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.lr = 0.05f;
  train.epochs = 30;
  defenses::RlConfig rl;
  rl.omega = 1.5f;
  defenses::RelaxLossClient client(spec, PurchaseSample(300, 18), train, rl,
                                   88);
  client.SetGlobal(fl::InitialState(spec));
  client.TrainLocal(fl::MakeRoundContext(19, 1, 0));
  const auto losses = fl::PerSampleLosses(client.model(), client.LocalData());
  const double mean_loss = Mean(std::span<const float>(losses));
  // Training settles near ω instead of collapsing to ~0.
  EXPECT_GT(mean_loss, 0.4);
  EXPECT_LT(mean_loss, 3.5);
}

TEST(RelaxLoss, OmegaZeroBehavesLikePlainTraining) {
  const nn::ModelSpec spec = PurchaseSpec();
  fl::TrainConfig train;
  train.lr = 0.05f;
  train.epochs = 30;
  defenses::RlConfig rl;
  rl.omega = 0.0f;
  defenses::RelaxLossClient client(spec, PurchaseSample(300, 20), train, rl,
                                   89);
  client.SetGlobal(fl::InitialState(spec));
  client.TrainLocal(fl::MakeRoundContext(21, 1, 0));
  EXPECT_GT(client.EvalAccuracy(client.LocalData()), 0.6);
}

}  // namespace
}  // namespace cip
