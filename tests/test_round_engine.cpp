// Round-engine tests: RNG stream derivation, FlOptions validation, the
// bit-identity invariant across worker budgets, round telemetry, the client
// factory, and the server-side learning-rate schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "data/partition.h"
#include "fl/client.h"
#include "fl/client_factory.h"
#include "fl/round_context.h"
#include "fl/server.h"
#include "testing_util.h"

namespace cip {
namespace {

nn::ModelSpec MlpSpec(std::size_t dim, std::size_t classes) {
  nn::ModelSpec spec;
  spec.arch = nn::Arch::kMLP;
  spec.input_shape = {dim};
  spec.num_classes = classes;
  spec.width = 6;
  spec.seed = 19;
  return spec;
}

data::Dataset BlobData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  data::Dataset full = testing::TwoBlobs(n, d, rng);
  for (float& v : full.inputs.flat()) {
    v = std::clamp(0.5f + 0.25f * v, 0.0f, 1.0f);
  }
  return full;
}

// ---- RNG stream derivation --------------------------------------------------

TEST(DeriveStream, DeterministicPerCoordinates) {
  Rng a = DeriveStream(42, 3, 7);
  Rng b = DeriveStream(42, 3, 7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(DeriveStream, DistinctAcrossRoundsClientsAndSeeds) {
  const std::uint64_t base = DeriveStream(42, 3, 7).NextU64();
  EXPECT_NE(base, DeriveStream(42, 4, 7).NextU64());   // other round
  EXPECT_NE(base, DeriveStream(42, 3, 8).NextU64());   // other client
  EXPECT_NE(base, DeriveStream(43, 3, 7).NextU64());   // other run seed
  // (round, client) must not be interchangeable.
  EXPECT_NE(DeriveStream(42, 7, 3).NextU64(), base);
}

TEST(RoundContext, MakeUsesDerivedStreamAndLrScale) {
  fl::RoundContext ctx = fl::MakeRoundContext(11, 2, 5, 0.25f);
  EXPECT_EQ(ctx.round, 2u);
  EXPECT_EQ(ctx.client_index, 5u);
  EXPECT_EQ(ctx.rng.NextU64(), DeriveStream(11, 2, 5).NextU64());
  fl::TrainConfig cfg;
  cfg.lr = 0.4f;
  cfg.lr_decay_every = 0;  // client-side schedule off
  EXPECT_FLOAT_EQ(ctx.LrFor(cfg), 0.1f);
}

// ---- FlOptions::Validate ----------------------------------------------------

TEST(FlOptionsValidate, AcceptsDefaultsAndFullConfig) {
  fl::FlOptions opts;
  EXPECT_NO_THROW(opts.Validate());
  opts.rounds = 6;
  opts.participation = 0.5f;
  opts.snapshot_rounds = {1, 3, 6};
  opts.lr_decay = 0.5f;
  opts.lr_decay_every = 2;
  EXPECT_NO_THROW(opts.Validate());
}

TEST(FlOptionsValidate, RejectsZeroRounds) {
  fl::FlOptions opts;
  opts.rounds = 0;
  EXPECT_THROW(opts.Validate(), CheckError);
}

TEST(FlOptionsValidate, RejectsParticipationOutsideUnitInterval) {
  fl::FlOptions opts;
  opts.participation = 0.0f;
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.participation = -0.5f;
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.participation = 1.5f;
  EXPECT_THROW(opts.Validate(), CheckError);
}

TEST(FlOptionsValidate, RejectsBadSnapshotRounds) {
  fl::FlOptions opts;
  opts.rounds = 5;
  opts.snapshot_rounds = {0};  // 1-based; 0 is out of range
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.snapshot_rounds = {6};  // past the final round
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.snapshot_rounds = {2, 2};  // not strictly increasing
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.snapshot_rounds = {4, 3};  // decreasing
  EXPECT_THROW(opts.Validate(), CheckError);
}

TEST(FlOptionsValidate, RejectsBadLrDecay) {
  fl::FlOptions opts;
  opts.lr_decay_every = 2;
  opts.lr_decay = 0.0f;
  EXPECT_THROW(opts.Validate(), CheckError);
  opts.lr_decay = 1.5f;
  EXPECT_THROW(opts.Validate(), CheckError);
}

TEST(FlOptionsValidate, ConstructorAndRunValidate) {
  fl::FlOptions opts;
  opts.rounds = 0;
  EXPECT_THROW(
      fl::FederatedAveraging(fl::ModelState(std::vector<float>{1.0f}), opts),
      CheckError);
}

// ---- bit-identity across worker budgets ------------------------------------

// A cold store-backed fleet: every round materializes the cohort from
// serialized records and evicts it afterwards, so these bit-identity tests
// also cover the ExportState/RestoreState round-trip on the hot path.
struct Federation {
  fl::ClientStore store;
  fl::ModelState init;
};

Federation MakeFederation(std::size_t num_clients) {
  data::Dataset full = BlobData(40 * num_clients, 4, 31);
  Rng part_rng(32);
  const auto shards = data::PartitionIid(full, num_clients, part_rng);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kLegacy;
  proto.model = MlpSpec(4, 2);
  proto.train.lr = 0.1f;
  proto.train.momentum = 0.9f;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = shards[k];
    spec.seed = 50 + k;
    specs.push_back(std::move(spec));
  }
  return Federation{fl::MakeClientStore(std::move(specs)),
                    fl::InitialStateFor(proto)};
}

fl::FlLog RunWithBudget(std::size_t budget, fl::FlOptions opts,
                        std::uint64_t run_seed) {
  Federation fed = MakeFederation(4);
  opts.max_parallel_clients = budget;
  fl::FederatedAveraging server(fed.init, opts);
  return server.Run(fed.store, run_seed);
}

void ExpectBitIdentical(const fl::FlLog& a, const fl::FlLog& b) {
  ASSERT_EQ(a.final_global.size(), b.final_global.size());
  for (std::size_t i = 0; i < a.final_global.size(); ++i) {
    EXPECT_EQ(a.final_global.values()[i], b.final_global.values()[i]);
  }
  ASSERT_EQ(a.client_losses.size(), b.client_losses.size());
  for (std::size_t r = 0; r < a.client_losses.size(); ++r) {
    ASSERT_EQ(a.client_losses[r].size(), b.client_losses[r].size());
    for (std::size_t k = 0; k < a.client_losses[r].size(); ++k) {
      EXPECT_EQ(a.client_losses[r][k], b.client_losses[r][k]);
    }
  }
}

TEST(RoundEngine, BitIdenticalAcrossWorkerBudgets) {
  fl::FlOptions opts;
  opts.rounds = 3;
  const fl::FlLog serial = RunWithBudget(1, opts, 77);
  const fl::FlLog parallel = RunWithBudget(4, opts, 77);
  ExpectBitIdentical(serial, parallel);
}

TEST(RoundEngine, BitIdenticalUnderPartialParticipation) {
  fl::FlOptions opts;
  opts.rounds = 3;
  opts.participation = 0.5f;
  const fl::FlLog serial = RunWithBudget(1, opts, 78);
  const fl::FlLog parallel = RunWithBudget(4, opts, 78);
  ExpectBitIdentical(serial, parallel);
}

TEST(RoundEngine, DifferentRunSeedsDiverge) {
  fl::FlOptions opts;
  opts.rounds = 1;
  const fl::FlLog a = RunWithBudget(1, opts, 1);
  const fl::FlLog b = RunWithBudget(1, opts, 2);
  // Local SGD shuffles differ, so at least one weight must differ.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.final_global.size(); ++i) {
    if (a.final_global.values()[i] != b.final_global.values()[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

// ---- telemetry --------------------------------------------------------------

TEST(RoundEngine, TelemetryCoversEveryRoundAndClient) {
  fl::FlOptions opts;
  opts.rounds = 3;
  const fl::FlLog log = RunWithBudget(2, opts, 80);
  ASSERT_EQ(log.telemetry.rounds.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    const fl::RoundStats& rs = log.telemetry.rounds[r];
    EXPECT_EQ(rs.round, r + 1);
    ASSERT_EQ(rs.clients.size(), 4u);
    EXPECT_GE(rs.broadcast_seconds, 0.0);
    EXPECT_GE(rs.train_wall_seconds, 0.0);
    EXPECT_GE(rs.aggregate_seconds, 0.0);
    for (std::size_t i = 0; i < rs.clients.size(); ++i) {
      EXPECT_EQ(rs.clients[i].round, r + 1);
      EXPECT_EQ(rs.clients[i].client, i);
      EXPECT_GE(rs.clients[i].train_seconds, 0.0);
      EXPECT_TRUE(std::isfinite(rs.clients[i].loss));
    }
  }
}

TEST(RoundTelemetry, WriteJsonlOneLinePerRound) {
  fl::FlOptions opts;
  opts.rounds = 2;
  const fl::FlLog log = RunWithBudget(1, opts, 81);
  std::ostringstream os;
  log.telemetry.WriteJsonl(os);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("{\"round\":1,"), std::string::npos);
  EXPECT_NE(out.find("\"clients\":[{"), std::string::npos);
}

// ---- client factory ---------------------------------------------------------

TEST(ClientFactory, EveryKindBuildsAndTrainsOneRound) {
  const data::Dataset data = BlobData(24, 4, 90);
  const data::Dataset reference = BlobData(24, 4, 91);
  fl::ClientSpec spec;
  spec.model = MlpSpec(4, 2);
  spec.data = data;
  spec.reference = reference;
  spec.train.epochs = 1;
  spec.seed = 7;
  spec.dp.total_steps = 10;
  const fl::ClientKind kinds[] = {
      fl::ClientKind::kLegacy,   fl::ClientKind::kCip,
      fl::ClientKind::kDpSgd,    fl::ClientKind::kHdp,
      fl::ClientKind::kAdvReg,   fl::ClientKind::kMixupMmd,
      fl::ClientKind::kRelaxLoss};
  for (const fl::ClientKind kind : kinds) {
    spec.kind = kind;
    const std::unique_ptr<fl::ClientBase> client = fl::MakeClient(spec);
    ASSERT_NE(client, nullptr);
    const fl::ModelState init = fl::InitialStateFor(spec);
    client->SetGlobal(init);
    const fl::ModelState update =
        client->TrainLocal(fl::MakeRoundContext(92, 1, 0));
    // The round-trip contract: the update has the broadcast model's shape.
    EXPECT_EQ(update.size(), init.size());
  }
}

TEST(ClientFactory, CipTrainConfigIsAuthoritative) {
  fl::ClientSpec spec;
  spec.kind = fl::ClientKind::kCip;
  spec.model = MlpSpec(4, 2);
  spec.data = BlobData(16, 4, 93);
  spec.train.lr = 0.123f;
  spec.cip.train.lr = 0.999f;  // must be overwritten by spec.train
  const std::unique_ptr<core::CipClient> client = fl::MakeCipClient(spec);
  EXPECT_FLOAT_EQ(client->config().train.lr, 0.123f);
}

TEST(ClientFactory, MakeCipClientRejectsOtherKinds) {
  fl::ClientSpec spec;
  spec.kind = fl::ClientKind::kLegacy;
  spec.model = MlpSpec(4, 2);
  spec.data = BlobData(16, 4, 94);
  EXPECT_THROW(fl::MakeCipClient(spec), CheckError);
}

// ---- server-side LR schedule ------------------------------------------------

TEST(RoundEngine, LrDecayScheduleScalesClientLr) {
  // A probe client that records the effective LR each round.
  struct LrProbe : fl::ClientBase {
    std::vector<float> lrs;
    data::Dataset data;
    fl::ModelState state;
    fl::TrainConfig cfg;

    void SetGlobal(const fl::ModelState& global) override { state = global; }
    fl::ModelState TrainLocal(fl::RoundContext ctx) override {
      lrs.push_back(ctx.LrFor(cfg));
      return state;
    }
    double EvalAccuracy(const data::Dataset&) override { return 0.0; }
    float LastTrainLoss() const override { return 0.0f; }
    const data::Dataset& LocalData() const override { return data; }
  };

  LrProbe probe;
  probe.cfg.lr = 0.8f;
  probe.cfg.lr_decay_every = 0;  // isolate the server-side schedule
  fl::ClientBase* ptr = &probe;
  fl::FlOptions opts;
  opts.rounds = 5;
  opts.lr_decay = 0.5f;
  opts.lr_decay_every = 2;
  fl::FederatedAveraging server(fl::ModelState(std::vector<float>{0.0f}),
                                opts);
  fl::ClientStore store{std::span<fl::ClientBase* const>(&ptr, 1)};
  server.Run(store, 95);
  // Rounds 1-2 at scale 1, 3-4 at 0.5, 5 at 0.25.
  ASSERT_EQ(probe.lrs.size(), 5u);
  EXPECT_FLOAT_EQ(probe.lrs[0], 0.8f);
  EXPECT_FLOAT_EQ(probe.lrs[1], 0.8f);
  EXPECT_FLOAT_EQ(probe.lrs[2], 0.4f);
  EXPECT_FLOAT_EQ(probe.lrs[3], 0.4f);
  EXPECT_FLOAT_EQ(probe.lrs[4], 0.2f);
}

}  // namespace
}  // namespace cip
