// ClientStore lifecycle tests: the deterministic cohort sampler, the client
// record codec and shard files under hostile bytes, and the store-level
// bit-identity invariants (hot vs cold, spill vs resident, hot-set size,
// worker budget, deprecated span adapter).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/partition.h"
#include "fl/client_factory.h"
#include "fl/client_store.h"
#include "fl/sampler.h"
#include "fl/server.h"
#include "testing_util.h"

namespace cip {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---- sampler ---------------------------------------------------------------

TEST(Sampler, CohortSizeFloorsWithMinimumOne) {
  EXPECT_EQ(fl::CohortSize(0.5f, 4), 2u);
  EXPECT_EQ(fl::CohortSize(0.3f, 4), 1u);   // floor(1.2) = 1
  EXPECT_EQ(fl::CohortSize(1.0f, 7), 7u);
  // The bugfix cases: fractions that floor to zero clamp to one instead of
  // being rejected, and the product is computed in double so 0.1f * 5 and
  // 0.001f * 1e6 land on the intended integers.
  EXPECT_EQ(fl::CohortSize(0.1f, 5), 1u);
  EXPECT_EQ(fl::CohortSize(0.01f, 10), 1u);
  EXPECT_EQ(fl::CohortSize(0.001f, 1'000'000), 1000u);
  EXPECT_EQ(fl::CohortSize(0.9f, 1), 1u);
}

TEST(Sampler, CohortSizeRejectsInvalidArguments) {
  EXPECT_THROW(fl::CohortSize(0.0f, 4), CheckError);
  EXPECT_THROW(fl::CohortSize(-0.1f, 4), CheckError);
  EXPECT_THROW(fl::CohortSize(1.5f, 4), CheckError);
  EXPECT_THROW(fl::CohortSize(0.5f, 0), CheckError);
}

TEST(Sampler, CohortIsSortedDistinctAndInRange) {
  const std::size_t n = 100;
  for (std::size_t round = 1; round <= 8; ++round) {
    const std::vector<std::size_t> cohort =
        fl::SampleCohort(/*run_seed=*/42, round, n, 0.13f);
    ASSERT_EQ(cohort.size(), fl::CohortSize(0.13f, n));
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      EXPECT_LT(cohort[i], n);
      // Strictly ascending == sorted with no duplicates (the
      // without-replacement regression this suite pins).
      if (i > 0) {
        EXPECT_LT(cohort[i - 1], cohort[i]);
      }
    }
  }
}

TEST(Sampler, DeterministicPerRoundAndVariesAcrossRounds) {
  const std::size_t n = 50;
  const auto a = fl::SampleCohort(7, 3, n, 0.2f);
  const auto b = fl::SampleCohort(7, 3, n, 0.2f);
  EXPECT_EQ(a, b);
  bool any_different = false;
  for (std::size_t round = 1; round <= 6; ++round) {
    if (fl::SampleCohort(7, round, n, 0.2f) != a) any_different = true;
  }
  EXPECT_TRUE(any_different);
  EXPECT_NE(fl::SampleCohort(8, 3, n, 0.2f), a);
}

TEST(Sampler, FullParticipationIsTheWholeFleet) {
  const auto cohort = fl::SampleCohort(11, 1, 6, 1.0f);
  const std::vector<std::size_t> all = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(cohort, all);
}

// ---- record codec ----------------------------------------------------------

fl::ClientState SampleState() {
  fl::ClientState s;
  Tensor a({2, 2});
  a[0] = 1.5f;
  a[1] = -2.0f;
  a[2] = 0.0f;
  a[3] = 3.25f;
  s.tensors.push_back(a);
  s.tensors.push_back(Tensor({3}, 0.5f));
  return s;
}

TEST(ClientRecord, RoundTripPreservesTensors) {
  const fl::ClientState in = SampleState();
  const std::string blob = fl::EncodeClientRecord(17, in);
  const fl::ClientState out = fl::DecodeClientRecord(blob, 17);
  ASSERT_EQ(out.tensors.size(), in.tensors.size());
  for (std::size_t t = 0; t < in.tensors.size(); ++t) {
    ASSERT_EQ(out.tensors[t].shape(), in.tensors[t].shape());
    for (std::size_t i = 0; i < in.tensors[t].size(); ++i) {
      EXPECT_EQ(out.tensors[t][i], in.tensors[t][i]);
    }
  }
}

TEST(ClientRecord, RejectsWrongClientId) {
  const std::string blob = fl::EncodeClientRecord(17, SampleState());
  EXPECT_THROW(fl::DecodeClientRecord(blob, 18), CheckError);
}

TEST(ClientRecord, RejectsBadMagicAndTrailingBytes) {
  std::string blob = fl::EncodeClientRecord(3, SampleState());
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(fl::DecodeClientRecord(bad_magic, 3), CheckError);
  EXPECT_THROW(fl::DecodeClientRecord(blob + "junk", 3), CheckError);
}

TEST(ClientRecord, RejectsHostileTensorCountBeforeAllocating) {
  std::string blob = fl::EncodeClientRecord(3, SampleState());
  // The tensor count sits after the 4-byte magic and 8-byte id; saturating
  // it must be rejected by the ceiling check, not attempted as a reserve.
  for (std::size_t i = 12; i < 20; ++i) blob[i] = '\xFF';
  EXPECT_THROW(fl::DecodeClientRecord(blob, 3), CheckError);
}

TEST(ClientRecord, RejectsTruncationAtEveryByte) {
  const std::string blob = fl::EncodeClientRecord(9, SampleState());
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(fl::DecodeClientRecord(blob.substr(0, len), 9), CheckError)
        << "prefix of " << len << " bytes must not decode";
  }
}

// ---- federations -----------------------------------------------------------

std::vector<fl::ClientSpec> MakeSpecs(std::size_t num_clients) {
  Rng rng(5);
  data::Dataset full = testing::TwoBlobs(20 * num_clients, 4, rng);
  const auto shards = data::PartitionIid(full, num_clients, rng);
  fl::ClientSpec proto;
  proto.kind = fl::ClientKind::kLegacy;
  proto.model.arch = nn::Arch::kMLP;
  proto.model.input_shape = {4};
  proto.model.num_classes = 2;
  proto.model.width = 6;
  proto.model.seed = 77;
  proto.train.lr = 0.1f;
  proto.train.momentum = 0.9f;
  std::vector<fl::ClientSpec> specs;
  for (std::size_t k = 0; k < num_clients; ++k) {
    fl::ClientSpec spec = proto;
    spec.data = shards[k];
    spec.seed = 50 + k;
    specs.push_back(std::move(spec));
  }
  return specs;
}

fl::FlOptions SmallRun(std::size_t budget) {
  fl::FlOptions opts;
  opts.rounds = 3;
  opts.max_parallel_clients = budget;
  return opts;
}

fl::FlLog RunCold(std::size_t num_clients, fl::StoreOptions sopts,
                  std::size_t budget) {
  auto specs = MakeSpecs(num_clients);
  const fl::ModelState init = fl::InitialStateFor(specs[0]);
  fl::ClientStore store =
      fl::MakeClientStore(std::move(specs), std::move(sopts));
  fl::FederatedAveraging server(init, SmallRun(budget));
  return server.Run(store, 21);
}

fl::FlLog RunLive(std::size_t num_clients, std::size_t budget) {
  auto specs = MakeSpecs(num_clients);
  const fl::ModelState init = fl::InitialStateFor(specs[0]);
  fl::ClientStore store;
  for (const fl::ClientSpec& spec : specs) store.Add(fl::MakeClient(spec));
  fl::FederatedAveraging server(init, SmallRun(budget));
  return server.Run(store, 21);
}

void ExpectSameLog(const fl::FlLog& a, const fl::FlLog& b) {
  const auto av = a.final_global.values();
  const auto bv = b.final_global.values();
  ASSERT_EQ(av.size(), bv.size());
  // memcmp, not ==: bit-identity is the claim.
  EXPECT_EQ(std::memcmp(av.data(), bv.data(), av.size() * sizeof(float)), 0);
  ASSERT_EQ(a.client_losses.size(), b.client_losses.size());
  for (std::size_t r = 0; r < a.client_losses.size(); ++r) {
    ASSERT_EQ(a.client_losses[r].size(), b.client_losses[r].size());
    EXPECT_EQ(std::memcmp(a.client_losses[r].data(), b.client_losses[r].data(),
                          a.client_losses[r].size() * sizeof(float)),
              0)
        << "round " << r;
  }
}

TEST(ClientStore, HotAndColdFleetsAreBitIdentical) {
  const fl::FlLog live = RunLive(4, /*budget=*/4);
  const fl::FlLog cold = RunCold(4, {}, /*budget=*/4);
  ExpectSameLog(live, cold);
}

TEST(ClientStore, SpillResidentHotSizeAndBudgetCannotAffectResults) {
  // Where the same record bytes wait (resident vs shard file, big vs tiny
  // LRU budget) and how many workers train must be invisible in the log.
  const fl::FlLog reference = RunCold(4, {}, /*budget=*/1);

  fl::StoreOptions tiny;
  tiny.hot_bytes = 1;  // every eviction spills straight to disk
  tiny.shard_clients = 2;
  tiny.spill_dir = TempPath("store_tiny_spill");
  ExpectSameLog(reference, RunCold(4, std::move(tiny), /*budget=*/4));

  fl::StoreOptions roomy;
  roomy.hot_bytes = std::size_t{64} << 20;  // nothing ever spills
  roomy.spill_dir = TempPath("store_roomy_spill");
  ExpectSameLog(reference, RunCold(4, std::move(roomy), /*budget=*/4));

  ExpectSameLog(reference, RunCold(4, {}, /*budget=*/4));
}

TEST(ClientStore, StatsCountTheSpillLifecycle) {
  auto specs = MakeSpecs(3);
  const fl::ModelState init = fl::InitialStateFor(specs[0]);
  fl::StoreOptions sopts;
  sopts.hot_bytes = 1;
  sopts.shard_clients = 2;
  sopts.spill_dir = TempPath("store_stats_spill");
  fl::ClientStore store =
      fl::MakeClientStore(std::move(specs), std::move(sopts));
  fl::FederatedAveraging server(init, SmallRun(2));
  server.Run(store, 21);

  const fl::StoreStats& stats = store.stats();
  EXPECT_EQ(stats.evictions, 9u);  // 3 clients x 3 rounds re-serialized
  EXPECT_EQ(stats.spills, 9u);     // 1-byte budget: every record spills
  EXPECT_GT(stats.cold_loads, 0u);
  EXPECT_EQ(stats.hot_records, 0u);
  EXPECT_EQ(stats.hot_bytes, 0u);
  EXPECT_EQ(stats.spilled_records, 3u);  // the whole fleet lives on disk
}

TEST(ClientStore, BorrowedStoreMatchesColdFactoryStore) {
  // Live (borrowed) fleets and cold factory fleets are interchangeable
  // entry points: same specs, same seed, bit-identical logs.
  auto specs = MakeSpecs(3);
  const fl::ModelState init = fl::InitialStateFor(specs[0]);
  std::vector<std::unique_ptr<fl::ClientBase>> owned;
  std::vector<fl::ClientBase*> ptrs;
  for (const fl::ClientSpec& spec : specs) {
    owned.push_back(fl::MakeClient(spec));
    ptrs.push_back(owned.back().get());
  }
  fl::ClientStore borrowed{std::span<fl::ClientBase* const>(ptrs)};
  const fl::FlLog via_borrowed =
      fl::FederatedAveraging(init, SmallRun(2)).Run(borrowed, 33);
  fl::ClientStore cold = fl::MakeClientStore(std::move(specs));
  const fl::FlLog via_cold =
      fl::FederatedAveraging(init, SmallRun(2)).Run(cold, 33);
  ExpectSameLog(via_borrowed, via_cold);
}

// ---- adversarial shard files -----------------------------------------------

/// A cold spilling store whose whole fleet has trained once, so every
/// client's record lives in shard files on disk.
struct SpilledStore {
  fl::ClientStore store;
  std::string shard_path;  // the shard holding client 1's record
};

SpilledStore MakeSpilledStore(const std::string& dir_name) {
  auto specs = MakeSpecs(3);
  const fl::ModelState init = fl::InitialStateFor(specs[0]);
  fl::StoreOptions sopts;
  sopts.hot_bytes = 1;
  sopts.shard_clients = 2;  // client 1 -> shard 0, slot 1
  const std::string dir = TempPath(dir_name);
  sopts.spill_dir = dir;
  fl::ClientStore store =
      fl::MakeClientStore(std::move(specs), std::move(sopts));
  fl::FederatedAveraging server(init, SmallRun(2));
  server.Run(store, 21);
  return SpilledStore{std::move(store), dir + "/shard_0.cip"};
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ShardFile, RejectsTruncationAtEveryByte) {
  SpilledStore s = MakeSpilledStore("shard_trunc");
  const std::string good = ReadFileBytes(s.shard_path);
  ASSERT_GT(good.size(), 32u);
  for (std::size_t len = 0; len < good.size(); ++len) {
    WriteFileBytes(s.shard_path, good.substr(0, len));
    EXPECT_THROW(s.store.Materialize(1), CheckError)
        << "shard truncated to " << len << " bytes must not load";
  }
  WriteFileBytes(s.shard_path, good);
  const fl::ClientStore::Handle h = s.store.Materialize(1);
  EXPECT_TRUE(h);  // intact file still materializes
}

TEST(ShardFile, RejectsHostileHeaderAndDirectory) {
  SpilledStore s = MakeSpilledStore("shard_hostile");
  const std::string good = ReadFileBytes(s.shard_path);

  auto corrupt = [&](std::size_t begin, std::size_t n) {
    std::string bad = good;
    for (std::size_t i = begin; i < begin + n; ++i) bad[i] = '\xFF';
    WriteFileBytes(s.shard_path, bad);
    EXPECT_THROW(s.store.Materialize(1), CheckError)
        << "bytes [" << begin << ", " << begin + n << ") saturated";
  };
  corrupt(0, 4);    // magic
  corrupt(4, 4);    // version
  corrupt(8, 8);    // shard index
  corrupt(16, 8);   // slot count (hostile: would size the directory)
  corrupt(24, 8);   // data_end past the file
  corrupt(32 + 16, 16);  // client 1's directory entry: offset/length wild

  // A zeroed directory offset means "absent", not "read from offset 0".
  std::string absent = good;
  for (std::size_t i = 32 + 16; i < 32 + 32; ++i) absent[i] = '\0';
  WriteFileBytes(s.shard_path, absent);
  EXPECT_THROW(s.store.Materialize(1), CheckError);

  WriteFileBytes(s.shard_path, good);
  EXPECT_TRUE(s.store.Materialize(1));
}

TEST(ClientStore, ColdConstructionRemovesStaleShards) {
  const std::string dir = TempPath("stale_shards");
  std::filesystem::create_directories(dir);
  WriteFileBytes(dir + "/shard_0.cip", "stale bytes from a previous run");
  fl::StoreOptions sopts;
  sopts.spill_dir = dir;
  auto specs = MakeSpecs(2);
  fl::ClientStore store =
      fl::MakeClientStore(std::move(specs), std::move(sopts));
  EXPECT_FALSE(std::filesystem::exists(dir + "/shard_0.cip"));
}

}  // namespace
}  // namespace cip
