#!/usr/bin/env bash
# Regenerate the committed performance baselines (BENCH_kernels.json,
# BENCH_fl_rounds.json, BENCH_fault_rounds.json, BENCH_scale.json,
# BENCH_server.json and BENCH_serve.json).
#
# Builds bench_micro_ops in the tier-1 Release tree (./build), runs the
# kernel benchmarks at CIP_THREADS=1 and CIP_THREADS=4 and merges the results
# via tools/bench_to_json.py; then runs bench_fl_rounds, which times the
# federated round engine across worker budgets, checks its bit-identity
# invariant, and writes its own JSON baseline. Run on an otherwise idle
# machine; see docs/BENCHMARKS.md for what the fields mean and how to compare
# against the committed baselines.
#
#   scripts/bench_baseline.sh                 # full run (~a few minutes)
#   CIP_BENCH_MIN_TIME=0.05 scripts/bench_baseline.sh   # quicker, noisier
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CIP_CHECK_JOBS:-$(nproc)}"
min_time="${CIP_BENCH_MIN_TIME:-0.5}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs" --target bench_micro_ops bench_fl_rounds bench_fault_rounds bench_scale bench_server bench_serve

# bench_to_json.py refuses to write a baseline unless the binary reports
# cip_build_type=release, and tools/cip_lint.py rejects committed baselines
# without it — debug numbers can never become the regression reference.
python3 tools/bench_to_json.py \
  --binary build/bench/bench_micro_ops \
  --output BENCH_kernels.json \
  --threads 1 4 \
  --min-time "$min_time"

# Round-engine baseline: exits non-zero if the bit-identity invariant breaks
# or the latency-bound client phase fails to overlap (speedup < 2x).
./build/bench/bench_fl_rounds --output BENCH_fl_rounds.json

# Fault-tolerance baseline: exits non-zero if faulted runs lose bit-identity
# across worker budgets, 20% dropout skips rounds above quorum or breaks
# renormalized aggregation, or crash+resume diverges from a straight run.
./build/bench/bench_fault_rounds --output BENCH_fault_rounds.json

# Million-client scale baseline: 1M registered clients, 1k-client cohorts,
# pinned peak-RSS ceiling and the budget/residency bit-identity sweep. The
# committed JSON is regated in CI by bench_to_json.py --check-scale.
./build/bench/bench_scale --output BENCH_scale.json
python3 tools/bench_to_json.py --check-scale BENCH_scale.json

# Standalone-server load baseline: 1k concurrent loopback connections, async
# first-900-of-1000 rounds, admission overflow answered with kBusy, and the
# wire-vs-direct bit-identity check. The committed JSON is regated in CI by
# bench_to_json.py --check-server.
./build/bench/bench_server --output BENCH_server.json
python3 tools/bench_to_json.py --check-server BENCH_server.json

# Serving-engine baseline: t-cache cold/warm split, fused batch-1/16/128
# throughput and latency, allocation-free steady state and the loopback
# kQuery bit-identity check. CIP_THREADS=4 pins the thread budget the
# fused-speedup gate is defined at. The committed JSON is regated in CI by
# bench_to_json.py --check-serve.
CIP_THREADS=4 ./build/bench/bench_serve --output BENCH_serve.json
python3 tools/bench_to_json.py --check-serve BENCH_serve.json
