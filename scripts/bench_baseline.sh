#!/usr/bin/env bash
# Regenerate the committed kernel-performance baseline (BENCH_kernels.json).
#
# Builds bench_micro_ops in the tier-1 Release tree (./build), then runs the
# kernel benchmarks at CIP_THREADS=1 and CIP_THREADS=4 and merges the results
# via tools/bench_to_json.py. Run on an otherwise idle machine; see
# docs/BENCHMARKS.md for what the fields mean and how to compare against the
# committed baseline.
#
#   scripts/bench_baseline.sh                 # full run (~a few minutes)
#   CIP_BENCH_MIN_TIME=0.05 scripts/bench_baseline.sh   # quicker, noisier
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CIP_CHECK_JOBS:-$(nproc)}"
min_time="${CIP_BENCH_MIN_TIME:-0.5}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs" --target bench_micro_ops

python3 tools/bench_to_json.py \
  --binary build/bench/bench_micro_ops \
  --output BENCH_kernels.json \
  --threads 1 4 \
  --min-time "$min_time"
