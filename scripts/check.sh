#!/usr/bin/env bash
# One-command correctness gate: repo lint, static analysis, then Release
# build+test, the clang-tidy gate, then ASan+UBSan and UBSan build+test.
# Pass --tsan to append the (slow) ThreadSanitizer pass; pass --bench to
# append a one-iteration smoke run of the kernel micro-benchmarks (catches
# bench-only build/runtime breakage without paying for a full timing run).
# Run from anywhere inside the repo.
#
# Stage order is cheapest-first so failures surface before expensive work:
# lint and the analyzer run before any compile, the analyzer re-runs with
# compile_commands.json after the Release build (libclang refinement when the
# bindings exist), and the sanitizer builds come after both. --bench smoke
# runs last of all — it only matters once everything is known-correct.
#
#   scripts/check.sh               # lint + analyze + release + tidy + asan + ubsan
#   scripts/check.sh --no-analyze  # skip the cip_analyze stages
#   scripts/check.sh --tsan        # ... + tsan
#   scripts/check.sh --bench       # ... + benchmark smoke run
#   CIP_CHECK_JOBS=8 scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CIP_CHECK_JOBS:-$(nproc)}"
run_tsan=0
run_bench=0
run_analyze=1
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --bench) run_bench=1 ;;
    --analyze) run_analyze=1 ;;
    --no-analyze) run_analyze=0 ;;
    *) echo "usage: scripts/check.sh [--tsan] [--bench] [--no-analyze]" >&2
       exit 2 ;;
  esac
done

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

step "lint (tools/cip_lint.py)"
python3 tools/cip_lint.py --root .
python3 tools/cip_lint.py --self-test

if [[ "$run_analyze" == 1 ]]; then
  # Pre-build pass: heuristic engine, no compile_commands.json needed. The
  # analyzer prints a per-rule summary (findings + suppressed counts) every
  # run; rules and suppression syntax are specified in
  # docs/STATIC_ANALYSIS.md.
  step "static analysis (tools/cip_analyze.py, pre-build)"
  python3 tools/cip_analyze.py --root .
  python3 tools/cip_analyze.py --root . --self-test
fi

presets=(release asan ubsan)
if [[ "$run_tsan" == 1 ]]; then
  presets+=(tsan)
fi

for preset in "${presets[@]}"; do
  step "configure+build+test [$preset]"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"

  # The ctest pass above ran under CIP_ISA=auto (best SIMD kernel the host
  # supports). Re-run the GEMM/conv parity and dispatcher suites with the
  # portable kernel forced, so both sides of the runtime ISA dispatch stay
  # covered on every preset — on a machine without AVX2 the two passes
  # coincide, which is exactly the point (docs/KERNELS.md).
  step "GEMM parity, portable kernel forced [$preset]"
  CIP_ISA=portable ctest --preset "$preset" -j "$jobs" \
    -R 'ConvParity|MatmulOracle|CpuFeatures|GemmIsa' \
    --no-tests=error --output-on-failure

  if [[ "$preset" != release ]]; then
    # Server loopback smoke under the sanitizers: real sockets, spawned
    # client processes, a mid-round kill. The full suite above already ran
    # these; re-running the NetLoopback filter explicitly means a renamed or
    # filtered-out e2e suite fails this gate loudly instead of silently
    # shrinking sanitizer coverage of the wire stack (docs/PROTOCOL.md).
    step "server loopback smoke [$preset]"
    ctest --preset "$preset" -R 'NetLoopback' \
      --no-tests=error --output-on-failure
  fi

  if [[ "$preset" == release ]]; then
    if [[ "$run_analyze" == 1 ]]; then
      # Post-build pass with the Release compile_commands.json: identical
      # rules, but the libclang engine (when the Python bindings are
      # installed) upgrades the purity family to AST-based detection.
      step "static analysis (tools/cip_analyze.py, compile-commands)"
      python3 tools/cip_analyze.py --root . -p build-release
    fi
    # The tidy gate: .clang-tidy promotes every enabled check to an error,
    # so a single finding fails this build target. Skipping when the tool
    # is absent is explicit and loud — cip_analyze above still gates the
    # concurrency/determinism invariants heuristically.
    if command -v clang-tidy >/dev/null 2>&1; then
      step "clang-tidy gate [release]"
      cmake --build --preset release --target tidy
    else
      step "clang-tidy gate SKIPPED (clang-tidy not installed)"
    fi
  fi
done

if [[ "$run_tsan" == 1 ]]; then
  # The execution engine's race-freedom certificate: the persistent worker
  # pool (spawn storms, nested dispatch, exception propagation, the legacy
  # spawn-per-call path), the coarse-grained ParallelForCoarse patterns, and
  # a real multi-client federation, all forced onto real worker threads,
  # under ThreadSanitizer. Already part of the preset's ctest run above;
  # repeated here explicitly so a filtered-out or renamed stress suite fails
  # loudly instead of silently shrinking coverage.
  step "pool + round-engine stress [tsan]"
  ctest --preset tsan -R 'ParallelStress|ParallelCoarseStress|RoundEngineStress' \
    --no-tests=error --output-on-failure
fi

if [[ "$run_bench" == 1 ]]; then
  # Smoke mode: ~1ms per benchmark, enough to exercise every registered case
  # including the pool-vs-spawn dispatch-overhead pair (BM_ParallelForDispatch
  # and friends). For real numbers use scripts/bench_baseline.sh (see
  # docs/BENCHMARKS.md). Runs after analyze + sanitizers by design: perf
  # smoke on a tree that fails correctness gates is wasted time.
  step "benchmark smoke run [release]"
  cmake --build --preset release -j "$jobs" --target bench_micro_ops
  ./build-release/bench/bench_micro_ops --benchmark_min_time=0.001
fi

step "all checks passed"
