#!/usr/bin/env bash
# One-command correctness gate: repo lint, then Release build+test, then
# ASan+UBSan and UBSan build+test. Pass --tsan to append the (slow)
# ThreadSanitizer pass; pass --bench to append a one-iteration smoke run of
# the kernel micro-benchmarks (catches bench-only build/runtime breakage
# without paying for a full timing run). Run from anywhere inside the repo.
#
#   scripts/check.sh            # lint + release + asan + ubsan
#   scripts/check.sh --tsan     # ... + tsan
#   scripts/check.sh --bench    # ... + benchmark smoke run
#   CIP_CHECK_JOBS=8 scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CIP_CHECK_JOBS:-$(nproc)}"
run_tsan=0
run_bench=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --bench) run_bench=1 ;;
    *) echo "usage: scripts/check.sh [--tsan] [--bench]" >&2; exit 2 ;;
  esac
done

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

step "lint (tools/cip_lint.py)"
python3 tools/cip_lint.py --root .
python3 tools/cip_lint.py --self-test

presets=(release asan ubsan)
if [[ "$run_tsan" == 1 ]]; then
  presets+=(tsan)
fi

for preset in "${presets[@]}"; do
  step "configure+build+test [$preset]"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

if [[ "$run_tsan" == 1 ]]; then
  # The execution engine's race-freedom certificate: the persistent worker
  # pool (spawn storms, nested dispatch, exception propagation, the legacy
  # spawn-per-call path), the coarse-grained ParallelForCoarse patterns, and
  # a real multi-client federation, all forced onto real worker threads,
  # under ThreadSanitizer. Already part of the preset's ctest run above;
  # repeated here explicitly so a filtered-out or renamed stress suite fails
  # loudly instead of silently shrinking coverage.
  step "pool + round-engine stress [tsan]"
  ctest --preset tsan -R 'ParallelStress|ParallelCoarseStress|RoundEngineStress' \
    --no-tests=error --output-on-failure
fi

if [[ "$run_bench" == 1 ]]; then
  # Smoke mode: ~1ms per benchmark, enough to exercise every registered case
  # including the pool-vs-spawn dispatch-overhead pair (BM_ParallelForDispatch
  # and friends). For real numbers use scripts/bench_baseline.sh (see
  # docs/BENCHMARKS.md).
  step "benchmark smoke run [release]"
  cmake --build --preset release -j "$jobs" --target bench_micro_ops
  ./build-release/bench/bench_micro_ops --benchmark_min_time=0.001
fi

step "all checks passed"
