
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/test_metrics.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/test_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/cip_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/cip_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/defenses/CMakeFiles/cip_defenses.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/cip_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cip_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/cip_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cip_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cip_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cip_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
