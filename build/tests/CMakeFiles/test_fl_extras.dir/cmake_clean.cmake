file(REMOVE_RECURSE
  "CMakeFiles/test_fl_extras.dir/test_fl_extras.cpp.o"
  "CMakeFiles/test_fl_extras.dir/test_fl_extras.cpp.o.d"
  "test_fl_extras"
  "test_fl_extras.pdb"
  "test_fl_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
