# Empty compiler generated dependencies file for test_cip.
# This may be replaced when dependencies are built.
