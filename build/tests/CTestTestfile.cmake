# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_fl[1]_include.cmake")
include("/root/repo/build/tests/test_cip[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_defenses[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fl_extras[1]_include.cmake")
