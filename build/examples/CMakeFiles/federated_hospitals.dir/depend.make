# Empty dependencies file for federated_hospitals.
# This may be replaced when dependencies are built.
