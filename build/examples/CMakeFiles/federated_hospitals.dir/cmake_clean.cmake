file(REMOVE_RECURSE
  "CMakeFiles/federated_hospitals.dir/federated_hospitals.cpp.o"
  "CMakeFiles/federated_hospitals.dir/federated_hospitals.cpp.o.d"
  "federated_hospitals"
  "federated_hospitals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_hospitals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
