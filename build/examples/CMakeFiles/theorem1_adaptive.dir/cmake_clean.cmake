file(REMOVE_RECURSE
  "CMakeFiles/theorem1_adaptive.dir/theorem1_adaptive.cpp.o"
  "CMakeFiles/theorem1_adaptive.dir/theorem1_adaptive.cpp.o.d"
  "theorem1_adaptive"
  "theorem1_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
