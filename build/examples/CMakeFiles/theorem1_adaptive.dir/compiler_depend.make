# Empty compiler generated dependencies file for theorem1_adaptive.
# This may be replaced when dependencies are built.
