file(REMOVE_RECURSE
  "CMakeFiles/purchase_analytics.dir/purchase_analytics.cpp.o"
  "CMakeFiles/purchase_analytics.dir/purchase_analytics.cpp.o.d"
  "purchase_analytics"
  "purchase_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purchase_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
