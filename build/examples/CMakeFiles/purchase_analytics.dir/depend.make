# Empty dependencies file for purchase_analytics.
# This may be replaced when dependencies are built.
