file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_internal_setup.dir/bench_table1_internal_setup.cpp.o"
  "CMakeFiles/bench_table1_internal_setup.dir/bench_table1_internal_setup.cpp.o.d"
  "bench_table1_internal_setup"
  "bench_table1_internal_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_internal_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
