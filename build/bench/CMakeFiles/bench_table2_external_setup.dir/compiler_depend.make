# Empty compiler generated dependencies file for bench_table2_external_setup.
# This may be replaced when dependencies are built.
