file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_perturb_steps.dir/bench_ablation_perturb_steps.cpp.o"
  "CMakeFiles/bench_ablation_perturb_steps.dir/bench_ablation_perturb_steps.cpp.o.d"
  "bench_ablation_perturb_steps"
  "bench_ablation_perturb_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_perturb_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
