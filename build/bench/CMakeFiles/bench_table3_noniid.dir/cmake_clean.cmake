file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_noniid.dir/bench_table3_noniid.cpp.o"
  "CMakeFiles/bench_table3_noniid.dir/bench_table3_noniid.cpp.o.d"
  "bench_table3_noniid"
  "bench_table3_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
