# Empty dependencies file for bench_table3_noniid.
# This may be replaced when dependencies are built.
