# Empty compiler generated dependencies file for bench_table4_attack_prf.
# This may be replaced when dependencies are built.
