file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_attack_prf.dir/bench_table4_attack_prf.cpp.o"
  "CMakeFiles/bench_table4_attack_prf.dir/bench_table4_attack_prf.cpp.o.d"
  "bench_table4_attack_prf"
  "bench_table4_attack_prf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_attack_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
