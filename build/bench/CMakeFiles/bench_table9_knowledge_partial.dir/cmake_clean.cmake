file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_knowledge_partial.dir/bench_table9_knowledge_partial.cpp.o"
  "CMakeFiles/bench_table9_knowledge_partial.dir/bench_table9_knowledge_partial.cpp.o.d"
  "bench_table9_knowledge_partial"
  "bench_table9_knowledge_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_knowledge_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
