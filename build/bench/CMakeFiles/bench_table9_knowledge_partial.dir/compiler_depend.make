# Empty compiler generated dependencies file for bench_table9_knowledge_partial.
# This may be replaced when dependencies are built.
