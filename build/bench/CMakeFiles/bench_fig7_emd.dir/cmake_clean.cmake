file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_emd.dir/bench_fig7_emd.cpp.o"
  "CMakeFiles/bench_fig7_emd.dir/bench_fig7_emd.cpp.o.d"
  "bench_fig7_emd"
  "bench_fig7_emd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_emd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
