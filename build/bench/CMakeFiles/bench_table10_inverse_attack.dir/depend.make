# Empty dependencies file for bench_table10_inverse_attack.
# This may be replaced when dependencies are built.
