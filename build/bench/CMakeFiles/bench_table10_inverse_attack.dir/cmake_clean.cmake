file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_inverse_attack.dir/bench_table10_inverse_attack.cpp.o"
  "CMakeFiles/bench_table10_inverse_attack.dir/bench_table10_inverse_attack.cpp.o.d"
  "bench_table10_inverse_attack"
  "bench_table10_inverse_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_inverse_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
