# Empty compiler generated dependencies file for bench_table8_knowledge_seed.
# This may be replaced when dependencies are built.
