file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_knowledge_seed.dir/bench_table8_knowledge_seed.cpp.o"
  "CMakeFiles/bench_table8_knowledge_seed.dir/bench_table8_knowledge_seed.cpp.o.d"
  "bench_table8_knowledge_seed"
  "bench_table8_knowledge_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_knowledge_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
