# Empty dependencies file for bench_ablation_dual_channel.
# This may be replaced when dependencies are built.
