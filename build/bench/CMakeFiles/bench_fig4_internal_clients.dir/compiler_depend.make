# Empty compiler generated dependencies file for bench_fig4_internal_clients.
# This may be replaced when dependencies are built.
