file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_loss_histograms.dir/bench_fig1_loss_histograms.cpp.o"
  "CMakeFiles/bench_fig1_loss_histograms.dir/bench_fig1_loss_histograms.cpp.o.d"
  "bench_fig1_loss_histograms"
  "bench_fig1_loss_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_loss_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
