# Empty compiler generated dependencies file for bench_fig1_loss_histograms.
# This may be replaced when dependencies are built.
