file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_adaptive_opt2.dir/bench_table7_adaptive_opt2.cpp.o"
  "CMakeFiles/bench_table7_adaptive_opt2.dir/bench_table7_adaptive_opt2.cpp.o.d"
  "bench_table7_adaptive_opt2"
  "bench_table7_adaptive_opt2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_adaptive_opt2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
