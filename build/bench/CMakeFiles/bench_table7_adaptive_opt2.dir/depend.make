# Empty dependencies file for bench_table7_adaptive_opt2.
# This may be replaced when dependencies are built.
