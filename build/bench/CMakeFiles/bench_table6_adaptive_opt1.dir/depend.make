# Empty dependencies file for bench_table6_adaptive_opt1.
# This may be replaced when dependencies are built.
