file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_adaptive_opt1.dir/bench_table6_adaptive_opt1.cpp.o"
  "CMakeFiles/bench_table6_adaptive_opt1.dir/bench_table6_adaptive_opt1.cpp.o.d"
  "bench_table6_adaptive_opt1"
  "bench_table6_adaptive_opt1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_adaptive_opt1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
