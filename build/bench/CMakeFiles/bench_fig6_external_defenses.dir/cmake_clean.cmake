file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_external_defenses.dir/bench_fig6_external_defenses.cpp.o"
  "CMakeFiles/bench_fig6_external_defenses.dir/bench_fig6_external_defenses.cpp.o.d"
  "bench_fig6_external_defenses"
  "bench_fig6_external_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_external_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
