# Empty compiler generated dependencies file for bench_fig6_external_defenses.
# This may be replaced when dependencies are built.
