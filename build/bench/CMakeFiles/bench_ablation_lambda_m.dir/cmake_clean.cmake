file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lambda_m.dir/bench_ablation_lambda_m.cpp.o"
  "CMakeFiles/bench_ablation_lambda_m.dir/bench_ablation_lambda_m.cpp.o.d"
  "bench_ablation_lambda_m"
  "bench_ablation_lambda_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lambda_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
