# Empty dependencies file for bench_table11_overhead.
# This may be replaced when dependencies are built.
