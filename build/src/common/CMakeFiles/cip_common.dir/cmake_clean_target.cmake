file(REMOVE_RECURSE
  "libcip_common.a"
)
