# Empty dependencies file for cip_common.
# This may be replaced when dependencies are built.
