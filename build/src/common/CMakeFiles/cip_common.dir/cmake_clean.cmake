file(REMOVE_RECURSE
  "CMakeFiles/cip_common.dir/env.cpp.o"
  "CMakeFiles/cip_common.dir/env.cpp.o.d"
  "CMakeFiles/cip_common.dir/parallel.cpp.o"
  "CMakeFiles/cip_common.dir/parallel.cpp.o.d"
  "CMakeFiles/cip_common.dir/stats.cpp.o"
  "CMakeFiles/cip_common.dir/stats.cpp.o.d"
  "CMakeFiles/cip_common.dir/table.cpp.o"
  "CMakeFiles/cip_common.dir/table.cpp.o.d"
  "libcip_common.a"
  "libcip_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
