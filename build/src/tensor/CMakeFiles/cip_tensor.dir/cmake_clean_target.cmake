file(REMOVE_RECURSE
  "libcip_tensor.a"
)
