# Empty dependencies file for cip_tensor.
# This may be replaced when dependencies are built.
