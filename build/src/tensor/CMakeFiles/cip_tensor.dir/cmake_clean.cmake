file(REMOVE_RECURSE
  "CMakeFiles/cip_tensor.dir/ops.cpp.o"
  "CMakeFiles/cip_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/cip_tensor.dir/tensor.cpp.o"
  "CMakeFiles/cip_tensor.dir/tensor.cpp.o.d"
  "libcip_tensor.a"
  "libcip_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
