file(REMOVE_RECURSE
  "CMakeFiles/cip_fl.dir/client.cpp.o"
  "CMakeFiles/cip_fl.dir/client.cpp.o.d"
  "CMakeFiles/cip_fl.dir/model_state.cpp.o"
  "CMakeFiles/cip_fl.dir/model_state.cpp.o.d"
  "CMakeFiles/cip_fl.dir/query.cpp.o"
  "CMakeFiles/cip_fl.dir/query.cpp.o.d"
  "CMakeFiles/cip_fl.dir/secure_agg.cpp.o"
  "CMakeFiles/cip_fl.dir/secure_agg.cpp.o.d"
  "CMakeFiles/cip_fl.dir/serialize.cpp.o"
  "CMakeFiles/cip_fl.dir/serialize.cpp.o.d"
  "CMakeFiles/cip_fl.dir/server.cpp.o"
  "CMakeFiles/cip_fl.dir/server.cpp.o.d"
  "CMakeFiles/cip_fl.dir/trainer.cpp.o"
  "CMakeFiles/cip_fl.dir/trainer.cpp.o.d"
  "libcip_fl.a"
  "libcip_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
