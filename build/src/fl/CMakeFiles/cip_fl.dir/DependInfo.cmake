
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/cip_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/cip_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/model_state.cpp" "src/fl/CMakeFiles/cip_fl.dir/model_state.cpp.o" "gcc" "src/fl/CMakeFiles/cip_fl.dir/model_state.cpp.o.d"
  "/root/repo/src/fl/query.cpp" "src/fl/CMakeFiles/cip_fl.dir/query.cpp.o" "gcc" "src/fl/CMakeFiles/cip_fl.dir/query.cpp.o.d"
  "/root/repo/src/fl/secure_agg.cpp" "src/fl/CMakeFiles/cip_fl.dir/secure_agg.cpp.o" "gcc" "src/fl/CMakeFiles/cip_fl.dir/secure_agg.cpp.o.d"
  "/root/repo/src/fl/serialize.cpp" "src/fl/CMakeFiles/cip_fl.dir/serialize.cpp.o" "gcc" "src/fl/CMakeFiles/cip_fl.dir/serialize.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/fl/CMakeFiles/cip_fl.dir/server.cpp.o" "gcc" "src/fl/CMakeFiles/cip_fl.dir/server.cpp.o.d"
  "/root/repo/src/fl/trainer.cpp" "src/fl/CMakeFiles/cip_fl.dir/trainer.cpp.o" "gcc" "src/fl/CMakeFiles/cip_fl.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cip_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/cip_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cip_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cip_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cip_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
