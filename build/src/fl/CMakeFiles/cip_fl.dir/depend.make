# Empty dependencies file for cip_fl.
# This may be replaced when dependencies are built.
