file(REMOVE_RECURSE
  "libcip_fl.a"
)
