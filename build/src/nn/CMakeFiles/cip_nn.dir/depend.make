# Empty dependencies file for cip_nn.
# This may be replaced when dependencies are built.
