file(REMOVE_RECURSE
  "libcip_nn.a"
)
