file(REMOVE_RECURSE
  "CMakeFiles/cip_nn.dir/activations.cpp.o"
  "CMakeFiles/cip_nn.dir/activations.cpp.o.d"
  "CMakeFiles/cip_nn.dir/backbones.cpp.o"
  "CMakeFiles/cip_nn.dir/backbones.cpp.o.d"
  "CMakeFiles/cip_nn.dir/classifier.cpp.o"
  "CMakeFiles/cip_nn.dir/classifier.cpp.o.d"
  "CMakeFiles/cip_nn.dir/conv2d.cpp.o"
  "CMakeFiles/cip_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/cip_nn.dir/dual_channel.cpp.o"
  "CMakeFiles/cip_nn.dir/dual_channel.cpp.o.d"
  "CMakeFiles/cip_nn.dir/init.cpp.o"
  "CMakeFiles/cip_nn.dir/init.cpp.o.d"
  "CMakeFiles/cip_nn.dir/linear.cpp.o"
  "CMakeFiles/cip_nn.dir/linear.cpp.o.d"
  "CMakeFiles/cip_nn.dir/pooling.cpp.o"
  "CMakeFiles/cip_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/cip_nn.dir/sequential.cpp.o"
  "CMakeFiles/cip_nn.dir/sequential.cpp.o.d"
  "libcip_nn.a"
  "libcip_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
