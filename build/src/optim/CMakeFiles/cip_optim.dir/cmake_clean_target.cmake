file(REMOVE_RECURSE
  "libcip_optim.a"
)
