file(REMOVE_RECURSE
  "CMakeFiles/cip_optim.dir/optimizer.cpp.o"
  "CMakeFiles/cip_optim.dir/optimizer.cpp.o.d"
  "libcip_optim.a"
  "libcip_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
