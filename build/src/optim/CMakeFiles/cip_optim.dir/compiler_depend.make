# Empty compiler generated dependencies file for cip_optim.
# This may be replaced when dependencies are built.
