file(REMOVE_RECURSE
  "libcip_data.a"
)
