# Empty compiler generated dependencies file for cip_data.
# This may be replaced when dependencies are built.
