file(REMOVE_RECURSE
  "CMakeFiles/cip_data.dir/augment.cpp.o"
  "CMakeFiles/cip_data.dir/augment.cpp.o.d"
  "CMakeFiles/cip_data.dir/dataset.cpp.o"
  "CMakeFiles/cip_data.dir/dataset.cpp.o.d"
  "CMakeFiles/cip_data.dir/partition.cpp.o"
  "CMakeFiles/cip_data.dir/partition.cpp.o.d"
  "CMakeFiles/cip_data.dir/synthetic.cpp.o"
  "CMakeFiles/cip_data.dir/synthetic.cpp.o.d"
  "libcip_data.a"
  "libcip_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
