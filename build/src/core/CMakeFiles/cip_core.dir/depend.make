# Empty dependencies file for cip_core.
# This may be replaced when dependencies are built.
