file(REMOVE_RECURSE
  "libcip_core.a"
)
