
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blend.cpp" "src/core/CMakeFiles/cip_core.dir/blend.cpp.o" "gcc" "src/core/CMakeFiles/cip_core.dir/blend.cpp.o.d"
  "/root/repo/src/core/cip_client.cpp" "src/core/CMakeFiles/cip_core.dir/cip_client.cpp.o" "gcc" "src/core/CMakeFiles/cip_core.dir/cip_client.cpp.o.d"
  "/root/repo/src/core/cip_model.cpp" "src/core/CMakeFiles/cip_core.dir/cip_model.cpp.o" "gcc" "src/core/CMakeFiles/cip_core.dir/cip_model.cpp.o.d"
  "/root/repo/src/core/perturbation.cpp" "src/core/CMakeFiles/cip_core.dir/perturbation.cpp.o" "gcc" "src/core/CMakeFiles/cip_core.dir/perturbation.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/cip_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/cip_core.dir/theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/cip_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/cip_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cip_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cip_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cip_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cip_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
