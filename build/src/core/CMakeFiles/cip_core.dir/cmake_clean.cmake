file(REMOVE_RECURSE
  "CMakeFiles/cip_core.dir/blend.cpp.o"
  "CMakeFiles/cip_core.dir/blend.cpp.o.d"
  "CMakeFiles/cip_core.dir/cip_client.cpp.o"
  "CMakeFiles/cip_core.dir/cip_client.cpp.o.d"
  "CMakeFiles/cip_core.dir/cip_model.cpp.o"
  "CMakeFiles/cip_core.dir/cip_model.cpp.o.d"
  "CMakeFiles/cip_core.dir/perturbation.cpp.o"
  "CMakeFiles/cip_core.dir/perturbation.cpp.o.d"
  "CMakeFiles/cip_core.dir/theory.cpp.o"
  "CMakeFiles/cip_core.dir/theory.cpp.o.d"
  "libcip_core.a"
  "libcip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
