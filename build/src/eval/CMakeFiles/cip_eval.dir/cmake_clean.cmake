file(REMOVE_RECURSE
  "CMakeFiles/cip_eval.dir/experiment.cpp.o"
  "CMakeFiles/cip_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/cip_eval.dir/internal_experiment.cpp.o"
  "CMakeFiles/cip_eval.dir/internal_experiment.cpp.o.d"
  "libcip_eval.a"
  "libcip_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
