# Empty dependencies file for cip_eval.
# This may be replaced when dependencies are built.
