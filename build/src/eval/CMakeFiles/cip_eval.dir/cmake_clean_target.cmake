file(REMOVE_RECURSE
  "libcip_eval.a"
)
