# Empty dependencies file for cip_metrics.
# This may be replaced when dependencies are built.
