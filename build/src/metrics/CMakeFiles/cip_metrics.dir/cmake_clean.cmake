file(REMOVE_RECURSE
  "CMakeFiles/cip_metrics.dir/metrics.cpp.o"
  "CMakeFiles/cip_metrics.dir/metrics.cpp.o.d"
  "libcip_metrics.a"
  "libcip_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
