file(REMOVE_RECURSE
  "libcip_metrics.a"
)
