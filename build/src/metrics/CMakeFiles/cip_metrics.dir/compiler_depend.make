# Empty compiler generated dependencies file for cip_metrics.
# This may be replaced when dependencies are built.
