file(REMOVE_RECURSE
  "libcip_attacks.a"
)
