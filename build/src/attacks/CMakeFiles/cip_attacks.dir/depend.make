# Empty dependencies file for cip_attacks.
# This may be replaced when dependencies are built.
