file(REMOVE_RECURSE
  "CMakeFiles/cip_attacks.dir/adaptive.cpp.o"
  "CMakeFiles/cip_attacks.dir/adaptive.cpp.o.d"
  "CMakeFiles/cip_attacks.dir/attack.cpp.o"
  "CMakeFiles/cip_attacks.dir/attack.cpp.o.d"
  "CMakeFiles/cip_attacks.dir/internal.cpp.o"
  "CMakeFiles/cip_attacks.dir/internal.cpp.o.d"
  "CMakeFiles/cip_attacks.dir/output_attacks.cpp.o"
  "CMakeFiles/cip_attacks.dir/output_attacks.cpp.o.d"
  "CMakeFiles/cip_attacks.dir/pb_bayes.cpp.o"
  "CMakeFiles/cip_attacks.dir/pb_bayes.cpp.o.d"
  "CMakeFiles/cip_attacks.dir/shadow.cpp.o"
  "CMakeFiles/cip_attacks.dir/shadow.cpp.o.d"
  "libcip_attacks.a"
  "libcip_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
