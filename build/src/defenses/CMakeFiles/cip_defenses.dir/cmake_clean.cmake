file(REMOVE_RECURSE
  "CMakeFiles/cip_defenses.dir/adv_reg.cpp.o"
  "CMakeFiles/cip_defenses.dir/adv_reg.cpp.o.d"
  "CMakeFiles/cip_defenses.dir/dp_sgd.cpp.o"
  "CMakeFiles/cip_defenses.dir/dp_sgd.cpp.o.d"
  "CMakeFiles/cip_defenses.dir/hdp.cpp.o"
  "CMakeFiles/cip_defenses.dir/hdp.cpp.o.d"
  "CMakeFiles/cip_defenses.dir/mixup_mmd.cpp.o"
  "CMakeFiles/cip_defenses.dir/mixup_mmd.cpp.o.d"
  "CMakeFiles/cip_defenses.dir/relaxloss.cpp.o"
  "CMakeFiles/cip_defenses.dir/relaxloss.cpp.o.d"
  "libcip_defenses.a"
  "libcip_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
