file(REMOVE_RECURSE
  "libcip_defenses.a"
)
