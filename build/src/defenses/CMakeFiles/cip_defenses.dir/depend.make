# Empty dependencies file for cip_defenses.
# This may be replaced when dependencies are built.
