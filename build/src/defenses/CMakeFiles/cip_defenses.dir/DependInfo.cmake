
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defenses/adv_reg.cpp" "src/defenses/CMakeFiles/cip_defenses.dir/adv_reg.cpp.o" "gcc" "src/defenses/CMakeFiles/cip_defenses.dir/adv_reg.cpp.o.d"
  "/root/repo/src/defenses/dp_sgd.cpp" "src/defenses/CMakeFiles/cip_defenses.dir/dp_sgd.cpp.o" "gcc" "src/defenses/CMakeFiles/cip_defenses.dir/dp_sgd.cpp.o.d"
  "/root/repo/src/defenses/hdp.cpp" "src/defenses/CMakeFiles/cip_defenses.dir/hdp.cpp.o" "gcc" "src/defenses/CMakeFiles/cip_defenses.dir/hdp.cpp.o.d"
  "/root/repo/src/defenses/mixup_mmd.cpp" "src/defenses/CMakeFiles/cip_defenses.dir/mixup_mmd.cpp.o" "gcc" "src/defenses/CMakeFiles/cip_defenses.dir/mixup_mmd.cpp.o.d"
  "/root/repo/src/defenses/relaxloss.cpp" "src/defenses/CMakeFiles/cip_defenses.dir/relaxloss.cpp.o" "gcc" "src/defenses/CMakeFiles/cip_defenses.dir/relaxloss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/cip_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/cip_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cip_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cip_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cip_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cip_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
