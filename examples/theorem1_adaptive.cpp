// Theorem 1 in practice: an adaptive adversary who guesses a perturbation t'
// different from the client's secret t gains NO adversarial advantage.
//
// We train a CIP client, fit the empirical member-posterior from losses
// under the true t, then show that for guessed perturbations the loss gap
// l(θ, z_t') − l(θ, z_t) ≥ 0 drives ε = exp(−Δl/T) ≤ 1 — the guessed-query
// advantage is a *contraction* of the true-query advantage (Sec. III-C).
#include <iostream>

#include "attacks/adaptive.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/cip_model.h"
#include "core/theory.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  std::cout << "Theorem 1 — guessing the perturbation cannot help\n\n";

  eval::BundleOptions opts;
  opts.train_size = 250;
  opts.test_size = 250;
  opts.shadow_size = 50;
  opts.width = 8;
  opts.num_classes = 10;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kCifar100, opts);
  Rng rng(5);
  eval::CipExternalResult cip =
      eval::RunCipExternal(bundle, nullptr, /*alpha=*/0.5f, 30, rng);
  const core::BlendConfig blend = cip.client->config().blend;

  // Losses under the TRUE t (the client's own view).
  core::CipQuery true_q(cip.client->model(), blend,
                        cip.client->perturbation());
  const std::vector<float> true_m = true_q.Losses(bundle.train);
  const std::vector<float> true_n = true_q.Losses(bundle.test);
  const double l_true = Mean(std::span<const float>(true_m));

  std::cout << "mean member loss under true t:  " << l_true << "\n";
  TextTable table({"guess", "mean member loss l(z_t')", "Theorem-1 eps",
                   "attack acc with t'"});
  constexpr double kTemperature = 1.0;
  for (int g = 0; g < 3; ++g) {
    const Tensor t_guess =
        core::Perturbation::Random(bundle.train.SampleShape(), rng).tensor();
    core::CipQuery guess_q(cip.client->model(), blend, t_guess);
    const std::vector<float> gm = guess_q.Losses(bundle.train);
    const std::vector<float> gn = guess_q.Losses(bundle.test);
    const double l_guess = Mean(std::span<const float>(gm));
    const double eps = core::Theorem1Epsilon(l_true, l_guess, kTemperature);
    std::vector<float> ms(gm.size()), ns(gn.size());
    for (std::size_t i = 0; i < gm.size(); ++i) ms[i] = -gm[i];
    for (std::size_t i = 0; i < gn.size(); ++i) ns[i] = -gn[i];
    table.AddRow({"random t' #" + std::to_string(g + 1),
                  TextTable::Num(l_guess), TextTable::Num(eps, 4),
                  TextTable::Num(attacks::BestThresholdAccuracy(ms, ns))});
  }
  table.Print(std::cout);

  // The empirical posterior view: a member-like loss under the true t maps
  // to a confident posterior; the same sample queried with a guessed t'
  // lands in the overlap region.
  const double p_true = core::EmpiricalMemberProb(l_true, true_m, true_n);
  std::cout << "\nPr(member | loss=l_true) under true t: " << p_true
            << " (advantage " << core::AdversarialAdvantage(p_true) << ")\n";
  std::cout << "Expected: l(z_t') > l(z_t) for every guess, so eps <= 1 and\n"
               "the guessed-query attack stays near random guessing.\n";
  return 0;
}
