// Scenario: a retailer trains a shopper-segmentation model on purchase
// histories (the paper's Purchase-50 workload). A white-box external
// adversary — e.g. a partner who received the deployed model — mounts the
// full attack suite. CIP protects the records without hurting segmentation
// accuracy, and works on non-image (vector) data out of the box.
#include <iostream>

#include "common/table.h"
#include "core/cip_model.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  std::cout << "Purchase analytics — shielding shopper records from a "
               "white-box adversary\n\n";

  eval::BundleOptions opts;
  opts.train_size = 300;
  opts.test_size = 300;
  opts.shadow_size = 300;
  opts.width = 8;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kPurchase50, opts);
  Rng rng(3);
  const eval::ShadowPack shadow = eval::BuildShadowPack(bundle, 30, rng);

  // Baseline: the deployed model with no defense.
  auto plain = eval::TrainPlain(bundle, 30, rng);
  fl::ClassifierQuery plain_q(*plain);
  const auto plain_attacks =
      eval::RunExternalAttackSuite(bundle, shadow, plain_q, rng);

  // CIP-protected deployment (vector perturbation t, same API).
  eval::CipExternalResult cip =
      eval::RunCipExternal(bundle, &shadow, /*alpha=*/0.9f, 30, rng);

  TextTable table({"Attack", "no defense", "CIP (a=0.9)"});
  for (const auto& [name, m] : plain_attacks) {
    table.AddRow({name, TextTable::Num(m.accuracy),
                  TextTable::Num(cip.attacks.at(name).accuracy)});
  }
  table.Print(std::cout);
  std::cout << "\ntest accuracy: no defense "
            << TextTable::Num(fl::Evaluate(*plain, bundle.test)) << ", CIP "
            << TextTable::Num(cip.test_acc) << "\n";
  std::cout << "Expected: every attack drops toward 0.5 under CIP with "
               "comparable accuracy.\n";
  return 0;
}
