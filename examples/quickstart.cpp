// Quickstart: defend a federated-learning client against membership
// inference with CIP in ~60 lines of user code.
//
//   1. make a dataset (synthetic CIFAR-100 stand-in),
//   2. train a no-defense model and attack it (loss-threshold MI),
//   3. train a CIP client and attack its raw-query surface,
//   4. compare: accuracy preserved, attack collapses toward 0.5.
#include <iostream>

#include "attacks/output_attacks.h"
#include "core/cip_model.h"
#include "eval/experiment.h"

using namespace cip;

int main() {
  std::cout << "CIP quickstart — reproduce the paper's headline claim\n\n";

  // 1. Data: 10-class image-like dataset in the paper's overfit regime.
  eval::BundleOptions opts;
  opts.train_size = 250;
  opts.test_size = 250;
  opts.shadow_size = 250;
  opts.width = 8;
  opts.num_classes = 10;
  const eval::DataBundle bundle =
      eval::MakeBundle(eval::DatasetId::kCifar100, opts);
  Rng rng(1);

  // The attacker's shadow model calibrates its loss threshold (Ob-MALT).
  const eval::ShadowPack shadow = eval::BuildShadowPack(bundle, 45, rng);
  attacks::ObMalt attack(shadow.member_losses, shadow.nonmember_losses);

  // 2. No defense: a plain overfit classifier.
  auto plain = eval::TrainPlain(bundle, 50, rng);
  fl::ClassifierQuery plain_q(*plain);
  const auto plain_attack =
      attacks::EvaluateAttack(attack, plain_q, bundle.train, bundle.test);
  std::cout << "No defense:  test acc "
            << fl::Evaluate(*plain, bundle.test) << ", Ob-MALT attack acc "
            << plain_attack.accuracy << "\n";

  // 3. CIP: one client, secret perturbation t, dual-channel model.
  eval::CipSingleResult cip =
      eval::TrainCipSingle(bundle, /*alpha=*/0.9f, /*rounds=*/35, rng);
  core::CipQuery raw(cip.client->model(), cip.client->config().blend);
  const auto cip_attack =
      attacks::EvaluateAttack(attack, raw, bundle.train, bundle.test);
  std::cout << "CIP (a=0.9): test acc " << cip.client->EvalAccuracy(bundle.test)
            << ", Ob-MALT attack acc " << cip_attack.accuracy << "\n";

  std::cout << "\nExpected: comparable test accuracy, attack accuracy near "
               "0.5 under CIP.\n";
  return 0;
}
