// Scenario: three hospitals collaboratively train a histology classifier
// (the paper's CH-MNIST motivation) without exposing which patient images
// were in any hospital's records — even to a malicious aggregation server.
//
// Each hospital holds a non-i.i.d. slice of tissue classes. We train FedAvg
// without a defense and with CIP, mount the malicious-server passive attack
// (Nasr et al.) against hospital 0, and compare.
#include <iostream>

#include "attacks/internal.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/server.h"

using namespace cip;

namespace {

constexpr std::size_t kHospitals = 3;
constexpr std::size_t kPerHospital = 120;
constexpr std::size_t kRounds = 30;

double PassiveAttack(const std::vector<fl::ModelState>& snapshots,
                     const attacks::SnapshotQueryFactory& factory,
                     const data::Dataset& members,
                     const data::Dataset& nonmembers) {
  attacks::InternalPassive passive(snapshots, factory);
  const std::size_t hm = members.size() / 2, hn = nonmembers.size() / 2;
  passive.Calibrate(members.Slice(0, hm), nonmembers.Slice(0, hn));
  const std::vector<float> sm = passive.Score(members.Slice(hm, members.size()));
  const std::vector<float> sn =
      passive.Score(nonmembers.Slice(hn, nonmembers.size()));
  return attacks::ScoreToMetrics(sm, sn, 0.5f).accuracy;
}

}  // namespace

int main() {
  std::cout << "Federated hospitals — protecting patient membership from a "
               "malicious server\n\n";

  data::SyntheticVision gen(data::ChMnistLike());
  Rng rng(7);
  data::Dataset full = gen.Sample(kHospitals * kPerHospital, rng);
  // Each hospital specializes in some tissue types (non-i.i.d.).
  const auto shards = data::PartitionByClasses(full, kHospitals, 4, 8, rng);
  const data::Dataset test = gen.Sample(240, rng);
  const std::vector<int> victim_classes = data::ClassesPresent(shards[0]);
  const data::Dataset nonmembers =
      gen.SampleClasses(kPerHospital, victim_classes, rng);

  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = 8;
  spec.width = 8;
  spec.seed = 8;
  fl::TrainConfig train;
  train.lr = 0.02f;
  train.momentum = 0.9f;

  // ---- no defense ------------------------------------------------------------
  {
    fl::ClientStore store;  // live store: hospitals are queried after the run
    std::vector<fl::ClientBase*> ptrs;
    for (std::size_t k = 0; k < kHospitals; ++k) {
      ptrs.push_back(store.Add(
          std::make_unique<fl::LegacyClient>(spec, shards[k], train, 10 + k)));
    }
    fl::FlOptions opts;
    opts.rounds = kRounds;
    opts.record_client_updates = true;  // the malicious server watches
    fl::FederatedAveraging server(fl::InitialState(spec), opts);
    const fl::FlLog log = server.Run(store, rng.NextU64());

    std::vector<fl::ModelState> victim_snaps;
    for (auto it = log.client_updates.end() - 3;
         it != log.client_updates.end(); ++it) {
      victim_snaps.push_back((*it)[0]);
    }
    const double attack = PassiveAttack(
        victim_snaps,
        [spec](const fl::ModelState& s) -> std::unique_ptr<fl::QueryModel> {
          struct Owning : fl::QueryModel {
            std::unique_ptr<nn::Classifier> m;
            explicit Owning(std::unique_ptr<nn::Classifier> mm)
                : m(std::move(mm)) {}
            Tensor Logits(const Tensor& x) override {
              return fl::LogitsFor(*m, x);
            }
            std::size_t NumClasses() const override {
              return m->num_classes();
            }
          };
          auto model = nn::MakeClassifier(spec);
          const std::vector<nn::Parameter*> p = model->Parameters();
          s.ApplyTo(p);
          return std::make_unique<Owning>(std::move(model));
        },
        ptrs[0]->LocalData(), nonmembers);
    std::cout << "No defense: hospital-0 test acc "
              << ptrs[0]->EvalAccuracy(test) << ", server MI attack acc "
              << attack << "\n";
  }

  // ---- CIP -------------------------------------------------------------------
  {
    core::CipConfig cfg;
    cfg.blend.alpha = 0.7f;
    cfg.train = train;
    cfg.perturb_steps = 6;
    fl::ClientStore store;
    std::vector<fl::ClientBase*> ptrs;
    for (std::size_t k = 0; k < kHospitals; ++k) {
      ptrs.push_back(store.Add(
          std::make_unique<core::CipClient>(spec, shards[k], cfg, 20 + k)));
    }
    fl::FlOptions opts;
    opts.rounds = kRounds;
    opts.record_client_updates = true;
    fl::FederatedAveraging server(core::InitialDualState(spec), opts);
    const fl::FlLog log = server.Run(store, rng.NextU64());

    std::vector<fl::ModelState> victim_snaps;
    for (auto it = log.client_updates.end() - 3;
         it != log.client_updates.end(); ++it) {
      victim_snaps.push_back((*it)[0]);
    }
    const core::BlendConfig blend = cfg.blend;
    const double attack = PassiveAttack(
        victim_snaps,
        [spec, blend](const fl::ModelState& s)
            -> std::unique_ptr<fl::QueryModel> {
          struct Owning : fl::QueryModel {
            std::unique_ptr<nn::DualChannelClassifier> m;
            core::BlendConfig b;
            Owning(std::unique_ptr<nn::DualChannelClassifier> mm,
                   core::BlendConfig bb)
                : m(std::move(mm)), b(bb) {}
            Tensor Logits(const Tensor& x) override {
              return core::DualLogits(*m, x, Tensor(), b);
            }
            std::size_t NumClasses() const override {
              return m->num_classes();
            }
          };
          auto model = nn::MakeDualChannelClassifier(spec);
          const std::vector<nn::Parameter*> p = model->Parameters();
          s.ApplyTo(p);
          return std::make_unique<Owning>(std::move(model), blend);
        },
        ptrs[0]->LocalData(), nonmembers);
    std::cout << "CIP (a=0.7): hospital-0 test acc "
              << ptrs[0]->EvalAccuracy(test) << ", server MI attack acc "
              << attack << "\n";
  }

  std::cout << "\nExpected: similar diagnostic accuracy, attack accuracy "
               "much closer to 0.5 under CIP.\n";
  return 0;
}
