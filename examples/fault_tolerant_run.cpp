// Runbook demo: fault-injected federated training with checkpoint/resume.
//
// A small CIP fleet trains under injected dropouts and stragglers while the
// server checkpoints every few rounds. Kill the run at round k (--stop-after
// simulates the crash cleanly) and continue it with --resume: the resumed
// run reconstructs every RNG stream from the checkpointed seed, so its final
// global model is bit-identical to an uninterrupted run. docs/ROBUSTNESS.md
// explains why; README's Runbook section walks through this binary.
//
// Typical session:
//   fault_tolerant_run --rounds 8 --checkpoint /tmp/demo.ckpt --stop-after 3
//   fault_tolerant_run --rounds 8 --checkpoint /tmp/demo.ckpt --resume
//   fault_tolerant_run --rounds 8            # straight run, same final norm
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "fl/server.h"

using namespace cip;

namespace {

struct Args {
  std::size_t rounds = 8;
  std::size_t clients = 4;
  std::size_t stop_after = 0;  // 0 = run to completion
  std::size_t checkpoint_every = 2;
  std::uint64_t seed = 7;
  float dropout = 0.2f;
  float straggler = 0.1f;
  bool resume = false;
  std::string checkpoint;        // empty = checkpointing off
  std::string telemetry_jsonl;   // empty = stdout summary only
};

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      CIP_CHECK_MSG(i + 1 < argc, flag << " needs a value");
      return argv[++i];
    };
    if (flag == "--rounds") a.rounds = std::stoul(value());
    else if (flag == "--clients") a.clients = std::stoul(value());
    else if (flag == "--stop-after") a.stop_after = std::stoul(value());
    else if (flag == "--checkpoint-every") a.checkpoint_every = std::stoul(value());
    else if (flag == "--seed") a.seed = std::stoull(value());
    else if (flag == "--dropout") a.dropout = std::stof(value());
    else if (flag == "--straggler") a.straggler = std::stof(value());
    else if (flag == "--checkpoint") a.checkpoint = value();
    else if (flag == "--telemetry") a.telemetry_jsonl = value();
    else if (flag == "--resume") a.resume = true;
    else {
      std::cerr << "unknown flag " << flag << "\n"
                << "flags: --rounds N --clients N --stop-after K\n"
                << "       --checkpoint PATH --checkpoint-every N --resume\n"
                << "       --dropout R --straggler R --telemetry PATH "
                   "--seed S\n";
      std::exit(2);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);

  // The fleet must be constructed identically on every invocation (fresh or
  // resumed) — the checkpoint only carries private *state*, not the clients.
  data::SyntheticVision gen(data::ChMnistLike());
  Rng data_rng(args.seed);
  const data::Dataset full = gen.Sample(args.clients * 80, data_rng);
  const auto shards = data::PartitionIid(full, args.clients, data_rng);

  nn::ModelSpec spec;
  spec.arch = nn::Arch::kResNet;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = 8;
  spec.width = 6;
  spec.seed = args.seed + 1;

  core::CipConfig cfg;
  cfg.blend.alpha = 0.7f;
  cfg.train.lr = 0.02f;
  cfg.train.momentum = 0.9f;
  cfg.perturb_steps = 4;

  // A live store owns the fleet; resumed invocations rebuild it identically
  // and the checkpoint repopulates each client's private state.
  fl::ClientStore store;
  for (std::size_t k = 0; k < args.clients; ++k) {
    store.Add(
        std::make_unique<core::CipClient>(spec, shards[k], cfg, 100 + k));
  }

  fl::FlOptions opts;
  opts.faults.dropout_rate = args.dropout;
  opts.faults.straggler_rate = args.straggler;
  opts.faults.straggler_delay_seconds = 5.0;
  opts.round_timeout_seconds = 2.0;  // stragglers miss this deadline
  opts.min_quorum = 1;
  opts.max_retries = 2;
  opts.checkpoint_path = args.checkpoint;
  opts.checkpoint_every = args.checkpoint.empty() ? 0 : args.checkpoint_every;
  opts.stop_after_round = args.stop_after;

  // Same init on every invocation; CIP clients are dual-channel, so the
  // broadcast state must be the dual-channel layout.
  const fl::ModelState init = core::InitialDualState(spec);
  fl::FlLog log;
  if (args.resume) {
    CIP_CHECK_MSG(!args.checkpoint.empty(), "--resume needs --checkpoint");
    std::cout << "resuming from " << args.checkpoint << "\n";
    log = eval::ResumeFederated(store, init, args.checkpoint, opts);
  } else {
    opts.rounds = args.rounds;
    fl::FederatedAveraging server(init, opts);
    // Root the run directly in --seed so a crashed run and a fresh run of
    // the same seed share all RNG streams.
    log = server.Run(store, args.seed);
  }

  for (const fl::RoundStats& r : log.telemetry.rounds) {
    std::size_t faults = 0;
    for (const fl::ClientRoundStats& c : r.clients) {
      if (c.fault != fl::FaultKind::kNone) ++faults;
    }
    std::cout << "round " << r.round << ": " << r.survivors << "/"
              << r.clients.size() << " survivors, " << faults << " faults"
              << (r.skipped ? " [skipped: below quorum]" : "") << "\n";
  }
  if (!args.telemetry_jsonl.empty()) {
    std::ofstream os(args.telemetry_jsonl);
    CIP_CHECK_MSG(os.is_open(), "cannot open " << args.telemetry_jsonl);
    log.telemetry.WriteJsonl(os);
    std::cout << "telemetry -> " << args.telemetry_jsonl << "\n";
  }
  std::cout << "final global L2 norm: " << log.final_global.L2Norm() << "\n";
  if (args.stop_after > 0 && !args.checkpoint.empty()) {
    std::cout << "stopped after round " << args.stop_after
              << "; continue with --resume --checkpoint " << args.checkpoint
              << "\n";
  }
  return 0;
}
