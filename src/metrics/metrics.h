// Evaluation metrics: classification accuracy, binary attack metrics
// (precision/recall/F1 as in Table IV), Earth Mover Distance between loss
// distributions (Fig. 7), and SSIM between perturbations (Table VIII).
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace cip::metrics {

/// Fraction of predictions equal to labels.
double Accuracy(std::span<const int> predictions, std::span<const int> labels);

/// Binary confusion outcome for MI attacks. "Positive" = predicted member.
struct BinaryMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
};

/// predictions[i] / truths[i]: true = member.
BinaryMetrics EvaluateBinary(const std::vector<bool>& predictions,
                             const std::vector<bool>& truths);

/// 1-D Earth Mover (Wasserstein-1) distance between two empirical
/// distributions given as raw samples.
double EarthMoverDistance(std::vector<float> a, std::vector<float> b);

/// Global structural similarity index between two equal-size signals
/// (images or vectors), with the standard constants for dynamic range L.
double Ssim(const Tensor& a, const Tensor& b, double dynamic_range = 1.0);

}  // namespace cip::metrics
