#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cip::metrics {

double Accuracy(std::span<const int> predictions,
                std::span<const int> labels) {
  CIP_CHECK_EQ(predictions.size(), labels.size());
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

BinaryMetrics EvaluateBinary(const std::vector<bool>& predictions,
                             const std::vector<bool>& truths) {
  CIP_CHECK_EQ(predictions.size(), truths.size());
  BinaryMetrics m;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] && truths[i]) ++m.tp;
    else if (predictions[i] && !truths[i]) ++m.fp;
    else if (!predictions[i] && !truths[i]) ++m.tn;
    else ++m.fn;
  }
  const double n = static_cast<double>(predictions.size());
  if (n > 0) m.accuracy = static_cast<double>(m.tp + m.tn) / n;
  if (m.tp + m.fp > 0) {
    m.precision = static_cast<double>(m.tp) / static_cast<double>(m.tp + m.fp);
  }
  if (m.tp + m.fn > 0) {
    m.recall = static_cast<double>(m.tp) / static_cast<double>(m.tp + m.fn);
  }
  if (m.precision + m.recall > 0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

double EarthMoverDistance(std::vector<float> a, std::vector<float> b) {
  CIP_CHECK(!a.empty());
  CIP_CHECK(!b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // W1 = ∫ |F_a^{-1}(q) − F_b^{-1}(q)| dq, evaluated on a shared quantile
  // grid so unequal sample counts are handled.
  const std::size_t grid = std::max(a.size(), b.size());
  auto quantile = [](const std::vector<float>& v, double q) {
    const double pos = q * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return (1.0 - frac) * v[lo] + frac * v[hi];
  };
  double s = 0.0;
  for (std::size_t i = 0; i < grid; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(grid);
    s += std::abs(quantile(a, q) - quantile(b, q));
  }
  return s / static_cast<double>(grid);
}

double Ssim(const Tensor& a, const Tensor& b, double dynamic_range) {
  CIP_CHECK_EQ(a.size(), b.size());
  CIP_CHECK_GT(a.size(), 0u);
  CIP_CHECK_GT(dynamic_range, 0.0);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double va = 0.0, vb = 0.0, cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    va += da * da;
    vb += db * db;
    cov += da * db;
  }
  va /= n;
  vb /= n;
  cov /= n;
  const double c1 = std::pow(0.01 * dynamic_range, 2);
  const double c2 = std::pow(0.03 * dynamic_range, 2);
  return ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) /
         ((ma * ma + mb * mb + c1) * (va + vb + c2));
}

}  // namespace cip::metrics
