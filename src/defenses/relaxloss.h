// RelaxLoss (Chen, Yu & Fritz, ICLR 2022).
//
// Instead of minimizing the training loss to zero — which creates the
// member/non-member loss gap MI attacks exploit — RelaxLoss keeps the
// training loss *around* a target level ω: gradient descent while the batch
// loss is above ω, gradient ascent when it falls below. Larger ω = flatter
// member posteriors = more privacy, less utility.
#pragma once

#include "fl/client.h"

namespace cip::defenses {

struct RlConfig {
  float omega = 1.0f;  ///< target loss level (paper's α; knob 0.5..10)
};

class RelaxLossClient : public fl::ClientBase {
 public:
  RelaxLossClient(const nn::ModelSpec& spec, data::Dataset local_data,
                  fl::TrainConfig train_cfg, RlConfig rl_cfg,
                  std::uint64_t seed);

  void SetGlobal(const fl::ModelState& global) override;
  fl::ModelState TrainLocal(fl::RoundContext ctx) override;
  double EvalAccuracy(const data::Dataset& data) override;
  float LastTrainLoss() const override { return last_loss_; }
  const data::Dataset& LocalData() const override { return data_; }
  fl::ClientState ExportState() const override;
  void RestoreState(const fl::ClientState& state) override;

  nn::Classifier& model() { return *model_; }

 private:
  float RelaxEpoch(Rng& rng);

  std::unique_ptr<nn::Classifier> model_;
  data::Dataset data_;
  fl::TrainConfig cfg_;
  RlConfig rl_;
  optim::Sgd opt_;
  float last_loss_ = 0.0f;
};

}  // namespace cip::defenses
