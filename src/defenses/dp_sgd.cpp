#include "defenses/dp_sgd.h"

#include <cmath>

#include "tensor/ops.h"

namespace cip::defenses {

float NoiseMultiplier(const DpConfig& cfg) {
  CIP_CHECK_GT(cfg.epsilon, 0.0f);
  CIP_CHECK(cfg.delta > 0.0f && cfg.delta < 1.0f);
  CIP_CHECK_GT(cfg.total_steps, 0u);
  CIP_CHECK(cfg.sampling_rate > 0.0f && cfg.sampling_rate <= 1.0f);
  return cfg.sampling_rate *
         std::sqrt(2.0f * static_cast<float>(cfg.total_steps) *
                   std::log(1.25f / cfg.delta)) /
         cfg.epsilon;
}

DpSgdClient::DpSgdClient(const nn::ModelSpec& spec, data::Dataset local_data,
                         fl::TrainConfig train_cfg, DpConfig dp_cfg,
                         std::uint64_t /*seed*/)
    : model_(nn::MakeClassifier(spec)),
      data_(std::move(local_data)),
      cfg_(train_cfg),
      dp_(dp_cfg),
      sigma_(NoiseMultiplier(dp_cfg)) {
  CIP_CHECK(!data_.empty());
  CIP_CHECK_GT(dp_.clip_norm, 0.0f);
}

void DpSgdClient::SetGlobal(const fl::ModelState& global) {
  const std::vector<nn::Parameter*> params = model_->Parameters();
  global.ApplyTo(params);
}

fl::ModelState DpSgdClient::TrainLocal(fl::RoundContext ctx) {
  const float lr = ctx.LrFor(cfg_);
  float loss = 0.0f;
  for (std::size_t e = 0; e < cfg_.epochs; ++e) loss = PrivateEpoch(ctx.rng, lr);
  last_loss_ = loss;
  const std::vector<nn::Parameter*> params = model_->Parameters();
  return fl::ModelState::From(params);
}

float DpSgdClient::PrivateEpoch(Rng& rng, float lr) {
  const std::vector<std::size_t> perm = rng.Permutation(data_.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data_.size();
       start += cfg_.batch_size) {
    const std::size_t end = std::min(start + cfg_.batch_size, data_.size());
    const std::size_t bsz = end - start;

    // Per-sample clipped gradient accumulation.
    std::vector<Tensor> acc;
    acc.reserve(params.size());
    for (const nn::Parameter* p : params) acc.emplace_back(p->value.shape());
    double batch_loss = 0.0;
    for (std::size_t s = start; s < end; ++s) {
      const std::size_t i = perm[s];
      const data::Dataset one = data_.Subset(std::span(&i, 1));
      const Tensor logits = model_->Forward(one.inputs, /*train=*/true);
      Tensor dlogits;
      batch_loss += ops::SoftmaxCrossEntropy(logits, one.labels, &dlogits);
      model_->Backward(dlogits);
      // Global-norm clip over the whole gradient vector.
      double sq = 0.0;
      for (const nn::Parameter* p : params) {
        for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
      }
      const float norm = static_cast<float>(std::sqrt(sq));
      const float scale =
          norm > dp_.clip_norm ? dp_.clip_norm / norm : 1.0f;
      for (std::size_t pi = 0; pi < params.size(); ++pi) {
        ops::Axpy(acc[pi], scale, params[pi]->grad);
        params[pi]->ZeroGrad();
      }
    }

    // Add noise, average, and take an SGD step.
    const float noise_std = sigma_ * dp_.clip_norm;
    const float inv_b = 1.0f / static_cast<float>(bsz);
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      nn::Parameter& p = *params[pi];
      for (std::size_t j = 0; j < p.value.size(); ++j) {
        const float noisy = (acc[pi][j] + noise_std * rng.Normal()) * inv_b;
        p.value[j] -= lr * noisy;
      }
    }
    total_loss += batch_loss / static_cast<double>(bsz);
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total_loss / batches) : 0.0f;
}

double DpSgdClient::EvalAccuracy(const data::Dataset& data) {
  return fl::Evaluate(*model_, data);
}

}  // namespace cip::defenses
