#include "defenses/adv_reg.h"

#include "nn/activations.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace cip::defenses {

namespace {

std::unique_ptr<nn::Sequential> BuildAttacker(std::size_t num_classes,
                                              std::size_t hidden, Rng& rng) {
  auto seq = std::make_unique<nn::Sequential>("ar.attacker");
  seq->Add(std::make_unique<nn::Linear>(2 * num_classes, hidden, rng, "ar.l1"))
      .Add(std::make_unique<nn::ReLU>())
      .Add(std::make_unique<nn::Linear>(hidden, 2, rng, "ar.l2"));
  return seq;
}

}  // namespace

ArClient::ArClient(const nn::ModelSpec& spec, data::Dataset local_data,
                   data::Dataset reference, fl::TrainConfig train_cfg,
                   ArConfig ar_cfg, std::uint64_t seed)
    : model_(nn::MakeClassifier(spec)),
      data_(std::move(local_data)),
      reference_(std::move(reference)),
      cfg_(train_cfg),
      ar_(ar_cfg),
      init_rng_(seed),
      attacker_(
          BuildAttacker(spec.num_classes, ar_cfg.attack_hidden, init_rng_)),
      attacker_opt_(ar_cfg.attack_lr, 0.5f),
      model_opt_(train_cfg.lr, train_cfg.momentum, train_cfg.weight_decay,
                 train_cfg.grad_clip) {
  CIP_CHECK(!data_.empty());
  CIP_CHECK(!reference_.empty());
}

void ArClient::SetGlobal(const fl::ModelState& global) {
  const std::vector<nn::Parameter*> params = model_->Parameters();
  global.ApplyTo(params);
}

Tensor ArClient::AttackInput(const Tensor& probs,
                             std::span<const int> labels) const {
  const std::size_t n = probs.dim(0), c = probs.dim(1);
  CIP_CHECK_EQ(labels.size(), n);
  Tensor u({n, 2 * c});
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(probs.data() + i * c, probs.data() + (i + 1) * c,
              u.data() + i * 2 * c);
    u[i * 2 * c + c + static_cast<std::size_t>(labels[i])] = 1.0f;
  }
  return u;
}

void ArClient::TrainAttacker(Rng& rng) {
  const std::vector<nn::Parameter*> hp = attacker_->Parameters();
  const std::size_t bsz = std::min<std::size_t>(cfg_.batch_size,
                                                std::min(data_.size(),
                                                         reference_.size()));
  for (std::size_t step = 0; step < ar_.attack_steps; ++step) {
    // One member batch, one non-member batch.
    std::vector<std::size_t> mi(bsz), ni(bsz);
    for (std::size_t i = 0; i < bsz; ++i) {
      mi[i] = rng.Index(data_.size());
      ni[i] = rng.Index(reference_.size());
    }
    const data::Dataset mb = data_.Subset(mi);
    const data::Dataset nb = reference_.Subset(ni);
    const Tensor mp = ops::SoftmaxRows(fl::LogitsFor(*model_, mb.inputs));
    const Tensor np = ops::SoftmaxRows(fl::LogitsFor(*model_, nb.inputs));
    const Tensor mu = AttackInput(mp, mb.labels);
    const Tensor nu = AttackInput(np, nb.labels);

    std::vector<int> labels(2 * bsz);
    Tensor batch({2 * bsz, mu.dim(1)});
    std::copy(mu.data(), mu.data() + mu.size(), batch.data());
    std::copy(nu.data(), nu.data() + nu.size(), batch.data() + mu.size());
    for (std::size_t i = 0; i < bsz; ++i) {
      labels[i] = 1;          // member
      labels[bsz + i] = 0;    // non-member
    }
    const Tensor hlogits = attacker_->Forward(batch, /*train=*/true);
    Tensor dh;
    ops::SoftmaxCrossEntropy(hlogits, labels, &dh);
    attacker_->Backward(dh);
    attacker_opt_.Step(hp);
  }
}

float ArClient::TrainModelEpoch(Rng& rng) {
  const std::vector<std::size_t> perm = rng.Permutation(data_.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data_.size();
       start += cfg_.batch_size) {
    const std::size_t end = std::min(start + cfg_.batch_size, data_.size());
    const std::span<const std::size_t> idx(perm.data() + start, end - start);
    const data::Dataset batch = data_.Subset(idx);
    const std::size_t n = batch.size();

    const Tensor logits = model_->Forward(batch.inputs, /*train=*/true);
    Tensor dlogits;
    const float ce = ops::SoftmaxCrossEntropy(logits, batch.labels, &dlogits);

    // Regularizer: + λ·mean(log h_member(u)). Push the attacker's member
    // posterior down through softmax(logits) -> u -> h.
    const Tensor probs = ops::SoftmaxRows(logits);
    const Tensor u = AttackInput(probs, batch.labels);
    const Tensor hlogits = attacker_->Forward(u, /*train=*/true);
    const Tensor hp = ops::SoftmaxRows(hlogits);
    // d[mean log p_member]/dhlogits = (e_member − p_h)/n.
    Tensor dh(hlogits.shape());
    for (std::size_t i = 0; i < n; ++i) {
      dh[i * 2 + 0] = -hp[i * 2 + 0] / static_cast<float>(n);
      dh[i * 2 + 1] = (1.0f - hp[i * 2 + 1]) / static_cast<float>(n);
    }
    ops::ScaleInPlace(dh, ar_.lambda);  // weight of the gain term
    Tensor du = attacker_->Backward(dh);
    attacker_->ZeroGrad();  // h is fixed in this phase
    // Only the probs half of u depends on the model.
    const std::size_t c = probs.dim(1);
    Tensor dprobs({n, c});
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(du.data() + i * 2 * c, du.data() + i * 2 * c + c,
                dprobs.data() + i * c);
    }
    ops::AddInPlace(dlogits, ops::SoftmaxBackwardRows(probs, dprobs));

    model_->Backward(dlogits);
    model_opt_.Step(params);
    total_loss += ce;
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total_loss / batches) : 0.0f;
}

fl::ModelState ArClient::TrainLocal(fl::RoundContext ctx) {
  model_opt_.set_lr(ctx.LrFor(cfg_));
  float loss = 0.0f;
  for (std::size_t e = 0; e < cfg_.epochs; ++e) {
    TrainAttacker(ctx.rng);
    loss = TrainModelEpoch(ctx.rng);
  }
  last_loss_ = loss;
  const std::vector<nn::Parameter*> params = model_->Parameters();
  return fl::ModelState::From(params);
}

double ArClient::EvalAccuracy(const data::Dataset& data) {
  return fl::Evaluate(*model_, data);
}

fl::ClientState ArClient::ExportState() const {
  const std::vector<nn::Parameter*> hp = attacker_->Parameters();
  const std::vector<Tensor> attacker_opt = attacker_opt_.ExportState();
  const std::vector<Tensor> model_opt = model_opt_.ExportState();
  fl::ClientState state;
  Tensor header({3});
  header[0] = static_cast<float>(hp.size());
  header[1] = static_cast<float>(attacker_opt.size());
  header[2] = static_cast<float>(model_opt.size());
  state.tensors.push_back(std::move(header));
  for (const nn::Parameter* p : hp) state.tensors.push_back(p->value);
  for (const Tensor& t : attacker_opt) state.tensors.push_back(t);
  for (const Tensor& t : model_opt) state.tensors.push_back(t);
  return state;
}

void ArClient::RestoreState(const fl::ClientState& state) {
  CIP_CHECK_MSG(!state.tensors.empty() && state.tensors.front().size() == 3,
                "AR client snapshot must start with a {3} section header");
  const Tensor& header = state.tensors.front();
  const auto na = static_cast<std::size_t>(header[0]);
  const auto nao = static_cast<std::size_t>(header[1]);
  const auto nmo = static_cast<std::size_t>(header[2]);
  CIP_CHECK_EQ(state.tensors.size(), 1 + na + nao + nmo);
  const std::vector<nn::Parameter*> hp = attacker_->Parameters();
  CIP_CHECK_EQ(na, hp.size());
  std::size_t cursor = 1;
  for (nn::Parameter* p : hp) {
    const Tensor& v = state.tensors[cursor++];
    CIP_CHECK(v.SameShape(p->value));
    p->value = v;
  }
  attacker_opt_.RestoreState({state.tensors.begin() + cursor,
                              state.tensors.begin() + cursor + nao});
  cursor += nao;
  model_opt_.RestoreState({state.tensors.begin() + cursor,
                           state.tensors.begin() + cursor + nmo});
}

}  // namespace cip::defenses
