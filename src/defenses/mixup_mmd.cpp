#include "defenses/mixup_mmd.h"

#include <cmath>

#include "tensor/ops.h"

namespace cip::defenses {

MixupMmdClient::MixupMmdClient(const nn::ModelSpec& spec,
                               data::Dataset local_data,
                               data::Dataset validation,
                               fl::TrainConfig train_cfg, MmConfig mm_cfg,
                               std::uint64_t /*seed*/)
    : model_(nn::MakeClassifier(spec)),
      data_(std::move(local_data)),
      validation_(std::move(validation)),
      cfg_(train_cfg),
      mm_(mm_cfg),
      opt_(train_cfg.lr, train_cfg.momentum, train_cfg.weight_decay,
           train_cfg.grad_clip) {
  CIP_CHECK(!data_.empty());
  CIP_CHECK(!validation_.empty());
}

void MixupMmdClient::SetGlobal(const fl::ModelState& global) {
  const std::vector<nn::Parameter*> params = model_->Parameters();
  global.ApplyTo(params);
}

float MixupMmdClient::TrainEpochMixupMmd(Rng& rng) {
  const std::vector<std::size_t> perm = rng.Permutation(data_.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data_.size();
       start += cfg_.batch_size) {
    const std::size_t end = std::min(start + cfg_.batch_size, data_.size());
    const std::span<const std::size_t> idx(perm.data() + start, end - start);
    const data::Dataset batch = data_.Subset(idx);
    const std::size_t n = batch.size();

    // Mixup: pair each sample with a random partner from the same batch.
    // Beta(α,α) with α=1 is uniform; approximate other α by clamping the
    // symmetric Beta with a power transform of a uniform draw.
    const float lam = mm_.mixup_alpha == 1.0f
                          ? rng.Uniform()
                          : std::pow(rng.Uniform(), 1.0f / mm_.mixup_alpha) /
                                (std::pow(rng.Uniform(), 1.0f / mm_.mixup_alpha) +
                                 std::pow(rng.Uniform(), 1.0f / mm_.mixup_alpha));
    std::vector<std::size_t> partner(n);
    for (std::size_t i = 0; i < n; ++i) partner[i] = rng.Index(n);
    Tensor mixed(batch.inputs.shape());
    const std::size_t stride = mixed.size() / n;
    for (std::size_t i = 0; i < n; ++i) {
      const float* a = batch.inputs.data() + i * stride;
      const float* b = batch.inputs.data() + partner[i] * stride;
      float* o = mixed.data() + i * stride;
      for (std::size_t j = 0; j < stride; ++j) {
        o[j] = lam * a[j] + (1.0f - lam) * b[j];
      }
    }
    std::vector<int> labels_b(n);
    for (std::size_t i = 0; i < n; ++i) {
      labels_b[i] = batch.labels[partner[i]];
    }

    const Tensor logits = model_->Forward(mixed, /*train=*/true);
    Tensor da, db;
    const float la = ops::SoftmaxCrossEntropy(logits, batch.labels, &da);
    const float lb = ops::SoftmaxCrossEntropy(logits, labels_b, &db);
    Tensor dlogits = ops::Scale(da, lam);
    ops::Axpy(dlogits, 1.0f - lam, db);
    const float ce = lam * la + (1.0f - lam) * lb;

    // Linear-kernel MMD: μ·‖mean p_train − mean p_val‖². The validation pass
    // is a constant w.r.t. θ in this step.
    if (mm_.mu > 0.0f) {
      const Tensor probs = ops::SoftmaxRows(logits);
      const std::size_t c = probs.dim(1);
      const std::size_t vb = std::min<std::size_t>(n, validation_.size());
      std::vector<std::size_t> vi(vb);
      for (std::size_t i = 0; i < vb; ++i) vi[i] = rng.Index(validation_.size());
      const data::Dataset vbatch = validation_.Subset(vi);
      const Tensor vprobs =
          ops::SoftmaxRows(fl::LogitsFor(*model_, vbatch.inputs));
      Tensor diff({c});
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          diff[j] += probs[i * c + j] / static_cast<float>(n);
        }
      }
      for (std::size_t i = 0; i < vb; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          diff[j] -= vprobs[i * c + j] / static_cast<float>(vb);
        }
      }
      // d(μ‖diff‖²)/dp_i = 2μ·diff/n for every training sample i.
      Tensor dprobs({n, c});
      const float scale = 2.0f * mm_.mu / static_cast<float>(n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < c; ++j) dprobs[i * c + j] = scale * diff[j];
      }
      ops::AddInPlace(dlogits, ops::SoftmaxBackwardRows(probs, dprobs));
    }

    model_->Backward(dlogits);
    opt_.Step(params);
    total_loss += ce;
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total_loss / batches) : 0.0f;
}

fl::ModelState MixupMmdClient::TrainLocal(fl::RoundContext ctx) {
  opt_.set_lr(ctx.LrFor(cfg_));
  float loss = 0.0f;
  for (std::size_t e = 0; e < cfg_.epochs; ++e) {
    loss = TrainEpochMixupMmd(ctx.rng);
  }
  last_loss_ = loss;
  const std::vector<nn::Parameter*> params = model_->Parameters();
  return fl::ModelState::From(params);
}

double MixupMmdClient::EvalAccuracy(const data::Dataset& data) {
  return fl::Evaluate(*model_, data);
}

fl::ClientState MixupMmdClient::ExportState() const {
  return fl::ClientState{opt_.ExportState()};
}

void MixupMmdClient::RestoreState(const fl::ClientState& state) {
  opt_.RestoreState(state.tensors);
}

}  // namespace cip::defenses
