#include "defenses/hdp.h"

#include <cmath>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

#include "tensor/ops.h"

namespace cip::defenses {

namespace {

/// Frozen generic feature model: flatten → random Linear(d→F) → ReLU → head.
std::unique_ptr<nn::Classifier> MakeRandomFeatureModel(
    const nn::ModelSpec& spec, std::size_t feature_boost) {
  Rng init(spec.seed);
  const std::size_t d = NumElements(spec.input_shape);
  const std::size_t features = std::max<std::size_t>(feature_boost * spec.width, 16);
  auto backbone = std::make_unique<nn::Sequential>("hdp.features");
  backbone->Add(std::make_unique<nn::Flatten>())
      .Add(std::make_unique<nn::Linear>(d, features, init, "hdp.proj"))
      .Add(std::make_unique<nn::ReLU>());
  return std::make_unique<nn::Classifier>(std::move(backbone), features,
                                          spec.num_classes, init);
}

}  // namespace

HdpClient::HdpClient(const nn::ModelSpec& spec, data::Dataset local_data,
                     fl::TrainConfig train_cfg, DpConfig dp_cfg,
                     std::uint64_t /*seed*/, std::size_t feature_boost)
    : model_(MakeRandomFeatureModel(spec, feature_boost)),
      data_(std::move(local_data)),
      cfg_(train_cfg),
      dp_(dp_cfg),
      sigma_(NoiseMultiplier(dp_cfg)) {
  CIP_CHECK(!data_.empty());
}

std::vector<nn::Parameter*> HdpClient::HeadParams() {
  // The classifier appends head weight+bias last in its parameter order.
  std::vector<nn::Parameter*> all = model_->Parameters();
  CIP_CHECK_GE(all.size(), 2u);
  return {all.end() - 2, all.end()};
}

void HdpClient::SetGlobal(const fl::ModelState& global) {
  const std::vector<nn::Parameter*> params = model_->Parameters();
  global.ApplyTo(params);
}

fl::ModelState HdpClient::TrainLocal(fl::RoundContext ctx) {
  const float lr = ctx.LrFor(cfg_);
  float loss = 0.0f;
  for (std::size_t e = 0; e < cfg_.epochs; ++e) {
    loss = PrivateHeadEpoch(ctx.rng, lr);
  }
  last_loss_ = loss;
  const std::vector<nn::Parameter*> params = model_->Parameters();
  return fl::ModelState::From(params);
}

float HdpClient::PrivateHeadEpoch(Rng& rng, float lr) {
  const std::vector<std::size_t> perm = rng.Permutation(data_.size());
  const std::vector<nn::Parameter*> head = HeadParams();
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data_.size();
       start += cfg_.batch_size) {
    const std::size_t end = std::min(start + cfg_.batch_size, data_.size());
    const std::size_t bsz = end - start;
    std::vector<Tensor> acc;
    for (const nn::Parameter* p : head) acc.emplace_back(p->value.shape());
    double batch_loss = 0.0;
    for (std::size_t s = start; s < end; ++s) {
      const std::size_t i = perm[s];
      const data::Dataset one = data_.Subset(std::span(&i, 1));
      const Tensor logits = model_->Forward(one.inputs, /*train=*/true);
      Tensor dlogits;
      batch_loss += ops::SoftmaxCrossEntropy(logits, one.labels, &dlogits);
      model_->Backward(dlogits);
      // Clip only the head gradient (the backbone is frozen and its grads
      // are discarded — it never trains, so it consumes no privacy budget).
      double sq = 0.0;
      for (const nn::Parameter* p : head) {
        for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
      }
      const float norm = static_cast<float>(std::sqrt(sq));
      const float scale = norm > dp_.clip_norm ? dp_.clip_norm / norm : 1.0f;
      for (std::size_t pi = 0; pi < head.size(); ++pi) {
        ops::Axpy(acc[pi], scale, head[pi]->grad);
      }
      model_->ZeroGrad();
    }
    const float noise_std = sigma_ * dp_.clip_norm;
    const float inv_b = 1.0f / static_cast<float>(bsz);
    for (std::size_t pi = 0; pi < head.size(); ++pi) {
      nn::Parameter& p = *head[pi];
      for (std::size_t j = 0; j < p.value.size(); ++j) {
        const float noisy = (acc[pi][j] + noise_std * rng.Normal()) * inv_b;
        p.value[j] -= lr * noisy;
      }
    }
    total_loss += batch_loss / static_cast<double>(bsz);
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total_loss / batches) : 0.0f;
}

double HdpClient::EvalAccuracy(const data::Dataset& data) {
  return fl::Evaluate(*model_, data);
}

fl::ModelState HdpClient::InitialState(const nn::ModelSpec& spec,
                                       std::size_t feature_boost) {
  const auto model = MakeRandomFeatureModel(spec, feature_boost);
  const std::vector<nn::Parameter*> params = model->Parameters();
  return fl::ModelState::From(params);
}

std::unique_ptr<nn::Classifier> HdpClient::MakeModel(
    const nn::ModelSpec& spec, std::size_t feature_boost) {
  return MakeRandomFeatureModel(spec, feature_boost);
}

}  // namespace cip::defenses
