// High-accuracy DP (Tramèr & Boneh 2021, "Handcrafted-DP"): train only a
// shallow head privately on top of a frozen, non-private, generic feature
// extractor. Better features mean less noise-sensitive private training and
// far better utility at the same ε.
//
// Substitution: the original uses ScatterNet features (and optionally extra
// public data); we use a frozen random-projection feature map
// (flatten → Linear(d → F) → ReLU, "random kitchen sinks") with a privately
// trained linear head on top — the same shallow-generic-features + private-
// linear-model design at laptop scale (see DESIGN.md §2).
#pragma once

#include "defenses/dp_sgd.h"

namespace cip::defenses {

class HdpClient : public fl::ClientBase {
 public:
  /// `spec` provides the input shape, class count and init seed; the random
  /// feature width is `feature_boost * spec.width` (wider generic features =
  /// better linear separability under the same privacy budget).
  HdpClient(const nn::ModelSpec& spec, data::Dataset local_data,
            fl::TrainConfig train_cfg, DpConfig dp_cfg, std::uint64_t seed,
            std::size_t feature_boost = 16);

  void SetGlobal(const fl::ModelState& global) override;
  fl::ModelState TrainLocal(fl::RoundContext ctx) override;
  double EvalAccuracy(const data::Dataset& data) override;
  float LastTrainLoss() const override { return last_loss_; }
  const data::Dataset& LocalData() const override { return data_; }

  nn::Classifier& model() { return *model_; }

  /// Initial broadcast state matching HDP's internal model architecture
  /// (its shape differs from the plain classifier of the same spec).
  static fl::ModelState InitialState(const nn::ModelSpec& spec,
                                     std::size_t feature_boost = 16);

  /// The random-feature classifier HDP trains (frozen projection + head).
  /// Exposed so attacks can reconstruct query handles from HDP ModelStates.
  static std::unique_ptr<nn::Classifier> MakeModel(
      const nn::ModelSpec& spec, std::size_t feature_boost = 16);

 private:
  float PrivateHeadEpoch(Rng& rng, float lr);
  /// Head parameters only (the privately trained subset).
  std::vector<nn::Parameter*> HeadParams();

  std::unique_ptr<nn::Classifier> model_;
  data::Dataset data_;
  fl::TrainConfig cfg_;
  DpConfig dp_;
  float sigma_;
  float last_loss_ = 0.0f;
};

}  // namespace cip::defenses
