// Adversarial Regularization (Nasr, Shokri & Houmansadr, CCS 2018).
//
// A built-in inference attack h takes (softmax output, one-hot label) and
// predicts membership. Training alternates: (i) fit h to distinguish the
// client's training data (members) from a reference set (non-members);
// (ii) train the target model with loss CE + λ·log h_member, i.e. the
// target model is regularized to defeat its own best inference attack.
#pragma once

#include "fl/client.h"
#include "nn/sequential.h"

namespace cip::defenses {

struct ArConfig {
  float lambda = 1.0f;          ///< privacy/utility knob (paper: 0.3..2)
  std::size_t attack_steps = 2; ///< h updates per model epoch
  float attack_lr = 5e-2f;
  std::size_t attack_hidden = 32;
};

class ArClient : public fl::ClientBase {
 public:
  /// `reference` is a non-member set from the same distribution (the AR
  /// paper's reference set assumption — drawn here from the generator).
  ArClient(const nn::ModelSpec& spec, data::Dataset local_data,
           data::Dataset reference, fl::TrainConfig train_cfg, ArConfig ar_cfg,
           std::uint64_t seed);

  void SetGlobal(const fl::ModelState& global) override;
  fl::ModelState TrainLocal(fl::RoundContext ctx) override;
  double EvalAccuracy(const data::Dataset& data) override;
  float LastTrainLoss() const override { return last_loss_; }
  const data::Dataset& LocalData() const override { return data_; }
  /// Snapshot layout: a shape-{3} section header (attacker parameter count,
  /// attacker-optimizer tensor count, model-optimizer tensor count) followed
  /// by those three sections — the attack model h evolves across rounds and
  /// is never re-broadcast, so it must travel with checkpoints.
  fl::ClientState ExportState() const override;
  void RestoreState(const fl::ClientState& state) override;

  nn::Classifier& model() { return *model_; }

 private:
  /// Build the attack input [softmax(logits) ; one-hot(y)].
  Tensor AttackInput(const Tensor& probs, std::span<const int> labels) const;
  void TrainAttacker(Rng& rng);
  float TrainModelEpoch(Rng& rng);

  std::unique_ptr<nn::Classifier> model_;
  data::Dataset data_;
  data::Dataset reference_;
  fl::TrainConfig cfg_;
  ArConfig ar_;
  Rng init_rng_;  ///< construction-time randomness (attacker init) only
  // Attack model h: MLP over [C probs ; C one-hot] -> 2 logits.
  std::unique_ptr<nn::Sequential> attacker_;
  optim::Sgd attacker_opt_;
  optim::Sgd model_opt_;
  float last_loss_ = 0.0f;
};

}  // namespace cip::defenses
