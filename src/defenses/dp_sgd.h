// Local differential privacy via DP-SGD (Abadi et al. 2016):
// per-sample gradient clipping to norm C plus Gaussian noise N(0, σ²C²).
//
// The paper compares CIP against local DP (LDP) because central DP does not
// defend against a malicious server. Noise is calibrated from (ε, δ) with
// the subsampled Gaussian-mechanism scaling of the moments accountant
// (Abadi et al., Thm. 1):
//   σ = q·√(2·T·ln(1.25/δ)) / ε,   q = batch/dataset sampling rate,
// over the planned number of optimizer steps T — a monotone ε→σ map with the
// right direction and magnitude (see DESIGN.md §2 for why an exact
// accountant is not required for reproducing the trade-off shape).
#pragma once

#include "fl/client.h"

namespace cip::defenses {

struct DpConfig {
  float epsilon = 8.0f;
  float delta = 1e-5f;
  float clip_norm = 1.0f;
  /// Total optimizer steps the privacy budget is split over (rounds × steps
  /// per round); used to calibrate σ.
  std::size_t total_steps = 100;
  /// Minibatch sampling rate q = batch_size / dataset_size (privacy
  /// amplification by subsampling).
  float sampling_rate = 0.1f;
};

/// Noise multiplier σ for the Gaussian mechanism under advanced composition.
float NoiseMultiplier(const DpConfig& cfg);

class DpSgdClient : public fl::ClientBase {
 public:
  /// `seed` is kept for constructor-shape uniformity across client kinds;
  /// round-time randomness comes exclusively from the RoundContext stream.
  DpSgdClient(const nn::ModelSpec& spec, data::Dataset local_data,
              fl::TrainConfig train_cfg, DpConfig dp_cfg, std::uint64_t seed);

  void SetGlobal(const fl::ModelState& global) override;
  fl::ModelState TrainLocal(fl::RoundContext ctx) override;
  double EvalAccuracy(const data::Dataset& data) override;
  float LastTrainLoss() const override { return last_loss_; }
  const data::Dataset& LocalData() const override { return data_; }

  nn::Classifier& model() { return *model_; }
  float sigma() const { return sigma_; }

 private:
  float PrivateEpoch(Rng& rng, float lr);

  std::unique_ptr<nn::Classifier> model_;
  data::Dataset data_;
  fl::TrainConfig cfg_;
  DpConfig dp_;
  float sigma_;
  float last_loss_ = 0.0f;
};

}  // namespace cip::defenses
