// Mixup + MMD defense (Li, Li & Ribeiro, CODASPY 2021).
//
// Training combines (i) mixup — convex combinations of input pairs with
// correspondingly mixed labels — and (ii) an MMD penalty that pulls the
// model's output distribution on training data toward its distribution on a
// non-member validation set, directly shrinking the member/non-member gap MI
// attacks exploit. μ weighs the MMD term.
//
// Substitution note: we use the linear-kernel MMD (squared distance between
// batch-mean softmax outputs); the Gaussian-kernel version differs only in
// how distribution distance is weighted (DESIGN.md §2).
#pragma once

#include "fl/client.h"

namespace cip::defenses {

struct MmConfig {
  float mu = 1.0f;           ///< MMD weight (paper: 0.5..10)
  float mixup_alpha = 1.0f;  ///< Beta(α, α) for the mixing coefficient
};

class MixupMmdClient : public fl::ClientBase {
 public:
  MixupMmdClient(const nn::ModelSpec& spec, data::Dataset local_data,
                 data::Dataset validation, fl::TrainConfig train_cfg,
                 MmConfig mm_cfg, std::uint64_t seed);

  void SetGlobal(const fl::ModelState& global) override;
  fl::ModelState TrainLocal(fl::RoundContext ctx) override;
  double EvalAccuracy(const data::Dataset& data) override;
  float LastTrainLoss() const override { return last_loss_; }
  const data::Dataset& LocalData() const override { return data_; }
  fl::ClientState ExportState() const override;
  void RestoreState(const fl::ClientState& state) override;

  nn::Classifier& model() { return *model_; }

 private:
  float TrainEpochMixupMmd(Rng& rng);

  std::unique_ptr<nn::Classifier> model_;
  data::Dataset data_;
  data::Dataset validation_;
  fl::TrainConfig cfg_;
  MmConfig mm_;
  optim::Sgd opt_;
  float last_loss_ = 0.0f;
};

}  // namespace cip::defenses
