#include "defenses/relaxloss.h"

#include "tensor/ops.h"

namespace cip::defenses {

RelaxLossClient::RelaxLossClient(const nn::ModelSpec& spec,
                                 data::Dataset local_data,
                                 fl::TrainConfig train_cfg, RlConfig rl_cfg,
                                 std::uint64_t /*seed*/)
    : model_(nn::MakeClassifier(spec)),
      data_(std::move(local_data)),
      cfg_(train_cfg),
      rl_(rl_cfg),
      opt_(train_cfg.lr, train_cfg.momentum, train_cfg.weight_decay,
           train_cfg.grad_clip) {
  CIP_CHECK(!data_.empty());
  CIP_CHECK_GE(rl_.omega, 0.0f);
}

void RelaxLossClient::SetGlobal(const fl::ModelState& global) {
  const std::vector<nn::Parameter*> params = model_->Parameters();
  global.ApplyTo(params);
}

float RelaxLossClient::RelaxEpoch(Rng& rng) {
  const std::vector<std::size_t> perm = rng.Permutation(data_.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data_.size();
       start += cfg_.batch_size) {
    const std::size_t end = std::min(start + cfg_.batch_size, data_.size());
    const std::span<const std::size_t> idx(perm.data() + start, end - start);
    const data::Dataset batch = data_.Subset(idx);
    const Tensor logits = model_->Forward(batch.inputs, /*train=*/true);
    Tensor dlogits;
    const float loss =
        ops::SoftmaxCrossEntropy(logits, batch.labels, &dlogits);
    // Descend while above the target, ascend when below — the loss is
    // "relaxed" toward ω rather than minimized to zero.
    if (loss < rl_.omega) ops::ScaleInPlace(dlogits, -1.0f);
    model_->Backward(dlogits);
    opt_.Step(params);
    total_loss += loss;
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total_loss / batches) : 0.0f;
}

fl::ModelState RelaxLossClient::TrainLocal(fl::RoundContext ctx) {
  opt_.set_lr(ctx.LrFor(cfg_));
  float loss = 0.0f;
  for (std::size_t e = 0; e < cfg_.epochs; ++e) loss = RelaxEpoch(ctx.rng);
  last_loss_ = loss;
  const std::vector<nn::Parameter*> params = model_->Parameters();
  return fl::ModelState::From(params);
}

double RelaxLossClient::EvalAccuracy(const data::Dataset& data) {
  return fl::Evaluate(*model_, data);
}

fl::ClientState RelaxLossClient::ExportState() const {
  return fl::ClientState{opt_.ExportState()};
}

void RelaxLossClient::RestoreState(const fl::ClientState& state) {
  opt_.RestoreState(state.tensors);
}

}  // namespace cip::defenses
