// Synthetic dataset generators standing in for the paper's benchmarks.
//
// The real datasets (CIFAR-100, CH-MNIST, Purchase-50) are unavailable
// offline; see DESIGN.md §2. MI attacks are driven by the train/test
// generalization gap, which these generators reproduce via two knobs:
//  * class separation (prototype scale vs within-class noise) controls the
//    achievable test accuracy — low separation gives the paper's "extremely
//    overfitted" CIFAR-100 regime, high separation the CH-MNIST regime;
//  * fresh draws from the same distribution give shadow/non-member data with
//    the exact assumption of shadow-model attacks (Shokri et al.).
//
// Generators are deterministic given their config seed; Sample() calls with
// independently seeded Rngs yield disjoint member/non-member/shadow splits.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace cip::data {

/// Image-like data: class-conditional smoothed prototypes + pixel noise,
/// clipped to [0, 1]. Stands in for CIFAR-100 (overfit regime) and CH-MNIST
/// (well-trained regime) depending on the config.
struct VisionConfig {
  std::size_t num_classes = 20;
  std::size_t channels = 3;
  std::size_t height = 12;
  std::size_t width = 12;
  /// Distance of class prototypes from the 0.5 gray point; lower = harder.
  float prototype_scale = 0.35f;
  /// Within-class i.i.d. pixel noise std (easily averaged away by convs;
  /// mostly forces memorization of individual samples).
  float noise = 0.25f;
  /// Within-class *smooth* noise std: a blurred random field occupying the
  /// same frequency band as the prototypes, so it genuinely confuses classes
  /// and lowers the achievable test accuracy (the paper's overfit regime).
  float structured_noise = 0.0f;
  std::uint64_t seed = 7;
};

class SyntheticVision {
 public:
  explicit SyntheticVision(VisionConfig cfg);

  /// n samples with labels drawn uniformly from all classes.
  Dataset Sample(std::size_t n, Rng& rng) const;

  /// n samples with labels drawn uniformly from `classes` (non-iid splits).
  Dataset SampleClasses(std::size_t n, std::span<const int> classes,
                        Rng& rng) const;

  /// One sample of a given class.
  Tensor SampleInput(int label, Rng& rng) const;

  const VisionConfig& config() const { return cfg_; }
  Shape SampleShape() const {
    return {cfg_.channels, cfg_.height, cfg_.width};
  }

 private:
  VisionConfig cfg_;
  Tensor prototypes_;  // [num_classes, C, H, W]
};

/// Purchase-50-like data: class-conditional Bernoulli profiles over binary
/// purchase indicator vectors.
struct PurchaseConfig {
  std::size_t num_classes = 50;
  std::size_t dim = 200;
  /// Profile sharpness: probability mass pushed toward 0/1; lower = harder.
  float sharpness = 0.25f;
  std::uint64_t seed = 11;
};

class SyntheticPurchase {
 public:
  explicit SyntheticPurchase(PurchaseConfig cfg);

  Dataset Sample(std::size_t n, Rng& rng) const;
  Dataset SampleClasses(std::size_t n, std::span<const int> classes,
                        Rng& rng) const;
  Tensor SampleInput(int label, Rng& rng) const;

  const PurchaseConfig& config() const { return cfg_; }
  Shape SampleShape() const { return {cfg_.dim}; }

 private:
  PurchaseConfig cfg_;
  Tensor profiles_;  // [num_classes, dim] of Bernoulli probabilities
};

// ---- canonical configs used across benches (paper's four datasets) --------

/// CIFAR-100 stand-in: many confusable classes => overfit regime.
VisionConfig Cifar100Like(std::size_t num_classes = 20);
/// CH-MNIST stand-in: 8 well-separated texture classes => high test acc.
VisionConfig ChMnistLike();
/// Purchase-50 stand-in.
PurchaseConfig Purchase50Like();

}  // namespace cip::data
