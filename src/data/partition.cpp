#include "data/partition.h"

#include <algorithm>
#include <set>

namespace cip::data {

std::vector<Dataset> PartitionIid(const Dataset& full, std::size_t num_clients,
                                  Rng& rng) {
  CIP_CHECK_GT(num_clients, 0u);
  CIP_CHECK_GE(full.size(), num_clients);
  const std::vector<std::size_t> perm = rng.Permutation(full.size());
  const std::size_t per = full.size() / num_clients;
  std::vector<Dataset> out;
  out.reserve(num_clients);
  for (std::size_t k = 0; k < num_clients; ++k) {
    const std::span<const std::size_t> idx(perm.data() + k * per, per);
    out.push_back(full.Subset(idx));
  }
  return out;
}

std::vector<Dataset> PartitionByClasses(const Dataset& full,
                                        std::size_t num_clients,
                                        std::size_t classes_per_client,
                                        std::size_t num_classes, Rng& rng) {
  CIP_CHECK_GT(num_clients, 0u);
  CIP_CHECK_GT(classes_per_client, 0u);
  CIP_CHECK_LE(classes_per_client, num_classes);
  full.Validate(num_classes);

  // Index samples by class.
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < full.size(); ++i) {
    by_class[static_cast<std::size_t>(full.labels[i])].push_back(i);
  }

  const std::size_t per_client = full.size() / num_clients;
  std::vector<Dataset> out;
  out.reserve(num_clients);
  for (std::size_t k = 0; k < num_clients; ++k) {
    // Pick this client's class subset.
    std::vector<std::size_t> class_perm = rng.Permutation(num_classes);
    std::vector<std::size_t> pool;
    std::size_t taken = 0;
    for (std::size_t ci = 0; ci < num_classes && taken < classes_per_client;
         ++ci) {
      const auto& members = by_class[class_perm[ci]];
      if (members.empty()) continue;
      pool.insert(pool.end(), members.begin(), members.end());
      ++taken;
    }
    CIP_CHECK_MSG(!pool.empty(), "no samples available for client " << k);
    // Draw per_client samples uniformly, without replacement while the pool
    // lasts (falls back to reuse for tiny pools).
    rng.Shuffle(pool);
    std::vector<std::size_t> idx;
    idx.reserve(per_client);
    for (std::size_t i = 0; i < per_client; ++i) idx.push_back(pool[i % pool.size()]);
    out.push_back(full.Subset(idx));
  }
  return out;
}

std::vector<int> ClassesPresent(const Dataset& ds) {
  std::set<int> s(ds.labels.begin(), ds.labels.end());
  return {s.begin(), s.end()};
}

}  // namespace cip::data
