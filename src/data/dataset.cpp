#include "data/dataset.h"

namespace cip::data {

Dataset Dataset::Subset(std::span<const std::size_t> indices) const {
  CIP_CHECK_GE(inputs.rank(), 2u);
  const std::size_t stride = inputs.size() / std::max<std::size_t>(size(), 1);
  Shape out_shape = inputs.shape();
  out_shape[0] = indices.size();
  Tensor out(out_shape);
  std::vector<int> out_labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    CIP_CHECK_LT(src, size());
    std::copy(inputs.data() + src * stride, inputs.data() + (src + 1) * stride,
              out.data() + i * stride);
    out_labels[i] = labels[src];
  }
  return {std::move(out), std::move(out_labels)};
}

Dataset Dataset::Slice(std::size_t lo, std::size_t hi) const {
  CIP_CHECK_LE(lo, hi);
  CIP_CHECK_LE(hi, size());
  return {inputs.Slice(lo, hi),
          std::vector<int>(labels.begin() + static_cast<long>(lo),
                           labels.begin() + static_cast<long>(hi))};
}

Dataset Dataset::Concat(const Dataset& a, const Dataset& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  CIP_CHECK(a.SampleShape() == b.SampleShape());
  Shape out_shape = a.inputs.shape();
  out_shape[0] = a.size() + b.size();
  Tensor out(out_shape);
  std::copy(a.inputs.data(), a.inputs.data() + a.inputs.size(), out.data());
  std::copy(b.inputs.data(), b.inputs.data() + b.inputs.size(),
            out.data() + a.inputs.size());
  std::vector<int> out_labels = a.labels;
  out_labels.insert(out_labels.end(), b.labels.begin(), b.labels.end());
  return {std::move(out), std::move(out_labels)};
}

void Dataset::Shuffle(Rng& rng) {
  const std::vector<std::size_t> perm = rng.Permutation(size());
  *this = Subset(perm);
}

void Dataset::Validate(std::size_t num_classes) const {
  CIP_CHECK_GE(inputs.rank(), 2u);
  CIP_CHECK_EQ(inputs.dim(0), labels.size());
  for (int y : labels) {
    CIP_CHECK_GE(y, 0);
    CIP_CHECK_LT(static_cast<std::size_t>(y), num_classes);
  }
}

}  // namespace cip::data
