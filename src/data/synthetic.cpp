#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace cip::data {

namespace {

/// 3x3 box blur per channel, reflecting at borders. Smooths white noise into
/// image-like low-frequency class prototypes.
void BoxBlur(float* img, std::size_t h, std::size_t w) {
  std::vector<float> out(h * w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      float s = 0.0f;
      int cnt = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const long yy = static_cast<long>(y) + dy;
          const long xx = static_cast<long>(x) + dx;
          if (yy < 0 || yy >= static_cast<long>(h) || xx < 0 ||
              xx >= static_cast<long>(w)) {
            continue;
          }
          s += img[static_cast<std::size_t>(yy) * w +
                   static_cast<std::size_t>(xx)];
          ++cnt;
        }
      }
      out[y * w + x] = s / static_cast<float>(cnt);
    }
  }
  std::copy(out.begin(), out.end(), img);
}

std::vector<int> AllClasses(std::size_t n) {
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i);
  return v;
}

}  // namespace

SyntheticVision::SyntheticVision(VisionConfig cfg)
    : cfg_(cfg),
      prototypes_({cfg.num_classes, cfg.channels, cfg.height, cfg.width}) {
  CIP_CHECK_GT(cfg_.num_classes, 1u);
  CIP_CHECK_GT(cfg_.channels, 0u);
  CIP_CHECK_GE(cfg_.prototype_scale, 0.0f);
  CIP_CHECK_GE(cfg_.noise, 0.0f);
  Rng rng(cfg_.seed);
  const std::size_t plane = cfg_.height * cfg_.width;
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
      float* img = prototypes_.data() + (c * cfg_.channels + ch) * plane;
      for (std::size_t i = 0; i < plane; ++i) img[i] = rng.Normal();
      BoxBlur(img, cfg_.height, cfg_.width);
      BoxBlur(img, cfg_.height, cfg_.width);
      // Normalize the smoothed field to unit std, then place around gray.
      double ss = 0.0;
      for (std::size_t i = 0; i < plane; ++i) ss += img[i] * img[i];
      const float inv =
          ss > 0 ? 1.0f / std::sqrt(static_cast<float>(ss / plane)) : 1.0f;
      for (std::size_t i = 0; i < plane; ++i) {
        img[i] = 0.5f + cfg_.prototype_scale * img[i] * inv;
      }
    }
  }
}

Tensor SyntheticVision::SampleInput(int label, Rng& rng) const {
  CIP_CHECK_GE(label, 0);
  CIP_CHECK_LT(static_cast<std::size_t>(label), cfg_.num_classes);
  const std::size_t plane_size = cfg_.height * cfg_.width;
  const std::size_t total = cfg_.channels * plane_size;
  Tensor x({cfg_.channels, cfg_.height, cfg_.width});
  const float* proto = prototypes_.data() + static_cast<std::size_t>(label) * total;

  // Optional per-sample smooth field (same construction as the prototypes).
  std::vector<float> field;
  if (cfg_.structured_noise > 0.0f) {
    field.resize(total);
    for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
      float* f = field.data() + ch * plane_size;
      for (std::size_t i = 0; i < plane_size; ++i) f[i] = rng.Normal();
      BoxBlur(f, cfg_.height, cfg_.width);
      BoxBlur(f, cfg_.height, cfg_.width);
      double ss = 0.0;
      for (std::size_t i = 0; i < plane_size; ++i) ss += f[i] * f[i];
      const float inv =
          ss > 0 ? 1.0f / std::sqrt(static_cast<float>(ss / plane_size))
                 : 1.0f;
      for (std::size_t i = 0; i < plane_size; ++i) {
        f[i] *= inv * cfg_.structured_noise;
      }
    }
  }

  for (std::size_t i = 0; i < total; ++i) {
    float v = proto[i] + cfg_.noise * rng.Normal();
    if (!field.empty()) v += field[i];
    x[i] = std::clamp(v, kInputMin, kInputMax);
  }
  return x;
}

Dataset SyntheticVision::SampleClasses(std::size_t n,
                                       std::span<const int> classes,
                                       Rng& rng) const {
  CIP_CHECK(!classes.empty());
  const std::size_t plane = cfg_.channels * cfg_.height * cfg_.width;
  Tensor inputs({n, cfg_.channels, cfg_.height, cfg_.width});
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = classes[rng.Index(classes.size())];
    labels[i] = y;
    const Tensor x = SampleInput(y, rng);
    std::copy(x.data(), x.data() + plane, inputs.data() + i * plane);
  }
  return {std::move(inputs), std::move(labels)};
}

Dataset SyntheticVision::Sample(std::size_t n, Rng& rng) const {
  const std::vector<int> all = AllClasses(cfg_.num_classes);
  return SampleClasses(n, all, rng);
}

SyntheticPurchase::SyntheticPurchase(PurchaseConfig cfg)
    : cfg_(cfg), profiles_({cfg.num_classes, cfg.dim}) {
  CIP_CHECK_GT(cfg_.num_classes, 1u);
  CIP_CHECK_GT(cfg_.dim, 0u);
  CIP_CHECK(cfg_.sharpness >= 0.0f && cfg_.sharpness <= 0.5f);
  Rng rng(cfg_.seed);
  // Each class's profile: item purchase probabilities biased toward 0 or 1
  // by `sharpness` around a uniform base rate.
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    const float base = rng.Uniform(0.2f, 0.8f);
    const float push = rng.Bernoulli(0.5f) ? cfg_.sharpness : -cfg_.sharpness;
    profiles_[i] = std::clamp(base + push, 0.02f, 0.98f);
  }
}

Tensor SyntheticPurchase::SampleInput(int label, Rng& rng) const {
  CIP_CHECK_GE(label, 0);
  CIP_CHECK_LT(static_cast<std::size_t>(label), cfg_.num_classes);
  Tensor x({cfg_.dim});
  const float* profile =
      profiles_.data() + static_cast<std::size_t>(label) * cfg_.dim;
  for (std::size_t i = 0; i < cfg_.dim; ++i) {
    x[i] = rng.Bernoulli(profile[i]) ? 1.0f : 0.0f;
  }
  return x;
}

Dataset SyntheticPurchase::SampleClasses(std::size_t n,
                                         std::span<const int> classes,
                                         Rng& rng) const {
  CIP_CHECK(!classes.empty());
  Tensor inputs({n, cfg_.dim});
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = classes[rng.Index(classes.size())];
    labels[i] = y;
    const Tensor x = SampleInput(y, rng);
    std::copy(x.data(), x.data() + cfg_.dim, inputs.data() + i * cfg_.dim);
  }
  return {std::move(inputs), std::move(labels)};
}

Dataset SyntheticPurchase::Sample(std::size_t n, Rng& rng) const {
  const std::vector<int> all = AllClasses(cfg_.num_classes);
  return SampleClasses(n, all, rng);
}

VisionConfig Cifar100Like(std::size_t num_classes) {
  VisionConfig cfg;
  cfg.num_classes = num_classes;
  cfg.channels = 3;
  cfg.height = 12;
  cfg.width = 12;
  cfg.prototype_scale = 0.11f;  // confusable classes => overfit regime
  cfg.noise = 0.06f;
  cfg.structured_noise = 0.30f;  // same band as the prototypes
  cfg.seed = 7;
  return cfg;
}

VisionConfig ChMnistLike() {
  VisionConfig cfg;
  cfg.num_classes = 8;
  cfg.channels = 1;
  cfg.height = 12;
  cfg.width = 12;
  cfg.prototype_scale = 0.38f;  // separable textures => high test accuracy
  cfg.noise = 0.08f;
  cfg.structured_noise = 0.14f;
  cfg.seed = 13;
  return cfg;
}

PurchaseConfig Purchase50Like() {
  PurchaseConfig cfg;
  cfg.num_classes = 50;
  cfg.dim = 200;
  cfg.sharpness = 0.22f;
  cfg.seed = 11;
  return cfg;
}

}  // namespace cip::data
