// Client data partitioning for federated learning.
//
// The paper follows Naseri et al.: non-i.i.d. splits assign each client a
// random subset of K classes ("K classes per client"), then draw an equal
// number of samples per client uniformly at random from those classes
// (Nasr et al.'s equal-size convention).
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace cip::data {

/// Split `full` into `num_clients` equal-size i.i.d. shards (remainder
/// samples dropped).
std::vector<Dataset> PartitionIid(const Dataset& full,
                                  std::size_t num_clients, Rng& rng);

/// Non-i.i.d. split: each client receives samples of a random subset of
/// `classes_per_client` distinct classes from [0, num_classes). Every client
/// gets floor(full.size()/num_clients) samples, drawn uniformly at random
/// (with replacement across clients, without within a client) from the pool
/// of its classes.
std::vector<Dataset> PartitionByClasses(const Dataset& full,
                                        std::size_t num_clients,
                                        std::size_t classes_per_client,
                                        std::size_t num_classes, Rng& rng);

/// The distinct classes present in a dataset (sorted).
std::vector<int> ClassesPresent(const Dataset& ds);

}  // namespace cip::data
