// Labeled datasets.
//
// A Dataset owns a batch-first input tensor ([N, C, H, W] or [N, D]) and an
// integer label per sample. Values are normalized to [0, 1] — the range the
// CIP blending function clips to (Eq. 2: "clipped within the range of x").
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace cip::data {

/// Input value range shared by all generators and the blending clip.
inline constexpr float kInputMin = 0.0f;
inline constexpr float kInputMax = 1.0f;

struct Dataset {
  Tensor inputs;            ///< [N, ...]
  std::vector<int> labels;  ///< size N

  std::size_t size() const { return labels.size(); }
  bool empty() const { return labels.empty(); }

  /// Per-sample shape (input shape without the batch dimension).
  Shape SampleShape() const {
    CIP_CHECK_GE(inputs.rank(), 2u);
    return Shape(inputs.shape().begin() + 1, inputs.shape().end());
  }

  /// Copying subset by indices.
  Dataset Subset(std::span<const std::size_t> indices) const;

  /// Copying contiguous batch [lo, hi).
  Dataset Slice(std::size_t lo, std::size_t hi) const;

  /// Concatenate along the batch dim (shapes must agree).
  static Dataset Concat(const Dataset& a, const Dataset& b);

  /// Shuffle samples in place.
  void Shuffle(Rng& rng);

  /// Basic structural invariants (batch sizes agree, labels within range).
  void Validate(std::size_t num_classes) const;
};

}  // namespace cip::data
