#include "data/augment.h"

namespace cip::data {

namespace {

/// Random pad-crop plus optional flip for one image (C planes of h*w).
void AugmentOne(const float* src, float* dst, std::size_t c, std::size_t h,
                std::size_t w, const AugmentConfig& cfg, Rng& rng) {
  const long pad = static_cast<long>(cfg.pad);
  const long dy = rng.UniformInt(-static_cast<int>(pad), static_cast<int>(pad));
  const long dx = rng.UniformInt(-static_cast<int>(pad), static_cast<int>(pad));
  const bool flip = cfg.horizontal_flip && rng.Bernoulli(cfg.flip_prob);
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float* sp = src + ch * h * w;
    float* dp = dst + ch * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const long sy = static_cast<long>(y) + dy;
        long sx = static_cast<long>(flip ? (w - 1 - x) : x) + dx;
        float v = 0.0f;
        if (sy >= 0 && sy < static_cast<long>(h) && sx >= 0 &&
            sx < static_cast<long>(w)) {
          v = sp[static_cast<std::size_t>(sy) * w +
                 static_cast<std::size_t>(sx)];
        }
        dp[y * w + x] = v;
      }
    }
  }
}

}  // namespace

Tensor Augment(const Tensor& batch, const AugmentConfig& cfg, Rng& rng) {
  if (batch.rank() == 2) return batch;  // vector data: no-op
  CIP_CHECK_EQ(batch.rank(), 4u);
  const std::size_t n = batch.dim(0), c = batch.dim(1), h = batch.dim(2),
                    w = batch.dim(3);
  Tensor out(batch.shape());
  const std::size_t stride = c * h * w;
  for (std::size_t i = 0; i < n; ++i) {
    AugmentOne(batch.data() + i * stride, out.data() + i * stride, c, h, w,
               cfg, rng);
  }
  return out;
}

}  // namespace cip::data
