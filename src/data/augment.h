// Training-time data augmentation (the paper's CIFAR-AUG pipeline:
// resize → crop → horizontal flip, reproduced as pad-crop + flip).
#pragma once

#include "common/rng.h"
#include "data/dataset.h"

namespace cip::data {

struct AugmentConfig {
  std::size_t pad = 1;         ///< zero-pad then random-crop back
  bool horizontal_flip = true;
  float flip_prob = 0.5f;
};

/// Augment a batch of images [N, C, H, W]; returns a new tensor of the same
/// shape. Identity for rank-2 (vector) data.
Tensor Augment(const Tensor& batch, const AugmentConfig& cfg, Rng& rng);

}  // namespace cip::data
