#include "eval/experiment.h"

#include "attacks/output_attacks.h"
#include "attacks/pb_bayes.h"
#include "attacks/shadow.h"
#include "fl/client.h"
#include "fl/client_factory.h"

namespace cip::eval {

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kCifar100: return "CIFAR-100";
    case DatasetId::kCifarAug: return "CIFAR-AUG";
    case DatasetId::kChMnist: return "CH-MNIST";
    case DatasetId::kPurchase50: return "Purchase-50";
  }
  return "unknown";
}

DataBundle MakeBundle(DatasetId id, const BundleOptions& opts) {
  DataBundle b;
  b.id = id;
  Rng rng(opts.seed);
  switch (id) {
    case DatasetId::kCifar100:
    case DatasetId::kCifarAug: {
      auto gen = std::make_shared<data::SyntheticVision>(
          data::Cifar100Like(opts.num_classes));
      b.sample = [gen](std::size_t n, Rng& r) { return gen->Sample(n, r); };
      b.spec.arch = nn::Arch::kResNet;
      b.spec.input_shape = gen->SampleShape();
      b.spec.num_classes = gen->config().num_classes;
      b.augment = (id == DatasetId::kCifarAug);
      break;
    }
    case DatasetId::kChMnist: {
      auto gen =
          std::make_shared<data::SyntheticVision>(data::ChMnistLike());
      b.sample = [gen](std::size_t n, Rng& r) { return gen->Sample(n, r); };
      b.spec.arch = nn::Arch::kResNet;
      b.spec.input_shape = gen->SampleShape();
      b.spec.num_classes = gen->config().num_classes;
      break;
    }
    case DatasetId::kPurchase50: {
      auto gen = std::make_shared<data::SyntheticPurchase>(
          data::Purchase50Like());
      b.sample = [gen](std::size_t n, Rng& r) { return gen->Sample(n, r); };
      b.spec.arch = nn::Arch::kMLP;
      b.spec.input_shape = gen->SampleShape();
      b.spec.num_classes = gen->config().num_classes;
      break;
    }
  }
  b.spec.width = opts.width;
  b.spec.seed = opts.seed * 1000 + 17;
  b.train = b.sample(opts.train_size, rng);
  b.test = b.sample(opts.test_size, rng);
  b.shadow_train = b.sample(opts.shadow_size, rng);
  b.shadow_test = b.sample(opts.shadow_size, rng);
  return b;
}

fl::TrainConfig DefaultTrainConfig(const DataBundle& bundle) {
  fl::TrainConfig cfg;
  cfg.batch_size = 32;  // paper: 32 everywhere
  cfg.lr = bundle.spec.arch == nn::Arch::kMLP ? 0.05f : 0.02f;
  cfg.momentum = 0.9f;
  cfg.augment = bundle.augment;
  return cfg;
}

core::CipConfig DefaultCipConfig(const DataBundle& bundle, float alpha) {
  core::CipConfig cfg;
  cfg.blend.alpha = alpha;
  cfg.train = DefaultTrainConfig(bundle);
  cfg.lambda_t = 1e-4f;
  cfg.lambda_m = 0.05f;
  cfg.perturb_steps = 8;
  cfg.lr_t = 5e-2f;
  return cfg;
}

fl::FlLog RunFederated(fl::ClientStore& store, const fl::ModelState& init,
                       std::size_t rounds, Rng& rng, fl::FlOptions options) {
  options.rounds = rounds;
  fl::FederatedAveraging server(init, options);
  // One draw off the caller's rng roots every stream in the run; the server
  // derives per-(round, client) streams from it (see fl/round_context.h).
  return server.Run(store, rng.NextU64());
}

fl::FlLog ResumeFederated(fl::ClientStore& store, const fl::ModelState& init,
                          const std::string& checkpoint_path,
                          fl::FlOptions options) {
  const fl::Checkpoint ckpt = fl::LoadCheckpointFile(checkpoint_path);
  // The checkpoint is authoritative for the run length; everything else
  // (fault plan, quorum, checkpoint cadence) comes from the caller, who must
  // pass the original run's options for the tail to be bit-identical.
  options.rounds = ckpt.total_rounds;
  fl::FederatedAveraging server(init, std::move(options));
  return server.Resume(store, ckpt);
}

fl::FlLog RunSingle(fl::ClientBase& client, const fl::ModelState& init,
                    std::size_t rounds, Rng& rng, fl::FlOptions options) {
  fl::ClientBase* ptr = &client;
  fl::ClientStore store(std::span<fl::ClientBase* const>(&ptr, 1));
  return RunFederated(store, init, rounds, rng, std::move(options));
}

std::unique_ptr<nn::Classifier> TrainPlain(const DataBundle& bundle,
                                           std::size_t epochs, Rng& rng) {
  auto model = nn::MakeClassifier(bundle.spec);
  const fl::TrainConfig cfg = DefaultTrainConfig(bundle);
  optim::Sgd opt(cfg.lr, cfg.momentum, cfg.weight_decay, cfg.grad_clip);
  for (std::size_t e = 0; e < epochs; ++e) {
    fl::TrainEpoch(*model, bundle.train, opt, cfg, rng);
  }
  return model;
}

CipSingleResult TrainCipSingle(const DataBundle& bundle, float alpha,
                               std::size_t rounds, Rng& rng,
                               fl::FlOptions options,
                               core::CipConfig* cfg_override) {
  const core::CipConfig cfg = cfg_override != nullptr
                                  ? *cfg_override
                                  : DefaultCipConfig(bundle, alpha);
  fl::ClientSpec spec;
  spec.kind = fl::ClientKind::kCip;
  spec.model = bundle.spec;
  spec.data = bundle.train;
  spec.train = cfg.train;
  spec.cip = cfg;
  spec.seed = bundle.spec.seed + 5;
  CipSingleResult out;
  out.client = fl::MakeCipClient(spec);
  out.log = RunSingle(*out.client, fl::InitialStateFor(spec), rounds, rng,
                      std::move(options));
  return out;
}

ShadowPack BuildShadowPack(const DataBundle& bundle, std::size_t epochs,
                           Rng& rng) {
  ShadowPack pack;
  attacks::ShadowConfig cfg;
  cfg.epochs = epochs;
  cfg.train = DefaultTrainConfig(bundle);
  nn::ModelSpec shadow_spec = bundle.spec;
  shadow_spec.seed ^= 0xABCDu;  // the attacker's own initialization
  pack.model = attacks::TrainShadow(shadow_spec, bundle.shadow_train, cfg, rng);
  pack.member_losses = fl::PerSampleLosses(*pack.model, bundle.shadow_train);
  pack.nonmember_losses = fl::PerSampleLosses(*pack.model, bundle.shadow_test);
  return pack;
}

std::map<std::string, metrics::BinaryMetrics> RunExternalAttackSuite(
    const DataBundle& bundle, const ShadowPack& shadow,
    fl::WhiteBoxQuery& target, Rng& rng) {
  std::map<std::string, metrics::BinaryMetrics> out;
  fl::ClassifierQuery shadow_query(*shadow.model);

  attacks::ObLabel ob_label;
  out[ob_label.Name()] =
      attacks::EvaluateAttack(ob_label, target, bundle.train, bundle.test);

  attacks::ObMalt ob_malt(shadow.member_losses, shadow.nonmember_losses);
  out[ob_malt.Name()] =
      attacks::EvaluateAttack(ob_malt, target, bundle.train, bundle.test);

  attacks::ObNN ob_nn(shadow_query, bundle.shadow_train, bundle.shadow_test,
                      rng);
  out[ob_nn.Name()] =
      attacks::EvaluateAttack(ob_nn, target, bundle.train, bundle.test);

  attacks::ObBlindMi ob_blind(bundle.sample(bundle.test.size(), rng));
  out[ob_blind.Name()] =
      attacks::EvaluateAttack(ob_blind, target, bundle.train, bundle.test);

  attacks::PbBayes pb_bayes(shadow_query, bundle.shadow_train,
                            bundle.shadow_test);
  out[pb_bayes.Name()] =
      attacks::EvaluateAttack(pb_bayes, target, bundle.train, bundle.test);

  return out;
}

CipExternalResult RunCipExternal(const DataBundle& bundle,
                                 const ShadowPack* shadow, float alpha,
                                 std::size_t rounds, Rng& rng) {
  CipExternalResult out;
  CipSingleResult trained = TrainCipSingle(bundle, alpha, rounds, rng);
  out.client = std::move(trained.client);
  out.train_acc = out.client->EvalAccuracy(bundle.train);
  out.test_acc = out.client->EvalAccuracy(bundle.test);
  if (shadow != nullptr) {
    core::CipWhiteBox raw(out.client->model(), out.client->config().blend);
    out.attacks = RunExternalAttackSuite(bundle, *shadow, raw, rng);
  }
  return out;
}

}  // namespace cip::eval
