// Shared experiment harness: canonical dataset bundles for the paper's four
// benchmarks, single-client and federated training drivers for every
// defense, and the external attack suite — the pieces each bench composes to
// regenerate its table or figure.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "attacks/attack.h"
#include "core/cip_client.h"
#include "data/synthetic.h"
#include "defenses/adv_reg.h"
#include "defenses/dp_sgd.h"
#include "defenses/hdp.h"
#include "defenses/mixup_mmd.h"
#include "defenses/relaxloss.h"
#include "fl/server.h"

namespace cip::eval {

enum class DatasetId { kCifar100, kCifarAug, kChMnist, kPurchase50 };

std::string DatasetName(DatasetId id);

/// Everything an experiment needs for one benchmark dataset: member
/// (training) data, non-member (test) data, disjoint shadow splits for the
/// attacker, a sampler for extra draws (BlindMI reference sets, AR/MM
/// reference data), and the paper's model choice for that dataset.
struct DataBundle {
  DatasetId id = DatasetId::kCifar100;
  data::Dataset train;         ///< members
  data::Dataset test;          ///< non-members
  data::Dataset shadow_train;  ///< attacker's shadow members
  data::Dataset shadow_test;   ///< attacker's shadow non-members
  std::function<data::Dataset(std::size_t, Rng&)> sample;
  nn::ModelSpec spec;
  bool augment = false;  ///< CIFAR-AUG trains with augmentation
};

struct BundleOptions {
  std::size_t train_size = 500;
  std::size_t test_size = 500;
  std::size_t shadow_size = 500;  ///< each shadow split
  std::size_t width = 10;         ///< model width
  std::size_t num_classes = 20;   ///< vision datasets only (CIFAR stand-ins)
  std::uint64_t seed = 1;
};

DataBundle MakeBundle(DatasetId id, const BundleOptions& opts);

/// Paper-matched training configuration for a bundle (lr/momentum/batch).
fl::TrainConfig DefaultTrainConfig(const DataBundle& bundle);

/// Default CIP configuration for a bundle at a given α.
core::CipConfig DefaultCipConfig(const DataBundle& bundle, float alpha);

// ---- training drivers -------------------------------------------------------

/// Run `rounds` of FedAvg over the store's fleet starting from `init`. The
/// store may be live (small fixed fleets registered via Add) or cold
/// (sampled clients materialized on demand; see fl/client_store.h).
fl::FlLog RunFederated(fl::ClientStore& store, const fl::ModelState& init,
                       std::size_t rounds, Rng& rng,
                       fl::FlOptions options = {});

/// Continue an interrupted federated run from a checkpoint file written by a
/// previous run with FlOptions::checkpoint_every set. The store must
/// describe the same fleet (same size, same per-id construction) as the
/// original run; options.rounds is taken from the checkpoint, and no fresh
/// seed is drawn — the resumed tail replays the original run's RNG streams
/// bit-identically (see docs/ROBUSTNESS.md).
fl::FlLog ResumeFederated(fl::ClientStore& store, const fl::ModelState& init,
                          const std::string& checkpoint_path,
                          fl::FlOptions options = {});

/// Single-client convenience (the paper's external-adversary setting).
fl::FlLog RunSingle(fl::ClientBase& client, const fl::ModelState& init,
                    std::size_t rounds, Rng& rng, fl::FlOptions options = {});

/// Train a no-defense single-channel model directly (no FL loop).
std::unique_ptr<nn::Classifier> TrainPlain(const DataBundle& bundle,
                                           std::size_t epochs, Rng& rng);

/// Train a single CIP client for `rounds` FedAvg rounds (the external
/// adversary's worst case of one client, Sec. IV-A).
struct CipSingleResult {
  std::unique_ptr<core::CipClient> client;
  fl::FlLog log;
};
CipSingleResult TrainCipSingle(const DataBundle& bundle, float alpha,
                               std::size_t rounds, Rng& rng,
                               fl::FlOptions options = {},
                               core::CipConfig* cfg_override = nullptr);

// ---- attacker toolkit -------------------------------------------------------

/// The attacker's reusable assets against one bundle: a shadow model trained
/// on the shadow split plus its member/non-member losses.
struct ShadowPack {
  std::unique_ptr<nn::Classifier> model;
  std::vector<float> member_losses;
  std::vector<float> nonmember_losses;
};

ShadowPack BuildShadowPack(const DataBundle& bundle, std::size_t epochs,
                           Rng& rng);

/// Run the paper's five external attacks (Ob-Label, Ob-MALT, Ob-NN,
/// Ob-BlindMI, Pb-Bayes) against a white-box target handle.
std::map<std::string, metrics::BinaryMetrics> RunExternalAttackSuite(
    const DataBundle& bundle, const ShadowPack& shadow,
    fl::WhiteBoxQuery& target, Rng& rng);

/// Train a single CIP client at a given α and (optionally) run the external
/// attack suite against its raw-query surface — the RQ3 experiment unit
/// shared by the Fig. 8 / Table IV / Table V benches.
struct CipExternalResult {
  double train_acc = 0.0;  ///< client-side accuracy (blended with own t)
  double test_acc = 0.0;
  std::map<std::string, metrics::BinaryMetrics> attacks;
  std::unique_ptr<core::CipClient> client;
};
CipExternalResult RunCipExternal(const DataBundle& bundle,
                                 const ShadowPack* shadow, float alpha,
                                 std::size_t rounds, Rng& rng);

}  // namespace cip::eval
