#include "eval/internal_experiment.h"

#include <algorithm>

#include "attacks/adaptive.h"
#include "attacks/internal.h"
#include "core/cip_client.h"
#include "data/partition.h"
#include "defenses/dp_sgd.h"
#include "defenses/hdp.h"
#include "eval/experiment.h"
#include "fl/client.h"
#include "fl/client_factory.h"
#include "fl/server.h"
#include "tensor/ops.h"

namespace cip::eval {

namespace {

/// Owning query handle over a plain classifier rebuilt from a ModelState.
struct OwningClassifierQuery : fl::QueryModel {
  std::unique_ptr<nn::Classifier> model;

  explicit OwningClassifierQuery(std::unique_ptr<nn::Classifier> m)
      : model(std::move(m)) {}
  Tensor Logits(const Tensor& x) override { return fl::LogitsFor(*model, x); }
  std::size_t NumClasses() const override { return model->num_classes(); }
};

/// Owning raw-query handle over a dual-channel (CIP) snapshot.
struct OwningDualQuery : fl::QueryModel {
  std::unique_ptr<nn::DualChannelClassifier> model;
  core::BlendConfig blend;

  OwningDualQuery(std::unique_ptr<nn::DualChannelClassifier> m,
                  core::BlendConfig b)
      : model(std::move(m)), blend(b) {}
  Tensor Logits(const Tensor& x) override {
    return core::DualLogits(*model, x, Tensor(), blend);
  }
  std::size_t NumClasses() const override { return model->num_classes(); }
};

}  // namespace

std::string InternalDefenseName(InternalDefense d) {
  switch (d) {
    case InternalDefense::kNone: return "NoDefense";
    case InternalDefense::kCip: return "CIP";
    case InternalDefense::kDp: return "DP";
    case InternalDefense::kHdp: return "HDP";
  }
  return "unknown";
}

InternalExpResult RunInternalExperiment(const InternalExpConfig& cfg,
                                        Rng& rng) {
  CIP_CHECK_GT(cfg.num_clients, 0u);
  CIP_CHECK_GT(cfg.rounds, cfg.attack_snapshots);

  data::SyntheticVision gen(data::Cifar100Like(cfg.num_classes));
  Rng data_rng(cfg.seed);
  data::Dataset full =
      gen.Sample(cfg.num_clients * cfg.samples_per_client, data_rng);
  const std::vector<data::Dataset> shards =
      cfg.classes_per_client == 0
          ? data::PartitionIid(full, cfg.num_clients, data_rng)
          : data::PartitionByClasses(full, cfg.num_clients,
                                     cfg.classes_per_client, cfg.num_classes,
                                     data_rng);
  const data::Dataset test = gen.Sample(cfg.test_size, data_rng);
  // Non-members for the attack, same size as the victim's member set and —
  // crucially — drawn from the victim's own class distribution, so the
  // attack measures sample-level membership rather than trivially detecting
  // which classes the victim holds under a non-i.i.d. split.
  const std::vector<int> victim_classes = data::ClassesPresent(shards[0]);
  const data::Dataset attack_nonmembers =
      gen.SampleClasses(cfg.samples_per_client, victim_classes, data_rng);

  nn::ModelSpec spec;
  spec.arch = cfg.arch;
  spec.input_shape = gen.SampleShape();
  spec.num_classes = cfg.num_classes;
  spec.width = cfg.width;
  spec.seed = cfg.seed * 977 + 3;

  fl::TrainConfig train;
  train.lr = 0.02f;
  train.momentum = 0.9f;

  // ---- build clients per defense -------------------------------------------
  fl::ClientSpec proto;
  proto.model = spec;
  proto.train = train;
  core::BlendConfig blend;
  blend.alpha = cfg.alpha;
  switch (cfg.defense) {
    case InternalDefense::kNone:
      proto.kind = fl::ClientKind::kLegacy;
      break;
    case InternalDefense::kCip:
      proto.kind = fl::ClientKind::kCip;
      proto.cip.blend = blend;
      proto.cip.perturb_steps = 6;
      break;
    case InternalDefense::kDp:
    case InternalDefense::kHdp:
      proto.kind = cfg.defense == InternalDefense::kDp
                       ? fl::ClientKind::kDpSgd
                       : fl::ClientKind::kHdp;
      proto.dp.epsilon = cfg.epsilon;
      proto.dp.clip_norm = cfg.dp_clip;
      proto.dp.total_steps =
          cfg.rounds * (cfg.samples_per_client / train.batch_size + 1);
      proto.dp.sampling_rate =
          std::min(1.0f, static_cast<float>(train.batch_size) /
                             static_cast<float>(cfg.samples_per_client));
      break;
  }
  // Live store: this experiment evaluates the very client objects after the
  // run (accuracy on local data, active-attack rerun on the same fleet), so
  // they must persist across rounds rather than live as cold records.
  fl::ClientStore store;
  std::vector<fl::ClientBase*> ptrs;
  for (std::size_t k = 0; k < cfg.num_clients; ++k) {
    fl::ClientSpec cs = proto;
    cs.data = shards[k];
    cs.seed = cfg.seed * 31 + k;
    ptrs.push_back(store.Add(fl::MakeClient(cs)));
  }
  const fl::ModelState init = fl::InitialStateFor(proto);

  // ---- honest training, recording the victim's updates ---------------------
  fl::FlOptions options;
  options.rounds = cfg.rounds;
  options.record_client_updates = true;
  fl::FederatedAveraging server(init, options);
  const fl::FlLog log = server.Run(store, rng.NextU64());

  InternalExpResult result;
  result.train_acc = ptrs[0]->EvalAccuracy(ptrs[0]->LocalData());
  double acc = 0.0;
  for (fl::ClientBase* c : ptrs) acc += c->EvalAccuracy(test);
  result.test_acc = acc / static_cast<double>(ptrs.size());

  // ---- passive attack on the victim (client 0) ------------------------------
  std::vector<fl::ModelState> snapshots;
  for (std::size_t r = cfg.rounds - cfg.attack_snapshots; r < cfg.rounds;
       ++r) {
    snapshots.push_back(log.client_updates[r][0]);
  }
  const InternalDefense defense = cfg.defense;
  attacks::SnapshotQueryFactory factory =
      [spec, blend, defense](const fl::ModelState& s)
      -> std::unique_ptr<fl::QueryModel> {
    switch (defense) {
      case InternalDefense::kCip: {
        auto model = nn::MakeDualChannelClassifier(spec);
        const std::vector<nn::Parameter*> p = model->Parameters();
        s.ApplyTo(p);
        return std::make_unique<OwningDualQuery>(std::move(model), blend);
      }
      case InternalDefense::kHdp: {
        auto model = defenses::HdpClient::MakeModel(spec);
        const std::vector<nn::Parameter*> p = model->Parameters();
        s.ApplyTo(p);
        return std::make_unique<OwningClassifierQuery>(std::move(model));
      }
      default: {
        auto model = nn::MakeClassifier(spec);
        const std::vector<nn::Parameter*> p = model->Parameters();
        s.ApplyTo(p);
        return std::make_unique<OwningClassifierQuery>(std::move(model));
      }
    }
  };

  attacks::InternalPassive passive(std::move(snapshots), factory);
  const data::Dataset& members = ptrs[0]->LocalData();
  const std::size_t half_m = members.size() / 2;
  const std::size_t half_n = attack_nonmembers.size() / 2;
  passive.Calibrate(members.Slice(0, half_m),
                    attack_nonmembers.Slice(0, half_n));
  const std::vector<float> sm =
      passive.Score(members.Slice(half_m, members.size()));
  const std::vector<float> sn = passive.Score(
      attack_nonmembers.Slice(half_n, attack_nonmembers.size()));
  result.passive_attack_acc = attacks::ScoreToMetrics(sm, sn, 0.5f).accuracy;

  // ---- active attack (rerun with gradient-ascent tampering) ----------------
  if (cfg.run_active_attack) {
    const std::size_t n_targets = std::min<std::size_t>(
        {100, members.size() - half_m, attack_nonmembers.size() - half_n});
    const data::Dataset target_members =
        members.Slice(half_m, half_m + n_targets);
    const data::Dataset target_nonmembers =
        attack_nonmembers.Slice(half_n, half_n + n_targets);
    const data::Dataset targets =
        data::Dataset::Concat(target_members, target_nonmembers);

    attacks::AscentFn ascent =
        cfg.defense == InternalDefense::kCip
            ? attacks::MakeDualAscent(spec, blend, /*lr=*/0.02f, /*steps=*/3)
            : attacks::MakeClassifierAscent(spec, /*lr=*/0.02f, /*steps=*/3);
    if (cfg.defense == InternalDefense::kHdp) {
      // HDP's model shape differs; ascend on its random-feature model.
      ascent = [spec](const fl::ModelState& s, const data::Dataset& tg) {
        auto model = defenses::HdpClient::MakeModel(spec);
        const std::vector<nn::Parameter*> p = model->Parameters();
        s.ApplyTo(p);
        for (int step = 0; step < 3; ++step) {
          const Tensor logits = model->Forward(tg.inputs, true);
          Tensor dlogits;
          ops::SoftmaxCrossEntropy(logits, tg.labels, &dlogits);
          model->Backward(dlogits);
          for (nn::Parameter* pp : p) {
            ops::Axpy(pp->value, 0.02f, pp->grad);
            pp->ZeroGrad();
          }
        }
        return fl::ModelState::From(p);
      };
    }

    // Tampered rerun over the same fleet (fresh server, fresh seed; the
    // clients continue from their post-honest-run models, as before).
    fl::FlOptions active_opts;
    active_opts.rounds = cfg.rounds;
    fl::FederatedAveraging active_server(init, active_opts);
    attacks::InstallActiveAttack(
        active_server, std::move(ascent), targets,
        /*start_round=*/cfg.rounds > 5 ? cfg.rounds - 4 : 1);
    Rng active_rng(cfg.seed * 131 + 7);
    const fl::FlLog active_log =
        active_server.Run(store, active_rng.NextU64());

    const std::unique_ptr<fl::QueryModel> final_q =
        factory(active_log.final_global);
    const std::vector<float> lm = final_q->Losses(target_members);
    const std::vector<float> ln = final_q->Losses(target_nonmembers);
    std::vector<float> ms(lm.size()), ns(ln.size());
    for (std::size_t i = 0; i < lm.size(); ++i) ms[i] = -lm[i];
    for (std::size_t i = 0; i < ln.size(); ++i) ns[i] = -ln[i];
    result.active_attack_acc = attacks::BestThresholdAccuracy(ms, ns);
  }
  return result;
}

}  // namespace cip::eval
