// Internal-adversary (malicious-server) experiment driver.
//
// One call trains an FL deployment (no defense / CIP / LDP / HDP) on a
// non-i.i.d. or i.i.d. split of the CIFAR-100 stand-in, then mounts the
// Nasr-style passive and (optionally) active attacks against the first
// (victim) client. Used by the Fig. 4 / Fig. 5 benches and reusable from
// examples.
#pragma once

#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/backbones.h"

namespace cip::eval {

enum class InternalDefense { kNone, kCip, kDp, kHdp };

std::string InternalDefenseName(InternalDefense d);

struct InternalExpConfig {
  std::size_t num_clients = 2;
  std::size_t rounds = 10;
  std::size_t samples_per_client = 120;
  std::size_t test_size = 240;
  /// 0 = i.i.d.; otherwise classes per client (paper: 20 of 100; scaled
  /// here to the stand-in's class count).
  std::size_t classes_per_client = 4;
  std::size_t num_classes = 20;
  nn::Arch arch = nn::Arch::kResNet;
  std::size_t width = 8;

  InternalDefense defense = InternalDefense::kNone;
  float alpha = 0.5f;          ///< CIP blending parameter
  float epsilon = 8.0f;        ///< DP/HDP privacy budget
  float dp_clip = 4.0f;

  bool run_active_attack = false;
  /// Snapshots (victim-client updates) used by the passive attack: the last
  /// `attack_snapshots` rounds, matching the paper's "attacking iterations".
  std::size_t attack_snapshots = 3;

  std::uint64_t seed = 1;
};

struct InternalExpResult {
  double train_acc = 0.0;   ///< victim's client-side accuracy on its data
  double test_acc = 0.0;    ///< mean client-side accuracy on fresh test data
  double passive_attack_acc = 0.0;
  double active_attack_acc = -1.0;  ///< -1 when not run
};

InternalExpResult RunInternalExperiment(const InternalExpConfig& cfg,
                                        Rng& rng);

}  // namespace cip::eval
