// Batched CIP inference serving engine — the system's heavy-traffic front
// door (ROADMAP item 4).
//
// Deployment story: millions of clients each hold a private perturbation t
// and query the shared dual-channel model with blended inputs B(x, t)
// (Eq. 2, core/blend.h). ServeEngine turns that into a throughput workload:
//
//  * Per-client t lookup through a version-keyed LRU cache backed by the
//    PR 8 ClientStore. Reads use ClientStore::PeekState (non-destructive —
//    Materialize would move record ownership out of the store) and are
//    keyed on ClientStore::state_version, so a client that trains between
//    queries is re-read exactly once (counted as `t_stale`), while the
//    steady state is a pure map hit with zero allocations. Never-
//    participated clients materialize ephemerally through the store's pure
//    factory for their construction-time t.
//  * Fused blend+forward: Enqueue copies request rows into a grow-once
//    arena; Flush packs whole requests into [ΣN, ...] dual-channel chunks
//    of at most max_batch_rows rows, blends every client's rows directly
//    into the shared channel arenas (core::BlendRowsInto, mask-free) and
//    runs ONE EvalForward per chunk — the PackedB prepacked weights and the
//    SIMD GEMM kernels amortize across clients instead of being
//    re-dispatched per caller.
//  * Allocation-free steady state: all staging (input arena, channel
//    arenas, logits) uses the capacity-reusing Tensor::Resize discipline,
//    and the model side runs through Module::EvalForward. After a warmup
//    flush at the largest batch, serving performs zero element-buffer
//    allocations (tests/test_alloc_free.cpp pins this at batch 1/16/128).
//
// Determinism: every op on the serve path is per-sample, so a row's logits
// depend only on (client t, row bytes) and the active GEMM regime — the
// same request sequence yields bit-identical logits on every run, and the
// wire front door (net/server.h, kQuery) is bit-identical to an in-process
// Serve of the same requests. Chunk composition may move a GEMM between the
// streaming and blocked regimes, whose results agree within the pinned
// kernel tolerance (docs/KERNELS.md), so cross-batch-size comparisons are
// tolerance-level, not bitwise. docs/SERVING.md works the full contract.
//
// Threading: the engine is single-caller (the server event loop); the fused
// forward parallelizes internally through the worker pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "core/blend.h"
#include "fl/client_store.h"
#include "nn/dual_channel.h"
#include "tensor/tensor.h"

namespace cip::serve {

/// Engine tuning; Validate() CHECK-fails on out-of-domain settings.
struct ServeOptions {
  /// Blending parameters applied to every query (Eq. 2). Clients share the
  /// run's alpha; only t is per-client.
  core::BlendConfig blend;
  /// Fused-forward cap: Flush packs whole requests into chunks of at most
  /// this many rows (a single request larger than the cap forms its own
  /// chunk — requests are never split, so one client's rows always share a
  /// forward). Also the natural warmup batch size.
  std::size_t max_batch_rows = 128;
  /// LRU capacity of the per-client t cache, in clients. Eviction drops the
  /// cached tensor; the next query for that client re-reads the store.
  std::size_t t_cache_entries = 4096;

  /// CHECK-fails (throws cip::CheckError) on zero caps or a blend config
  /// outside its domain (alpha ∉ [0,1), clip_lo ≥ clip_hi).
  void Validate() const;
};

/// Cumulative serving counters, exposed for telemetry and benchmarks.
struct ServeStats {
  std::size_t queries = 0;      ///< Enqueue calls accepted
  std::size_t rows = 0;         ///< total sample rows served through Flush
  std::size_t batches = 0;      ///< fused dual-channel forwards dispatched
  std::size_t t_hits = 0;       ///< t-cache hits (version still current)
  std::size_t t_misses = 0;     ///< t-cache misses (store read + insert)
  std::size_t t_stale = 0;      ///< version-mismatch refreshes of an entry
  std::size_t t_evictions = 0;  ///< LRU evictions from the t cache
};

class ServeEngine {
 public:
  /// Serves `model` for the fleet registered in `store`. Both are borrowed
  /// and must outlive the engine; opts are validated here.
  ServeEngine(nn::DualChannelClassifier& model, fl::ClientStore& store,
              ServeOptions opts);

  /// Queue one client's query batch (inputs: [N, ...sample dims], N >= 1)
  /// for the next Flush, copying the rows into the request arena. Every
  /// request must share the sample shape of the first request ever enqueued
  /// (one engine serves one model). Returns the request's row offset: its
  /// logits occupy rows [offset, offset + N) of the tensor Flush returns.
  std::size_t Enqueue(std::size_t client_id, const Tensor& inputs);

  /// Blend and forward every pending request in enqueue order and return
  /// the packed logits [total rows, num_classes]. The reference stays valid
  /// until the next Enqueue/Flush. Flushing with nothing pending yields the
  /// empty [0, num_classes] tensor.
  const Tensor& Flush();

  /// Convenience single-request path: Enqueue + Flush (pending queue must
  /// be empty). Returns the request's logits [N, num_classes].
  const Tensor& Serve(std::size_t client_id, const Tensor& inputs);

  /// Rows currently queued for the next Flush.
  std::size_t pending_rows() const { return total_rows_; }

  /// Logits of the most recent Flush (empty before the first).
  const Tensor& logits() const { return logits_; }

  /// Drop `id`'s cached t, forcing a store re-read on its next query. Needed
  /// for live/borrowed stores, whose objects mutate in place without moving
  /// ClientStore::state_version; cold stores invalidate automatically.
  void InvalidateClient(std::size_t id);

  /// Cumulative serving counters (see ServeStats).
  const ServeStats& stats() const { return stats_; }

  /// The validated engine options.
  const ServeOptions& options() const { return opts_; }

 private:
  struct Request {
    std::size_t client_id;
    std::size_t row_begin;  // offset into the input arena / logits, in rows
    std::size_t rows;
  };
  struct TEntry {
    Tensor t;                  // empty => stateless client, blend B(x, 0)
    std::uint64_t version = 0; // store state_version at load (cold mode)
    std::list<std::size_t>::iterator lru_it;
  };

  const Tensor& LookupT(std::size_t client_id);
  void LoadT(std::size_t client_id, TEntry& e);

  nn::DualChannelClassifier* model_;
  fl::ClientStore* store_;
  ServeOptions opts_;
  ServeStats stats_;

  // Fixed after the first Enqueue: one engine serves one input geometry.
  Shape sample_shape_;        // [C, H, W] (or [D]) of one sample
  std::size_t stride_ = 0;    // floats per sample
  Shape chunk_shape_;         // reusable [rows, ...sample] scratch for Flush

  // Pending requests and their grow-once staging arenas. inputs_ is the
  // flat [rows, stride] request arena; c1_/c2_ are the blended channel
  // chunks fed to the model; logits_ holds the packed results.
  std::vector<Request> requests_;
  std::size_t total_rows_ = 0;
  Tensor inputs_, c1_, c2_, logits_;

  // Per-client t cache: map nodes are stable, so LookupT's returned
  // reference survives unrelated insertions; tlru_ front = most recent.
  std::map<std::size_t, TEntry> tcache_;
  std::list<std::size_t> tlru_;
};

}  // namespace cip::serve
