#include "serve/serve_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cip::serve {

void ServeOptions::Validate() const {
  CIP_CHECK_MSG(max_batch_rows >= 1, "serve: max_batch_rows must be >= 1");
  CIP_CHECK_MSG(t_cache_entries >= 1, "serve: t_cache_entries must be >= 1");
  CIP_CHECK_MSG(blend.alpha >= 0.0f && blend.alpha < 1.0f,
                "serve: blend.alpha " << blend.alpha << " outside [0, 1)");
  CIP_CHECK_MSG(blend.clip_lo < blend.clip_hi,
                "serve: blend clip range [" << blend.clip_lo << ", "
                                            << blend.clip_hi << ") is empty");
}

ServeEngine::ServeEngine(nn::DualChannelClassifier& model,
                         fl::ClientStore& store, ServeOptions opts)
    : model_(&model), store_(&store), opts_(std::move(opts)) {
  opts_.Validate();
}

// CIP_HOT  (serve dispatch: request admission into the grow-once arena)
std::size_t ServeEngine::Enqueue(std::size_t client_id, const Tensor& inputs) {
  CIP_CHECK_LT(client_id, store_->num_clients());
  CIP_CHECK_GE(inputs.rank(), 2u);
  const std::size_t n = inputs.dim(0);
  CIP_CHECK_GE(n, 1u);
  if (stride_ == 0) {
    // First request ever: pin the engine's sample geometry.
    sample_shape_.assign(inputs.shape().begin() + 1,  // CIP_ANALYZE_OK(hot-alloc-container): one-time geometry pin, never re-runs after the first request
                         inputs.shape().end());
    stride_ = inputs.size() / n;
    CIP_CHECK_GE(stride_, 1u);
  } else {
    CIP_CHECK_MSG(inputs.rank() == sample_shape_.size() + 1,
                  "serve: request rank " << inputs.rank()
                                         << " != pinned rank "
                                         << sample_shape_.size() + 1);
    for (std::size_t d = 0; d < sample_shape_.size(); ++d) {
      CIP_CHECK_MSG(inputs.dim(d + 1) == sample_shape_[d],
                    "serve: request sample dim " << d << " = "
                                                 << inputs.dim(d + 1)
                                                 << " != pinned "
                                                 << sample_shape_[d]);
    }
  }
  const std::size_t row_begin = total_rows_;
  total_rows_ += n;
  inputs_.Resize({total_rows_, stride_});  // prefix-preserving arena growth
  std::copy(inputs.data(), inputs.data() + n * stride_,
            inputs_.data() + row_begin * stride_);
  requests_.push_back({client_id, row_begin, n});  // CIP_ANALYZE_OK(hot-alloc-container): grow-once request list; capacity plateaus at the steady-state batch size
  ++stats_.queries;
  return row_begin;
}

// CIP_HOT  (serve dispatch: fused blend+forward over the pending requests)
const Tensor& ServeEngine::Flush() {
  const std::size_t classes = model_->num_classes();
  logits_.Resize({total_rows_, classes});
  float* plog = logits_.data();
  const Tensor& arena = inputs_;  // const view: data() skips the version bump
  std::size_t i = 0;
  while (i < requests_.size()) {
    // Greedy whole-request packing: take requests until the next one would
    // push the chunk past max_batch_rows (an oversized single request still
    // forms its own chunk — requests are never split across forwards).
    std::size_t j = i;
    std::size_t rows = 0;
    while (j < requests_.size() &&
           (j == i || rows + requests_[j].rows <= opts_.max_batch_rows)) {
      rows += requests_[j].rows;
      ++j;
    }
    chunk_shape_.assign(1, rows);  // CIP_ANALYZE_OK(hot-alloc-container): small-vector shape scratch; capacity sticks after the first flush
    chunk_shape_.insert(chunk_shape_.end(), sample_shape_.begin(),
                        sample_shape_.end());
    c1_.Resize(chunk_shape_);
    c2_.Resize(chunk_shape_);
    float* p1 = c1_.data();
    float* p2 = c2_.data();
    std::size_t off = 0;
    for (std::size_t r = i; r < j; ++r) {
      const Request& req = requests_[r];
      const Tensor& t = LookupT(req.client_id);
      if (t.size() > 0) {
        CIP_CHECK_MSG(t.size() == stride_,
                      "serve: client " << req.client_id << " perturbation size "
                                       << t.size() << " != sample size "
                                       << stride_);
      }
      core::BlendRowsInto(arena.data() + req.row_begin * stride_,
                          t.size() > 0 ? t.data() : nullptr, req.rows, stride_,
                          opts_.blend, p1 + off * stride_, p2 + off * stride_);
      off += req.rows;
    }
    const Tensor& chunk_logits = model_->EvalForward(c1_, c2_);
    std::copy(chunk_logits.data(), chunk_logits.data() + rows * classes,
              plog + requests_[i].row_begin * classes);
    ++stats_.batches;
    i = j;
  }
  stats_.rows += total_rows_;
  requests_.clear();
  total_rows_ = 0;
  return logits_;
}

const Tensor& ServeEngine::Serve(std::size_t client_id, const Tensor& inputs) {
  CIP_CHECK_MSG(requests_.empty(),
                "serve: Serve() requires an empty pending queue ("
                    << requests_.size() << " requests pending)");
  Enqueue(client_id, inputs);
  return Flush();
}

void ServeEngine::InvalidateClient(std::size_t id) {
  auto it = tcache_.find(id);
  if (it == tcache_.end()) return;
  tlru_.erase(it->second.lru_it);
  tcache_.erase(it);
}

// CIP_HOT  (serve t lookup: steady state is a pure map hit + LRU splice)
const Tensor& ServeEngine::LookupT(std::size_t client_id) {
  auto it = tcache_.find(client_id);
  if (it != tcache_.end()) {
    TEntry& e = it->second;
    if (store_->cold() && store_->state_version(client_id) != e.version) {
      // The stored record changed under us (Evict after training, restore,
      // or a Materialize that moved it out) — re-read once.
      ++stats_.t_stale;
      LoadT(client_id, e);
      e.version = store_->state_version(client_id);
    } else {
      ++stats_.t_hits;
    }
    tlru_.splice(tlru_.begin(), tlru_, e.lru_it);  // recency bump, no alloc
    return e.t;
  }
  ++stats_.t_misses;
  TEntry& e = tcache_[client_id];  // CIP_ANALYZE_OK(hot-alloc-container): miss path — node insert is the cache fill itself, not steady-state traffic
  tlru_.push_front(client_id);     // CIP_ANALYZE_OK(hot-alloc-container): miss path, paired with the cache fill above
  e.lru_it = tlru_.begin();
  LoadT(client_id, e);
  e.version = store_->cold() ? store_->state_version(client_id) : 0;
  while (tcache_.size() > opts_.t_cache_entries) {
    const std::size_t victim = tlru_.back();
    tlru_.pop_back();
    tcache_.erase(victim);  // map nodes are stable: e survives unless it IS
                            // the victim, impossible while e sits at the
                            // LRU front and size > capacity >= 1.
    ++stats_.t_evictions;
  }
  return e.t;
}

void ServeEngine::LoadT(std::size_t client_id, TEntry& e) {
  fl::ClientState st;
  if (store_->PeekState(client_id, st)) {
    // PR 4 ExportState contract: the secret perturbation t is tensors[0].
    e.t = std::move(st.tensors.front());
    return;
  }
  // No stored state: either the client never participated (cold mode) or it
  // is stateless. A record-less cold Materialize leaves the store unchanged
  // (the factory is pure per id), so this is a safe ephemeral construction
  // for the client's initial t.
  fl::ClientStore::Handle h = store_->Materialize(client_id);
  st = h->ExportState();
  if (!st.tensors.empty()) {
    e.t = std::move(st.tensors.front());
  } else {
    e.t = Tensor();  // stateless client: serve B(x, 0)  CIP_ANALYZE_OK(hot-alloc-tensor): cold-miss admission only; a warm t-cache never reaches LoadT (pinned by test_alloc_free)
  }
}

}  // namespace cip::serve
