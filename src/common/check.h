// Lightweight contract checking used across the library.
//
// CIP_CHECK is always on (cheap invariant checks on API boundaries); failures
// throw cip::CheckError so tests can assert on misuse and callers can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cip {

/// Thrown when a CIP_CHECK precondition/invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CIP_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Stream sink that builds the optional message of a failed check.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace cip

#define CIP_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::cip::detail::CheckFailed(#cond, __FILE__, __LINE__, std::string()); \
    }                                                                       \
  } while (0)

#define CIP_CHECK_MSG(cond, msg_expr)                                 \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::cip::detail::CheckMessage cip_check_msg_;                     \
      cip_check_msg_ << msg_expr;                                     \
      ::cip::detail::CheckFailed(#cond, __FILE__, __LINE__,           \
                                 cip_check_msg_.str());               \
    }                                                                 \
  } while (0)

#define CIP_CHECK_EQ(a, b) \
  CIP_CHECK_MSG((a) == (b), "expected " << (a) << " == " << (b))
#define CIP_CHECK_NE(a, b) \
  CIP_CHECK_MSG((a) != (b), "expected " << (a) << " != " << (b))
#define CIP_CHECK_LT(a, b) \
  CIP_CHECK_MSG((a) < (b), "expected " << (a) << " < " << (b))
#define CIP_CHECK_LE(a, b) \
  CIP_CHECK_MSG((a) <= (b), "expected " << (a) << " <= " << (b))
#define CIP_CHECK_GT(a, b) \
  CIP_CHECK_MSG((a) > (b), "expected " << (a) << " > " << (b))
#define CIP_CHECK_GE(a, b) \
  CIP_CHECK_MSG((a) >= (b), "expected " << (a) << " >= " << (b))
