// Lightweight contract checking used across the library.
//
// Two tiers:
//   CIP_CHECK*  — always on (cheap invariant checks on API boundaries);
//                 failures throw cip::CheckError so tests can assert on misuse
//                 and callers can recover.
//   CIP_DCHECK* — debug-tier checks for hot paths (per-element bounds checks,
//                 inner-loop invariants). Compiled out in Release; enabled when
//                 NDEBUG is not defined or when the build defines
//                 CIP_ENABLE_DCHECKS (the sanitizer presets do). When compiled
//                 out the condition is NOT evaluated (it sits in an unevaluated
//                 sizeof), so side effects in a DCHECK argument are a bug.
//
// All comparison macros evaluate each argument exactly once, including on the
// failure path (the values are captured before the comparison runs).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cip {

/// Thrown when a CIP_CHECK precondition/invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CIP_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Stream sink that builds the optional message of a failed check.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  // The accumulated message text.
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

// Swallows any operands inside an unevaluated sizeof so compiled-out DCHECK
// arguments are type-checked (and "unused" warnings suppressed) but never run.
template <typename... Ts>
constexpr bool Unevaluated(const Ts&...) {
  return true;
}

// Cold failure path of the comparison macros: formats both operands.
template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* expr, const char* file, int line,
                                const char* op, const A& a, const B& b) {
  CheckMessage msg;
  msg << "expected " << a << ' ' << op << ' ' << b;
  CheckFailed(expr, file, line, msg.str());
}

}  // namespace detail
}  // namespace cip

#define CIP_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::cip::detail::CheckFailed(#cond, __FILE__, __LINE__, std::string()); \
    }                                                                       \
  } while (0)

#define CIP_CHECK_MSG(cond, msg_expr)                                 \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::cip::detail::CheckMessage cip_check_msg_;                     \
      cip_check_msg_ << msg_expr;                                     \
      ::cip::detail::CheckFailed(#cond, __FILE__, __LINE__,           \
                                 cip_check_msg_.str());               \
    }                                                                 \
  } while (0)

// Captures both operands once, compares, and only formats on failure.
#define CIP_CHECK_OP_(a, b, op)                                            \
  do {                                                                     \
    auto&& cip_check_a_ = (a);                                             \
    auto&& cip_check_b_ = (b);                                             \
    if (!(cip_check_a_ op cip_check_b_)) {                                 \
      ::cip::detail::CheckOpFailed(#a " " #op " " #b, __FILE__, __LINE__,  \
                                   #op, cip_check_a_, cip_check_b_);       \
    }                                                                      \
  } while (0)

#define CIP_CHECK_EQ(a, b) CIP_CHECK_OP_(a, b, ==)
#define CIP_CHECK_NE(a, b) CIP_CHECK_OP_(a, b, !=)
#define CIP_CHECK_LT(a, b) CIP_CHECK_OP_(a, b, <)
#define CIP_CHECK_LE(a, b) CIP_CHECK_OP_(a, b, <=)
#define CIP_CHECK_GT(a, b) CIP_CHECK_OP_(a, b, >)
#define CIP_CHECK_GE(a, b) CIP_CHECK_OP_(a, b, >=)

// ---------------------------------------------------------------------------
// Debug-tier checks. CIP_DCHECK_IS_ON is 1 in Debug builds and in any build
// configured with -DCIP_DCHECKS=ON (which defines CIP_ENABLE_DCHECKS); the
// asan/ubsan/tsan presets turn it on so sanitizer runs also exercise the
// contract checks.

#if !defined(NDEBUG) || defined(CIP_ENABLE_DCHECKS)
#define CIP_DCHECK_IS_ON 1
#else
#define CIP_DCHECK_IS_ON 0
#endif

#if CIP_DCHECK_IS_ON

#define CIP_DCHECK(cond) CIP_CHECK(cond)
#define CIP_DCHECK_MSG(cond, msg_expr) CIP_CHECK_MSG(cond, msg_expr)
#define CIP_DCHECK_EQ(a, b) CIP_CHECK_EQ(a, b)
#define CIP_DCHECK_NE(a, b) CIP_CHECK_NE(a, b)
#define CIP_DCHECK_LT(a, b) CIP_CHECK_LT(a, b)
#define CIP_DCHECK_LE(a, b) CIP_CHECK_LE(a, b)
#define CIP_DCHECK_GT(a, b) CIP_CHECK_GT(a, b)
#define CIP_DCHECK_GE(a, b) CIP_CHECK_GE(a, b)

#else

// The unevaluated call keeps the operands type-checked (and suppresses
// unused-variable warnings for names that only appear in a DCHECK) without
// ever running them.
#define CIP_DCHECK(cond)                                \
  do {                                                  \
    (void)sizeof(::cip::detail::Unevaluated((cond)));   \
  } while (0)
#define CIP_DCHECK_MSG(cond, msg_expr) CIP_DCHECK(cond)
#define CIP_DCHECK_OP_OFF_(a, b)                             \
  do {                                                       \
    (void)sizeof(::cip::detail::Unevaluated((a), (b)));      \
  } while (0)
#define CIP_DCHECK_EQ(a, b) CIP_DCHECK_OP_OFF_(a, b)
#define CIP_DCHECK_NE(a, b) CIP_DCHECK_OP_OFF_(a, b)
#define CIP_DCHECK_LT(a, b) CIP_DCHECK_OP_OFF_(a, b)
#define CIP_DCHECK_LE(a, b) CIP_DCHECK_OP_OFF_(a, b)
#define CIP_DCHECK_GT(a, b) CIP_DCHECK_OP_OFF_(a, b)
#define CIP_DCHECK_GE(a, b) CIP_DCHECK_OP_OFF_(a, b)

#endif  // CIP_DCHECK_IS_ON
