#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cip {

double Mean(std::span<const float> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (float x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(std::span<const float> v) {
  if (v.empty()) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (float x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double StdDev(std::span<const float> v) { return std::sqrt(Variance(v)); }

double Quantile(std::vector<float> v, double q) {
  CIP_CHECK(!v.empty());
  CIP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return (1.0 - frac) * v[lo] + frac * v[hi];
}

double Median(std::vector<float> v) { return Quantile(std::move(v), 0.5); }

double PearsonCorrelation(std::span<const float> a, std::span<const float> b) {
  CIP_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> Histogram(std::span<const float> v, double lo, double hi,
                              std::size_t bins) {
  CIP_CHECK_GT(bins, 0u);
  CIP_CHECK_LT(lo, hi);
  std::vector<double> h(bins, 0.0);
  if (v.empty()) return h;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (float x : v) {
    auto b = static_cast<long>((x - lo) / width);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    h[static_cast<std::size_t>(b)] += 1.0;
  }
  for (double& x : h) x /= static_cast<double>(v.size());
  return h;
}

}  // namespace cip
