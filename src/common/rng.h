// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit Rng (or a seed)
// so experiments are reproducible run-to-run. Rng wraps a fixed-algorithm
// engine (std::mt19937_64) so results do not depend on the standard library's
// distribution implementations where we provide our own sampling.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace cip {

/// Seeded random generator with the handful of distributions the library
/// needs. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Derive an independent child stream (e.g. one per FL client).
  Rng Fork(std::uint64_t salt) {
    return Rng(engine_() ^ (salt * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull));
  }

  /// Next raw 64-bit engine word.
  std::uint64_t NextU64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    CIP_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t in [0, n).
  std::size_t Index(std::size_t n) {
    CIP_CHECK_GT(n, 0u);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform float in [lo, hi).
  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Gaussian sample with the given mean and standard deviation.
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(float p) { return std::bernoulli_distribution(p)(engine_); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> Permutation(std::size_t n) {
    auto p = std::vector<std::size_t>(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    Shuffle(p);
    return p;
  }

  /// Sample k distinct indices from [0, n) (k <= n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k) {
    CIP_CHECK_LE(k, n);
    std::vector<std::size_t> p = Permutation(n);
    p.resize(k);
    return p;
  }

  /// Underlying engine, for std:: algorithms that want a URBG directly.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: a bijective 64-bit mix whose outputs pass strict
/// statistical tests even for sequential inputs. Used to turn structured
/// (root, label) pairs into well-separated seeds.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Derive the (a, b) child stream of a root seed. Unlike Rng::Fork — which
/// advances the parent and therefore depends on call order — the derived
/// stream is a pure function of (root, a, b): any party that knows the root
/// can reconstruct any stream, in any order, on any thread. The FL round
/// engine uses this as DeriveStream(run_seed, round, client) so client
/// randomness is identical no matter how rounds are scheduled.
inline Rng DeriveStream(std::uint64_t root, std::uint64_t a,
                        std::uint64_t b = 0) {
  return Rng(SplitMix64(root ^ SplitMix64(a + 0x632BE59BD9B4E019ull) ^
                        SplitMix64(b + 0xD1B54A32D192ED03ull)));
}

}  // namespace cip
