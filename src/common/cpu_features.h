// Runtime CPU-feature detection for the SIMD kernel dispatch.
//
// The GEMM microkernels in src/tensor/gemm_*.cpp are compiled per ISA
// (portable GNU-vector, AVX2/FMA, AVX-512F) and bound at runtime: the probe
// below runs CPUID exactly once, the kernel registry
// (src/tensor/gemm_kernels.h) picks the best microkernel the host actually
// supports, and the CIP_ISA environment variable (src/common/env.h) can force
// any lower level. docs/KERNELS.md describes the whole flow.
#pragma once

namespace cip {

/// Instruction-set levels the GEMM kernel registry can bind. Ordered: a
/// larger enum value strictly implies more ISA capability, so "clamp the
/// request down to what the host supports" is a simple comparison.
enum class IsaLevel {
  kPortable = 0,  ///< GNU-vector-extension tile; compiles and runs anywhere.
  kAvx2 = 1,      ///< AVX2 + FMA 256-bit microkernel.
  kAvx512 = 2,    ///< AVX-512F 512-bit microkernel.
};

/// Lowercase display/JSON name of an IsaLevel ("portable", "avx2", "avx512").
const char* IsaName(IsaLevel level);

/// What the host CPU (and its OS, via XCR0) actually supports. All fields are
/// false on non-x86 targets and on x86 CPUs/OSes that do not enable the
/// relevant vector state.
struct CpuFeatures {
  bool avx2 = false;     ///< CPUID.7.0:EBX[5], requires OS YMM state support.
  bool fma = false;      ///< CPUID.1:ECX[12], requires OS YMM state support.
  bool avx512f = false;  ///< CPUID.7.0:EBX[16], requires OS ZMM state support.
};

/// CPUID-based probe, executed once per process and cached; every subsequent
/// call returns the same object. Thread-safe (magic static).
const CpuFeatures& GetCpuFeatures();

/// True when the host can execute a kernel of the given level: kPortable is
/// always supported, kAvx2 needs avx2+fma, kAvx512 needs avx512f.
bool IsaSupported(IsaLevel level, const CpuFeatures& f);

/// The highest IsaLevel the probed host supports (the `CIP_ISA=auto` answer
/// before the registry intersects it with the kernels compiled into this
/// binary).
IsaLevel BestSupportedIsa();

}  // namespace cip
