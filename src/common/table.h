// Plain-text table printer used by the bench harnesses to emit rows in the
// same layout as the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cip {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have as many cells as the header has columns.
  void AddRow(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string Num(double v, int precision = 3);

  /// Writes header + rows with columns padded to the widest cell.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cip
