#include "common/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define CIP_X86 1
#else
#define CIP_X86 0
#endif

namespace cip {
namespace {

#if CIP_X86
// Reads XCR0 (the OS-controlled extended-state enable mask) via xgetbv.
// CPUID feature bits only say the silicon has the units; the OS must also
// save/restore the corresponding register state across context switches, and
// XCR0 is where it says so. Inline asm instead of _xgetbv() keeps
// <immintrin.h> confined to the kernel TUs (see the intrinsic-include lint
// rule in tools/cip_lint.py).
unsigned long long ReadXcr0() {
  unsigned int eax = 0;
  unsigned int edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}

CpuFeatures Probe() {
  CpuFeatures f;
  unsigned int eax = 0;
  unsigned int ebx = 0;
  unsigned int ecx = 0;
  unsigned int edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return f;  // CPUID leaf 1 unavailable: report nothing beyond portable.
  }
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx) {
    return f;  // No OS-managed AVX state: every 256/512-bit path is off.
  }
  const unsigned long long xcr0 = ReadXcr0();
  // Bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be enabled for YMM use.
  const bool os_ymm = (xcr0 & 0x6) == 0x6;
  // Bits 5-7 add the AVX-512 opmask/ZMM_Hi256/Hi16_ZMM state on top.
  const bool os_zmm = (xcr0 & 0xE6) == 0xE6;
  if (!os_ymm) {
    return f;
  }
  unsigned int ebx7 = 0;
  unsigned int ecx7 = 0;
  unsigned int edx7 = 0;
  unsigned int eax7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0) {
    return f;
  }
  f.avx2 = (ebx7 & (1u << 5)) != 0;
  f.fma = fma;
  f.avx512f = os_zmm && (ebx7 & (1u << 16)) != 0;
  return f;
}
#else
CpuFeatures Probe() { return CpuFeatures{}; }
#endif

}  // namespace

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAvx512:
      return "avx512";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kPortable:
      break;
  }
  return "portable";
}

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

bool IsaSupported(IsaLevel level, const CpuFeatures& f) {
  switch (level) {
    case IsaLevel::kAvx512:
      return f.avx512f;
    case IsaLevel::kAvx2:
      return f.avx2 && f.fma;
    case IsaLevel::kPortable:
      break;
  }
  return true;
}

IsaLevel BestSupportedIsa() {
  const CpuFeatures& f = GetCpuFeatures();
  if (IsaSupported(IsaLevel::kAvx512, f)) {
    return IsaLevel::kAvx512;
  }
  if (IsaSupported(IsaLevel::kAvx2, f)) {
    return IsaLevel::kAvx2;
  }
  return IsaLevel::kPortable;
}

}  // namespace cip
