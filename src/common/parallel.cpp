#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"

namespace cip {

namespace internal {

std::optional<std::size_t> ParseThreadCount(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno == ERANGE) return std::nullopt;       // overflowed long
  if (end == s || *end != '\0') return std::nullopt;  // empty or trailing junk
  if (v < 1 || static_cast<unsigned long>(v) > kMaxParallelThreads) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(v);
}

}  // namespace internal

std::size_t ParallelThreads() {
  static const std::size_t kThreads = [] {
    if (const auto parsed = internal::ParseThreadCount(std::getenv("CIP_THREADS"))) {
      return *parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(std::clamp<unsigned>(hw, 1u, 8u));
  }();
  return kThreads;
}

namespace {

// > 0 while this thread executes inside a parallel region: permanently on
// pool workers, transiently on callers while they run their share of chunks.
// Guards against re-entrant pool dispatch (which would deadlock: the nested
// call would wait for workers that are busy running the outer region).
thread_local int t_parallel_depth = 0;

// Set when the pool singleton has been destroyed (static teardown order is
// unspecified; a ParallelFor from a later static destructor must not touch
// the dead pool). Trivially destructible, so reading it at any point of
// shutdown is safe.
std::atomic<bool> g_pool_destroyed{false};

// One dispatched parallel region. Lives on the caller's stack for the
// duration of the call; workers only touch it between the generation
// publish and their completion report, both of which synchronize through
// the pool mutex, so every field is stable when the caller reads it back.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;       // indices per chunk
  std::size_t num_chunks = 0;  // fixed by (n, budget): deterministic
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Claim and run chunks until none remain or a failure is flagged. Safe to
  // call from any number of runners concurrently; each chunk runs exactly
  // once. First exception wins; the flag makes other runners bail at their
  // next index so the caller sees the failure promptly.
  // CIP_HOT  (pool dispatch: every ParallelFor chunk runs through here)
  void RunChunks() {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t lo = begin + c * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          if (failed.load(std::memory_order_relaxed)) return;
          (*fn)(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

// Lazily-started persistent worker pool. All workers participate in every
// dispatched job (those that find no unclaimed chunk just report done and
// park again); the actual parallelism of a job is bounded by its chunk
// count, which the dispatch derives from the caller's thread budget.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool;
    return pool;
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Try to run `job` with the calling thread plus up to `extra_workers`
  // pool workers. The pool executes one region at a time; when another
  // top-level region currently owns it this returns false without touching
  // `job`, and the caller falls back to spawn-per-call dispatch. Falling
  // back (rather than blocking here) keeps concurrent regions progressing
  // independently: a region whose fn waits on progress made by another
  // caller's region would deadlock if that caller were parked on this
  // mutex. On a true return every runner has finished and job's error
  // state is stable.
  bool TryRun(Job& job, std::size_t extra_workers) {
    const std::unique_lock<std::mutex> run_lock(run_mutex_, std::try_to_lock);
    if (!run_lock.owns_lock()) return false;
    std::size_t participants = 0;
    {
      const std::lock_guard<std::mutex> lk(m_);
      // Grow on demand; workers spawned now read generation_ before the
      // publish below, so they participate in this very job.
      const std::size_t want =
          std::min(extra_workers, kMaxParallelThreads - 1);
      while (workers_.size() < want) {
        const std::uint64_t start_gen = generation_;
        // CIP_ANALYZE_OK(hot-alloc-container): pool grows monotonically to the thread budget once; steady state reuses workers
        workers_.emplace_back(
            [this, start_gen] { WorkerLoop(start_gen); });
      }
      job_ = &job;
      ++generation_;
      finished_ = 0;
      participants = participants_ = workers_.size();
    }
    cv_work_.notify_all();
    // The caller is a full runner: on a loaded machine it often drains the
    // whole range before a worker gets scheduled, which is exactly the
    // latency-optimal behavior for small dispatches.
    ++t_parallel_depth;
    job.RunChunks();
    --t_parallel_depth;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_done_.wait(lk, [&] { return finished_ == participants; });
      job_ = nullptr;
    }
    return true;
  }

  std::size_t WorkerCount() {
    const std::lock_guard<std::mutex> lk(m_);
    return workers_.size();
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    // Drain first: TryRun holds run_mutex_ for the whole dispatch, so once
    // we own it no worker is inside a job and the joins below cannot hang on
    // in-flight work. Threads other than the one running static destructors
    // must not issue new ParallelFor calls concurrently with teardown (see
    // parallel.h); a TryRun racing this lock falls back to the spawn path.
    const std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
      const std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_work_.notify_all();
    workers_.clear();  // jthread dtor joins each worker
    g_pool_destroyed.store(true, std::memory_order_release);
  }

  void WorkerLoop(std::uint64_t seen_generation) {
    ++t_parallel_depth;  // workers run nested ParallelFor calls serially
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cv_work_.wait(lk, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      Job* job = job_;
      lk.unlock();
      if (job != nullptr) job->RunChunks();
      lk.lock();
      if (++finished_ == participants_) cv_done_.notify_one();
    }
  }

  std::mutex run_mutex_;  // serializes top-level parallel regions
  std::mutex m_;          // guards everything below
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::jthread> workers_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t participants_ = 0;
  std::size_t finished_ = 0;
  bool stop_ = false;
};

// Legacy dispatch: spawn one jthread per chunk, join on scope exit. Kept
// runtime-selectable (CIP_SPAWN_THREADS=1) as the reference point for the
// dispatch-overhead benchmarks; semantics match the pool path exactly.
void RunSpawnPerCall(Job& job, std::size_t threads) {
  {
    std::vector<std::jthread> workers;
    // CIP_ANALYZE_OK(hot-alloc-container): spawn-per-call fallback/reference path, explicitly not the steady-state pool
    workers.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      const std::size_t lo = job.begin + w * job.chunk;
      if (lo >= job.end) break;
      // CIP_ANALYZE_OK(hot-alloc-container): spawn-per-call fallback: jthreads are constructed fresh by design here
      workers.emplace_back([&job] {
        ++t_parallel_depth;
        job.RunChunks();
        --t_parallel_depth;
      });
    }
  }  // jthreads join here; job state is stable afterwards.
}

// When the pool is busy, each extra spawned runner must be amortized by this
// multiple of the region's min_parallel threshold; smaller busy-pool regions
// get a smaller runner budget (never below two — see the fallback below).
// Derived from min_parallel so coarse regions (few indices, heavy bodies)
// keep a low bar while fine elementwise regions need real volume per spawn.
constexpr std::size_t kBusySpawnAmortizeFactor = 64;

// Shared chunk-per-runner core. min_parallel is the smallest range worth
// dispatching for; below it (or at a budget of 1, or nested inside another
// parallel region, or after pool teardown) the loop runs serially inline.
// CIP_HOT  (dispatch front door: pool hand-off or spawn fallback)
void RunChunked(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn,
                std::size_t max_threads, std::size_t min_parallel) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t threads = std::min(std::max<std::size_t>(max_threads, 1), n);
  if (threads <= 1 || n < min_parallel || t_parallel_depth > 0 ||
      g_pool_destroyed.load(std::memory_order_acquire)) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.end = end;
  job.chunk = (n + threads - 1) / threads;
  job.num_chunks = (n + job.chunk - 1) / job.chunk;
  // The pool runs one region at a time; a second concurrent top-level
  // caller finds it busy and falls back. Chunk execution order (and the
  // partition itself) never affects results — the FL bit-identity suites
  // pin that across worker budgets — so every fallback path below produces
  // bit-identical results.
  if (SpawnPerCallEnabled()) {
    RunSpawnPerCall(job, threads);
  } else if (!WorkerPool::Instance().TryRun(job, threads - 1)) {
    // Busy-pool fallback. Spawning a jthread costs tens of microseconds of
    // thread start-up — worth it for a large region, pure thrash for the
    // many-small-top-level-regions regime (e.g. concurrent serving steps
    // dispatching small forwards while a training run owns the pool). Scale
    // the runner budget to what the region's volume amortizes, but never
    // below two: the region must NOT serialize, because a concurrent
    // top-level sibling may own the pool and rendezvous with our bodies
    // (ParallelStress.ConcurrentTopLevelRegionsMakeProgress is the
    // regression). The caller is one of the runners, so the cheapest
    // fallback costs a single spawn, and runners == chunks keeps the
    // progress guarantee: every chunk has a dedicated runner even if every
    // other body blocks.
    const std::size_t budget = std::clamp<std::size_t>(
        1 + n / (min_parallel * kBusySpawnAmortizeFactor), 2, threads);
    job.chunk = (n + budget - 1) / budget;
    job.num_chunks = (n + job.chunk - 1) / job.chunk;
    {
      std::vector<std::jthread> helpers;
      // CIP_ANALYZE_OK(hot-alloc-container): busy-pool fallback path, explicitly not the steady-state pool
      helpers.reserve(job.num_chunks - 1);
      for (std::size_t w = 1; w < job.num_chunks; ++w) {
        // CIP_ANALYZE_OK(hot-alloc-container): busy-pool fallback: helper jthreads are constructed fresh by design
        helpers.emplace_back([&job] {
          ++t_parallel_depth;
          job.RunChunks();
          --t_parallel_depth;
        });
      }
      ++t_parallel_depth;
      job.RunChunks();
      --t_parallel_depth;
    }  // helpers join here; job state is stable afterwards.
  }
  if (job.first_error != nullptr) std::rethrow_exception(job.first_error);
}

}  // namespace

namespace internal {

bool InParallelRegion() { return t_parallel_depth > 0; }

std::size_t PoolWorkerCount() {
  if (g_pool_destroyed.load(std::memory_order_acquire)) return 0;
  return WorkerPool::Instance().WorkerCount();
}

}  // namespace internal

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t max_threads) {
  // Dispatch overhead dominates for tiny fine-grained ranges.
  RunChunked(begin, end, fn, max_threads, /*min_parallel=*/16);
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  ParallelFor(begin, end, fn, ParallelThreads());
}

void ParallelForCoarse(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t max_threads) {
  RunChunked(begin, end, fn,
             max_threads == 0 ? ParallelThreads() : max_threads,
             /*min_parallel=*/2);
}

}  // namespace cip
