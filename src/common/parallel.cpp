#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace cip {

std::size_t ParallelThreads() {
  static const std::size_t kThreads = [] {
    if (const char* env = std::getenv("CIP_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(std::clamp<unsigned>(hw, 1u, 8u));
  }();
  return kThreads;
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t threads = std::min(ParallelThreads(), n);
  // Thread start/join overhead dominates for tiny ranges.
  if (threads <= 1 || n < 16) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (n + threads - 1) / threads;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
}

}  // namespace cip
