#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cip {

namespace internal {

std::optional<std::size_t> ParseThreadCount(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno == ERANGE) return std::nullopt;       // overflowed long
  if (end == s || *end != '\0') return std::nullopt;  // empty or trailing junk
  if (v < 1 || static_cast<unsigned long>(v) > kMaxParallelThreads) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(v);
}

}  // namespace internal

std::size_t ParallelThreads() {
  static const std::size_t kThreads = [] {
    if (const auto parsed = internal::ParseThreadCount(std::getenv("CIP_THREADS"))) {
      return *parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(std::clamp<unsigned>(hw, 1u, 8u));
  }();
  return kThreads;
}

namespace {

// Shared chunk-per-worker core. min_parallel is the smallest range worth
// spawning threads for; below it (or at a budget of 1) the loop runs serially.
void RunChunked(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn,
                std::size_t max_threads, std::size_t min_parallel) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t threads = std::min(std::max<std::size_t>(max_threads, 1), n);
  if (threads <= 1 || n < min_parallel) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // First worker exception wins; the flag makes the other workers bail at
  // their next index so the caller sees the failure promptly.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t chunk = (n + threads - 1) / threads;
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      const std::size_t lo = begin + w * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) break;
      workers.emplace_back([lo, hi, &fn, &failed, &first_error, &error_mutex] {
        try {
          for (std::size_t i = lo; i < hi; ++i) {
            if (failed.load(std::memory_order_relaxed)) return;
            fn(i);
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      });
    }
  }  // jthreads join here; first_error is stable afterwards.
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t max_threads) {
  // Thread start/join overhead dominates for tiny fine-grained ranges.
  RunChunked(begin, end, fn, max_threads, /*min_parallel=*/16);
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  ParallelFor(begin, end, fn, ParallelThreads());
}

void ParallelForCoarse(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t max_threads) {
  RunChunked(begin, end, fn,
             max_threads == 0 ? ParallelThreads() : max_threads,
             /*min_parallel=*/2);
}

}  // namespace cip
