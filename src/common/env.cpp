#include "common/env.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cip {

double BenchScale() {
  static const double kScale = [] {
    if (const char* env = std::getenv("CIP_SCALE")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) return std::max(v, 0.1);
    }
    return 1.0;
  }();
  return kScale;
}

std::size_t Scaled(std::size_t nominal, std::size_t min_value) {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(nominal) * BenchScale());
  return std::max(scaled, min_value);
}

namespace internal {

std::optional<bool> ParseBoolFlag(const char* s) {
  if (s == nullptr) return std::nullopt;
  if (std::strcmp(s, "1") == 0) return true;
  if (std::strcmp(s, "0") == 0) return false;
  return std::nullopt;
}

std::optional<IsaRequest> ParseIsaRequest(const char* s) {
  if (s == nullptr) return std::nullopt;
  if (std::strcmp(s, "auto") == 0) return IsaRequest::kAuto;
  if (std::strcmp(s, "portable") == 0) return IsaRequest::kPortable;
  if (std::strcmp(s, "avx2") == 0) return IsaRequest::kAvx2;
  if (std::strcmp(s, "avx512") == 0) return IsaRequest::kAvx512;
  return std::nullopt;
}

namespace {

// -1: not yet read from the environment; 0/1: resolved.
std::atomic<int> g_naive_conv{-1};
std::atomic<int> g_spawn_per_call{-1};
// -1: not yet read from the environment; otherwise an IsaRequest value.
std::atomic<int> g_isa_request{-1};

}  // namespace

void SetNaiveConvForTesting(bool enabled) {
  g_naive_conv.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetSpawnPerCallForTesting(bool enabled) {
  g_spawn_per_call.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetIsaRequestForTesting(IsaRequest request) {
  g_isa_request.store(static_cast<int>(request), std::memory_order_relaxed);
}

}  // namespace internal

bool NaiveConvEnabled() {
  int v = internal::g_naive_conv.load(std::memory_order_relaxed);
  if (v < 0) {
    v = internal::ParseBoolFlag(std::getenv("CIP_NAIVE_CONV")).value_or(false)
            ? 1
            : 0;
    internal::g_naive_conv.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

IsaRequest IsaRequested() {
  int v = internal::g_isa_request.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(internal::ParseIsaRequest(std::getenv("CIP_ISA"))
                             .value_or(IsaRequest::kAuto));
    internal::g_isa_request.store(v, std::memory_order_relaxed);
  }
  return static_cast<IsaRequest>(v);
}

bool SpawnPerCallEnabled() {
  int v = internal::g_spawn_per_call.load(std::memory_order_relaxed);
  if (v < 0) {
    v = internal::ParseBoolFlag(std::getenv("CIP_SPAWN_THREADS"))
                .value_or(false)
            ? 1
            : 0;
    internal::g_spawn_per_call.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

}  // namespace cip
