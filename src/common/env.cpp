#include "common/env.h"

#include <algorithm>
#include <cstdlib>

namespace cip {

double BenchScale() {
  static const double kScale = [] {
    if (const char* env = std::getenv("CIP_SCALE")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) return std::max(v, 0.1);
    }
    return 1.0;
  }();
  return kScale;
}

std::size_t Scaled(std::size_t nominal, std::size_t min_value) {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(nominal) * BenchScale());
  return std::max(scaled, min_value);
}

}  // namespace cip
