// Minimal data-parallel helper.
//
// ParallelFor splits [begin, end) into contiguous chunks and runs them on a
// small set of std::jthread workers. The grain is coarse (one chunk per
// worker) because callers in this library parallelize over batch/output rows
// where work per index is uniform. Honors the CIP_THREADS environment
// variable; defaults to hardware_concurrency capped at 8.
//
// Exception safety: if any worker throws, the first exception (by completion
// order) is captured and rethrown on the calling thread after all workers have
// joined; remaining workers stop at their next index. Indices at or after the
// throwing one may therefore be skipped, but every invocation of fn either
// completes or its exception reaches the caller — a worker never takes the
// process down via std::terminate.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

namespace cip {

/// Number of worker threads ParallelFor uses by default (>= 1). Reads
/// CIP_THREADS once; a malformed value (non-numeric, trailing garbage, zero,
/// negative, or > kMaxParallelThreads) is ignored in favor of the hardware
/// default.
std::size_t ParallelThreads();

/// Upper bound accepted from CIP_THREADS.
inline constexpr std::size_t kMaxParallelThreads = 256;

/// Run fn(i) for every i in [begin, end). fn must be safe to call
/// concurrently for distinct i. Falls back to serial execution for small
/// ranges or when only one thread is configured. Exceptions thrown by fn
/// propagate to the caller (see file comment).
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

/// Same, but with an explicit worker-thread budget (still clamped to the
/// range size). Used by stress tests to force multi-threaded execution
/// regardless of CIP_THREADS / core count.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t max_threads);

/// ParallelFor for coarse work items (e.g. one FL client's local training
/// round): spawns workers whenever the budget allows, without ParallelFor's
/// small-range serial fallback. A 4-item range at a budget of 4 really runs
/// on 4 threads. max_threads == 0 means ParallelThreads(). Same chunking,
/// determinism, and exception contract as ParallelFor.
void ParallelForCoarse(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t max_threads = 0);

namespace internal {

/// Strict parse of a CIP_THREADS-style value. Returns nullopt unless `s` is a
/// whole decimal integer in [1, kMaxParallelThreads] (leading whitespace per
/// strtol is accepted; trailing characters are not).
std::optional<std::size_t> ParseThreadCount(const char* s);

}  // namespace internal

}  // namespace cip
