// Minimal data-parallel helper backed by a persistent worker pool.
//
// ParallelFor splits [begin, end) into contiguous chunks and runs them on a
// lazily-started pool of persistent worker threads (condition-variable
// dispatch, idle workers parked between calls). The grain is coarse (one
// chunk per configured worker) because callers in this library parallelize
// over batch/output rows where work per index is uniform. Honors the
// CIP_THREADS environment variable; defaults to hardware_concurrency capped
// at 8.
//
// Pool lifecycle: the pool starts no threads until the first call that
// actually goes parallel; it grows on demand up to kMaxParallelThreads - 1
// workers (the calling thread always participates as the remaining runner)
// and is torn down — an in-flight region drained, then workers woken and
// joined — by a static destructor at process exit. Calls issued after
// teardown run serially. Threads other than the one running static
// destructors must not issue ParallelFor calls concurrently with process
// exit: teardown waits only for the region in flight, and a dispatch racing
// the destruction of the pool singleton itself is undefined. Setting
// CIP_SPAWN_THREADS=1 (see src/common/env.h) restores the legacy
// spawn-one-jthread-per-chunk-per-call dispatch; it exists as the reference
// point for the dispatch-overhead benchmarks in bench/bench_micro_ops.cpp.
//
// Chunking is deterministic: a call with budget T over n indices produces
// min(T, n) fixed contiguous chunks of ceil(n / min(T, n)) indices,
// independent of which worker executes which chunk. Every index is executed
// exactly once, so any fn writing to disjoint locations per index produces
// bit-identical results across budgets and across the pool/spawn paths.
//
// Nesting: a ParallelFor issued from inside a worker (or from a caller that
// is itself executing chunks) runs serially on that thread instead of
// re-entering the pool — nested calls can neither deadlock nor oversubscribe.
// The pool executes one region at a time, but independent top-level callers
// never block on each other: a caller that finds the pool busy dispatches
// that region via the spawn-per-call path instead (same chunk partition,
// bit-identical results). Concurrent regions therefore always progress
// independently, even when one region's fn waits on progress made by
// another region.
//
// Exception safety: if any invocation of fn throws, the first exception (by
// completion order) is captured and rethrown on the calling thread after
// every participating runner has finished; remaining runners stop at their
// next index. Indices at or after the throwing one may therefore be skipped,
// but every invocation of fn either completes or its exception reaches the
// caller — a worker never takes the process down via std::terminate, and the
// pool remains usable afterwards.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

namespace cip {

/// Number of worker threads ParallelFor uses by default (>= 1). Reads
/// CIP_THREADS once; a malformed value (non-numeric, trailing garbage, zero,
/// negative, or > kMaxParallelThreads) is ignored in favor of the hardware
/// default.
std::size_t ParallelThreads();

/// Upper bound accepted from CIP_THREADS, and the cap on persistent pool
/// workers (an explicit budget above it still chunks by the budget but runs
/// on at most this many threads).
inline constexpr std::size_t kMaxParallelThreads = 256;

/// Run fn(i) for every i in [begin, end). fn must be safe to call
/// concurrently for distinct i. Falls back to serial execution for small
/// ranges or when only one thread is configured. Exceptions thrown by fn
/// propagate to the caller (see file comment).
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

/// Same, but with an explicit worker-thread budget (still clamped to the
/// range size). Used by stress tests to force multi-threaded execution
/// regardless of CIP_THREADS / core count.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t max_threads);

/// ParallelFor for coarse work items (e.g. one FL client's local training
/// round): dispatches to the pool whenever the budget allows, without
/// ParallelFor's small-range serial fallback. A 4-item range at a budget of
/// 4 really runs on 4 concurrent runners. max_threads == 0 means
/// ParallelThreads(). Same chunking, determinism, and exception contract as
/// ParallelFor.
void ParallelForCoarse(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t max_threads = 0);

namespace internal {

/// Strict parse of a CIP_THREADS-style value. Returns nullopt unless `s` is a
/// whole decimal integer in [1, kMaxParallelThreads] (leading whitespace per
/// strtol is accepted; trailing characters are not).
std::optional<std::size_t> ParseThreadCount(const char* s);

/// True while the current thread is executing inside a parallel region —
/// either as a persistent pool worker or as a caller running its share of
/// chunks. Nested ParallelFor calls from such a thread run serially.
bool InParallelRegion();

/// Number of persistent workers the pool has started so far (0 until the
/// first parallel dispatch). Test/diagnostic hook.
std::size_t PoolWorkerCount();

}  // namespace internal

}  // namespace cip
