// Minimal data-parallel helper.
//
// parallel_for splits [begin, end) into contiguous chunks and runs them on a
// small set of std::jthread workers. The grain is coarse (one chunk per
// worker) because callers in this library parallelize over batch/output rows
// where work per index is uniform. Honors the CIP_THREADS environment
// variable; defaults to hardware_concurrency capped at 8.
#pragma once

#include <cstddef>
#include <functional>

namespace cip {

/// Number of worker threads parallel_for will use (>= 1).
std::size_t ParallelThreads();

/// Run fn(i) for every i in [begin, end). fn must be safe to call
/// concurrently for distinct i. Falls back to serial execution for small
/// ranges or when only one thread is configured.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

}  // namespace cip
