// Environment-variable knobs for benches (scale factor, verbosity).
#pragma once

#include <cstddef>

namespace cip {

/// CIP_SCALE (default 1.0, min 0.1): multiplies dataset sizes and round
/// counts in benches. Raise to approach paper scale; lower for smoke runs.
double BenchScale();

/// Scale a nominal count, keeping at least `min_value`.
std::size_t Scaled(std::size_t nominal, std::size_t min_value = 1);

}  // namespace cip
