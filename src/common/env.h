// Environment-variable knobs: bench scaling and kernel-path selection.
// README "Configuration" documents every variable in one place.
#pragma once

#include <cstddef>
#include <optional>

namespace cip {

/// CIP_SCALE (default 1.0, min 0.1): multiplies dataset sizes and round
/// counts in benches. Raise to approach paper scale; lower for smoke runs.
double BenchScale();

/// Scale a nominal count, keeping at least `min_value`.
std::size_t Scaled(std::size_t nominal, std::size_t min_value = 1);

/// CIP_NAIVE_CONV (default 0): when 1, Conv2d uses the reference direct
/// convolution loops instead of the im2col + GEMM fast path. Strict parsing:
/// only the exact strings "0" and "1" are honored; anything else is ignored
/// (fast path). Read once at first use; parity tests flip the path at
/// runtime via internal::SetNaiveConvForTesting.
bool NaiveConvEnabled();

/// CIP_SPAWN_THREADS (default 0): when 1, ParallelFor/ParallelForCoarse use
/// the legacy spawn-one-thread-per-chunk-per-call dispatch instead of the
/// persistent worker pool. Strict parsing: only the exact strings "0" and
/// "1" are honored; anything else is ignored (pool). Read once at first use;
/// the dispatch-overhead benchmarks flip the path at runtime via
/// internal::SetSpawnPerCallForTesting. Results are bit-identical across the
/// two paths — only dispatch latency differs.
bool SpawnPerCallEnabled();

namespace internal {

/// Strict parse of a 0/1 flag value. Returns nullopt unless `s` is exactly
/// "0" or "1".
std::optional<bool> ParseBoolFlag(const char* s);

/// Override NaiveConvEnabled() for the rest of the process, bypassing the
/// environment. For parity tests and the naive-vs-GEMM benches only.
void SetNaiveConvForTesting(bool enabled);

/// Override SpawnPerCallEnabled() for the rest of the process, bypassing the
/// environment. For the pool-vs-spawn dispatch benchmarks and stress tests
/// only.
void SetSpawnPerCallForTesting(bool enabled);

}  // namespace internal

}  // namespace cip
