// Environment-variable knobs: bench scaling and kernel-path selection.
// README "Configuration" documents every variable in one place.
#pragma once

#include <cstddef>
#include <optional>

namespace cip {

/// CIP_SCALE (default 1.0, min 0.1): multiplies dataset sizes and round
/// counts in benches. Raise to approach paper scale; lower for smoke runs.
double BenchScale();

/// Scale a nominal count, keeping at least `min_value`.
std::size_t Scaled(std::size_t nominal, std::size_t min_value = 1);

/// CIP_NAIVE_CONV (default 0): when 1, Conv2d uses the reference direct
/// convolution loops instead of the im2col + GEMM fast path. Strict parsing:
/// only the exact strings "0" and "1" are honored; anything else is ignored
/// (fast path). Read once at first use; parity tests flip the path at
/// runtime via internal::SetNaiveConvForTesting.
bool NaiveConvEnabled();

/// CIP_SPAWN_THREADS (default 0): when 1, ParallelFor/ParallelForCoarse use
/// the legacy spawn-one-thread-per-chunk-per-call dispatch instead of the
/// persistent worker pool. Strict parsing: only the exact strings "0" and
/// "1" are honored; anything else is ignored (pool). Read once at first use;
/// the dispatch-overhead benchmarks flip the path at runtime via
/// internal::SetSpawnPerCallForTesting. Results are bit-identical across the
/// two paths — only dispatch latency differs.
bool SpawnPerCallEnabled();

/// What CIP_ISA asked for. `kAuto` means "bind the best kernel the host
/// supports"; the explicit levels force that kernel (clamped down to what the
/// host supports — forcing avx512 on an AVX2-only box binds avx2's fallback
/// chain, never an illegal instruction).
enum class IsaRequest {
  kAuto = 0,
  kPortable = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// CIP_ISA (default auto): which GEMM microkernel ISA to bind. Strict
/// parsing: only the exact strings "auto", "portable", "avx2", "avx512" are
/// honored; anything else is ignored (auto). Read once at first use; the
/// dispatcher tests flip the request at runtime via
/// internal::SetIsaRequestForTesting. See docs/KERNELS.md for the full
/// dispatch flow.
IsaRequest IsaRequested();

namespace internal {

/// Strict parse of a 0/1 flag value. Returns nullopt unless `s` is exactly
/// "0" or "1".
std::optional<bool> ParseBoolFlag(const char* s);

/// Override NaiveConvEnabled() for the rest of the process, bypassing the
/// environment. For parity tests and the naive-vs-GEMM benches only.
void SetNaiveConvForTesting(bool enabled);

/// Override SpawnPerCallEnabled() for the rest of the process, bypassing the
/// environment. For the pool-vs-spawn dispatch benchmarks and stress tests
/// only.
void SetSpawnPerCallForTesting(bool enabled);

/// Strict parse of a CIP_ISA value. Returns nullopt unless `s` is exactly
/// one of "auto", "portable", "avx2", "avx512".
std::optional<IsaRequest> ParseIsaRequest(const char* s);

/// Override IsaRequested() for the rest of the process, bypassing the
/// environment. Callers that already bound a kernel are not rebound; pair
/// with ops::internal::ResetGemmBindingForTesting. For dispatcher tests and
/// the per-ISA benches only.
void SetIsaRequestForTesting(IsaRequest request);

}  // namespace internal

}  // namespace cip
