// Small statistics helpers shared by metrics, attacks and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cip {

/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const float> v);
/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> v);

/// Population variance (divides by n).
double Variance(std::span<const float> v);
/// Population standard deviation, sqrt(Variance); 0 for empty input.
double StdDev(std::span<const float> v);

/// q in [0, 1]; linear interpolation between order statistics.
double Quantile(std::vector<float> v, double q);

/// Quantile(v, 0.5); CHECK-fails on empty input.
double Median(std::vector<float> v);

/// Pearson correlation; returns 0 when either side is constant.
double PearsonCorrelation(std::span<const float> a, std::span<const float> b);

/// Normalized histogram over [lo, hi] with `bins` buckets; out-of-range
/// values are clamped into the edge buckets. Sums to 1 for non-empty input.
std::vector<double> Histogram(std::span<const float> v, double lo, double hi,
                              std::size_t bins);

}  // namespace cip
