#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace cip {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CIP_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  CIP_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << (c + 1 == header_.size() ? "|" : "+");
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace cip
