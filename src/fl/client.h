// FL client interface and the legacy (no-defense) client.
//
// A client owns its local data and local model; each round it receives the
// global ModelState, trains locally, and returns its updated state. The CIP
// client (src/core) and defense clients (src/defenses) implement the same
// interface so the server and the experiment harness are defense-agnostic.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "fl/model_state.h"
#include "fl/round_context.h"
#include "fl/trainer.h"
#include "nn/backbones.h"

namespace cip::fl {

/// A client's cross-round private state for checkpoint/resume: everything a
/// client carries *between* rounds that is not re-broadcast by the server
/// (optimizer momentum, the CIP secret perturbation t, …). The tensor layout
/// is client-kind-defined but stable: RestoreState on a freshly constructed
/// client of the same kind/config/seed reproduces subsequent TrainLocal
/// results bit-identically (see docs/ROBUSTNESS.md).
struct ClientState {
  std::vector<Tensor> tensors;
};

class ClientBase {
 public:
  virtual ~ClientBase() = default;

  /// Install the aggregated global model for the coming round.
  virtual void SetGlobal(const ModelState& global) = 0;

  /// Run one round of local training; returns the updated local state. The
  /// context carries this client's private RNG stream and the round's
  /// learning-rate scale; taken by value so the client may consume the
  /// stream freely. Must be safe to call concurrently on *distinct* client
  /// objects (the round engine trains sampled clients in parallel).
  virtual ModelState TrainLocal(RoundContext ctx) = 0;

  /// Client-side accuracy on a dataset using the client's own inference path
  /// (the CIP client blends inputs with its secret perturbation here).
  virtual double EvalAccuracy(const data::Dataset& data) = 0;

  /// Mean training loss of the most recent TrainLocal call.
  virtual float LastTrainLoss() const = 0;

  /// Local training data (members of this client, for attack evaluation).
  virtual const data::Dataset& LocalData() const = 0;

  /// Snapshot the client's cross-round private state (see ClientState). The
  /// default returns an empty state — correct only for clients that carry
  /// nothing between rounds; stateful clients must override this pair or
  /// checkpoint resume will silently restart their private state.
  virtual ClientState ExportState() const { return {}; }

  /// Install a snapshot produced by ExportState on the same client kind and
  /// configuration. The default accepts only an empty snapshot and throws
  /// cip::CheckError otherwise (a non-empty snapshot reaching a client that
  /// did not export one is a checkpoint/client mismatch).
  virtual void RestoreState(const ClientState& state);
};

/// Standard FedAvg client: single-channel classifier, plain SGD.
class LegacyClient : public ClientBase {
 public:
  /// `seed` is kept for constructor-shape uniformity across client kinds;
  /// round-time randomness comes exclusively from the RoundContext stream.
  LegacyClient(const nn::ModelSpec& spec, data::Dataset local_data,
               TrainConfig train_cfg, std::uint64_t seed);

  void SetGlobal(const ModelState& global) override;
  ModelState TrainLocal(RoundContext ctx) override;
  double EvalAccuracy(const data::Dataset& data) override;
  float LastTrainLoss() const override { return last_loss_; }
  const data::Dataset& LocalData() const override { return data_; }
  ClientState ExportState() const override;
  void RestoreState(const ClientState& state) override;

  /// The client's local model (mutable: evaluation helpers feed it).
  nn::Classifier& model() { return *model_; }

 private:
  std::unique_ptr<nn::Classifier> model_;
  data::Dataset data_;
  TrainConfig cfg_;
  optim::Sgd opt_;
  float last_loss_ = 0.0f;
};

/// Build a fresh ModelState with the initial weights of a spec (what the
/// server broadcasts at round 0).
ModelState InitialState(const nn::ModelSpec& spec);

}  // namespace cip::fl
