#include "fl/client_factory.h"

#include "common/check.h"

namespace cip::fl {

std::unique_ptr<core::CipClient> MakeCipClient(const ClientSpec& spec) {
  CIP_CHECK_MSG(spec.kind == ClientKind::kCip,
                "MakeCipClient requires ClientKind::kCip");
  core::CipConfig cfg = spec.cip;
  cfg.train = spec.train;
  return std::make_unique<core::CipClient>(spec.model, spec.data, cfg,
                                           spec.seed);
}

std::unique_ptr<ClientBase> MakeClient(const ClientSpec& spec) {
  switch (spec.kind) {
    case ClientKind::kLegacy:
      return std::make_unique<LegacyClient>(spec.model, spec.data, spec.train,
                                            spec.seed);
    case ClientKind::kCip:
      return MakeCipClient(spec);
    case ClientKind::kDpSgd:
      return std::make_unique<defenses::DpSgdClient>(
          spec.model, spec.data, spec.train, spec.dp, spec.seed);
    case ClientKind::kHdp:
      return std::make_unique<defenses::HdpClient>(
          spec.model, spec.data, spec.train, spec.dp, spec.seed,
          spec.hdp_feature_boost);
    case ClientKind::kAdvReg:
      CIP_CHECK_MSG(!spec.reference.empty(),
                    "ClientKind::kAdvReg needs ClientSpec.reference");
      return std::make_unique<defenses::ArClient>(spec.model, spec.data,
                                                  spec.reference, spec.train,
                                                  spec.ar, spec.seed);
    case ClientKind::kMixupMmd:
      CIP_CHECK_MSG(!spec.reference.empty(),
                    "ClientKind::kMixupMmd needs ClientSpec.reference");
      return std::make_unique<defenses::MixupMmdClient>(
          spec.model, spec.data, spec.reference, spec.train, spec.mm,
          spec.seed);
    case ClientKind::kRelaxLoss:
      return std::make_unique<defenses::RelaxLossClient>(
          spec.model, spec.data, spec.train, spec.rl, spec.seed);
  }
  CIP_CHECK_MSG(false, "unknown ClientKind");
  return nullptr;
}

ClientStore MakeClientStore(std::vector<ClientSpec> specs, StoreOptions opts) {
  CIP_CHECK_MSG(!specs.empty(), "MakeClientStore needs at least one spec");
  const std::size_t n = specs.size();
  // The factory owns the specs via a shared_ptr so the returned store stays
  // movable (std::function requires a copyable callable).
  auto shared = std::make_shared<std::vector<ClientSpec>>(std::move(specs));
  return ClientStore(
      n,
      [shared](std::size_t id) { return MakeClient((*shared)[id]); },
      std::move(opts));
}

ClientStore MakeClientStore(std::size_t num_clients,
                            std::function<ClientSpec(std::size_t)> spec_for,
                            StoreOptions opts) {
  CIP_CHECK_MSG(spec_for != nullptr, "MakeClientStore needs a spec function");
  return ClientStore(
      num_clients,
      [spec_for = std::move(spec_for)](std::size_t id) {
        return MakeClient(spec_for(id));
      },
      std::move(opts));
}

ModelState InitialStateFor(const ClientSpec& spec) {
  switch (spec.kind) {
    case ClientKind::kCip:
      return core::InitialDualState(spec.model);
    case ClientKind::kHdp:
      return defenses::HdpClient::InitialState(spec.model,
                                               spec.hdp_feature_boost);
    default:
      return InitialState(spec.model);
  }
}

}  // namespace cip::fl
