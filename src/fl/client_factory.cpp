#include "fl/client_factory.h"

#include "common/check.h"

namespace cip::fl {

std::unique_ptr<core::CipClient> MakeCipClient(const ClientSpec& spec) {
  CIP_CHECK_MSG(spec.kind == ClientKind::kCip,
                "MakeCipClient requires ClientKind::kCip");
  core::CipConfig cfg = spec.cip;
  cfg.train = spec.train;
  return std::make_unique<core::CipClient>(spec.model, spec.data, cfg,
                                           spec.seed);
}

std::unique_ptr<ClientBase> MakeClient(const ClientSpec& spec) {
  switch (spec.kind) {
    case ClientKind::kLegacy:
      return std::make_unique<LegacyClient>(spec.model, spec.data, spec.train,
                                            spec.seed);
    case ClientKind::kCip:
      return MakeCipClient(spec);
    case ClientKind::kDpSgd:
      return std::make_unique<defenses::DpSgdClient>(
          spec.model, spec.data, spec.train, spec.dp, spec.seed);
    case ClientKind::kHdp:
      return std::make_unique<defenses::HdpClient>(
          spec.model, spec.data, spec.train, spec.dp, spec.seed,
          spec.hdp_feature_boost);
    case ClientKind::kAdvReg:
      CIP_CHECK_MSG(!spec.reference.empty(),
                    "ClientKind::kAdvReg needs ClientSpec.reference");
      return std::make_unique<defenses::ArClient>(spec.model, spec.data,
                                                  spec.reference, spec.train,
                                                  spec.ar, spec.seed);
    case ClientKind::kMixupMmd:
      CIP_CHECK_MSG(!spec.reference.empty(),
                    "ClientKind::kMixupMmd needs ClientSpec.reference");
      return std::make_unique<defenses::MixupMmdClient>(
          spec.model, spec.data, spec.reference, spec.train, spec.mm,
          spec.seed);
    case ClientKind::kRelaxLoss:
      return std::make_unique<defenses::RelaxLossClient>(
          spec.model, spec.data, spec.train, spec.rl, spec.seed);
  }
  CIP_CHECK_MSG(false, "unknown ClientKind");
  return nullptr;
}

ModelState InitialStateFor(const ClientSpec& spec) {
  switch (spec.kind) {
    case ClientKind::kCip:
      return core::InitialDualState(spec.model);
    case ClientKind::kHdp:
      return defenses::HdpClient::InitialState(spec.model,
                                               spec.hdp_feature_boost);
    default:
      return InitialState(spec.model);
  }
}

}  // namespace cip::fl
