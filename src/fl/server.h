// FedAvg server with the hooks the paper's internal threat model needs.
//
// Threat model (Sec. II-C / IV-B): a malicious server sees every client's
// local model each round (passive attack surface) and may send back altered
// global models (active attack surface). Both capabilities are modeled as
// optional hooks so honest training and attacks share one code path.
//
// Round engine: each round the coordinator thread broadcasts (and possibly
// tampers) the global, samples participants, and builds one RoundContext per
// participant; the participants then train concurrently on ParallelForCoarse
// workers. Because every context's RNG stream is a pure function of
// (run seed, round, client index) and aggregation is a fixed-order serial
// reduction, results are bit-identical for any CIP_THREADS value.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fl/client.h"
#include "fl/model_state.h"
#include "fl/telemetry.h"

namespace cip::fl {

struct FlOptions {
  std::size_t rounds = 10;
  /// Fraction of clients sampled per round (FedAvg partial participation);
  /// at least one client always trains.
  float participation = 1.0f;
  /// Record every client's returned state each round (malicious-server
  /// passive observation; memory-heavy, off by default).
  bool record_client_updates = false;
  /// Record the aggregated global model at these rounds (1-based round
  /// indices, strictly increasing, each within [1, rounds]; the paper
  /// attacks "the last several iterations").
  std::vector<std::size_t> snapshot_rounds;
  /// Server-side learning-rate schedule broadcast to clients through
  /// RoundContext::lr_scale: multiply by lr_decay every lr_decay_every
  /// rounds (0 = off, scale stays 1).
  float lr_decay = 0.5f;
  std::size_t lr_decay_every = 0;
  /// Worker-thread budget for the per-round client phase; 0 means
  /// ParallelThreads() (i.e. CIP_THREADS / hardware default).
  std::size_t max_parallel_clients = 0;

  /// CHECK-fails (throws cip::CheckError) on out-of-domain settings; called
  /// by FederatedAveraging at construction and at the top of Run.
  void Validate() const;
};

struct FlLog {
  /// Aggregated global model after the final round.
  ModelState final_global;
  /// Globals at FlOptions::snapshot_rounds (same order).
  std::vector<ModelState> global_snapshots;
  /// [round][participant] client states, if record_client_updates (equal to
  /// [round][client] under full participation).
  std::vector<std::vector<ModelState>> client_updates;
  /// [round][client] mean local training loss.
  std::vector<std::vector<float>> client_losses;
  /// Per-round wall-clock and loss telemetry (always recorded; cheap).
  RoundTelemetry telemetry;
};

class FederatedAveraging {
 public:
  /// Called with the honest aggregate before broadcast; an active malicious
  /// server returns an altered state. (round is 1-based.)
  using GlobalTamper =
      std::function<ModelState(std::size_t round, const ModelState& honest)>;

  FederatedAveraging(ModelState initial, FlOptions options);

  void set_tamper(GlobalTamper tamper) { tamper_ = std::move(tamper); }

  /// Run the configured number of rounds over the given clients. run_seed is
  /// the root of every RNG stream in the run (participant sampling and each
  /// client's per-round stream); two runs with the same seed, clients, and
  /// options produce bit-identical logs regardless of thread count.
  FlLog Run(std::span<ClientBase* const> clients, std::uint64_t run_seed);

 private:
  ModelState global_;
  FlOptions options_;
  GlobalTamper tamper_;
};

}  // namespace cip::fl
