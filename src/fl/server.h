// FedAvg server with the hooks the paper's internal threat model needs.
//
// Threat model (Sec. II-C / IV-B): a malicious server sees every client's
// local model each round (passive attack surface) and may send back altered
// global models (active attack surface). Both capabilities are modeled as
// optional hooks so honest training and attacks share one code path.
#pragma once

#include <functional>
#include <vector>

#include "fl/client.h"
#include "fl/model_state.h"

namespace cip::fl {

struct FlOptions {
  std::size_t rounds = 10;
  /// Fraction of clients sampled per round (FedAvg partial participation);
  /// at least one client always trains.
  float participation = 1.0f;
  /// Record every client's returned state each round (malicious-server
  /// passive observation; memory-heavy, off by default).
  bool record_client_updates = false;
  /// Record the aggregated global model at these rounds (1-based round
  /// indices; the paper attacks "the last several iterations").
  std::vector<std::size_t> snapshot_rounds;
};

struct FlLog {
  /// Aggregated global model after the final round.
  ModelState final_global;
  /// Globals at FlOptions::snapshot_rounds (same order).
  std::vector<ModelState> global_snapshots;
  /// [round][participant] client states, if record_client_updates (equal to
  /// [round][client] under full participation).
  std::vector<std::vector<ModelState>> client_updates;
  /// [round][client] mean local training loss.
  std::vector<std::vector<float>> client_losses;
};

class FederatedAveraging {
 public:
  /// Called with the honest aggregate before broadcast; an active malicious
  /// server returns an altered state. (round is 1-based.)
  using GlobalTamper =
      std::function<ModelState(std::size_t round, const ModelState& honest)>;

  FederatedAveraging(ModelState initial, FlOptions options);

  void set_tamper(GlobalTamper tamper) { tamper_ = std::move(tamper); }

  /// Run the configured number of rounds over the given clients.
  FlLog Run(std::span<ClientBase* const> clients, Rng& rng);

 private:
  ModelState global_;
  FlOptions options_;
  GlobalTamper tamper_;
};

}  // namespace cip::fl
