// FedAvg server with the hooks the paper's internal threat model needs.
//
// Threat model (Sec. II-C / IV-B): a malicious server sees every client's
// local model each round (passive attack surface) and may send back altered
// global models (active attack surface). Both capabilities are modeled as
// optional hooks so honest training and attacks share one code path.
//
// Round engine: each round the coordinator thread broadcasts (and possibly
// tampers) the global, samples the cohort (fl/sampler.h: deterministic
// without-replacement sampling from a (run_seed, round)-derived stream),
// merges due retries, and materializes each sampled client from the
// ClientStore (fl/client_store.h); the cohort then trains concurrently on
// ParallelForCoarse workers drawn from the persistent pool
// (common/parallel.h). A client running on a pool worker is inside a
// parallel region, so the GEMM kernels it calls run serially inline on that
// worker — client-level parallelism is the outermost (and only) fan-out.
// Trained clients are evicted back to the store in ascending id order, and
// surviving updates stream through a fixed-order tree reduction
// (fl/aggregate.h). Because every context's RNG stream is a pure function
// of (run seed, round, client id) and every fold order is fixed, results
// are bit-identical for any CIP_THREADS value, either dispatch backend
// (pool or CIP_SPAWN_THREADS=1 spawn-per-call), any hot-set byte budget,
// and spilled-vs-resident client records. Server memory is O(hot budget +
// sampled cohort), never O(registered fleet).
//
// Fault tolerance: an FlOptions::faults plan injects deterministic client
// dropouts, mid-round failures and stragglers (fl/fault.h); the engine
// degrades gracefully by averaging the surviving updates (FedAvg weight
// renormalization falls out of the plain mean over survivors), skipping or
// aborting rounds that fall below min_quorum, and retrying faulted clients
// with bounded exponential backoff. A dropped-out client is never
// materialized (the device went offline before downloading the global); a
// mid-round failure trains and is evicted — its private state advanced even
// though the update was lost. Periodic checkpoints (fl/checkpoint.h) plus
// Resume() make crash-at-round-k + resume bit-identical to an uninterrupted
// run, including crashes while client records sit in shard files;
// docs/ROBUSTNESS.md and docs/SCALE.md spell out the semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/client_store.h"
#include "fl/fault.h"
#include "fl/model_state.h"
#include "fl/telemetry.h"

namespace cip::fl {

/// What the round engine does when a round's survivors fall below
/// FlOptions::min_quorum.
enum class QuorumPolicy {
  /// Skip aggregation: the global model is unchanged, the round is recorded
  /// with RoundStats::skipped = true, and the run continues.
  kSkipRound,
  /// Treat quorum loss as fatal: CHECK-fail (throws cip::CheckError).
  kAbort,
};

struct FlOptions {
  std::size_t rounds = 10;
  /// Fraction of clients sampled per round (FedAvg partial participation).
  /// The cohort size is floor(participation * num_clients) clamped to at
  /// least one client (fl/sampler.h) — a small fleet with a small fraction
  /// still trains someone every round.
  float participation = 1.0f;
  /// Record every client's returned state each round (malicious-server
  /// passive observation; memory-heavy, off by default). Only delivered
  /// updates are recorded — a dropped client's state never reaches the
  /// server, so it is not part of the observation surface.
  bool record_client_updates = false;
  /// Record the aggregated global model at these rounds (1-based round
  /// indices, strictly increasing, each within [1, rounds]; the paper
  /// attacks "the last several iterations").
  std::vector<std::size_t> snapshot_rounds;
  /// Server-side learning-rate schedule broadcast to clients through
  /// RoundContext::lr_scale: multiply by lr_decay every lr_decay_every
  /// rounds (0 = off, scale stays 1).
  float lr_decay = 0.5f;
  std::size_t lr_decay_every = 0;
  /// Worker-thread budget for the per-round client phase; 0 means
  /// ParallelThreads() (i.e. CIP_THREADS / hardware default).
  std::size_t max_parallel_clients = 0;

  /// Deterministic fault injection (dropouts / mid-round failures /
  /// stragglers); disabled by default. See fl/fault.h.
  FaultPlan faults;
  /// Per-round delivery deadline in *simulated* seconds. A straggler whose
  /// FaultPlan::straggler_delay_seconds exceeds this is dropped from the
  /// round; 0 disables the deadline (late updates are always accepted).
  /// Never compared against wall-clock — that would break bit-identity.
  double round_timeout_seconds = 0.0;
  /// Minimum surviving updates required to aggregate a round; rounds below
  /// it follow quorum_policy. At least 1 (an empty mean is undefined).
  std::size_t min_quorum = 1;
  /// What to do when survivors < min_quorum (skip the round by default).
  QuorumPolicy quorum_policy = QuorumPolicy::kSkipRound;
  /// Bounded retry of faulted clients: a client whose update was lost is
  /// re-invited up to max_retries times (0 disables retries), waiting
  /// retry_backoff_rounds * 2^(attempt-1) rounds between attempts.
  std::size_t max_retries = 0;
  std::size_t retry_backoff_rounds = 1;

  /// Write a Checkpoint to checkpoint_path after every checkpoint_every-th
  /// round (0 disables checkpointing). The file is overwritten in place;
  /// the run can later continue from it via FederatedAveraging::Resume.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Stop after this 1-based round, returning the partial log (0 = run to
  /// completion). Used to run in resumable chunks and, in tests, to
  /// simulate a crash at round k.
  std::size_t stop_after_round = 0;

  /// CHECK-fails (throws cip::CheckError) on out-of-domain settings.
  /// Called by FederatedAveraging at construction with the default
  /// num_clients = 0 (fleet-independent checks only), and again at the top
  /// of Run()/Resume() with the store's actual fleet size, which adds the
  /// fleet-dependent checks (min_quorum must be satisfiable).
  void Validate(std::size_t num_clients = 0) const;
};

struct FlLog {
  /// Aggregated global model after the final round.
  ModelState final_global;
  /// Globals at FlOptions::snapshot_rounds (same order).
  std::vector<ModelState> global_snapshots;
  /// [round][survivor] client states, if record_client_updates (equal to
  /// [round][client] under full participation with no faults).
  std::vector<std::vector<ModelState>> client_updates;
  /// [round][participant] mean local training loss, aligned with the
  /// round's sorted cohort (RoundStats::clients order; 0 for participants
  /// that did not deliver an update that round). O(cohort) per round — a
  /// million-client fleet does not appear here, only its sampled cohorts.
  std::vector<std::vector<float>> client_losses;
  /// Per-round wall-clock, loss, fault and store-lifecycle telemetry
  /// (always recorded; cheap). On Resume, covers only the resumed rounds.
  RoundTelemetry telemetry;
};

class FederatedAveraging {
 public:
  /// Called with the honest aggregate before broadcast; an active malicious
  /// server returns an altered state. (round is 1-based.)
  using GlobalTamper =
      std::function<ModelState(std::size_t round, const ModelState& honest)>;

  FederatedAveraging(ModelState initial, FlOptions options);

  /// Install a malicious-server hook applied to every round's aggregate.
  void set_tamper(GlobalTamper tamper) { tamper_ = std::move(tamper); }

  /// Run the configured number of rounds over the store's fleet. run_seed
  /// is the root of every RNG stream in the run (cohort sampling, each
  /// client's per-round stream, and fault decisions); two runs with the
  /// same seed, store contents, and options produce bit-identical logs
  /// regardless of thread count, hot-set budget, or spill configuration.
  FlLog Run(ClientStore& store, std::uint64_t run_seed);

  /// Continue an interrupted run from a checkpoint: restores the global
  /// model, the stateful clients' private state and the retry queue, then
  /// executes rounds [ckpt.next_round, rounds]. The store must describe the
  /// same fleet (same size, same per-id construction) as the run that wrote
  /// the checkpoint, and options.rounds must equal ckpt.total_rounds; the
  /// resumed tail is then bit-identical to the uninterrupted run's.
  FlLog Resume(ClientStore& store, const Checkpoint& ckpt);

 private:
  FlLog RunRounds(ClientStore& store, std::uint64_t run_seed,
                  std::size_t start_round, std::size_t telemetry_offset,
                  std::vector<RetryState> retries);

  ModelState global_;
  FlOptions options_;
  GlobalTamper tamper_;
};

}  // namespace cip::fl
