// Deterministic per-round cohort sampling for sparse client participation.
//
// Cross-device FL runs fleets far larger than any round's cohort: of a
// million registered clients only a sampled fraction trains each round. The
// sampler here is the single authority on who that is. It follows the
// DeriveStream discipline (common/rng.h): the cohort for a round is a pure
// function of (run_seed, round, fleet size, participation) — independent of
// thread budget, hot-set size, spill state and call order — so sampled runs
// stay bit-identical across every execution configuration, which is the
// invariant the round engine's tests pin.
//
// Rounding contract (the floor-with-minimum-one rule): a round samples
//   k = clamp(floor(participation * num_clients), 1, num_clients)
// clients, computed in double precision. Flooring in float used to truncate
// unpredictably (0.1f * 5 is not exactly 0.5) and a fraction rounding to
// zero clients was treated as a configuration error; the documented rule is
// now: any valid participation in (0, 1] trains at least one client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cip::fl {

/// Stream label reserved for participant sampling. Client training streams
/// use the client id as the label, so sampling draws from a stream no client
/// id (bounded far below 2^64 - 1) can collide with.
inline constexpr std::uint64_t kSamplingStream = ~std::uint64_t{0};

/// How many clients a round samples from a fleet of num_clients under the
/// floor-with-minimum-one rule above. CHECK-fails (throws cip::CheckError)
/// unless participation is in (0, 1] and num_clients >= 1.
std::size_t CohortSize(float participation, std::size_t num_clients);

/// The round's cohort: CohortSize distinct client ids in [0, num_clients),
/// sampled without replacement from DeriveStream(run_seed, round,
/// kSamplingStream) and returned sorted ascending. Cost is O(k) expected
/// time and memory (Floyd's algorithm), never O(num_clients), so sampling
/// 1k of 1M clients does not touch the fleet. Pure function of its
/// arguments: any party that knows the run seed reconstructs any round's
/// cohort in any order, on any thread.
std::vector<std::size_t> SampleCohort(std::uint64_t run_seed,
                                      std::size_t round,
                                      std::size_t num_clients,
                                      float participation);

}  // namespace cip::fl
