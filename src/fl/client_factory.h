// One-stop construction of FL clients.
//
// Experiment harnesses and table benches used to carry near-identical blocks
// that picked a client class, forwarded the right config struct, and built a
// matching initial broadcast state. ClientSpec folds all of that into one
// value: set `kind` plus the fields that kind reads, and MakeClient /
// InitialStateFor do the rest consistently everywhere.
//
// Lives in its own library (cip_fl_factory) because it sits *above* the
// concrete client libraries (cip_core, cip_defenses) in the dependency DAG,
// while the fl layer itself stays below them.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/cip_client.h"
#include "defenses/adv_reg.h"
#include "defenses/dp_sgd.h"
#include "defenses/hdp.h"
#include "defenses/mixup_mmd.h"
#include "defenses/relaxloss.h"
#include "fl/client.h"
#include "fl/client_store.h"

namespace cip::fl {

enum class ClientKind {
  kLegacy,    ///< plain FedAvg client
  kCip,       ///< the paper's input-perturbation defense
  kDpSgd,     ///< local DP-SGD
  kHdp,       ///< handcrafted-DP (frozen random features + private head)
  kAdvReg,    ///< adversarial regularization
  kMixupMmd,  ///< mixup + MMD
  kRelaxLoss  ///< RelaxLoss
};

struct ClientSpec {
  ClientKind kind = ClientKind::kLegacy;
  nn::ModelSpec model;
  data::Dataset data;  ///< the client's local (member) data
  /// Authoritative local-training settings for every kind; for kCip it is
  /// copied into cip.train so callers configure the LR/batch/epochs once.
  TrainConfig train;
  std::uint64_t seed = 0;
  /// Kind-specific knobs; only the one matching `kind` is read.
  core::CipConfig cip;
  defenses::DpConfig dp;
  defenses::ArConfig ar;
  defenses::MmConfig mm;
  defenses::RlConfig rl;
  /// Non-member data from the same distribution: kAdvReg's reference set,
  /// kMixupMmd's validation set. Ignored by other kinds.
  data::Dataset reference;
  /// kHdp random-feature width multiplier.
  std::size_t hdp_feature_boost = 16;
};

/// Construct a client of spec.kind.
std::unique_ptr<ClientBase> MakeClient(const ClientSpec& spec);

/// Typed variant for callers that need CipClient-only accessors
/// (perturbation(), BlendedDataLoss()). CHECK-fails unless kind == kCip.
std::unique_ptr<core::CipClient> MakeCipClient(const ClientSpec& spec);

/// The initial broadcast state matching spec.kind's model architecture
/// (dual-channel for kCip, random-feature net for kHdp, plain otherwise).
ModelState InitialStateFor(const ClientSpec& spec);

/// Cold ClientStore over explicit per-client specs: client id k is
/// MakeClient(specs[k]), rebuilt on demand each time k is sampled. Use for
/// small-to-medium fleets whose local datasets are cheap to keep around.
ClientStore MakeClientStore(std::vector<ClientSpec> specs,
                            StoreOptions opts = {});

/// Cold ClientStore over a spec function: client id k is
/// MakeClient(spec_for(k)), so a million-client fleet never holds a million
/// specs (or datasets) at once — spec_for typically derives the client's
/// data partition from an id-seeded generator. spec_for must be pure: the
/// same id must always yield the same spec, and it must be safe to call
/// from the coordinator at any round.
ClientStore MakeClientStore(std::size_t num_clients,
                            std::function<ClientSpec(std::size_t)> spec_for,
                            StoreOptions opts = {});

}  // namespace cip::fl
