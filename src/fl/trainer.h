// Local training and evaluation utilities for single-channel classifiers.
// These are the building blocks of the legacy (no-defense) FL client and of
// the training-perturbation baseline defenses.
#pragma once

#include "data/augment.h"
#include "data/dataset.h"
#include "nn/classifier.h"
#include "optim/optimizer.h"

namespace cip::fl {

struct TrainConfig {
  std::size_t batch_size = 32;  ///< paper: 32 for all cases
  std::size_t epochs = 1;       ///< local epochs per FL round (paper: 1)
  float lr = 1e-2f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  bool augment = false;         ///< CIFAR-AUG pipeline
  data::AugmentConfig aug;
  /// Piecewise-constant LR decay across FL rounds (paper: 1e-3 -> 5e-4 ->
  /// 1e-4 style). lr_decay_every = 0 disables.
  float lr_decay = 0.5f;
  std::size_t lr_decay_every = 0;
  /// Global-norm gradient clipping (0 = off). Stabilizes tiny non-i.i.d.
  /// federated runs against bad-init plateaus.
  float grad_clip = 5.0f;
};

/// The learning rate a client should use at a given (1-based) round.
float LrAtRound(const TrainConfig& cfg, std::size_t round);

/// One epoch of minibatch SGD; returns the mean training loss.
float TrainEpoch(nn::Classifier& model, const data::Dataset& data,
                 optim::Optimizer& opt, const TrainConfig& cfg, Rng& rng);

/// Top-1 accuracy on a dataset (eval mode, batched).
double Evaluate(nn::Classifier& model, const data::Dataset& data,
                std::size_t batch_size = 64);

/// Per-sample cross-entropy losses (eval mode, batched).
std::vector<float> PerSampleLosses(nn::Classifier& model,
                                   const data::Dataset& data,
                                   std::size_t batch_size = 64);

/// Batched logits for a full dataset (eval mode).
Tensor LogitsFor(nn::Classifier& model, const Tensor& inputs,
                 std::size_t batch_size = 64);

}  // namespace cip::fl
