#include "fl/query.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "fl/trainer.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"

namespace cip::fl {

namespace internal {

std::optional<std::size_t> ParseQueryBatch(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno == ERANGE) return std::nullopt;           // overflowed long
  if (end == s || *end != '\0') return std::nullopt;  // empty or trailing junk
  if (v < 1 || static_cast<unsigned long>(v) > kMaxQueryBatchRows) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(v);
}

}  // namespace internal

std::size_t DefaultQueryBatch() {
  static const std::size_t kBatch =
      internal::ParseQueryBatch(std::getenv("CIP_QUERY_BATCH")).value_or(64);
  return kBatch;
}

QueryOptions::QueryOptions() : batch_size(DefaultQueryBatch()) {}

void QueryOptions::Validate() const {
  CIP_CHECK_MSG(batch_size >= 1, "QueryOptions.batch_size must be >= 1");
  CIP_CHECK_MSG(batch_size <= kMaxQueryBatchRows,
                "QueryOptions.batch_size " << batch_size << " exceeds "
                                           << kMaxQueryBatchRows);
}

Tensor QueryModel::Probs(const Tensor& inputs) {
  LogitsInto(inputs, logits_scratch_);
  return ops::SoftmaxRows(logits_scratch_);
}

std::vector<int> QueryModel::Predict(const Tensor& inputs) {
  LogitsInto(inputs, logits_scratch_);
  return ops::ArgmaxRows(logits_scratch_);
}

std::vector<float> QueryModel::Losses(const data::Dataset& ds) {
  LogitsInto(ds.inputs, logits_scratch_);
  return ops::PerSampleCrossEntropy(logits_scratch_, ds.labels);
}

double QueryModel::Accuracy(const data::Dataset& ds) {
  return metrics::Accuracy(Predict(ds.inputs), ds.labels);
}

Tensor ClassifierQuery::Logits(const Tensor& inputs) {
  Tensor out;
  LogitsInto(inputs, out);
  return out;
}

void ClassifierQuery::LogitsInto(const Tensor& inputs, Tensor& out) {
  CIP_CHECK_GE(inputs.rank(), 2u);
  const std::size_t n = inputs.dim(0);
  const std::size_t classes = model_->num_classes();
  const std::size_t stride = n > 0 ? inputs.size() / n : 0;
  out.Resize({n, classes});
  float* pout = out.data();
  for (std::size_t start = 0; start < n; start += opts_.batch_size) {
    const std::size_t end = std::min(start + opts_.batch_size, n);
    batch_shape_.assign(1, end - start);
    batch_shape_.insert(batch_shape_.end(), inputs.shape().begin() + 1,
                        inputs.shape().end());
    batch_scratch_.Resize(batch_shape_);
    std::copy(inputs.data() + start * stride, inputs.data() + end * stride,
              batch_scratch_.data());
    // EvalForward is bit-identical to Forward(x, false) but computes into
    // each layer's persistent scratch, so re-querying reuses capacity.
    const Tensor& logits = model_->EvalForward(batch_scratch_);
    std::copy(logits.data(), logits.data() + (end - start) * classes,
              pout + start * classes);
  }
}

std::vector<float> ClassifierQuery::GradNorms(const data::Dataset& ds) {
  std::vector<float> out(ds.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  model_->ZeroGrad();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const data::Dataset one = ds.Subset(std::span(&i, 1));
    const Tensor logits = model_->Forward(one.inputs, /*train=*/true);
    Tensor dlogits;
    ops::SoftmaxCrossEntropy(logits, one.labels, &dlogits);
    model_->Backward(dlogits);
    double sq = 0.0;
    for (const nn::Parameter* p : params) {
      for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
    }
    out[i] = static_cast<float>(std::sqrt(sq));
    model_->ZeroGrad();
  }
  return out;
}

}  // namespace cip::fl
