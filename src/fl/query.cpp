#include "fl/query.h"

#include <cmath>

#include "fl/trainer.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"

namespace cip::fl {

Tensor QueryModel::Probs(const Tensor& inputs) {
  return ops::SoftmaxRows(Logits(inputs));
}

std::vector<int> QueryModel::Predict(const Tensor& inputs) {
  return ops::ArgmaxRows(Logits(inputs));
}

std::vector<float> QueryModel::Losses(const data::Dataset& ds) {
  return ops::PerSampleCrossEntropy(Logits(ds.inputs), ds.labels);
}

double QueryModel::Accuracy(const data::Dataset& ds) {
  return metrics::Accuracy(Predict(ds.inputs), ds.labels);
}

Tensor ClassifierQuery::Logits(const Tensor& inputs) {
  return LogitsFor(*model_, inputs, batch_size_);
}

std::vector<float> ClassifierQuery::GradNorms(const data::Dataset& ds) {
  std::vector<float> out(ds.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  model_->ZeroGrad();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const data::Dataset one = ds.Subset(std::span(&i, 1));
    const Tensor logits = model_->Forward(one.inputs, /*train=*/true);
    Tensor dlogits;
    ops::SoftmaxCrossEntropy(logits, one.labels, &dlogits);
    model_->Backward(dlogits);
    double sq = 0.0;
    for (const nn::Parameter* p : params) {
      for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
    }
    out[i] = static_cast<float>(std::sqrt(sq));
    model_->ZeroGrad();
  }
  return out;
}

}  // namespace cip::fl
