// Per-(round, client) context handed to ClientBase::TrainLocal.
//
// The old API threaded one shared mutable Rng& through every client, which
// made concurrent client execution a data race by construction. RoundContext
// replaces it with a value the coordinator builds per participant: the RNG
// stream inside is a pure function of (run seed, round, client index) — see
// DeriveStream in common/rng.h — so a client's randomness is identical
// whether rounds run serially or on CIP_THREADS workers, and bit-identical
// results across thread counts become a testable invariant instead of an
// accident of scheduling.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "fl/telemetry.h"
#include "fl/trainer.h"

namespace cip::fl {

struct RoundContext {
  std::size_t round = 1;         ///< 1-based round index
  std::size_t client_index = 0;  ///< index into the Run() clients span
  /// Server-side multiplier on the client's scheduled learning rate
  /// (FlOptions::lr_decay schedule; 1.0 when disabled).
  float lr_scale = 1.0f;
  /// Private RNG stream for this (round, client). Owned by the context;
  /// clients draw from it freely without touching any shared state.
  Rng rng{0};
  /// Optional sink for defense-internal timings (e.g. CIP Step I/II split).
  /// The server fills train_seconds/loss itself; may be null when TrainLocal
  /// is driven outside the round engine.
  ClientRoundStats* telemetry = nullptr;

  /// The learning rate a client should apply this round: the server's scale
  /// on top of the client's own piecewise schedule.
  float LrFor(const TrainConfig& cfg) const {
    return lr_scale * LrAtRound(cfg, round);
  }
};

/// Build the context the round engine hands to `client_index` in `round`.
/// Exposed so tests and benches that drive TrainLocal directly get the same
/// stream derivation as FederatedAveraging::Run.
inline RoundContext MakeRoundContext(std::uint64_t run_seed, std::size_t round,
                                     std::size_t client_index,
                                     float lr_scale = 1.0f) {
  RoundContext ctx;
  ctx.round = round;
  ctx.client_index = client_index;
  ctx.lr_scale = lr_scale;
  ctx.rng = DeriveStream(run_seed, round, client_index);
  return ctx;
}

}  // namespace cip::fl
