// Deprecated span-based FederatedAveraging entry points, isolated in their
// own TU (and allowlisted by the `client-vector` lint rule) so the rest of
// the library never touches a raw client span again. Each overload wraps the
// caller's span in a borrowed ClientStore — identical semantics to the
// pre-store API, including the final SetGlobal broadcast — and forwards to
// the store overload. Scheduled for removal one release after the
// ClientStore API landed.
#include "fl/client_store.h"
#include "fl/server.h"

namespace cip::fl {

FlLog FederatedAveraging::Run(std::span<ClientBase* const> clients,
                              std::uint64_t run_seed) {
  ClientStore store(clients);
  return Run(store, run_seed);
}

FlLog FederatedAveraging::Resume(std::span<ClientBase* const> clients,
                                 const Checkpoint& ckpt) {
  ClientStore store(clients);
  return Resume(store, ckpt);
}

}  // namespace cip::fl
