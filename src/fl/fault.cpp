#include "fl/fault.h"

#include "common/check.h"

namespace cip::fl {

namespace {

// Salt folded into the run seed before stream derivation so fault decisions
// live in a label space disjoint from client training streams (which use the
// raw run seed) and from participant sampling (label ~0 on the raw seed).
constexpr std::uint64_t kFaultSalt = 0xFA17FA17FA17FA17ull;

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kMidRoundFailure: return "mid_round_failure";
    case FaultKind::kStraggler: return "straggler";
  }
  return "unknown";
}

void FaultPlan::Validate() const {
  CIP_CHECK_MSG(dropout_rate >= 0.0f && dropout_rate <= 1.0f,
                "FaultPlan.dropout_rate must be in [0, 1]");
  CIP_CHECK_MSG(failure_rate >= 0.0f && failure_rate <= 1.0f,
                "FaultPlan.failure_rate must be in [0, 1]");
  CIP_CHECK_MSG(straggler_rate >= 0.0f && straggler_rate <= 1.0f,
                "FaultPlan.straggler_rate must be in [0, 1]");
  CIP_CHECK_MSG(dropout_rate + failure_rate + straggler_rate <= 1.0f,
                "FaultPlan rates must sum to <= 1 (they are exclusive "
                "outcomes of one round)");
  CIP_CHECK_MSG(straggler_delay_seconds >= 0.0,
                "FaultPlan.straggler_delay_seconds must be >= 0");
  for (const ForcedFault& f : forced) {
    CIP_CHECK_MSG(f.round >= 1, "ForcedFault.round is 1-based (got 0)");
  }
}

FaultKind FaultPlan::Decide(std::uint64_t run_seed, std::size_t round,
                            std::size_t client) const {
  for (const ForcedFault& f : forced) {
    if (f.round == round && f.client == client) return f.kind;
  }
  if (dropout_rate <= 0.0f && failure_rate <= 0.0f &&
      straggler_rate <= 0.0f) {
    return FaultKind::kNone;
  }
  // One uniform draw per (round, client) partitions [0, 1) into the three
  // fault bands plus the healthy remainder; a fresh derived stream makes the
  // decision order-free and non-interfering with training randomness.
  Rng rng = DeriveStream(SplitMix64(run_seed ^ kFaultSalt), round, client);
  const float u = rng.Uniform();
  if (u < dropout_rate) return FaultKind::kDropout;
  if (u < dropout_rate + failure_rate) return FaultKind::kMidRoundFailure;
  if (u < dropout_rate + failure_rate + straggler_rate) {
    return FaultKind::kStraggler;
  }
  return FaultKind::kNone;
}

}  // namespace cip::fl
