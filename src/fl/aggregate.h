// Streaming tree aggregation of client model updates.
//
// FedAvg's aggregate is a mean over the round's surviving updates. The naive
// left fold (out += update, repeated) keeps one running sum but accumulates
// float error linearly in the cohort size; holding all updates to reduce
// pairwise costs O(cohort) state held live through aggregation. The
// TreeAccumulator streams: updates are folded into a binomial-counter ladder
// of partial sums — slot i holds the sum of exactly 2^i consecutive inputs —
// so at most ceil(log2(count)) + 1 partial ModelStates are alive at once and
// the reduction tree has O(log count) depth for error growth.
//
// Determinism contract: the fold order is a fixed function of the input
// sequence alone (carry-propagate on arrival, then one fixed low-to-high
// merge in FinishMean). Feeding the same updates in the same order always
// produces the bit-identical mean, on any thread budget; both the round
// engine's per-round aggregate and ModelState::Average delegate here, so a
// log replay (bench_fault_rounds recomputes the aggregate from recorded
// client updates) reproduces the server's global exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "fl/model_state.h"

namespace cip::fl {

/// Order-deterministic streaming mean over ModelStates of one common size.
/// Add updates one by one (cheapest by rvalue), then call FinishMean once.
class TreeAccumulator {
 public:
  /// Fold one update into the ladder. All updates of one accumulation must
  /// be non-empty and of equal size (CHECK-failed on mismatch).
  void Add(ModelState update);

  /// Number of updates folded in so far.
  std::size_t count() const { return count_; }

  /// The element-wise mean of every added update; CHECK-fails when empty.
  /// Consumes the accumulator's state — reset to empty afterwards.
  ModelState FinishMean();

 private:
  std::vector<ModelState> levels_;  ///< levels_[i]: sum of 2^i inputs, or empty
  std::size_t count_ = 0;
};

}  // namespace cip::fl
