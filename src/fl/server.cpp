#include "fl/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"

namespace cip::fl {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  // CIP_ANALYZE_OK(det-wallclock): telemetry helper: durations land in RoundStats, never in round results
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Stream label for participant sampling; clients use their index as the
// label, so sampling gets one no client index can collide with.
constexpr std::uint64_t kSamplingStream = ~std::uint64_t{0};

// How many clients a round samples from a fleet of n. The no-silent-clamp
// rule lives in FlOptions::Validate(n): a fraction that truncates to zero is
// a configuration error, not something to round up behind the caller's back.
std::size_t SampledCount(float participation, std::size_t n) {
  if (participation >= 1.0f) return n;
  return static_cast<std::size_t>(participation * static_cast<float>(n));
}

}  // namespace

void FlOptions::Validate() const {
  CIP_CHECK_MSG(rounds > 0, "FlOptions.rounds must be >= 1");
  CIP_CHECK_MSG(participation > 0.0f && participation <= 1.0f,
                "FlOptions.participation must be in (0, 1]");
  std::size_t prev = 0;
  for (const std::size_t r : snapshot_rounds) {
    CIP_CHECK_MSG(r >= 1 && r <= rounds,
                  "FlOptions.snapshot_rounds entries must be 1-based rounds "
                  "in [1, rounds]");
    CIP_CHECK_MSG(r > prev,
                  "FlOptions.snapshot_rounds must be strictly increasing");
    prev = r;
  }
  CIP_CHECK_MSG(lr_decay > 0.0f && lr_decay <= 1.0f,
                "FlOptions.lr_decay must be in (0, 1]");
  faults.Validate();
  CIP_CHECK_MSG(round_timeout_seconds >= 0.0,
                "FlOptions.round_timeout_seconds must be >= 0");
  CIP_CHECK_MSG(min_quorum >= 1, "FlOptions.min_quorum must be >= 1");
  CIP_CHECK_MSG(max_retries == 0 || retry_backoff_rounds >= 1,
                "FlOptions.retry_backoff_rounds must be >= 1 when retries "
                "are enabled");
  CIP_CHECK_MSG(checkpoint_every == 0 || !checkpoint_path.empty(),
                "FlOptions.checkpoint_every needs a checkpoint_path");
  CIP_CHECK_MSG(stop_after_round == 0 || stop_after_round <= rounds,
                "FlOptions.stop_after_round must be within [1, rounds]");
}

void FlOptions::Validate(std::size_t num_clients) const {
  Validate();
  CIP_CHECK_MSG(num_clients > 0, "need at least one client");
  CIP_CHECK_MSG(SampledCount(participation, num_clients) >= 1,
                "FlOptions.participation = "
                    << participation << " samples zero of " << num_clients
                    << " clients per round; raise it (or add clients)");
  CIP_CHECK_MSG(min_quorum <= num_clients,
                "FlOptions.min_quorum = " << min_quorum
                                          << " can never be met by "
                                          << num_clients << " clients");
}

FederatedAveraging::FederatedAveraging(ModelState initial, FlOptions options)
    : global_(std::move(initial)), options_(std::move(options)) {
  options_.Validate();
  CIP_CHECK(!global_.empty());
}

FlLog FederatedAveraging::Run(std::span<ClientBase* const> clients,
                              std::uint64_t run_seed) {
  return RunRounds(clients, run_seed, /*start_round=*/1,
                   /*telemetry_offset=*/0, /*retries=*/{});
}

FlLog FederatedAveraging::Resume(std::span<ClientBase* const> clients,
                                 const Checkpoint& ckpt) {
  options_.Validate(clients.size());
  CIP_CHECK_MSG(ckpt.total_rounds == options_.rounds,
                "checkpoint is from a " << ckpt.total_rounds
                                        << "-round run; FlOptions.rounds is "
                                        << options_.rounds);
  CIP_CHECK_MSG(ckpt.clients.size() == clients.size(),
                "checkpoint holds " << ckpt.clients.size()
                                    << " client states for a fleet of "
                                    << clients.size());
  CIP_CHECK(!ckpt.global.empty());
  global_ = ckpt.global;
  for (std::size_t k = 0; k < clients.size(); ++k) {
    clients[k]->RestoreState(ckpt.clients[k]);
  }
  return RunRounds(clients, ckpt.run_seed, ckpt.next_round,
                   ckpt.telemetry_rounds, ckpt.retries);
}

FlLog FederatedAveraging::RunRounds(std::span<ClientBase* const> clients,
                                    std::uint64_t run_seed,
                                    std::size_t start_round,
                                    std::size_t telemetry_offset,
                                    std::vector<RetryState> retries) {
  options_.Validate(clients.size());
  const bool faults_on = options_.faults.enabled();
  const std::size_t last_round =
      options_.stop_after_round > 0 ? options_.stop_after_round
                                    : options_.rounds;
  FlLog log;
  for (std::size_t round = start_round; round <= last_round; ++round) {
    RoundStats stats;
    stats.round = round;
    // --- Coordinator: broadcast (possibly tampered) global and sample this
    // round's participants (FedAvg partial participation), then merge in
    // faulted clients whose retry backoff has elapsed.
    // CIP_ANALYZE_OK(det-wallclock): telemetry: broadcast duration recorded in RoundStats
    const auto broadcast_t0 = Clock::now();
    const ModelState broadcast =
        tamper_ ? tamper_(round, global_) : global_;
    std::vector<std::size_t> participants;
    if (options_.participation >= 1.0f) {
      for (std::size_t k = 0; k < clients.size(); ++k) participants.push_back(k);
    } else {
      const std::size_t count =
          SampledCount(options_.participation, clients.size());
      Rng sample_rng = DeriveStream(run_seed, round, kSamplingStream);
      participants =
          sample_rng.SampleWithoutReplacement(clients.size(), count);
      std::sort(participants.begin(), participants.end());
    }
    // An entry is "due" while the client still has retry budget left;
    // exhausted entries stay in the queue (so fresh faults cannot restart
    // the cycle) until a successful delivery clears them.
    const auto retry_due = [&](std::size_t k) {
      for (const RetryState& r : retries) {
        if (r.client == k && r.attempts <= options_.max_retries &&
            r.next_round <= round) {
          return true;
        }
      }
      return false;
    };
    if (!retries.empty()) {
      bool merged = false;
      for (const RetryState& r : retries) {
        if (r.attempts <= options_.max_retries && r.next_round <= round &&
            std::find(participants.begin(), participants.end(), r.client) ==
                participants.end()) {
          participants.push_back(r.client);
          merged = true;
        }
      }
      if (merged) std::sort(participants.begin(), participants.end());
    }
    stats.broadcast_seconds = SecondsSince(broadcast_t0);

    // --- Parallel client phase, dispatched onto the persistent worker pool.
    // Each worker touches only its own client, its own updates/stats slot,
    // and its own losses element; the RNG stream in each context is derived
    // from (run_seed, round, client index), fault decisions from the same
    // triple through a salted stream, so the result is independent of how —
    // or on which dispatch backend — workers are scheduled.
    float lr_scale = 1.0f;
    if (options_.lr_decay_every != 0) {
      const auto steps =
          static_cast<float>((round - 1) / options_.lr_decay_every);
      lr_scale = std::pow(options_.lr_decay, steps);
    }
    const std::size_t m = participants.size();
    std::vector<ModelState> updates(m);
    std::vector<float> losses(clients.size(), 0.0f);
    stats.clients.resize(m);
    // CIP_ANALYZE_OK(det-wallclock): telemetry: per-round train duration recorded in RoundStats
    const auto train_t0 = Clock::now();
    ParallelForCoarse(
        0, m,
        [&](std::size_t i) {
          const std::size_t k = participants[i];
          ClientRoundStats& cs = stats.clients[i];
          cs.round = round;
          cs.client = k;
          cs.retried = retry_due(k);
          const FaultKind fault =
              faults_on ? options_.faults.Decide(run_seed, round, k)
                        : FaultKind::kNone;
          cs.fault = fault;
          if (fault == FaultKind::kDropout) {
            // Device went offline before training started: no local work,
            // no update, no loss report.
            cs.dropped = true;
            return;
          }
          RoundContext ctx = MakeRoundContext(run_seed, round, k, lr_scale);
          ctx.telemetry = &cs;
          // CIP_ANALYZE_OK(det-wallclock): telemetry: per-client train duration recorded in RoundStats
          const auto client_t0 = Clock::now();
          clients[k]->SetGlobal(broadcast);
          updates[i] = clients[k]->TrainLocal(std::move(ctx));
          cs.train_seconds = SecondsSince(client_t0);
          if (fault == FaultKind::kMidRoundFailure ||
              (fault == FaultKind::kStraggler &&
               options_.round_timeout_seconds > 0.0 &&
               options_.faults.straggler_delay_seconds >
                   options_.round_timeout_seconds)) {
            // The client trained (its private state advanced) but the server
            // never received the update: crashed before upload, or delivered
            // past the round deadline.
            updates[i] = ModelState();
            cs.dropped = true;
            return;
          }
          cs.loss = clients[k]->LastTrainLoss();
          losses[k] = cs.loss;
        },
        options_.max_parallel_clients);
    stats.train_wall_seconds = SecondsSince(train_t0);

    // --- Coordinator: deterministic fixed-order reduction over survivors.
    // The plain mean over survivors *is* the renormalized FedAvg aggregate:
    // each survivor's weight grows from 1/m to 1/survivors.
    // CIP_ANALYZE_OK(det-wallclock): telemetry: aggregation duration recorded in RoundStats
    const auto aggregate_t0 = Clock::now();
    std::vector<ModelState> survivors;
    survivors.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      if (!stats.clients[i].dropped) survivors.push_back(std::move(updates[i]));
    }
    stats.survivors = survivors.size();
    if (survivors.size() < options_.min_quorum) {
      CIP_CHECK_MSG(options_.quorum_policy != QuorumPolicy::kAbort,
                    "round " << round << " lost quorum: " << survivors.size()
                             << " survivors < min_quorum "
                             << options_.min_quorum);
      // Below quorum with kSkipRound: the global model is carried over
      // unchanged and the round is recorded as skipped.
      stats.skipped = true;
    } else {
      global_ = ModelState::Average(survivors);
    }
    stats.aggregate_seconds = SecondsSince(aggregate_t0);

    // --- Retry bookkeeping (serial): successful delivery clears a pending
    // entry; a lost update schedules (or reschedules) one with exponential
    // backoff until the attempt budget runs out.
    if (options_.max_retries > 0 || !retries.empty()) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t k = participants[i];
        auto it = std::find_if(
            retries.begin(), retries.end(),
            [k](const RetryState& r) { return r.client == k; });
        if (!stats.clients[i].dropped) {
          if (it != retries.end()) retries.erase(it);
          continue;
        }
        if (options_.max_retries == 0) continue;
        if (it == retries.end()) {
          retries.push_back(RetryState{k, 0, 0});
          it = retries.end() - 1;
        }
        ++it->attempts;
        if (it->attempts <= options_.max_retries) {
          it->next_round =
              round + (options_.retry_backoff_rounds << (it->attempts - 1));
        }
        // Past the budget the entry is kept as exhausted (never due) so the
        // client is not re-enrolled until it delivers an update again.
      }
    }

    log.client_losses.push_back(std::move(losses));
    if (options_.record_client_updates) {
      log.client_updates.push_back(std::move(survivors));
    }
    if (std::find(options_.snapshot_rounds.begin(),
                  options_.snapshot_rounds.end(),
                  round) != options_.snapshot_rounds.end()) {
      log.global_snapshots.push_back(global_);
    }
    log.telemetry.rounds.push_back(std::move(stats));

    if (options_.checkpoint_every > 0 &&
        (round % options_.checkpoint_every == 0 || round == last_round)) {
      Checkpoint ckpt;
      ckpt.run_seed = run_seed;
      ckpt.total_rounds = options_.rounds;
      ckpt.next_round = round + 1;
      ckpt.telemetry_rounds = telemetry_offset + log.telemetry.rounds.size();
      ckpt.global = global_;
      ckpt.clients.reserve(clients.size());
      for (const ClientBase* client : clients) {
        ckpt.clients.push_back(client->ExportState());
      }
      ckpt.retries = retries;
      SaveCheckpointFile(ckpt, options_.checkpoint_path);
    }
  }
  // Clients see the final aggregate (inference uses the global model).
  for (ClientBase* client : clients) client->SetGlobal(global_);
  log.final_global = global_;
  return log;
}

}  // namespace cip::fl
