#include "fl/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "fl/aggregate.h"
#include "fl/sampler.h"

namespace cip::fl {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  // CIP_ANALYZE_OK(det-wallclock): telemetry helper: durations land in RoundStats, never in round results
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

void FlOptions::Validate(std::size_t num_clients) const {
  CIP_CHECK_MSG(rounds > 0, "FlOptions.rounds must be >= 1");
  CIP_CHECK_MSG(participation > 0.0f && participation <= 1.0f,
                "FlOptions.participation must be in (0, 1]");
  std::size_t prev = 0;
  for (const std::size_t r : snapshot_rounds) {
    CIP_CHECK_MSG(r >= 1 && r <= rounds,
                  "FlOptions.snapshot_rounds entries must be 1-based rounds "
                  "in [1, rounds]");
    CIP_CHECK_MSG(r > prev,
                  "FlOptions.snapshot_rounds must be strictly increasing");
    prev = r;
  }
  CIP_CHECK_MSG(lr_decay > 0.0f && lr_decay <= 1.0f,
                "FlOptions.lr_decay must be in (0, 1]");
  faults.Validate();
  CIP_CHECK_MSG(round_timeout_seconds >= 0.0,
                "FlOptions.round_timeout_seconds must be >= 0");
  CIP_CHECK_MSG(min_quorum >= 1, "FlOptions.min_quorum must be >= 1");
  CIP_CHECK_MSG(max_retries == 0 || retry_backoff_rounds >= 1,
                "FlOptions.retry_backoff_rounds must be >= 1 when retries "
                "are enabled");
  CIP_CHECK_MSG(checkpoint_every == 0 || !checkpoint_path.empty(),
                "FlOptions.checkpoint_every needs a checkpoint_path");
  CIP_CHECK_MSG(stop_after_round == 0 || stop_after_round <= rounds,
                "FlOptions.stop_after_round must be within [1, rounds]");
  // Fleet-dependent checks, skipped for the fleet-independent construction
  // pass (num_clients == 0). Note there is no zero-cohort rejection any
  // more: CohortSize clamps to at least one sampled client.
  if (num_clients == 0) return;
  CIP_CHECK_MSG(min_quorum <= num_clients,
                "FlOptions.min_quorum = " << min_quorum
                                          << " can never be met by "
                                          << num_clients << " clients");
}

FederatedAveraging::FederatedAveraging(ModelState initial, FlOptions options)
    : global_(std::move(initial)), options_(std::move(options)) {
  options_.Validate();
  CIP_CHECK(!global_.empty());
}

FlLog FederatedAveraging::Run(ClientStore& store, std::uint64_t run_seed) {
  return RunRounds(store, run_seed, /*start_round=*/1,
                   /*telemetry_offset=*/0, /*retries=*/{});
}

FlLog FederatedAveraging::Resume(ClientStore& store, const Checkpoint& ckpt) {
  options_.Validate(store.num_clients());
  CIP_CHECK_MSG(ckpt.total_rounds == options_.rounds,
                "checkpoint is from a " << ckpt.total_rounds
                                        << "-round run; FlOptions.rounds is "
                                        << options_.rounds);
  CIP_CHECK(!ckpt.global.empty());
  global_ = ckpt.global;
  // The store rejects checkpoint ids outside its fleet — the sparse v2
  // analogue of the old dense size-mismatch check.
  store.RestoreStates(ckpt.client_states);
  return RunRounds(store, ckpt.run_seed, ckpt.next_round,
                   ckpt.telemetry_rounds, ckpt.retries);
}

FlLog FederatedAveraging::RunRounds(ClientStore& store, std::uint64_t run_seed,
                                    std::size_t start_round,
                                    std::size_t telemetry_offset,
                                    std::vector<RetryState> retries) {
  options_.Validate(store.num_clients());
  const bool faults_on = options_.faults.enabled();
  const std::size_t last_round =
      options_.stop_after_round > 0 ? options_.stop_after_round
                                    : options_.rounds;
  FlLog log;
  for (std::size_t round = start_round; round <= last_round; ++round) {
    RoundStats stats;
    stats.round = round;
    const StoreStats store_before = store.stats();
    // --- Coordinator: broadcast (possibly tampered) global and sample this
    // round's cohort (fl/sampler.h), then merge in faulted clients whose
    // retry backoff has elapsed.
    // CIP_ANALYZE_OK(det-wallclock): telemetry: broadcast duration recorded in RoundStats
    const auto broadcast_t0 = Clock::now();
    const ModelState broadcast =
        tamper_ ? tamper_(round, global_) : global_;
    std::vector<std::size_t> participants = SampleCohort(
        run_seed, round, store.num_clients(), options_.participation);
    // An entry is "due" while the client still has retry budget left;
    // exhausted entries stay in the queue (so fresh faults cannot restart
    // the cycle) until a successful delivery clears them.
    const auto retry_due = [&](std::size_t k) {
      for (const RetryState& r : retries) {
        if (r.client == k && r.attempts <= options_.max_retries &&
            r.next_round <= round) {
          return true;
        }
      }
      return false;
    };
    if (!retries.empty()) {
      bool merged = false;
      for (const RetryState& r : retries) {
        if (r.attempts <= options_.max_retries && r.next_round <= round &&
            std::find(participants.begin(), participants.end(), r.client) ==
                participants.end()) {
          participants.push_back(r.client);
          merged = true;
        }
      }
      if (merged) std::sort(participants.begin(), participants.end());
    }

    // --- Coordinator: fault decisions and cohort materialization, serial
    // (the store is coordinator-only). A dropout went offline before it
    // could download the global, so it is never materialized; everyone else
    // becomes a live client for the duration of the round.
    const std::size_t m = participants.size();
    std::vector<ClientStore::Handle> cohort(m);
    stats.clients.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t k = participants[i];
      ClientRoundStats& cs = stats.clients[i];
      cs.round = round;
      cs.client = k;
      cs.retried = retry_due(k);
      cs.fault = faults_on ? options_.faults.Decide(run_seed, round, k)
                           : FaultKind::kNone;
      if (cs.fault == FaultKind::kDropout) {
        // Device went offline before training started: no local work, no
        // update, no loss report.
        cs.dropped = true;
        continue;
      }
      cohort[i] = store.Materialize(k);
    }
    stats.broadcast_seconds = SecondsSince(broadcast_t0);

    // --- Parallel client phase, dispatched onto the persistent worker pool.
    // Each worker touches only its own materialized client, its own
    // updates/stats slot, and its own losses element; the RNG stream in
    // each context is derived from (run_seed, round, client id), so the
    // result is independent of how — or on which dispatch backend — workers
    // are scheduled.
    float lr_scale = 1.0f;
    if (options_.lr_decay_every != 0) {
      const auto steps =
          static_cast<float>((round - 1) / options_.lr_decay_every);
      lr_scale = std::pow(options_.lr_decay, steps);
    }
    std::vector<ModelState> updates(m);
    std::vector<float> losses(m, 0.0f);
    // CIP_ANALYZE_OK(det-wallclock): telemetry: per-round train duration recorded in RoundStats
    const auto train_t0 = Clock::now();
    ParallelForCoarse(
        0, m,
        [&](std::size_t i) {
          ClientBase* client = cohort[i].get();
          if (client == nullptr) return;  // dropout: never materialized
          const std::size_t k = participants[i];
          ClientRoundStats& cs = stats.clients[i];
          RoundContext ctx = MakeRoundContext(run_seed, round, k, lr_scale);
          ctx.telemetry = &cs;
          // CIP_ANALYZE_OK(det-wallclock): telemetry: per-client train duration recorded in RoundStats
          const auto client_t0 = Clock::now();
          client->SetGlobal(broadcast);
          updates[i] = client->TrainLocal(std::move(ctx));
          cs.train_seconds = SecondsSince(client_t0);
          if (cs.fault == FaultKind::kMidRoundFailure ||
              (cs.fault == FaultKind::kStraggler &&
               options_.round_timeout_seconds > 0.0 &&
               options_.faults.straggler_delay_seconds >
                   options_.round_timeout_seconds)) {
            // The client trained (its private state advanced) but the server
            // never received the update: crashed before upload, or delivered
            // past the round deadline.
            updates[i] = ModelState();
            cs.dropped = true;
            return;
          }
          cs.loss = client->LastTrainLoss();
          losses[i] = cs.loss;
        },
        options_.max_parallel_clients);
    stats.train_wall_seconds = SecondsSince(train_t0);

    // --- Coordinator: evict the cohort back into the store in ascending id
    // order (participants are sorted, so index order is id order). A
    // mid-round failure is evicted too: its update was lost but its private
    // state advanced — exactly what a real device that crashed after
    // training would carry into its next participation.
    for (std::size_t i = 0; i < m; ++i) {
      if (cohort[i]) {
        store.Evict(participants[i], *cohort[i]);
        cohort[i] = ClientStore::Handle();
      }
    }

    // --- Coordinator: deterministic fixed-order tree reduction over
    // survivors (fl/aggregate.h), streaming so at most O(log survivors)
    // partial sums are alive. The plain mean over survivors *is* the
    // renormalized FedAvg aggregate: each survivor's weight grows from 1/m
    // to 1/survivors.
    // CIP_ANALYZE_OK(det-wallclock): telemetry: aggregation duration recorded in RoundStats
    const auto aggregate_t0 = Clock::now();
    std::size_t survived = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (!stats.clients[i].dropped) ++survived;
    }
    stats.survivors = survived;
    std::vector<ModelState> survivors;
    if (options_.record_client_updates) survivors.reserve(survived);
    if (survived < options_.min_quorum) {
      CIP_CHECK_MSG(options_.quorum_policy != QuorumPolicy::kAbort,
                    "round " << round << " lost quorum: " << survived
                             << " survivors < min_quorum "
                             << options_.min_quorum);
      // Below quorum with kSkipRound: the global model is carried over
      // unchanged and the round is recorded as skipped.
      stats.skipped = true;
      if (options_.record_client_updates) {
        for (std::size_t i = 0; i < m; ++i) {
          if (!stats.clients[i].dropped) {
            survivors.push_back(std::move(updates[i]));
          }
        }
      }
    } else {
      TreeAccumulator acc;
      for (std::size_t i = 0; i < m; ++i) {
        if (stats.clients[i].dropped) continue;
        if (options_.record_client_updates) {
          acc.Add(updates[i]);
          survivors.push_back(std::move(updates[i]));
        } else {
          acc.Add(std::move(updates[i]));
        }
      }
      global_ = acc.FinishMean();
    }
    stats.aggregate_seconds = SecondsSince(aggregate_t0);

    // --- Retry bookkeeping (serial): successful delivery clears a pending
    // entry; a lost update schedules (or reschedules) one with exponential
    // backoff until the attempt budget runs out.
    if (options_.max_retries > 0 || !retries.empty()) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t k = participants[i];
        auto it = std::find_if(
            retries.begin(), retries.end(),
            [k](const RetryState& r) { return r.client == k; });
        if (!stats.clients[i].dropped) {
          if (it != retries.end()) retries.erase(it);
          continue;
        }
        if (options_.max_retries == 0) continue;
        if (it == retries.end()) {
          retries.push_back(RetryState{k, 0, 0});
          it = retries.end() - 1;
        }
        ++it->attempts;
        if (it->attempts <= options_.max_retries) {
          it->next_round =
              round + (options_.retry_backoff_rounds << (it->attempts - 1));
        }
        // Past the budget the entry is kept as exhausted (never due) so the
        // client is not re-enrolled until it delivers an update again.
      }
    }

    const StoreStats store_after = store.stats();
    stats.store_hot_hits = store_after.hot_hits - store_before.hot_hits;
    stats.store_cold_loads = store_after.cold_loads - store_before.cold_loads;
    stats.store_evictions = store_after.evictions - store_before.evictions;
    stats.store_spills = store_after.spills - store_before.spills;

    log.client_losses.push_back(std::move(losses));
    if (options_.record_client_updates) {
      log.client_updates.push_back(std::move(survivors));
    }
    if (std::find(options_.snapshot_rounds.begin(),
                  options_.snapshot_rounds.end(),
                  round) != options_.snapshot_rounds.end()) {
      log.global_snapshots.push_back(global_);
    }
    log.telemetry.rounds.push_back(std::move(stats));

    if (options_.checkpoint_every > 0 &&
        (round % options_.checkpoint_every == 0 || round == last_round)) {
      Checkpoint ckpt;
      ckpt.run_seed = run_seed;
      ckpt.total_rounds = options_.rounds;
      ckpt.next_round = round + 1;
      ckpt.telemetry_rounds = telemetry_offset + log.telemetry.rounds.size();
      ckpt.global = global_;
      // Sparse export: O(stateful participants), reading spilled records
      // straight from their shards — a crash while clients sit on disk
      // resumes from exactly the bytes that were spilled.
      ckpt.client_states = store.ExportStates();
      ckpt.retries = retries;
      SaveCheckpointFile(ckpt, options_.checkpoint_path);
    }
  }
  // Persistent clients see the final aggregate (inference uses the global
  // model); a cold store keeps it in the log/checkpoint instead.
  store.BroadcastFinal(global_);
  log.final_global = global_;
  return log;
}

}  // namespace cip::fl
