#include "fl/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace cip::fl {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Stream label for participant sampling; clients use their index as the
// label, so sampling gets one no client index can collide with.
constexpr std::uint64_t kSamplingStream = ~std::uint64_t{0};

}  // namespace

void FlOptions::Validate() const {
  CIP_CHECK_MSG(rounds > 0, "FlOptions.rounds must be >= 1");
  CIP_CHECK_MSG(participation > 0.0f && participation <= 1.0f,
                "FlOptions.participation must be in (0, 1]");
  std::size_t prev = 0;
  for (const std::size_t r : snapshot_rounds) {
    CIP_CHECK_MSG(r >= 1 && r <= rounds,
                  "FlOptions.snapshot_rounds entries must be 1-based rounds "
                  "in [1, rounds]");
    CIP_CHECK_MSG(r > prev,
                  "FlOptions.snapshot_rounds must be strictly increasing");
    prev = r;
  }
  CIP_CHECK_MSG(lr_decay > 0.0f && lr_decay <= 1.0f,
                "FlOptions.lr_decay must be in (0, 1]");
}

FederatedAveraging::FederatedAveraging(ModelState initial, FlOptions options)
    : global_(std::move(initial)), options_(std::move(options)) {
  options_.Validate();
  CIP_CHECK(!global_.empty());
}

FlLog FederatedAveraging::Run(std::span<ClientBase* const> clients,
                              std::uint64_t run_seed) {
  options_.Validate();
  CIP_CHECK(!clients.empty());
  FlLog log;
  for (std::size_t round = 1; round <= options_.rounds; ++round) {
    RoundStats stats;
    stats.round = round;
    // --- Coordinator: broadcast (possibly tampered) global and sample this
    // round's participants (FedAvg partial participation).
    const auto broadcast_t0 = Clock::now();
    const ModelState broadcast =
        tamper_ ? tamper_(round, global_) : global_;
    std::vector<std::size_t> participants;
    if (options_.participation >= 1.0f) {
      for (std::size_t k = 0; k < clients.size(); ++k) participants.push_back(k);
    } else {
      const std::size_t count = std::max<std::size_t>(
          1, static_cast<std::size_t>(options_.participation *
                                      static_cast<float>(clients.size())));
      Rng sample_rng = DeriveStream(run_seed, round, kSamplingStream);
      participants =
          sample_rng.SampleWithoutReplacement(clients.size(), count);
      std::sort(participants.begin(), participants.end());
    }
    stats.broadcast_seconds = SecondsSince(broadcast_t0);

    // --- Parallel client phase. Each worker touches only its own client,
    // its own updates/stats slot, and its own losses element; the RNG stream
    // in each context is derived from (run_seed, round, client index), so
    // the result is independent of how workers are scheduled.
    float lr_scale = 1.0f;
    if (options_.lr_decay_every != 0) {
      const auto steps =
          static_cast<float>((round - 1) / options_.lr_decay_every);
      lr_scale = std::pow(options_.lr_decay, steps);
    }
    const std::size_t m = participants.size();
    std::vector<ModelState> updates(m);
    std::vector<float> losses(clients.size(), 0.0f);
    stats.clients.resize(m);
    const auto train_t0 = Clock::now();
    ParallelForCoarse(
        0, m,
        [&](std::size_t i) {
          const std::size_t k = participants[i];
          RoundContext ctx = MakeRoundContext(run_seed, round, k, lr_scale);
          ctx.telemetry = &stats.clients[i];
          const auto client_t0 = Clock::now();
          clients[k]->SetGlobal(broadcast);
          updates[i] = clients[k]->TrainLocal(std::move(ctx));
          ClientRoundStats& cs = stats.clients[i];
          cs.round = round;
          cs.client = k;
          cs.loss = clients[k]->LastTrainLoss();
          cs.train_seconds = SecondsSince(client_t0);
          losses[k] = cs.loss;
        },
        options_.max_parallel_clients);
    stats.train_wall_seconds = SecondsSince(train_t0);

    // --- Coordinator: deterministic fixed-order reduction.
    const auto aggregate_t0 = Clock::now();
    global_ = ModelState::Average(updates);
    stats.aggregate_seconds = SecondsSince(aggregate_t0);

    log.client_losses.push_back(std::move(losses));
    if (options_.record_client_updates) {
      log.client_updates.push_back(std::move(updates));
    }
    if (std::find(options_.snapshot_rounds.begin(),
                  options_.snapshot_rounds.end(),
                  round) != options_.snapshot_rounds.end()) {
      log.global_snapshots.push_back(global_);
    }
    log.telemetry.rounds.push_back(std::move(stats));
  }
  // Clients see the final aggregate (inference uses the global model).
  for (ClientBase* client : clients) client->SetGlobal(global_);
  log.final_global = global_;
  return log;
}

}  // namespace cip::fl
