#include "fl/server.h"

#include <algorithm>

#include "common/check.h"

namespace cip::fl {

FederatedAveraging::FederatedAveraging(ModelState initial, FlOptions options)
    : global_(std::move(initial)), options_(std::move(options)) {
  CIP_CHECK_GT(options_.rounds, 0u);
  CIP_CHECK(options_.participation > 0.0f && options_.participation <= 1.0f);
  CIP_CHECK(!global_.empty());
}

FlLog FederatedAveraging::Run(std::span<ClientBase* const> clients, Rng& rng) {
  CIP_CHECK(!clients.empty());
  FlLog log;
  for (std::size_t round = 1; round <= options_.rounds; ++round) {
    // Broadcast (possibly tampered) global.
    const ModelState broadcast =
        tamper_ ? tamper_(round, global_) : global_;
    // Sample this round's participants (FedAvg partial participation).
    std::vector<std::size_t> participants;
    if (options_.participation >= 1.0f) {
      for (std::size_t k = 0; k < clients.size(); ++k) participants.push_back(k);
    } else {
      const std::size_t count = std::max<std::size_t>(
          1, static_cast<std::size_t>(options_.participation *
                                      static_cast<float>(clients.size())));
      participants = rng.SampleWithoutReplacement(clients.size(), count);
      std::sort(participants.begin(), participants.end());
    }
    std::vector<ModelState> updates;
    updates.reserve(participants.size());
    std::vector<float> losses(clients.size(), 0.0f);
    for (const std::size_t k : participants) {
      clients[k]->SetGlobal(broadcast);
      updates.push_back(clients[k]->TrainLocal(round, rng));
      losses[k] = clients[k]->LastTrainLoss();
    }
    global_ = ModelState::Average(updates);
    log.client_losses.push_back(std::move(losses));
    if (options_.record_client_updates) {
      log.client_updates.push_back(std::move(updates));
    }
    if (std::find(options_.snapshot_rounds.begin(),
                  options_.snapshot_rounds.end(),
                  round) != options_.snapshot_rounds.end()) {
      log.global_snapshots.push_back(global_);
    }
  }
  // Clients see the final aggregate (inference uses the global model).
  for (ClientBase* client : clients) client->SetGlobal(global_);
  log.final_global = global_;
  return log;
}

}  // namespace cip::fl
