// Flat parameter snapshots exchanged between FL clients and the server.
//
// A ModelState is the concatenation of a model's parameter tensors in the
// model's deterministic parameter order. Clients and the server construct
// architecturally identical models from the same nn::ModelSpec, so states are
// interchangeable across parties — which is exactly the FedAvg contract.
#pragma once

#include <span>
#include <vector>

#include "nn/module.h"

namespace cip::fl {

class ModelState {
 public:
  ModelState() = default;
  /// Adopt a flat value vector (caller vouches for the parameter order).
  explicit ModelState(std::vector<float> values) : values_(std::move(values)) {}

  /// Snapshot the current values of a parameter set.
  static ModelState From(std::span<nn::Parameter* const> params);

  /// Snapshot the current *gradients* of a parameter set (used by attacks
  /// that observe model updates).
  static ModelState GradientsFrom(std::span<nn::Parameter* const> params);

  /// Write this state into a parameter set of matching total size.
  void ApplyTo(std::span<nn::Parameter* const> params) const;

  /// Total number of scalar parameters in the snapshot.
  std::size_t size() const { return values_.size(); }
  /// True for a default-constructed (no-parameters) state.
  bool empty() const { return values_.empty(); }
  /// The flat values, in the model's deterministic parameter order.
  std::span<const float> values() const { return values_; }
  /// Mutable view of the flat values (attack/tamper code edits in place).
  std::span<float> values() { return values_; }

  /// this += a * other
  void Axpy(float a, const ModelState& other);
  /// this *= a (element-wise).
  void Scale(float a);
  /// Euclidean norm over all parameters (accumulated in double).
  float L2Norm() const;

  /// Element-wise mean of non-empty states of equal size (FedAvg).
  static ModelState Average(std::span<const ModelState> states);

 private:
  std::vector<float> values_;
};

}  // namespace cip::fl
