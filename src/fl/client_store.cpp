#include "fl/client_store.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "fl/serialize.h"

namespace cip::fl {
namespace {

// Client-record framing ("CIPR"): one client's serialized cross-round state.
constexpr std::uint32_t kRecordMagic = 0x43495052;
// Shard-file framing ("CIPH"): header + fixed directory + record heap.
constexpr std::uint32_t kShardMagic = 0x43495048;
constexpr std::uint32_t kShardVersion = 1;
// u32 magic + u32 version + u64 shard_index + u64 slots + u64 data_end.
constexpr std::uint64_t kShardHeaderBytes = 32;
// Directory slot: u64 blob offset (0 = absent) + u64 blob length.
constexpr std::uint64_t kDirEntryBytes = 16;
// Same ceiling as fl/checkpoint applies per client: a count above this is a
// hostile or corrupt record, rejected before any allocation is sized from it.
constexpr std::uint64_t kMaxTensorsPerRecord = std::uint64_t{1} << 20;

}  // namespace

std::string EncodeClientRecord(std::uint64_t id, const ClientState& state) {
  std::ostringstream os(std::ios::binary);
  wire::WriteU32(os, kRecordMagic);
  wire::WriteU64(os, id);
  wire::WriteU64(os, state.tensors.size());
  for (const Tensor& t : state.tensors) SaveTensor(t, os);
  return os.str();
}

ClientState DecodeClientRecord(const std::string& blob,
                               std::uint64_t expect_id) {
  std::istringstream is(blob, std::ios::binary);
  CIP_CHECK_MSG(wire::ReadU32(is) == kRecordMagic, "bad client-record magic");
  const std::uint64_t id = wire::ReadU64(is);
  CIP_CHECK_MSG(id == expect_id, "client record for id " << id
                                     << " found in slot for id " << expect_id);
  const std::uint64_t count = wire::ReadU64(is);
  CIP_CHECK_MSG(count <= kMaxTensorsPerRecord,
                "implausible tensor count " << count << " in client record");
  ClientState state;
  // Materializing a cold record is allocate-by-contract — the produced
  // ClientState IS the client's state buffer.
  // CIP_ANALYZE_OK(hot-alloc): count validated against kMaxTensorsPerRecord
  state.tensors.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    // CIP_ANALYZE_OK(hot-alloc): reserved above; payload IS the state itself
    state.tensors.push_back(LoadTensor(is));
  }
  is.peek();
  CIP_CHECK_MSG(is.eof(), "trailing bytes after client record");
  return state;
}

ClientStore::ClientStore() = default;

ClientStore::ClientStore(std::span<ClientBase* const> clients)
    : mode_(Mode::kBorrowed),
      num_clients_(clients.size()),
      clients_(clients.begin(), clients.end()) {
  for (const ClientBase* c : clients_) {
    CIP_CHECK_MSG(c != nullptr, "null client in borrowed fleet");
  }
}

ClientStore::ClientStore(std::size_t num_clients, Factory factory,
                         StoreOptions opts)
    : mode_(Mode::kCold),
      num_clients_(num_clients),
      factory_(std::move(factory)),
      opts_(std::move(opts)) {
  CIP_CHECK_MSG(num_clients_ >= 1, "cold store needs at least one client");
  CIP_CHECK_MSG(factory_ != nullptr, "cold store needs a client factory");
  CIP_CHECK_MSG(opts_.shard_clients >= 1, "shard_clients must be >= 1");
  if (opts_.spill_dir.empty()) return;
  // The spill dir is scratch owned by this store: restarts go through
  // checkpoints, never through leftover shard files, so stale ones are
  // removed up front rather than trusted.
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opts_.spill_dir, ec);
  CIP_CHECK_MSG(!ec, "cannot create spill dir '" << opts_.spill_dir
                                                 << "': " << ec.message());
  for (const auto& entry : fs::directory_iterator(opts_.spill_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("shard_") && name.ends_with(".cip")) {
      fs::remove(entry.path(), ec);
    }
  }
}

ClientBase* ClientStore::Add(std::unique_ptr<ClientBase> client) {
  CIP_CHECK_MSG(mode_ == Mode::kLive,
                "Add is only valid on a live (default-constructed) store");
  CIP_CHECK_MSG(client != nullptr, "cannot Add a null client");
  owned_.push_back(std::move(client));
  clients_.push_back(owned_.back().get());
  num_clients_ = clients_.size();
  return clients_.back();
}

std::size_t ClientStore::num_clients() const { return num_clients_; }

// CIP_HOT
ClientStore::Handle ClientStore::Materialize(std::size_t id) {
  CIP_CHECK_MSG(id < num_clients_, "client id " << id
                                       << " out of range for fleet of "
                                       << num_clients_);
  Handle h;
  if (mode_ != Mode::kCold) {
    h.ptr_ = clients_[id];
    return h;
  }
  h.owned_ = factory_(id);
  CIP_CHECK_MSG(h.owned_ != nullptr,
                "client factory returned null for id " << id);
  h.ptr_ = h.owned_.get();
  // Restore strictly before dropping the record: if the blob or shard is
  // corrupt, the decode throws with the store unchanged — a failed load must
  // not silently turn a stateful client into a fresh one on retry.
  if (auto hot_it = hot_.find(id); hot_it != hot_.end()) {
    h.ptr_->RestoreState(DecodeClientRecord(hot_it->second, id));
    ++stats_.hot_hits;
    EraseRecord(id);  // state ownership moves to the handle (bumps version)
  } else if (spilled_.contains(id)) {
    h.ptr_->RestoreState(DecodeClientRecord(ReadShardRecord(id), id));
    ++stats_.cold_loads;
    EraseRecord(id);
  }
  // No record: a client that never participated materializes fresh from the
  // factory alone.
  return h;
}

// CIP_HOT
void ClientStore::Evict(std::size_t id, const ClientBase& client) {
  if (mode_ != Mode::kCold) return;  // persistent objects keep their state
  CIP_CHECK_MSG(id < num_clients_, "client id " << id
                                       << " out of range for fleet of "
                                       << num_clients_);
  const ClientState state = client.ExportState();
  if (state.tensors.empty()) {
    // Stateless clients re-materialize fresh; keep no record for them so the
    // store stays O(stateful participants), not O(sampled-ever).
    EraseRecord(id);
    return;
  }
  ++stats_.evictions;
  InsertRecord(id, EncodeClientRecord(id, state));
}

std::vector<std::pair<std::uint64_t, ClientState>> ClientStore::ExportStates()
    const {
  std::vector<std::pair<std::uint64_t, ClientState>> out;
  if (mode_ == Mode::kCold) {
    // Merge the two sorted id streams (hot blobs and spilled markers are
    // disjoint by construction) without disturbing LRU recency: a checkpoint
    // is an observer, not a use.
    out.reserve(hot_.size() + spilled_.size());
    auto hot_it = hot_.begin();
    auto sp_it = spilled_.begin();
    while (hot_it != hot_.end() || sp_it != spilled_.end()) {
      if (sp_it == spilled_.end() ||
          (hot_it != hot_.end() && hot_it->first < *sp_it)) {
        out.emplace_back(hot_it->first,
                         DecodeClientRecord(hot_it->second, hot_it->first));
        ++hot_it;
      } else {
        out.emplace_back(*sp_it,
                         DecodeClientRecord(ReadShardRecord(*sp_it), *sp_it));
        ++sp_it;
      }
    }
    return out;
  }
  for (std::size_t id = 0; id < clients_.size(); ++id) {
    ClientState state = clients_[id]->ExportState();
    if (!state.tensors.empty()) out.emplace_back(id, std::move(state));
  }
  return out;
}

void ClientStore::RestoreStates(
    const std::vector<std::pair<std::uint64_t, ClientState>>& states) {
  if (mode_ == Mode::kCold) {
    // Every previously recorded id may now hold different bytes (or none):
    // move its version so PeekState-derived caches drop their entries.
    for (const auto& [id, blob] : hot_) ++state_versions_[id];
    for (const std::size_t id : spilled_) ++state_versions_[id];
    hot_.clear();
    lru_.clear();
    lru_pos_.clear();
    spilled_.clear();
    stats_.hot_bytes = 0;
    stats_.hot_records = 0;
    stats_.spilled_records = 0;
    for (const auto& [id, state] : states) {
      CIP_CHECK_MSG(id < num_clients_, "checkpoint client id "
                                           << id << " out of range for fleet of "
                                           << num_clients_);
      if (state.tensors.empty()) continue;
      InsertRecord(static_cast<std::size_t>(id), EncodeClientRecord(id, state));
    }
    return;
  }
  // Dense semantics for persistent fleets: every client is restored, and ids
  // absent from the sparse checkpoint get an empty state (which stateless
  // clients accept and stateful clients correctly reject as a mismatch).
  std::map<std::uint64_t, const ClientState*> by_id;
  for (const auto& [id, state] : states) {
    CIP_CHECK_MSG(id < clients_.size(), "checkpoint client id "
                                            << id << " out of range for fleet of "
                                            << clients_.size());
    by_id[id] = &state;
  }
  const ClientState empty;
  for (std::size_t id = 0; id < clients_.size(); ++id) {
    const auto it = by_id.find(id);
    clients_[id]->RestoreState(it == by_id.end() ? empty : *it->second);
  }
}

void ClientStore::BroadcastFinal(const ModelState& global) {
  // Cold stores have no persistent objects (clients_ is empty): the final
  // global lives in the run log and checkpoint instead.
  for (ClientBase* c : clients_) c->SetGlobal(global);
}

bool ClientStore::PeekState(std::size_t id, ClientState& out) const {
  CIP_CHECK_MSG(id < num_clients_, "client id " << id
                                       << " out of range for fleet of "
                                       << num_clients_);
  if (mode_ != Mode::kCold) {
    out = clients_[id]->ExportState();
    return !out.tensors.empty();
  }
  if (const auto hot_it = hot_.find(id); hot_it != hot_.end()) {
    out = DecodeClientRecord(hot_it->second, id);
    return true;
  }
  if (spilled_.contains(id)) {
    out = DecodeClientRecord(ReadShardRecord(id), id);
    return true;
  }
  return false;
}

std::uint64_t ClientStore::state_version(std::size_t id) const {
  const auto it = state_versions_.find(id);
  return it == state_versions_.end() ? 0 : it->second;
}

void ClientStore::InsertRecord(std::size_t id, std::string blob) {
  EraseRecord(id);
  ++state_versions_[id];
  stats_.hot_bytes += blob.size();
  ++stats_.hot_records;
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
  // Admitting the freshly evicted record to the hot set is the store's
  // purpose; the byte budget is enforced immediately by SpillOverBudget.
  // CIP_ANALYZE_OK(hot-alloc): hot-set admission is the store's contract
  hot_.emplace(id, std::move(blob));
  SpillOverBudget();
}

void ClientStore::EraseRecord(std::size_t id) {
  bool erased = false;
  if (auto it = hot_.find(id); it != hot_.end()) {
    stats_.hot_bytes -= it->second.size();
    --stats_.hot_records;
    lru_.erase(lru_pos_.at(id));
    lru_pos_.erase(id);
    hot_.erase(it);
    erased = true;
  }
  if (spilled_.erase(id) > 0) {
    --stats_.spilled_records;
    erased = true;
  }
  if (erased) ++state_versions_[id];
}

void ClientStore::SpillOverBudget() {
  // Without a spill dir the budget is unenforced: every record stays
  // resident (documented in StoreOptions::hot_bytes).
  if (opts_.spill_dir.empty()) return;
  while (stats_.hot_bytes > opts_.hot_bytes && !lru_.empty()) {
    const std::size_t victim = lru_.back();
    const auto it = hot_.find(victim);
    WriteShardRecord(victim, it->second);
    ++stats_.spills;
    // CIP_ANALYZE_OK(hot-alloc): bookkeeping node that frees the blob's bytes
    spilled_.insert(victim);
    ++stats_.spilled_records;
    stats_.hot_bytes -= it->second.size();
    --stats_.hot_records;
    hot_.erase(it);
    lru_pos_.erase(victim);
    lru_.pop_back();
  }
}

std::string ClientStore::ShardPath(std::size_t shard) const {
  return opts_.spill_dir + "/shard_" + std::to_string(shard) + ".cip";
}

void ClientStore::WriteShardRecord(std::size_t id, const std::string& blob) {
  const std::size_t shard = id / opts_.shard_clients;
  const std::size_t slot = id % opts_.shard_clients;
  const std::string path = ShardPath(shard);
  const std::uint64_t dir_begin = kShardHeaderBytes;
  const std::uint64_t data_begin =
      dir_begin + static_cast<std::uint64_t>(opts_.shard_clients) *
                      kDirEntryBytes;
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  if (!f.is_open()) {
    // First spill into this shard: lay down the header and a zeroed
    // directory (offset 0 marks an absent slot), then reopen read-write.
    std::ofstream init(path, std::ios::binary);
    CIP_CHECK_MSG(init.is_open(), "cannot create shard file " << path);
    wire::WriteU32(init, kShardMagic);
    wire::WriteU32(init, kShardVersion);
    wire::WriteU64(init, shard);
    wire::WriteU64(init, opts_.shard_clients);
    wire::WriteU64(init, data_begin);
    const std::string zeros(
        static_cast<std::size_t>(data_begin - dir_begin), '\0');
    init.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
    CIP_CHECK_MSG(init.good(), "short write creating shard file " << path);
    init.close();
    f.open(path, std::ios::binary | std::ios::in | std::ios::out);
    CIP_CHECK_MSG(f.is_open(), "cannot reopen shard file " << path);
  }
  f.seekg(24);  // header field: data_end
  std::uint64_t data_end = wire::ReadU64(f);
  f.seekg(static_cast<std::streamoff>(dir_begin + slot * kDirEntryBytes));
  const std::uint64_t old_offset = wire::ReadU64(f);
  const std::uint64_t old_length = wire::ReadU64(f);
  std::uint64_t offset;
  if (old_offset != 0 && old_length >= blob.size()) {
    // Constant-size client states take this path every time after the first
    // spill: in-place overwrite, zero steady-state file growth.
    offset = old_offset;
  } else {
    offset = data_end;
    data_end += blob.size();
    f.seekp(24);
    wire::WriteU64(f, data_end);
  }
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  f.seekp(static_cast<std::streamoff>(dir_begin + slot * kDirEntryBytes));
  wire::WriteU64(f, offset);
  wire::WriteU64(f, blob.size());
  CIP_CHECK_MSG(f.good(), "short write spilling client " << id << " to "
                                                         << path);
}

std::string ClientStore::ReadShardRecord(std::size_t id) const {
  const std::size_t shard = id / opts_.shard_clients;
  const std::size_t slot = id % opts_.shard_clients;
  const std::string path = ShardPath(shard);
  std::ifstream f(path, std::ios::binary);
  CIP_CHECK_MSG(f.is_open(), "missing shard file " << path);
  f.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(f.tellg());
  f.seekg(0);
  CIP_CHECK_MSG(wire::ReadU32(f) == kShardMagic,
                "bad shard magic in " << path);
  CIP_CHECK_MSG(wire::ReadU32(f) == kShardVersion,
                "unsupported shard version in " << path);
  const std::uint64_t shard_index = wire::ReadU64(f);
  CIP_CHECK_MSG(shard_index == shard, "shard file " << path
                                          << " claims index " << shard_index);
  const std::uint64_t slots = wire::ReadU64(f);
  CIP_CHECK_MSG(slots == opts_.shard_clients,
                "shard file " << path << " has " << slots
                              << " slots, store expects "
                              << opts_.shard_clients);
  const std::uint64_t data_end = wire::ReadU64(f);
  const std::uint64_t dir_begin = kShardHeaderBytes;
  const std::uint64_t data_begin = dir_begin + slots * kDirEntryBytes;
  // Every offset below is validated against this audited bound before any
  // seek or allocation: data_end must sit inside the actual file.
  CIP_CHECK_MSG(data_end >= data_begin && data_end <= file_size,
                "hostile data_end " << data_end << " in shard " << path);
  f.seekg(static_cast<std::streamoff>(dir_begin + slot * kDirEntryBytes));
  const std::uint64_t offset = wire::ReadU64(f);
  const std::uint64_t length = wire::ReadU64(f);
  CIP_CHECK_MSG(offset != 0, "no spilled record for client " << id << " in "
                                                             << path);
  CIP_CHECK_MSG(offset >= data_begin && offset <= data_end &&
                    length <= data_end - offset,
                "hostile directory entry for client " << id << " in " << path);
  std::string blob(static_cast<std::size_t>(length), '\0');
  f.seekg(static_cast<std::streamoff>(offset));
  f.read(blob.data(), static_cast<std::streamsize>(length));
  CIP_CHECK_MSG(static_cast<std::uint64_t>(f.gcount()) == length,
                "truncated record for client " << id << " in " << path);
  return blob;
}

}  // namespace cip::fl
