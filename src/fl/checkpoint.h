// Versioned checkpoints for federated runs: crash-at-round-k + resume is
// bit-identical to an uninterrupted run.
//
// A checkpoint captures everything the round engine cannot re-derive from
// (client store, options, run seed) alone: the aggregated global model, each
// stateful client's private cross-round state (optimizer momentum, the CIP
// secret perturbation t), the retry/backoff queue for faulted clients, and
// the round + telemetry cursors. Because every RNG stream in a run is a pure
// function of (run_seed, round, client) — never of history — replaying
// rounds k+1..R from a checkpoint taken after round k consumes exactly the
// streams the uninterrupted run would have (the determinism argument is
// spelled out in docs/ROBUSTNESS.md, the format spec too).
//
// Wire format v2 (little-endian, built on fl/serialize's audited
// primitives): magic "CIPK", version, run_seed, total_rounds, next_round,
// telemetry_rounds, global ModelState, sparse client-state list (entry
// count, then per entry client id + tensor count + tensors, ids strictly
// ascending), retry list (count, then client/attempts/next_round triples).
// The sparse list is what lets a million-client fleet checkpoint in
// O(stateful participants): clients that never trained have no entry. v1
// checkpoints (dense client list, implicitly ids 0..n-1) are still loaded;
// writers always emit v2. Loaders throw cip::CheckError on bad magic,
// unknown versions, truncation, unsorted ids and implausible counts —
// before sizing any buffer from untrusted input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "fl/client.h"
#include "fl/model_state.h"

namespace cip::fl {

/// Retry bookkeeping for one faulted client, persisted with checkpoints so
/// a resumed run issues the same bounded retry-with-backoff schedule. An
/// entry with attempts > FlOptions::max_retries is exhausted: it schedules
/// no further retries but stays queued so fresh faults cannot restart the
/// cycle; any successful delivery clears the entry.
struct RetryState {
  std::size_t client = 0;      ///< client id in the run's ClientStore
  std::size_t attempts = 0;    ///< faulted participations so far
  std::size_t next_round = 0;  ///< earliest 1-based round eligible for retry
};

/// Everything needed to resume a federated run after round `next_round - 1`.
struct Checkpoint {
  /// Root seed of the interrupted run; Resume re-derives every RNG stream
  /// from it, which is what makes resumption bit-identical.
  std::uint64_t run_seed = 0;
  std::size_t total_rounds = 0;      ///< FlOptions::rounds of the saved run
  std::size_t next_round = 1;        ///< first round to execute on resume
  /// Telemetry rounds already emitted before the checkpoint — the JSONL
  /// cursor. A harness appending RoundTelemetry across a resume skips
  /// re-emitting the first `telemetry_rounds` rounds.
  std::size_t telemetry_rounds = 0;
  ModelState global;                 ///< aggregate after round next_round - 1
  /// Sparse private client state: (client id, exported state) sorted by id,
  /// one entry per *stateful* client (the ClientStore::ExportStates shape).
  /// Clients without an entry resume from their factory-fresh state.
  std::vector<std::pair<std::uint64_t, ClientState>> client_states;
  std::vector<RetryState> retries;   ///< pending retry queue
};

/// Write a checkpoint (format v2 above); throws CheckError on I/O failure.
void SaveCheckpoint(const Checkpoint& ckpt, std::ostream& os);
/// Read a checkpoint written by SaveCheckpoint (v2) or by a pre-sparse
/// build (v1, converted to the sparse form); throws CheckError on bad
/// magic/version, truncation, unsorted ids, or implausible counts.
Checkpoint LoadCheckpoint(std::istream& is);

/// SaveCheckpoint to a file; throws CheckError if the file cannot be opened.
void SaveCheckpointFile(const Checkpoint& ckpt, const std::string& path);
/// LoadCheckpoint from a file; throws CheckError on open or parse failure.
Checkpoint LoadCheckpointFile(const std::string& path);

}  // namespace cip::fl
