// Deterministic fault injection for the federated round engine.
//
// Production FL serves fleets where client dropouts, mid-round failures and
// stragglers are the norm, not the exception. A FaultPlan makes those events
// first-class *and reproducible*: every fault decision is a pure function of
// (run seed, round, client) via its own DeriveStream label space, so a
// faulted run is bit-identical across worker budgets and across resume
// boundaries — exactly like client training randomness (see
// fl/round_context.h and docs/ROBUSTNESS.md).
//
// Faults are *simulated* at the coordinator: the engine decides from the
// plan what would have happened to a client's round (never trained, trained
// but the update was lost, trained but finished late) and applies the
// consequence. Straggler lateness is simulated time, not wall-clock — a
// wall-clock timeout would make results depend on host load and break the
// bit-identity invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace cip::fl {

/// What happened to one client's round.
enum class FaultKind : std::uint8_t {
  kNone = 0,        ///< trained and delivered its update
  kDropout,         ///< never started (device offline before training)
  kMidRoundFailure, ///< trained, but crashed/lost the update before upload
  kStraggler,       ///< trained, delivered late by FaultPlan's simulated delay
};

/// Stable lowercase name for telemetry/JSONL ("none", "dropout", ...).
const char* FaultKindName(FaultKind kind);

/// A scripted fault for one specific (round, client) — used by tests and
/// reproductions of specific incident patterns on top of (or instead of)
/// the random rates.
struct ForcedFault {
  std::size_t round = 0;   ///< 1-based round index
  std::size_t client = 0;  ///< index into the Run() clients span
  FaultKind kind = FaultKind::kDropout;
};

/// Per-run fault model. Rates are per-(round, client) probabilities,
/// evaluated independently for every sampled participant; forced faults
/// override the random draw for their exact (round, client).
struct FaultPlan {
  float dropout_rate = 0.0f;    ///< P(client never starts the round)
  float failure_rate = 0.0f;    ///< P(client trains but loses its update)
  float straggler_rate = 0.0f;  ///< P(client delivers late)
  /// Simulated lateness of a straggler, in seconds. Compared against
  /// FlOptions::round_timeout_seconds to decide whether the late update is
  /// still accepted. Simulated — never a wall-clock measurement.
  double straggler_delay_seconds = 1.0;
  /// Scripted faults (tests, incident replay); see ForcedFault.
  std::vector<ForcedFault> forced;

  /// True if any fault source is configured (rates or forced entries).
  bool enabled() const {
    return dropout_rate > 0.0f || failure_rate > 0.0f ||
           straggler_rate > 0.0f || !forced.empty();
  }

  /// CHECK-fails (throws cip::CheckError) unless rates are in [0, 1], their
  /// sum is <= 1, the delay is >= 0 and forced entries carry 1-based rounds.
  void Validate() const;

  /// The fault assigned to `client` in `round` — a pure function of the
  /// arguments and the plan (no internal state is advanced), so any party
  /// that knows the run seed can reconstruct every fault decision in any
  /// order on any thread.
  FaultKind Decide(std::uint64_t run_seed, std::size_t round,
                   std::size_t client) const;
};

}  // namespace cip::fl
