// Secure aggregation via pairwise additive masking (Bonawitz et al.,
// CCS 2017), simulated in-process.
//
// Each ordered client pair (i < j) derives a shared mask m_ij from a
// pairwise seed; client i adds +m_ij to its update, client j adds −m_ij.
// Masks cancel in the sum, so the server learns ONLY the aggregate — it
// cannot read any individual update.
//
// The paper discusses secure aggregation as a complementary line of defense
// (Sec. VI): it hides individual updates but the *aggregate* model still
// leaks membership, which is exactly the gap CIP fills. This module lets the
// two be composed: CIP clients can exchange masked states.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/model_state.h"

namespace cip::fl {

class SecureAggregation {
 public:
  /// `session_seed` plays the role of the key-agreement transcript: all
  /// clients of a round derive the same pairwise masks from it.
  explicit SecureAggregation(std::uint64_t session_seed)
      : session_seed_(session_seed) {}

  /// The masked update client `index` (of `num_clients`) uploads.
  ModelState MaskUpdate(const ModelState& update, std::size_t index,
                        std::size_t num_clients) const;

  /// Server-side aggregation of the masked updates: element-wise mean.
  /// Equals the mean of the *unmasked* updates (masks cancel).
  static ModelState Aggregate(std::span<const ModelState> masked);

 private:
  /// Deterministic pairwise mask for the ordered pair (i, j), i < j.
  ModelState PairwiseMask(std::size_t i, std::size_t j,
                          std::size_t size) const;

  std::uint64_t session_seed_;
};

}  // namespace cip::fl
