#include "fl/serialize.h"

#include <cstdint>
#include <fstream>

#include "common/check.h"

namespace cip::fl {

namespace {

constexpr std::uint32_t kStateMagic = 0x43495053;   // "CIPS"
constexpr std::uint32_t kTensorMagic = 0x43495054;  // "CIPT"
constexpr std::uint32_t kVersion = 1;

// Upper bound on deserialized element counts: a hostile or corrupt length
// prefix must fail a check here, before we size a buffer and bulk-read into
// it. 2^31 floats = 8 GiB, far above any model this library trains.
constexpr std::uint64_t kMaxElements = std::uint64_t{1} << 31;

// Overflow-checked product of the deserialized dims; CIP_CHECKs that the
// total stays below kMaxElements so NumElements cannot silently wrap.
std::uint64_t CheckedNumElements(const Shape& shape) {
  std::uint64_t n = 1;
  for (std::size_t d : shape) {
    CIP_CHECK_MSG(d == 0 || n <= kMaxElements / d,
                  "serialized shape overflows element count: "
                      << ShapeToString(shape));
    n *= d;
  }
  CIP_CHECK_MSG(n <= kMaxElements,
                "serialized tensor implausibly large: " << n << " elements");
  return n;
}

void WriteFloats(std::ostream& os, std::span<const float> v) {
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void ReadFloats(std::istream& is, std::span<float> v) {
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  CIP_CHECK_MSG(is.good(), "truncated stream while reading float payload");
}

}  // namespace

namespace wire {

void WriteU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t ReadU32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  CIP_CHECK_MSG(is.good(), "truncated stream while reading u32");
  return v;
}

std::uint64_t ReadU64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  CIP_CHECK_MSG(is.good(), "truncated stream while reading u64");
  return v;
}

}  // namespace wire

using wire::ReadU32;
using wire::ReadU64;
using wire::WriteU32;
using wire::WriteU64;

void SaveModelState(const ModelState& state, std::ostream& os) {
  WriteU32(os, kStateMagic);
  WriteU32(os, kVersion);
  WriteU64(os, state.size());
  WriteFloats(os, state.values());
  CIP_CHECK_MSG(os.good(), "write failed");
}

ModelState LoadModelState(std::istream& is) {
  CIP_CHECK_MSG(ReadU32(is) == kStateMagic, "not a CIP model-state stream");
  CIP_CHECK_MSG(ReadU32(is) == kVersion, "unsupported model-state version");
  const std::uint64_t n = ReadU64(is);
  CIP_CHECK_MSG(n <= kMaxElements,
                "model-state length prefix implausibly large: " << n);
  std::vector<float> values(static_cast<std::size_t>(n));
  ReadFloats(is, values);
  return ModelState(std::move(values));
}

void SaveModelStateFile(const ModelState& state, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  CIP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  SaveModelState(state, os);
}

ModelState LoadModelStateFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CIP_CHECK_MSG(is.is_open(), "cannot open " << path);
  return LoadModelState(is);
}

void SaveTensor(const Tensor& t, std::ostream& os) {
  WriteU32(os, kTensorMagic);
  WriteU32(os, kVersion);
  WriteU64(os, t.rank());
  for (std::size_t d : t.shape()) WriteU64(os, d);
  WriteFloats(os, t.flat());
  CIP_CHECK_MSG(os.good(), "write failed");
}

Tensor LoadTensor(std::istream& is) {
  CIP_CHECK_MSG(ReadU32(is) == kTensorMagic, "not a CIP tensor stream");
  CIP_CHECK_MSG(ReadU32(is) == kVersion, "unsupported tensor version");
  const std::uint64_t rank = ReadU64(is);
  CIP_CHECK_MSG(rank >= 1 && rank <= 8, "implausible tensor rank " << rank);
  Shape shape(rank);
  for (std::uint64_t i = 0; i < rank; ++i) {
    const std::uint64_t d = ReadU64(is);
    CIP_CHECK_MSG(d <= kMaxElements, "implausible tensor dim " << d);
    shape[i] = static_cast<std::size_t>(d);
  }
  CheckedNumElements(shape);
  // Deserialization target — when reached from a hot path (cold-client
  // materialization) this tensor IS the state being produced.
  // CIP_ANALYZE_OK(hot-alloc): dims and element count validated before sizing
  Tensor t(shape);
  ReadFloats(is, t.flat());
  return t;
}

void SaveTensorFile(const Tensor& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  CIP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  SaveTensor(t, os);
}

Tensor LoadTensorFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CIP_CHECK_MSG(is.is_open(), "cannot open " << path);
  return LoadTensor(is);
}

}  // namespace cip::fl
