#include "fl/model_state.h"

#include <cmath>

#include "common/check.h"
#include "fl/aggregate.h"

namespace cip::fl {

ModelState ModelState::From(std::span<nn::Parameter* const> params) {
  std::vector<float> v;
  std::size_t total = 0;
  for (const nn::Parameter* p : params) total += p->value.size();
  v.reserve(total);
  for (const nn::Parameter* p : params) {
    v.insert(v.end(), p->value.flat().begin(), p->value.flat().end());
  }
  return ModelState(std::move(v));
}

ModelState ModelState::GradientsFrom(std::span<nn::Parameter* const> params) {
  std::vector<float> v;
  for (const nn::Parameter* p : params) {
    v.insert(v.end(), p->grad.flat().begin(), p->grad.flat().end());
  }
  return ModelState(std::move(v));
}

void ModelState::ApplyTo(std::span<nn::Parameter* const> params) const {
  std::size_t offset = 0;
  for (nn::Parameter* p : params) {
    CIP_CHECK_LE(offset + p->value.size(), values_.size());
    std::copy(values_.begin() + static_cast<long>(offset),
              values_.begin() + static_cast<long>(offset + p->value.size()),
              p->value.flat().begin());
    offset += p->value.size();
  }
  CIP_CHECK_EQ(offset, values_.size());
}

void ModelState::Axpy(float a, const ModelState& other) {
  CIP_CHECK_EQ(values_.size(), other.values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += a * other.values_[i];
  }
}

void ModelState::Scale(float a) {
  for (float& v : values_) v *= a;
}

float ModelState::L2Norm() const {
  double s = 0.0;
  for (float v : values_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

ModelState ModelState::Average(std::span<const ModelState> states) {
  CIP_CHECK(!states.empty());
  // Delegate to the same streaming tree reduction the round engine uses for
  // its per-round aggregate, so recomputing a mean from recorded updates
  // reproduces the server's global bit-identically (fl/aggregate.h).
  TreeAccumulator acc;
  for (const ModelState& s : states) acc.Add(s);
  return acc.FinishMean();
}

}  // namespace cip::fl
