#include "fl/aggregate.h"

#include <utility>

#include "common/check.h"

namespace cip::fl {

void TreeAccumulator::Add(ModelState update) {
  CIP_CHECK_MSG(!update.empty(), "cannot aggregate an empty ModelState");
  ++count_;
  // Binary carry-propagate: an incoming update is a 1 added to the counter.
  // Each occupied slot merges (earlier-inputs slot on the left, so sums keep
  // arrival order) and carries upward to the first free slot.
  ModelState carry = std::move(update);
  for (std::size_t i = 0;; ++i) {
    if (i == levels_.size()) levels_.emplace_back();
    if (levels_[i].empty()) {
      levels_[i] = std::move(carry);
      return;
    }
    levels_[i].Axpy(1.0f, carry);
    carry = std::move(levels_[i]);
    levels_[i] = ModelState();
  }
}

ModelState TreeAccumulator::FinishMean() {
  CIP_CHECK_MSG(count_ > 0, "FinishMean on an empty TreeAccumulator");
  // Fixed final merge, low level to high. Low slots hold the latest inputs,
  // so at every step the occupied slot (earlier inputs) is the left operand
  // and the running tail (later inputs) the right — the overall sum is the
  // unique tree-shaped grouping of the arrival order this class defines.
  ModelState tail;
  for (ModelState& level : levels_) {
    if (level.empty()) continue;
    if (!tail.empty()) level.Axpy(1.0f, tail);
    tail = std::move(level);
  }
  tail.Scale(1.0f / static_cast<float>(count_));
  levels_.clear();
  count_ = 0;
  return tail;
}

}  // namespace cip::fl
