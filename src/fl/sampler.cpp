#include "fl/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace cip::fl {

std::size_t CohortSize(float participation, std::size_t num_clients) {
  CIP_CHECK_MSG(participation > 0.0f && participation <= 1.0f,
                "participation must be in (0, 1], got " << participation);
  CIP_CHECK_MSG(num_clients >= 1, "need at least one registered client");
  if (participation >= 1.0f) return num_clients;
  // Floor in double: float products like 0.1f * 5 land unpredictably on
  // either side of the exact value; double holds every (float fraction x
  // 2^53-bounded count) product exactly enough for a stable floor.
  const double exact = static_cast<double>(participation) *
                       static_cast<double>(num_clients);
  const auto k = static_cast<std::size_t>(std::floor(exact));
  return std::clamp<std::size_t>(k, 1, num_clients);
}

std::vector<std::size_t> SampleCohort(std::uint64_t run_seed,
                                      std::size_t round,
                                      std::size_t num_clients,
                                      float participation) {
  const std::size_t k = CohortSize(participation, num_clients);
  std::vector<std::size_t> cohort;
  cohort.reserve(k);
  if (k == num_clients) {
    for (std::size_t id = 0; id < num_clients; ++id) cohort.push_back(id);
    return cohort;
  }
  // Floyd's without-replacement sampler: k draws, each uniform over a prefix
  // that grows to the fleet, with collisions redirected to the prefix end.
  // Uniform over all k-subsets, O(k) memory — the whole point of a cold
  // fleet is that no per-round structure is ever O(num_clients).
  Rng rng = DeriveStream(run_seed, round, kSamplingStream);
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = num_clients - k; j < num_clients; ++j) {
    const std::size_t t = rng.Index(j + 1);
    if (chosen.insert(t).second) {
      cohort.push_back(t);
    } else {
      chosen.insert(j);
      cohort.push_back(j);
    }
  }
  // Sorted ascending: the round engine's fixed aggregation order, and the
  // only ordering ever derived from the unordered membership set above.
  std::sort(cohort.begin(), cohort.end());
  return cohort;
}

}  // namespace cip::fl
