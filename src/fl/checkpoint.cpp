#include "fl/checkpoint.h"

#include <fstream>

#include "common/check.h"
#include "fl/serialize.h"

namespace cip::fl {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4349504B;  // "CIPK"
constexpr std::uint32_t kCheckpointVersionV1 = 1;  // dense client list
constexpr std::uint32_t kCheckpointVersionV2 = 2;  // sparse (id, state) list

// Count ceilings for untrusted input: a hostile or corrupt prefix must fail
// here, before any buffer is sized from it. Far above anything this library
// simulates, far below allocation-of-death territory.
constexpr std::uint64_t kMaxClients = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxTensorsPerClient = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxRetries = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxRounds = std::uint64_t{1} << 32;

using wire::ReadU32;
using wire::ReadU64;
using wire::WriteU32;
using wire::WriteU64;

std::size_t ReadCount(std::istream& is, std::uint64_t ceiling,
                      const char* what) {
  const std::uint64_t n = ReadU64(is);
  CIP_CHECK_MSG(n <= ceiling,
                "checkpoint " << what << " count implausibly large: " << n);
  return static_cast<std::size_t>(n);
}

ClientState ReadClientState(std::istream& is) {
  ClientState state;
  const std::size_t num_tensors =
      ReadCount(is, kMaxTensorsPerClient, "client-tensor");
  state.tensors.reserve(num_tensors);
  for (std::size_t i = 0; i < num_tensors; ++i) {
    state.tensors.push_back(LoadTensor(is));
  }
  return state;
}

}  // namespace

void SaveCheckpoint(const Checkpoint& ckpt, std::ostream& os) {
  WriteU32(os, kCheckpointMagic);
  WriteU32(os, kCheckpointVersionV2);
  WriteU64(os, ckpt.run_seed);
  WriteU64(os, ckpt.total_rounds);
  WriteU64(os, ckpt.next_round);
  WriteU64(os, ckpt.telemetry_rounds);
  SaveModelState(ckpt.global, os);
  WriteU64(os, ckpt.client_states.size());
  for (const auto& [id, state] : ckpt.client_states) {
    WriteU64(os, id);
    WriteU64(os, state.tensors.size());
    for (const Tensor& t : state.tensors) SaveTensor(t, os);
  }
  WriteU64(os, ckpt.retries.size());
  for (const RetryState& r : ckpt.retries) {
    WriteU64(os, r.client);
    WriteU64(os, r.attempts);
    WriteU64(os, r.next_round);
  }
  CIP_CHECK_MSG(os.good(), "checkpoint write failed");
}

Checkpoint LoadCheckpoint(std::istream& is) {
  CIP_CHECK_MSG(ReadU32(is) == kCheckpointMagic,
                "not a CIP checkpoint stream");
  const std::uint32_t version = ReadU32(is);
  CIP_CHECK_MSG(version == kCheckpointVersionV1 ||
                    version == kCheckpointVersionV2,
                "unsupported checkpoint version " << version << " (this "
                "build reads v" << kCheckpointVersionV1 << " and v"
                << kCheckpointVersionV2 << ")");
  Checkpoint ckpt;
  ckpt.run_seed = ReadU64(is);
  ckpt.total_rounds = ReadCount(is, kMaxRounds, "total_rounds");
  ckpt.next_round = ReadCount(is, kMaxRounds, "next_round");
  ckpt.telemetry_rounds = ReadCount(is, kMaxRounds, "telemetry_rounds");
  CIP_CHECK_MSG(ckpt.next_round >= 1 &&
                    ckpt.next_round <= ckpt.total_rounds + 1,
                "checkpoint next_round " << ckpt.next_round
                    << " outside [1, total_rounds + 1]");
  ckpt.global = LoadModelState(is);
  const std::size_t num_clients = ReadCount(is, kMaxClients, "client");
  ckpt.client_states.reserve(num_clients);
  if (version == kCheckpointVersionV1) {
    // v1 is dense: entry i belongs to client id i, and stateless clients
    // carry an empty entry. Convert to the sparse form by dropping empties —
    // ClientStore::RestoreStates hands absent ids an empty state anyway.
    for (std::size_t id = 0; id < num_clients; ++id) {
      ClientState state = ReadClientState(is);
      if (state.tensors.empty()) continue;
      ckpt.client_states.emplace_back(id, std::move(state));
    }
  } else {
    std::uint64_t prev_id = 0;
    for (std::size_t i = 0; i < num_clients; ++i) {
      const std::uint64_t id = ReadU64(is);
      CIP_CHECK_MSG(id < kMaxClients,
                    "checkpoint client id implausibly large: " << id);
      CIP_CHECK_MSG(i == 0 || id > prev_id,
                    "checkpoint client ids not strictly ascending at " << id);
      prev_id = id;
      ckpt.client_states.emplace_back(id, ReadClientState(is));
    }
  }
  const std::size_t num_retries = ReadCount(is, kMaxRetries, "retry");
  ckpt.retries.resize(num_retries);
  for (RetryState& r : ckpt.retries) {
    r.client = ReadCount(is, kMaxClients, "retry client");
    r.attempts = ReadCount(is, kMaxRounds, "retry attempts");
    r.next_round = ReadCount(is, kMaxRounds, "retry next_round");
  }
  return ckpt;
}

void SaveCheckpointFile(const Checkpoint& ckpt, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  CIP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  SaveCheckpoint(ckpt, os);
}

Checkpoint LoadCheckpointFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CIP_CHECK_MSG(is.is_open(), "cannot open " << path);
  return LoadCheckpoint(is);
}

}  // namespace cip::fl
