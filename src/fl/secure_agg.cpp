#include "fl/secure_agg.h"

#include "common/check.h"
#include "common/rng.h"

namespace cip::fl {

ModelState SecureAggregation::PairwiseMask(std::size_t i, std::size_t j,
                                           std::size_t size) const {
  CIP_CHECK_LT(i, j);
  // The mask PRG is keyed on (session, i, j) — both parties can derive it.
  Rng rng(session_seed_ ^ (0x9E3779B97F4A7C15ull * (i * 1000003 + j)));
  std::vector<float> mask(size);
  for (float& v : mask) v = rng.Normal(0.0f, 1.0f);
  return ModelState(std::move(mask));
}

ModelState SecureAggregation::MaskUpdate(const ModelState& update,
                                         std::size_t index,
                                         std::size_t num_clients) const {
  CIP_CHECK_LT(index, num_clients);
  ModelState masked = update;
  for (std::size_t other = 0; other < num_clients; ++other) {
    if (other == index) continue;
    const std::size_t lo = std::min(index, other);
    const std::size_t hi = std::max(index, other);
    const ModelState mask = PairwiseMask(lo, hi, update.size());
    // The lower-indexed party adds, the higher-indexed subtracts.
    masked.Axpy(index == lo ? 1.0f : -1.0f, mask);
  }
  return masked;
}

ModelState SecureAggregation::Aggregate(std::span<const ModelState> masked) {
  return ModelState::Average(masked);
}

}  // namespace cip::fl
