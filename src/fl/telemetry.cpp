#include "fl/telemetry.h"

#include <cstdio>
#include <ostream>

namespace cip::fl {

namespace {

// Compact float formatting that always round-trips (JSON has no NaN/Inf; the
// sources here are wall-clock durations and finite losses).
void PutNumber(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

void RoundTelemetry::WriteJsonl(std::ostream& os) const {
  for (const RoundStats& r : rounds) {
    os << "{\"round\":" << r.round << ",\"broadcast_seconds\":";
    PutNumber(os, r.broadcast_seconds);
    os << ",\"train_wall_seconds\":";
    PutNumber(os, r.train_wall_seconds);
    os << ",\"aggregate_seconds\":";
    PutNumber(os, r.aggregate_seconds);
    os << ",\"survivors\":" << r.survivors
       << ",\"skipped\":" << (r.skipped ? "true" : "false")
       << ",\"folded_stragglers\":" << r.folded_stragglers;
    os << ",\"store\":{\"hot_hits\":" << r.store_hot_hits
       << ",\"cold_loads\":" << r.store_cold_loads
       << ",\"evictions\":" << r.store_evictions
       << ",\"spills\":" << r.store_spills << '}';
    os << ",\"clients\":[";
    for (std::size_t i = 0; i < r.clients.size(); ++i) {
      const ClientRoundStats& c = r.clients[i];
      if (i > 0) os << ',';
      os << "{\"client\":" << c.client << ",\"loss\":";
      PutNumber(os, c.loss);
      os << ",\"train_seconds\":";
      PutNumber(os, c.train_seconds);
      os << ",\"step1_seconds\":";
      PutNumber(os, c.step1_seconds);
      os << ",\"step2_seconds\":";
      PutNumber(os, c.step2_seconds);
      os << ",\"fault\":\"" << FaultKindName(c.fault) << '"'
         << ",\"dropped\":" << (c.dropped ? "true" : "false")
         << ",\"retried\":" << (c.retried ? "true" : "false");
      os << '}';
    }
    os << "]}\n";
  }
}

}  // namespace cip::fl
