// Binary (de)serialization of model states and tensors — checkpoints for
// long federated runs and persistent storage of a client's secret
// perturbation. Format: magic, version, payload sizes, raw little-endian
// float data. Errors (bad magic, truncation) throw cip::CheckError.
#pragma once

#include <iosfwd>
#include <string>

#include "fl/model_state.h"
#include "tensor/tensor.h"

namespace cip::fl {

void SaveModelState(const ModelState& state, std::ostream& os);
ModelState LoadModelState(std::istream& is);

void SaveModelStateFile(const ModelState& state, const std::string& path);
ModelState LoadModelStateFile(const std::string& path);

void SaveTensor(const Tensor& t, std::ostream& os);
Tensor LoadTensor(std::istream& is);

void SaveTensorFile(const Tensor& t, const std::string& path);
Tensor LoadTensorFile(const std::string& path);

}  // namespace cip::fl
