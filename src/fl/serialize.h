// Binary (de)serialization of model states and tensors — checkpoints for
// long federated runs and persistent storage of a client's secret
// perturbation. Format: magic, version, payload sizes, raw little-endian
// float data. Errors (bad magic, bad version, truncation, hostile length
// prefixes) throw cip::CheckError before any buffer is sized from untrusted
// input. The byte-level primitives live in the wire namespace so higher
// layers (fl/checkpoint) can compose framed formats without touching raw
// bytes themselves; reinterpret_cast stays confined to serialize.cpp (lint
// rule `reinterpret`). See docs/ROBUSTNESS.md for the checkpoint format
// built on top.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "fl/model_state.h"
#include "tensor/tensor.h"

namespace cip::fl {

/// Write a ModelState (magic + version + length-prefixed floats).
void SaveModelState(const ModelState& state, std::ostream& os);
/// Read a ModelState written by SaveModelState; throws CheckError on bad
/// magic/version, truncation, or an implausible length prefix.
ModelState LoadModelState(std::istream& is);

/// SaveModelState to a file; throws CheckError if the file cannot be opened.
void SaveModelStateFile(const ModelState& state, const std::string& path);
/// LoadModelState from a file; throws CheckError on open or parse failure.
ModelState LoadModelStateFile(const std::string& path);

/// Write a Tensor (magic + version + rank + dims + floats).
void SaveTensor(const Tensor& t, std::ostream& os);
/// Read a Tensor written by SaveTensor; throws CheckError on bad
/// magic/version, truncation, implausible rank/dims, or element-count
/// overflow.
Tensor LoadTensor(std::istream& is);

/// SaveTensor to a file; throws CheckError if the file cannot be opened.
void SaveTensorFile(const Tensor& t, const std::string& path);
/// LoadTensor from a file; throws CheckError on open or parse failure.
Tensor LoadTensorFile(const std::string& path);

// Audited little-endian wire primitives shared by every framed format in
// this library (model states, tensors, fl/checkpoint). Readers CHECK-fail on
// truncation so corrupt input can never yield a silently wrong value.
namespace wire {

/// Write a 32-bit value, little-endian.
void WriteU32(std::ostream& os, std::uint32_t v);
/// Write a 64-bit value, little-endian.
void WriteU64(std::ostream& os, std::uint64_t v);
/// Read a 32-bit little-endian value; throws CheckError on truncation.
std::uint32_t ReadU32(std::istream& is);
/// Read a 64-bit little-endian value; throws CheckError on truncation.
std::uint64_t ReadU64(std::istream& is);

}  // namespace wire

}  // namespace cip::fl
