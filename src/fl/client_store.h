// Client lifecycle store: the ownership API between a federated run and its
// fleet.
//
// The round engine used to require every client as a live object for the
// whole run, which caps a simulation at a few hundred clients. ClientStore
// inverts the ownership: a *cold* store registers clients as records — the
// factory that can construct client id k, plus k's serialized cross-round
// state (optimizer moments, the CIP secret perturbation t) from the PR 4
// ExportState/RestoreState contract — and only the round's sampled cohort is
// ever materialized into live objects. Between participations a client is a
// byte blob in an LRU hot set with a configurable byte budget, spilling to
// fixed-slot shard files under StoreOptions::spill_dir; server memory is
// O(hot budget + sampled cohort), never O(registered fleet).
//
// Determinism contract: a record is the exact bytes of the client's
// ExportState, and RestoreState on a freshly constructed client of the same
// spec reproduces training bit-identically (docs/ROBUSTNESS.md). Hot-set
// size, spill-vs-resident and eviction order therefore cannot affect round
// results — only where the same bytes wait. docs/SCALE.md works the layout
// and the memory math; shard framing reuses the hostile-input-hardened
// fl/serialize primitives and validates every count/offset before sizing or
// seeking anything.
//
// Two compatibility modes keep small fixed fleets simple: a *live* store
// owns heap clients registered via Add() (objects persist across rounds,
// exactly the pre-store semantics), and a *borrowed* store wraps clients
// owned elsewhere (tests and benches that need to inspect live objects).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fl/client.h"

namespace cip::fl {

/// Cold-store tuning: how much serialized client state stays resident and
/// where the remainder spills.
struct StoreOptions {
  /// Byte budget for the LRU hot set of serialized client records. When an
  /// eviction pushes the resident total past the budget, least-recently-used
  /// records spill to shard files until it fits again. With no spill_dir the
  /// budget is not enforced (every record stays resident).
  std::size_t hot_bytes = std::size_t{64} << 20;
  /// Scratch directory for shard files; empty disables spilling. The store
  /// owns the directory's shard files: construction removes stale ones (a
  /// fresh store starts empty — checkpoints, not spill files, are the
  /// restart mechanism).
  std::string spill_dir;
  /// Client records per shard file: client id maps to shard id/shard_clients,
  /// directory slot id%shard_clients. Must be >= 1.
  std::size_t shard_clients = 1024;
};

/// Cumulative lifecycle counters, exposed for telemetry and benchmarks.
struct StoreStats {
  std::size_t hot_hits = 0;      ///< materializations served from the hot set
  std::size_t cold_loads = 0;    ///< materializations read from a shard file
  std::size_t evictions = 0;     ///< trained clients re-serialized to records
  std::size_t spills = 0;        ///< records pushed from hot set to shards
  std::size_t hot_bytes = 0;     ///< serialized bytes currently resident
  std::size_t hot_records = 0;   ///< records currently in the hot set
  std::size_t spilled_records = 0;  ///< records currently on disk only
};

/// Serialize one client's cross-round state as a shard record blob: record
/// magic, client id, tensor count, then fl/serialize-framed tensors.
std::string EncodeClientRecord(std::uint64_t id, const ClientState& state);

/// Parse a record blob back into a ClientState, verifying it belongs to
/// `expect_id`. Throws cip::CheckError on bad magic, id mismatch, hostile
/// tensor counts, truncation at any byte, or trailing bytes.
ClientState DecodeClientRecord(const std::string& blob,
                               std::uint64_t expect_id);

class ClientStore {
 public:
  /// Constructs client id on demand (cold mode). Must be pure per id: the
  /// same id always yields an identically configured client.
  using Factory = std::function<std::unique_ptr<ClientBase>(std::size_t)>;

  /// A materialized client. Owns the object in cold mode (destroyed when the
  /// handle dies — pair every cold Materialize with an Evict first if the
  /// state must survive); borrows it in live/borrowed mode.
  class Handle {
   public:
    Handle() = default;
    /// The live client, or nullptr for a default-constructed handle.
    ClientBase* get() const { return ptr_; }
    ClientBase& operator*() const { return *ptr_; }
    ClientBase* operator->() const { return ptr_; }
    /// True when the handle holds a live client.
    explicit operator bool() const { return ptr_ != nullptr; }

   private:
    friend class ClientStore;
    std::unique_ptr<ClientBase> owned_;
    ClientBase* ptr_ = nullptr;
  };

  /// Cold store: num_clients registered records, constructed through
  /// `factory` when sampled. CHECK-fails on num_clients == 0, a null
  /// factory, or opts.shard_clients == 0.
  ClientStore(std::size_t num_clients, Factory factory, StoreOptions opts);

  /// Live store: starts empty; register heap clients via Add(). The store
  /// owns them for its lifetime — the pre-store semantics for small fleets.
  ClientStore();

  /// Borrowed store: wraps clients owned by the caller, who must keep them
  /// alive for the store's lifetime.
  explicit ClientStore(std::span<ClientBase* const> clients);

  ClientStore(ClientStore&&) = default;
  ClientStore& operator=(ClientStore&&) = default;
  ClientStore(const ClientStore&) = delete;
  ClientStore& operator=(const ClientStore&) = delete;

  /// Register a client with the next id (live mode only; CHECK-fails
  /// otherwise). Returns the non-owning pointer for post-run inspection.
  ClientBase* Add(std::unique_ptr<ClientBase> client);

  /// Registered fleet size (cold capacity, or clients added/borrowed).
  std::size_t num_clients() const;

  /// True for a cold store (records + factory; clients are ephemeral).
  bool cold() const { return mode_ == Mode::kCold; }

  /// Produce the live client for `id`. Cold mode constructs it through the
  /// factory and restores its record (hot set first, then shards); live and
  /// borrowed modes return the persistent object. Coordinator-only: call
  /// serially outside parallel regions.
  Handle Materialize(std::size_t id);

  /// Re-serialize a trained client's state back into the store (cold mode;
  /// no-op in live/borrowed modes, whose objects persist). An empty
  /// ExportState erases the record — a stateless client rematerializes
  /// fresh. Coordinator-only, like Materialize.
  void Evict(std::size_t id, const ClientBase& client);

  /// Sparse (id, state) snapshot of every stateful client, sorted by id —
  /// the checkpoint payload. Cold mode decodes records (resident or
  /// spilled) without touching LRU order; live/borrowed modes export from
  /// the live objects.
  std::vector<std::pair<std::uint64_t, ClientState>> ExportStates() const;

  /// Non-destructive single-client state read: decode `id`'s state into
  /// `out` without materializing, erasing the record, or touching LRU
  /// recency (an observer, like ExportStates). Cold mode reads the hot blob
  /// or shard slot; live/borrowed modes export from the live object.
  /// Returns false when the client has no state (never participated, or its
  /// last ExportState was empty). This is the serving t-cache's read path —
  /// Materialize would move the record's ownership into the handle and
  /// destroy it with the handle.
  bool PeekState(std::size_t id, ClientState& out) const;

  /// Monotonic per-id counter that moves every time `id`'s stored record
  /// changes (Evict re-serialization, Materialize's ownership transfer out
  /// of the store, checkpoint restore). Cache keys derived from PeekState
  /// stay valid exactly while this value is unchanged. Cold mode only:
  /// live/borrowed stores mutate their objects in place, so their consumers
  /// must invalidate explicitly. Starts at 0 for an untouched id.
  std::uint64_t state_version(std::size_t id) const;

  /// Install a checkpoint's sparse states. Cold mode re-encodes them as
  /// records; live/borrowed modes RestoreState every client (absent ids get
  /// an empty state, which stateless clients accept).
  void RestoreStates(
      const std::vector<std::pair<std::uint64_t, ClientState>>& states);

  /// Deliver the final aggregate to persistent clients (live/borrowed
  /// modes; inference uses the global model). Cold mode is a no-op — a cold
  /// record has no model to install, and the final global lives in the run
  /// log/checkpoint.
  void BroadcastFinal(const ModelState& global);

  /// Cumulative lifecycle counters (see StoreStats).
  const StoreStats& stats() const { return stats_; }

 private:
  enum class Mode { kCold, kLive, kBorrowed };

  void InsertRecord(std::size_t id, std::string blob);
  void EraseRecord(std::size_t id);
  void SpillOverBudget();
  std::string ShardPath(std::size_t shard) const;
  void WriteShardRecord(std::size_t id, const std::string& blob);
  std::string ReadShardRecord(std::size_t id) const;

  Mode mode_ = Mode::kLive;
  std::size_t num_clients_ = 0;
  Factory factory_;
  StoreOptions opts_;
  StoreStats stats_;

  // Live/borrowed fleets. ClientStore is the one sanctioned owner of a
  // ClientBase vector (lint rule `client-vector`).
  std::vector<std::unique_ptr<ClientBase>> owned_;
  std::vector<ClientBase*> clients_;

  // Cold records: `spilled_` marks ids whose record lives only in a shard
  // file; resident blobs sit in `hot_` with `lru_` tracking recency (front =
  // most recent). All ordered containers: iteration feeds checkpoints.
  std::map<std::size_t, std::string> hot_;
  std::set<std::size_t> spilled_;
  std::list<std::size_t> lru_;
  std::map<std::size_t, std::list<std::size_t>::iterator> lru_pos_;

  // Per-id record-change counters backing state_version(); absent = 0.
  std::map<std::size_t, std::uint64_t> state_versions_;
};

}  // namespace cip::fl
