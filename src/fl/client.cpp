#include "fl/client.h"

namespace cip::fl {

void ClientBase::RestoreState(const ClientState& state) {
  CIP_CHECK_MSG(state.tensors.empty(),
                "this client kind exports no private state; refusing a "
                "snapshot of " << state.tensors.size()
                               << " tensors (checkpoint/client mismatch)");
}

LegacyClient::LegacyClient(const nn::ModelSpec& spec, data::Dataset local_data,
                           TrainConfig train_cfg, std::uint64_t /*seed*/)
    : model_(nn::MakeClassifier(spec)),
      data_(std::move(local_data)),
      cfg_(train_cfg),
      opt_(train_cfg.lr, train_cfg.momentum, train_cfg.weight_decay,
           train_cfg.grad_clip) {
  CIP_CHECK(!data_.empty());
}

void LegacyClient::SetGlobal(const ModelState& global) {
  const std::vector<nn::Parameter*> params = model_->Parameters();
  global.ApplyTo(params);
}

ModelState LegacyClient::TrainLocal(RoundContext ctx) {
  opt_.set_lr(ctx.LrFor(cfg_));
  float loss = 0.0f;
  for (std::size_t e = 0; e < cfg_.epochs; ++e) {
    loss = TrainEpoch(*model_, data_, opt_, cfg_, ctx.rng);
  }
  last_loss_ = loss;
  const std::vector<nn::Parameter*> params = model_->Parameters();
  return ModelState::From(params);
}

double LegacyClient::EvalAccuracy(const data::Dataset& data) {
  return Evaluate(*model_, data);
}

ClientState LegacyClient::ExportState() const {
  // The model itself is re-broadcast by the server every round; the only
  // cross-round private state is the optimizer's momentum.
  return ClientState{opt_.ExportState()};
}

void LegacyClient::RestoreState(const ClientState& state) {
  opt_.RestoreState(state.tensors);
}

ModelState InitialState(const nn::ModelSpec& spec) {
  auto model = nn::MakeClassifier(spec);
  const std::vector<nn::Parameter*> params = model->Parameters();
  return ModelState::From(params);
}

}  // namespace cip::fl
