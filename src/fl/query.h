// Attacker-facing model handle.
//
// All MI attacks in src/attacks consume this interface: a query returns
// logits for *raw* (un-blended) inputs — what a malicious server/client or an
// external white-box adversary can actually compute. Concrete handles:
//  * ClassifierQuery — a plain single-channel model;
//  * the CIP core provides handles that blend with t = 0 (adversary without
//    the secret) or a guessed t' (adaptive attacks).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/classifier.h"
#include "tensor/tensor.h"

namespace cip::fl {

/// Upper bound on a query handle's eval minibatch: far above any useful
/// setting, low enough that rows * classes cannot overflow a size_t shape
/// product on any model this library builds.
inline constexpr std::size_t kMaxQueryBatchRows = std::size_t{1} << 20;

/// Query-handle tuning, FlOptions-style: plain fields plus a CHECK-failing
/// Validate() called where the options are consumed.
struct QueryOptions {
  /// Rows per eval forward when a handle batches a large input (default:
  /// DefaultQueryBatch(), i.e. CIP_QUERY_BATCH or 64). Purely a
  /// throughput/memory knob — eval results are independent of it.
  std::size_t batch_size;

  QueryOptions();

  /// CHECK-fails (throws cip::CheckError) unless batch_size is in
  /// [1, kMaxQueryBatchRows] — zero and overflow-scale values are
  /// programming errors, not clamp-and-continue inputs.
  void Validate() const;
};

/// The default eval minibatch: CIP_QUERY_BATCH when it strict-parses to a
/// valid count (internal::ParseQueryBatch), else 64. Read once at first use.
std::size_t DefaultQueryBatch();

class QueryModel {
 public:
  virtual ~QueryModel() = default;

  /// Logits for a batch of raw inputs (eval mode).
  virtual Tensor Logits(const Tensor& inputs) = 0;

  /// Logits computed into caller-owned scratch (EnsureShape'd to
  /// [n, NumClasses()]): the allocation-light path the convenience helpers
  /// route through. The default forwards to Logits(); handles with a
  /// persistent-scratch eval path (ClassifierQuery) override it.
  virtual void LogitsInto(const Tensor& inputs, Tensor& out) {
    out = Logits(inputs);
  }

  /// Width of the logit vector this model produces.
  virtual std::size_t NumClasses() const = 0;

  // ---- convenience on top of LogitsInto (logits staged in reused scratch,
  // not a fresh per-call temporary) ----
  Tensor Probs(const Tensor& inputs);
  /// Argmax class per input row.
  std::vector<int> Predict(const Tensor& inputs);
  /// Per-sample cross-entropy losses over `ds`, in dataset order.
  std::vector<float> Losses(const data::Dataset& ds);
  /// Top-1 accuracy over `ds`.
  double Accuracy(const data::Dataset& ds);

 protected:
  /// Logits staging reused across Probs/Predict/Losses/Accuracy calls.
  Tensor logits_scratch_;
};

/// White-box extension: the adversary also holds the parameters and can
/// compute per-sample gradients (the extra signal Pb-Bayes uses).
class WhiteBoxQuery : public QueryModel {
 public:
  /// ‖∇_θ l(θ, z)‖₂ for every sample.
  virtual std::vector<float> GradNorms(const data::Dataset& ds) = 0;
};

/// Handle over a plain classifier (non-owning).
class ClassifierQuery : public WhiteBoxQuery {
 public:
  /// Wrap `model` (borrowed). Validates `opts` here, so a zero or
  /// overflow-scale batch size fails at construction, not mid-attack.
  explicit ClassifierQuery(nn::Classifier& model, QueryOptions opts = {})
      : model_(&model), opts_(opts) {
    opts_.Validate();
  }

  Tensor Logits(const Tensor& inputs) override;
  /// Batched eval through the model's persistent-scratch EvalForward path:
  /// `out` and the minibatch staging are reused across calls, bit-identical
  /// to Logits().
  void LogitsInto(const Tensor& inputs, Tensor& out) override;
  std::vector<float> GradNorms(const data::Dataset& ds) override;
  std::size_t NumClasses() const override { return model_->num_classes(); }

  /// The validated options this handle runs with.
  const QueryOptions& options() const { return opts_; }

 private:
  nn::Classifier* model_;
  QueryOptions opts_;
  Tensor batch_scratch_;  // reused [<=batch_size, ...sample] minibatch
  Shape batch_shape_;     // reusable shape scratch for batch_scratch_
};

namespace internal {

/// Strict parse of a CIP_QUERY_BATCH value: nullopt unless `s` is a plain
/// decimal count in [1, kMaxQueryBatchRows] — empty strings, trailing junk,
/// zero, negatives, and overflow are all rejected (caller falls back to the
/// built-in default rather than guessing).
std::optional<std::size_t> ParseQueryBatch(const char* s);

}  // namespace internal

}  // namespace cip::fl
