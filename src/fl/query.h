// Attacker-facing model handle.
//
// All MI attacks in src/attacks consume this interface: a query returns
// logits for *raw* (un-blended) inputs — what a malicious server/client or an
// external white-box adversary can actually compute. Concrete handles:
//  * ClassifierQuery — a plain single-channel model;
//  * the CIP core provides handles that blend with t = 0 (adversary without
//    the secret) or a guessed t' (adaptive attacks).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/classifier.h"
#include "tensor/tensor.h"

namespace cip::fl {

class QueryModel {
 public:
  virtual ~QueryModel() = default;

  /// Logits for a batch of raw inputs (eval mode).
  virtual Tensor Logits(const Tensor& inputs) = 0;

  /// Width of the logit vector this model produces.
  virtual std::size_t NumClasses() const = 0;

  // ---- convenience on top of Logits ----
  Tensor Probs(const Tensor& inputs);
  /// Argmax class per input row.
  std::vector<int> Predict(const Tensor& inputs);
  /// Per-sample cross-entropy losses over `ds`, in dataset order.
  std::vector<float> Losses(const data::Dataset& ds);
  /// Top-1 accuracy over `ds`.
  double Accuracy(const data::Dataset& ds);
};

/// White-box extension: the adversary also holds the parameters and can
/// compute per-sample gradients (the extra signal Pb-Bayes uses).
class WhiteBoxQuery : public QueryModel {
 public:
  /// ‖∇_θ l(θ, z)‖₂ for every sample.
  virtual std::vector<float> GradNorms(const data::Dataset& ds) = 0;
};

/// Handle over a plain classifier (non-owning).
class ClassifierQuery : public WhiteBoxQuery {
 public:
  explicit ClassifierQuery(nn::Classifier& model, std::size_t batch_size = 64)
      : model_(&model), batch_size_(batch_size) {}

  Tensor Logits(const Tensor& inputs) override;
  std::vector<float> GradNorms(const data::Dataset& ds) override;
  std::size_t NumClasses() const override { return model_->num_classes(); }

 private:
  nn::Classifier* model_;
  std::size_t batch_size_;
};

}  // namespace cip::fl
