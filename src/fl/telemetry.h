// Round telemetry for the federated round engine.
//
// The server records wall-clock and loss figures for every round it runs —
// per-client local-training time plus per-round broadcast/aggregate time —
// into FlLog::telemetry. Defense clients may additionally fill the
// step1/step2 split through RoundContext::telemetry (the CIP client reports
// its Eq. 3 perturbation step and Eq. 4 model step separately, which is what
// Table XI measures). WriteJsonl turns the whole run into one JSON object
// per round for offline analysis.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "fl/fault.h"

namespace cip::fl {

/// Timings and loss for one client within one round.
struct ClientRoundStats {
  std::size_t round = 0;   ///< 1-based round index
  std::size_t client = 0;  ///< index into the Run() clients span
  float loss = 0.0f;       ///< mean local training loss (LastTrainLoss)
  double train_seconds = 0.0;  ///< SetGlobal + TrainLocal wall-clock
  /// Defense-internal split, filled by the client when it has one (CIP:
  /// Step I perturbation / Step II model training). Zero when unused.
  double step1_seconds = 0.0;
  double step2_seconds = 0.0;
  /// Injected fault for this (round, client); kNone for a healthy round.
  FaultKind fault = FaultKind::kNone;
  /// True when the client's update was excluded from aggregation (dropout,
  /// mid-round failure, or a straggler past the round timeout).
  bool dropped = false;
  /// True when this participation is a retry of an earlier faulted round.
  bool retried = false;
};

/// Coordinator-side timings for one round.
struct RoundStats {
  std::size_t round = 0;            ///< 1-based round index
  double broadcast_seconds = 0.0;   ///< tamper hook + participant sampling
  double train_wall_seconds = 0.0;  ///< wall-clock of the (parallel) client phase
  double aggregate_seconds = 0.0;   ///< fixed-order FedAvg reduction
  /// Updates aggregated this round (participants minus dropped clients).
  std::size_t survivors = 0;
  /// True when survivors fell below FlOptions::min_quorum and the round was
  /// skipped (global model unchanged).
  bool skipped = false;
  /// Updates that were trained against an older round's global and folded
  /// into this round's aggregate — the asynchronous-aggregation path of the
  /// socket server (net/round_engine.h). Always 0 for the in-process
  /// engine, whose rounds are synchronous barriers.
  std::size_t folded_stragglers = 0;
  /// ClientStore lifecycle counters for this round (all zero for live
  /// fleets, whose clients are never materialized or evicted): cohort
  /// materializations served from the hot set vs read back from shard
  /// files, trained clients re-serialized into the store, and records
  /// pushed out to shards by the hot-set byte budget.
  std::size_t store_hot_hits = 0;
  std::size_t store_cold_loads = 0;
  std::size_t store_evictions = 0;
  std::size_t store_spills = 0;
  std::vector<ClientRoundStats> clients;  ///< one entry per participant
};

/// Telemetry for a whole federated run.
struct RoundTelemetry {
  std::vector<RoundStats> rounds;

  /// Write one JSON object per round (JSON Lines).
  void WriteJsonl(std::ostream& os) const;
};

}  // namespace cip::fl
