#include "fl/trainer.h"

#include "metrics/metrics.h"
#include "tensor/ops.h"

namespace cip::fl {

float LrAtRound(const TrainConfig& cfg, std::size_t round) {
  if (cfg.lr_decay_every == 0 || round == 0) return cfg.lr;
  const optim::StepDecaySchedule sched(cfg.lr, cfg.lr_decay,
                                       cfg.lr_decay_every);
  return sched.LrAt(round - 1);
}

float TrainEpoch(nn::Classifier& model, const data::Dataset& data,
                 optim::Optimizer& opt, const TrainConfig& cfg, Rng& rng) {
  CIP_CHECK_GT(cfg.batch_size, 0u);
  CIP_CHECK(!data.empty());
  const std::vector<std::size_t> perm = rng.Permutation(data.size());
  const std::vector<nn::Parameter*> params = model.Parameters();
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data.size(); start += cfg.batch_size) {
    const std::size_t end = std::min(start + cfg.batch_size, data.size());
    const std::span<const std::size_t> idx(perm.data() + start, end - start);
    data::Dataset batch = data.Subset(idx);
    Tensor inputs = cfg.augment ? data::Augment(batch.inputs, cfg.aug, rng)
                                : std::move(batch.inputs);
    const Tensor logits = model.Forward(inputs, /*train=*/true);
    Tensor dlogits;
    const float loss =
        ops::SoftmaxCrossEntropy(logits, batch.labels, &dlogits);
    model.Backward(dlogits);
    opt.Step(params);
    total_loss += loss;
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total_loss / batches) : 0.0f;
}

Tensor LogitsFor(nn::Classifier& model, const Tensor& inputs,
                 std::size_t batch_size) {
  CIP_CHECK_GT(batch_size, 0u);
  const std::size_t n = inputs.dim(0);
  Tensor out({n, model.num_classes()});
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(start + batch_size, n);
    const Tensor logits =
        model.Forward(inputs.Slice(start, end), /*train=*/false);
    std::copy(logits.data(), logits.data() + logits.size(),
              out.data() + start * model.num_classes());
  }
  return out;
}

double Evaluate(nn::Classifier& model, const data::Dataset& data,
                std::size_t batch_size) {
  if (data.empty()) return 0.0;
  const Tensor logits = LogitsFor(model, data.inputs, batch_size);
  return metrics::Accuracy(ops::ArgmaxRows(logits), data.labels);
}

std::vector<float> PerSampleLosses(nn::Classifier& model,
                                   const data::Dataset& data,
                                   std::size_t batch_size) {
  const Tensor logits = LogitsFor(model, data.inputs, batch_size);
  return ops::PerSampleCrossEntropy(logits, data.labels);
}

}  // namespace cip::fl
