// A client's secret perturbation t (one tensor with the per-sample shape).
//
// Initialized "as some random input" (Sec. III-B Step I) — uniform in the
// input range, optionally from a shared seed image (the Knowledge-1 adaptive
// attack studies adversaries who know that seed).
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace cip::core {

class Perturbation {
 public:
  Perturbation() = default;
  /// Wrap an existing tensor as the perturbation (shape = sample shape).
  explicit Perturbation(Tensor t) : t_(std::move(t)) {}

  /// Uniform random init in [lo, hi] — the "random input" start point.
  static Perturbation Random(const Shape& sample_shape, Rng& rng,
                             float lo = 0.0f, float hi = 1.0f);

  /// Init as a convex mix of a seed tensor and fresh noise:
  /// t = (1-w)·seed + w·noise. w = 0 reproduces the seed exactly (the
  /// Knowledge-1 "public seed" scenario); w = 1 is fully random.
  static Perturbation FromSeed(const Tensor& seed, float noise_weight,
                               Rng& rng, float lo = 0.0f, float hi = 1.0f);

  /// The underlying tensor t, shaped like one input sample.
  Tensor& tensor() { return t_; }
  const Tensor& tensor() const { return t_; }
  /// True before initialization (t has no elements — treated as t = 0).
  bool empty() const { return t_.size() == 0; }

 private:
  Tensor t_;
};

}  // namespace cip::core
