#include "core/blend.h"

#include <algorithm>

namespace cip::core {

Blended Blend(const Tensor& x, const Tensor& t, const BlendConfig& cfg) {
  CIP_CHECK_GE(x.rank(), 2u);
  CIP_CHECK(cfg.alpha >= 0.0f && cfg.alpha < 1.0f);
  CIP_CHECK_LT(cfg.clip_lo, cfg.clip_hi);
  const std::size_t n = x.dim(0);
  const std::size_t stride = x.size() / std::max<std::size_t>(n, 1);
  const bool has_t = t.size() > 0;
  if (has_t) {
    CIP_CHECK_MSG(t.size() == stride,
                  "perturbation size " << t.size()
                                       << " != sample size " << stride);
  }
  Blended out{Tensor(x.shape()), Tensor(x.shape()), Tensor(x.shape()),  // CIP_ANALYZE_OK(hot-alloc-tensor): Blend's four outputs are its contract; per-batch staging, not steady-state creep
              Tensor(x.shape())};  // CIP_ANALYZE_OK(hot-alloc-tensor): second half of the Blended output aggregate (see previous line)
  const float a = cfg.alpha;
  for (std::size_t i = 0; i < n; ++i) {
    const float* px = x.data() + i * stride;
    float* p1 = out.c1.data() + i * stride;
    float* p2 = out.c2.data() + i * stride;
    float* m1 = out.mask1.data() + i * stride;
    float* m2 = out.mask2.data() + i * stride;
    for (std::size_t j = 0; j < stride; ++j) {
      const float tv = has_t ? t[j] : 0.0f;
      const float v1 = (1.0f - a) * px[j] + a * tv;
      const float v2 = (1.0f + a) * px[j] - a * tv;
      p1[j] = std::clamp(v1, cfg.clip_lo, cfg.clip_hi);
      p2[j] = std::clamp(v2, cfg.clip_lo, cfg.clip_hi);
      m1[j] = (v1 > cfg.clip_lo && v1 < cfg.clip_hi) ? 1.0f : 0.0f;
      m2[j] = (v2 > cfg.clip_lo && v2 < cfg.clip_hi) ? 1.0f : 0.0f;
    }
  }
  return out;
}

// CIP_HOT  (serve-path blend: straight into the batch arenas, no masks)
void BlendRowsInto(const float* x, const float* t, std::size_t rows,
                   std::size_t stride, const BlendConfig& cfg, float* c1,
                   float* c2) {
  const float a = cfg.alpha;
  for (std::size_t i = 0; i < rows; ++i) {
    const float* px = x + i * stride;
    float* p1 = c1 + i * stride;
    float* p2 = c2 + i * stride;
    for (std::size_t j = 0; j < stride; ++j) {
      const float tv = t != nullptr ? t[j] : 0.0f;
      const float v1 = (1.0f - a) * px[j] + a * tv;
      const float v2 = (1.0f + a) * px[j] - a * tv;
      p1[j] = std::clamp(v1, cfg.clip_lo, cfg.clip_hi);
      p2[j] = std::clamp(v2, cfg.clip_lo, cfg.clip_hi);
    }
  }
}

Tensor BlendGradT(const Blended& blended, const Tensor& g1, const Tensor& g2,
                  float alpha) {
  CIP_CHECK(g1.SameShape(blended.c1));
  CIP_CHECK(g2.SameShape(blended.c2));
  const std::size_t n = g1.dim(0);
  const std::size_t stride = g1.size() / std::max<std::size_t>(n, 1);
  Shape t_shape(g1.shape().begin() + 1, g1.shape().end());
  Tensor gt(t_shape);
  for (std::size_t i = 0; i < n; ++i) {
    const float* p1 = g1.data() + i * stride;
    const float* p2 = g2.data() + i * stride;
    const float* m1 = blended.mask1.data() + i * stride;
    const float* m2 = blended.mask2.data() + i * stride;
    for (std::size_t j = 0; j < stride; ++j) {
      gt[j] += alpha * (p1[j] * m1[j] - p2[j] * m2[j]);
    }
  }
  return gt;
}

Tensor BlendGradX(const Blended& blended, const Tensor& g1, const Tensor& g2,
                  float alpha) {
  CIP_CHECK(g1.SameShape(blended.c1));
  CIP_CHECK(g2.SameShape(blended.c2));
  Tensor gx(g1.shape());
  for (std::size_t j = 0; j < gx.size(); ++j) {
    gx[j] = (1.0f - alpha) * g1[j] * blended.mask1[j] +
            (1.0f + alpha) * g2[j] * blended.mask2[j];
  }
  return gx;
}

}  // namespace cip::core
