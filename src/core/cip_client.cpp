#include "core/cip_client.h"

#include <chrono>
#include <cmath>

#include "tensor/ops.h"

namespace cip::core {

CipClient::CipClient(const nn::ModelSpec& spec, data::Dataset local_data,
                     CipConfig cfg, std::uint64_t seed)
    : model_(nn::MakeDualChannelClassifier(spec)),
      data_(std::move(local_data)),
      cfg_(std::move(cfg)),
      opt_(cfg_.train.lr, cfg_.train.momentum, cfg_.train.weight_decay,
           cfg_.train.grad_clip),
      init_rng_(seed) {
  CIP_CHECK(!data_.empty());
  const Shape sample_shape = data_.SampleShape();
  if (cfg_.init_seed.size() > 0) {
    CIP_CHECK(cfg_.init_seed.shape() == sample_shape);
    t_ = Perturbation::FromSeed(cfg_.init_seed, cfg_.init_noise_weight,
                                init_rng_, cfg_.blend.clip_lo,
                                cfg_.blend.clip_hi);
  } else {
    t_ = Perturbation::Random(sample_shape, init_rng_, cfg_.blend.clip_lo,
                              cfg_.blend.clip_hi);
  }
}

void CipClient::SetGlobal(const fl::ModelState& global) {
  const std::vector<nn::Parameter*> params = model_->Parameters();
  global.ApplyTo(params);
}

fl::ModelState CipClient::TrainLocal(fl::RoundContext ctx) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    // CIP_ANALYZE_OK(det-wallclock): step timing lands in RoundContext telemetry only, never in model state
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  opt_.set_lr(ctx.LrFor(cfg_.train));
  // CIP_ANALYZE_OK(det-wallclock): telemetry: Step I duration reported via ctx.telemetry
  const auto step1_t0 = Clock::now();
  StepIOptimizePerturbation(ctx.rng);
  const double step1_seconds = seconds_since(step1_t0);
  // CIP_ANALYZE_OK(det-wallclock): telemetry: Step II duration reported via ctx.telemetry
  const auto step2_t0 = Clock::now();
  float loss = 0.0f;
  for (std::size_t e = 0; e < cfg_.train.epochs; ++e) {
    loss = StepIITrainModel(ctx.rng);
  }
  if (ctx.telemetry != nullptr) {
    ctx.telemetry->step1_seconds = step1_seconds;
    ctx.telemetry->step2_seconds = seconds_since(step2_t0);
  }
  last_loss_ = loss;
  const std::vector<nn::Parameter*> params = model_->Parameters();
  return fl::ModelState::From(params);
}

void CipClient::StepIOptimizePerturbation(Rng& rng) {
  OptimizePerturbation(*model_, data_, t_.tensor(), cfg_.blend, cfg_.lambda_t,
                       cfg_.lr_t, cfg_.perturb_steps, cfg_.perturb_batch,
                       rng);
}

float CipClient::StepIITrainModel(Rng& rng) {
  const std::vector<std::size_t> perm = rng.Permutation(data_.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  const Tensor empty_t;  // raw-query path B(x, 0)
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < data_.size();
       start += cfg_.train.batch_size) {
    const std::size_t end =
        std::min(start + cfg_.train.batch_size, data_.size());
    const std::span<const std::size_t> idx(perm.data() + start, end - start);
    data::Dataset batch = data_.Subset(idx);
    Tensor inputs = cfg_.train.augment
                        ? data::Augment(batch.inputs, cfg_.train.aug, rng)
                        : std::move(batch.inputs);

    // Minimize CE on the blended data D_t.
    const Blended blended = Blend(inputs, t_.tensor(), cfg_.blend);
    const Tensor logits = model_->Forward(blended.c1, blended.c2, true);
    Tensor dlogits;
    const float loss =
        ops::SoftmaxCrossEntropy(logits, batch.labels, &dlogits);
    model_->Backward(dlogits);

    // Maximize CE on the raw-query path (weight λ_m): descend on −λ_m·CE,
    // but only while the raw loss is below the non-member ceiling — original
    // samples should look like non-members, not be abnormally wrong.
    if (cfg_.lambda_m > 0.0f) {
      const float ceiling =
          cfg_.raw_loss_ceiling > 0.0f
              ? cfg_.raw_loss_ceiling
              : std::log(static_cast<float>(model_->num_classes()));
      const Blended raw = Blend(inputs, empty_t, cfg_.blend);
      const Tensor raw_logits = model_->Forward(raw.c1, raw.c2, true);
      Tensor raw_dlogits;
      const float raw_loss =
          ops::SoftmaxCrossEntropy(raw_logits, batch.labels, &raw_dlogits);
      if (raw_loss < ceiling) {
        ops::ScaleInPlace(raw_dlogits, -cfg_.lambda_m);
        model_->Backward(raw_dlogits);
      } else {
        model_->ClearCache();  // drop the unused forward caches
      }
    }

    opt_.Step(params);
    total_loss += loss;
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total_loss / batches) : 0.0f;
}

fl::ClientState CipClient::ExportState() const {
  fl::ClientState state;
  state.tensors.push_back(t_.tensor());
  for (Tensor& v : opt_.ExportState()) state.tensors.push_back(std::move(v));
  return state;
}

void CipClient::RestoreState(const fl::ClientState& state) {
  CIP_CHECK_MSG(!state.tensors.empty(),
                "CIP client snapshot must carry the perturbation tensor");
  CIP_CHECK_MSG(state.tensors.front().shape() == data_.SampleShape(),
                "checkpointed perturbation shape does not match this "
                "client's sample shape");
  t_ = Perturbation(state.tensors.front());
  opt_.RestoreState({state.tensors.begin() + 1, state.tensors.end()});
}

double CipClient::EvalAccuracy(const data::Dataset& data) {
  return DualAccuracy(*model_, data, t_.tensor(), cfg_.blend);
}

float CipClient::BlendedDataLoss() {
  const std::vector<float> losses =
      DualLosses(*model_, data_, t_.tensor(), cfg_.blend);
  double s = 0.0;
  for (float l : losses) s += l;
  return losses.empty() ? 0.0f : static_cast<float>(s / losses.size());
}

float OptimizePerturbation(nn::DualChannelClassifier& model,
                           const data::Dataset& data, Tensor& t,
                           const BlendConfig& blend, float lambda_t,
                           float lr_t, std::size_t steps,
                           std::size_t batch_size, Rng& rng) {
  CIP_CHECK_GT(batch_size, 0u);
  CIP_CHECK(!data.empty());
  float last_loss = 0.0f;
  for (std::size_t s = 0; s < steps; ++s) {
    // Random minibatch.
    const std::size_t bsz = std::min(batch_size, data.size());
    std::vector<std::size_t> idx(bsz);
    for (std::size_t i = 0; i < bsz; ++i) idx[i] = rng.Index(data.size());
    const data::Dataset batch = data.Subset(idx);

    const Blended blended = Blend(batch.inputs, t, blend);
    const Tensor logits = model.Forward(blended.c1, blended.c2, true);
    Tensor dlogits;
    last_loss = ops::SoftmaxCrossEntropy(logits, batch.labels, &dlogits);
    auto [g1, g2] = model.Backward(dlogits);
    model.ZeroGrad();  // Step I leaves θ untouched

    // dlogits already carries the 1/batch mean reduction, and t is shared
    // across the batch, so summing per-sample contributions in BlendGradT
    // yields d(mean loss)/dt directly.
    Tensor gt = BlendGradT(blended, g1, g2, blend.alpha);
    ops::Axpy(gt, lambda_t, ops::Sign(t));
    ops::Axpy(t, -lr_t, gt);
    ops::ClipInPlace(t, blend.clip_lo, blend.clip_hi);
  }
  return last_loss;
}

fl::ModelState InitialDualState(const nn::ModelSpec& spec) {
  auto model = nn::MakeDualChannelClassifier(spec);
  const std::vector<nn::Parameter*> params = model->Parameters();
  return fl::ModelState::From(params);
}

}  // namespace cip::core
