#include "core/cip_model.h"

#include <cmath>

#include "metrics/metrics.h"
#include "tensor/ops.h"

namespace cip::core {

// CIP_HOT  (blend+forward eval path used by accuracy/loss sweeps)
Tensor DualLogits(nn::DualChannelClassifier& model, const Tensor& inputs,
                  const Tensor& t, const BlendConfig& cfg,
                  std::size_t batch_size) {
  CIP_CHECK_GT(batch_size, 0u);
  const std::size_t n = inputs.dim(0);
  // CIP_ANALYZE_OK(hot-alloc-tensor): the returned logits buffer - the one allocation the eval sweep keeps
  Tensor out({n, model.num_classes()});
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(start + batch_size, n);
    const Blended b = Blend(inputs.Slice(start, end), t, cfg);
    const Tensor logits = model.Forward(b.c1, b.c2, /*train=*/false);
    std::copy(logits.data(), logits.data() + logits.size(),
              out.data() + start * model.num_classes());
  }
  return out;
}

double DualAccuracy(nn::DualChannelClassifier& model, const data::Dataset& ds,
                    const Tensor& t, const BlendConfig& cfg,
                    std::size_t batch_size) {
  if (ds.empty()) return 0.0;
  const Tensor logits = DualLogits(model, ds.inputs, t, cfg, batch_size);
  return metrics::Accuracy(ops::ArgmaxRows(logits), ds.labels);
}

std::vector<float> CipWhiteBox::GradNorms(const data::Dataset& ds) {
  std::vector<float> out(ds.size());
  const std::vector<nn::Parameter*> params = model_->Parameters();
  model_->ZeroGrad();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const data::Dataset one = ds.Subset(std::span(&i, 1));
    const Blended b = Blend(one.inputs, t_, cfg_);
    const Tensor logits = model_->Forward(b.c1, b.c2, /*train=*/true);
    Tensor dlogits;
    ops::SoftmaxCrossEntropy(logits, one.labels, &dlogits);
    model_->Backward(dlogits);
    double sq = 0.0;
    for (const nn::Parameter* p : params) {
      for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
    }
    out[i] = static_cast<float>(std::sqrt(sq));
    model_->ZeroGrad();
  }
  return out;
}

std::vector<float> DualLosses(nn::DualChannelClassifier& model,
                              const data::Dataset& ds, const Tensor& t,
                              const BlendConfig& cfg, std::size_t batch_size) {
  const Tensor logits = DualLogits(model, ds.inputs, t, cfg, batch_size);
  return ops::PerSampleCrossEntropy(logits, ds.labels);
}

}  // namespace cip::core
