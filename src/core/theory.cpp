#include "core/theory.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace cip::core {

namespace {

double GaussianPdf(double x, double mu, double sd) {
  const double z = (x - mu) / sd;
  return std::exp(-0.5 * z * z) / (sd * std::sqrt(2.0 * M_PI));
}

}  // namespace

double AdversarialAdvantage(double p_member) {
  CIP_CHECK(p_member >= 0.0 && p_member <= 1.0);
  constexpr double kEps = 1e-12;
  return std::min(p_member, 1.0 - kEps) / std::max(1.0 - p_member, kEps);
}

double Theorem1Epsilon(double loss_true, double loss_guess,
                       double temperature) {
  CIP_CHECK_GT(temperature, 0.0);
  return std::exp(-(loss_guess - loss_true) / temperature);
}

double BoundedAdvantage(double adv_true, double loss_true, double loss_guess,
                        double temperature) {
  return Theorem1Epsilon(loss_true, loss_guess, temperature) * adv_true;
}

double EmpiricalMemberProb(double loss, std::span<const float> member_losses,
                           std::span<const float> nonmember_losses) {
  CIP_CHECK(!member_losses.empty());
  CIP_CHECK(!nonmember_losses.empty());
  const double mu_m = Mean(member_losses);
  const double mu_n = Mean(nonmember_losses);
  const double sd_m = std::max(StdDev(member_losses), 1e-6);
  const double sd_n = std::max(StdDev(nonmember_losses), 1e-6);
  const double pm = GaussianPdf(loss, mu_m, sd_m);
  const double pn = GaussianPdf(loss, mu_n, sd_n);
  const double denom = pm + pn;
  if (denom <= 0.0) return 0.5;
  return pm / denom;
}

}  // namespace cip::core
