// The CIP federated-learning client (the paper's core contribution).
//
// Per round, the client alternates (Sec. III-B):
//   Step I  — optimize its secret perturbation t to minimize
//             CE(θ, B(x,t)) + λ_t·|t|₁ over its local data (Eq. 3);
//   Step II — optimize θ to minimize
//             CE(θ, B(x,t)) − λ_m·CE(θ, B(x,0)) (Eq. 4), where B(x,0) is the
//             raw-query path an uninformed adversary uses.
// The perturbation never leaves the client; only θ is communicated.
#pragma once

#include <memory>

#include "core/blend.h"
#include "core/cip_model.h"
#include "core/perturbation.h"
#include "fl/client.h"
#include "nn/backbones.h"

namespace cip::core {

struct CipConfig {
  BlendConfig blend;            ///< α and the clip range
  float lambda_t = 1e-4f;       ///< ℓ1 weight in Eq. 3 (paper: 1e-6..1e-12,
                                ///< rescaled to our model/loss magnitudes)
  float lambda_m = 0.05f;       ///< raw-loss weight in Eq. 4 (paper: ≤1e-6)
  /// Ceiling for the raw-path loss: ascent stops once the batch's raw loss
  /// reaches this value, implementing the paper's intent that original
  /// samples "assemble other non-members" without abnormally high loss
  /// (Sec. III-B / RQ4-Knowledge-4). 0 = use ln(num_classes), the loss of an
  /// uninformative prediction.
  float raw_loss_ceiling = 0.0f;
  std::size_t perturb_steps = 10;  ///< Step-I SGD iterations per round
  std::size_t perturb_batch = 32;
  float lr_t = 5e-2f;           ///< Step-I learning rate
  fl::TrainConfig train;        ///< Step-II optimizer settings
  /// Optional public seed for t's initialization (Knowledge-1 scenario);
  /// noise weight 1 = fully random init (the default, secret t).
  Tensor init_seed;
  float init_noise_weight = 1.0f;
};

class CipClient : public fl::ClientBase {
 public:
  CipClient(const nn::ModelSpec& spec, data::Dataset local_data,
            CipConfig cfg, std::uint64_t seed);

  void SetGlobal(const fl::ModelState& global) override;
  fl::ModelState TrainLocal(fl::RoundContext ctx) override;
  double EvalAccuracy(const data::Dataset& data) override;
  float LastTrainLoss() const override { return last_loss_; }
  const data::Dataset& LocalData() const override { return data_; }
  /// Snapshot layout: the secret perturbation t first, then the Step-II
  /// optimizer's momentum tensors. t never leaves the client during
  /// training; a checkpoint containing it must be protected like the client
  /// key material it is (see docs/ROBUSTNESS.md).
  fl::ClientState ExportState() const override;
  void RestoreState(const fl::ClientState& state) override;

  /// The client's dual-channel model (mutable: evaluation helpers feed it).
  nn::DualChannelClassifier& model() { return *model_; }
  const Tensor& perturbation() const { return t_.tensor(); }
  const CipConfig& config() const { return cfg_; }

  /// Mean blended training loss over the local data (used by Fig. 7's EMD
  /// analysis of client loss distributions).
  float BlendedDataLoss();

 private:
  void StepIOptimizePerturbation(Rng& rng);
  float StepIITrainModel(Rng& rng);

  std::unique_ptr<nn::DualChannelClassifier> model_;
  data::Dataset data_;
  CipConfig cfg_;
  optim::Sgd opt_;
  Rng init_rng_;  ///< construction-time randomness (perturbation init) only
  Perturbation t_;
  float last_loss_ = 0.0f;
};

/// Optimize a perturbation t against a *fixed* model on the given data for
/// `steps` SGD iterations (Eq. 3); returns the final mean blended loss.
/// Shared by CipClient's Step I and the Optimization-1 adaptive attack.
float OptimizePerturbation(nn::DualChannelClassifier& model,
                           const data::Dataset& data, Tensor& t,
                           const BlendConfig& blend, float lambda_t,
                           float lr_t, std::size_t steps,
                           std::size_t batch_size, Rng& rng);

/// ModelState with the initial weights of a dual-channel spec.
fl::ModelState InitialDualState(const nn::ModelSpec& spec);

}  // namespace cip::core
