// Theoretical adversarial-advantage analysis (Sec. III-C).
//
// Adv(θ, z) = Pr(m=1 | θ, z) / Pr(m=0 | θ, z)                       (Eq. 5)
//
// Theorem 1: for a guessed perturbation t' with l(θ, z_t) ≤ l(θ, z_t'),
//   Adv(θ, z_t') = ε · Adv(θ, z_t),  ε = exp(−(l(θ,z_t') − l(θ,z_t))/T) ≤ 1.
//
// This module provides the formulas plus an empirical estimator of the
// advantage from observed member/non-member loss samples, used by tests and
// the Fig. 1 bench to validate the theorem's direction on trained models.
#pragma once

#include <span>

namespace cip::core {

/// Adv from the posterior member probability p = Pr(m=1 | θ, z).
double AdversarialAdvantage(double p_member);

/// Theorem 1's ε for given losses under the true and guessed perturbation.
double Theorem1Epsilon(double loss_true, double loss_guess,
                       double temperature);

/// Predicted advantage under the guessed perturbation per Theorem 1.
double BoundedAdvantage(double adv_true, double loss_true, double loss_guess,
                        double temperature);

/// Empirical Pr(m=1 | loss) via Gaussian class-conditional densities fit to
/// member and non-member loss samples (equal priors). This is the "strongest
/// attack" posterior the theorem reasons about, instantiated on data.
double EmpiricalMemberProb(double loss, std::span<const float> member_losses,
                           std::span<const float> nonmember_losses);

}  // namespace cip::core
