// CIP's blending function (Eq. 2):
//
//   B(x, t) = ( (1-α)·x + α·t ,  (1+α)·x − α·t )
//
// followed by clipping both components into the input range of x. The
// perturbation t has the per-sample shape and broadcasts across the batch.
//
// Step I needs d(loss)/dt. Blending is linear, so given the upstream channel
// gradients g1, g2 returned by the dual-channel model,
//
//   dL/dt = Σ_batch ( α·g1 ⊙ m1 − α·g2 ⊙ m2 )
//
// where m1, m2 are the clip derivative masks (0 where the clip saturated).
#pragma once

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace cip::core {

struct BlendConfig {
  float alpha = 0.5f;  ///< blending parameter α ∈ [0, 1)
  float clip_lo = data::kInputMin;
  float clip_hi = data::kInputMax;
};

struct Blended {
  Tensor c1;     ///< clipped (1-α)x + αt, batch shape of x
  Tensor c2;     ///< clipped (1+α)x − αt
  Tensor mask1;  ///< 1 where c1 did not saturate
  Tensor mask2;  ///< 1 where c2 did not saturate
};

/// Blend a batch x ([N, ...]) with a per-sample perturbation t (shape of one
/// sample). Pass a zero tensor (or an empty tensor) as t for the adversary's
/// raw-query convention B(x, 0).
Blended Blend(const Tensor& x, const Tensor& t, const BlendConfig& cfg);

/// Mask-free inference blend of `rows` samples into caller-owned channel
/// buffers: c1/c2 receive the clipped components of B(x, t) for each of the
/// `rows` consecutive samples of `stride` floats at `x`. `t` points at one
/// sample's perturbation (broadcast across the rows) or is null for B(x, 0);
/// arithmetic and clipping are bit-identical to Blend. Raw pointers so the
/// serving engine can pack many clients' rows into one shared batch arena
/// without per-request tensor staging (tensor.h version-counter rules).
void BlendRowsInto(const float* x, const float* t, std::size_t rows,
                   std::size_t stride, const BlendConfig& cfg, float* c1,
                   float* c2);

/// Reduce upstream channel gradients into dL/dt (per-sample shape).
Tensor BlendGradT(const Blended& blended, const Tensor& g1, const Tensor& g2,
                  float alpha);

/// Reduce upstream channel gradients into dL/dx (batch shape) — used by
/// attacks that optimize inputs against a dual-channel model.
Tensor BlendGradX(const Blended& blended, const Tensor& g1, const Tensor& g2,
                  float alpha);

}  // namespace cip::core
