#include "core/perturbation.h"

#include <algorithm>

namespace cip::core {

Perturbation Perturbation::Random(const Shape& sample_shape, Rng& rng,
                                  float lo, float hi) {
  Tensor t(sample_shape);
  for (float& v : t.flat()) v = rng.Uniform(lo, hi);
  return Perturbation(std::move(t));
}

Perturbation Perturbation::FromSeed(const Tensor& seed, float noise_weight,
                                    Rng& rng, float lo, float hi) {
  CIP_CHECK(noise_weight >= 0.0f && noise_weight <= 1.0f);
  Tensor t(seed.shape());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const float noise = rng.Uniform(lo, hi);
    t[i] = std::clamp((1.0f - noise_weight) * seed[i] + noise_weight * noise,
                      lo, hi);
  }
  return Perturbation(std::move(t));
}

}  // namespace cip::core
