// Inference helpers and attacker-facing query handles for dual-channel CIP
// models.
//
// Raw-query convention: an adversary who does not know the secret t queries
// the deployed dual-channel model at the natural "no perturbation" point of
// Eq. 2, i.e. B(x, 0) = ((1-α)x, (1+α)x). Step II maximizes the loss on
// exactly this path, so the adversary observes the shifted distribution.
#pragma once

#include "core/blend.h"
#include "fl/query.h"
#include "nn/dual_channel.h"

namespace cip::core {

/// Batched logits of a dual-channel model on inputs blended with t
/// (pass an empty tensor for t = 0).
Tensor DualLogits(nn::DualChannelClassifier& model, const Tensor& inputs,
                  const Tensor& t, const BlendConfig& cfg,
                  std::size_t batch_size = 64);

/// Top-1 accuracy of a dual-channel model on `ds` with inputs blended
/// with t (empty tensor = no perturbation).
double DualAccuracy(nn::DualChannelClassifier& model,
                    const data::Dataset& ds, const Tensor& t,
                    const BlendConfig& cfg, std::size_t batch_size = 64);

/// Per-sample cross-entropy losses, same blending convention as DualLogits;
/// output is ordered like `ds`.
std::vector<float> DualLosses(nn::DualChannelClassifier& model,
                              const data::Dataset& ds, const Tensor& t,
                              const BlendConfig& cfg,
                              std::size_t batch_size = 64);

/// QueryModel over a dual-channel classifier with a fixed blending tensor:
/// empty t models the uninformed adversary (raw queries); a non-empty t
/// models a client's own inference path or an adaptive adversary's guess t'.
class CipQuery : public fl::QueryModel {
 public:
  CipQuery(nn::DualChannelClassifier& model, BlendConfig cfg, Tensor t = {},
           std::size_t batch_size = 64)
      : model_(&model),
        cfg_(cfg),
        t_(std::move(t)),
        batch_size_(batch_size) {}

  Tensor Logits(const Tensor& inputs) override {
    return DualLogits(*model_, inputs, t_, cfg_, batch_size_);
  }
  std::size_t NumClasses() const override { return model_->num_classes(); }

  const Tensor& t() const { return t_; }

 private:
  nn::DualChannelClassifier* model_;
  BlendConfig cfg_;
  Tensor t_;
  std::size_t batch_size_;
};

/// White-box handle over a dual-channel model: the adversary holds θ and can
/// compute per-sample parameter gradients along its (raw or guessed-t) query
/// path — what Pb-Bayes consumes when attacking a CIP-defended model.
class CipWhiteBox : public fl::WhiteBoxQuery {
 public:
  CipWhiteBox(nn::DualChannelClassifier& model, BlendConfig cfg,
              Tensor t = {}, std::size_t batch_size = 64)
      : model_(&model),
        cfg_(cfg),
        t_(std::move(t)),
        batch_size_(batch_size) {}

  Tensor Logits(const Tensor& inputs) override {
    return DualLogits(*model_, inputs, t_, cfg_, batch_size_);
  }
  std::vector<float> GradNorms(const data::Dataset& ds) override;
  std::size_t NumClasses() const override { return model_->num_classes(); }

 private:
  nn::DualChannelClassifier* model_;
  BlendConfig cfg_;
  Tensor t_;
  std::size_t batch_size_;
};

}  // namespace cip::core
