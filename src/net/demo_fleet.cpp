#include "net/demo_fleet.h"

#include <utility>
#include <vector>

#include "common/rng.h"

namespace cip::net {

fl::ClientSpec DemoSpecFor(std::size_t id) {
  fl::ClientSpec spec;
  spec.kind = fl::ClientKind::kLegacy;
  spec.model.arch = nn::Arch::kMLP;
  spec.model.input_shape = {4};
  spec.model.num_classes = 2;
  spec.model.width = 4;
  spec.model.seed = 23;
  spec.train.lr = 0.05f;
  spec.train.momentum = 0.9f;
  spec.train.batch_size = 8;
  spec.seed = 7000 + id;

  // Two well-separated Gaussian blobs, shard derived purely from the id:
  // every process that asks for client `id` regenerates the same 8 rows.
  const std::size_t n = 8, d = 4;
  Rng rng(0xD3A1F1EE7ull + id);
  Tensor inputs({n, d});
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % 2);
    labels[i] = y;
    for (std::size_t j = 0; j < d; ++j) {
      inputs[i * d + j] = (y == 0 ? -1.0f : 1.0f) + rng.Normal(0.0f, 0.5f);
    }
  }
  spec.data = {std::move(inputs), std::move(labels)};
  return spec;
}

fl::ModelState DemoInitialState() {
  return fl::InitialStateFor(DemoSpecFor(0));
}

std::unique_ptr<fl::ClientBase> MakeDemoClient(std::size_t id) {
  return fl::MakeClient(DemoSpecFor(id));
}

}  // namespace cip::net
