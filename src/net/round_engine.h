// Transport-agnostic round state machine for the standalone FL server.
//
// The engine is the socket server's brain with the sockets removed: the
// server (net/server.h) translates connection events into OnJoin / OnUpdate
// / OnDisconnect calls, and the engine answers with encoded frames to send.
// Keeping it free of file descriptors makes the asynchronous-aggregation
// semantics unit-testable byte-for-byte (tests/test_net.cpp drives it with
// hand-built events, including arrival-order permutations).
//
// Round semantics — buffered asynchronous aggregation (docs/PROTOCOL.md §5):
// the server is always "in" exactly one round r. Every kUpdate that arrives
// is folded into round r's buffer, *including* updates trained against an
// older round's global (stragglers — counted in RoundStats::
// folded_stragglers). A client whose update is buffered waits; the round
// closes as soon as the buffer holds min(quorum, deliverable) updates,
// where deliverable counts connected clients plus fleet ids that have not
// joined yet (a seat stays reserved for a slow starter, so startup order
// cannot change which updates a round folds), at
// which point the buffer is folded in ascending client-id order through the
// PR 8 TreeAccumulator — the identical fold the in-process engine uses, so
// the aggregate is a function of *which* updates were buffered, never of
// their network arrival order. Waiting clients then receive kRound(r+1);
// a straggler rejoins at whatever round is current when its late update
// lands. A connection drop is a client dropout (fl/fault.h kDropout): the
// client leaves the live set and the close condition is re-evaluated, which
// is how a mid-round kill degrades exactly like the in-process FaultPlan
// run. If every live client has delivered but the buffer is still below
// min_quorum, the round is skipped (global unchanged) — QuorumPolicy::
// kSkipRound on the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "fl/model_state.h"
#include "fl/telemetry.h"
#include "net/frame.h"

namespace cip::net {

/// One frame the caller must transmit, and whether to hang up afterwards.
struct EngineSend {
  std::uint64_t client_id = 0;  ///< destination client
  std::string frame;            ///< complete encoded frame (may be empty)
  /// Close the connection after sending (kFinal delivered, or the peer
  /// committed a protocol violation and `frame` is empty).
  bool then_close = false;
};

/// Counters the engine keeps across the run (served to telemetry/bench).
struct EngineStats {
  std::size_t rounds_completed = 0;   ///< rounds aggregated into the global
  std::size_t rounds_skipped = 0;     ///< rounds closed below min_quorum
  std::size_t updates_accepted = 0;   ///< kUpdate frames folded into a buffer
  std::size_t folded_stragglers = 0;  ///< accepted updates tagged an older round
  std::size_t protocol_errors = 0;    ///< peers dropped for violating the spec
};

/// The round state machine behind cip_server. See the header comment for the
/// asynchronous-aggregation contract.
class AsyncRoundEngine {
 public:
  /// Run shape. quorum is K in "first K of N": a round may close before
  /// every live client has delivered. quorum == fleet_size gives fully
  /// synchronous rounds (the bit-identity configuration of the e2e test).
  struct Options {
    std::size_t total_rounds = 1;  ///< rounds to aggregate before kFinal
    std::size_t fleet_size = 1;    ///< N: admitted ids are [0, fleet_size)
    std::size_t quorum = 1;        ///< K: close at min(K, live) updates
    std::size_t min_quorum = 1;    ///< skip a closed round below this
    std::uint64_t run_seed = 0;    ///< root of every client RNG stream
    float lr_decay = 0.5f;         ///< mirror of FlOptions::lr_decay
    std::size_t lr_decay_every = 0;  ///< 0 = constant lr_scale of 1
  };

  /// Start a run from the initial broadcast state. CHECK-fails on an
  /// out-of-domain Options (quorum 0, min_quorum > fleet, ...).
  AsyncRoundEngine(fl::ModelState initial, Options options);

  /// A client claimed `client_id` with kHello. Admits ids in [0, fleet_size)
  /// that are not already live: the reply is kWelcome plus kRound(current)
  /// (or kFinal when the run already ended). Rejections carry no frame and
  /// then_close — admission *capacity* (kBusy) is the server's job, identity
  /// validity is the engine's.
  std::vector<EngineSend> OnJoin(std::uint64_t client_id);

  /// A complete kUpdate arrived from `client_id` (already frame-decoded).
  /// Folds it into the current round's buffer and closes the round when the
  /// buffer reaches the close target. A violation — unknown/ghost sender,
  /// id mismatch, a round from the future, a duplicate for one leg, or a
  /// state size mismatch — drops the sender as a protocol error.
  std::vector<EngineSend> OnUpdate(std::uint64_t client_id, const UpdateMsg& m);

  /// `client_id`'s connection is gone (drop == fl/fault.h kDropout). The
  /// close condition is re-evaluated: a round waiting only on the vanished
  /// client completes from the survivors, exactly like the in-process
  /// engine under an equivalent FaultPlan.
  std::vector<EngineSend> OnDisconnect(std::uint64_t client_id);

  /// True once total_rounds rounds have closed. Clients that were waiting
  /// at the last close have received kFinal; in-flight stragglers receive
  /// it in reply to their late update (OnUpdate never errors on them).
  bool done() const { return done_; }

  /// True once the run is done() AND every fleet id is settled: it received
  /// kFinal, or it disconnected/violated the protocol after joining. A fleet
  /// id that never joined is unsettled — the server keeps serving so a slow
  /// starter can still collect the result (the join itself answers kWelcome
  /// + kFinal once done()). This is what CipServer's drain_fleet shutdown
  /// condition waits on; without it, a quorum run that finishes before the
  /// slowest client ever connects would strand that client.
  bool fleet_settled() const {
    return done_ && settled_.size() == options_.fleet_size;
  }

  /// The current global model (the final aggregate once done()).
  const fl::ModelState& global() const { return global_; }

  /// The 1-based round currently accepting updates (total_rounds after the
  /// run ends).
  std::size_t current_round() const { return round_; }

  /// Clients currently admitted and connected.
  std::size_t live_clients() const { return live_.size(); }

  /// Run-wide counters (see EngineStats).
  const EngineStats& stats() const { return stats_; }

  /// Per-round telemetry in the fl/telemetry.h shape: one RoundStats per
  /// closed round with survivors / skipped / folded_stragglers filled in.
  const fl::RoundTelemetry& telemetry() const { return telemetry_; }

 private:
  /// Close the current round if the buffer has reached the close target
  /// min(quorum, live + never-joined); appends the broadcasts to `out`.
  void MaybeCloseRound(std::vector<EngineSend>& out);
  /// Drop `client_id` for violating the protocol.
  std::vector<EngineSend> ProtocolError(std::uint64_t client_id);
  /// The kRound frame for the current round (encodes the global once).
  std::string RoundFrame() const;
  float LrScaleFor(std::size_t round) const;

  struct Buffered {
    fl::ModelState update;
    float loss = 0.0f;
    bool straggler = false;  ///< trained against an older round's global
  };

  Options options_;
  fl::ModelState global_;
  std::size_t round_ = 1;  ///< 1-based round currently accepting updates
  bool done_ = false;
  std::set<std::uint64_t> live_;     ///< admitted, connected client ids
  std::set<std::uint64_t> ever_joined_;  ///< ids that have connected at least once
  std::set<std::uint64_t> waiting_;  ///< live ids buffered for this round
  std::set<std::uint64_t> settled_;  ///< got kFinal, or left after joining
  std::map<std::uint64_t, Buffered> buffer_;  ///< id -> update (sorted fold)
  EngineStats stats_;
  fl::RoundTelemetry telemetry_;
};

}  // namespace cip::net
