#include "net/frame.h"

#include <bit>
#include <sstream>

#include "common/check.h"
#include "fl/serialize.h"

namespace cip::net {

namespace {

/// Bounds-checked read cursor over a payload string. Every Take* CHECK-fails
/// on truncation, so a short or trailing-garbage payload can never yield a
/// silently wrong value — the wire twin of fl/serialize's stream readers.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  std::uint32_t TakeU32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes_[pos_ + i]);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t TakeU64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes_[pos_ + i]);
    }
    pos_ += 8;
    return v;
  }

  float TakeF32() { return std::bit_cast<float>(TakeU32()); }

  /// The unread remainder of the payload (an embedded CIPS stream).
  std::string Rest() { return bytes_.substr(pos_); }

  /// CHECK that exactly `n` unread bytes remain — an embedded array's
  /// claimed count must account for the rest of the payload precisely,
  /// BEFORE anything is sized from it.
  void NeedExact(std::uint64_t n) const {
    CIP_CHECK_MSG(bytes_.size() - pos_ == n,
                  "embedded array claims " << n << " bytes but "
                                           << bytes_.size() - pos_
                                           << " remain in the payload");
  }

  void ExpectDone() const {
    CIP_CHECK_MSG(pos_ == bytes_.size(),
                  "trailing bytes after message payload: " << pos_ << " of "
                                                           << bytes_.size()
                                                           << " consumed");
  }

 private:
  void Need(std::size_t n) const {
    CIP_CHECK_MSG(pos_ + n <= bytes_.size(),
                  "truncated message payload: need " << n << " bytes at offset "
                                                     << pos_ << " of "
                                                     << bytes_.size());
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

std::string SerializeState(const fl::ModelState& state) {
  std::ostringstream os(std::ios::binary);
  fl::SaveModelState(state, os);
  return os.str();
}

fl::ModelState ParseState(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  fl::ModelState state = fl::LoadModelState(is);
  is.peek();
  CIP_CHECK_MSG(is.eof(), "trailing bytes after embedded model state");
  return state;
}

// Bounds for wire tensors (kQuery/kLogits), matching fl/serialize: rank in
// [1, 8], overflow-checked element product below 2^31. A 256 MiB frame can
// only carry ~2^26 floats anyway, but the count is rejected on its own
// merits before the payload length is even consulted.
constexpr std::uint64_t kMaxWireElements = std::uint64_t{1} << 31;

// Read rank + dims + f32 data from `c`, validating rank, every dim, the
// overflow-checked element count, and the exact byte length BEFORE the
// tensor is sized — the count-before-sizing rule of docs/PROTOCOL.md §8.
Tensor TakeTensor(Cursor& c, std::uint64_t min_rank) {
  const std::uint64_t rank = c.TakeU64();
  CIP_CHECK_MSG(rank >= min_rank && rank <= 8,
                "implausible wire tensor rank " << rank);
  Shape shape(rank);
  std::uint64_t n = 1;
  for (std::uint64_t i = 0; i < rank; ++i) {
    const std::uint64_t d = c.TakeU64();
    CIP_CHECK_MSG(d >= 1 && d <= kMaxWireElements,
                  "implausible wire tensor dim " << d);
    CIP_CHECK_MSG(n <= kMaxWireElements / d,
                  "wire tensor element count overflows: dim " << d);
    n *= d;
    shape[i] = d;
  }
  c.NeedExact(4 * n);  // the claimed count must match the bytes on the wire
  // CIP_ANALYZE_OK(hot-alloc-tensor): rank/dims/count/length all validated above
  Tensor t(shape);
  for (std::uint64_t i = 0; i < n; ++i) t[i] = c.TakeF32();
  return t;
}

void PutTensor(std::string& out, const Tensor& t) {
  PutU64(out, t.rank());
  for (std::size_t i = 0; i < t.rank(); ++i) PutU64(out, t.dim(i));
  for (std::size_t i = 0; i < t.size(); ++i) PutF32(out, t[i]);
}

}  // namespace

bool KnownMsgType(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(MsgType::kHello) &&
         t <= static_cast<std::uint32_t>(MsgType::kLogits);
}

// CIP_HOT  (wire encode: every outbound byte passes through these)
void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    // CIP_ANALYZE_OK(hot-alloc): appends into the caller's one frame buffer
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// CIP_HOT  (wire encode: every outbound byte passes through these)
void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    // CIP_ANALYZE_OK(hot-alloc): appends into the caller's one frame buffer
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutF32(std::string& out, float v) {
  PutU32(out, std::bit_cast<std::uint32_t>(v));
}

// CIP_HOT  (frame encode: header + payload splice for every outbound frame)
std::string EncodeFrame(MsgType type, std::string payload) {
  CIP_CHECK_MSG(payload.size() <= kDefaultMaxPayloadBytes,
                "frame payload too large to encode: " << payload.size());
  std::string out;
  // CIP_ANALYZE_OK(hot-alloc): sized once from the already-built payload
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(out, kFrameMagic);
  PutU32(out, kProtocolVersion);
  PutU32(out, static_cast<std::uint32_t>(type));
  PutU64(out, payload.size());
  // CIP_ANALYZE_OK(hot-alloc): reserved above; single splice of the payload
  out.append(payload);
  return out;
}

std::string EncodeHello(const HelloMsg& m) {
  std::string p;
  PutU64(p, m.client_id);
  return EncodeFrame(MsgType::kHello, std::move(p));
}

std::string EncodeWelcome(const WelcomeMsg& m) {
  std::string p;
  PutU64(p, m.client_id);
  PutU64(p, m.run_seed);
  PutU64(p, m.total_rounds);
  PutU64(p, m.fleet_size);
  return EncodeFrame(MsgType::kWelcome, std::move(p));
}

std::string EncodeRound(const RoundMsg& m) {
  std::string p;
  PutU64(p, m.round);
  PutF32(p, m.lr_scale);
  p.append(SerializeState(m.global));
  return EncodeFrame(MsgType::kRound, std::move(p));
}

std::string EncodeUpdate(const UpdateMsg& m) {
  std::string p;
  PutU64(p, m.round);
  PutU64(p, m.client_id);
  PutF32(p, m.loss);
  p.append(SerializeState(m.update));
  return EncodeFrame(MsgType::kUpdate, std::move(p));
}

std::string EncodeFinal(const FinalMsg& m) {
  return EncodeFrame(MsgType::kFinal, SerializeState(m.global));
}

std::string EncodeBusy(const BusyMsg& m) {
  std::string p;
  PutU32(p, m.retry_after_ms);
  return EncodeFrame(MsgType::kBusy, std::move(p));
}

std::string EncodeBye() { return EncodeFrame(MsgType::kBye, std::string()); }

// CIP_HOT  (serve wire encode: one frame per query on the serving fast path)
std::string EncodeQuery(const QueryMsg& m) {
  std::string p;
  // CIP_ANALYZE_OK(hot-alloc): sized once per frame from the known tensor size
  p.reserve(8 + 8 + 8 * m.inputs.rank() + 4 * m.inputs.size());
  PutU64(p, m.client_id);
  PutTensor(p, m.inputs);
  return EncodeFrame(MsgType::kQuery, std::move(p));
}

// CIP_HOT  (serve wire encode: one frame per answered query)
std::string EncodeLogits(const LogitsMsg& m) {
  std::string p;
  // CIP_ANALYZE_OK(hot-alloc): sized once per frame from the known tensor size
  p.reserve(8 + 8 * m.logits.rank() + 4 * m.logits.size());
  PutTensor(p, m.logits);
  return EncodeFrame(MsgType::kLogits, std::move(p));
}

HelloMsg DecodeHello(const std::string& payload) {
  Cursor c(payload);
  HelloMsg m;
  m.client_id = c.TakeU64();
  c.ExpectDone();
  return m;
}

WelcomeMsg DecodeWelcome(const std::string& payload) {
  Cursor c(payload);
  WelcomeMsg m;
  m.client_id = c.TakeU64();
  m.run_seed = c.TakeU64();
  m.total_rounds = c.TakeU64();
  m.fleet_size = c.TakeU64();
  c.ExpectDone();
  return m;
}

RoundMsg DecodeRound(const std::string& payload) {
  Cursor c(payload);
  RoundMsg m;
  m.round = c.TakeU64();
  m.lr_scale = c.TakeF32();
  m.global = ParseState(c.Rest());
  return m;
}

UpdateMsg DecodeUpdate(const std::string& payload) {
  Cursor c(payload);
  UpdateMsg m;
  m.round = c.TakeU64();
  m.client_id = c.TakeU64();
  m.loss = c.TakeF32();
  m.update = ParseState(c.Rest());
  return m;
}

FinalMsg DecodeFinal(const std::string& payload) {
  FinalMsg m;
  m.global = ParseState(payload);
  return m;
}

BusyMsg DecodeBusy(const std::string& payload) {
  Cursor c(payload);
  BusyMsg m;
  m.retry_after_ms = c.TakeU32();
  c.ExpectDone();
  return m;
}

// CIP_HOT  (serve wire decode: validates every count before sizing anything)
QueryMsg DecodeQuery(const std::string& payload) {
  Cursor c(payload);
  QueryMsg m;
  m.client_id = c.TakeU64();
  m.inputs = TakeTensor(c, /*min_rank=*/2);  // [N, ...sample dims]
  c.ExpectDone();
  return m;
}

// CIP_HOT  (serve wire decode: validates every count before sizing anything)
LogitsMsg DecodeLogits(const std::string& payload) {
  Cursor c(payload);
  LogitsMsg m;
  m.logits = TakeTensor(c, /*min_rank=*/2);  // [rows, classes]
  CIP_CHECK_MSG(m.logits.rank() == 2,
                "kLogits tensor rank " << m.logits.rank() << " != 2");
  c.ExpectDone();
  return m;
}

// CIP_HOT  (frame decode: every inbound byte is buffered through Feed)
void FrameReader::Feed(std::string_view bytes) {
  // CIP_ANALYZE_OK(hot-alloc): buffer growth is bounded by header + max_payload (Next() drains)
  buf_.append(bytes);
  // Validate the header eagerly: corrupt input fails at the first bad
  // header, before its claimed payload occupies the buffer.
  if (buf_.size() >= kFrameHeaderBytes) {
    Cursor c(buf_);
    const std::uint32_t magic = c.TakeU32();
    CIP_CHECK_MSG(magic == kFrameMagic,
                  "bad frame magic 0x" << std::hex << magic);
    const std::uint32_t version = c.TakeU32();
    CIP_CHECK_MSG(version == kProtocolVersion,
                  "unsupported protocol version " << version);
    const std::uint32_t type = c.TakeU32();
    CIP_CHECK_MSG(KnownMsgType(type), "unknown message type " << type);
    const std::uint64_t len = c.TakeU64();
    CIP_CHECK_MSG(len <= max_payload_,
                  "frame payload length " << len << " exceeds the "
                                          << max_payload_ << "-byte bound");
  }
}

// CIP_HOT  (frame decode: yields one parsed frame per complete wire frame)
std::optional<Frame> FrameReader::Next() {
  if (buf_.size() < kFrameHeaderBytes) return std::nullopt;
  Cursor c(buf_);
  c.TakeU32();  // magic — validated in Feed
  c.TakeU32();  // version — validated in Feed
  const std::uint32_t type = c.TakeU32();
  const std::uint64_t len = c.TakeU64();  // bounded in Feed
  if (buf_.size() < kFrameHeaderBytes + len) return std::nullopt;
  Frame f;
  f.type = static_cast<MsgType>(type);
  // CIP_ANALYZE_OK(hot-alloc): length validated against max_payload in Feed
  f.payload = buf_.substr(kFrameHeaderBytes, static_cast<std::size_t>(len));
  // CIP_ANALYZE_OK(hot-alloc): drains the consumed frame from the buffer
  buf_.erase(0, kFrameHeaderBytes + static_cast<std::size_t>(len));
  return f;
}

}  // namespace cip::net
