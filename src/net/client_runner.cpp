#include "net/client_runner.h"

#include <optional>
#include <span>
#include <utility>

#include "common/check.h"
#include "fl/round_context.h"
#include "net/frame.h"
#include "net/socket.h"

namespace cip::net {

namespace {

/// Block until one complete frame is parsed (or the peer closes — nullopt).
std::optional<Frame> ReadFrame(Socket& sock, FrameReader& reader) {
  while (true) {
    if (std::optional<Frame> f = reader.Next()) return f;
    char buf[16384];
    const IoResult r = RecvSome(sock, std::span<char>(buf, sizeof(buf)));
    if (r.closed || r.error) return std::nullopt;
    if (r.would_block) continue;  // blocking socket: EINTR only
    reader.Feed(std::string_view(buf, r.bytes));
  }
}

/// Sleep `ms` without threads: poll(2) on nothing with a timeout.
void SleepMs(std::uint32_t ms) {
  Poll(std::span<PollItem>(), static_cast<int>(ms));
}

}  // namespace

ClientRunResult RunClient(fl::ClientBase& client,
                          const ClientRunnerOptions& opts) {
  ClientRunResult result;
  Socket sock;
  FrameReader reader;
  WelcomeMsg welcome;
  bool welcomed = false;

  // Dial + kHello, honoring kBusy retry hints with a fresh connection each
  // attempt (the server closes a rejected connection after the hint).
  for (std::size_t attempt = 0;; ++attempt) {
    sock = ConnectTcp(opts.host, opts.port);
    HelloMsg hello;
    hello.client_id = opts.client_id;
    const std::string frame = EncodeHello(hello);
    CIP_CHECK_MSG(SendAll(sock, std::span<const char>(frame.data(),
                                                      frame.size())),
                  "server closed the connection during kHello");
    reader = FrameReader();
    std::optional<Frame> f = ReadFrame(sock, reader);
    CIP_CHECK_MSG(f.has_value(), "server closed the connection after kHello");
    if (f->type == MsgType::kBusy) {
      const BusyMsg busy = DecodeBusy(f->payload);
      if (attempt >= opts.max_busy_retries) {
        result.busy_gave_up = true;
        return result;
      }
      SleepMs(busy.retry_after_ms);
      continue;
    }
    CIP_CHECK_MSG(f->type == MsgType::kWelcome,
                  "expected kWelcome, got message type "
                      << static_cast<std::uint32_t>(f->type));
    welcome = DecodeWelcome(f->payload);
    CIP_CHECK_MSG(welcome.client_id == opts.client_id,
                  "server welcomed the wrong id: " << welcome.client_id);
    welcomed = true;
    break;
  }
  CIP_CHECK_MSG(welcomed, "no kWelcome received");

  while (true) {
    const std::optional<Frame> f = ReadFrame(sock, reader);
    CIP_CHECK_MSG(f.has_value(), "server vanished mid-run");
    switch (f->type) {
      case MsgType::kRound: {
        const RoundMsg round = DecodeRound(f->payload);
        if (opts.crash_in_round != 0 &&
            round.round >= opts.crash_in_round) {
          // Kill-test hook: vanish without replying; the server sees the
          // connection drop and degrades via quorum.
          result.crashed = true;
          return result;
        }
        client.SetGlobal(round.global);
        // The same (run_seed, round, client_index) stream derivation as the
        // in-process engine — the heart of the wire bit-identity contract.
        fl::RoundContext ctx = fl::MakeRoundContext(
            welcome.run_seed, static_cast<std::size_t>(round.round),
            static_cast<std::size_t>(opts.client_id), round.lr_scale);
        UpdateMsg update;
        update.round = round.round;
        update.client_id = opts.client_id;
        update.update = client.TrainLocal(std::move(ctx));
        update.loss = client.LastTrainLoss();
        const std::string frame = EncodeUpdate(update);
        CIP_CHECK_MSG(
            SendAll(sock, std::span<const char>(frame.data(), frame.size())),
            "server closed the connection during kUpdate");
        ++result.rounds_trained;
        break;
      }
      case MsgType::kFinal: {
        const FinalMsg fin = DecodeFinal(f->payload);
        result.final_global = fin.global;
        result.finished = true;
        return result;
      }
      default:
        CIP_CHECK_MSG(false, "unexpected message type "
                                 << static_cast<std::uint32_t>(f->type)
                                 << " mid-run");
    }
  }
}

}  // namespace cip::net
