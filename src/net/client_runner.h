// Client-side protocol loop: drive one ClientBase over a TCP connection.
//
// This is the whole client half of docs/PROTOCOL.md — connect, kHello,
// honor kBusy retry hints, then train on every kRound until kFinal. It runs
// on blocking sockets (a client has exactly one connection and nothing else
// to multiplex) and derives each round's RNG stream with MakeRoundContext
// from the kWelcome run seed, so a wire client's training is bit-identical
// to the same client driven by the in-process FederatedAveraging engine.
// Used by the cip_client binary and, in-process, by tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fl/client.h"
#include "fl/model_state.h"

namespace cip::net {

/// Connection target plus test/fault knobs for RunClient.
struct ClientRunnerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t client_id = 0;  ///< id claimed in kHello; also the
                                ///< RoundContext client_index
  /// Reconnect attempts when the server answers kBusy (each waits the
  /// server's retry_after_ms hint before redialing).
  std::size_t max_busy_retries = 100;
  /// Fault injection for kill tests: when non-zero, the runner returns with
  /// crashed=true upon *receiving* kRound(round >= crash_in_round), without
  /// replying — the process then exits and the server observes a mid-round
  /// connection drop, the wire twin of a FaultPlan forced kDropout.
  std::size_t crash_in_round = 0;
};

/// What a client run produced.
struct ClientRunResult {
  bool finished = false;   ///< received kFinal (final_global is valid)
  bool crashed = false;    ///< left via crash_in_round
  bool busy_gave_up = false;  ///< kBusy persisted past max_busy_retries
  std::size_t rounds_trained = 0;  ///< kUpdate frames sent
  fl::ModelState final_global;     ///< the server's final aggregate
};

/// Run `client` against a CipServer at opts.host:opts.port until kFinal (or
/// a crash/give-up per opts). Throws cip::CheckError on connection failure
/// or a server that violates the protocol.
ClientRunResult RunClient(fl::ClientBase& client,
                          const ClientRunnerOptions& opts);

}  // namespace cip::net
