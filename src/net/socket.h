// Thin RAII layer over POSIX TCP sockets — the library's only window onto
// the network.
//
// Everything above this header (framing, the round server, the client
// runner, the load-generator bench) speaks in terms of Socket values and the
// Poll() readiness API; the raw <sys/socket.h>/<netinet/*> headers are
// confined to src/net by the `socket-include` lint rule, exactly like
// reinterpret_cast is confined to fl/serialize.cpp. All sockets are IPv4
// loopback-or-LAN TCP: the protocol (docs/PROTOCOL.md) carries no peer
// authentication, so binding beyond localhost is an explicit caller
// decision, not a default.
//
// Error discipline: construction-time failures (bind, listen, connect)
// throw cip::CheckError with errno context — a server that cannot open its
// port has nothing to degrade to. Steady-state I/O (send/recv/accept) never
// throws; it reports would-block and peer-gone conditions as values so the
// event loop can treat a failing connection as a client fault
// (docs/ROBUSTNESS.md "Faults on a real boundary") instead of unwinding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cip::net {

/// Move-only owner of one socket file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  /// Adopt an already-open descriptor (ownership transfers to the Socket).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// The raw descriptor, or -1 for an empty socket.
  int fd() const { return fd_; }
  /// True when the socket holds an open descriptor.
  bool valid() const { return fd_ >= 0; }
  /// Close the descriptor now (idempotent; EINTR is not retried — POSIX
  /// leaves the fd state unspecified and retrying risks closing a reused fd).
  void Close();
  /// Release ownership of the descriptor without closing it.
  int Release();

 private:
  int fd_ = -1;
};

/// Result of one non-blocking send or receive attempt.
struct IoResult {
  /// Bytes actually transferred (0 is valid for would-block sends).
  std::size_t bytes = 0;
  /// The peer closed its end (orderly EOF on recv).
  bool closed = false;
  /// A hard socket error (ECONNRESET, EPIPE, ...); treat the peer as gone.
  bool error = false;
  /// The operation would block; retry after the next readiness poll.
  bool would_block = false;
};

/// Open a TCP listener bound to `host` (dotted IPv4, e.g. "127.0.0.1") on
/// `port` (0 picks an ephemeral port). Non-blocking, SO_REUSEADDR set.
/// Throws cip::CheckError on any setup failure.
Socket ListenTcp(const std::string& host, std::uint16_t port, int backlog);

/// The port a listener (or connected socket) is actually bound to — the way
/// to discover an ephemeral port after ListenTcp(host, 0, ...).
std::uint16_t LocalPort(const Socket& s);

/// Blocking TCP connect to host:port; returns a blocking socket with
/// TCP_NODELAY set. Throws cip::CheckError when the connection is refused.
Socket ConnectTcp(const std::string& host, std::uint16_t port);

/// Non-blocking TCP connect for event-loop callers (the load generator): the
/// returned socket may still be mid-handshake; poll it for writability.
/// Throws cip::CheckError only on immediate local failures.
Socket ConnectTcpNonBlocking(const std::string& host, std::uint16_t port);

/// Accept one pending connection on a non-blocking listener. Returns an
/// invalid Socket when no connection is pending (or on a transient accept
/// error); the accepted socket is non-blocking with TCP_NODELAY set.
Socket AcceptNonBlocking(Socket& listener);

/// Attempt to send up to data.size() bytes without blocking.
IoResult SendSome(Socket& s, std::span<const char> data);

/// Attempt to receive up to buf.size() bytes without blocking.
IoResult RecvSome(Socket& s, std::span<char> buf);

/// Send the whole buffer on a *blocking* socket (client side); returns false
/// if the peer vanished mid-send.
bool SendAll(Socket& s, std::span<const char> data);

/// Receive exactly buf.size() bytes on a *blocking* socket; returns false on
/// EOF or error before the buffer fills.
bool RecvAll(Socket& s, std::span<char> buf);

/// One socket's readiness interest and result for Poll().
struct PollItem {
  int fd = -1;            ///< descriptor to watch (-1 entries are skipped)
  bool want_read = false;   ///< wake when readable / accept-ready
  bool want_write = false;  ///< wake when writable / connect finished
  bool readable = false;    ///< out: readable (or EOF pending)
  bool writable = false;    ///< out: writable
  bool broken = false;      ///< out: error/hangup condition on the fd
};

/// poll(2) over `items`, waiting at most timeout_ms (0 = return immediately,
/// negative = wait indefinitely). Fills the out fields; returns the number
/// of items with any condition set. EINTR reads as "nothing ready".
int Poll(std::span<PollItem> items, int timeout_ms);

/// Raise the process's soft RLIMIT_NOFILE toward `want` descriptors (capped
/// at the hard limit); returns the resulting soft limit. The ~1k-connection
/// load bench needs ~2x the connection count in descriptors.
std::size_t EnsureFdLimit(std::size_t want);

}  // namespace cip::net
