// Shared demo fleet for the socket server's binaries, tests, and bench.
//
// The wire bit-identity claim — cip_server over sockets equals
// FederatedAveraging in-process — is only checkable when both sides build
// the *same* fleet from the same pure id -> spec function. This header is
// that function: cip_server, cip_client, tests/test_net_e2e.cpp and
// bench/bench_server.cpp all construct their clients and initial broadcast
// state here, so "client k" means the identical model, data shard, and seed
// in every process involved.
//
// Lives in its own library (cip_net_demo) because ClientSpec pulls in
// cip_fl_factory (and with it the concrete client libraries); the core net
// layer (socket/frame/engine/server/runner) stays below them in the
// dependency DAG.
#pragma once

#include <cstddef>
#include <memory>

#include "fl/client_factory.h"

namespace cip::net {

/// Pure per-id spec for a tiny two-blob MLP LegacyClient (same shape as the
/// scale bench's fleet: 4-d inputs, 2 classes, 8 local examples derived
/// from an id-seeded stream).
fl::ClientSpec DemoSpecFor(std::size_t id);

/// The initial broadcast state every party starts from.
fl::ModelState DemoInitialState();

/// Construct demo client `id`, ready for RunClient or a ClientStore.
std::unique_ptr<fl::ClientBase> MakeDemoClient(std::size_t id);

}  // namespace cip::net
