#include "net/round_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "fl/aggregate.h"

namespace cip::net {

AsyncRoundEngine::AsyncRoundEngine(fl::ModelState initial, Options options)
    : options_(options), global_(std::move(initial)) {
  CIP_CHECK_MSG(!global_.empty(), "initial global state must be non-empty");
  CIP_CHECK_MSG(options_.total_rounds >= 1, "total_rounds must be >= 1");
  CIP_CHECK_MSG(options_.fleet_size >= 1, "fleet_size must be >= 1");
  CIP_CHECK_MSG(options_.quorum >= 1 && options_.quorum <= options_.fleet_size,
                "quorum must be in [1, fleet_size], got " << options_.quorum);
  CIP_CHECK_MSG(options_.min_quorum >= 1 &&
                    options_.min_quorum <= options_.fleet_size,
                "min_quorum must be in [1, fleet_size], got "
                    << options_.min_quorum);
  CIP_CHECK_MSG(options_.lr_decay > 0.0f && options_.lr_decay <= 1.0f,
                "lr_decay must be in (0, 1]");
}

float AsyncRoundEngine::LrScaleFor(std::size_t round) const {
  // Same schedule as the in-process engine (fl/server.cpp): one lr_decay
  // factor per completed lr_decay_every block. Matching it is part of the
  // wire/in-process bit-identity contract.
  if (options_.lr_decay_every == 0) return 1.0f;
  const auto steps = static_cast<float>((round - 1) / options_.lr_decay_every);
  return std::pow(options_.lr_decay, steps);
}

std::string AsyncRoundEngine::RoundFrame() const {
  RoundMsg m;
  m.round = round_;
  m.lr_scale = LrScaleFor(round_);
  m.global = global_;
  return EncodeRound(m);
}

std::vector<EngineSend> AsyncRoundEngine::OnJoin(std::uint64_t client_id) {
  std::vector<EngineSend> out;
  if (client_id >= options_.fleet_size || live_.count(client_id) != 0) {
    // An id outside the fleet, or one already connected, is a hostile or
    // confused peer — refuse without handing it any run state.
    ++stats_.protocol_errors;
    out.push_back({client_id, std::string(), /*then_close=*/true});
    return out;
  }
  WelcomeMsg w;
  w.client_id = client_id;
  w.run_seed = options_.run_seed;
  w.total_rounds = options_.total_rounds;
  w.fleet_size = options_.fleet_size;
  out.push_back({client_id, EncodeWelcome(w), false});
  // A (re)join revives the id: it is only settled again once this
  // incarnation receives kFinal or leaves.
  settled_.erase(client_id);
  if (done_) {
    // Late joiner after the run ended: hand it the final aggregate so a
    // slow starter or retry-after-busy client still gets the result, then
    // part ways.
    FinalMsg f;
    f.global = global_;
    out.push_back({client_id, EncodeFinal(f), /*then_close=*/true});
    settled_.insert(client_id);
    return out;
  }
  live_.insert(client_id);
  ever_joined_.insert(client_id);
  out.push_back({client_id, RoundFrame(), false});
  return out;
}

std::vector<EngineSend> AsyncRoundEngine::ProtocolError(
    std::uint64_t client_id) {
  ++stats_.protocol_errors;
  if (live_.erase(client_id) != 0) settled_.insert(client_id);
  waiting_.erase(client_id);
  std::vector<EngineSend> out;
  out.push_back({client_id, std::string(), /*then_close=*/true});
  // Losing the violator may have satisfied the close condition for everyone
  // else — same re-check as an ordinary disconnect.
  MaybeCloseRound(out);
  return out;
}

std::vector<EngineSend> AsyncRoundEngine::OnUpdate(std::uint64_t client_id,
                                                   const UpdateMsg& m) {
  if (live_.count(client_id) == 0) return ProtocolError(client_id);
  if (done_) {
    // An in-flight straggler finishing after the last round closed: its
    // update has no round to fold into, so it gets the final aggregate and
    // an orderly goodbye instead (never a protocol error — it did nothing
    // wrong, the run simply ended without it).
    live_.erase(client_id);
    waiting_.erase(client_id);
    settled_.insert(client_id);
    FinalMsg f;
    f.global = global_;
    std::vector<EngineSend> out;
    out.push_back({client_id, EncodeFinal(f), /*then_close=*/true});
    return out;
  }
  if (m.client_id != client_id) return ProtocolError(client_id);
  // A round from the future is impossible for an honest client (the server
  // has not broadcast it yet); rounds below the current one are the
  // straggler-fold path.
  if (m.round == 0 || m.round > round_) return ProtocolError(client_id);
  if (buffer_.count(client_id) != 0) return ProtocolError(client_id);
  if (m.update.size() != global_.size()) return ProtocolError(client_id);

  const bool straggler = m.round < round_;
  ++stats_.updates_accepted;
  if (straggler) ++stats_.folded_stragglers;
  Buffered b;
  b.update = m.update;
  b.loss = m.loss;
  b.straggler = straggler;
  buffer_.emplace(client_id, std::move(b));
  waiting_.insert(client_id);

  std::vector<EngineSend> out;
  MaybeCloseRound(out);
  return out;
}

std::vector<EngineSend> AsyncRoundEngine::OnDisconnect(
    std::uint64_t client_id) {
  std::vector<EngineSend> out;
  if (live_.erase(client_id) == 0) return out;  // already gone / post-final
  settled_.insert(client_id);
  waiting_.erase(client_id);
  // Its buffered update (if any) stays: the server received it, so the drop
  // maps to fl/fault.h kDropout *from the next leg on* — exactly what the
  // in-process FaultPlan expresses with forced dropouts for later rounds.
  MaybeCloseRound(out);
  return out;
}

void AsyncRoundEngine::MaybeCloseRound(std::vector<EngineSend>& out) {
  if (done_) return;
  // Deliverable updates = connected clients plus fleet ids that have not
  // joined *yet*. Counting the unjoined is what makes startup deterministic:
  // without it, a quorum==fleet round would close with whichever subset
  // happened to connect first, and the aggregate would depend on connection
  // timing. A client that joined and then vanished is known gone and stops
  // counting; one that never dialed still holds its seat.
  const std::size_t deliverable =
      live_.size() + (options_.fleet_size - ever_joined_.size());
  const std::size_t target = std::min(options_.quorum, deliverable);
  if (buffer_.empty() || buffer_.size() < target) return;

  fl::RoundStats rs;
  rs.round = round_;
  rs.survivors = buffer_.size();
  for (const auto& [id, b] : buffer_) {
    if (b.straggler) ++rs.folded_stragglers;
    fl::ClientRoundStats cs;
    cs.round = round_;
    cs.client = static_cast<std::size_t>(id);
    cs.loss = b.loss;
    rs.clients.push_back(cs);
  }

  if (buffer_.size() >= options_.min_quorum) {
    // std::map iterates in ascending client id — the same sorted-survivor
    // order the in-process engine folds in, so the aggregate is independent
    // of network arrival order by construction.
    fl::TreeAccumulator acc;
    for (auto& [id, b] : buffer_) acc.Add(std::move(b.update));
    global_ = acc.FinishMean();
    ++stats_.rounds_completed;
  } else {
    rs.skipped = true;
    ++stats_.rounds_skipped;
  }
  telemetry_.rounds.push_back(std::move(rs));
  buffer_.clear();
  const std::set<std::uint64_t> was_waiting = std::move(waiting_);
  waiting_.clear();

  if (round_ == options_.total_rounds) {
    done_ = true;
    // Clients waiting on this close get the final aggregate and an orderly
    // close now. In-flight stragglers stay registered: they receive kFinal
    // in reply to their late update (OnUpdate), so no peer ever writes
    // into an already-closed connection.
    FinalMsg f;
    f.global = global_;
    const std::string frame = EncodeFinal(f);
    for (const std::uint64_t id : was_waiting) {
      out.push_back({id, frame, /*then_close=*/true});
      live_.erase(id);
      settled_.insert(id);
    }
    return;
  }
  ++round_;
  // Clients that delivered for the closed round advance together; in-flight
  // stragglers rejoin when their late update lands.
  const std::string frame = RoundFrame();
  for (const std::uint64_t id : was_waiting) {
    out.push_back({id, frame, false});
  }
}

}  // namespace cip::net
