// cip_server: the standalone FL server binary (docs/PROTOCOL.md).
//
// Serves the demo fleet (net/demo_fleet.h) so that any mix of cip_client
// processes — local or remote — can train against it and the result can be
// checked against the in-process simulator. Usage:
//
//   cip_server [--host 127.0.0.1] [--port 0] [--clients N] [--rounds R]
//              [--quorum K] [--min-quorum Q] [--seed S]
//              [--max-connections C] [--telemetry out.jsonl]
//
// Prints "listening on <port>" (flushed) once the socket is accepting, so a
// launcher can scrape the ephemeral port before starting clients, then runs
// to completion and prints the final global's L2 norm.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/check.h"
#include "net/demo_fleet.h"
#include "net/server.h"

namespace {

/// "--key value" argv scraper; exits with usage on a malformed pair.
const char* ArgValue(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::cerr << "missing value for " << argv[i] << "\n";
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string telemetry_path;
  cip::net::AsyncRoundEngine::Options eng;
  eng.total_rounds = 3;
  eng.fleet_size = 3;
  eng.quorum = 3;
  eng.min_quorum = 1;
  eng.run_seed = 41;
  cip::net::ServerOptions sopts;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--host") {
      host = ArgValue(argc, argv, i);
    } else if (a == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(ArgValue(argc, argv, i)));
    } else if (a == "--clients") {
      eng.fleet_size = static_cast<std::size_t>(
          std::atoll(ArgValue(argc, argv, i)));
      eng.quorum = eng.fleet_size;
    } else if (a == "--rounds") {
      eng.total_rounds =
          static_cast<std::size_t>(std::atoll(ArgValue(argc, argv, i)));
    } else if (a == "--quorum") {
      eng.quorum =
          static_cast<std::size_t>(std::atoll(ArgValue(argc, argv, i)));
    } else if (a == "--min-quorum") {
      eng.min_quorum =
          static_cast<std::size_t>(std::atoll(ArgValue(argc, argv, i)));
    } else if (a == "--seed") {
      eng.run_seed =
          static_cast<std::uint64_t>(std::atoll(ArgValue(argc, argv, i)));
    } else if (a == "--max-connections") {
      sopts.max_connections =
          static_cast<std::size_t>(std::atoll(ArgValue(argc, argv, i)));
    } else if (a == "--telemetry") {
      telemetry_path = ArgValue(argc, argv, i);
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }

  try {
    sopts.host = host;
    sopts.port = port;
    cip::net::CipServer server(cip::net::DemoInitialState(), eng, sopts);
    server.Listen();
    std::cout << "listening on " << server.port() << std::endl;
    server.Serve();
    if (!telemetry_path.empty()) {
      std::ofstream os(telemetry_path);
      server.engine().telemetry().WriteJsonl(os);
    }
    const cip::net::EngineStats& st = server.engine().stats();
    std::cout << "rounds=" << st.rounds_completed
              << " skipped=" << st.rounds_skipped
              << " updates=" << st.updates_accepted
              << " folded_stragglers=" << st.folded_stragglers
              << " final_l2=" << server.engine().global().L2Norm()
              << std::endl;
  } catch (const cip::CheckError& e) {
    std::cerr << "cip_server: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
