// Length-prefixed wire framing for the standalone FL server.
//
// Every byte that crosses a socket is part of exactly one frame:
//
//   magic "CIPN" (u32 LE) | version (u32) | type (u32) | payload_len (u64)
//   | payload_len bytes of payload
//
// and every count/offset is validated before anything is sized from it —
// the same hostile-input discipline as the "CIPS"/"CIPT"/"CIPH"/"CIPR"
// loaders in fl/serialize and fl/checkpoint. Model payloads ARE the
// fl/serialize ModelState stream ("CIPS" magic and all), so the wire format
// inherits that loader's validation instead of re-implementing it. The full
// spec — message payloads, the round state machine, versioning rules, and
// the hostile-peer threat model — lives in docs/PROTOCOL.md.
//
// The byte-level primitives here use shift arithmetic, not casts: the
// `reinterpret` lint rule keeps reinterpret_cast out of this layer entirely.
// Incremental parsing goes through FrameReader, whose internal buffer is
// bounded by the configured maximum frame size — a hostile peer cannot make
// a connection buffer grow without limit (backpressure is enforced one layer
// up, in net/server.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "fl/model_state.h"
#include "tensor/tensor.h"

namespace cip::net {

/// Protocol magic ("CIPN" little-endian) and the one supported version.
/// Version bumps are breaking by definition; see docs/PROTOCOL.md §Versioning.
inline constexpr std::uint32_t kFrameMagic = 0x4E504943;  // "CIPN"
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Fixed frame header size in bytes: magic + version + type + payload_len.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 4 + 8;

/// Default ceiling on a single frame's payload. Large enough for any model
/// this library trains (fl/serialize caps states at 2^31 floats, but a wire
/// peer is less trusted than a local checkpoint file), small enough that one
/// connection cannot claim unbounded memory with one header.
inline constexpr std::uint64_t kDefaultMaxPayloadBytes =
    std::uint64_t{256} << 20;  // 256 MiB

/// Every message type in protocol v1. Values are wire-stable: new types
/// append, existing values never change meaning (docs/PROTOCOL.md).
enum class MsgType : std::uint32_t {
  kHello = 1,    ///< client -> server: join with a claimed client id
  kWelcome = 2,  ///< server -> client: admission + run parameters
  kRound = 3,    ///< server -> client: round begin, global model inside
  kUpdate = 4,   ///< client -> server: trained update for a round
  kFinal = 5,    ///< server -> client: final aggregate; connection done
  kBusy = 6,     ///< server -> client: admission refused, retry later
  kBye = 7,      ///< client -> server: orderly leave
  kQuery = 8,    ///< client -> server: inference batch for the served model
  kLogits = 9,   ///< server -> client: logits answering one kQuery
};

/// True when `t` is a defined protocol-v1 message type.
bool KnownMsgType(std::uint32_t t);

/// One parsed frame: its type plus the raw payload bytes.
struct Frame {
  MsgType type = MsgType::kBye;
  std::string payload;
};

// --- typed message payloads -------------------------------------------------

/// kHello payload: the id the client claims within the expected fleet.
struct HelloMsg {
  std::uint64_t client_id = 0;
};

/// kWelcome payload: everything a client needs to train deterministically —
/// the seed its per-round RNG streams derive from, the run shape, and its
/// admitted id echoed back.
struct WelcomeMsg {
  std::uint64_t client_id = 0;
  std::uint64_t run_seed = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t fleet_size = 0;
};

/// kRound payload header fields; the global model follows as a CIPS stream.
struct RoundMsg {
  std::uint64_t round = 0;  ///< 1-based round index
  float lr_scale = 1.0f;    ///< server-side learning-rate multiplier
  fl::ModelState global;    ///< the broadcast global model
};

/// kUpdate payload header fields; the update follows as a CIPS stream.
struct UpdateMsg {
  std::uint64_t round = 0;      ///< round the client trained on
  std::uint64_t client_id = 0;  ///< sender (must match the admitted id)
  float loss = 0.0f;            ///< mean local training loss
  fl::ModelState update;        ///< the trained local state
};

/// kFinal payload: the last aggregate, delivered before orderly close.
struct FinalMsg {
  fl::ModelState global;
};

/// kBusy payload: admission control's reject-with-retry-after hint.
struct BusyMsg {
  std::uint32_t retry_after_ms = 0;
};

/// kQuery payload: one client's inference batch for the serving engine —
/// the sender's id, then its raw (UNblended) inputs [N, ...sample dims] as
/// rank, dims, and IEEE-754 f32 rows. The server blends with the client's
/// stored perturbation t; the wire never carries t (it is the secret the
/// defense is built on, docs/PROTOCOL.md §Serving).
struct QueryMsg {
  std::uint64_t client_id = 0;
  Tensor inputs;  ///< [N, ...], N >= 1
};

/// kLogits payload: the logits [rows, classes] answering one kQuery, rows
/// in the query's sample order, bit-identical to an in-process
/// serve::ServeEngine answer for the same (client_id, inputs).
struct LogitsMsg {
  Tensor logits;  ///< [rows, classes]
};

// --- encoding ---------------------------------------------------------------

/// Append a little-endian u32 to `out` (shift arithmetic, no casts).
void PutU32(std::string& out, std::uint32_t v);
/// Append a little-endian u64 to `out`.
void PutU64(std::string& out, std::uint64_t v);
/// Append a float as the little-endian bytes of its IEEE-754 bit pattern.
void PutF32(std::string& out, float v);

/// Wrap a payload in a v1 frame header. CHECK-fails if the payload exceeds
/// kDefaultMaxPayloadBytes (an encoder producing an unparseable frame is a
/// programming error, not a peer fault).
std::string EncodeFrame(MsgType type, std::string payload);

/// Encode each typed message as a complete frame, ready to send.
std::string EncodeHello(const HelloMsg& m);
/// Encode a kWelcome frame.
std::string EncodeWelcome(const WelcomeMsg& m);
/// Encode a kRound frame (model serialized via fl/serialize).
std::string EncodeRound(const RoundMsg& m);
/// Encode a kUpdate frame (model serialized via fl/serialize).
std::string EncodeUpdate(const UpdateMsg& m);
/// Encode a kFinal frame.
std::string EncodeFinal(const FinalMsg& m);
/// Encode a kBusy frame.
std::string EncodeBusy(const BusyMsg& m);
/// Encode a payload-less kBye frame.
std::string EncodeBye();
/// Encode a kQuery frame (id + rank + dims + f32 rows).
std::string EncodeQuery(const QueryMsg& m);
/// Encode a kLogits frame (rows + classes + f32 data).
std::string EncodeLogits(const LogitsMsg& m);

// --- decoding ---------------------------------------------------------------

/// Decode each typed message from a frame payload. Throws cip::CheckError on
/// truncation at any byte, trailing bytes, or a hostile embedded stream —
/// the caller treats any throw as a protocol violation by the peer.
HelloMsg DecodeHello(const std::string& payload);
/// Decode a kWelcome payload.
WelcomeMsg DecodeWelcome(const std::string& payload);
/// Decode a kRound payload, validating the embedded CIPS stream.
RoundMsg DecodeRound(const std::string& payload);
/// Decode a kUpdate payload, validating the embedded CIPS stream.
UpdateMsg DecodeUpdate(const std::string& payload);
/// Decode a kFinal payload, validating the embedded CIPS stream.
FinalMsg DecodeFinal(const std::string& payload);
/// Decode a kBusy payload.
BusyMsg DecodeBusy(const std::string& payload);
/// Decode a kQuery payload. Rank, every dim, the overflow-checked element
/// count, and the exact remaining byte length are all validated BEFORE the
/// input tensor is sized — a hostile batch count cannot drive an allocation.
QueryMsg DecodeQuery(const std::string& payload);
/// Decode a kLogits payload with the same count-before-sizing discipline.
LogitsMsg DecodeLogits(const std::string& payload);

/// Incremental frame parser over a byte stream. Feed arbitrary chunks in
/// arrival order; Next() yields complete frames. The header is validated
/// (magic, version, known type, payload bound) before any payload buffer is
/// sized, and the internal buffer never holds more than one maximal frame —
/// a hostile peer's options are a clean parse or a thrown CheckError, never
/// unbounded growth.
class FrameReader {
 public:
  /// `max_payload` bounds every accepted frame's payload length.
  explicit FrameReader(std::uint64_t max_payload = kDefaultMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Append received bytes. Throws cip::CheckError as soon as the buffered
  /// prefix is provably not a valid frame (bad magic/version/type, payload
  /// length past the bound) — corrupt input fails at the first bad header,
  /// before any payload is buffered.
  void Feed(std::string_view bytes);

  /// The next complete frame, or nullopt until more bytes arrive.
  std::optional<Frame> Next();

  /// Bytes currently buffered (bounded by header + max_payload).
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::uint64_t max_payload_;
  std::string buf_;
};

}  // namespace cip::net
