// Single-threaded poll(2) event loop around AsyncRoundEngine — the cip_server
// binary's core, also driven in-process by tests and the load bench.
//
// Threading: none. The repo confines <thread> to common/parallel.cpp, and a
// round server's work is I/O-bound multiplexing plus one aggregation fold per
// round — a readiness loop handles ~1k connections on one core (the load
// bench measures exactly that). The loop is exposed as Step(timeout_ms), one
// poll cycle per call, so a bench or test can interleave the server with a
// client load generator in a single thread; Serve() is the run-to-completion
// wrapper the binary uses.
//
// Backpressure and admission control (docs/PROTOCOL.md §6): at most
// ServerOptions::max_connections peers are admitted — the rest receive kBusy
// with a retry-after hint and an orderly close. Each connection's receive
// side is bounded by the FrameReader payload cap, and its send side by
// ServerOptions::max_send_buffer: a peer that stops draining its socket
// while broadcasts pile up is dropped (== client dropout) instead of growing
// the server's memory without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/round_engine.h"
#include "net/socket.h"

namespace cip::serve {
class ServeEngine;
}  // namespace cip::serve

namespace cip::net {

/// Listener + admission + backpressure knobs for CipServer.
struct ServerOptions {
  std::string host = "127.0.0.1";  ///< dotted IPv4 to bind
  std::uint16_t port = 0;          ///< 0 = ephemeral (read back via port())
  int backlog = 128;               ///< listen(2) backlog
  /// Admitted-connection cap; peers beyond it get kBusy + close.
  std::size_t max_connections = 1024;
  /// Retry hint carried in kBusy frames.
  std::uint32_t busy_retry_ms = 50;
  /// Per-connection inbound frame payload cap (FrameReader bound).
  std::uint64_t max_frame_payload = kDefaultMaxPayloadBytes;
  /// Per-connection outbound buffer cap; a peer that lets this fill is
  /// dropped (slow-consumer backpressure). Must hold at least one full
  /// frame (kRound with the broadcast global).
  std::size_t max_send_buffer = std::size_t{64} << 20;  // 64 MiB
  /// Step() poll timeout used by Serve(), in milliseconds.
  int poll_timeout_ms = 50;
  /// Keep serving after the last round until every fleet id is settled
  /// (AsyncRoundEngine::fleet_settled): a quorum run can finish before the
  /// slowest client has even connected, and without draining, that client
  /// would dial a server that already shut down. Disable for load drivers
  /// (the bench) that own both sides and stop on their own clock.
  bool drain_fleet = true;
};

/// Event-loop counters (connection plumbing; round semantics live in
/// EngineStats).
struct ServerStats {
  std::size_t accepted_connections = 0;  ///< connections taken off the listener
  std::size_t busy_rejections = 0;       ///< kBusy-and-close admissions
  std::size_t dropped_connections = 0;   ///< peers lost to error/EOF/backpressure
  std::size_t protocol_errors = 0;       ///< peers dropped for bad bytes/frames
  std::uint64_t bytes_received = 0;      ///< total inbound payload traffic
  std::uint64_t bytes_sent = 0;          ///< total outbound traffic
  std::size_t queries_answered = 0;      ///< kQuery frames answered with kLogits
};

/// The standalone FL server: owns the listener, the per-connection buffers,
/// and an AsyncRoundEngine; maps socket events onto engine events.
class CipServer {
 public:
  /// Configure a run. Nothing touches the network until Listen().
  CipServer(fl::ModelState initial, AsyncRoundEngine::Options engine_options,
            ServerOptions options);
  ~CipServer();
  CipServer(const CipServer&) = delete;
  CipServer& operator=(const CipServer&) = delete;

  /// Bind and start listening; throws cip::CheckError on failure. Call
  /// before spawning clients so the port is accepting by the time they
  /// connect.
  void Listen();

  /// The bound port (after Listen(); resolves port 0 to the ephemeral pick).
  std::uint16_t port() const;

  /// Run one poll cycle: accept, read, dispatch frames to the engine, flush
  /// writes, reap dead connections. Waits at most timeout_ms for readiness
  /// (0 = non-blocking). Returns true while the run still has work to do —
  /// i.e. !finished().
  bool Step(int timeout_ms);

  /// Drive Step() until the run is finished (all rounds closed and every
  /// connection drained and closed).
  void Serve();

  /// True once the engine is done, every connection is drained and closed,
  /// and (with ServerOptions::drain_fleet) every fleet id is settled.
  bool finished() const;

  /// Attach a serving engine: kQuery frames become batched inference against
  /// it, answered with kLogits (docs/PROTOCOL.md §Serving). All kQuery
  /// frames read in one poll cycle coalesce into ONE ServeEngine::Flush —
  /// the wire front door inherits the engine's fused blend+forward batching
  /// across connections. The engine is borrowed and must outlive the server;
  /// pass nullptr to detach (kQuery reverts to a protocol error). Queries
  /// obey the same admission (kBusy + retry) and send-buffer backpressure
  /// rules as round traffic.
  void EnableServing(serve::ServeEngine* engine) { serve_ = engine; }

  /// The attached serving engine, or nullptr when not serving.
  serve::ServeEngine* serving() const { return serve_; }

  /// The round state machine (globals, round counters, EngineStats).
  const AsyncRoundEngine& engine() const { return *engine_; }

  /// Event-loop counters.
  const ServerStats& stats() const { return stats_; }

 private:
  struct Connection;

  /// One kQuery awaiting this step's coalesced Flush: the connection to
  /// answer and its row span within the fused batch.
  struct PendingQuery {
    Connection* conn;
    std::size_t row_begin;
    std::size_t rows;
  };

  void AcceptPending();
  /// Read whatever is available, feed the frame parser, dispatch frames.
  void HandleReadable(Connection& c);
  /// Dispatch one parsed frame from connection `c` to the engine.
  void HandleFrame(Connection& c, const Frame& f);
  /// Queue engine-produced sends onto the addressed connections' outboxes.
  void ApplySends(const std::vector<EngineSend>& sends);
  /// Run the step's coalesced ServeEngine::Flush and answer every pending
  /// kQuery with its logits slice.
  void FlushQueries();
  void FlushWrites(Connection& c);
  /// Drop a connection now, informing the engine when it was admitted.
  void Drop(Connection& c, bool count_protocol_error);
  /// Erase connections marked dead and finished flushing.
  void Reap();

  ServerOptions options_;
  std::unique_ptr<AsyncRoundEngine> engine_;
  Socket listener_;
  std::vector<std::unique_ptr<Connection>> connections_;
  /// Admitted client id -> connection, for round-close broadcasts.
  std::unordered_map<std::uint64_t, Connection*> by_id_;
  ServerStats stats_;
  serve::ServeEngine* serve_ = nullptr;       ///< borrowed; null = not serving
  std::vector<PendingQuery> pending_queries_; ///< cleared every FlushQueries
};

}  // namespace cip::net
