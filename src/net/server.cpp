#include "net/server.h"

#include <algorithm>

#include "common/check.h"
#include "serve/serve_engine.h"

namespace cip::net {

/// Per-connection state: the socket, the incremental frame parser, and the
/// outbound buffer the event loop flushes as the peer drains it.
struct CipServer::Connection {
  explicit Connection(Socket s, std::uint64_t max_payload)
      : sock(std::move(s)), reader(max_payload) {}

  Socket sock;
  FrameReader reader;
  std::string outbox;        ///< queued bytes; [out_off, size) still unsent
  std::size_t out_off = 0;
  std::uint64_t client_id = 0;
  bool admitted = false;  ///< engine knows this peer as `client_id`
  bool closing = false;   ///< drain outbox, then close (no more reads)
  bool dead = false;      ///< reap at the end of the step
};

CipServer::CipServer(fl::ModelState initial,
                     AsyncRoundEngine::Options engine_options,
                     ServerOptions options)
    : options_(std::move(options)),
      engine_(std::make_unique<AsyncRoundEngine>(std::move(initial),
                                                 engine_options)) {
  CIP_CHECK_MSG(options_.max_connections >= 1,
                "ServerOptions.max_connections must be >= 1");
  CIP_CHECK_MSG(options_.max_send_buffer >= kFrameHeaderBytes,
                "ServerOptions.max_send_buffer cannot hold a frame header");
}

CipServer::~CipServer() = default;

void CipServer::Listen() {
  listener_ = ListenTcp(options_.host, options_.port, options_.backlog);
}

std::uint16_t CipServer::port() const { return LocalPort(listener_); }

bool CipServer::finished() const {
  if (!engine_->done() || !connections_.empty()) return false;
  return !options_.drain_fleet || engine_->fleet_settled();
}

bool CipServer::Step(int timeout_ms) {
  std::vector<PollItem> items(connections_.size() + 1);
  items[0].fd = listener_.fd();
  items[0].want_read = true;
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Connection& c = *connections_[i];
    PollItem& item = items[i + 1];
    item.fd = c.dead ? -1 : c.sock.fd();
    item.want_read = !c.closing && !c.dead;
    item.want_write = !c.dead && c.out_off < c.outbox.size();
  }
  Poll(items, timeout_ms);

  if (items[0].readable) AcceptPending();
  for (std::size_t i = 0; i < connections_.size() && i + 1 < items.size();
       ++i) {
    Connection& c = *connections_[i];
    const PollItem& item = items[i + 1];
    if (c.dead) continue;
    if (item.broken) {
      Drop(c, /*count_protocol_error=*/false);
      continue;
    }
    if (item.readable) HandleReadable(c);
    if (!c.dead && item.writable) FlushWrites(c);
  }
  // All kQuery frames read this cycle fuse into one batched forward.
  FlushQueries();
  Reap();
  return !finished();
}

void CipServer::Serve() {
  while (Step(options_.poll_timeout_ms)) {
  }
}

void CipServer::AcceptPending() {
  while (true) {
    Socket s = AcceptNonBlocking(listener_);
    if (!s.valid()) return;
    ++stats_.accepted_connections;
    auto conn =
        std::make_unique<Connection>(std::move(s), options_.max_frame_payload);
    const std::size_t active = static_cast<std::size_t>(std::count_if(
        connections_.begin(), connections_.end(),
        [](const std::unique_ptr<Connection>& c) { return !c->closing &&
                                                          !c->dead; }));
    if (active >= options_.max_connections) {
      // Admission control: refuse with a retry hint rather than letting the
      // accept queue (and per-connection memory) grow without bound.
      BusyMsg busy;
      busy.retry_after_ms = options_.busy_retry_ms;
      conn->outbox = EncodeBusy(busy);
      conn->closing = true;
      ++stats_.busy_rejections;
    }
    connections_.push_back(std::move(conn));
  }
}

void CipServer::HandleReadable(Connection& c) {
  char buf[16384];
  while (!c.dead) {
    const IoResult r = RecvSome(c.sock, std::span<char>(buf, sizeof(buf)));
    if (r.would_block) break;
    if (r.closed || r.error) {
      Drop(c, /*count_protocol_error=*/false);
      return;
    }
    stats_.bytes_received += r.bytes;
    try {
      c.reader.Feed(std::string_view(buf, r.bytes));
      while (!c.dead && !c.closing) {
        const std::optional<Frame> f = c.reader.Next();
        if (!f) break;
        HandleFrame(c, *f);
      }
    } catch (const cip::CheckError&) {
      // Bad magic/version/type, an oversized length, or an unparseable
      // payload: the peer is hostile or corrupt either way.
      Drop(c, /*count_protocol_error=*/true);
      return;
    }
  }
}

void CipServer::HandleFrame(Connection& c, const Frame& f) {
  switch (f.type) {
    case MsgType::kHello: {
      if (c.admitted) {
        Drop(c, /*count_protocol_error=*/true);
        return;
      }
      const HelloMsg hello = DecodeHello(f.payload);
      const std::vector<EngineSend> sends = engine_->OnJoin(hello.client_id);
      // OnJoin's sends all address the joiner, which is not yet in by_id_ —
      // apply them to this connection directly.
      bool rejected = false;
      for (const EngineSend& s : sends) {
        c.outbox.append(s.frame);
        if (s.then_close) {
          c.closing = true;
          rejected = true;
        }
      }
      if (!rejected) {
        c.admitted = true;
        c.client_id = hello.client_id;
        by_id_[c.client_id] = &c;
      }
      FlushWrites(c);
      return;
    }
    case MsgType::kUpdate: {
      if (!c.admitted) {
        Drop(c, /*count_protocol_error=*/true);
        return;
      }
      const UpdateMsg update = DecodeUpdate(f.payload);
      ApplySends(engine_->OnUpdate(c.client_id, update));
      return;
    }
    case MsgType::kQuery: {
      if (serve_ == nullptr) {
        // Not a serving deployment: inference traffic is undefined here.
        Drop(c, /*count_protocol_error=*/true);
        return;
      }
      const QueryMsg q = DecodeQuery(f.payload);
      // Enqueue validates client id and sample geometry before touching the
      // batch arena; a CheckError surfaces in HandleReadable as a protocol
      // error, so a hostile query never poisons the fused batch.
      const std::size_t row_begin = serve_->Enqueue(q.client_id, q.inputs);
      pending_queries_.push_back({&c, row_begin, q.inputs.dim(0)});
      return;
    }
    case MsgType::kBye: {
      if (c.admitted) {
        c.admitted = false;
        by_id_.erase(c.client_id);
        ApplySends(engine_->OnDisconnect(c.client_id));
      }
      c.closing = true;
      FlushWrites(c);
      return;
    }
    default:
      // kWelcome/kRound/kFinal/kBusy are server-to-client only.
      Drop(c, /*count_protocol_error=*/true);
      return;
  }
}

void CipServer::ApplySends(const std::vector<EngineSend>& sends) {
  for (const EngineSend& s : sends) {
    const auto it = by_id_.find(s.client_id);
    if (it == by_id_.end()) continue;  // addressee already gone
    Connection& c = *it->second;
    const std::size_t queued = c.outbox.size() - c.out_off;
    if (queued + s.frame.size() > options_.max_send_buffer) {
      // Slow-consumer backpressure: a peer that stops draining broadcasts
      // is treated as gone rather than buffered without bound.
      Drop(c, /*count_protocol_error=*/false);
      continue;
    }
    c.outbox.append(s.frame);
    if (s.then_close) {
      c.closing = true;
      c.admitted = false;
      by_id_.erase(it);
    }
    FlushWrites(c);
  }
}

void CipServer::FlushQueries() {
  if (serve_ == nullptr || pending_queries_.empty()) return;
  const Tensor& logits = serve_->Flush();
  for (const PendingQuery& q : pending_queries_) {
    Connection& c = *q.conn;
    if (c.dead) continue;  // dropped after enqueueing; rows computed, unsent
    LogitsMsg m;
    m.logits = logits.Slice(q.row_begin, q.row_begin + q.rows);
    const std::string frame = EncodeLogits(m);
    const std::size_t queued = c.outbox.size() - c.out_off;
    if (queued + frame.size() > options_.max_send_buffer) {
      // Same slow-consumer rule as round broadcasts (ApplySends).
      Drop(c, /*count_protocol_error=*/false);
      continue;
    }
    c.outbox.append(frame);
    ++stats_.queries_answered;
    FlushWrites(c);
  }
  pending_queries_.clear();
}

void CipServer::FlushWrites(Connection& c) {
  while (!c.dead && c.out_off < c.outbox.size()) {
    const IoResult r = SendSome(
        c.sock, std::span<const char>(c.outbox.data() + c.out_off,
                                      c.outbox.size() - c.out_off));
    if (r.would_block) return;
    if (r.error || r.closed) {
      Drop(c, /*count_protocol_error=*/false);
      return;
    }
    c.out_off += r.bytes;
    stats_.bytes_sent += r.bytes;
  }
  if (c.out_off >= c.outbox.size()) {
    c.outbox.clear();
    c.out_off = 0;
    if (c.closing) c.dead = true;  // orderly close: everything delivered
  }
}

void CipServer::Drop(Connection& c, bool count_protocol_error) {
  if (c.dead) return;
  c.dead = true;
  if (count_protocol_error) {
    ++stats_.protocol_errors;
  } else {
    ++stats_.dropped_connections;
  }
  if (c.admitted) {
    c.admitted = false;
    by_id_.erase(c.client_id);
    // The drop is a client dropout on the engine's books; the resulting
    // broadcasts (a round that was waiting only on this peer) go out now.
    ApplySends(engine_->OnDisconnect(c.client_id));
  }
}

void CipServer::Reap() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
    return c->dead;
  });
}

}  // namespace cip::net
