// cip_client: one FL client process speaking docs/PROTOCOL.md.
//
// Builds demo-fleet client --id (net/demo_fleet.h) and drives it against a
// cip_server with the shared RunClient loop. Usage:
//
//   cip_client --port P [--host 127.0.0.1] [--id K] [--crash-in-round R]
//
// Exit codes: 0 = received kFinal; 3 = crash-in-round fired (the kill-test
// hook — the process vanishes mid-round on purpose); 4 = gave up on kBusy;
// 1 = protocol/connection failure.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/check.h"
#include "net/client_runner.h"
#include "net/demo_fleet.h"

namespace {

const char* ArgValue(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::cerr << "missing value for " << argv[i] << "\n";
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  cip::net::ClientRunnerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--host") {
      opts.host = ArgValue(argc, argv, i);
    } else if (a == "--port") {
      opts.port =
          static_cast<std::uint16_t>(std::atoi(ArgValue(argc, argv, i)));
    } else if (a == "--id") {
      opts.client_id =
          static_cast<std::uint64_t>(std::atoll(ArgValue(argc, argv, i)));
    } else if (a == "--crash-in-round") {
      opts.crash_in_round =
          static_cast<std::size_t>(std::atoll(ArgValue(argc, argv, i)));
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }
  if (opts.port == 0) {
    std::cerr << "usage: cip_client --port P [--host H] [--id K] "
                 "[--crash-in-round R]\n";
    return 2;
  }

  try {
    std::unique_ptr<cip::fl::ClientBase> client =
        cip::net::MakeDemoClient(static_cast<std::size_t>(opts.client_id));
    const cip::net::ClientRunResult result =
        cip::net::RunClient(*client, opts);
    if (result.crashed) return 3;
    if (result.busy_gave_up) return 4;
    if (!result.finished) return 1;
    std::cout << "client " << opts.client_id << " trained "
              << result.rounds_trained << " rounds, final_l2="
              << result.final_global.L2Norm() << std::endl;
  } catch (const cip::CheckError& e) {
    std::cerr << "cip_client: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
