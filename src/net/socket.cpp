#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "common/check.h"

namespace cip::net {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CIP_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed: " << std::strerror(errno));
  CIP_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK) failed: " << std::strerror(errno));
}

void SetNoDelay(int fd) {
  // Round frames are small and latency-bound; Nagle would serialize the
  // request/response ping-pong at one frame per RTT timer tick. Best-effort:
  // a socket that refuses the option still works, just slower.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in MakeAddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CIP_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "not a dotted IPv4 address: " << host);
  return addr;
}

IoResult IoFromErrno() {
  IoResult r;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    r.would_block = true;
  } else {
    r.error = true;
  }
  return r;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Socket ListenTcp(const std::string& host, std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  CIP_CHECK_MSG(s.valid(), "socket() failed: " << std::strerror(errno));
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = MakeAddr(host, port);
  CIP_CHECK_MSG(::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "bind(" << host << ":" << port
                        << ") failed: " << std::strerror(errno));
  CIP_CHECK_MSG(::listen(s.fd(), backlog) == 0,
                "listen() failed: " << std::strerror(errno));
  SetNonBlocking(s.fd());
  return s;
}

std::uint16_t LocalPort(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  CIP_CHECK_MSG(::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                              &len) == 0,
                "getsockname() failed: " << std::strerror(errno));
  return ntohs(addr.sin_port);
}

Socket ConnectTcp(const std::string& host, std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  CIP_CHECK_MSG(s.valid(), "socket() failed: " << std::strerror(errno));
  sockaddr_in addr = MakeAddr(host, port);
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  CIP_CHECK_MSG(rc == 0, "connect(" << host << ":" << port
                                    << ") failed: " << std::strerror(errno));
  SetNoDelay(s.fd());
  return s;
}

Socket ConnectTcpNonBlocking(const std::string& host, std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  CIP_CHECK_MSG(s.valid(), "socket() failed: " << std::strerror(errno));
  SetNonBlocking(s.fd());
  SetNoDelay(s.fd());
  sockaddr_in addr = MakeAddr(host, port);
  const int rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  CIP_CHECK_MSG(rc == 0 || errno == EINPROGRESS || errno == EINTR,
                "connect(" << host << ":" << port
                           << ") failed: " << std::strerror(errno));
  return s;
}

Socket AcceptNonBlocking(Socket& listener) {
  // SOCK_CLOEXEC everywhere (here and in the socket() calls above): a host
  // process that spawns helpers — the e2e test posix_spawns cip_client
  // processes — must not leak its listener or connections into the children,
  // or a closed socket lives on in the child and peers waiting on it hang
  // instead of seeing EOF/ECONNREFUSED.
  const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return Socket();
  Socket s(fd);
  SetNonBlocking(fd);
  SetNoDelay(fd);
  return s;
}

IoResult SendSome(Socket& s, std::span<const char> data) {
  // MSG_NOSIGNAL: a vanished peer must surface as EPIPE on this call, not
  // kill the whole server process with SIGPIPE.
  const ssize_t n =
      ::send(s.fd(), data.data(), data.size(), MSG_NOSIGNAL);
  if (n < 0) return IoFromErrno();
  IoResult r;
  r.bytes = static_cast<std::size_t>(n);
  return r;
}

IoResult RecvSome(Socket& s, std::span<char> buf) {
  const ssize_t n = ::recv(s.fd(), buf.data(), buf.size(), 0);
  if (n < 0) return IoFromErrno();
  IoResult r;
  if (n == 0) {
    r.closed = true;
  } else {
    r.bytes = static_cast<std::size_t>(n);
  }
  return r;
}

bool SendAll(Socket& s, std::span<const char> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const IoResult r = SendSome(s, data.subspan(sent));
    if (r.error || r.closed) return false;
    sent += r.bytes;
  }
  return true;
}

bool RecvAll(Socket& s, std::span<char> buf) {
  std::size_t got = 0;
  while (got < buf.size()) {
    const IoResult r = RecvSome(s, buf.subspan(got));
    if (r.error || r.closed) return false;
    if (r.would_block) continue;  // blocking socket: only EINTR lands here
    got += r.bytes;
  }
  return true;
}

int Poll(std::span<PollItem> items, int timeout_ms) {
  // CIP_ANALYZE_OK(hot-alloc): event-loop edge, sized once per poll cycle
  std::vector<pollfd> fds;
  fds.reserve(items.size());
  std::vector<std::size_t> index;
  index.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].readable = items[i].writable = items[i].broken = false;
    if (items[i].fd < 0) continue;
    pollfd p{};
    p.fd = items[i].fd;
    if (items[i].want_read) p.events |= POLLIN;
    if (items[i].want_write) p.events |= POLLOUT;
    fds.push_back(p);
    index.push_back(i);
  }
  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc <= 0) return 0;  // timeout or EINTR: nothing ready this cycle
  int ready = 0;
  for (std::size_t j = 0; j < fds.size(); ++j) {
    PollItem& item = items[index[j]];
    const short re = fds[j].revents;
    if (re == 0) continue;
    ++ready;
    if (re & (POLLIN | POLLHUP)) item.readable = true;
    if (re & POLLOUT) item.writable = true;
    if (re & (POLLERR | POLLNVAL)) item.broken = true;
  }
  return ready;
}

std::size_t EnsureFdLimit(std::size_t want) {
  rlimit lim{};
  CIP_CHECK_MSG(::getrlimit(RLIMIT_NOFILE, &lim) == 0,
                "getrlimit(RLIMIT_NOFILE) failed: " << std::strerror(errno));
  if (lim.rlim_cur != RLIM_INFINITY &&
      static_cast<std::size_t>(lim.rlim_cur) < want) {
    rlimit raised = lim;
    raised.rlim_cur =
        (lim.rlim_max == RLIM_INFINITY ||
         static_cast<std::size_t>(lim.rlim_max) >= want)
            ? static_cast<rlim_t>(want)
            : lim.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur == RLIM_INFINITY
             ? static_cast<std::size_t>(-1)
             : static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace cip::net
