#include "attacks/internal.h"

#include <cmath>

#include "tensor/ops.h"

namespace cip::attacks {

InternalPassive::InternalPassive(std::vector<fl::ModelState> snapshots,
                                 SnapshotQueryFactory factory)
    : snapshots_(std::move(snapshots)), factory_(std::move(factory)) {
  CIP_CHECK(!snapshots_.empty());
  CIP_CHECK(factory_ != nullptr);
}

std::vector<std::vector<float>> InternalPassive::LossTrajectories(
    const data::Dataset& ds) {
  std::vector<std::vector<float>> traj(ds.size(),
                                       std::vector<float>(snapshots_.size()));
  for (std::size_t s = 0; s < snapshots_.size(); ++s) {
    const std::unique_ptr<fl::QueryModel> q = factory_(snapshots_[s]);
    const std::vector<float> losses = q->Losses(ds);
    for (std::size_t i = 0; i < ds.size(); ++i) {
      traj[i][s] = std::min(losses[i], 20.0f);
    }
  }
  return traj;
}

void InternalPassive::Calibrate(const data::Dataset& known_members,
                                const data::Dataset& known_nonmembers) {
  CIP_CHECK(!known_members.empty());
  CIP_CHECK(!known_nonmembers.empty());
  const auto tm = LossTrajectories(known_members);
  const auto tn = LossTrajectories(known_nonmembers);
  member_.assign(snapshots_.size(), {});
  nonmember_.assign(snapshots_.size(), {});
  auto fit = [](const std::vector<std::vector<float>>& t, std::size_t s) {
    Gaussian g;
    double sum = 0.0;
    for (const auto& row : t) sum += row[s];
    g.mean = sum / static_cast<double>(t.size());
    double var = 0.0;
    for (const auto& row : t) var += (row[s] - g.mean) * (row[s] - g.mean);
    g.std = std::max(std::sqrt(var / static_cast<double>(t.size())), 1e-4);
    return g;
  };
  for (std::size_t s = 0; s < snapshots_.size(); ++s) {
    member_[s] = fit(tm, s);
    nonmember_[s] = fit(tn, s);
  }
  calibrated_ = true;
}

std::vector<float> InternalPassive::Score(const data::Dataset& candidates) {
  CIP_CHECK_MSG(calibrated_, "call Calibrate() before Score()");
  const auto traj = LossTrajectories(candidates);
  std::vector<float> scores(candidates.size());
  auto logpdf = [](double x, const Gaussian& g) {
    const double z = (x - g.mean) / g.std;
    return -0.5 * z * z - std::log(g.std);
  };
  for (std::size_t i = 0; i < traj.size(); ++i) {
    double lm = 0.0, ln = 0.0;
    for (std::size_t s = 0; s < snapshots_.size(); ++s) {
      lm += logpdf(traj[i][s], member_[s]);
      ln += logpdf(traj[i][s], nonmember_[s]);
    }
    const double mx = std::max(lm, ln);
    const double pm = std::exp(lm - mx);
    const double pn = std::exp(ln - mx);
    scores[i] = static_cast<float>(pm / (pm + pn));
  }
  return scores;
}

AscentFn MakeClassifierAscent(const nn::ModelSpec& spec, float lr,
                              std::size_t steps) {
  return [spec, lr, steps](const fl::ModelState& state,
                           const data::Dataset& targets) {
    auto model = nn::MakeClassifier(spec);
    const std::vector<nn::Parameter*> params = model->Parameters();
    state.ApplyTo(params);
    for (std::size_t s = 0; s < steps; ++s) {
      const Tensor logits = model->Forward(targets.inputs, /*train=*/true);
      Tensor dlogits;
      ops::SoftmaxCrossEntropy(logits, targets.labels, &dlogits);
      model->Backward(dlogits);
      // Ascent: step along +gradient.
      for (nn::Parameter* p : params) {
        ops::Axpy(p->value, lr, p->grad);
        p->ZeroGrad();
      }
    }
    return fl::ModelState::From(params);
  };
}

void InstallActiveAttack(fl::FederatedAveraging& server, AscentFn ascent,
                         data::Dataset targets, std::size_t start_round) {
  CIP_CHECK(ascent != nullptr);
  server.set_tamper(
      [ascent = std::move(ascent), targets = std::move(targets), start_round](
          std::size_t round, const fl::ModelState& honest) {
        if (round < start_round) return honest;
        return ascent(honest, targets);
      });
}

}  // namespace cip::attacks
