#include "attacks/pb_bayes.h"

#include <cmath>

#include "tensor/ops.h"

namespace cip::attacks {

namespace {

double LogGaussianPdf(double x, double mean, double std) {
  const double z = (x - mean) / std;
  return -0.5 * z * z - std::log(std);
}

}  // namespace

std::vector<std::array<float, PbBayes::kFeatures>> PbBayes::Extract(
    fl::WhiteBoxQuery& model, const data::Dataset& ds) {
  const Tensor probs = model.Probs(ds.inputs);
  const std::vector<float> losses = model.Losses(ds);
  const std::vector<float> gnorms = model.GradNorms(ds);
  const std::size_t n = ds.size(), c = probs.dim(1);
  std::vector<std::array<float, kFeatures>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    float maxp = 0.0f;
    double entropy = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      const float p = probs[i * c + j];
      maxp = std::max(maxp, p);
      if (p > 1e-12f) entropy -= static_cast<double>(p) * std::log(p);
    }
    out[i] = {std::min(losses[i], 20.0f), std::min(gnorms[i], 50.0f), maxp,
              static_cast<float>(entropy)};
  }
  return out;
}

PbBayes::Gaussian PbBayes::Fit(std::span<const float> values) {
  Gaussian g;
  if (values.empty()) return g;
  double s = 0.0;
  for (float v : values) s += v;
  g.mean = s / static_cast<double>(values.size());
  double var = 0.0;
  for (float v : values) var += (v - g.mean) * (v - g.mean);
  g.std = std::max(std::sqrt(var / static_cast<double>(values.size())), 1e-4);
  return g;
}

PbBayes::PbBayes(fl::WhiteBoxQuery& shadow, const data::Dataset& shadow_members,
                 const data::Dataset& shadow_nonmembers) {
  const auto fm = Extract(shadow, shadow_members);
  const auto fn = Extract(shadow, shadow_nonmembers);
  for (std::size_t f = 0; f < kFeatures; ++f) {
    std::vector<float> mv(fm.size()), nv(fn.size());
    for (std::size_t i = 0; i < fm.size(); ++i) mv[i] = fm[i][f];
    for (std::size_t i = 0; i < fn.size(); ++i) nv[i] = fn[i][f];
    member_[f] = Fit(mv);
    nonmember_[f] = Fit(nv);
  }
}

std::vector<float> PbBayes::Score(fl::QueryModel& target,
                                  const data::Dataset& candidates) {
  auto* wb = dynamic_cast<fl::WhiteBoxQuery*>(&target);
  CIP_CHECK_MSG(wb != nullptr,
                "Pb-Bayes requires white-box (parameter) access to the target");
  const auto feats = Extract(*wb, candidates);
  std::vector<float> scores(feats.size());
  for (std::size_t i = 0; i < feats.size(); ++i) {
    double lm = 0.0, ln = 0.0;
    for (std::size_t f = 0; f < kFeatures; ++f) {
      lm += LogGaussianPdf(feats[i][f], member_[f].mean, member_[f].std);
      ln += LogGaussianPdf(feats[i][f], nonmember_[f].mean, nonmember_[f].std);
    }
    // Posterior with equal priors, computed stably.
    const double mx = std::max(lm, ln);
    const double pm = std::exp(lm - mx);
    const double pn = std::exp(ln - mx);
    scores[i] = static_cast<float>(pm / (pm + pn));
  }
  return scores;
}

}  // namespace cip::attacks
