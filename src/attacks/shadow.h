// Shadow-model utilities (Shokri et al.): the adversary trains its own model
// on data from the same distribution to learn how member vs non-member
// outputs look, then transfers that knowledge to the target.
#pragma once

#include <memory>

#include "fl/trainer.h"
#include "nn/backbones.h"

namespace cip::attacks {

struct ShadowConfig {
  std::size_t epochs = 25;
  fl::TrainConfig train;
};

/// Train a shadow classifier on the attacker's own (member) data.
std::unique_ptr<nn::Classifier> TrainShadow(const nn::ModelSpec& spec,
                                            const data::Dataset& shadow_train,
                                            const ShadowConfig& cfg, Rng& rng);

/// The threshold on a score that maximizes balanced accuracy between two
/// labeled score samples (used to calibrate threshold attacks on shadow
/// models, where the attacker knows membership).
float BestThreshold(std::span<const float> member_scores,
                    std::span<const float> nonmember_scores);

}  // namespace cip::attacks
