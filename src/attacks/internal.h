// Internal (malicious-server) attacks following Nasr et al., S&P 2019.
//
// Passive: the server records model snapshots over the last training rounds
// (client updates or aggregates — Table I's "attacking iterations"), queries
// each snapshot with the candidate samples, and classifies membership from
// the loss trajectory. Calibration uses the attacker's auxiliary known
// members/non-members (the supervised setting of Nasr et al.).
//
// Active: the server additionally performs gradient *ascent* on the target
// samples before every broadcast. Members get re-learned by the victim
// clients (their loss collapses again); non-members stay damaged — widening
// the separation the passive classifier sees.
#pragma once

#include <functional>
#include <memory>

#include "attacks/attack.h"
#include "fl/model_state.h"
#include "fl/server.h"

namespace cip::attacks {

/// Builds a query handle over an arbitrary model snapshot. The factory hides
/// whether the victim runs a plain classifier or a CIP dual-channel model
/// (which the adversary can only query raw).
using SnapshotQueryFactory =
    std::function<std::unique_ptr<fl::QueryModel>(const fl::ModelState&)>;

class InternalPassive {
 public:
  InternalPassive(std::vector<fl::ModelState> snapshots,
                  SnapshotQueryFactory factory);

  /// Fit per-snapshot loss Gaussians from the attacker's known samples.
  void Calibrate(const data::Dataset& known_members,
                 const data::Dataset& known_nonmembers);

  /// Posterior member probability per candidate.
  std::vector<float> Score(const data::Dataset& candidates);

  std::size_t NumSnapshots() const { return snapshots_.size(); }

 private:
  struct Gaussian {
    double mean = 0.0;
    double std = 1.0;
  };

  /// [sample][snapshot] loss matrix.
  std::vector<std::vector<float>> LossTrajectories(const data::Dataset& ds);

  std::vector<fl::ModelState> snapshots_;
  SnapshotQueryFactory factory_;
  std::vector<Gaussian> member_;
  std::vector<Gaussian> nonmember_;
  bool calibrated_ = false;
};

/// Gradient-ascent model alteration the active server applies before each
/// broadcast. Implementations exist for plain classifiers and dual-channel
/// CIP victims (ascent along the raw-query path).
using AscentFn = std::function<fl::ModelState(const fl::ModelState& state,
                                              const data::Dataset& targets)>;

/// Ascent on a single-channel classifier spec.
AscentFn MakeClassifierAscent(const nn::ModelSpec& spec, float lr,
                              std::size_t steps);

/// Install an active-attack tamper hook on a FedAvg server: from
/// `start_round` on, apply `ascent` to the honest aggregate over `targets`.
void InstallActiveAttack(fl::FederatedAveraging& server, AscentFn ascent,
                         data::Dataset targets, std::size_t start_round);

}  // namespace cip::attacks
