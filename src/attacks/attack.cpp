#include "attacks/attack.h"

namespace cip::attacks {

metrics::BinaryMetrics ScoreToMetrics(std::span<const float> member_scores,
                                      std::span<const float> nonmember_scores,
                                      float threshold) {
  std::vector<bool> predictions;
  std::vector<bool> truths;
  predictions.reserve(member_scores.size() + nonmember_scores.size());
  truths.reserve(predictions.capacity());
  for (float s : member_scores) {
    predictions.push_back(s > threshold);
    truths.push_back(true);
  }
  for (float s : nonmember_scores) {
    predictions.push_back(s > threshold);
    truths.push_back(false);
  }
  return metrics::EvaluateBinary(predictions, truths);
}

metrics::BinaryMetrics EvaluateAttack(MiAttack& attack, fl::QueryModel& target,
                                      const data::Dataset& members,
                                      const data::Dataset& nonmembers) {
  const std::vector<float> ms = attack.Score(target, members);
  const std::vector<float> ns = attack.Score(target, nonmembers);
  return ScoreToMetrics(ms, ns, attack.Threshold());
}

}  // namespace cip::attacks
