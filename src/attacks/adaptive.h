// Adaptive adversaries (RQ4): attackers who know CIP's mechanism and try to
// guess or reconstruct the client's secret perturbation.
//
//  * Optimization-1 — probe the model, optimize a guessed t' that maximizes
//    accuracy on probe data, then mount a loss-threshold attack via t';
//  * Optimization-2 — actively alter the broadcast model (descend on target
//    samples), then classify bounced-back high-loss samples as members;
//  * Knowledge-1   — public init seed + α: optimize t' starting from a seed
//    with controlled SSIM to the client's true seed;
//  * Knowledge-2   — optimize t' on a known fraction of the training data;
//  * Knowledge-3   — a malicious client substitutes its own t';
//  * Knowledge-4   — inverse MALT: CIP raises loss on original members, so
//    classify abnormally *high* loss as member.
//
// The building blocks live here; benches orchestrate them per table.
#pragma once

#include "attacks/attack.h"
#include "attacks/internal.h"
#include "core/blend.h"
#include "nn/backbones.h"
#include "nn/dual_channel.h"

namespace cip::attacks {

/// Optimize a guessed perturbation t' against a fixed dual-channel model on
/// probe data (Optimization-1 / Knowledge-1 / Knowledge-2). Starts from
/// `init` (empty = uniform random) and runs plain SGD with no ℓ1 term (the
/// attacker has no reason to regularize).
Tensor OptimizeGuessedT(nn::DualChannelClassifier& model,
                        const core::BlendConfig& blend,
                        const data::Dataset& probe_data, std::size_t steps,
                        float lr, Rng& rng, Tensor init = {});

/// A seed with a target SSIM to `reference` (Knowledge-1's similarity knob):
/// binary-searches the mixing weight of fresh noise.
Tensor SeedWithSimilarity(const Tensor& reference, double target_ssim,
                          Rng& rng, float lo = 0.0f, float hi = 1.0f);

/// Knowledge-4: member iff loss is abnormally HIGH (inverse of Ob-MALT).
class InverseMalt : public MiAttack {
 public:
  /// Calibrated on shadow losses: the inverse attacker thresholds above the
  /// typical non-member loss level.
  InverseMalt(std::span<const float> shadow_member_losses,
              std::span<const float> shadow_nonmember_losses);

  std::string Name() const override { return "Inverse-MALT"; }
  std::vector<float> Score(fl::QueryModel& target,
                           const data::Dataset& candidates) override;
  float Threshold() const override { return threshold_; }

 private:
  float threshold_;
};

/// Ascent/descent alteration of a dual-channel (CIP) victim along its
/// raw-query path. Positive `lr` increases the loss on `targets`
/// (Nasr-style active), negative `lr` decreases it (Optimization-2).
AscentFn MakeDualAscent(const nn::ModelSpec& spec,
                        const core::BlendConfig& blend, float lr,
                        std::size_t steps);

/// Balanced accuracy at the optimal score threshold — the upper bound the
/// paper's adaptive-attack tables report.
double BestThresholdAccuracy(std::span<const float> member_scores,
                             std::span<const float> nonmember_scores);

}  // namespace cip::attacks
