// Pb-Bayes: parameter-based white-box attack (Leino & Fredrikson,
// USENIX Sec'20 "Stolen Memories"-style, Bayes-calibrated).
//
// The adversary holds the target's parameters, so beyond outputs it can
// compute per-sample gradients. Features per sample: cross-entropy loss,
// parameter-gradient norm, top softmax probability, and output entropy.
// A Gaussian naive-Bayes model of member vs non-member feature densities is
// fit on the attacker's shadow model and transferred to the target; the
// score is the posterior member probability.
#pragma once

#include <array>

#include "attacks/attack.h"

namespace cip::attacks {

class PbBayes : public MiAttack {
 public:
  static constexpr std::size_t kFeatures = 4;

  /// Fit the Bayes model on a shadow white-box model with known membership.
  PbBayes(fl::WhiteBoxQuery& shadow, const data::Dataset& shadow_members,
          const data::Dataset& shadow_nonmembers);

  std::string Name() const override { return "Pb-Bayes"; }

  /// `target` must be a WhiteBoxQuery (checked); the paper's Pb attacks
  /// require parameter access by definition.
  std::vector<float> Score(fl::QueryModel& target,
                           const data::Dataset& candidates) override;

 private:
  struct Gaussian {
    double mean = 0.0;
    double std = 1.0;
  };

  static std::vector<std::array<float, kFeatures>> Extract(
      fl::WhiteBoxQuery& model, const data::Dataset& ds);
  static Gaussian Fit(std::span<const float> values);

  std::array<Gaussian, kFeatures> member_;
  std::array<Gaussian, kFeatures> nonmember_;
};

}  // namespace cip::attacks
