#include "attacks/output_attacks.h"

#include <algorithm>
#include <cmath>

#include "attacks/shadow.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace cip::attacks {

// ---- Ob-Label ---------------------------------------------------------------

std::vector<float> ObLabel::Score(fl::QueryModel& target,
                                  const data::Dataset& candidates) {
  const std::vector<int> pred = target.Predict(candidates.inputs);
  std::vector<float> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = pred[i] == candidates.labels[i] ? 1.0f : 0.0f;
  }
  return scores;
}

// ---- Ob-MALT ----------------------------------------------------------------

ObMalt::ObMalt(std::span<const float> shadow_member_losses,
               std::span<const float> shadow_nonmember_losses) {
  // Scores are negated losses (higher = more member-like).
  std::vector<float> ms(shadow_member_losses.size());
  std::vector<float> ns(shadow_nonmember_losses.size());
  for (std::size_t i = 0; i < ms.size(); ++i) ms[i] = -shadow_member_losses[i];
  for (std::size_t i = 0; i < ns.size(); ++i) {
    ns[i] = -shadow_nonmember_losses[i];
  }
  threshold_ = BestThreshold(ms, ns);
}

std::vector<float> ObMalt::Score(fl::QueryModel& target,
                                 const data::Dataset& candidates) {
  const std::vector<float> losses = target.Losses(candidates);
  std::vector<float> scores(losses.size());
  for (std::size_t i = 0; i < losses.size(); ++i) scores[i] = -losses[i];
  return scores;
}

// ---- Ob-NN ------------------------------------------------------------------

namespace {

std::unique_ptr<nn::Sequential> BuildAttackNet(std::size_t in_dim, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>("obnn");
  net->Add(std::make_unique<nn::Linear>(in_dim, 24, rng, "obnn.l1"))
      .Add(std::make_unique<nn::ReLU>())
      .Add(std::make_unique<nn::Linear>(24, 2, rng, "obnn.l2"));
  return net;
}

}  // namespace

Tensor ObNN::Features(fl::QueryModel& model, const data::Dataset& ds) const {
  const Tensor probs = model.Probs(ds.inputs);
  const std::vector<float> losses = model.Losses(ds);
  const std::size_t n = probs.dim(0), c = probs.dim(1);
  const std::size_t k = std::min(kTopK, c);
  Tensor f({n, kTopK + 1});
  std::vector<float> row(c);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(probs.data() + i * c, probs.data() + (i + 1) * c, row.begin());
    std::partial_sort(row.begin(), row.begin() + static_cast<long>(k),
                      row.end(), std::greater<float>());
    for (std::size_t j = 0; j < k; ++j) f[i * (kTopK + 1) + j] = row[j];
    // Clamp the loss feature: member/non-member separation lives in the low
    // range and unbounded losses destabilize the tiny attack net.
    f[i * (kTopK + 1) + kTopK] = std::min(losses[i], 10.0f) / 10.0f;
  }
  return f;
}

ObNN::ObNN(fl::QueryModel& shadow, const data::Dataset& shadow_members,
           const data::Dataset& shadow_nonmembers, Rng& rng,
           std::size_t train_epochs)
    : net_(BuildAttackNet(kTopK + 1, rng)) {
  const Tensor fm = Features(shadow, shadow_members);
  const Tensor fn = Features(shadow, shadow_nonmembers);
  const std::size_t nm = fm.dim(0), nn_ = fn.dim(0);
  Tensor x({nm + nn_, fm.dim(1)});
  std::copy(fm.data(), fm.data() + fm.size(), x.data());
  std::copy(fn.data(), fn.data() + fn.size(), x.data() + fm.size());
  std::vector<int> y(nm + nn_, 0);
  std::fill(y.begin(), y.begin() + static_cast<long>(nm), 1);

  const std::vector<nn::Parameter*> params = net_->Parameters();
  optim::Sgd opt(0.1f, 0.9f);
  const std::size_t bsz = 64;
  for (std::size_t e = 0; e < train_epochs; ++e) {
    const std::vector<std::size_t> perm = rng.Permutation(nm + nn_);
    for (std::size_t start = 0; start < perm.size(); start += bsz) {
      const std::size_t end = std::min(start + bsz, perm.size());
      Tensor xb({end - start, x.dim(1)});
      std::vector<int> yb(end - start);
      for (std::size_t i = start; i < end; ++i) {
        const std::size_t src = perm[i];
        std::copy(x.data() + src * x.dim(1), x.data() + (src + 1) * x.dim(1),
                  xb.data() + (i - start) * x.dim(1));
        yb[i - start] = y[src];
      }
      const Tensor logits = net_->Forward(xb, /*train=*/true);
      Tensor dlogits;
      ops::SoftmaxCrossEntropy(logits, yb, &dlogits);
      net_->Backward(dlogits);
      opt.Step(params);
    }
  }
}

std::vector<float> ObNN::Score(fl::QueryModel& target,
                               const data::Dataset& candidates) {
  const Tensor f = Features(target, candidates);
  const Tensor probs = ops::SoftmaxRows(net_->Forward(f, /*train=*/false));
  std::vector<float> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = probs[i * 2 + 1];
  }
  return scores;
}

// ---- Ob-BlindMI -------------------------------------------------------------

namespace {

/// Sorted-probability embedding rows (class-agnostic, like BlindMI).
Tensor SortedProbs(fl::QueryModel& model, const Tensor& inputs) {
  Tensor probs = model.Probs(inputs);
  const std::size_t n = probs.dim(0), c = probs.dim(1);
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(probs.data() + i * c, probs.data() + (i + 1) * c,
              std::greater<float>());
  }
  return probs;
}

double MeanEmbeddingDistance(const Tensor& mean_a, const Tensor& mean_b) {
  double d = 0.0;
  for (std::size_t j = 0; j < mean_a.size(); ++j) {
    const double diff = mean_a[j] - mean_b[j];
    d += diff * diff;
  }
  return std::sqrt(d);
}

}  // namespace

ObBlindMi::ObBlindMi(data::Dataset generated_nonmembers)
    : reference_(std::move(generated_nonmembers)) {
  CIP_CHECK(!reference_.empty());
}

std::vector<float> ObBlindMi::Score(fl::QueryModel& target,
                                    const data::Dataset& candidates) {
  const Tensor cand = SortedProbs(target, candidates.inputs);
  const Tensor ref = SortedProbs(target, reference_.inputs);
  const std::size_t n = cand.dim(0), c = cand.dim(1), m = ref.dim(0);

  Tensor mean_s({c});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < c; ++j) mean_s[j] += cand[i * c + j];
  }
  ops::ScaleInPlace(mean_s, 1.0f / static_cast<float>(n));
  Tensor mean_r({c});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < c; ++j) mean_r[j] += ref[i * c + j];
  }
  ops::ScaleInPlace(mean_r, 1.0f / static_cast<float>(m));

  const double base = MeanEmbeddingDistance(mean_s, mean_r);
  std::vector<float> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Move candidate i from the suspect-member set to the reference set.
    Tensor ms({c}), mr({c});
    for (std::size_t j = 0; j < c; ++j) {
      const float xi = cand[i * c + j];
      ms[j] = n > 1 ? (mean_s[j] * static_cast<float>(n) - xi) /
                          static_cast<float>(n - 1)
                    : mean_s[j];
      mr[j] = (mean_r[j] * static_cast<float>(m) + xi) /
              static_cast<float>(m + 1);
    }
    const double moved = MeanEmbeddingDistance(ms, mr);
    // BlindMI-DIFF's rule: if moving i into the non-member side *increases*
    // the distance, i was a non-member (the suspect set got purer); if the
    // distance shrinks, i's confident member-like output was propping the
    // distance up — i is a member. Score = decrease caused by the move.
    scores[i] = static_cast<float>(base - moved);
  }
  return scores;
}

}  // namespace cip::attacks
