// Output-based (black-box) MI attacks evaluated in the paper (Sec. IV-B):
//  * Ob-Label   — Yeom et al.: membership from prediction correctness;
//  * Ob-MALT    — Sablayrolles et al.: Bayes-optimal loss thresholding,
//                 threshold calibrated on the attacker's shadow model;
//  * Ob-NN      — Salem et al. / Shokri et al.: a neural attack model over
//                 the target's softmax output, trained on shadow data;
//  * Ob-BlindMI — Hui et al.: differential comparison against a generated
//                 non-member set, no shadow model needed.
#pragma once

#include <memory>

#include "attacks/attack.h"
#include "common/rng.h"
#include "nn/sequential.h"

namespace cip::attacks {

/// Member iff the target classifies the sample correctly.
class ObLabel : public MiAttack {
 public:
  std::string Name() const override { return "Ob-Label"; }
  std::vector<float> Score(fl::QueryModel& target,
                           const data::Dataset& candidates) override;
};

/// Member iff loss < τ, with τ calibrated on shadow losses.
class ObMalt : public MiAttack {
 public:
  /// Calibrate from per-sample losses of the attacker's shadow model on its
  /// own members/non-members.
  ObMalt(std::span<const float> shadow_member_losses,
         std::span<const float> shadow_nonmember_losses);

  std::string Name() const override { return "Ob-MALT"; }
  std::vector<float> Score(fl::QueryModel& target,
                           const data::Dataset& candidates) override;
  float Threshold() const override { return threshold_; }

 private:
  float threshold_;
};

/// Shadow-trained MLP over (top-k sorted softmax probs, per-sample loss).
class ObNN : public MiAttack {
 public:
  ObNN(fl::QueryModel& shadow, const data::Dataset& shadow_members,
       const data::Dataset& shadow_nonmembers, Rng& rng,
       std::size_t train_epochs = 60);

  std::string Name() const override { return "Ob-NN"; }
  std::vector<float> Score(fl::QueryModel& target,
                           const data::Dataset& candidates) override;

  static constexpr std::size_t kTopK = 3;

 private:
  Tensor Features(fl::QueryModel& model, const data::Dataset& ds) const;

  std::unique_ptr<nn::Sequential> net_;
};

/// Differential comparison against a generated non-member reference set
/// (single-pass BlindMI-DIFF with the mean-embedding (linear-kernel) MMD;
/// see DESIGN.md §2).
class ObBlindMi : public MiAttack {
 public:
  explicit ObBlindMi(data::Dataset generated_nonmembers);

  std::string Name() const override { return "Ob-BlindMI"; }
  std::vector<float> Score(fl::QueryModel& target,
                           const data::Dataset& candidates) override;
  float Threshold() const override { return 0.0f; }

 private:
  data::Dataset reference_;
};

}  // namespace cip::attacks
