// Membership-inference attack framework.
//
// Every attack produces a member-score per candidate sample (higher = more
// likely a member) plus a decision threshold; evaluation runs the attack on
// a balanced member/non-member pool and reports accuracy/precision/recall/F1
// exactly as the paper's tables do.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fl/query.h"
#include "metrics/metrics.h"

namespace cip::attacks {

class MiAttack {
 public:
  virtual ~MiAttack() = default;

  virtual std::string Name() const = 0;

  /// Member score for every sample in `candidates` when attacking `target`.
  virtual std::vector<float> Score(fl::QueryModel& target,
                                   const data::Dataset& candidates) = 0;

  /// Decision threshold applied to the scores (member iff score > threshold).
  virtual float Threshold() const { return 0.5f; }
};

/// Run an attack on a balanced pool (members ++ non-members) and score it.
metrics::BinaryMetrics EvaluateAttack(MiAttack& attack, fl::QueryModel& target,
                                      const data::Dataset& members,
                                      const data::Dataset& nonmembers);

/// Same, but with precomputed scores (for attacks that need richer access
/// than QueryModel and produce scores through their own orchestration).
metrics::BinaryMetrics ScoreToMetrics(std::span<const float> member_scores,
                                      std::span<const float> nonmember_scores,
                                      float threshold);

}  // namespace cip::attacks
