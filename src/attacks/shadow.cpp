#include "attacks/shadow.h"

#include <algorithm>

namespace cip::attacks {

std::unique_ptr<nn::Classifier> TrainShadow(const nn::ModelSpec& spec,
                                            const data::Dataset& shadow_train,
                                            const ShadowConfig& cfg,
                                            Rng& rng) {
  auto model = nn::MakeClassifier(spec);
  optim::Sgd opt(cfg.train.lr, cfg.train.momentum, cfg.train.weight_decay,
                 cfg.train.grad_clip);
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    fl::TrainEpoch(*model, shadow_train, opt, cfg.train, rng);
  }
  return model;
}

float BestThreshold(std::span<const float> member_scores,
                    std::span<const float> nonmember_scores) {
  CIP_CHECK(!member_scores.empty());
  CIP_CHECK(!nonmember_scores.empty());
  // Candidate thresholds: all observed scores. Balanced accuracy =
  // (TPR + TNR)/2 with member iff score > thr.
  std::vector<float> all(member_scores.begin(), member_scores.end());
  all.insert(all.end(), nonmember_scores.begin(), nonmember_scores.end());
  std::sort(all.begin(), all.end());
  float best_thr = all.front() - 1.0f;
  double best_acc = -1.0;
  auto balanced = [&](float thr) {
    std::size_t tp = 0, tn = 0;
    for (float s : member_scores) tp += (s > thr) ? 1 : 0;
    for (float s : nonmember_scores) tn += (s <= thr) ? 1 : 0;
    return 0.5 * (static_cast<double>(tp) / member_scores.size() +
                  static_cast<double>(tn) / nonmember_scores.size());
  };
  for (float thr : all) {
    const double acc = balanced(thr);
    if (acc > best_acc) {
      best_acc = acc;
      best_thr = thr;
    }
  }
  return best_thr;
}

}  // namespace cip::attacks
