#include "attacks/adaptive.h"

#include <cmath>

#include "attacks/shadow.h"
#include "core/cip_client.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"

namespace cip::attacks {

Tensor OptimizeGuessedT(nn::DualChannelClassifier& model,
                        const core::BlendConfig& blend,
                        const data::Dataset& probe_data, std::size_t steps,
                        float lr, Rng& rng, Tensor init) {
  Tensor t = init.size() > 0 ? std::move(init)
                             : core::Perturbation::Random(
                                   probe_data.SampleShape(), rng,
                                   blend.clip_lo, blend.clip_hi)
                                   .tensor();
  core::OptimizePerturbation(model, probe_data, t, blend, /*lambda_t=*/0.0f,
                             lr, steps, /*batch_size=*/32, rng);
  return t;
}

Tensor SeedWithSimilarity(const Tensor& reference, double target_ssim,
                          Rng& rng, float lo, float hi) {
  CIP_CHECK(target_ssim > 0.0 && target_ssim <= 1.0);
  Tensor noise(reference.shape());
  for (float& v : noise.flat()) v = rng.Uniform(lo, hi);
  // SSIM(reference, mix(w)) grows monotonically with w; bisect.
  auto mix = [&](float w) {
    Tensor out(reference.shape());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = w * reference[i] + (1.0f - w) * noise[i];
    }
    return out;
  };
  float lo_w = 0.0f, hi_w = 1.0f;
  for (int iter = 0; iter < 24; ++iter) {
    const float mid = 0.5f * (lo_w + hi_w);
    if (metrics::Ssim(reference, mix(mid), hi - lo) < target_ssim) {
      lo_w = mid;
    } else {
      hi_w = mid;
    }
  }
  return mix(0.5f * (lo_w + hi_w));
}

InverseMalt::InverseMalt(std::span<const float> shadow_member_losses,
                         std::span<const float> shadow_nonmember_losses) {
  // The inverse attacker believes members have the HIGHER loss; calibrate a
  // threshold above the shadow's typical levels (scores are +loss).
  threshold_ = BestThreshold(shadow_nonmember_losses, shadow_member_losses);
}

std::vector<float> InverseMalt::Score(fl::QueryModel& target,
                                      const data::Dataset& candidates) {
  return target.Losses(candidates);
}

AscentFn MakeDualAscent(const nn::ModelSpec& spec,
                        const core::BlendConfig& blend, float lr,
                        std::size_t steps) {
  return [spec, blend, lr, steps](const fl::ModelState& state,
                                  const data::Dataset& targets) {
    auto model = nn::MakeDualChannelClassifier(spec);
    const std::vector<nn::Parameter*> params = model->Parameters();
    state.ApplyTo(params);
    const Tensor raw_t;  // adversary only has the raw-query path
    for (std::size_t s = 0; s < steps; ++s) {
      const core::Blended b = core::Blend(targets.inputs, raw_t, blend);
      const Tensor logits = model->Forward(b.c1, b.c2, /*train=*/true);
      Tensor dlogits;
      ops::SoftmaxCrossEntropy(logits, targets.labels, &dlogits);
      model->Backward(dlogits);
      for (nn::Parameter* p : params) {
        ops::Axpy(p->value, lr, p->grad);  // +lr ascends, -lr descends
        p->ZeroGrad();
      }
    }
    return fl::ModelState::From(params);
  };
}

double BestThresholdAccuracy(std::span<const float> member_scores,
                             std::span<const float> nonmember_scores) {
  const float thr = BestThreshold(member_scores, nonmember_scores);
  const metrics::BinaryMetrics m =
      ScoreToMetrics(member_scores, nonmember_scores, thr);
  return m.accuracy;
}

}  // namespace cip::attacks
