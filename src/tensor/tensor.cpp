#include "tensor/tensor.h"

#include <atomic>
#include <numeric>
#include <sstream>

namespace cip {

namespace internal {

namespace {
std::atomic<std::uint64_t> g_tensor_allocs{0};
}  // namespace

std::uint64_t TensorAllocCount() {
  return g_tensor_allocs.load(std::memory_order_relaxed);
}

void BumpTensorAllocCount() {
  g_tensor_allocs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

std::size_t NumElements(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::Row(std::size_t i) const {
  CIP_CHECK_GE(rank(), 2u);
  CIP_CHECK_LT(i, shape_[0]);
  Shape row_shape(shape_.begin() + 1, shape_.end());
  const std::size_t stride = NumElements(row_shape);
  std::vector<float> out(data_.begin() + static_cast<long>(i * stride),
                         data_.begin() + static_cast<long>((i + 1) * stride));
  return Tensor(std::move(row_shape), std::move(out));
}

Tensor Tensor::Slice(std::size_t lo, std::size_t hi) const {
  CIP_CHECK_GE(rank(), 1u);
  CIP_CHECK_LE(lo, hi);
  CIP_CHECK_LE(hi, shape_[0]);
  Shape out_shape = shape_;
  out_shape[0] = hi - lo;
  const std::size_t stride = size() / std::max<std::size_t>(shape_[0], 1);
  // CIP_ANALYZE_OK(hot-alloc-container): Slice copies by contract; callers own the per-batch staging cost
  std::vector<float> out(data_.begin() + static_cast<long>(lo * stride),
                         data_.begin() + static_cast<long>(hi * stride));
  // CIP_ANALYZE_OK(hot-alloc-tensor): Slice returns a freshly allocated copy by contract
  return Tensor(std::move(out_shape), std::move(out));
}

}  // namespace cip
